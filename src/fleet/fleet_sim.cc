#include "fleet_sim.h"

#include <algorithm>
#include <random>

#include "common/logging.h"
#include "engine/partition.h"
#include "obs/tracer.h"
#include "policies/registry.h"
#include "serve/plan_cache.h"
#include "serve/probe_scheduler.h"
#include "sim/runtime/sim_runtime.h"

namespace g10 {

bool
FleetResult::allSucceeded() const
{
    for (const FleetPlacementResult& p : placements)
        for (const ServeCellResult& cell : p.nodeCells)
            if (cell.metrics.failed > 0)
                return false;
    return true;
}

FleetSim::FleetSim(const FleetSpec& spec) : spec_(spec)
{
    if (spec_.nodes.empty())
        fatal("fleet needs at least one node");
    if (spec_.placements.empty())
        fatal("fleet needs at least one placement policy");
    if (spec_.classes.empty())
        fatal("fleet needs at least one job class");
    if (spec_.requests < 1)
        fatal("fleet needs requests >= 1");
    if (spec_.rate <= 0.0)
        fatal("fleet needs rate > 0");
    if (spec_.arrival.kind == ArrivalKind::Trace)
        fatal("fleet arrivals must be poisson or bursty");
    PolicyRegistry::instance().resolve(spec_.design);  // fatal on unknown
    for (std::size_t n = 0; n < spec_.nodes.size(); ++n) {
        const int slots = spec_.nodes[n].slots > 0
                              ? spec_.nodes[n].slots
                              : spec_.slots;
        if (slots < 1)
            fatal("fleet node '%s' needs slots >= 1",
                  spec_.nodes[n].name.c_str());
    }

    classes_ = spec_.classes;
    for (ServeJobClass& cls : classes_) {
        if (cls.batchSize <= 0)
            cls.batchSize = paperBatchSize(cls.model);
        if (cls.name.empty())
            cls.name = std::string(modelName(cls.model)) + "-" +
                       std::to_string(cls.batchSize);
    }

    traces_.reserve(classes_.size());
    for (const ServeJobClass& cls : classes_)
        traces_.push_back(buildModelScaled(cls.model, cls.batchSize,
                                           spec_.scaleDown));

    // Per-class capacity floors and plan service estimates, once per
    // fleet. The page size and launch overhead are platform constants
    // (scaling divides capacities only), so both are node-independent.
    const SystemConfig scaled = spec_.sys.scaledDown(spec_.scaleDown);
    floors_.reserve(traces_.size());
    serviceEst_.reserve(traces_.size());
    for (std::size_t c = 0; c < traces_.size(); ++c) {
        floors_.push_back(
            serveClassGpuFloor(traces_[c], scaled.pageBytes));
        serviceEst_.push_back(planServiceEstimateNs(
            traces_[c], scaled, classes_[c].iterations));
    }

    // Per-node ServeSpecs, in stable storage: ServeSim keeps a
    // reference to its spec for the lifetime of the cell.
    nodeSpecs_.reserve(spec_.nodes.size());
    for (std::size_t n = 0; n < spec_.nodes.size(); ++n)
        nodeSpecs_.push_back(spec_.nodeServeSpec(n));

    // The shared fleet stream, drawn once from the fleet seed: arrival
    // times from `seed`, class picks from `seed + 1` (the serve-sweep
    // idiom). The stream never looks at the node list, so it is
    // node-count independent by construction. Auto-knee probes redraw
    // it at each probed rate (streamAtRate): the class sequence stays
    // identical — only arrival spacing changes.
    stream_ = streamAtRate(spec_.ratesAuto ? spec_.resolvedRateLo()
                                           : spec_.rate);

    router_ = std::make_unique<Router>(spec_, classes_, serviceEst_,
                                       floors_);

    for (const ServeSpec& ns : nodeSpecs_) {
        if (ns.sweepPlanCache) {
            planCache_ = std::make_unique<SweepPlanCache>();
            break;
        }
    }
}

FleetSim::~FleetSim() = default;

std::vector<ServeRequest>
FleetSim::streamAtRate(double rate) const
{
    std::vector<TimeNs> times = generateArrivals(
        spec_.arrival, rate, spec_.requests, spec_.seed);
    std::mt19937_64 picks(spec_.seed + 1);
    double wsum = 0.0;
    for (const ServeJobClass& cls : classes_)
        wsum += cls.weight;
    std::vector<ServeRequest> stream;
    stream.reserve(times.size());
    for (TimeNs t : times) {
        double u = unitInterval(picks) * wsum;
        double cum = 0.0;
        std::size_t ci = classes_.size() - 1;
        for (std::size_t c = 0; c < classes_.size(); ++c) {
            cum += classes_[c].weight;
            if (u <= cum) {
                ci = c;
                break;
            }
        }
        ServeRequest r;
        r.arrivalNs = t;
        r.classIndex = ci;
        stream.push_back(r);
    }
    return stream;
}

std::vector<std::vector<ServeClassBaseline>>
FleetSim::computeBaselines(ExperimentEngine& engine) const
{
    // Each node's SLO reference: every class alone on one idle
    // partition slot *of that node* — heterogeneous nodes have
    // heterogeneous unloaded latencies, and a node's attainment is
    // judged against what it could do unloaded.
    const std::size_t nn = spec_.nodes.size();
    const std::size_t nc = classes_.size();
    std::vector<std::vector<ServeClassBaseline>> baselines(
        nn, std::vector<ServeClassBaseline>(nc));
    engine.parallelFor(nn * nc, [&](std::size_t i) {
        const std::size_t n = i / nc;
        const std::size_t c = i % nc;
        const ServeSpec& ns = nodeSpecs_[n];
        const SystemConfig nodeScaled = ns.sys.scaledDown(ns.scaleDown);
        const SystemConfig slotSys = partitionShare(
            nodeScaled, 1.0 / static_cast<double>(ns.slots));
        DesignInstance di = PolicyRegistry::instance().make(
            spec_.design, traces_[c], slotSys);
        RunConfig rc;
        rc.sys = slotSys;
        rc.iterations = classes_[c].iterations;
        rc.uvmExtension = di.uvmExtension;
        rc.seed = ns.seed;
        SimRuntime rt(traces_[c], *di.policy, rc);
        ExecStats st = rt.run();
        baselines[n][c].unloadedNs = rt.now();
        baselines[n][c].failed = st.failed;
    });
    return baselines;
}

FleetMetrics
FleetSim::aggregate(const FleetPlacementResult& placement,
                    TimeNs firstArrival) const
{
    const std::size_t nn = placement.nodeCells.size();
    FleetMetrics m;
    TimeNs lastFinish = 0;
    std::uint64_t sloMet = 0;
    std::vector<double> busy(nn, 0.0);

    for (std::size_t n = 0; n < nn; ++n) {
        const ServeCellResult& cell = placement.nodeCells[n];
        const ServeMetrics& cm = cell.metrics;
        m.offered += cm.offered;
        m.admitted += cm.admitted;
        m.rejected += cm.rejected;
        m.completed += cm.completed;
        m.failed += cm.failed;
        m.warmCompiles += cm.warmCompiles;
        m.coldCompiles += cm.coldCompiles;
        m.ssd.hostReadBytes += cell.ssd.hostReadBytes;
        m.ssd.hostWriteBytes += cell.ssd.hostWriteBytes;
        m.ssd.nandWriteBytes += cell.ssd.nandWriteBytes;
        m.ssd.gcRuns += cell.ssd.gcRuns;
        m.ssd.blockErases += cell.ssd.blockErases;
        m.ssd.relocatedPages += cell.ssd.relocatedPages;
        for (const ServeJobOutcome& o : cell.jobs) {
            if (o.sloMet)
                ++sloMet;
            if (o.finishNs > lastFinish)
                lastFinish = o.finishNs;
        }
        busy[n] = cm.gpuUtilization *
                  static_cast<double>(cm.makespanNs);
    }

    m.sloAttainment =
        m.offered > 0 ? static_cast<double>(sloMet) /
                            static_cast<double>(m.offered)
                      : 0.0;
    if (lastFinish > firstArrival) {
        m.makespanNs = lastFinish - firstArrival;
        m.throughputRps = static_cast<double>(m.completed) /
                          (static_cast<double>(m.makespanNs) / SEC);
    }
    m.capacityPerNodeRps =
        m.throughputRps / static_cast<double>(nn);
    m.consolidatedWaf = m.ssd.waf();

    // Utilization spread over *fleet* time: an idle node drags the
    // min and the Jain index down — exactly the signal a consolidating
    // placement trades against its warm-hit wins.
    double sum = 0.0, sumSq = 0.0;
    m.utilMin = 0.0;
    m.utilMax = 0.0;
    for (std::size_t n = 0; n < nn; ++n) {
        const double u =
            m.makespanNs > 0
                ? busy[n] / static_cast<double>(m.makespanNs)
                : 0.0;
        if (n == 0) {
            m.utilMin = u;
            m.utilMax = u;
        } else {
            m.utilMin = std::min(m.utilMin, u);
            m.utilMax = std::max(m.utilMax, u);
        }
        sum += u;
        sumSq += u * u;
    }
    m.utilMean = nn > 0 ? sum / static_cast<double>(nn) : 0.0;
    m.utilJain = sumSq > 0.0
                     ? (sum * sum) /
                           (static_cast<double>(nn) * sumSq)
                     : 1.0;  // all idle: trivially even
    return m;
}

FleetResult
FleetSim::run(ExperimentEngine& engine)
{
    return run(engine, FleetObsRequest{});
}

FleetResult
FleetSim::run(ExperimentEngine& engine, const FleetObsRequest& obs)
{
    FleetResult out;
    out.spec = spec_;
    for (const ServeJobClass& cls : classes_)
        out.classNames.push_back(cls.name);
    for (const FleetNodeSpec& node : spec_.nodes)
        out.nodeNames.push_back(node.name);

    out.baselines = computeBaselines(engine);

    if (spec_.ratesAuto) {
        runKnee(engine, obs, &out);
        return out;
    }

    const std::size_t np = spec_.placements.size();
    const std::size_t nn = spec_.nodes.size();

    // Route once per placement (pure, no randomness), then simulate
    // the (placement × node) grid. Per-cell registries merged in grid
    // order keep the totals worker-count independent.
    std::vector<RoutedStream> routedStreams;
    routedStreams.reserve(np);
    for (PlacementKind kind : spec_.placements)
        routedStreams.push_back(router_->route(kind, stream_));

    out.placements.resize(np);
    for (std::size_t p = 0; p < np; ++p) {
        out.placements[p].kind = spec_.placements[p];
        out.placements[p].nodeCells.resize(nn);
        out.placements[p].nodeOffered.resize(nn);
        for (std::size_t n = 0; n < nn; ++n)
            out.placements[p].nodeOffered[n] =
                routedStreams[p].perNode[n].size();
    }

    std::vector<CounterRegistry> regs(np * nn);
    auto runCell = [&](std::size_t p, std::size_t n, TraceSink* sink) {
        ServeCellResult& cell = out.placements[p].nodeCells[n];
        const std::vector<ServeRequest>& reqs =
            routedStreams[p].perNode[n];
        if (reqs.empty()) {
            // A node the policy never routed to: an empty cell, so
            // the spread metrics still see the idle machine.
            cell.design = spec_.design;
            cell.designName =
                PolicyRegistry::instance().resolve(spec_.design).name;
            cell.rate = spec_.rate;
            return;
        }
        ServeSim sim(nodeSpecs_[n], spec_.design, spec_.rate, traces_,
                     classes_, floors_, reqs, out.baselines[n]);
        sim.setObservers(
            sink, obs.collectCounters ? &regs[p * nn + n] : nullptr);
        sim.setPlanCache(nodeSpecs_[n].sweepPlanCache
                             ? planCache_.get()
                             : nullptr);
        cell = sim.run();
    };

    if (obs.sink != nullptr) {
        // Traced runs stream the first placement's nodes sequentially
        // (sinks are not thread-safe) with per-node pid offsets; the
        // remaining placements still fan out across the pool.
        for (std::size_t n = 0; n < nn; ++n) {
            PidOffsetSink offset(obs.sink,
                                 static_cast<int>(n) * kFleetPidStride);
            runCell(0, n, &offset);
        }
        engine.parallelFor((np - 1) * nn, [&](std::size_t i) {
            runCell(1 + i / nn, i % nn, nullptr);
        });
    } else {
        engine.parallelFor(np * nn, [&](std::size_t i) {
            runCell(i / nn, i % nn, nullptr);
        });
    }

    if (obs.collectCounters)
        for (CounterRegistry& reg : regs)
            out.counters.merge(reg);

    for (std::size_t p = 0; p < np; ++p)
        out.placements[p].fleet =
            aggregate(out.placements[p], stream_.front().arrivalNs);
    return out;
}

/** Everything a fleet probe's outcome is a pure function of: each
 *  node's serve scenario (platform, slots, queue, seed split), the
 *  affinity pins, the shared stream parameters, and the placement
 *  list (the probe's lane is a placement index). */
static std::uint64_t
fingerprintFleetSpec(const FleetSpec& spec)
{
    SpecHash h;
    h.mix(spec.nodes.size());
    for (std::size_t n = 0; n < spec.nodes.size(); ++n) {
        h.mix(fingerprintServeSpec(spec.nodeServeSpec(n)));
        h.mixString(spec.nodes[n].name);
        h.mix(spec.nodes[n].families.size());
        for (ModelKind fam : spec.nodes[n].families)
            h.mix(static_cast<std::uint64_t>(fam));
    }
    h.mixString(spec.design);
    h.mix(spec.seed);
    h.mix(static_cast<std::uint64_t>(spec.requests));
    h.mix(spec.placements.size());
    for (PlacementKind k : spec.placements)
        h.mix(static_cast<std::uint64_t>(k));
    return h.digest();
}

void
FleetSim::runKnee(ExperimentEngine& engine, const FleetObsRequest& obs,
                  FleetResult* out)
{
    const std::size_t np = spec_.placements.size();
    const std::size_t nn = spec_.nodes.size();
    const double rootRate = spec_.resolvedRateLo();

    // One probe = the whole fleet at one offered rate: re-time the
    // shared stream, route it, and run every node sequentially inside
    // the probe (node counters accumulate in node order into the
    // probe's registry — same order the fixed-rate grid merges). One
    // SweepPlanCache and one ProbeCache span all nodes, placements,
    // and probes. Probes for different placements — and speculative
    // next rates within one — fan out across the pool; the decided
    // bisection per placement reads memoized results in sequential
    // order, so the knees and every node cell are byte-identical at
    // any worker count, speculation on or off. The event sink
    // observes only placement 0's root probe (nodes stream into it
    // sequentially with the usual pid offsets).
    ProbeCache probeCache;
    ArenaPool arenas;

    auto probeFn = [&](std::uint32_t p, double rate) -> ProbeResult {
        ProbeResult pr;
        std::vector<ServeRequest> stream = streamAtRate(rate);
        pr.firstArrivalNs = stream.front().arrivalNs;
        RoutedStream routed =
            router_->route(spec_.placements[p], stream);
        std::unique_ptr<Arena> arena = arenas.acquire();
        const bool traced =
            obs.sink != nullptr && p == 0 && rate == rootRate;
        pr.cells.resize(nn);
        pr.sustained = true;
        for (std::size_t n = 0; n < nn; ++n) {
            ServeCellResult& cell = pr.cells[n];
            const std::vector<ServeRequest>& reqs = routed.perNode[n];
            if (reqs.empty()) {
                cell.design = spec_.design;
                cell.designName = PolicyRegistry::instance()
                                      .resolve(spec_.design)
                                      .name;
                cell.rate = rate;
                continue;
            }
            ServeSim sim(nodeSpecs_[n], spec_.design, rate, traces_,
                         classes_, floors_, reqs, out->baselines[n]);
            PidOffsetSink offset(obs.sink,
                                 static_cast<int>(n) * kFleetPidStride);
            sim.setObservers(
                traced ? &offset : nullptr,
                obs.collectCounters ? &pr.counters : nullptr);
            sim.setPlanCache(nodeSpecs_[n].sweepPlanCache
                                 ? planCache_.get()
                                 : nullptr);
            sim.setArena(arena.get());
            cell = sim.run();
            arena->reset();
            if (!cell.sustained())
                pr.sustained = false;
        }
        arenas.release(std::move(arena));
        return pr;
    };

    out->placements.resize(np);
    std::vector<CounterRegistry> regs(np);
    std::vector<TimeNs> firstArrival(np, 0);

    ProbeStats stats;
    {
        ProbeScheduler sched(engine, probeCache,
                             fingerprintFleetSpec(spec_), probeFn,
                             spec_.speculativeProbes);
        engine.parallelFor(np, [&](std::size_t p) {
            FleetPlacementResult& pr = out->placements[p];
            pr.kind = spec_.placements[p];
            KneeCursor cur(rootRate, spec_.rateHi, spec_.rateProbes);
            // The most recent sustained probe is always the current
            // knee (lo only ever moves up to the probed rate), so the
            // reported cells are the knee probe's — or the lowest
            // probe's when nothing sustained.
            std::shared_ptr<const ProbeResult> first, knee;
            while (!cur.done()) {
                std::shared_ptr<const ProbeResult> res =
                    sched.acquire(static_cast<std::uint32_t>(p), cur);
                if (first == nullptr)
                    first = res;
                if (res->sustained)
                    knee = res;
                if (obs.collectCounters)
                    regs[p].merge(res->counters);
                cur.advance(res->sustained);
            }
            pr.kneeRatePerS = cur.knee();
            pr.rateProbes = static_cast<std::uint64_t>(cur.used());
            const std::shared_ptr<const ProbeResult>& rep =
                knee != nullptr ? knee : first;
            if (rep != nullptr) {
                pr.nodeCells = rep->cells;
                firstArrival[p] = rep->firstArrivalNs;
            } else {
                // Zero probe budget: report an idle fleet.
                pr.nodeCells.resize(nn);
                for (std::size_t n = 0; n < nn; ++n) {
                    pr.nodeCells[n].design = spec_.design;
                    pr.nodeCells[n].designName =
                        PolicyRegistry::instance()
                            .resolve(spec_.design)
                            .name;
                    pr.nodeCells[n].rate = rootRate;
                }
                firstArrival[p] = stream_.front().arrivalNs;
            }
            pr.nodeOffered.resize(nn);
            for (std::size_t n = 0; n < nn; ++n)
                pr.nodeOffered[n] = pr.nodeCells[n].jobs.size();
        });
        stats = sched.stats();
    }
    out->probesIssued = stats.issued;
    out->probesSpeculative = stats.speculated;
    out->probeSpecUsed = stats.speculationUsed;
    out->probeSpecWasted = stats.speculationWasted;
    out->probeCacheHits = stats.cacheHits;

    if (obs.collectCounters) {
        for (CounterRegistry& reg : regs)
            out->counters.merge(reg);
        out->counters.add("sweep.probe.issued", stats.issued);
        out->counters.add("sweep.probe.decided", stats.decided);
        out->counters.add("sweep.probe.speculated", stats.speculated);
        out->counters.add("sweep.probe.speculation_used",
                          stats.speculationUsed);
        out->counters.add("sweep.probe.speculation_wasted",
                          stats.speculationWasted);
        out->counters.add("sweep.probe.cache_hits", stats.cacheHits);
    }

    for (std::size_t p = 0; p < np; ++p)
        out->placements[p].fleet =
            aggregate(out->placements[p], firstArrival[p]);
}

}  // namespace g10
