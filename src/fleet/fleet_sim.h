/**
 * @file
 * Fleet-scale serving simulator: N heterogeneous GPU+SSD nodes behind
 * a router absorbing one shared open-loop arrival stream.
 *
 * Each node is a complete ServeSim scenario — its own SystemConfig,
 * partition slots, admission queue, plan cache, and SSD — and the
 * fleet layer adds what a cluster front-end adds in production: one
 * seeded request stream, a placement policy that maps each request to
 * a node at arrival time (join-shortest-queue, plan-aware by compiled
 * working-set footprint, or class-affinity pinning model families),
 * and fleet-level metrics: SLO attainment over the whole stream,
 * per-node utilization spread (min/max/mean/Jain), throughput
 * capacity per node, and consolidated SSD write amplification.
 *
 * Determinism: the stream is generated once from the fleet seed
 * (node-count independent), each node's per-job perturbation seed is
 * split from the fleet seed with fleetNodeSeed() (so adding a node
 * never perturbs another node's simulation), routing draws no
 * randomness, and the (placement × node) cells simulate concurrently
 * on ExperimentEngine's pool with per-cell counter registries merged
 * in grid order — results are bit-identical for a given spec
 * regardless of worker count.
 */

#ifndef G10_FLEET_FLEET_SIM_H
#define G10_FLEET_FLEET_SIM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/experiment_engine.h"
#include "fleet/fleet_spec.h"
#include "fleet/router.h"
#include "serve/serve_sim.h"

namespace g10 {

/** Fleet-level aggregates of one placement policy. */
struct FleetMetrics
{
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;

    /** Fraction of the *fleet's* offered requests that met their SLO
     *  (a node's SLO reference is its own unloaded latency). */
    double sloAttainment = 0.0;

    /** Completed requests per second of fleet makespan. */
    double throughputRps = 0.0;

    /** throughputRps / node count: the consolidation scorecard. */
    double capacityPerNodeRps = 0.0;

    /** Last finish on any node - first fleet arrival. */
    TimeNs makespanNs = 0;

    // Per-node GPU utilization spread, every utilization normalized
    // to the *fleet* makespan so idle nodes count as zero.
    double utilMin = 0.0;
    double utilMax = 0.0;
    double utilMean = 0.0;
    double utilJain = 0.0;  ///< Jain fairness index of the spread

    /** Plan-cache outcomes summed over the nodes (the number class-
     *  affinity routing exists to maximize). */
    std::uint64_t warmCompiles = 0;
    std::uint64_t coldCompiles = 0;

    /** Fleet-consolidated WAF: sum of NAND writes over sum of host
     *  writes across every node's SSD. */
    double consolidatedWaf = 1.0;

    /** Per-node SSD wear summed across the fleet. */
    SsdStats ssd;
};

/** One placement policy's outcome over the shared stream. */
struct FleetPlacementResult
{
    PlacementKind kind = PlacementKind::JoinShortestQueue;

    /** Per node: a full serving cell over the node's substream. A
     *  node the policy routed nothing to has an empty cell (zero
     *  offered, zero metrics). */
    std::vector<ServeCellResult> nodeCells;

    /** How many fleet requests each node was offered. */
    std::vector<std::uint64_t> nodeOffered;

    FleetMetrics fleet;

    /**
     * Auto-knee mode (FleetSpec::ratesAuto): the bisected fleet
     * capacity knee — the highest probed offered rate every node
     * sustained (0 when even the lowest probe overloaded some node;
     * nodeCells then record that lowest probe). In fixed-rate mode
     * the knee stays 0 and rateProbes 0.
     */
    double kneeRatePerS = 0.0;

    /** Probes the auto search spent on this placement. */
    std::uint64_t rateProbes = 0;
};

/** Whole-fleet outcome (what g10fleet reports). */
struct FleetResult
{
    FleetSpec spec;

    /** Display names of the job classes, by class index. */
    std::vector<std::string> classNames;

    /** Node names, by node index (spec order). */
    std::vector<std::string> nodeNames;

    /** Unloaded latencies, [node][class] — each node's SLO reference
     *  on one of its own idle partition slots. */
    std::vector<std::vector<ServeClassBaseline>> baselines;

    /** One entry per spec placement, in spec order. */
    std::vector<FleetPlacementResult> placements;

    /** Fleet-wide observability counters (empty unless the run
     *  collected them): per-cell registries merged in
     *  (placement, node) order, worker-count independent. In
     *  auto-knee mode, decided probes merge in probe order per
     *  placement — wasted speculation is dropped wholesale. */
    CounterRegistry counters;

    /** Auto-knee probe-scheduler totals (all zero in fixed-rate
     *  mode). Reporting-only, like the serve sweep's: speculation
     *  depends on pool timing, the decided path never does. */
    std::uint64_t probesIssued = 0;
    std::uint64_t probesSpeculative = 0;
    std::uint64_t probeSpecUsed = 0;
    std::uint64_t probeSpecWasted = 0;
    std::uint64_t probeCacheHits = 0;

    /** True when no node cell had failed (crashed) jobs. */
    bool allSucceeded() const;
};

/** Observability hookup for one fleet run (all fields optional). */
struct FleetObsRequest
{
    /** Merge every cell's CounterRegistry into the result. */
    bool collectCounters = false;

    /**
     * Event sink for the *first* placement's cells. Nodes stream into
     * it with per-node pid offsets (node i's request pids start at
     * i * kFleetPidStride), so one Chrome trace renders the whole
     * fleet with one process group per node. Traced cells run
     * sequentially (sinks are not thread-safe); results are
     * bit-identical either way.
     */
    TraceSink* sink = nullptr;

    bool any() const { return collectCounters || sink != nullptr; }
};

/** Pid stride between nodes in a fleet trace (request pids are
 *  node * stride + node-local request index). */
inline constexpr int kFleetPidStride = 100000;

/** Simulates one fleet spec across its placement policies. */
class FleetSim
{
  public:
    explicit FleetSim(const FleetSpec& spec);
    ~FleetSim();  // defined where SweepPlanCache is complete

    /** Run every (placement, node) cell through @p engine's pool. */
    FleetResult run(ExperimentEngine& engine);

    /** run() with observability (counters merged in grid order). */
    FleetResult run(ExperimentEngine& engine,
                    const FleetObsRequest& obs);

    // ---- Introspection (tests and tools) -----------------------------

    /** The shared fleet arrival stream (node-count independent). */
    const std::vector<ServeRequest>& stream() const { return stream_; }

    /** Resolved job classes (batch sizes and names defaulted). */
    const std::vector<ServeJobClass>& classes() const
    {
        return classes_;
    }

    /** Node @p i's resolved ServeSpec (seed split from the fleet). */
    const ServeSpec& nodeServeSpec(std::size_t i) const
    {
        return nodeSpecs_.at(i);
    }

    /** Route the shared stream under @p kind (pure, repeatable). */
    RoutedStream routed(PlacementKind kind) const
    {
        return router_->route(kind, stream_);
    }

  private:
    FleetSpec spec_;
    std::vector<ServeJobClass> classes_;  ///< resolved classes
    std::vector<KernelTrace> traces_;     ///< per-class, scaled
    std::vector<Bytes> floors_;           ///< per-class capacity floors
    std::vector<TimeNs> serviceEst_;      ///< per-class plan estimates
    std::vector<ServeSpec> nodeSpecs_;    ///< stable: ServeSim holds refs
    std::vector<ServeRequest> stream_;    ///< the shared fleet stream
    std::unique_ptr<Router> router_;

    /** One compile cache for the whole fleet: identical nodes compile
     *  each (model, capacity, seed-chain) plan once, and every
     *  placement's grid reuses it (keys fingerprint the node's system
     *  config, so heterogeneous nodes coexist). Null when every node
     *  spec turned sweep_cache off. */
    std::unique_ptr<SweepPlanCache> planCache_;

    /** Per-node unloaded baselines [node][class]. */
    std::vector<std::vector<ServeClassBaseline>>
    computeBaselines(ExperimentEngine& engine) const;

    /** Aggregate one placement's node cells into fleet metrics.
     *  @p firstArrival anchors the makespan: the shared stream's
     *  first arrival in fixed-rate mode, the knee probe's in auto
     *  mode (each probed rate redraws arrival times). */
    FleetMetrics aggregate(const FleetPlacementResult& placement,
                           TimeNs firstArrival) const;

    /** The shared stream re-timed at offered rate @p rate (identical
     *  class sequence — picks draw from their own RNG stream). */
    std::vector<ServeRequest> streamAtRate(double rate) const;

    /**
     * `rate = auto`: per placement, bisect the fleet-wide offered
     * rate for the capacity knee through the speculative probe
     * scheduler. One probe = route the re-timed stream, then run
     * every node sequentially inside the probe; one SweepPlanCache
     * and one ProbeCache span all nodes and placements.
     */
    void runKnee(ExperimentEngine& engine, const FleetObsRequest& obs,
                 FleetResult* out);
};

}  // namespace g10

#endif  // G10_FLEET_FLEET_SIM_H
