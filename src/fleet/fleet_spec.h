/**
 * @file
 * Fleet-scenario description: N heterogeneous GPU+SSD serving nodes
 * behind one router. Each node is a full ServeSim scenario (its own
 * SystemConfig, partition slots, and admission queue); the fleet spec
 * adds the shared arrival stream, the single design under test, the
 * placement-policy sweep axis, and per-node capacity overrides —
 * plus a strict `key = value` fleet-file parser for the g10fleet CLI,
 * following the serve-file format conventions.
 */

#ifndef G10_FLEET_FLEET_SPEC_H
#define G10_FLEET_FLEET_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "serve/serve_spec.h"

namespace g10 {

/**
 * How the router maps one fleet request onto a node.
 *
 *  - JoinShortestQueue: least estimated backlog per slot at arrival
 *    time (classic JSQ, normalized so heterogeneous slot counts
 *    compare fairly).
 *  - PlanAware: by compiled working-set footprint — only nodes whose
 *    partition slot fits the class's capacity floor are eligible, and
 *    among them the one with the least in-flight footprint per GPU
 *    byte wins (big models land on big nodes, small models fill the
 *    gaps).
 *  - ClassAffinity: one home node per model family (ModelKind), so a
 *    node's plan cache sees the same model repeatedly and nearly
 *    every admission compile is a warm start. Pins come from the
 *    node specs (`families = ...`); unpinned families are assigned
 *    in first-appearance order to the emptiest node.
 */
enum class PlacementKind
{
    JoinShortestQueue,
    PlanAware,
    ClassAffinity,
};

/** CLI/file name of a placement policy ("jsq", "planaware",
 *  "affinity"). */
const char* placementKindName(PlacementKind kind);

/** Parse a placement-policy name; false on unknown input. */
bool placementKindFromName(const std::string& name, PlacementKind* out);

/**
 * One node of the fleet. Zero-valued knobs inherit the fleet-level
 * value, so a homogeneous fleet is just N named lines.
 */
struct FleetNodeSpec
{
    /** Display name (unique within the fleet). */
    std::string name;

    /** Platform overrides, pre-scaling; 0 = inherit FleetSpec::sys. */
    double gpuGb = 0.0;
    double hostGb = 0.0;
    double ssdGbps = 0.0;
    double pcieGbps = 0.0;

    /** Concurrent partition slots; 0 = inherit FleetSpec::slots. */
    int slots = 0;

    /** Admission queue bound; -1 = inherit FleetSpec::queueCapacity. */
    long long queue = -1;

    /** Model families pinned to this node (ClassAffinity only). A
     *  family may be pinned to at most one node. */
    std::vector<ModelKind> families;
};

/** Everything one fleet experiment needs. */
struct FleetSpec
{
    /** Fleet-default platform before scaling (Table 2 defaults). */
    SystemConfig sys;

    /** Divide batches and capacities by this factor (1 = paper scale). */
    unsigned scaleDown = 16;

    /** Base RNG seed: the shared arrival stream draws from it, and
     *  every node's ServeSpec seed is split from it (fleetNodeSeed). */
    std::uint64_t seed = 42;

    // Fleet-level node defaults (each overridable per node).
    int slots = 2;
    std::size_t queueCapacity = 8;

    PartitionPolicy partitionPolicy = PartitionPolicy::Static;
    double resizeHysteresis = 0.25;
    AdmitPolicy admit = AdmitPolicy::Fifo;
    TimeNs starvationNs = 500 * MSEC;
    double sloFactor = 3.0;

    /** Requests offered to the whole fleet. */
    int requests = 24;

    /** Shared arrival process (poisson | bursty; trace arrivals are
     *  a per-node concept and rejected by the parser). */
    ArrivalSpec arrival;

    /** Fleet-wide offered arrival rate in requests/second. */
    double rate = 1.0;

    /**
     * `rate = auto`: instead of evaluating one hand-guessed rate,
     * bisect per placement for the fleet's sustained-throughput knee
     * — grow the offered rate geometrically until some node's queue
     * overflows, then bisect the bracket. Probes share one plan cache
     * and one probe cache across all nodes and placements, and run
     * through the same speculative scheduler as the serve sweep.
     */
    bool ratesAuto = false;

    /** First probe rate of the auto search; 0 = 0.05 req/s. */
    double rateLo = 0.0;

    /** Optional auto-search ceiling; 0 = unbounded (probe-limited). */
    double rateHi = 0.0;

    /** Max probes per placement in auto mode. */
    int rateProbes = 10;

    /** Speculative parallel knee probes (`speculate = on|off`); pure
     *  wall-clock, byte-identical results either way. */
    bool speculativeProbes = true;

    /** The auto search's actual first probe rate: rateLo, defaulted,
     *  and clamped under the rateHi ceiling when one is set. */
    double resolvedRateLo() const
    {
        double lo = rateLo > 0.0 ? rateLo : 0.05;
        if (rateHi > 0.0 && lo > rateHi)
            lo = rateHi;
        return lo;
    }

    /** The design every node runs (registry name). */
    std::string design = "g10";

    /** Sweep axis: placement policies to route the same stream by. */
    std::vector<PlacementKind> placements;

    /** Job classes of the shared arrival mix. */
    std::vector<ServeJobClass> classes;

    /** The nodes. */
    std::vector<FleetNodeSpec> nodes;

    /** Node @p i's platform: fleet sys with the node's overrides. */
    SystemConfig nodeSystem(std::size_t i) const;

    /** Node @p i's full ServeSim scenario: the node platform, the
     *  inherited/overridden slots and queue bound, and the seed split
     *  from the fleet seed — independent of every other node. */
    ServeSpec nodeServeSpec(std::size_t i) const;
};

/**
 * Node @p node's RNG seed, split from the fleet seed with a splitmix64
 * finalizer. The split is a pure function of (fleetSeed, node), so a
 * node keeps its seed — and its per-job perturbations — no matter how
 * many nodes the fleet has (pinned by a golden test).
 */
std::uint64_t fleetNodeSeed(std::uint64_t fleetSeed, std::size_t node);

/**
 * Parse a fleet file. Unknown keys, malformed values, and inconsistent
 * scenarios are fatal (exit 1) with file/line diagnostics. Format:
 *
 *   # fleet-level keys (node defaults + the shared stream)
 *   scale       = 32          # 1/N platform scale
 *   seed        = 42
 *   slots       = 2           # default slots per node
 *   queue       = 8           # default admission queue bound
 *   partition_policy = static # static | proportional | ondemand
 *   resize_hysteresis = 0.25
 *   admission   = fifo        # fifo | sjf | priority
 *   starvation_ms = 500
 *   slo_factor  = 3
 *   requests    = 24          # offered to the whole fleet
 *   arrival     = poisson     # poisson | bursty
 *   burst_on_ms / burst_off_ms = <bursty windows>
 *   rate        = 1.0         # fleet-wide requests/second
 *   rate        = auto        # or: bisect for the fleet knee
 *   rate_lo / rate_hi = <auto-search bracket (optional)>
 *   rate_probes = 10          # max probes per placement (auto mode)
 *   speculate   = on          # on | off: speculative knee probes
 *                             # (wall-clock only; byte-identical)
 *   design      = g10         # the design every node runs
 *   placements  = jsq,planaware,affinity
 *   gpu_mem_gb / host_mem_gb / ssd_gbps / pcie_gbps = <defaults>
 *
 *   # one line per class: "class = <Model> key=value ..."
 *   class = ResNet152 batch=256 weight=2
 *
 *   # one line per node: "node = <name> key=value ..."
 *   #   keys: gpu_gb, host_gb, ssd_gbps, pcie_gbps, slots, queue,
 *   #         families=ModelA,ModelB (affinity pins)
 *   node = big0 gpu_gb=40 slots=2
 *   node = small0 gpu_gb=16 slots=1 families=BERT
 */
FleetSpec parseFleetFile(const std::string& path);

/**
 * The built-in demo fleet (g10fleet --demo and the CI smoke run):
 * a heterogeneous 4-node fleet (two big nodes, one mid-size, one
 * small node with the BERT family pinned) absorbing the serve demo's
 * class mix under Poisson traffic, compared across all three
 * placement policies, at platform scale 1/@p scale.
 */
FleetSpec demoFleetSpec(unsigned scale);

}  // namespace g10

#endif  // G10_FLEET_FLEET_SPEC_H
