#include "router.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "engine/partition.h"

namespace g10 {

namespace {

/** Drop in-flight entries that departed at or before @p now. */
template <typename T, typename DepOf>
void
prune(std::vector<T>* inflight, TimeNs now, DepOf dep)
{
    inflight->erase(
        std::remove_if(inflight->begin(), inflight->end(),
                       [&](const T& e) { return dep(e) <= now; }),
        inflight->end());
}

}  // namespace

Router::Router(const FleetSpec& spec,
               const std::vector<ServeJobClass>& classes,
               const std::vector<TimeNs>& serviceEstNs,
               const std::vector<Bytes>& footprint)
    : spec_(spec), classes_(classes), serviceEst_(serviceEstNs),
      footprint_(footprint)
{
    if (serviceEst_.size() != classes_.size() ||
        footprint_.size() != classes_.size())
        panic("Router: per-class inputs disagree (%zu classes, %zu "
              "estimates, %zu footprints)",
              classes_.size(), serviceEst_.size(), footprint_.size());
    if (spec_.nodes.empty())
        panic("Router: fleet has no nodes");

    slots_.reserve(spec_.nodes.size());
    totalGpu_.reserve(spec_.nodes.size());
    slotGpu_.reserve(spec_.nodes.size());
    for (std::size_t n = 0; n < spec_.nodes.size(); ++n) {
        const int slots = spec_.nodes[n].slots > 0 ? spec_.nodes[n].slots
                                                   : spec_.slots;
        const SystemConfig scaled =
            spec_.nodeSystem(n).scaledDown(spec_.scaleDown);
        const SystemConfig slot =
            partitionShare(scaled, 1.0 / static_cast<double>(slots));
        slots_.push_back(slots);
        totalGpu_.push_back(scaled.gpuMemBytes);
        slotGpu_.push_back(slot.gpuMemBytes);
    }
}

RoutedStream
Router::route(PlacementKind kind,
              const std::vector<ServeRequest>& stream) const
{
    switch (kind) {
      case PlacementKind::JoinShortestQueue:
        return routeJsq(stream);
      case PlacementKind::PlanAware:
        return routePlanAware(stream);
      case PlacementKind::ClassAffinity:
        return routeAffinity(stream);
    }
    panic("Router: unknown placement kind");
}

namespace {

/** Start an empty routed stream for @p nodes nodes. */
RoutedStream
emptyRouted(std::size_t nodes, std::size_t requests)
{
    RoutedStream out;
    out.nodeOf.reserve(requests);
    out.perNode.resize(nodes);
    out.perNodeGlobal.resize(nodes);
    return out;
}

/** Append fleet request @p i to node @p n's substream. */
void
assign(RoutedStream* out, std::size_t n, std::size_t i,
       const ServeRequest& r)
{
    out->nodeOf.push_back(n);
    out->perNode[n].push_back(r);
    out->perNodeGlobal[n].push_back(i);
}

}  // namespace

RoutedStream
Router::routeJsq(const std::vector<ServeRequest>& stream) const
{
    const std::size_t nn = spec_.nodes.size();
    RoutedStream out = emptyRouted(nn, stream.size());

    // Estimated departure times of the requests each node currently
    // holds. Backlog is normalized per slot so a 1-slot node and a
    // 2-slot node at the same depth do not look equally loaded.
    std::vector<std::vector<TimeNs>> inflight(nn);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const ServeRequest& r = stream[i];
        std::size_t best = 0;
        double bestScore = 0.0;
        for (std::size_t n = 0; n < nn; ++n) {
            prune(&inflight[n], r.arrivalNs,
                  [](TimeNs dep) { return dep; });
            const double score =
                static_cast<double>(inflight[n].size()) /
                static_cast<double>(slots_[n]);
            if (n == 0 || score < bestScore) {
                best = n;
                bestScore = score;
            }
        }
        const double depth =
            static_cast<double>(inflight[best].size()) /
            static_cast<double>(slots_[best]);
        const TimeNs est = serviceEst_[r.classIndex];
        inflight[best].push_back(
            r.arrivalNs +
            static_cast<TimeNs>(static_cast<double>(est) *
                                (1.0 + depth)));
        assign(&out, best, i, r);
    }
    return out;
}

RoutedStream
Router::routePlanAware(const std::vector<ServeRequest>& stream) const
{
    const std::size_t nn = spec_.nodes.size();
    RoutedStream out = emptyRouted(nn, stream.size());

    struct InFlight
    {
        TimeNs dep = 0;
        Bytes fp = 0;
    };
    std::vector<std::vector<InFlight>> inflight(nn);
    std::vector<Bytes> inflightBytes(nn, 0);

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const ServeRequest& r = stream[i];
        const Bytes fp = footprint_[r.classIndex];
        for (std::size_t n = 0; n < nn; ++n) {
            std::vector<InFlight>& fl = inflight[n];
            fl.erase(std::remove_if(fl.begin(), fl.end(),
                                    [&](const InFlight& e) {
                                        if (e.dep > r.arrivalNs)
                                            return false;
                                        inflightBytes[n] -= e.fp;
                                        return true;
                                    }),
                     fl.end());
        }

        // Eligibility: the class's compiled working-set footprint must
        // fit one partition slot. A class too big for every node falls
        // back to the roomiest slot (it will fail there explicitly,
        // exactly as a single overloaded node would report it).
        std::size_t best = SIZE_MAX;
        double bestScore = 0.0;
        for (std::size_t n = 0; n < nn; ++n) {
            if (slotGpu_[n] < fp)
                continue;
            const double score =
                static_cast<double>(inflightBytes[n] + fp) /
                static_cast<double>(totalGpu_[n]);
            if (best == SIZE_MAX || score < bestScore) {
                best = n;
                bestScore = score;
            }
        }
        if (best == SIZE_MAX) {
            best = 0;
            for (std::size_t n = 1; n < nn; ++n)
                if (slotGpu_[n] > slotGpu_[best])
                    best = n;
        }

        const double depth =
            static_cast<double>(inflight[best].size()) /
            static_cast<double>(slots_[best]);
        const TimeNs est = serviceEst_[r.classIndex];
        InFlight e;
        e.dep = r.arrivalNs +
                static_cast<TimeNs>(static_cast<double>(est) *
                                    (1.0 + depth));
        e.fp = fp;
        inflight[best].push_back(e);
        inflightBytes[best] += fp;
        assign(&out, best, i, r);
    }
    return out;
}

RoutedStream
Router::routeAffinity(const std::vector<ServeRequest>& stream) const
{
    const std::size_t nn = spec_.nodes.size();
    RoutedStream out = emptyRouted(nn, stream.size());

    // Home node per model family: explicit pins first, then unpinned
    // families in stream first-appearance order onto the node homing
    // the fewest families (tie: lowest index). The assignment depends
    // only on the pins and the stream, so appending a node never moves
    // an existing family's home unless that node is strictly emptier.
    std::map<int, std::size_t> home;
    std::vector<std::size_t> homed(nn, 0);
    for (std::size_t n = 0; n < nn; ++n) {
        for (ModelKind fam : spec_.nodes[n].families) {
            const int key = static_cast<int>(fam);
            if (home.count(key))
                panic("Router: family '%s' pinned to two nodes",
                      modelName(fam));
            home[key] = n;
            ++homed[n];
        }
    }

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const ServeRequest& r = stream[i];
        const int key =
            static_cast<int>(classes_[r.classIndex].model);
        auto it = home.find(key);
        if (it == home.end()) {
            std::size_t best = 0;
            for (std::size_t n = 1; n < nn; ++n)
                if (homed[n] < homed[best])
                    best = n;
            it = home.emplace(key, best).first;
            ++homed[best];
        }
        assign(&out, it->second, i, r);
    }
    return out;
}

}  // namespace g10
