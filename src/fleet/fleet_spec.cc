#include "fleet_spec.h"

#include <fstream>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/parse_util.h"
#include "policies/registry.h"

namespace g10 {

namespace {

/** Parse an integer; fatal with location on malformed input. */
long long
parseInt(const std::string& v, const std::string& path, std::size_t line,
         const std::string& key)
{
    long long out = 0;
    if (!parseIntStrict(v, &out))
        fatal("%s:%zu: '%s' needs an integer, got '%s'", path.c_str(),
              line, key.c_str(), v.c_str());
    return out;
}

/** Parse a double; fatal with location on malformed input. */
double
parseDouble(const std::string& v, const std::string& path,
            std::size_t line, const std::string& key)
{
    double out = 0.0;
    if (!parseDoubleStrict(v, &out))
        fatal("%s:%zu: '%s' needs a number, got '%s'", path.c_str(),
              line, key.c_str(), v.c_str());
    return out;
}

/** Split a comma list ("a,b,c"); empty items are malformed. */
std::vector<std::string>
splitCommaList(const std::string& v, const std::string& path,
               std::size_t line, const std::string& key)
{
    std::vector<std::string> out;
    std::string item;
    std::stringstream ss(v);
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            fatal("%s:%zu: '%s' has an empty list item", path.c_str(),
                  line, key.c_str());
        out.push_back(item);
    }
    if (out.empty() || v.back() == ',')
        fatal("%s:%zu: '%s' needs a comma-separated list", path.c_str(),
              line, key.c_str());
    return out;
}

/** Parse one "class = <Model> k=v ..." payload (serve-file format). */
ServeJobClass
parseClassLine(const std::string& payload, const std::string& path,
               std::size_t line)
{
    std::stringstream ss(payload);
    std::string model_name;
    if (!(ss >> model_name))
        fatal("%s:%zu: 'class =' needs at least a model name",
              path.c_str(), line);

    ServeJobClass cls;
    cls.model = modelKindFromName(model_name);
    std::string tok;
    while (ss >> tok) {
        auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size())
            fatal("%s:%zu: class attribute '%s' is not key=value",
                  path.c_str(), line, tok.c_str());
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        if (key == "batch") {
            cls.batchSize =
                static_cast<int>(parseInt(val, path, line, key));
            if (cls.batchSize < 1)
                fatal("%s:%zu: batch must be >= 1", path.c_str(), line);
        } else if (key == "iterations") {
            cls.iterations =
                static_cast<int>(parseInt(val, path, line, key));
            if (cls.iterations < 1)
                fatal("%s:%zu: iterations must be >= 1", path.c_str(),
                      line);
        } else if (key == "priority") {
            cls.priority =
                static_cast<int>(parseInt(val, path, line, key));
            if (cls.priority < 1 || cls.priority > 1000)
                fatal("%s:%zu: priority must be in [1, 1000]",
                      path.c_str(), line);
        } else if (key == "weight") {
            cls.weight = parseDouble(val, path, line, key);
            if (cls.weight <= 0.0)
                fatal("%s:%zu: weight must be > 0", path.c_str(), line);
        } else if (key == "name") {
            cls.name = val;
        } else {
            fatal("%s:%zu: unknown class attribute '%s' (expected "
                  "batch, iterations, priority, weight, name)",
                  path.c_str(), line, key.c_str());
        }
    }
    if (cls.batchSize <= 0)
        cls.batchSize = paperBatchSize(cls.model);
    if (cls.name.empty())
        cls.name = std::string(modelName(cls.model)) + "-" +
                   std::to_string(cls.batchSize);
    return cls;
}

/** Parse one "node = <name> k=v ..." payload. */
FleetNodeSpec
parseNodeLine(const std::string& payload, const std::string& path,
              std::size_t line)
{
    std::stringstream ss(payload);
    FleetNodeSpec node;
    if (!(ss >> node.name))
        fatal("%s:%zu: 'node =' needs at least a node name",
              path.c_str(), line);

    std::string tok;
    while (ss >> tok) {
        auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size())
            fatal("%s:%zu: node attribute '%s' is not key=value",
                  path.c_str(), line, tok.c_str());
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        if (key == "gpu_gb") {
            node.gpuGb = parseDouble(val, path, line, key);
            if (node.gpuGb <= 0.0)
                fatal("%s:%zu: gpu_gb must be > 0", path.c_str(), line);
        } else if (key == "host_gb") {
            node.hostGb = parseDouble(val, path, line, key);
            if (node.hostGb <= 0.0)
                fatal("%s:%zu: host_gb must be > 0", path.c_str(),
                      line);
        } else if (key == "ssd_gbps") {
            node.ssdGbps = parseDouble(val, path, line, key);
            if (node.ssdGbps <= 0.0)
                fatal("%s:%zu: ssd_gbps must be > 0", path.c_str(),
                      line);
        } else if (key == "pcie_gbps") {
            node.pcieGbps = parseDouble(val, path, line, key);
            if (node.pcieGbps <= 0.0)
                fatal("%s:%zu: pcie_gbps must be > 0", path.c_str(),
                      line);
        } else if (key == "slots") {
            node.slots =
                static_cast<int>(parseInt(val, path, line, key));
            if (node.slots < 1)
                fatal("%s:%zu: slots must be >= 1", path.c_str(),
                      line);
        } else if (key == "queue") {
            node.queue = parseInt(val, path, line, key);
            if (node.queue < 0)
                fatal("%s:%zu: queue must be >= 0", path.c_str(),
                      line);
        } else if (key == "families") {
            for (const std::string& item :
                 splitCommaList(val, path, line, key))
                node.families.push_back(modelKindFromName(item));
        } else {
            fatal("%s:%zu: unknown node attribute '%s' (expected "
                  "gpu_gb, host_gb, ssd_gbps, pcie_gbps, slots, "
                  "queue, families)",
                  path.c_str(), line, key.c_str());
        }
    }
    return node;
}

}  // namespace

const char*
placementKindName(PlacementKind kind)
{
    switch (kind) {
      case PlacementKind::JoinShortestQueue:
        return "jsq";
      case PlacementKind::PlanAware:
        return "planaware";
      case PlacementKind::ClassAffinity:
        return "affinity";
    }
    return "?";
}

bool
placementKindFromName(const std::string& name, PlacementKind* out)
{
    if (name == "jsq")
        *out = PlacementKind::JoinShortestQueue;
    else if (name == "planaware")
        *out = PlacementKind::PlanAware;
    else if (name == "affinity")
        *out = PlacementKind::ClassAffinity;
    else
        return false;
    return true;
}

std::uint64_t
fleetNodeSeed(std::uint64_t fleetSeed, std::size_t node)
{
    // splitmix64 finalizer over the node's slice of the golden-ratio
    // sequence: well-mixed, portable, and a pure function of
    // (fleetSeed, node) — adding nodes never moves an existing seed.
    std::uint64_t z = fleetSeed + 0x9e3779b97f4a7c15ULL *
                                      (static_cast<std::uint64_t>(node) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

SystemConfig
FleetSpec::nodeSystem(std::size_t i) const
{
    const FleetNodeSpec& node = nodes.at(i);
    SystemConfig out = sys;
    if (node.gpuGb > 0.0)
        out.gpuMemBytes = static_cast<Bytes>(node.gpuGb * 1e9);
    if (node.hostGb > 0.0)
        out.hostMemBytes = static_cast<Bytes>(node.hostGb * 1e9);
    if (node.ssdGbps > 0.0)
        out.setSsdBandwidthGBps(node.ssdGbps);
    if (node.pcieGbps > 0.0)
        out.pcieGBps = node.pcieGbps;
    return out;
}

ServeSpec
FleetSpec::nodeServeSpec(std::size_t i) const
{
    const FleetNodeSpec& node = nodes.at(i);
    ServeSpec out;
    out.sys = nodeSystem(i);
    out.scaleDown = scaleDown;
    out.seed = fleetNodeSeed(seed, i);
    out.slots = node.slots > 0 ? node.slots : slots;
    out.partitionPolicy = partitionPolicy;
    out.resizeHysteresis = resizeHysteresis;
    out.queueCapacity = node.queue >= 0
                            ? static_cast<std::size_t>(node.queue)
                            : queueCapacity;
    out.admit = admit;
    out.starvationNs = starvationNs;
    out.sloFactor = sloFactor;
    out.requests = requests;
    out.arrival = arrival;
    out.rates = {rate};
    out.designs = {design};
    out.classes = classes;
    return out;
}

FleetSpec
parseFleetFile(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open fleet file '%s'", path.c_str());

    FleetSpec spec;
    spec.placements.clear();

    std::set<std::string> seen;  // scalar keys may not repeat
    std::string line;
    std::size_t lineno = 0;
    bool have_rate = false;
    while (std::getline(f, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);

        std::stringstream ss(line);
        std::string key, eq;
        if (!(ss >> key))
            continue;  // blank / comment-only line
        if (!(ss >> eq) || eq != "=")
            fatal("%s:%zu: expected 'key = value'", path.c_str(),
                  lineno);

        if (key == "class") {
            std::string payload;
            std::getline(ss, payload);
            spec.classes.push_back(
                parseClassLine(payload, path, lineno));
            continue;
        }
        if (key == "node") {
            std::string payload;
            std::getline(ss, payload);
            spec.nodes.push_back(parseNodeLine(payload, path, lineno));
            continue;
        }

        std::string value, extra;
        if (!(ss >> value))
            fatal("%s:%zu: '%s =' is missing a value", path.c_str(),
                  lineno, key.c_str());
        if (ss >> extra)
            fatal("%s:%zu: trailing garbage '%s' after value",
                  path.c_str(), lineno, extra.c_str());
        if (!seen.insert(key).second)
            fatal("%s:%zu: duplicate key '%s'", path.c_str(), lineno,
                  key.c_str());

        if (key == "scale") {
            long long v = parseInt(value, path, lineno, key);
            if (v < 1)
                fatal("%s:%zu: scale must be >= 1", path.c_str(),
                      lineno);
            spec.scaleDown = static_cast<unsigned>(v);
        } else if (key == "seed") {
            spec.seed = static_cast<std::uint64_t>(
                parseInt(value, path, lineno, key));
        } else if (key == "slots") {
            long long v = parseInt(value, path, lineno, key);
            if (v < 1)
                fatal("%s:%zu: slots must be >= 1", path.c_str(),
                      lineno);
            spec.slots = static_cast<int>(v);
        } else if (key == "queue") {
            long long v = parseInt(value, path, lineno, key);
            if (v < 0)
                fatal("%s:%zu: queue must be >= 0", path.c_str(),
                      lineno);
            spec.queueCapacity = static_cast<std::size_t>(v);
        } else if (key == "partition_policy") {
            if (!partitionPolicyFromName(value, &spec.partitionPolicy))
                fatal("%s:%zu: unknown partition_policy '%s' (static "
                      "| proportional | ondemand)",
                      path.c_str(), lineno, value.c_str());
        } else if (key == "resize_hysteresis") {
            spec.resizeHysteresis =
                parseDouble(value, path, lineno, key);
            if (spec.resizeHysteresis < 0.0 ||
                spec.resizeHysteresis >= 1.0)
                fatal("%s:%zu: resize_hysteresis must be in [0, 1)",
                      path.c_str(), lineno);
        } else if (key == "admission") {
            if (!admitPolicyFromName(value, &spec.admit))
                fatal("%s:%zu: unknown admission '%s' (fifo | sjf | "
                      "priority)",
                      path.c_str(), lineno, value.c_str());
        } else if (key == "starvation_ms") {
            spec.starvationNs = static_cast<TimeNs>(
                parseDouble(value, path, lineno, key) *
                static_cast<double>(MSEC));
        } else if (key == "slo_factor") {
            spec.sloFactor = parseDouble(value, path, lineno, key);
            if (spec.sloFactor <= 0.0)
                fatal("%s:%zu: slo_factor must be > 0", path.c_str(),
                      lineno);
        } else if (key == "requests") {
            long long v = parseInt(value, path, lineno, key);
            if (v < 1)
                fatal("%s:%zu: requests must be >= 1", path.c_str(),
                      lineno);
            spec.requests = static_cast<int>(v);
        } else if (key == "arrival") {
            if (!arrivalKindFromName(value, &spec.arrival.kind))
                fatal("%s:%zu: unknown arrival '%s' (poisson | "
                      "bursty)",
                      path.c_str(), lineno, value.c_str());
            if (spec.arrival.kind == ArrivalKind::Trace)
                fatal("%s:%zu: fleet arrivals must be poisson or "
                      "bursty (trace arrivals are per-node)",
                      path.c_str(), lineno);
        } else if (key == "burst_on_ms") {
            spec.arrival.burstOnSec =
                parseDouble(value, path, lineno, key) / 1e3;
            if (spec.arrival.burstOnSec <= 0.0)
                fatal("%s:%zu: burst_on_ms must be > 0", path.c_str(),
                      lineno);
        } else if (key == "burst_off_ms") {
            spec.arrival.burstOffSec =
                parseDouble(value, path, lineno, key) / 1e3;
            if (spec.arrival.burstOffSec < 0.0)
                fatal("%s:%zu: burst_off_ms must be >= 0", path.c_str(),
                      lineno);
        } else if (key == "rate") {
            if (value == "auto") {
                spec.ratesAuto = true;
            } else {
                spec.rate = parseDouble(value, path, lineno, key);
                if (spec.rate <= 0.0)
                    fatal("%s:%zu: rate must be > 0", path.c_str(),
                          lineno);
            }
            have_rate = true;
        } else if (key == "rate_lo") {
            spec.rateLo = parseDouble(value, path, lineno, key);
            if (spec.rateLo <= 0.0)
                fatal("%s:%zu: rate_lo must be > 0", path.c_str(),
                      lineno);
        } else if (key == "rate_hi") {
            spec.rateHi = parseDouble(value, path, lineno, key);
            if (spec.rateHi <= 0.0)
                fatal("%s:%zu: rate_hi must be > 0", path.c_str(),
                      lineno);
        } else if (key == "rate_probes") {
            long long v = parseInt(value, path, lineno, key);
            if (v < 2)
                fatal("%s:%zu: rate_probes must be >= 2", path.c_str(),
                      lineno);
            spec.rateProbes = static_cast<int>(v);
        } else if (key == "speculate") {
            if (value == "on")
                spec.speculativeProbes = true;
            else if (value == "off")
                spec.speculativeProbes = false;
            else
                fatal("%s:%zu: speculate must be 'on' or 'off'",
                      path.c_str(), lineno);
        } else if (key == "design") {
            if (!PolicyRegistry::instance().contains(value))
                fatal("%s:%zu: unknown design '%s' (registered: %s)",
                      path.c_str(), lineno, value.c_str(),
                      PolicyRegistry::instance().knownNames().c_str());
            spec.design = value;
        } else if (key == "placements") {
            for (const std::string& item :
                 splitCommaList(value, path, lineno, key)) {
                PlacementKind kind;
                if (!placementKindFromName(item, &kind))
                    fatal("%s:%zu: unknown placement '%s' (jsq | "
                          "planaware | affinity)",
                          path.c_str(), lineno, item.c_str());
                spec.placements.push_back(kind);
            }
        } else if (key == "gpu_mem_gb") {
            double v = parseDouble(value, path, lineno, key);
            if (v <= 0.0)
                fatal("%s:%zu: gpu_mem_gb must be > 0", path.c_str(),
                      lineno);
            spec.sys.gpuMemBytes = static_cast<Bytes>(v * 1e9);
        } else if (key == "host_mem_gb") {
            spec.sys.hostMemBytes = static_cast<Bytes>(
                parseDouble(value, path, lineno, key) * 1e9);
        } else if (key == "ssd_gbps") {
            spec.sys.setSsdBandwidthGBps(
                parseDouble(value, path, lineno, key));
        } else if (key == "pcie_gbps") {
            spec.sys.pcieGBps = parseDouble(value, path, lineno, key);
        } else {
            fatal("%s:%zu: unknown key '%s' (expected class, node, "
                  "scale, seed, slots, queue, partition_policy, "
                  "resize_hysteresis, admission, starvation_ms, "
                  "slo_factor, requests, arrival, burst_on_ms, "
                  "burst_off_ms, rate, rate_lo, rate_hi, "
                  "rate_probes, speculate, design, placements, "
                  "gpu_mem_gb, host_mem_gb, ssd_gbps, pcie_gbps)",
                  path.c_str(), lineno, key.c_str());
        }
    }

    // Cross-key consistency.
    if (!have_rate)
        fatal("%s: fleet file needs 'rate = ...'", path.c_str());
    if (spec.rateLo > 0.0 && spec.rateHi > 0.0 &&
        spec.rateHi < spec.rateLo)
        fatal("%s: rate_hi must be >= rate_lo", path.c_str());
    if (spec.classes.empty())
        fatal("%s: fleet file defines no job classes", path.c_str());
    if (spec.nodes.empty())
        fatal("%s: fleet file defines no nodes", path.c_str());
    if (spec.placements.empty())
        fatal("%s: fleet file needs 'placements = ...'", path.c_str());
    std::set<std::string> node_names;
    for (const FleetNodeSpec& node : spec.nodes)
        if (!node_names.insert(node.name).second)
            fatal("%s: duplicate node name '%s'", path.c_str(),
                  node.name.c_str());
    std::set<int> pinned;
    for (const FleetNodeSpec& node : spec.nodes)
        for (ModelKind fam : node.families)
            if (!pinned.insert(static_cast<int>(fam)).second)
                fatal("%s: family '%s' is pinned to two nodes",
                      path.c_str(), modelName(fam));
    return spec;
}

FleetSpec
demoFleetSpec(unsigned scale)
{
    FleetSpec spec;
    spec.scaleDown = scale;
    spec.requests = 24;
    // Loaded enough that queues build and JSQ actually balances (at
    // low rates every arrival finds an idle fleet and ties break to
    // node 0), yet safely inside every node's capacity: no
    // rejections, no failures at the CI smoke scales.
    spec.rate = 3.0;
    spec.design = "g10";
    spec.placements = {PlacementKind::JoinShortestQueue,
                       PlacementKind::PlanAware,
                       PlacementKind::ClassAffinity};

    // The serve demo's class mix: two ResNet batch shapes + BERT.
    ServeJobClass big;
    big.model = ModelKind::ResNet152;
    big.batchSize = 512;
    big.weight = 1.0;
    ServeJobClass small;
    small.model = ModelKind::ResNet152;
    small.batchSize = 256;
    small.weight = 2.0;
    ServeJobClass bert;
    bert.model = ModelKind::BertBase;
    bert.weight = 1.0;
    spec.classes = {big, small, bert};
    for (ServeJobClass& c : spec.classes) {
        if (c.batchSize <= 0)
            c.batchSize = paperBatchSize(c.model);
        c.name = std::string(modelName(c.model)) + "-" +
                 std::to_string(c.batchSize);
    }

    // Heterogeneous 4-node fleet: two big 40 GB nodes, a mid-size
    // 28 GB node, and a small single-slot 20 GB node that affinity
    // routing keeps warm with the BERT family.
    FleetNodeSpec big0;
    big0.name = "big0";
    big0.gpuGb = 40.0;
    big0.slots = 2;
    FleetNodeSpec big1;
    big1.name = "big1";
    big1.gpuGb = 40.0;
    big1.slots = 2;
    FleetNodeSpec mid0;
    mid0.name = "mid0";
    mid0.gpuGb = 28.0;
    mid0.hostGb = 96.0;
    mid0.slots = 2;
    FleetNodeSpec small0;
    small0.name = "small0";
    small0.gpuGb = 20.0;
    small0.hostGb = 64.0;
    small0.slots = 1;
    small0.families = {ModelKind::BertBase};
    spec.nodes = {big0, big1, mid0, small0};
    return spec;
}

}  // namespace g10
