/**
 * @file
 * Fleet request router: maps one shared arrival stream onto N
 * heterogeneous serving nodes under a pluggable placement policy.
 *
 * Routing is a pure function of the spec and the stream — it draws no
 * randomness and simulates nothing. Policies rank nodes with cheap
 * compile-time knowledge only (plan service estimates and working-set
 * footprints, both known before any job runs), mirroring what a real
 * front-end load balancer could compute per request. The routed
 * substreams keep fleet arrival times, so every node sees the exact
 * open-loop process the fleet was offered.
 */

#ifndef G10_FLEET_ROUTER_H
#define G10_FLEET_ROUTER_H

#include <cstdint>
#include <vector>

#include "fleet/fleet_spec.h"
#include "serve/serve_sim.h"

namespace g10 {

/** The shared stream split into per-node substreams. */
struct RoutedStream
{
    /** Node index of each fleet request (stream order). */
    std::vector<std::size_t> nodeOf;

    /** Per node: its substream, fleet arrival times preserved. */
    std::vector<std::vector<ServeRequest>> perNode;

    /** Per node: the fleet index of each substream request (for
     *  mapping node-local outcomes back to the fleet stream). */
    std::vector<std::vector<std::size_t>> perNodeGlobal;
};

/** Routes one fleet stream; construct once, route per placement. */
class Router
{
  public:
    /**
     * @param spec         the fleet (node shapes and defaults)
     * @param classes      resolved job classes of the stream
     * @param serviceEstNs per-class plan service estimates
     *                     (planServiceEstimateNs)
     * @param footprint    per-class compiled working-set footprints
     *                     (serveClassGpuFloor)
     */
    Router(const FleetSpec& spec,
           const std::vector<ServeJobClass>& classes,
           const std::vector<TimeNs>& serviceEstNs,
           const std::vector<Bytes>& footprint);

    /** Split @p stream across the nodes under @p kind. */
    RoutedStream route(PlacementKind kind,
                       const std::vector<ServeRequest>& stream) const;

    /** Per-node scaled GPU bytes of one partition slot (what
     *  plan-aware placement checks footprints against). */
    const std::vector<Bytes>& slotGpuBytes() const
    {
        return slotGpu_;
    }

  private:
    RoutedStream
    routeJsq(const std::vector<ServeRequest>& stream) const;
    RoutedStream
    routePlanAware(const std::vector<ServeRequest>& stream) const;
    RoutedStream
    routeAffinity(const std::vector<ServeRequest>& stream) const;

    const FleetSpec& spec_;
    const std::vector<ServeJobClass>& classes_;
    const std::vector<TimeNs>& serviceEst_;
    const std::vector<Bytes>& footprint_;

    std::vector<int> slots_;       ///< per node, after inheritance
    std::vector<Bytes> totalGpu_;  ///< per node, scaled machine bytes
    std::vector<Bytes> slotGpu_;   ///< per node, scaled slot bytes
};

}  // namespace g10

#endif  // G10_FLEET_ROUTER_H
