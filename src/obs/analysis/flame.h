/**
 * @file
 * Flame aggregation: roll per-kernel stall time up the layer-name
 * hierarchy. Kernel names are '_'-joined paths ("layer1_0_c_conv",
 * "loss_fwd"), so splitting on '_' gives a natural stack; the stall
 * cause becomes the leaf frame. The output is the collapsed-stack
 * format every flamegraph renderer ingests
 * (`layer1;0;c;conv;alloc 123456` — one line per stack, value in
 * nanoseconds), plus the same tree as JSON for tooling.
 */

#ifndef G10_OBS_ANALYSIS_FLAME_H
#define G10_OBS_ANALYSIS_FLAME_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_event.h"

namespace g10 {

/** One collapsed stack with its accumulated stall nanoseconds. */
struct FlameStack
{
    std::string frames;  ///< ';'-joined path, leaf = stall cause
    std::uint64_t stallNs = 0;
};

/** Stall time rolled up by kernel-name hierarchy for one job. */
struct FlameAggregation
{
    int pid = 0;
    std::vector<FlameStack> stacks;  ///< sorted by frames (stable)
    std::uint64_t totalStallNs = 0;
};

/**
 * Aggregate the measured stall spans of @p pid in @p events into
 * collapsed stacks. Deterministic: stacks are keyed and sorted
 * lexicographically, independent of event order.
 */
FlameAggregation aggregateFlame(const std::vector<TraceEvent>& events,
                                int pid = 0);

/** Emit `frames value` lines — the collapsed-stack interchange file. */
void writeCollapsedStacks(std::ostream& os, const FlameAggregation& f);

}  // namespace g10

#endif  // G10_OBS_ANALYSIS_FLAME_H
