/**
 * @file
 * Critical-path extraction over a traced training run: segment the
 * kernel stream into iterations, bind each stall span to its kernel,
 * and find — per iteration — the longest chain of consecutive kernels
 * whose completion was delayed by a blocking stall (alloc / fault /
 * compute_queue / data). The paper's "where does the iteration go"
 * question, answered from the event stream alone so it works on
 * re-ingested --trace files as well as live MemoryTraceSink runs.
 *
 * Iteration segmentation needs no markers: kernel ids strictly
 * increase within one iteration (the runtime replays the schedule in
 * order), so a kernel id <= its predecessor starts a new iteration.
 * Stall spans are emitted immediately after their kernel span and
 * bind to the most recent kernel with the same id.
 */

#ifndef G10_OBS_ANALYSIS_CRITICAL_PATH_H
#define G10_OBS_ANALYSIS_CRITICAL_PATH_H

#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/sched/schedule_types.h"
#include "obs/trace_event.h"

namespace g10 {

/** One kernel on a stall-dependency chain. */
struct CriticalPathStep
{
    KernelId kernel = 0;
    std::string name;
    TimeNs startNs = 0;
    TimeNs durNs = 0;  ///< kernel execution span
    TimeNs causeNs[kNumStallCauses] = {0, 0, 0, 0};

    TimeNs stallNs() const
    {
        TimeNs s = 0;
        for (TimeNs c : causeNs)
            s += c;
        return s;
    }
};

/** The longest run of consecutive stalled kernels in one iteration. */
struct StallChain
{
    std::vector<CriticalPathStep> steps;  ///< empty = no stalls at all
    TimeNs causeNs[kNumStallCauses] = {0, 0, 0, 0};

    TimeNs totalNs() const
    {
        TimeNs s = 0;
        for (TimeNs c : causeNs)
            s += c;
        return s;
    }
};

/** One iteration's decomposition plus its worst chain. */
struct IterationPath
{
    int index = 0;          ///< 0-based iteration number in the trace
    TimeNs beginNs = 0;     ///< first kernel start
    TimeNs endNs = 0;       ///< last kernel end (incl. trailing stall)
    TimeNs computeNs = 0;   ///< sum of kernel execution spans
    TimeNs causeNs[kNumStallCauses] = {0, 0, 0, 0};
    int kernels = 0;
    StallChain chain;       ///< longest consecutive stalled run

    TimeNs spanNs() const { return endNs - beginNs; }

    TimeNs stallNs() const
    {
        TimeNs s = 0;
        for (TimeNs c : causeNs)
            s += c;
        return s;
    }
};

/** Whole-trace critical-path report for one job. */
struct CriticalPathReport
{
    int pid = 0;
    std::vector<IterationPath> iterations;

    /** Index of the iteration with the most stall time; -1 if none. */
    int worstIteration() const;
};

/**
 * Extract the per-iteration critical paths of @p pid's kernel/stall
 * spans in @p events. Purely a fold over the stream — deterministic
 * for a given event sequence, which the worker-count bit-identity
 * test relies on.
 */
CriticalPathReport extractCriticalPath(
    const std::vector<TraceEvent>& events, int pid = 0);

/**
 * Print the per-iteration table, then the worst iteration's chain
 * (up to @p top_n steps ranked by stall time).
 */
void printCriticalPath(std::ostream& os, const CriticalPathReport& r,
                       std::size_t top_n = 20);

}  // namespace g10

#endif  // G10_OBS_ANALYSIS_CRITICAL_PATH_H
