/**
 * @file
 * Differential stall attribution: align two attributed runs (a
 * baseline and a test — e.g. baseuvm vs. g10 on the same model)
 * kernel by kernel and decompose the end-to-end iteration-time delta
 * into per-cause, per-kernel savings.
 *
 * Exactness is inherited, not approximated: within each run,
 * measured − ideal = Σ causes + noise holds in integer nanoseconds by
 * construction (the attribution invariant), so the difference of two
 * runs decomposes as delta = Δideal + Σ Δcause + Δnoise with no
 * residual. printDiffAttribution ends with a reconciliation line that
 * CI greps for "(exact)".
 */

#ifndef G10_OBS_ANALYSIS_DIFF_ATTRIBUTION_H
#define G10_OBS_ANALYSIS_DIFF_ATTRIBUTION_H

#include <ostream>
#include <string>
#include <vector>

#include "obs/attribution.h"

namespace g10 {

/** One kernel's contribution to the base-vs-test delta. All deltas
 *  are base − test: positive = the test run is faster there. */
struct DiffAttributionRow
{
    KernelId kernel = 0;
    std::string name;
    TimeNs baseActualNs = 0;
    TimeNs testActualNs = 0;
    TimeNs idealDeltaNs = 0;
    TimeNs causeDeltaNs[kNumStallCauses] = {0, 0, 0, 0};
    TimeNs noiseDeltaNs = 0;

    TimeNs deltaNs() const { return baseActualNs - testActualNs; }
};

/** Whole-run differential decomposition (base − test throughout). */
struct DiffAttribution
{
    std::string baseLabel;
    std::string testLabel;
    std::vector<DiffAttributionRow> rows;
    TimeNs baseMeasuredNs = 0;
    TimeNs testMeasuredNs = 0;
    TimeNs idealDeltaNs = 0;
    TimeNs causeDeltaNs[kNumStallCauses] = {0, 0, 0, 0};
    TimeNs noiseDeltaNs = 0;

    TimeNs deltaNs() const { return baseMeasuredNs - testMeasuredNs; }

    TimeNs causeDeltaTotalNs() const
    {
        TimeNs s = 0;
        for (TimeNs c : causeDeltaNs)
            s += c;
        return s;
    }

    /** The reconciliation identity; true by construction. */
    bool exact() const
    {
        return deltaNs() ==
               idealDeltaNs + causeDeltaTotalNs() + noiseDeltaNs;
    }
};

/**
 * Align @p base and @p test kernel-by-kernel (missing rows on either
 * side count as zero — the runs may have different kernel counts) and
 * compute the differential decomposition.
 */
DiffAttribution diffStallAttribution(const StallAttribution& base,
                                     const StallAttribution& test,
                                     const std::string& base_label,
                                     const std::string& test_label);

/**
 * Print the @p top_n kernels by |delta| plus totals, ending with the
 * CI-gated reconciliation line
 * `diff check: ... (exact)`.
 */
void printDiffAttribution(std::ostream& os, const DiffAttribution& d,
                          std::size_t top_n = 20);

}  // namespace g10

#endif  // G10_OBS_ANALYSIS_DIFF_ATTRIBUTION_H
