#include "obs/analysis/diff_attribution.h"

#include <algorithm>
#include <cstdlib>

#include "common/table.h"

namespace g10 {

namespace {

double
toMs(TimeNs ns)
{
    return static_cast<double>(ns) / 1e6;
}

}  // namespace

DiffAttribution
diffStallAttribution(const StallAttribution& base,
                     const StallAttribution& test,
                     const std::string& base_label,
                     const std::string& test_label)
{
    DiffAttribution out;
    out.baseLabel = base_label;
    out.testLabel = test_label;
    out.baseMeasuredNs = base.measuredNs;
    out.testMeasuredNs = test.measuredNs;
    out.idealDeltaNs = base.idealNs - test.idealNs;
    for (int c = 0; c < kNumStallCauses; ++c)
        out.causeDeltaNs[c] = base.causeNs[c] - test.causeNs[c];
    out.noiseDeltaNs = base.noiseNs - test.noiseNs;

    const std::size_t n =
        std::max(base.rows.size(), test.rows.size());
    static const StallAttributionRow kZero;
    out.rows.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        const StallAttributionRow& b =
            k < base.rows.size() ? base.rows[k] : kZero;
        const StallAttributionRow& t =
            k < test.rows.size() ? test.rows[k] : kZero;
        DiffAttributionRow& r = out.rows[k];
        r.kernel = static_cast<KernelId>(k);
        r.name = !b.name.empty() ? b.name : t.name;
        r.baseActualNs = b.actualNs;
        r.testActualNs = t.actualNs;
        r.idealDeltaNs = b.idealNs - t.idealNs;
        for (int c = 0; c < kNumStallCauses; ++c)
            r.causeDeltaNs[c] = b.causeNs[c] - t.causeNs[c];
        r.noiseDeltaNs = b.noiseNs() - t.noiseNs();
    }
    return out;
}

void
printDiffAttribution(std::ostream& os, const DiffAttribution& d,
                     std::size_t top_n)
{
    Table table("per-kernel savings, " + d.baseLabel + " - " +
                d.testLabel + " (measured iteration, ms)");
    table.setHeader({"k", "kernel", "base", "test", "delta", "ideal",
                     "alloc", "fault", "queue", "data", "noise"});

    std::vector<const DiffAttributionRow*> ranked;
    for (const DiffAttributionRow& r : d.rows)
        if (r.deltaNs() != 0)
            ranked.push_back(&r);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const DiffAttributionRow* x,
                        const DiffAttributionRow* y) {
                         return std::llabs(x->deltaNs()) >
                                std::llabs(y->deltaNs());
                     });
    if (ranked.size() > top_n)
        ranked.resize(top_n);

    for (const DiffAttributionRow* r : ranked)
        table.addRowOf(static_cast<long long>(r->kernel), r->name,
                       toMs(r->baseActualNs), toMs(r->testActualNs),
                       toMs(r->deltaNs()), toMs(r->idealDeltaNs),
                       toMs(r->causeDeltaNs[0]),
                       toMs(r->causeDeltaNs[1]),
                       toMs(r->causeDeltaNs[2]),
                       toMs(r->causeDeltaNs[3]),
                       toMs(r->noiseDeltaNs));
    table.addRowOf("total", "(all kernels)", toMs(d.baseMeasuredNs),
                   toMs(d.testMeasuredNs), toMs(d.deltaNs()),
                   toMs(d.idealDeltaNs), toMs(d.causeDeltaNs[0]),
                   toMs(d.causeDeltaNs[1]), toMs(d.causeDeltaNs[2]),
                   toMs(d.causeDeltaNs[3]), toMs(d.noiseDeltaNs));
    table.print(os);

    os << "diff check: ideal + alloc + fault + queue + data + noise = "
       << toMs(d.idealDeltaNs + d.causeDeltaTotalNs() + d.noiseDeltaNs)
       << " ms; " << d.baseLabel << " - " << d.testLabel << " = "
       << toMs(d.deltaNs()) << " ms ("
       << (d.exact() ? "exact" : "MISMATCH") << ")\n";
}

}  // namespace g10
