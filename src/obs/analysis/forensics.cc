#include "obs/analysis/forensics.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/table.h"

namespace g10 {

namespace {

double
toMs(TimeNs ns)
{
    return static_cast<double>(ns) / 1e6;
}

/** Per-pid in-flight accounting while folding the stream. */
struct RequestState
{
    TimeNs admitNs = -1;
    TimeNs firstResizeNs = -1;  ///< first budget_shrink/split marker
    TimeNs stallNs = 0;         ///< stalls before the marker
    TimeNs resizeNs = 0;        ///< stalls at/after the marker
};

}  // namespace

const char*
SloBreach::dominantWait() const
{
    if (queueNs >= stallNs && queueNs >= resizeNs)
        return "queue";
    return stallNs >= resizeNs ? "stall" : "resize";
}

FleetForensics
analyzeFleetForensics(const std::vector<TraceEvent>& events,
                      int pid_stride)
{
    FleetForensics out;
    std::map<int, NodeSeries> nodes;
    std::map<int, std::vector<ForensicsPoint>> occupancyDeltas;
    std::map<int, RequestState> requests;

    auto nodeOf = [&](int pid) -> NodeSeries& {
        const int node = pid / pid_stride;
        NodeSeries& n = nodes[node];
        n.node = node;
        return n;
    };

    for (const TraceEvent& ev : events) {
        if (ev.category == std::string(kCatStall) &&
            ev.kind == TraceEventKind::Span) {
            RequestState& r = requests[ev.pid];
            if (r.firstResizeNs >= 0 && ev.ts >= r.firstResizeNs)
                r.resizeNs += ev.dur;
            else
                r.stallNs += ev.dur;
            continue;
        }
        if (ev.category == std::string(kCatPartition)) {
            if (ev.name == "budget_shrink" || ev.name == "split") {
                RequestState& r = requests[ev.pid];
                if (r.firstResizeNs < 0)
                    r.firstResizeNs = ev.ts;
            }
            continue;
        }
        if (ev.category != std::string(kCatServe))
            continue;

        NodeSeries& node = nodeOf(ev.pid);
        if (ev.name == "queue_depth") {
            const std::int64_t depth = traceArgOf(ev, "depth", 0);
            node.queueDepth.push_back({ev.ts, depth});
            node.maxQueueDepth = std::max(node.maxQueueDepth, depth);
        } else if (ev.name == "admit") {
            ++node.admitted;
            requests[ev.pid].admitNs = ev.ts;
            occupancyDeltas[node.node].push_back({ev.ts, 1});
        } else if (ev.name == "reject") {
            ++node.rejected;
            ++out.rejections;
        } else if (ev.name == "depart" ||
                   ev.name == "depart_failed") {
            ++out.departures;
            ++node.departed;
            occupancyDeltas[node.node].push_back({ev.ts, -1});
            if (ev.name == "depart_failed") {
                ++out.failures;
                ++node.failed;
                continue;
            }
            const TimeNs sloLimit =
                traceArgOf(ev, "slo_limit_ns", 0);
            if (sloLimit <= 0 || traceArgOf(ev, "slo_met", 1) != 0)
                continue;
            ++node.sloMissed;
            const RequestState& r = requests[ev.pid];
            SloBreach breach;
            breach.pid = ev.pid;
            breach.node = node.node;
            breach.cls = ev.detail;
            breach.arrivalNs = traceArgOf(ev, "arrival_ns", ev.ts);
            breach.departNs = ev.ts;
            breach.sloLimitNs = sloLimit;
            breach.queueNs = r.admitNs >= 0
                                 ? r.admitNs - breach.arrivalNs
                                 : 0;
            breach.stallNs = r.stallNs;
            breach.resizeNs = r.resizeNs;
            out.breaches.push_back(std::move(breach));
        }
    }

    // Occupancy = running sum of admit/depart deltas per node. The
    // traced placement streams each node sequentially, so deltas are
    // already time-ordered; the stable sort is belt and braces for
    // hand-built streams.
    for (auto& [nodeId, deltas] : occupancyDeltas) {
        std::stable_sort(deltas.begin(), deltas.end(),
                         [](const ForensicsPoint& a,
                            const ForensicsPoint& b) {
                             return a.ts < b.ts;
                         });
        NodeSeries& node = nodes[nodeId];
        std::int64_t inFlight = 0;
        for (const ForensicsPoint& d : deltas) {
            inFlight += d.value;
            node.occupancy.push_back({d.ts, inFlight});
            node.maxOccupancy =
                std::max(node.maxOccupancy, inFlight);
        }
    }

    out.nodes.reserve(nodes.size());
    for (auto& [nodeId, node] : nodes) {
        (void)nodeId;
        out.nodes.push_back(std::move(node));
    }
    return out;
}

void
printFleetForensics(std::ostream& os, const FleetForensics& f,
                    std::size_t top_n)
{
    Table nodeTable("per-node utilization");
    nodeTable.setHeader({"node", "admitted", "departed", "failed",
                         "rejected", "slo_missed", "max_queue",
                         "max_inflight"});
    for (const NodeSeries& n : f.nodes)
        nodeTable.addRowOf(
            static_cast<long long>(n.node), n.admitted, n.departed,
            n.failed, n.rejected, n.sloMissed,
            static_cast<long long>(n.maxQueueDepth),
            static_cast<long long>(n.maxOccupancy));
    nodeTable.print(os);

    std::vector<const SloBreach*> ranked;
    for (const SloBreach& b : f.breaches)
        ranked.push_back(&b);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const SloBreach* a, const SloBreach* b) {
                         return a->overshootNs() > b->overshootNs();
                     });
    if (ranked.size() > top_n)
        ranked.resize(top_n);

    Table breachTable("worst SLO breaches (ms)");
    breachTable.setHeader({"node", "pid", "class", "latency", "slo",
                           "overshoot", "queue", "stall", "resize",
                           "dominant"});
    for (const SloBreach* b : ranked)
        breachTable.addRowOf(
            static_cast<long long>(b->node),
            static_cast<long long>(b->pid), b->cls,
            toMs(b->latencyNs()), toMs(b->sloLimitNs),
            toMs(b->overshootNs()), toMs(b->queueNs),
            toMs(b->stallNs), toMs(b->resizeNs), b->dominantWait());
    breachTable.print(os);

    os << "forensics: " << f.departures << " departures, "
       << f.breaches.size() << " SLO breaches, " << f.failures
       << " failures, " << f.rejections << " rejections across "
       << f.nodes.size() << " node(s)\n";
}

}  // namespace g10
