#include "obs/analysis/flame.h"

#include <map>

namespace g10 {

namespace {

/** "layer1_0_c_conv" + cause -> "layer1;0;c;conv;alloc". */
std::string
collapsedKey(const std::string& kernel_name, const char* cause)
{
    std::string frames;
    frames.reserve(kernel_name.size() + 16);
    for (char c : kernel_name)
        frames += (c == '_') ? ';' : c;
    frames += ';';
    frames += cause;
    return frames;
}

}  // namespace

FlameAggregation
aggregateFlame(const std::vector<TraceEvent>& events, int pid)
{
    FlameAggregation out;
    out.pid = pid;

    // Stall spans carry the kernel id, not the name: remember the
    // most recent name per id (stable across iterations).
    std::map<std::int64_t, std::string> kernelNames;
    std::map<std::string, std::uint64_t> stacks;
    for (const TraceEvent& ev : events) {
        if (ev.pid != pid || ev.kind != TraceEventKind::Span)
            continue;
        if (ev.category == std::string(kCatKernel)) {
            kernelNames[traceArgOf(ev, "k", -1)] = ev.name;
            continue;
        }
        if (ev.category != std::string(kCatStall) ||
            traceArgOf(ev, "measured", 0) == 0 || ev.dur <= 0)
            continue;
        const auto cause = traceArgOf(ev, "cause", -1);
        if (cause < 0 || cause >= kNumStallCauses)
            continue;
        const auto name = kernelNames.find(traceArgOf(ev, "k", -1));
        const std::string key = collapsedKey(
            name != kernelNames.end() ? name->second : "(unknown)",
            stallCauseName(static_cast<StallCause>(cause)));
        stacks[key] += static_cast<std::uint64_t>(ev.dur);
        out.totalStallNs += static_cast<std::uint64_t>(ev.dur);
    }

    out.stacks.reserve(stacks.size());
    for (const auto& [frames, ns] : stacks)
        out.stacks.push_back({frames, ns});
    return out;
}

void
writeCollapsedStacks(std::ostream& os, const FlameAggregation& f)
{
    for (const FlameStack& s : f.stacks)
        os << s.frames << " " << s.stallNs << "\n";
}

}  // namespace g10
