/**
 * @file
 * Chrome-trace re-ingestion: parse a trace-event JSON document (the
 * output of writeChromeTrace or FileTraceSink) back into the typed
 * TraceEvent stream the analyzers consume.
 *
 * This is the inverse of chrome_trace.h up to lane bookkeeping: "M"
 * metadata records rebuild the (pid, tid) -> track mapping and the
 * process-name table, "X"/"i" records become Span/Instant events with
 * nanosecond timestamps recovered from the exact decimal microsecond
 * literals the writer emits. Category, track, and argument-key
 * strings are interned into a process-lifetime pool so re-ingested
 * events satisfy TraceEvent's static-string contract and compare
 * equal (field by field) to the originals — the round-trip golden
 * test pins this.
 */

#ifndef G10_OBS_ANALYSIS_TRACE_READER_H
#define G10_OBS_ANALYSIS_TRACE_READER_H

#include <map>
#include <string>
#include <vector>

#include "obs/trace_event.h"

namespace g10 {

/** A re-ingested trace: the event stream plus display metadata. */
struct TraceDocument
{
    std::vector<TraceEvent> events;
    std::map<int, std::string> processNames;  ///< pid -> display name
};

/**
 * Intern @p s into a process-lifetime string pool and return a stable
 * pointer — the bridge from parsed (dynamic) strings to TraceEvent's
 * `const char*` category/track/arg-key fields. Known names (the kCat
 * and kTrack constants, the runtime's arg keys) return the canonical
 * constant so pointer identity survives the round trip.
 */
const char* internTraceString(const std::string& s);

/**
 * Parse the chrome-trace document in @p text into @p out. Events keep
 * file order (the writer emits them in emission order). Unknown
 * record types ("C", "B"/"E", ...) fail — the reader only accepts
 * what the in-repo writers produce.
 *
 * @param err when non-null, receives a description of the first error
 * @return false on malformed input
 */
bool readChromeTrace(const std::string& text, TraceDocument* out,
                     std::string* err = nullptr);

/** readChromeTrace over the contents of @p path. */
bool readChromeTraceFile(const std::string& path, TraceDocument* out,
                         std::string* err = nullptr);

}  // namespace g10

#endif  // G10_OBS_ANALYSIS_TRACE_READER_H
