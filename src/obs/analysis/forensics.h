/**
 * @file
 * Fleet-level SLO breach forensics from a serving/fleet trace:
 * per-node queue-depth and GPU-occupancy time series, plus a table
 * attributing every missed-deadline request to its dominant wait
 * component — admission queueing, runtime stalls, or an elastic
 * partition resize that squeezed the job mid-flight.
 *
 * Everything is recovered from serve/stall/partition events alone
 * (departure events are self-contained since they carry arrival and
 * SLO verdict), so the same analysis runs on a live fleet result or a
 * re-ingested --trace file. Node identity comes from the fleet pid
 * convention: node i's requests live at pid i*stride + local index.
 */

#ifndef G10_OBS_ANALYSIS_FORENSICS_H
#define G10_OBS_ANALYSIS_FORENSICS_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_event.h"

namespace g10 {

/** One sample of a per-node series, in simulated time. */
struct ForensicsPoint
{
    TimeNs ts = 0;
    std::int64_t value = 0;
};

/** Per-node utilization picture. */
struct NodeSeries
{
    int node = 0;
    std::vector<ForensicsPoint> queueDepth;  ///< admission queue
    std::vector<ForensicsPoint> occupancy;   ///< in-flight requests
    std::int64_t maxQueueDepth = 0;
    std::int64_t maxOccupancy = 0;
    std::uint64_t admitted = 0;
    std::uint64_t departed = 0;
    std::uint64_t failed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t sloMissed = 0;
};

/** One missed-deadline request and where its time went. */
struct SloBreach
{
    int pid = 0;   ///< global (strided) request pid
    int node = 0;
    std::string cls;          ///< request class name
    TimeNs arrivalNs = 0;
    TimeNs departNs = 0;
    TimeNs sloLimitNs = 0;
    TimeNs queueNs = 0;   ///< arrival -> admission
    TimeNs stallNs = 0;   ///< runtime stalls before any resize
    TimeNs resizeNs = 0;  ///< stalls at/after the first shrink/split

    TimeNs latencyNs() const { return departNs - arrivalNs; }
    TimeNs overshootNs() const { return latencyNs() - sloLimitNs; }

    /** "queue", "stall", or "resize" — the largest component (ties
     *  resolve in that order). */
    const char* dominantWait() const;
};

/** Whole-fleet forensics report. */
struct FleetForensics
{
    std::vector<NodeSeries> nodes;    ///< sorted by node id
    std::vector<SloBreach> breaches;  ///< in departure order
    std::uint64_t departures = 0;
    std::uint64_t failures = 0;
    std::uint64_t rejections = 0;
};

/**
 * Analyze @p events with the fleet pid convention (@p pid_stride =
 * kFleetPidStride for fleet traces; single-node serve traces work
 * with any stride larger than the request count — every pid maps to
 * node 0). A pure fold over the stream, deterministic for a given
 * event sequence.
 */
FleetForensics analyzeFleetForensics(
    const std::vector<TraceEvent>& events, int pid_stride = 100000);

/**
 * Print the per-node utilization table and the @p top_n worst
 * breaches by overshoot, each with its dominant wait component.
 */
void printFleetForensics(std::ostream& os, const FleetForensics& f,
                         std::size_t top_n = 20);

}  // namespace g10

#endif  // G10_OBS_ANALYSIS_FORENSICS_H
