#include "obs/analysis/trace_reader.h"

#include <cmath>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "common/json_writer.h"

namespace g10 {

namespace {

/** Canonical static strings the writers can have emitted. */
const char*
canonicalTraceString(const std::string& s)
{
    static constexpr const char* kKnown[] = {
        kTrackKernel, kTrackStall, kTrackPcieIn, kTrackPcieOut,
        kTrackMemory, kTrackServe, kCatKernel, kCatStall, kCatTransfer,
        kCatEvict, kCatSsd, kCatServe, kCatPartition,
        // Arg keys, from the Tracer emit sites.
        "k", "measured", "ideal_ns", "actual_ns", "cause", "bytes",
        "tensor", "runs", "erases", "from_bytes", "to_bytes",
        "evicted_bytes", "arrival_ns", "gpu_bytes", "warm_plan",
        "slo_limit_ns", "slo_met", "replayed", "dropped", "depth",
    };
    for (const char* known : kKnown)
        if (s == known)
            return known;
    return nullptr;
}

/** Exact nanoseconds from a parsed microsecond value. */
TimeNs
nanosecondsOf(double us)
{
    return static_cast<TimeNs>(std::llround(us * 1e3));
}

bool
fail(std::string* err, const std::string& msg)
{
    if (err)
        *err = msg;
    return false;
}

/** Integer member lookup that tolerates absence (returns false). */
bool
intMemberOf(const JsonValue& rec, const char* key, int* out)
{
    const JsonValue* v = rec.find(key);
    if (!v || !v->isNumber())
        return false;
    *out = static_cast<int>(v->number);
    return true;
}

}  // namespace

const char*
internTraceString(const std::string& s)
{
    if (const char* canonical = canonicalTraceString(s))
        return canonical;
    // std::set nodes never move, so c_str() stays valid for the life
    // of the pool (process lifetime — traces intern a handful of
    // distinct strings, not one per event).
    static std::mutex mutex;
    static std::set<std::string>* pool = new std::set<std::string>();
    std::lock_guard<std::mutex> lock(mutex);
    return pool->insert(s).first->c_str();
}

bool
readChromeTrace(const std::string& text, TraceDocument* out,
                std::string* err)
{
    JsonValue doc;
    std::string parseErr;
    if (!parseJson(text, &doc, &parseErr))
        return fail(err, "not valid JSON: " + parseErr);
    const JsonValue* records = doc.find("traceEvents");
    if (!records || !records->isArray())
        return fail(err, "missing 'traceEvents' array");

    TraceDocument result;
    std::map<std::pair<int, int>, const char*> tracks;  // (pid,tid)
    for (std::size_t i = 0; i < records->items.size(); ++i) {
        const JsonValue& rec = records->items[i];
        const std::string where =
            "record " + std::to_string(i) + ": ";
        if (!rec.isObject())
            return fail(err, where + "not an object");
        const JsonValue* ph = rec.find("ph");
        if (!ph || !ph->isString())
            return fail(err, where + "missing 'ph'");

        if (ph->str == "M") {
            const JsonValue* metaName = rec.find("name");
            const JsonValue* args = rec.find("args");
            const JsonValue* name =
                args ? args->find("name") : nullptr;
            int pid = 0;
            int tid = 0;
            if (!metaName || !name || !name->isString() ||
                !intMemberOf(rec, "pid", &pid) ||
                !intMemberOf(rec, "tid", &tid))
                return fail(err, where + "malformed metadata");
            if (metaName->str == "process_name")
                result.processNames[pid] = name->str;
            else if (metaName->str == "thread_name")
                tracks[{pid, tid}] = internTraceString(name->str);
            else
                return fail(err, where + "unknown metadata '" +
                                     metaName->str + "'");
            continue;
        }
        if (ph->str != "X" && ph->str != "i")
            return fail(err, where + "unsupported phase '" + ph->str +
                                 "'");

        TraceEvent ev;
        ev.kind = ph->str == "X" ? TraceEventKind::Span
                                 : TraceEventKind::Instant;
        const JsonValue* name = rec.find("name");
        const JsonValue* cat = rec.find("cat");
        const JsonValue* ts = rec.find("ts");
        if (!name || !name->isString() || !cat || !cat->isString() ||
            !ts || !ts->isNumber())
            return fail(err, where + "missing name/cat/ts");
        ev.name = name->str;
        ev.category = internTraceString(cat->str);
        ev.ts = nanosecondsOf(ts->number);
        int tid = 0;
        if (!intMemberOf(rec, "pid", &ev.pid) ||
            !intMemberOf(rec, "tid", &tid))
            return fail(err, where + "missing pid/tid");
        if (ev.kind == TraceEventKind::Span) {
            const JsonValue* dur = rec.find("dur");
            if (!dur || !dur->isNumber())
                return fail(err, where + "span without 'dur'");
            ev.dur = nanosecondsOf(dur->number);
        }
        const auto lane = tracks.find({ev.pid, tid});
        if (lane == tracks.end())
            return fail(err, where + "event before its thread_name");
        ev.track = lane->second;
        if (const JsonValue* args = rec.find("args")) {
            for (const auto& [key, value] : args->members) {
                if (key == "detail") {
                    ev.detail = value.str;
                    continue;
                }
                if (!value.isNumber())
                    return fail(err, where + "non-numeric arg '" +
                                         key + "'");
                ev.args.push_back(
                    {internTraceString(key),
                     static_cast<std::int64_t>(
                         std::llround(value.number))});
            }
        }
        result.events.push_back(std::move(ev));
    }
    *out = std::move(result);
    return true;
}

bool
readChromeTraceFile(const std::string& path, TraceDocument* out,
                    std::string* err)
{
    std::ifstream in(path);
    if (!in)
        return fail(err, "cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof())
        return fail(err, "error reading '" + path + "'");
    std::string parseErr;
    if (!readChromeTrace(buf.str(), out, &parseErr))
        return fail(err, path + ": " + parseErr);
    return true;
}

}  // namespace g10
