#include "obs/analysis/critical_path.h"

#include <algorithm>
#include <utility>

#include "common/table.h"

namespace g10 {

namespace {

double
toMs(TimeNs ns)
{
    return static_cast<double>(ns) / 1e6;
}

/** Longest consecutive run of stalled steps, by total stall time. */
StallChain
longestChain(const std::vector<CriticalPathStep>& steps)
{
    StallChain best;
    TimeNs bestNs = 0;
    std::size_t runBegin = 0;
    bool inRun = false;
    auto consider = [&](std::size_t begin, std::size_t end) {
        TimeNs total = 0;
        for (std::size_t i = begin; i < end; ++i)
            total += steps[i].stallNs();
        if (total <= bestNs)
            return;
        bestNs = total;
        best.steps.assign(steps.begin() +
                              static_cast<std::ptrdiff_t>(begin),
                          steps.begin() +
                              static_cast<std::ptrdiff_t>(end));
        for (int c = 0; c < kNumStallCauses; ++c) {
            best.causeNs[c] = 0;
            for (std::size_t i = begin; i < end; ++i)
                best.causeNs[c] += steps[i].causeNs[c];
        }
    };
    for (std::size_t i = 0; i < steps.size(); ++i) {
        if (steps[i].stallNs() > 0) {
            if (!inRun) {
                runBegin = i;
                inRun = true;
            }
        } else if (inRun) {
            consider(runBegin, i);
            inRun = false;
        }
    }
    if (inRun)
        consider(runBegin, steps.size());
    return best;
}

}  // namespace

int
CriticalPathReport::worstIteration() const
{
    int worst = -1;
    TimeNs worstNs = 0;
    for (std::size_t i = 0; i < iterations.size(); ++i) {
        if (worst < 0 || iterations[i].stallNs() > worstNs) {
            worst = static_cast<int>(i);
            worstNs = iterations[i].stallNs();
        }
    }
    return worst;
}

CriticalPathReport
extractCriticalPath(const std::vector<TraceEvent>& events, int pid)
{
    CriticalPathReport out;
    out.pid = pid;

    std::vector<CriticalPathStep> steps;
    TimeNs begin = 0;
    TimeNs end = 0;

    auto finalize = [&] {
        if (steps.empty())
            return;
        IterationPath iter;
        iter.index = static_cast<int>(out.iterations.size());
        iter.beginNs = begin;
        iter.endNs = end;
        iter.kernels = static_cast<int>(steps.size());
        for (const CriticalPathStep& s : steps) {
            iter.computeNs += s.durNs;
            for (int c = 0; c < kNumStallCauses; ++c)
                iter.causeNs[c] += s.causeNs[c];
        }
        iter.chain = longestChain(steps);
        out.iterations.push_back(std::move(iter));
        steps.clear();
    };

    for (const TraceEvent& ev : events) {
        if (ev.pid != pid || ev.kind != TraceEventKind::Span)
            continue;
        const auto k = static_cast<KernelId>(traceArgOf(ev, "k", -1));
        if (ev.category == std::string(kCatKernel)) {
            if (!steps.empty() && k <= steps.back().kernel)
                finalize();
            if (steps.empty()) {
                begin = ev.ts;
                end = ev.ts;
            }
            CriticalPathStep step;
            step.kernel = k;
            step.name = ev.name;
            step.startNs = ev.ts;
            step.durNs = ev.dur;
            steps.push_back(std::move(step));
            end = std::max(end, ev.ts + ev.dur);
        } else if (ev.category == std::string(kCatStall)) {
            const auto cause = traceArgOf(ev, "cause", -1);
            if (cause < 0 || cause >= kNumStallCauses)
                continue;
            // Stall spans follow their kernel span, so binding walks
            // back at most a few steps (usually zero).
            for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
                if (it->kernel == k) {
                    it->causeNs[cause] += ev.dur;
                    end = std::max(end, ev.ts + ev.dur);
                    break;
                }
            }
        }
    }
    finalize();
    return out;
}

void
printCriticalPath(std::ostream& os, const CriticalPathReport& r,
                  std::size_t top_n)
{
    Table iterTable("per-iteration critical path (ms)");
    iterTable.setHeader({"iter", "kernels", "span", "compute",
                         "stall", "alloc", "fault", "queue", "data",
                         "chain_len", "chain_stall"});
    for (const IterationPath& it : r.iterations)
        iterTable.addRowOf(
            static_cast<long long>(it.index),
            static_cast<long long>(it.kernels), toMs(it.spanNs()),
            toMs(it.computeNs), toMs(it.stallNs()),
            toMs(it.causeNs[0]), toMs(it.causeNs[1]),
            toMs(it.causeNs[2]), toMs(it.causeNs[3]),
            static_cast<long long>(it.chain.steps.size()),
            toMs(it.chain.totalNs()));
    iterTable.print(os);

    const int worst = r.worstIteration();
    if (worst < 0) {
        os << "critical path: no kernel spans for pid " << r.pid
           << "\n";
        return;
    }
    const IterationPath& it =
        r.iterations[static_cast<std::size_t>(worst)];
    os << "worst iteration " << it.index << ": "
       << toMs(it.stallNs()) << " ms stalled of " << toMs(it.spanNs())
       << " ms; longest stall chain spans "
       << it.chain.steps.size() << " kernel(s), "
       << toMs(it.chain.totalNs()) << " ms\n";

    std::vector<const CriticalPathStep*> ranked;
    for (const CriticalPathStep& s : it.chain.steps)
        ranked.push_back(&s);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const CriticalPathStep* a,
                        const CriticalPathStep* b) {
                         return a->stallNs() > b->stallNs();
                     });
    if (ranked.size() > top_n)
        ranked.resize(top_n);

    Table chainTable("stall chain of iteration " +
                     std::to_string(it.index) + " (ms)");
    chainTable.setHeader({"k", "kernel", "exec", "stall", "alloc",
                          "fault", "queue", "data"});
    for (const CriticalPathStep* s : ranked)
        chainTable.addRowOf(static_cast<long long>(s->kernel),
                            s->name, toMs(s->durNs),
                            toMs(s->stallNs()), toMs(s->causeNs[0]),
                            toMs(s->causeNs[1]), toMs(s->causeNs[2]),
                            toMs(s->causeNs[3]));
    chainTable.print(os);
}

}  // namespace g10
