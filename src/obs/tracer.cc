#include "obs/tracer.h"

namespace g10 {

namespace {

const char*
transferCauseName(TransferCause cause)
{
    switch (cause) {
      case TransferCause::PageFault: return "page_fault";
      case TransferCause::Prefetch: return "prefetch";
      case TransferCause::PreEvict: return "pre_evict";
      case TransferCause::CapacityEvict: return "capacity_evict";
      case TransferCause::FaultEvict: return "fault_evict";
    }
    return "?";
}

/** Lowercase location name for stable counter keys. */
const char*
memLocKey(MemLoc loc)
{
    switch (loc) {
      case MemLoc::Gpu: return "gpu";
      case MemLoc::Host: return "host";
      case MemLoc::Ssd: return "ssd";
    }
    return "?";
}

}  // namespace

const char*
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::Alloc: return "alloc";
      case StallCause::Fault: return "fault";
      case StallCause::ComputeQueue: return "compute_queue";
      case StallCause::Data: return "data";
    }
    return "?";
}

void
Tracer::kernelSpan(int pid, const std::string& name, KernelId k,
                   TimeNs start, TimeNs dur, bool measured,
                   TimeNs ideal_ns, TimeNs actual_ns)
{
    if (counters_ && measured) {
        counters_->add("kernel.measured");
        counters_->sample("kernel.stall_ns",
                          static_cast<double>(actual_ns - ideal_ns));
    }
    if (!sink_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Span;
    ev.category = kCatKernel;
    ev.name = name;
    ev.pid = pid;
    ev.track = kTrackKernel;
    ev.ts = start;
    ev.dur = dur;
    ev.args = {{"k", static_cast<std::int64_t>(k)},
               {"measured", measured ? 1 : 0},
               {"ideal_ns", ideal_ns},
               {"actual_ns", actual_ns}};
    emit(std::move(ev));
}

void
Tracer::stallSpan(int pid, StallCause cause, KernelId k, TimeNs start,
                  TimeNs dur, bool measured)
{
    if (counters_ && measured) {
        counters_->add(std::string("stall.") + stallCauseName(cause) +
                           ".ns",
                       static_cast<std::uint64_t>(dur));
        counters_->add("stall.total.ns", static_cast<std::uint64_t>(dur));
    }
    if (!sink_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Span;
    ev.category = kCatStall;
    ev.name = stallCauseName(cause);
    ev.pid = pid;
    ev.track = kTrackStall;
    ev.ts = start;
    ev.dur = dur;
    ev.args = {{"k", static_cast<std::int64_t>(k)},
               {"measured", measured ? 1 : 0},
               {"cause", static_cast<std::int64_t>(cause)}};
    emit(std::move(ev));
}

void
Tracer::transfer(int pid, TransferCause cause, MemLoc src, MemLoc dst,
                 Bytes bytes, TimeNs start, TimeNs complete)
{
    if (counters_) {
        counters_->add(std::string("xfer.") + memLocKey(src) + "_to_" +
                           memLocKey(dst) + ".bytes",
                       bytes);
        counters_->add("xfer.ops");
    }
    if (!sink_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Span;
    ev.category = kCatTransfer;
    ev.name = transferCauseName(cause);
    ev.pid = pid;
    // One track per fabric channel direction, like the paper's
    // per-channel migration timelines.
    ev.track = (dst == MemLoc::Gpu) ? kTrackPcieIn : kTrackPcieOut;
    ev.ts = start;
    ev.dur = complete - start;
    ev.args = {{"bytes", static_cast<std::int64_t>(bytes)},
               {"cause", static_cast<std::int64_t>(cause)}};
    ev.detail = std::string(memLocName(src)) + "->" + memLocName(dst);
    emit(std::move(ev));
}

void
Tracer::evictionPick(int pid, TensorId t, MemLoc dest, Bytes bytes,
                     TimeNs ts)
{
    if (counters_) {
        counters_->add("evict.picks");
        counters_->add("evict.bytes", bytes);
    }
    if (!sink_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Instant;
    ev.category = kCatEvict;
    ev.name = "evict_pick";
    ev.pid = pid;
    ev.track = kTrackMemory;
    ev.ts = ts;
    ev.args = {{"tensor", static_cast<std::int64_t>(t)},
               {"bytes", static_cast<std::int64_t>(bytes)}};
    ev.detail = std::string("-> ") + memLocName(dest);
    emit(std::move(ev));
}

void
Tracer::ssdGc(int pid, std::uint64_t runs, std::uint64_t erases,
              TimeNs ts)
{
    if (counters_) {
        counters_->add("ssd.gc.runs", runs);
        counters_->add("ssd.gc.erases", erases);
    }
    if (!sink_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Instant;
    ev.category = kCatSsd;
    ev.name = "gc";
    ev.pid = pid;
    ev.track = kTrackMemory;
    ev.ts = ts;
    ev.args = {{"runs", static_cast<std::int64_t>(runs)},
               {"erases", static_cast<std::int64_t>(erases)}};
    emit(std::move(ev));
}

void
Tracer::budgetResize(int pid, Bytes from_bytes, Bytes to_bytes,
                     Bytes evicted, TimeNs ts)
{
    if (counters_) {
        counters_->add("resize.count");
        counters_->add("resize.evicted_bytes", evicted);
    }
    if (!sink_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Instant;
    ev.category = kCatPartition;
    ev.name = (to_bytes >= from_bytes) ? "budget_grow" : "budget_shrink";
    ev.pid = pid;
    ev.track = kTrackMemory;
    ev.ts = ts;
    ev.args = {{"from_bytes", static_cast<std::int64_t>(from_bytes)},
               {"to_bytes", static_cast<std::int64_t>(to_bytes)},
               {"evicted_bytes", static_cast<std::int64_t>(evicted)}};
    emit(std::move(ev));
}

void
Tracer::admission(int pid, const std::string& cls, TimeNs arrival,
                  TimeNs admit, Bytes gpu_bytes, bool warm_plan)
{
    if (counters_) {
        counters_->add("serve.admitted");
        counters_->sample("serve.queue_delay_ms",
                          static_cast<double>(admit - arrival) / 1e6);
    }
    if (!sink_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Instant;
    ev.category = kCatServe;
    ev.name = "admit";
    ev.pid = pid;
    ev.track = kTrackServe;
    ev.ts = admit;
    ev.args = {{"arrival_ns", arrival},
               {"gpu_bytes", static_cast<std::int64_t>(gpu_bytes)},
               {"warm_plan", warm_plan ? 1 : 0}};
    ev.detail = cls;
    emit(std::move(ev));
}

void
Tracer::departure(int pid, const std::string& cls, TimeNs arrival,
                  TimeNs ts, bool failed, TimeNs slo_limit_ns,
                  bool slo_met)
{
    if (counters_) {
        counters_->add("serve.departed");
        if (failed)
            counters_->add("serve.failed");
        if (!failed && slo_limit_ns > 0 && !slo_met)
            counters_->add("serve.slo_missed");
    }
    if (!sink_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Instant;
    ev.category = kCatServe;
    ev.name = failed ? "depart_failed" : "depart";
    ev.pid = pid;
    ev.track = kTrackServe;
    ev.ts = ts;
    ev.args = {{"arrival_ns", arrival},
               {"slo_limit_ns", slo_limit_ns},
               {"slo_met", slo_met ? 1 : 0}};
    ev.detail = cls;
    emit(std::move(ev));
}

void
Tracer::rejection(int pid, const std::string& cls, TimeNs ts)
{
    if (counters_)
        counters_->add("serve.rejected");
    if (!sink_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Instant;
    ev.category = kCatServe;
    ev.name = "reject";
    ev.pid = pid;
    ev.track = kTrackServe;
    ev.ts = ts;
    ev.detail = cls;
    emit(std::move(ev));
}

void
Tracer::partitionEvent(const char* what, int pid, Bytes to_bytes,
                       TimeNs ts)
{
    if (counters_)
        counters_->add(std::string("partition.") + what);
    if (!sink_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Instant;
    ev.category = kCatPartition;
    ev.name = what;
    ev.pid = pid;
    ev.track = kTrackServe;
    ev.ts = ts;
    ev.args = {{"to_bytes", static_cast<std::int64_t>(to_bytes)}};
    emit(std::move(ev));
}

void
Tracer::warmReplan(int pid, std::uint64_t replayed,
                   std::uint64_t dropped, TimeNs ts)
{
    if (counters_) {
        counters_->add("replan.count");
        counters_->add("replan.warm_replayed", replayed);
        counters_->add("replan.warm_dropped", dropped);
    }
    if (!sink_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Instant;
    ev.category = kCatPartition;
    ev.name = "warm_replan";
    ev.pid = pid;
    ev.track = kTrackServe;
    ev.ts = ts;
    ev.args = {{"replayed", static_cast<std::int64_t>(replayed)},
               {"dropped", static_cast<std::int64_t>(dropped)}};
    emit(std::move(ev));
}

void
Tracer::planCacheLookup(bool hit)
{
    if (counters_)
        counters_->add(hit ? "plan_cache.hit" : "plan_cache.miss");
}

void
Tracer::queueDepth(std::size_t depth, TimeNs ts)
{
    if (counters_)
        counters_->sample("serve.queue_depth",
                          static_cast<double>(depth));
    if (!sink_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Instant;
    ev.category = kCatServe;
    ev.name = "queue_depth";
    ev.pid = 0;
    ev.track = kTrackServe;
    ev.ts = ts;
    ev.args = {{"depth", static_cast<std::int64_t>(depth)}};
    emit(std::move(ev));
}

}  // namespace g10
