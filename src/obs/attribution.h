/**
 * @file
 * Per-kernel stall attribution (the paper's Fig. 12/13 evidence):
 * decompose measured − ideal iteration time into named causes, per
 * kernel, from the event stream of a traced run.
 *
 * The runtime emits, for every measured kernel, one kernel span
 * carrying its ideal/actual contribution and up to four stall spans
 * (alloc, fault, compute_queue, data). Those four cover the kernel's
 * slip past its *replayed* duration exactly; any remainder against the
 * unperturbed ideal is the timing-noise residual (non-zero only with
 * `timing_error > 0`), reported as its own column so the table always
 * sums to measured − ideal.
 */

#ifndef G10_OBS_ATTRIBUTION_H
#define G10_OBS_ATTRIBUTION_H

#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/trace.h"
#include "obs/trace_event.h"

namespace g10 {

/** One measured kernel's decomposition. */
struct StallAttributionRow
{
    KernelId kernel = 0;
    std::string name;
    TimeNs idealNs = 0;
    TimeNs actualNs = 0;
    TimeNs causeNs[kNumStallCauses] = {0, 0, 0, 0};

    /** Sum of the four attributed causes. */
    TimeNs attributedNs() const
    {
        TimeNs s = 0;
        for (TimeNs c : causeNs)
            s += c;
        return s;
    }

    /** (actual − ideal) − attributed: kernel-duration noise. */
    TimeNs noiseNs() const
    {
        return actualNs - idealNs - attributedNs();
    }
};

/** Whole-iteration decomposition. */
struct StallAttribution
{
    std::vector<StallAttributionRow> rows;  ///< one per kernel id
    TimeNs idealNs = 0;
    TimeNs measuredNs = 0;
    TimeNs causeNs[kNumStallCauses] = {0, 0, 0, 0};
    TimeNs noiseNs = 0;

    TimeNs attributedNs() const
    {
        TimeNs s = 0;
        for (TimeNs c : causeNs)
            s += c;
        return s;
    }
};

/**
 * Aggregate the measured-iteration kernel/stall spans of @p events
 * into a per-kernel table. @p trace supplies kernel display names.
 * Only events with pid == @p pid contribute (multi-job traces carry
 * several jobs' spans).
 */
StallAttribution buildStallAttribution(
    const std::vector<TraceEvent>& events, const KernelTrace& trace,
    int pid = 0);

/**
 * buildStallAttribution without a KernelTrace: kernel display names
 * come from the kernel spans themselves, and the table is sized by
 * the largest kernel id seen. This is what lets g10trace attribute a
 * re-ingested --trace file with no model/config context.
 */
StallAttribution buildStallAttributionFromEvents(
    const std::vector<TraceEvent>& events, int pid = 0);

/**
 * Print the attribution as an aligned table: the @p top_n kernels by
 * stall time plus a totals row, followed by a one-line invariant check
 * (causes + noise == measured − ideal).
 */
void printStallAttribution(std::ostream& os, const StallAttribution& a,
                           std::size_t top_n = 20);

}  // namespace g10

#endif  // G10_OBS_ATTRIBUTION_H
