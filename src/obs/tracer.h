/**
 * @file
 * TraceSink + Tracer: the emission side of the observability layer.
 *
 * A Tracer bundles an optional event sink with an optional counter
 * registry and exposes one typed method per observable occurrence.
 * Producers hold a `Tracer*` that is nullptr when observability is
 * off, so every emit site compiles to a single branch on a null
 * pointer — the zero-overhead-when-off contract pinned by the perf
 * trajectory and by the tracer-on/off bit-identity test. The Tracer
 * itself never touches simulation state; methods only read their
 * arguments and append to the sink/registry.
 */

#ifndef G10_OBS_TRACER_H
#define G10_OBS_TRACER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/sched/schedule_types.h"
#include "obs/counters.h"
#include "obs/trace_event.h"
#include "sim/interconnect/fabric.h"

namespace g10 {

/** Receives events as they are emitted. Implementations must not
 *  assume any ordering beyond per-producer emission order. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void onEvent(const TraceEvent& ev) = 0;
};

/** A sink that buffers every event in memory, for export or analysis. */
class MemoryTraceSink : public TraceSink
{
  public:
    void onEvent(const TraceEvent& ev) override
    {
        events_.push_back(ev);
    }

    const std::vector<TraceEvent>& events() const { return events_; }

  private:
    std::vector<TraceEvent> events_;
};

/**
 * A sink adapter that shifts every event's pid by a fixed offset
 * before forwarding. The fleet layer wraps one of these around the
 * shared sink per node, so request pids from different nodes land in
 * disjoint ranges of one trace (node i's jobs at i * stride + req).
 */
class PidOffsetSink : public TraceSink
{
  public:
    PidOffsetSink(TraceSink* inner, int offset)
        : inner_(inner), offset_(offset)
    {
    }

    void onEvent(const TraceEvent& ev) override
    {
        TraceEvent shifted = ev;
        shifted.pid += offset_;
        inner_->onEvent(shifted);
    }

  private:
    TraceSink* inner_;
    int offset_;
};

/**
 * A sink adapter that forwards every event to two inner sinks. The
 * fleet CLI uses one to stream a trace to disk (FileTraceSink) while
 * buffering the same events in memory for --forensics analysis.
 */
class TeeTraceSink : public TraceSink
{
  public:
    TeeTraceSink(TraceSink* first, TraceSink* second)
        : first_(first), second_(second)
    {
    }

    void onEvent(const TraceEvent& ev) override
    {
        if (first_)
            first_->onEvent(ev);
        if (second_)
            second_->onEvent(ev);
    }

  private:
    TraceSink* first_;
    TraceSink* second_;
};

/**
 * The facade producers emit through. Either half may be absent: a
 * Tracer with only a CounterRegistry costs no event allocations, and
 * one with only a sink keeps no aggregates.
 */
class Tracer
{
  public:
    Tracer(TraceSink* sink, CounterRegistry* counters)
        : sink_(sink), counters_(counters)
    {
    }

    TraceSink* sink() const { return sink_; }
    CounterRegistry* counters() const { return counters_; }

    // ---- runtime events (emitted by SimRuntime) ----

    /**
     * One kernel execution. @p ideal_ns / @p actual_ns are the
     * kernel's contribution to the ideal and measured iteration time;
     * their difference is exactly the sum of the stall spans emitted
     * for the same kernel (the attribution invariant).
     */
    void kernelSpan(int pid, const std::string& name, KernelId k,
                    TimeNs start, TimeNs dur, bool measured,
                    TimeNs ideal_ns, TimeNs actual_ns);

    /** One stall window attributed to @p cause for kernel @p k. */
    void stallSpan(int pid, StallCause cause, KernelId k, TimeNs start,
                   TimeNs dur, bool measured);

    /** One migration hop over a fabric channel. */
    void transfer(int pid, TransferCause cause, MemLoc src, MemLoc dst,
                  Bytes bytes, TimeNs start, TimeNs complete);

    /** The allocator picked a victim tensor under pressure. */
    void evictionPick(int pid, TensorId t, MemLoc dest, Bytes bytes,
                      TimeNs ts);

    /** SSD garbage collection ran (device-level, attributed to the
     *  traced writer that observed it). */
    void ssdGc(int pid, std::uint64_t runs, std::uint64_t erases,
               TimeNs ts);

    /** The runtime's GPU memory budget was resized (elastic capacity). */
    void budgetResize(int pid, Bytes from_bytes, Bytes to_bytes,
                      Bytes evicted, TimeNs ts);

    // ---- serving events (emitted by ServeSim) ----

    /** A request was admitted onto the GPU. */
    void admission(int pid, const std::string& cls, TimeNs arrival,
                   TimeNs admit, Bytes gpu_bytes, bool warm_plan);

    /**
     * A request finished (or failed) and left the GPU. The event is
     * self-contained for post-hoc SLO forensics: it carries the
     * request's arrival time, the class's SLO deadline
     * (@p slo_limit_ns, 0 when the class has no usable unloaded
     * baseline), and whether the deadline was met — so a saved trace
     * can attribute every breach without the in-memory result.
     */
    void departure(int pid, const std::string& cls, TimeNs arrival,
                   TimeNs ts, bool failed, TimeNs slo_limit_ns,
                   bool slo_met);

    /** A request was rejected (queue overflow / admission policy). */
    void rejection(int pid, const std::string& cls, TimeNs ts);

    /** A partition-manager action: "resize", "split", or "merge". */
    void partitionEvent(const char* what, int pid, Bytes to_bytes,
                        TimeNs ts);

    /** A warm-start replan after an elastic resize. */
    void warmReplan(int pid, std::uint64_t replayed,
                    std::uint64_t dropped, TimeNs ts);

    /** Plan-cache lookup outcome for an admission compile. */
    void planCacheLookup(bool hit);

    /** Sample of the admission queue depth at an arrival. */
    void queueDepth(std::size_t depth, TimeNs ts);

  private:
    void emit(TraceEvent&& ev)
    {
        if (sink_)
            sink_->onEvent(ev);
    }

    TraceSink* sink_;
    CounterRegistry* counters_;
};

}  // namespace g10

#endif  // G10_OBS_TRACER_H
