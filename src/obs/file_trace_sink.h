/**
 * @file
 * Streaming Chrome-trace sink: writes each event to disk as it is
 * emitted, so fleet-scale sweeps can be traced without MemoryTraceSink
 * holding the whole timeline in memory (the PR 6 follow-up in
 * ROADMAP.md).
 *
 * The file is a valid trace-event document the moment finish() runs
 * (the destructor calls it): `{"displayTimeUnit": "ms",
 * "traceEvents": [ <one compact record per line> ]}`. Metadata is
 * interleaved lazily — the first event of a pid emits its
 * process_name record, the first event of a (pid, track) lane emits
 * its thread_name record with the next tid — which the trace-event
 * format explicitly allows (M records may appear anywhere).
 *
 * onEvent() is mutex-guarded so concurrently simulated cells *may*
 * share one sink, but interleaved timelines from unrelated cells are
 * rarely useful — producers (ServeSweep, FleetSim) stream one
 * placement sequentially instead.
 */

#ifndef G10_OBS_FILE_TRACE_SINK_H
#define G10_OBS_FILE_TRACE_SINK_H

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "obs/tracer.h"

namespace g10 {

/** A TraceSink that appends each event to a trace file on arrival. */
class FileTraceSink : public TraceSink
{
  public:
    /** Opens @p path for writing; fatal() when it cannot. */
    explicit FileTraceSink(const std::string& path);

    /** Finishes the document if finish() was not called. */
    ~FileTraceSink() override;

    FileTraceSink(const FileTraceSink&) = delete;
    FileTraceSink& operator=(const FileTraceSink&) = delete;

    /**
     * Display name for @p pid's process row. Effective for pids whose
     * first event has not arrived yet; later calls re-emit the
     * metadata record (last one wins in the viewer). Pids without a
     * name render as "job <pid>".
     */
    void setProcessName(int pid, const std::string& name);

    void onEvent(const TraceEvent& ev) override;

    /**
     * Write the document tail and close the file (idempotent; the
     * destructor calls it). Events arriving after finish() are
     * dropped — but counted (droppedEvents()), and the next finish()
     * call (typically the destructor's) emits a one-line warn so a
     * truncated trace is detectable. fatal() when the stream errored.
     */
    void finish();

    /** Events written so far (metadata records not counted). */
    std::uint64_t eventsWritten() const { return events_; }

    /** Events that arrived after finish() and were not written. The
     *  CLIs surface this as the `trace.dropped_events` counter. */
    std::uint64_t droppedEvents() const { return dropped_; }

    const std::string& path() const { return path_; }

  private:
    /** Emit lazy process/thread metadata for @p ev; returns its tid. */
    int lanesFor(const TraceEvent& ev);

    /** Comma/newline separation between array elements. */
    void separator();

    std::string path_;
    std::ofstream out_;
    std::mutex mutex_;
    std::map<int, std::string> names_;             ///< pid -> name
    std::map<int, bool> announced_;                ///< pid M written
    std::map<std::pair<int, std::string>, int> tids_;
    int nextTid_ = 1;
    std::uint64_t events_ = 0;
    std::uint64_t dropped_ = 0;  ///< events seen after finish()
    bool first_ = true;     ///< no array element written yet
    bool finished_ = false;
    bool warnedDrops_ = false;
};

}  // namespace g10

#endif  // G10_OBS_FILE_TRACE_SINK_H
