/**
 * @file
 * CounterRegistry: named monotonic counters and sample distributions
 * for the observability layer.
 *
 * Producers bump counters ("xfer.ssd_to_gpu.bytes", "plan_cache.hit")
 * and append samples ("serve.queue_depth") through the Tracer facade.
 * A registry can be snapshotted at any simulated time and merged with
 * registries from other workers: counters sum and sample multisets
 * concatenate, so the merged result is independent of merge order and
 * of how `ExperimentEngine` sharded the work — the property the
 * counter-merge determinism test pins.
 */

#ifndef G10_OBS_COUNTERS_H
#define G10_OBS_COUNTERS_H

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.h"

namespace g10 {

class CounterRegistry
{
  public:
    /** Add @p delta to the named monotonic counter (creates at 0). */
    void add(const std::string& name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Append one sample to the named distribution (creates empty). */
    void sample(const std::string& name, double v)
    {
        dists_[name].add(v);
    }

    /** Current value of a counter; 0 when never bumped. */
    std::uint64_t value(const std::string& name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Distribution by name; nullptr when no samples were recorded. */
    const Distribution* distribution(const std::string& name) const
    {
        auto it = dists_.find(name);
        return it == dists_.end() ? nullptr : &it->second;
    }

    /** True when nothing has been recorded. */
    bool empty() const { return counters_.empty() && dists_.empty(); }

    /** All counters, ordered by name (a deterministic snapshot). */
    const std::map<std::string, std::uint64_t>& counters() const
    {
        return counters_;
    }

    /** All distributions, ordered by name. */
    const std::map<std::string, Distribution>& distributions() const
    {
        return dists_;
    }

    /**
     * Fold @p other into this registry: counters sum, distributions
     * concatenate their sample multisets. Because every per-name result
     * is a commutative fold, merging worker-local registries yields the
     * same totals for any worker count or merge order.
     */
    void merge(const CounterRegistry& other);

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, Distribution> dists_;
};

}  // namespace g10

#endif  // G10_OBS_COUNTERS_H
