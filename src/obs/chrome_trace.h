/**
 * @file
 * Chrome trace-event JSON exporter: turns a collected event buffer
 * into a document loadable by chrome://tracing and Perfetto
 * (https://ui.perfetto.dev, "Open trace file").
 *
 * Layout follows the trace-event format: one *process* per simulated
 * job (pid) and one *thread* per resource track within it ("kernel",
 * "stall", "pcie.in", ...), so the UI renders one lane per
 * job × resource. Spans become "X" (complete) events, instants "i";
 * timestamps are simulated time converted to microseconds.
 */

#ifndef G10_OBS_CHROME_TRACE_H
#define G10_OBS_CHROME_TRACE_H

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_event.h"

namespace g10 {

/**
 * Write @p events as `{"traceEvents": [...]}`.
 *
 * @param process_names optional display name per pid; pids without an
 *        entry render as "job <pid>"
 */
void writeChromeTrace(std::ostream& os,
                      const std::vector<TraceEvent>& events,
                      const std::map<int, std::string>& process_names = {});

}  // namespace g10

#endif  // G10_OBS_CHROME_TRACE_H
