/**
 * @file
 * Chrome trace-event JSON exporter: turns a collected event buffer
 * into a document loadable by chrome://tracing and Perfetto
 * (https://ui.perfetto.dev, "Open trace file").
 *
 * Layout follows the trace-event format: one *process* per simulated
 * job (pid) and one *thread* per resource track within it ("kernel",
 * "stall", "pcie.in", ...), so the UI renders one lane per
 * job × resource. Spans become "X" (complete) events, instants "i";
 * timestamps are simulated time converted to microseconds.
 */

#ifndef G10_OBS_CHROME_TRACE_H
#define G10_OBS_CHROME_TRACE_H

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_event.h"

namespace g10 {

class JsonWriter;

/**
 * Write @p events as `{"traceEvents": [...]}`.
 *
 * @param process_names optional display name per pid; pids without an
 *        entry render as "job <pid>"
 */
void writeChromeTrace(std::ostream& os,
                      const std::vector<TraceEvent>& events,
                      const std::map<int, std::string>& process_names = {});

// ---- Per-element serialization (shared with the streaming sink) -----

/** Emit one "M" metadata record (@p meta_name is "process_name" or
 *  "thread_name") onto a writer positioned inside the traceEvents
 *  array. */
void writeChromeMetaJson(JsonWriter& w, const char* meta_name, int pid,
                         int tid, const std::string& name);

/** Emit one event record ("X" span / "i" instant) onto a writer
 *  positioned inside the traceEvents array. */
void writeChromeEventJson(JsonWriter& w, const TraceEvent& ev, int tid);

}  // namespace g10

#endif  // G10_OBS_CHROME_TRACE_H
