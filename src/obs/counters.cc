#include "obs/counters.h"

namespace g10 {

void
CounterRegistry::merge(const CounterRegistry& other)
{
    for (const auto& [name, value] : other.counters_)
        counters_[name] += value;
    for (const auto& [name, dist] : other.dists_) {
        Distribution& mine = dists_[name];
        for (double v : dist.sorted())
            mine.add(v);
    }
}

}  // namespace g10
