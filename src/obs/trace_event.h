/**
 * @file
 * The typed event record at the bottom of the observability layer.
 *
 * Every observable occurrence in a simulation — a kernel executing, a
 * stall with its cause, a migration hop over a fabric channel, an
 * eviction pick, SSD garbage collection, serving admission/departure,
 * a partition resize — becomes one TraceEvent stamped in *simulated*
 * time. Events are plain data: producers (SimRuntime, ServeSim, ...)
 * emit them through the Tracer facade, sinks collect them, and
 * exporters (chrome_trace.h) or analyses (attribution.h) consume them
 * after the run. Nothing here feeds back into simulation state, which
 * is what keeps traced and untraced runs bit-identical.
 */

#ifndef G10_OBS_TRACE_EVENT_H
#define G10_OBS_TRACE_EVENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace g10 {

/** Shape of one event on a track. */
enum class TraceEventKind : std::uint8_t
{
    Span,     ///< has a duration (kernel exec, transfer, stall window)
    Instant,  ///< a point in time (eviction pick, GC, admission)
};

/** One numeric argument attached to an event (key is a static string). */
struct TraceArg
{
    const char* key;
    std::int64_t value;
};

/**
 * One trace event in simulated time. `pid` identifies the job (tenant /
 * request); `track` names the resource lane within that job ("kernel",
 * "pcie.in", ...), so exporters can render one track per job × resource
 * exactly as the paper's per-kernel timelines do.
 */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::Instant;
    const char* category = "";  ///< event taxonomy bucket (static)
    std::string name;           ///< display name (kernel name, cause)
    int pid = 0;                ///< job id (0 for single-job runs)
    const char* track = "";     ///< resource lane (static string)
    TimeNs ts = 0;              ///< simulated start time
    TimeNs dur = 0;             ///< simulated duration (Span only)
    std::vector<TraceArg> args; ///< numeric payload
    std::string detail;         ///< optional string payload ("host→gpu")
};

// Track names (one Chrome/Perfetto thread per job × track).
inline constexpr const char* kTrackKernel = "kernel";
inline constexpr const char* kTrackStall = "stall";
inline constexpr const char* kTrackPcieIn = "pcie.in";
inline constexpr const char* kTrackPcieOut = "pcie.out";
inline constexpr const char* kTrackMemory = "memory";
inline constexpr const char* kTrackServe = "serve";

// Event categories (the taxonomy README documents).
inline constexpr const char* kCatKernel = "kernel";
inline constexpr const char* kCatStall = "stall";
inline constexpr const char* kCatTransfer = "xfer";
inline constexpr const char* kCatEvict = "evict";
inline constexpr const char* kCatSsd = "ssd";
inline constexpr const char* kCatServe = "serve";
inline constexpr const char* kCatPartition = "partition";

/** Why a kernel's completion slipped past its ideal time. */
enum class StallCause : std::uint8_t
{
    Alloc = 0,         ///< waiting for eviction DMA to free space
    Fault = 1,         ///< demand-paging faults on the critical path
    ComputeQueue = 2,  ///< time-shared GPU busy with co-tenants
    Data = 3,          ///< planned prefetch still in flight at the end
};

/** Stable display/counter name of a stall cause. */
const char* stallCauseName(StallCause cause);

/** Number of StallCause values (for dense tables). */
inline constexpr int kNumStallCauses = 4;

/** Lookup of one numeric arg by key; @p def when absent. */
inline std::int64_t
traceArgOf(const TraceEvent& ev, const char* key, std::int64_t def = 0)
{
    for (const TraceArg& a : ev.args)
        if (std::string(a.key) == key)
            return a.value;
    return def;
}

}  // namespace g10

#endif  // G10_OBS_TRACE_EVENT_H
