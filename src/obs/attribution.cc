#include "obs/attribution.h"

#include <algorithm>

#include "common/table.h"

namespace g10 {

namespace {

std::int64_t
argOf(const TraceEvent& ev, const char* key, std::int64_t def)
{
    for (const TraceArg& a : ev.args)
        if (std::string(a.key) == key)
            return a.value;
    return def;
}

double
toMs(TimeNs ns)
{
    return static_cast<double>(ns) / 1e6;
}

}  // namespace

namespace {

/** Shared accumulation over pre-sized rows (names already set). */
void
accumulateStallEvents(const std::vector<TraceEvent>& events, int pid,
                      StallAttribution* out)
{
    for (const TraceEvent& ev : events) {
        if (ev.pid != pid || argOf(ev, "measured", 0) == 0)
            continue;
        auto k = static_cast<std::size_t>(argOf(ev, "k", -1));
        if (k >= out->rows.size())
            continue;
        if (ev.category == std::string(kCatKernel)) {
            out->rows[k].idealNs += argOf(ev, "ideal_ns", 0);
            out->rows[k].actualNs += argOf(ev, "actual_ns", 0);
            if (out->rows[k].name.empty())
                out->rows[k].name = ev.name;
        } else if (ev.category == std::string(kCatStall)) {
            auto cause = argOf(ev, "cause", -1);
            if (cause >= 0 && cause < kNumStallCauses)
                out->rows[k].causeNs[cause] += ev.dur;
        }
    }
    for (const StallAttributionRow& r : out->rows) {
        out->idealNs += r.idealNs;
        out->measuredNs += r.actualNs;
        for (int c = 0; c < kNumStallCauses; ++c)
            out->causeNs[c] += r.causeNs[c];
        out->noiseNs += r.noiseNs();
    }
}

}  // namespace

StallAttribution
buildStallAttribution(const std::vector<TraceEvent>& events,
                      const KernelTrace& trace, int pid)
{
    StallAttribution out;
    out.rows.resize(trace.numKernels());
    for (std::size_t k = 0; k < trace.numKernels(); ++k) {
        out.rows[k].kernel = static_cast<KernelId>(k);
        out.rows[k].name = trace.kernel(static_cast<KernelId>(k)).name;
    }

    accumulateStallEvents(events, pid, &out);
    return out;
}

StallAttribution
buildStallAttributionFromEvents(const std::vector<TraceEvent>& events,
                                int pid)
{
    StallAttribution out;
    std::int64_t maxK = -1;
    for (const TraceEvent& ev : events) {
        if (ev.pid != pid || argOf(ev, "measured", 0) == 0)
            continue;
        if (ev.category == std::string(kCatKernel) ||
            ev.category == std::string(kCatStall))
            maxK = std::max(maxK, argOf(ev, "k", -1));
    }
    out.rows.resize(static_cast<std::size_t>(maxK + 1));
    for (std::size_t k = 0; k < out.rows.size(); ++k)
        out.rows[k].kernel = static_cast<KernelId>(k);
    accumulateStallEvents(events, pid, &out);
    return out;
}

void
printStallAttribution(std::ostream& os, const StallAttribution& a,
                      std::size_t top_n)
{
    Table table("per-kernel stall attribution (measured iteration, ms)");
    table.setHeader({"k", "kernel", "ideal", "actual", "stall", "alloc",
                     "fault", "queue", "data", "noise"});

    // Rank by total slip; keep only kernels that actually stalled.
    std::vector<const StallAttributionRow*> ranked;
    for (const StallAttributionRow& r : a.rows)
        if (r.actualNs - r.idealNs != 0)
            ranked.push_back(&r);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const StallAttributionRow* x,
                        const StallAttributionRow* y) {
                         return (x->actualNs - x->idealNs) >
                                (y->actualNs - y->idealNs);
                     });
    if (ranked.size() > top_n)
        ranked.resize(top_n);

    for (const StallAttributionRow* r : ranked)
        table.addRowOf(static_cast<long long>(r->kernel), r->name,
                       toMs(r->idealNs), toMs(r->actualNs),
                       toMs(r->actualNs - r->idealNs),
                       toMs(r->causeNs[0]), toMs(r->causeNs[1]),
                       toMs(r->causeNs[2]), toMs(r->causeNs[3]),
                       toMs(r->noiseNs()));
    table.addRowOf("total", "(all kernels)", toMs(a.idealNs),
                   toMs(a.measuredNs), toMs(a.measuredNs - a.idealNs),
                   toMs(a.causeNs[0]), toMs(a.causeNs[1]),
                   toMs(a.causeNs[2]), toMs(a.causeNs[3]),
                   toMs(a.noiseNs));
    table.print(os);

    os << "attribution check: alloc + fault + queue + data + noise = "
       << toMs(a.attributedNs() + a.noiseNs)
       << " ms; measured - ideal = " << toMs(a.measuredNs - a.idealNs)
       << " ms ("
       << (a.attributedNs() + a.noiseNs == a.measuredNs - a.idealNs
               ? "exact"
               : "MISMATCH")
       << ")\n";
}

}  // namespace g10
