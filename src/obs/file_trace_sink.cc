#include "obs/file_trace_sink.h"

#include "common/json_writer.h"
#include "common/logging.h"
#include "obs/chrome_trace.h"

namespace g10 {

FileTraceSink::FileTraceSink(const std::string& path)
    : path_(path), out_(path)
{
    if (!out_)
        fatal("cannot open trace output '%s'", path.c_str());
    out_ << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
}

FileTraceSink::~FileTraceSink()
{
    if (!finished_)
        finish();
}

void
FileTraceSink::separator()
{
    if (!first_)
        out_ << ",";
    out_ << "\n";
    first_ = false;
}

void
FileTraceSink::setProcessName(int pid, const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    names_[pid] = name;
    if (finished_ || !announced_[pid])
        return;
    // Already announced with the default: re-emit, last record wins.
    separator();
    JsonWriter w(out_, 0);
    writeChromeMetaJson(w, "process_name", pid, 0, name);
}

int
FileTraceSink::lanesFor(const TraceEvent& ev)
{
    if (!announced_[ev.pid]) {
        announced_[ev.pid] = true;
        auto it = names_.find(ev.pid);
        const std::string name = it != names_.end()
                                     ? it->second
                                     : "job " + std::to_string(ev.pid);
        separator();
        JsonWriter w(out_, 0);
        writeChromeMetaJson(w, "process_name", ev.pid, 0, name);
    }
    const std::pair<int, std::string> lane{ev.pid, ev.track};
    auto it = tids_.find(lane);
    if (it == tids_.end()) {
        it = tids_.emplace(lane, nextTid_++).first;
        separator();
        JsonWriter w(out_, 0);
        writeChromeMetaJson(w, "thread_name", ev.pid, it->second,
                            ev.track);
    }
    return it->second;
}

void
FileTraceSink::onEvent(const TraceEvent& ev)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) {
        ++dropped_;
        return;
    }
    const int tid = lanesFor(ev);
    separator();
    JsonWriter w(out_, 0);
    writeChromeEventJson(w, ev, tid);
    ++events_;
}

void
FileTraceSink::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) {
        // Late events could only have arrived after the first
        // finish(); surface them once (the destructor re-enters here).
        if (dropped_ > 0 && !warnedDrops_) {
            warnedDrops_ = true;
            warn("trace '%s' is truncated: %llu events arrived after "
                 "finish() and were dropped",
                 path_.c_str(),
                 static_cast<unsigned long long>(dropped_));
        }
        return;
    }
    finished_ = true;
    out_ << "\n]}\n";
    out_.close();
    if (!out_)
        fatal("error writing trace output '%s'", path_.c_str());
}

}  // namespace g10
