#include "obs/chrome_trace.h"

#include <set>
#include <utility>

#include "common/json_writer.h"

namespace g10 {

namespace {

/** Deterministic integer tid for each (pid, track) lane. */
std::map<std::pair<int, std::string>, int>
assignTids(const std::vector<TraceEvent>& events)
{
    std::set<std::pair<int, std::string>> lanes;
    for (const TraceEvent& ev : events)
        lanes.insert({ev.pid, ev.track});
    std::map<std::pair<int, std::string>, int> tids;
    int next = 1;
    for (const auto& lane : lanes)
        tids[lane] = next++;
    return tids;
}

/**
 * Integer nanoseconds as an exact decimal microsecond literal
 * ("1234.567"). value(double)'s %.12g would drop nanosecond digits
 * once a run passes ~16 minutes of simulated time; an exact token
 * keeps re-ingestion (readChromeTrace) lossless at any timestamp.
 */
std::string
microsecondsToken(TimeNs ns)
{
    char buf[40];
    const long long us = static_cast<long long>(ns) / 1000;
    const long long frac = static_cast<long long>(ns) % 1000;
    if (frac == 0)
        std::snprintf(buf, sizeof buf, "%lld", us);
    else
        std::snprintf(buf, sizeof buf, "%lld.%03lld", us, frac);
    return buf;
}

void
writeArgs(JsonWriter& w, const TraceEvent& ev)
{
    if (ev.args.empty() && ev.detail.empty())
        return;
    w.key("args").beginObject();
    for (const TraceArg& a : ev.args)
        w.field(a.key, static_cast<std::int64_t>(a.value));
    if (!ev.detail.empty())
        w.field("detail", ev.detail);
    w.endObject();
}

}  // namespace

void
writeChromeMetaJson(JsonWriter& w, const char* meta_name, int pid,
                    int tid, const std::string& name)
{
    w.beginObject();
    w.field("ph", "M").field("name", meta_name);
    w.field("pid", static_cast<std::int64_t>(pid));
    w.field("tid", static_cast<std::int64_t>(tid));
    w.key("args").beginObject().field("name", name).endObject();
    w.endObject();
}

void
writeChromeEventJson(JsonWriter& w, const TraceEvent& ev, int tid)
{
    w.beginObject();
    w.field("name", ev.name);
    w.field("cat", ev.category);
    w.field("ph", ev.kind == TraceEventKind::Span ? "X" : "i");
    // Trace-event timestamps are microseconds; keep sub-us detail.
    w.key("ts").rawNumber(microsecondsToken(ev.ts));
    if (ev.kind == TraceEventKind::Span)
        w.key("dur").rawNumber(microsecondsToken(ev.dur));
    else
        w.field("s", "t");  // instant scope: thread
    w.field("pid", static_cast<std::int64_t>(ev.pid));
    w.field("tid", static_cast<std::int64_t>(tid));
    writeArgs(w, ev);
    w.endObject();
}

void
writeChromeTrace(std::ostream& os, const std::vector<TraceEvent>& events,
                 const std::map<int, std::string>& process_names)
{
    auto tids = assignTids(events);

    JsonWriter w(os, 0);
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();

    // Metadata first: process names, then thread (track) names sorted
    // by (pid, track) — a deterministic preamble for the golden test.
    std::set<int> pids;
    for (const auto& [lane, tid] : tids) {
        (void)tid;
        pids.insert(lane.first);
    }
    for (int pid : pids) {
        auto it = process_names.find(pid);
        std::string name = it != process_names.end()
                               ? it->second
                               : "job " + std::to_string(pid);
        writeChromeMetaJson(w, "process_name", pid, 0, name);
    }
    for (const auto& [lane, tid] : tids)
        writeChromeMetaJson(w, "thread_name", lane.first, tid,
                            lane.second);

    for (const TraceEvent& ev : events)
        writeChromeEventJson(w, ev, tids.at({ev.pid, ev.track}));

    w.endArray();
    w.endObject();
    os << "\n";
}

}  // namespace g10
