#include "obs/chrome_trace.h"

#include <set>
#include <utility>

#include "common/json_writer.h"

namespace g10 {

namespace {

/** Deterministic integer tid for each (pid, track) lane. */
std::map<std::pair<int, std::string>, int>
assignTids(const std::vector<TraceEvent>& events)
{
    std::set<std::pair<int, std::string>> lanes;
    for (const TraceEvent& ev : events)
        lanes.insert({ev.pid, ev.track});
    std::map<std::pair<int, std::string>, int> tids;
    int next = 1;
    for (const auto& lane : lanes)
        tids[lane] = next++;
    return tids;
}

void
writeArgs(JsonWriter& w, const TraceEvent& ev)
{
    if (ev.args.empty() && ev.detail.empty())
        return;
    w.key("args").beginObject();
    for (const TraceArg& a : ev.args)
        w.field(a.key, static_cast<std::int64_t>(a.value));
    if (!ev.detail.empty())
        w.field("detail", ev.detail);
    w.endObject();
}

}  // namespace

void
writeChromeMetaJson(JsonWriter& w, const char* meta_name, int pid,
                    int tid, const std::string& name)
{
    w.beginObject();
    w.field("ph", "M").field("name", meta_name);
    w.field("pid", static_cast<std::int64_t>(pid));
    w.field("tid", static_cast<std::int64_t>(tid));
    w.key("args").beginObject().field("name", name).endObject();
    w.endObject();
}

void
writeChromeEventJson(JsonWriter& w, const TraceEvent& ev, int tid)
{
    w.beginObject();
    w.field("name", ev.name);
    w.field("cat", ev.category);
    w.field("ph", ev.kind == TraceEventKind::Span ? "X" : "i");
    // Trace-event timestamps are microseconds; keep sub-us detail.
    w.field("ts", static_cast<double>(ev.ts) / 1e3);
    if (ev.kind == TraceEventKind::Span)
        w.field("dur", static_cast<double>(ev.dur) / 1e3);
    else
        w.field("s", "t");  // instant scope: thread
    w.field("pid", static_cast<std::int64_t>(ev.pid));
    w.field("tid", static_cast<std::int64_t>(tid));
    writeArgs(w, ev);
    w.endObject();
}

void
writeChromeTrace(std::ostream& os, const std::vector<TraceEvent>& events,
                 const std::map<int, std::string>& process_names)
{
    auto tids = assignTids(events);

    JsonWriter w(os, 0);
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();

    // Metadata first: process names, then thread (track) names sorted
    // by (pid, track) — a deterministic preamble for the golden test.
    std::set<int> pids;
    for (const auto& [lane, tid] : tids) {
        (void)tid;
        pids.insert(lane.first);
    }
    for (int pid : pids) {
        auto it = process_names.find(pid);
        std::string name = it != process_names.end()
                               ? it->second
                               : "job " + std::to_string(pid);
        writeChromeMetaJson(w, "process_name", pid, 0, name);
    }
    for (const auto& [lane, tid] : tids)
        writeChromeMetaJson(w, "thread_name", lane.first, tid,
                            lane.second);

    for (const TraceEvent& ev : events)
        writeChromeEventJson(w, ev, tids.at({ev.pid, ev.track}));

    w.endArray();
    w.endObject();
    os << "\n";
}

}  // namespace g10
