/**
 * @file
 * Flash SSD timing + endurance model (paper §5, SSDSim-style).
 *
 * Models a Z-NAND-class device as a log-structured FTL: host writes land
 * in an append-only flash log at flash-page granularity; rewriting a
 * logical page invalidates its old physical page; when free blocks run
 * low, greedy garbage collection relocates the valid pages of the
 * emptiest block and erases it, charging both time (device busy) and
 * endurance (NAND writes, erases). This is what makes the §7.7 lifetime /
 * write-amplification analysis measurable instead of assumed.
 */

#ifndef G10_SIM_SSD_SSD_DEVICE_H
#define G10_SIM_SSD_SSD_DEVICE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/system_config.h"
#include "common/types.h"

namespace g10 {

/** Endurance/traffic counters exposed for §7.7. */
struct SsdStats
{
    Bytes hostReadBytes = 0;    ///< bytes the host read from the device
    Bytes hostWriteBytes = 0;   ///< bytes the host wrote to the device
    Bytes nandWriteBytes = 0;   ///< physical NAND program traffic
    std::uint64_t gcRuns = 0;
    std::uint64_t blockErases = 0;
    std::uint64_t relocatedPages = 0;

    /** Write amplification factor (NAND writes / host writes). */
    double waf() const
    {
        if (hostWriteBytes == 0)
            return 1.0;
        return static_cast<double>(nandWriteBytes) /
               static_cast<double>(hostWriteBytes);
    }
};

/**
 * One simulated SSD. Time is managed by the caller: service calls return
 * the device-busy duration for a request and advance internal wear state.
 */
class SsdDevice
{
  public:
    /** Geometry knobs (defaults sized for the Table 2 device). */
    struct Geometry
    {
        Bytes flashPageBytes = 64 * KiB;   ///< mapping granularity
        std::uint32_t pagesPerBlock = 256;
        double overProvision = 0.07;       ///< spare capacity fraction
        double gcFreeThreshold = 0.05;     ///< GC when free < 5% of blocks
        TimeNs eraseLatencyNs = 2 * MSEC;
    };

    explicit SsdDevice(const SystemConfig& config)
        : SsdDevice(config, Geometry())
    {}

    SsdDevice(const SystemConfig& config, Geometry geometry);

    /**
     * Write @p bytes at logical address space of tensor @p tensor chunk
     * region starting at @p logical_page. Returns device busy time
     * (program latency + streaming + any GC this write triggered).
     */
    TimeNs serviceWrite(std::uint64_t logical_page, Bytes bytes);

    /** Read @p bytes; returns busy time. */
    TimeNs serviceRead(Bytes bytes);

    /** Allocate a run of logical pages for @p bytes; returns first page. */
    std::uint64_t allocLogical(Bytes bytes);

    /**
     * Trim: discard the logical pages [@p logical_page, +@p bytes).
     * Their physical copies (if any) become invalid immediately, so
     * garbage collection can erase the blocks holding them — this is
     * how a departing job's log space becomes reusable. Pages never
     * written are skipped; trimming is free (host-side metadata only).
     */
    void freeLogical(std::uint64_t logical_page, Bytes bytes);

    /** Logical pages currently holding valid (mapped) data. */
    std::uint64_t validPages() const { return logicalToBlock_.size(); }

    const SsdStats& stats() const { return stats_; }
    const Geometry& geometry() const { return geom_; }

    /** Free physical pages remaining (for tests). */
    std::uint64_t freePages() const { return freePages_; }

    /** Total physical pages. */
    std::uint64_t totalPages() const { return totalPages_; }

    /**
     * Device lifetime estimate in years under continuous operation at
     * the observed read/write mix (§7.7's DWPD arithmetic).
     *
     * @param dwpd        rated drive-writes-per-day endurance
     * @param rated_years endurance rating period
     * @param elapsed_ns  simulated wall time generating stats()
     */
    double lifetimeYears(double dwpd, double rated_years,
                         TimeNs elapsed_ns) const;

  private:
    void maybeGarbageCollect(TimeNs* busy);

    SystemConfig config_;
    Geometry geom_;

    std::uint64_t totalPages_ = 0;
    std::uint64_t freePages_ = 0;
    std::uint64_t nextLogical_ = 0;

    // logical page -> block index currently holding it (valid data).
    std::unordered_map<std::uint64_t, std::uint32_t> logicalToBlock_;
    // per-block count of valid pages.
    std::vector<std::uint32_t> blockValid_;
    // per-block count of programmed pages since the last erase.
    std::vector<std::uint32_t> blockFill_;
    std::uint32_t openBlock_ = 0;

    SsdStats stats_;
};

}  // namespace g10

#endif  // G10_SIM_SSD_SSD_DEVICE_H
