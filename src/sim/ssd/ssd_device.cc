#include "ssd_device.h"

#include <algorithm>

#include "common/logging.h"

namespace g10 {

SsdDevice::SsdDevice(const SystemConfig& config, Geometry geometry)
    : config_(config), geom_(geometry)
{
    if (geom_.flashPageBytes == 0 || geom_.pagesPerBlock == 0)
        fatal("bad SSD geometry");
    Bytes physical = static_cast<Bytes>(
        static_cast<double>(config.ssdCapacityBytes) *
        (1.0 + geom_.overProvision));
    totalPages_ = physical / geom_.flashPageBytes;
    freePages_ = totalPages_;
    std::uint64_t blocks =
        std::max<std::uint64_t>(1, totalPages_ / geom_.pagesPerBlock);
    blockValid_.assign(blocks, 0);
    blockFill_.assign(blocks, 0);
    openBlock_ = 0;
}

std::uint64_t
SsdDevice::allocLogical(Bytes bytes)
{
    std::uint64_t pages =
        (bytes + geom_.flashPageBytes - 1) / geom_.flashPageBytes;
    std::uint64_t first = nextLogical_;
    nextLogical_ += pages;
    return first;
}

void
SsdDevice::freeLogical(std::uint64_t logical_page, Bytes bytes)
{
    std::uint64_t pages =
        (bytes + geom_.flashPageBytes - 1) / geom_.flashPageBytes;
    for (std::uint64_t i = 0; i < pages; ++i) {
        auto it = logicalToBlock_.find(logical_page + i);
        if (it == logicalToBlock_.end())
            continue;  // never written (or already trimmed)
        if (blockValid_[it->second] > 0)
            --blockValid_[it->second];
        logicalToBlock_.erase(it);
    }
}

TimeNs
SsdDevice::serviceWrite(std::uint64_t logical_page, Bytes bytes)
{
    std::uint64_t pages =
        (bytes + geom_.flashPageBytes - 1) / geom_.flashPageBytes;
    stats_.hostWriteBytes += bytes;
    stats_.nandWriteBytes += pages * geom_.flashPageBytes;

    TimeNs busy = config_.ssdWriteLatencyNs +
                  transferTimeNs(bytes, config_.ssdWriteGBps);

    for (std::uint64_t i = 0; i < pages; ++i) {
        std::uint64_t lp = logical_page + i;
        // Invalidate the previous physical copy, if any. The page stays
        // unusable until its block is garbage-collected and erased.
        auto it = logicalToBlock_.find(lp);
        if (it != logicalToBlock_.end()) {
            if (blockValid_[it->second] > 0)
                --blockValid_[it->second];
        }
        // Append to the open block, advancing to the next erased block
        // when it fills.
        if (blockFill_[openBlock_] == geom_.pagesPerBlock) {
            std::uint32_t next = openBlock_;
            for (std::size_t probe = 0; probe < blockFill_.size();
                 ++probe) {
                next = (next + 1) %
                       static_cast<std::uint32_t>(blockFill_.size());
                if (blockFill_[next] < geom_.pagesPerBlock)
                    break;
            }
            openBlock_ = next;
        }
        if (blockFill_[openBlock_] >= geom_.pagesPerBlock)
            fatal("SSD is full: %llu valid pages exceed capacity",
                  static_cast<unsigned long long>(totalPages_));
        ++blockValid_[openBlock_];
        ++blockFill_[openBlock_];
        logicalToBlock_[lp] = openBlock_;
        if (freePages_ > 0)
            --freePages_;
        maybeGarbageCollect(&busy);
    }
    return busy;
}

TimeNs
SsdDevice::serviceRead(Bytes bytes)
{
    stats_.hostReadBytes += bytes;
    return config_.ssdReadLatencyNs +
           transferTimeNs(bytes, config_.ssdReadGBps);
}

void
SsdDevice::maybeGarbageCollect(TimeNs* busy)
{
    std::uint64_t threshold = static_cast<std::uint64_t>(
        static_cast<double>(totalPages_) * geom_.gcFreeThreshold);
    if (freePages_ >= threshold)
        return;

    ++stats_.gcRuns;
    // Greedy: relocate the fullest-of-invalid (fewest valid pages)
    // *programmed* block until comfortably above the threshold.
    while (freePages_ < threshold * 2) {
        std::uint32_t victim = 0;
        std::uint32_t best_valid = geom_.pagesPerBlock + 1;
        for (std::uint32_t b = 0;
             b < static_cast<std::uint32_t>(blockValid_.size()); ++b) {
            if (b == openBlock_)
                continue;
            if (blockFill_[b] < geom_.pagesPerBlock)
                continue;  // not fully programmed; nothing to reclaim
            if (blockValid_[b] < best_valid) {
                best_valid = blockValid_[b];
                victim = b;
            }
        }
        if (best_valid > geom_.pagesPerBlock)
            break;  // nothing to collect
        if (best_valid == geom_.pagesPerBlock)
            break;  // everything valid: GC cannot help

        // Relocate the surviving pages into the log and erase. (We
        // charge traffic and time; the per-page map is not re-walked,
        // a standard simulator approximation.)
        stats_.relocatedPages += best_valid;
        stats_.nandWriteBytes +=
            static_cast<Bytes>(best_valid) * geom_.flashPageBytes;
        *busy += geom_.eraseLatencyNs +
                 transferTimeNs(static_cast<Bytes>(best_valid) *
                                    geom_.flashPageBytes,
                                config_.ssdWriteGBps);
        ++stats_.blockErases;
        // The erase frees the whole block; the relocated survivors are
        // programmed back into it (log-append approximation).
        freePages_ += geom_.pagesPerBlock - best_valid;
        blockFill_[victim] = best_valid;
        blockValid_[victim] = best_valid;
    }
}

double
SsdDevice::lifetimeYears(double dwpd, double rated_years,
                         TimeNs elapsed_ns) const
{
    if (elapsed_ns <= 0 || stats_.nandWriteBytes == 0)
        return rated_years;
    // Rated total NAND write budget.
    double budget = dwpd * rated_years * 365.0 *
                    static_cast<double>(config_.ssdCapacityBytes);
    // Observed write rate (bytes/day).
    double per_day = static_cast<double>(stats_.nandWriteBytes) /
                     (static_cast<double>(elapsed_ns) / SEC) * 86400.0;
    if (per_day <= 0.0)
        return rated_years;
    return budget / per_day / 365.0;
}

}  // namespace g10
