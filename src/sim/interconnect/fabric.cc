#include "fabric.h"

#include <algorithm>

#include "common/logging.h"

namespace g10 {

Fabric::Fabric(const SystemConfig& config, SsdDevice* ssd,
               bool uvm_extension, FabricChannels* shared)
    : config_(config), ssd_(ssd), uvmExtension_(uvm_extension),
      ch_(shared != nullptr ? shared : &own_)
{
    if (ssd_ == nullptr)
        fatal("Fabric requires an SSD device model");
}

TimeNs
Fabric::hostSoftwareCost(TransferCause cause) const
{
    switch (cause) {
      case TransferCause::PageFault:
        // Fault handling always takes the host round trip (Table 2).
        return config_.gpuFaultLatencyNs;
      case TransferCause::FaultEvict:
        return config_.gpuFaultLatencyNs;
      case TransferCause::Prefetch:
      case TransferCause::PreEvict:
      case TransferCause::CapacityEvict:
        // With the unified page table the handler touches only PTEs;
        // without it each migration op crosses the driver/syscall path.
        return uvmExtension_ ? 2 * USEC : config_.hostSwOverheadNs;
    }
    return 0;
}

Fabric::Transfer
Fabric::toGpu(Bytes bytes, MemLoc src, TimeNs earliest,
              TransferCause cause)
{
    if (src == MemLoc::Gpu)
        panic("toGpu: source is GPU");
    if (bytes == 0)
        return Transfer{earliest, earliest};

    ++traffic_.migrationOps;

    const bool fault = (cause == TransferCause::PageFault);
    const bool driver_path = !fault && !uvmExtension_;
    TimeNs ready = earliest;  // when batches may start moving
    if (!fault && uvmExtension_) {
        // The unified page table: one PTE interaction per migration op;
        // the hardware arbiter batches the rest.
        TimeNs sw = hostSoftwareCost(cause);
        ready = std::max(earliest, ch_->hostSwFree) + sw;
        ch_->hostSwFree = ready;
    }

    Transfer out;
    out.start = 0;
    out.complete = ready;
    Bytes remaining = bytes;
    Bytes batch_limit;
    if (fault)
        batch_limit = std::max<Bytes>(config_.faultBatchBytes,
                                      config_.pageBytes);
    else if (driver_path)
        batch_limit = std::max<Bytes>(config_.nonUvmCopyBytes,
                                      config_.pageBytes);
    else
        batch_limit = std::max<Bytes>(config_.transferSetBytes,
                                      config_.pageBytes);
    TimeNs fault_cursor = earliest;
    while (remaining > 0) {
        Bytes batch = std::min(remaining, batch_limit);
        TimeNs batch_ready = ready;
        if (driver_path) {
            // No unified page table: the driver sets up (PTEs,
            // syscall, DMA descriptor) every copy chunk. Setup of
            // chunk i+1 pipelines with the DMA of chunk i but
            // serializes on the host software timeline.
            TimeNs sw_done = std::max(earliest, ch_->hostSwFree) +
                             config_.hostSwOverheadNs;
            ch_->hostSwFree = sw_done;
            batch_ready = std::max(batch_ready, sw_done);
        }
        if (fault) {
            // On-demand paging discovers faults serially: the next
            // fault is raised only after the previous batch landed and
            // the warp touched the next missing page, so handler and
            // DMA do NOT pipeline (this is what makes Base UVM pay
            // 4-5x over ideal in the paper).
            ++traffic_.faultBatches;
            TimeNs sw_done = std::max(fault_cursor, ch_->hostSwFree) +
                             config_.gpuFaultLatencyNs;
            ch_->hostSwFree = sw_done;
            batch_ready = sw_done;
        }
        TimeNs link_time = transferTimeNs(batch, config_.pcieGBps);
        TimeNs start;
        TimeNs done;
        if (src == MemLoc::Ssd) {
            TimeNs dev_busy = ssd_->serviceRead(batch);
            start = std::max({batch_ready, ch_->pcieInFree, ch_->ssdFree});
            ch_->ssdFree = start + dev_busy;
            ch_->pcieInFree = start + link_time;
            ch_->pcieInBusy += link_time;
            done = std::max(ch_->ssdFree, ch_->pcieInFree);
            traffic_.ssdToGpu += batch;
        } else {
            start = std::max(batch_ready, ch_->pcieInFree);
            ch_->pcieInFree = start + link_time;
            ch_->pcieInBusy += link_time;
            done = ch_->pcieInFree;
            traffic_.hostToGpu += batch;
        }
        if (out.start == 0)
            out.start = start;
        out.complete = std::max(out.complete, done);
        fault_cursor = done;
        remaining -= batch;
    }
    return out;
}

Fabric::Transfer
Fabric::fromGpu(Bytes bytes, MemLoc dst, TimeNs earliest,
                TransferCause cause, std::uint64_t ssd_logical_page)
{
    if (dst == MemLoc::Gpu)
        panic("fromGpu: destination is GPU");
    if (bytes == 0)
        return Transfer{earliest, earliest};

    ++traffic_.migrationOps;

    const bool fault_path = (cause == TransferCause::FaultEvict);
    const bool driver_path = !fault_path && !uvmExtension_;
    Transfer out;
    TimeNs cursor = earliest;
    if (!fault_path && uvmExtension_) {
        TimeNs sw = hostSoftwareCost(cause);
        cursor = std::max(earliest, ch_->hostSwFree) + sw;
        ch_->hostSwFree = cursor;
    }
    Bytes remaining = bytes;
    Bytes offset = 0;
    out.start = 0;
    Bytes batch_limit;
    if (fault_path)
        batch_limit = std::max<Bytes>(config_.faultBatchBytes,
                                      config_.pageBytes);
    else if (driver_path)
        batch_limit = std::max<Bytes>(config_.nonUvmCopyBytes,
                                      config_.pageBytes);
    else
        batch_limit = std::max<Bytes>(config_.transferSetBytes,
                                      config_.pageBytes);
    while (remaining > 0) {
        Bytes batch = std::min(remaining, batch_limit);
        if (driver_path) {
            TimeNs sw_done = std::max(earliest, ch_->hostSwFree) +
                             config_.hostSwOverheadNs;
            ch_->hostSwFree = sw_done;
            cursor = std::max(cursor, sw_done);
        }
        if (fault_path) {
            // Stock UVM evicts inside the fault handler: each LRU
            // writeback batch is a serialized host round trip.
            TimeNs sw_done = std::max(cursor, ch_->hostSwFree) +
                             config_.gpuFaultLatencyNs;
            ch_->hostSwFree = sw_done;
            cursor = sw_done;
        }
        TimeNs link_time = transferTimeNs(batch, config_.pcieGBps);
        TimeNs start;
        if (dst == MemLoc::Ssd) {
            std::uint64_t page =
                ssd_logical_page +
                offset / ssd_->geometry().flashPageBytes;
            TimeNs dev_busy = ssd_->serviceWrite(page, batch);
            start = std::max({cursor, ch_->pcieOutFree, ch_->ssdFree});
            ch_->ssdFree = start + dev_busy;
            ch_->pcieOutFree = start + link_time;
            ch_->pcieOutBusy += link_time;
            cursor = std::max(ch_->ssdFree, ch_->pcieOutFree);
            traffic_.gpuToSsd += batch;
        } else {
            start = std::max(cursor, ch_->pcieOutFree);
            ch_->pcieOutFree = start + link_time;
            ch_->pcieOutBusy += link_time;
            cursor = ch_->pcieOutFree;
            traffic_.gpuToHost += batch;
        }
        if (out.start == 0)
            out.start = start;
        remaining -= batch;
        offset += batch;
    }
    out.complete = cursor;
    return out;
}

}  // namespace g10
