/**
 * @file
 * PCIe fabric + DMA engine timing model (paper Fig. 10's migration
 * machinery: metadata queues feed a migration arbiter that batches page
 * migrations into transfer sets served by DMA / direct-storage-access).
 *
 * Resources are per-direction virtual timelines:
 *   - pcieIn / pcieOut: each transfer crossing the link in a direction
 *     advances that direction's timeline by bytes/link_bw, so aggregate
 *     link capacity is conserved even when host- and SSD-path flows
 *     interleave.
 *   - the SSD device itself (via SsdDevice service times).
 *   - a host software timeline that serializes page-fault handling
 *     (45 us per fault batch) and, without G10's UVM extension, the
 *     per-migration driver overhead.
 *
 * A transfer's completion is the max across the resources it uses;
 * transfers are internally split into transfer-set batches so a large
 * migration does not monopolize a resource timeline.
 */

#ifndef G10_SIM_INTERCONNECT_FABRIC_H
#define G10_SIM_INTERCONNECT_FABRIC_H

#include "common/system_config.h"
#include "common/types.h"
#include "core/sched/schedule_types.h"
#include "sim/ssd/ssd_device.h"

namespace g10 {

/** Why a transfer was requested; orders service and selects overheads. */
enum class TransferCause : std::uint8_t
{
    PageFault,   ///< demand miss; pays the GPU fault-handling latency
    Prefetch,    ///< planned/heuristic fetch ahead of use
    PreEvict,    ///< planned eviction
    CapacityEvict,  ///< allocator pressure eviction (driver-managed)
    FaultEvict,  ///< eviction inside the fault handler critical path
                 ///< (stock UVM's LRU writeback before resume)
};

/** Traffic accounting per (device pair, direction). */
struct TrafficStats
{
    Bytes ssdToGpu = 0;
    Bytes gpuToSsd = 0;
    Bytes hostToGpu = 0;
    Bytes gpuToHost = 0;
    std::uint64_t faultBatches = 0;
    std::uint64_t migrationOps = 0;

    Bytes totalToGpu() const { return ssdToGpu + hostToGpu; }
    Bytes totalFromGpu() const { return gpuToSsd + gpuToHost; }
};

/** The shared GPU<->{Host,SSD} transfer fabric. */
class Fabric
{
  public:
    /**
     * @param config        platform description
     * @param ssd           SSD device model (not owned)
     * @param uvm_extension true = G10's unified page table (§4.5):
     *                      migration ops avoid the host software path
     */
    Fabric(const SystemConfig& config, SsdDevice* ssd,
           bool uvm_extension);

    /** Completed-transfer timing. */
    struct Transfer
    {
        TimeNs start = 0;
        TimeNs complete = 0;
    };

    /**
     * Move @p bytes of tensor data into GPU memory.
     *
     * @param bytes    transfer size
     * @param src      Host or Ssd
     * @param earliest issue time (request cannot start earlier)
     * @param cause    PageFault pays fault handling; others may pay the
     *                 non-UVM software overhead
     */
    Transfer toGpu(Bytes bytes, MemLoc src, TimeNs earliest,
                   TransferCause cause);

    /** Move @p bytes out of GPU memory to @p dst. */
    Transfer fromGpu(Bytes bytes, MemLoc dst, TimeNs earliest,
                     TransferCause cause, std::uint64_t ssd_logical_page);

    const TrafficStats& traffic() const { return traffic_; }

    /** Earliest time a new inbound transfer could start. */
    TimeNs inboundFreeAt() const { return pcieInFree_; }

    /** Earliest time a new outbound transfer could start. */
    TimeNs outboundFreeAt() const { return pcieOutFree_; }

    /** Total time the inbound link direction has been busy. */
    TimeNs inboundBusyNs() const { return pcieInBusy_; }

    /** Total time the outbound link direction has been busy. */
    TimeNs outboundBusyNs() const { return pcieOutBusy_; }

  private:
    /** Host software serialization cost for one migration op. */
    TimeNs hostSoftwareCost(TransferCause cause) const;

    SystemConfig config_;
    SsdDevice* ssd_;
    bool uvmExtension_;

    TimeNs pcieInFree_ = 0;
    TimeNs pcieOutFree_ = 0;
    TimeNs ssdFree_ = 0;
    TimeNs hostSwFree_ = 0;

    TimeNs pcieInBusy_ = 0;
    TimeNs pcieOutBusy_ = 0;

    TrafficStats traffic_;
};

}  // namespace g10

#endif  // G10_SIM_INTERCONNECT_FABRIC_H
