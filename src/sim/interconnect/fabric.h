/**
 * @file
 * PCIe fabric + DMA engine timing model (paper Fig. 10's migration
 * machinery: metadata queues feed a migration arbiter that batches page
 * migrations into transfer sets served by DMA / direct-storage-access).
 *
 * Resources are per-direction virtual timelines:
 *   - pcieIn / pcieOut: each transfer crossing the link in a direction
 *     advances that direction's timeline by bytes/link_bw, so aggregate
 *     link capacity is conserved even when host- and SSD-path flows
 *     interleave.
 *   - the SSD device itself (via SsdDevice service times).
 *   - a host software timeline that serializes page-fault handling
 *     (45 us per fault batch) and, without G10's UVM extension, the
 *     per-migration driver overhead.
 *
 * A transfer's completion is the max across the resources it uses;
 * transfers are internally split into transfer-set batches so a large
 * migration does not monopolize a resource timeline.
 */

#ifndef G10_SIM_INTERCONNECT_FABRIC_H
#define G10_SIM_INTERCONNECT_FABRIC_H

#include "common/system_config.h"
#include "common/types.h"
#include "core/sched/schedule_types.h"
#include "sim/ssd/ssd_device.h"

namespace g10 {

/** Why a transfer was requested; orders service and selects overheads. */
enum class TransferCause : std::uint8_t
{
    PageFault,   ///< demand miss; pays the GPU fault-handling latency
    Prefetch,    ///< planned/heuristic fetch ahead of use
    PreEvict,    ///< planned eviction
    CapacityEvict,  ///< allocator pressure eviction (driver-managed)
    FaultEvict,  ///< eviction inside the fault handler critical path
                 ///< (stock UVM's LRU writeback before resume)
};

/** Traffic accounting per (device pair, direction). */
struct TrafficStats
{
    Bytes ssdToGpu = 0;
    Bytes gpuToSsd = 0;
    Bytes hostToGpu = 0;
    Bytes gpuToHost = 0;
    std::uint64_t faultBatches = 0;
    std::uint64_t migrationOps = 0;

    Bytes totalToGpu() const { return ssdToGpu + hostToGpu; }
    Bytes totalFromGpu() const { return gpuToSsd + gpuToHost; }
};

/**
 * The per-direction resource timelines a Fabric reserves against.
 *
 * Normally a Fabric owns its channels, but multiple Fabric instances may
 * point at one shared FabricChannels: each keeps its own TrafficStats
 * (per-tenant accounting) while their transfers contend for the same
 * PCIe link, SSD device, and host software timeline. This is what lets
 * the multi-tenant engine model N jobs sharing one GPU's interconnect.
 */
struct FabricChannels
{
    TimeNs pcieInFree = 0;
    TimeNs pcieOutFree = 0;
    TimeNs ssdFree = 0;
    TimeNs hostSwFree = 0;

    TimeNs pcieInBusy = 0;
    TimeNs pcieOutBusy = 0;
};

/** The shared GPU<->{Host,SSD} transfer fabric. */
class Fabric
{
  public:
    /**
     * @param config        platform description
     * @param ssd           SSD device model (not owned)
     * @param uvm_extension true = G10's unified page table (§4.5):
     *                      migration ops avoid the host software path
     * @param shared        resource timelines to contend on (not owned);
     *                      nullptr = this fabric owns private channels
     */
    Fabric(const SystemConfig& config, SsdDevice* ssd,
           bool uvm_extension, FabricChannels* shared = nullptr);

    // ch_ may point at own_; copying would leave it dangling.
    Fabric(const Fabric&) = delete;
    Fabric& operator=(const Fabric&) = delete;

    /** Completed-transfer timing. */
    struct Transfer
    {
        TimeNs start = 0;
        TimeNs complete = 0;
    };

    /**
     * Move @p bytes of tensor data into GPU memory.
     *
     * @param bytes    transfer size
     * @param src      Host or Ssd
     * @param earliest issue time (request cannot start earlier)
     * @param cause    PageFault pays fault handling; others may pay the
     *                 non-UVM software overhead
     */
    Transfer toGpu(Bytes bytes, MemLoc src, TimeNs earliest,
                   TransferCause cause);

    /** Move @p bytes out of GPU memory to @p dst. */
    Transfer fromGpu(Bytes bytes, MemLoc dst, TimeNs earliest,
                     TransferCause cause, std::uint64_t ssd_logical_page);

    const TrafficStats& traffic() const { return traffic_; }

    // NOTE: unlike traffic(), the four channel getters below read the
    // (possibly shared) FabricChannels -- in multi-tenant mode they
    // report link-wide values aggregated across all tenants, not this
    // fabric view's contribution.

    /** Earliest time a new inbound transfer could start. */
    TimeNs inboundFreeAt() const { return ch_->pcieInFree; }

    /** Earliest time a new outbound transfer could start. */
    TimeNs outboundFreeAt() const { return ch_->pcieOutFree; }

    /** Total time the inbound link direction has been busy (link-wide). */
    TimeNs inboundBusyNs() const { return ch_->pcieInBusy; }

    /** Total time the outbound link direction has been busy (link-wide). */
    TimeNs outboundBusyNs() const { return ch_->pcieOutBusy; }

  private:
    /** Host software serialization cost for one migration op. */
    TimeNs hostSoftwareCost(TransferCause cause) const;

    SystemConfig config_;
    SsdDevice* ssd_;
    bool uvmExtension_;

    FabricChannels own_;
    FabricChannels* ch_;  ///< own_ or an externally shared instance

    TrafficStats traffic_;
};

}  // namespace g10

#endif  // G10_SIM_INTERCONNECT_FABRIC_H
