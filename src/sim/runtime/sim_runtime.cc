#include "sim_runtime.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/tracer.h"

namespace g10 {

SimRuntime::SimRuntime(const KernelTrace& trace, Policy& policy,
                       RunConfig config)
    : SimRuntime(trace, policy, config, SharedResources{})
{
}

SimRuntime::SimRuntime(const KernelTrace& trace, Policy& policy,
                       RunConfig config, const SharedResources& shared)
    : trace_(&trace), policy_(&policy), config_(config),
      ownedSsd_(shared.ssd != nullptr
                    ? nullptr
                    : std::make_unique<SsdDevice>(config.sys)),
      ssd_(shared.ssd != nullptr ? shared.ssd : ownedSsd_.get()),
      fabric_(config.sys, ssd_, config.uvmExtension, shared.channels),
      gpu_(shared.gpu), rng_(config.seed),
      mem_(shared.arena != nullptr ? shared.arena
                                   : std::pmr::get_default_resource()),
      tensors_(mem_), bornAt_(mem_), diesAfter_(mem_),
      perturbedDur_(mem_), lruPrev_(mem_), lruNext_(mem_),
      pendingFrees_(mem_)
{
    if (policy.infiniteMemory()) {
        // The ideal baseline never evicts: give it room for everything.
        config_.sys.gpuMemBytes =
            trace.totalTensorBytes() * 2 + 16 * GiB;
    }
    streamTime_ = config_.startNs;
    stats_.policyName = policy.name();
    stats_.modelName = trace.modelName();
    stats_.batchSize = trace.batchSize();
}

Bytes
SimRuntime::footprintOf(Bytes bytes) const
{
    const Bytes page = config_.sys.pageBytes;
    // Sub-chunk tensors are compacted at page granularity (§4.5).
    Bytes rounded = (bytes + page - 1) / page * page;
    return rounded;
}

void
SimRuntime::prepare()
{
    const std::size_t nk = trace_->numKernels();
    const std::size_t nt = trace_->numTensors();

    useIndex_ = &trace_->useIndex();
    const std::vector<std::vector<KernelId>>& uses = useIndex_->uses;
    tensors_.assign(nt, TensorRt{});
    bornAt_.clear();
    bornAt_.resize(nk);
    diesAfter_.clear();
    diesAfter_.resize(nk);
    perturbedDur_.assign(nk, 0);

    // Empty LRU ring: the sentinel (node nt) points at itself.
    lruSentinel_ = static_cast<std::int32_t>(nt);
    lruPrev_.assign(nt + 1, kLruDetached);
    lruNext_.assign(nt + 1, kLruDetached);
    lruPrev_[nt] = lruSentinel_;
    lruNext_[nt] = lruSentinel_;

    for (std::size_t ti = 0; ti < nt; ++ti) {
        const Tensor& t = trace_->tensor(static_cast<TensorId>(ti));
        tensors_[ti].footprint = footprintOf(t.bytes);
        if (uses[ti].empty())
            continue;
        if (!t.isGlobal()) {
            bornAt_[static_cast<std::size_t>(uses[ti].front())]
                .push_back(t.id);
            diesAfter_[static_cast<std::size_t>(uses[ti].back())]
                .push_back(t.id);
        }
    }

    TimeNs ideal = 0;
    for (std::size_t k = 0; k < nk; ++k) {
        TimeNs dur = trace_->kernel(static_cast<KernelId>(k)).durationNs;
        if (config_.timingErrorPct > 0.0) {
            double noise = rng_.uniform(-config_.timingErrorPct,
                                        config_.timingErrorPct);
            dur = std::max<TimeNs>(
                1000, static_cast<TimeNs>(
                          static_cast<double>(dur) * (1.0 + noise)));
        }
        perturbedDur_[k] = dur;
        ideal += trace_->kernel(static_cast<KernelId>(k)).durationNs +
                 config_.sys.kernelLaunchOverheadNs;
    }
    stats_.idealIterationNs = ideal;
}

void
SimRuntime::placeWeights()
{
    const Bytes watermark = static_cast<Bytes>(
        static_cast<double>(config_.sys.gpuMemBytes) *
        config_.weightWatermark);
    for (const Tensor& t : trace_->tensors()) {
        if (!t.isGlobal())
            continue;
        TensorRt& tr = tensors_[static_cast<std::size_t>(t.id)];
        tr.allocated = true;
        if (gpuUsedBytes_ + tr.footprint <= watermark) {
            tr.residentBytes = tr.footprint;
            gpuUsedBytes_ += tr.footprint;
            touch(t.id);
        } else {
            // Cold weights start on the SSD (checkpoint-resident).
            tr.ssdLogical = ssd_->allocLogical(tr.footprint);
            tr.awaySsdBytes = tr.footprint;
        }
    }
}

void
SimRuntime::lruUnlink(TensorId t)
{
    auto i = static_cast<std::size_t>(t);
    std::int32_t p = lruPrev_[i];
    std::int32_t n = lruNext_[i];
    lruNext_[static_cast<std::size_t>(p)] = n;
    lruPrev_[static_cast<std::size_t>(n)] = p;
    lruPrev_[i] = kLruDetached;
    // lruNext_[i] intentionally still points forward: a victim-scan
    // cursor parked on this node recovers by following it.
}

void
SimRuntime::touch(TensorId t)
{
    if (inMakeSpace_)
        panic("LRU touched during capacity eviction (tensor %d): "
              "Policy::capacityEvictDest must not issue fetches",
              t);
    if (lruLinked(t))
        lruUnlink(t);
    auto i = static_cast<std::size_t>(t);
    auto s = static_cast<std::size_t>(lruSentinel_);
    std::int32_t hot = lruPrev_[s];
    lruNext_[static_cast<std::size_t>(hot)] = static_cast<std::int32_t>(i);
    lruPrev_[i] = hot;
    lruNext_[i] = lruSentinel_;
    lruPrev_[s] = static_cast<std::int32_t>(i);
}

void
SimRuntime::pinUntil(TensorId t, std::int64_t global_kernel)
{
    TensorRt& tr = tensors_[static_cast<std::size_t>(t)];
    tr.pinnedUntil = std::max(tr.pinnedUntil, global_kernel);
}

bool
SimRuntime::residentOrInFlight(TensorId t) const
{
    const TensorRt& tr = tensors_[static_cast<std::size_t>(t)];
    return tr.allocated && tr.residentBytes >= tr.footprint;
}

void
SimRuntime::drainPendingFrees(TimeNs at)
{
    while (!pendingFrees_.empty() && pendingFrees_.front().at <= at) {
        std::pop_heap(pendingFrees_.begin(), pendingFrees_.end(),
                      std::greater<>());
        gpuUsedBytes_ -= pendingFrees_.back().bytes;
        pendingFrees_.pop_back();
    }
}

TimeNs
SimRuntime::makeSpace(Bytes needed, TimeNs at, bool soft)
{
    drainPendingFrees(at);
    if (needed > config_.sys.gpuMemBytes) {
        if (soft)
            return -1;
        stats_.failed = true;
        stats_.failReason = "allocation larger than GPU memory";
        return at;
    }

    if (inMakeSpace_)
        panic("makeSpace reentered: policy hooks must not allocate "
              "during capacity eviction");
    inMakeSpace_ = true;
    // Clear the guard on every exit path below.
    struct ScanGuard
    {
        bool& flag;
        ~ScanGuard() { flag = false; }
    } guard{inMakeSpace_};

    TimeNs when = at;
    // Resumable victim cursors, one per desperation pass. Within one
    // makeSpace() call every rejection reason is invariant (pins,
    // arrival vs. streamTime_, and residency only change for evicted
    // victims, which leave the list), so an entry rejected by pass p
    // stays rejected by pass p: each cursor only ever moves forward
    // instead of rescanning the cold end on every eviction. A cursor
    // parked on a node that was just evicted (unlinked) recovers via
    // the node's preserved forward pointer.
    std::int32_t cursor[3] = {lruNext_[static_cast<std::size_t>(
                                  lruSentinel_)],
                              lruNext_[static_cast<std::size_t>(
                                  lruSentinel_)],
                              lruNext_[static_cast<std::size_t>(
                                  lruSentinel_)]};
    // The deficit form of `gpuFreeBytes() < needed` — equivalent when
    // usage is under budget, and still correct while usage exceeds a
    // freshly shrunk budget (resizeMemoryBudget drains with needed=0).
    while (gpuUsedBytes_ + needed > config_.sys.gpuMemBytes) {
        // Prefer waiting for evictions already in flight.
        if (!pendingFrees_.empty()) {
            std::pop_heap(pendingFrees_.begin(), pendingFrees_.end(),
                          std::greater<>());
            PendingFree pf = pendingFrees_.back();
            pendingFrees_.pop_back();
            gpuUsedBytes_ -= pf.bytes;
            when = std::max(when, pf.at);
            continue;
        }

        // Pick the least-recently-used victim. Three passes of
        // increasing desperation: (0) unpinned and settled, (1) soft
        // policy pins (advisory prefetch windows lose to real
        // allocation pressure, as in real UVM), (2) tensors whose
        // inbound DMA is still in flight (evictable once it lands).
        // Only the executing kernel's working set is untouchable.
        TensorId victim = kInvalidTensor;
        // Opportunistic (prefetch-driven) requests only take settled,
        // unpinned victims; evicting another prefetch's window would
        // thrash. Hard allocation pressure may escalate.
        const int max_pass = soft ? 1 : 3;
        for (int pass = 0; pass < max_pass && victim == kInvalidTensor;
             ++pass) {
            std::int32_t& cur = cursor[pass];
            while (cur != lruSentinel_) {
                if (lruPrev_[static_cast<std::size_t>(cur)] ==
                    kLruDetached) {
                    // Evicted underneath us; follow the stale link.
                    cur = lruNext_[static_cast<std::size_t>(cur)];
                    continue;
                }
                const TensorRt& tr =
                    tensors_[static_cast<std::size_t>(cur)];
                if (tr.pinnedUntil == globalIndex_ ||  // hard pin
                    (pass < 1 && tr.pinnedUntil > globalIndex_) ||
                    (pass < 2 && tr.arrival > streamTime_) ||
                    tr.residentBytes == 0) {
                    cur = lruNext_[static_cast<std::size_t>(cur)];
                    continue;
                }
                victim = static_cast<TensorId>(cur);
                break;
            }
        }
        if (victim == kInvalidTensor) {
            if (soft)
                return -1;
            stats_.failed = true;
            stats_.failReason =
                "working set exceeds GPU memory (no evictable victim)";
            return when;
        }
        if (!policy_->demandPagingAllowed()) {
            if (soft)
                return -1;
            stats_.failed = true;
            stats_.failReason =
                "out of GPU memory without demand paging";
            return when;
        }

        MemLoc dest = policy_->capacityEvictDest(*this, victim);
        const TensorRt& vt =
            tensors_[static_cast<std::size_t>(victim)];
        TimeNs earliest =
            (vt.arrival > streamTime_) ? vt.arrival : streamTime_;
        TransferCause cause = policy_->faultDrivenEviction()
            ? TransferCause::FaultEvict
            : TransferCause::CapacityEvict;
        Bytes evicted = issueEvict(victim, dest, cause, earliest);
        if (evicted == 0)
            panic("capacity eviction made no progress (tensor %d)",
                  victim);
    }
    return when;
}

Bytes
SimRuntime::issueEvict(TensorId t, MemLoc dest, TransferCause cause,
                       TimeNs earliest)
{
    TensorRt& tr = tensors_[static_cast<std::size_t>(t)];
    if (!tr.allocated || tr.residentBytes == 0)
        return 0;
    if (tr.pinnedUntil == globalIndex_)
        return 0;  // hard-pinned by the executing kernel
    TimeNs start = std::max(streamTime_, earliest);
    if (tr.arrival > start) {
        if (cause == TransferCause::PreEvict)
            return 0;  // planned eviction of in-flight data: skip
        start = tr.arrival;  // allocator pressure: evict once it lands
    }

    Bytes amount = tr.residentBytes;
    if (dest == MemLoc::Host && hostFreeBytes() < amount)
        dest = MemLoc::Ssd;  // host staging full; overflow to flash

    std::uint64_t logical = UINT64_MAX;
    if (dest == MemLoc::Ssd) {
        if (tr.ssdLogical == UINT64_MAX)
            tr.ssdLogical = ssd_->allocLogical(tr.footprint);
        logical = tr.ssdLogical;
    }

    Fabric::Transfer xfer =
        fabric_.fromGpu(amount, dest, start, cause, logical);

    if (tracer_) {
        tracer_->transfer(tracePid_, cause, MemLoc::Gpu, dest, amount,
                          xfer.start, xfer.complete);
        if (cause == TransferCause::CapacityEvict ||
            cause == TransferCause::FaultEvict)
            tracer_->evictionPick(tracePid_, t, dest, amount,
                                  xfer.start);
        const SsdStats& ss = ssd_->stats();
        if (ss.gcRuns > tracedGcRuns_) {
            tracer_->ssdGc(tracePid_, ss.gcRuns - tracedGcRuns_,
                           ss.blockErases - tracedGcErases_,
                           xfer.complete);
            tracedGcRuns_ = ss.gcRuns;
            tracedGcErases_ = ss.blockErases;
        }
    }

    tr.residentBytes -= amount;
    if (dest == MemLoc::Host) {
        tr.awayHostBytes += amount;
        hostUsedBytes_ += amount;
    } else {
        tr.awaySsdBytes += amount;
    }
    // GPU space frees only when the copy-out completes.
    pendingFrees_.push_back(PendingFree{xfer.complete, amount});
    std::push_heap(pendingFrees_.begin(), pendingFrees_.end(),
                   std::greater<>());
    if (tr.residentBytes == 0) {
        tr.arrival = -1;
        if (lruLinked(t))
            lruUnlink(t);
    }
    return amount;
}

TimeNs
SimRuntime::fetchMissing(TensorId t, TimeNs at, TransferCause cause)
{
    TensorRt& tr = tensors_[static_cast<std::size_t>(t)];
    Bytes missing = tr.footprint - tr.residentBytes;
    if (missing == 0)
        return std::max(at, tr.arrival);

    const bool soft = (cause == TransferCause::Prefetch);
    TimeNs space_at = makeSpace(missing, at, soft);
    if (soft && space_at < 0)
        return at;  // no room right now; skip the opportunistic fetch
    if (stats_.failed)
        return space_at;

    TimeNs done = space_at;
    // Pull from host first (fast path), then from the SSD.
    if (tr.awayHostBytes > 0) {
        Bytes amt = std::min(missing, tr.awayHostBytes);
        auto xfer = fabric_.toGpu(amt, MemLoc::Host, space_at, cause);
        if (tracer_)
            tracer_->transfer(tracePid_, cause, MemLoc::Host,
                              MemLoc::Gpu, amt, xfer.start,
                              xfer.complete);
        tr.awayHostBytes -= amt;
        hostUsedBytes_ -= amt;
        tr.residentBytes += amt;
        gpuUsedBytes_ += amt;
        missing -= amt;
        done = std::max(done, xfer.complete);
    }
    if (missing > 0 && tr.awaySsdBytes > 0) {
        Bytes amt = std::min(missing, tr.awaySsdBytes);
        auto xfer = fabric_.toGpu(amt, MemLoc::Ssd, space_at, cause);
        if (tracer_)
            tracer_->transfer(tracePid_, cause, MemLoc::Ssd,
                              MemLoc::Gpu, amt, xfer.start,
                              xfer.complete);
        tr.awaySsdBytes -= amt;
        tr.residentBytes += amt;
        gpuUsedBytes_ += amt;
        missing -= amt;
        done = std::max(done, xfer.complete);
    }
    if (missing > 0)
        panic("tensor %d: %llu bytes are neither resident nor staged",
              t, static_cast<unsigned long long>(missing));

    tr.arrival = std::max(tr.arrival, done);
    touch(t);
    return done;
}

TimeNs
SimRuntime::issuePrefetch(TensorId t)
{
    TensorRt& tr = tensors_[static_cast<std::size_t>(t)];
    if (!tr.allocated)
        return streamTime_;  // not yet born; nothing to fetch
    if (tr.residentBytes >= tr.footprint)
        return std::max(streamTime_, tr.arrival);
    return fetchMissing(t, streamTime_, TransferCause::Prefetch);
}

void
SimRuntime::freeTensor(TensorId t)
{
    TensorRt& tr = tensors_[static_cast<std::size_t>(t)];
    gpuUsedBytes_ -= tr.residentBytes;
    hostUsedBytes_ -= tr.awayHostBytes;
    tr.residentBytes = 0;
    tr.awayHostBytes = 0;
    tr.awaySsdBytes = 0;
    tr.arrival = -1;
    tr.allocated = false;
    if (lruLinked(t))
        lruUnlink(t);
}

void
SimRuntime::runKernel(KernelId k)
{
    const Kernel& kern = trace_->kernel(k);
    const TimeNs overhead = config_.sys.kernelLaunchOverheadNs;
    const TimeNs iter_begin_time = streamTime_;

    // The working set of the executing kernel is unevictable.
    const TensorId* allBegin =
        useIndex_->kernelTensors.data() +
        useIndex_->kernelTensorsOff[static_cast<std::size_t>(k)];
    const TensorId* allEnd =
        useIndex_->kernelTensors.data() +
        useIndex_->kernelTensorsOff[static_cast<std::size_t>(k) + 1];
    struct
    {
        const TensorId* b;
        const TensorId* e;
        const TensorId* begin() const { return b; }
        const TensorId* end() const { return e; }
    } all{allBegin, allEnd};
    for (TensorId t : all)
        pinUntil(t, globalIndex_);

    currentKernel_ = k;
    policy_->beforeKernel(*this, k);
    if (stats_.failed)
        return;

    TimeNs t0 = streamTime_ + overhead;
    TimeNs alloc_ready = t0;
    TimeNs data_ready = t0;
    TimeNs fault_done = t0;

    // 1. Materialize tensors born at this kernel (outputs, workspace).
    auto materialize = [&](TensorId t) {
        TensorRt& tr = tensors_[static_cast<std::size_t>(t)];
        if (tr.allocated)
            return;
        TimeNs avail = makeSpace(tr.footprint, t0);
        if (stats_.failed)
            return;
        alloc_ready = std::max(alloc_ready, avail);
        tr.allocated = true;
        tr.residentBytes = tr.footprint;
        gpuUsedBytes_ += tr.footprint;
        touch(t);
    };
    for (TensorId t : bornAt_[static_cast<std::size_t>(k)]) {
        materialize(t);
        if (stats_.failed)
            return;
    }

    // 2. Demand-fetch whatever else the kernel touches.
    for (TensorId t : all) {
        TensorRt& tr = tensors_[static_cast<std::size_t>(t)];
        if (!tr.allocated)
            panic("kernel %d uses unmaterialized tensor %d", k, t);
        if (tr.residentBytes < tr.footprint) {
            // Demand miss: the faulting accesses block the kernel, so
            // compute cannot make progress until the pages land
            // (on-demand paging serializes, unlike planned prefetches).
            TimeNs done = fetchMissing(t, t0, TransferCause::PageFault);
            if (stats_.failed)
                return;
            fault_done = std::max(fault_done, done);
        } else if (tr.arrival > t0) {
            // A planned prefetch is still in flight; the kernel's
            // completion waits for it but compute overlaps the DMA.
            data_ready = std::max(data_ready, tr.arrival);
        }
        touch(t);
    }

    TimeNs pre_launch = std::max({t0, alloc_ready, fault_done});
    TimeNs launch = pre_launch;
    TimeNs dur = perturbedDur_[static_cast<std::size_t>(k)];
    if (gpu_ != nullptr) {
        // Time-shared GPU: the execution units are one more resource
        // this kernel must acquire; co-tenant kernels serialize here
        // while their DMA continues to overlap.
        launch = gpu_->acquire(pre_launch, dur);
    }
    TimeNs end = std::max(launch + dur, data_ready);
    streamTime_ = end;

    if (tracer_) {
        // Exact decomposition of this kernel's slip past its replayed
        // duration: alloc + fault cover pre_launch - t0 (alloc first,
        // faults only past the alloc horizon), queue is the compute
        // timeline wait, data the post-compute prefetch wait. The four
        // sum to end - t0 - dur by construction.
        TimeNs alloc_ns = alloc_ready - t0;
        TimeNs fault_ns =
            std::max<TimeNs>(0, fault_done - std::max(t0, alloc_ready));
        TimeNs queue_ns = launch - pre_launch;
        TimeNs data_ns = end - (launch + dur);
        tracer_->kernelSpan(tracePid_, kern.name, k, launch, dur,
                            measuring_, kern.durationNs + overhead,
                            end - iter_begin_time);
        if (alloc_ns > 0)
            tracer_->stallSpan(tracePid_, StallCause::Alloc, k, t0,
                               alloc_ns, measuring_);
        if (fault_ns > 0)
            tracer_->stallSpan(tracePid_, StallCause::Fault, k,
                               std::max(t0, alloc_ready), fault_ns,
                               measuring_);
        if (queue_ns > 0)
            tracer_->stallSpan(tracePid_, StallCause::ComputeQueue, k,
                               pre_launch, queue_ns, measuring_);
        if (data_ns > 0)
            tracer_->stallSpan(tracePid_, StallCause::Data, k,
                               launch + dur, data_ns, measuring_);
    }

    if (measuring_ && end - iter_begin_time - overhead - dur > 5 * MSEC) {
        debug("k=%d %s stall=%lldus alloc=%lldus fault=%lldus data=%lldus",
              k, kern.name.c_str(),
              (long long)((end - iter_begin_time - overhead - dur)/1000),
              (long long)(std::max<TimeNs>(0, alloc_ready - t0)/1000),
              (long long)(std::max<TimeNs>(0, fault_done - t0)/1000),
              (long long)(std::max<TimeNs>(0, data_ready - t0)/1000));
    }
    if (measuring_) {
        KernelStat ks;
        ks.idealNs = kern.durationNs + overhead;
        ks.actualNs = end - iter_begin_time;
        ks.stallNs = std::max<TimeNs>(0, ks.actualNs - ks.idealNs);
        stats_.kernels.push_back(ks);
        stats_.totalStallNs += ks.stallNs;
    }

    // 3. Free tensors that die here.
    for (TensorId t : diesAfter_[static_cast<std::size_t>(k)])
        freeTensor(t);

    policy_->afterKernel(*this, k);
}

void
SimRuntime::start()
{
    if (started_)
        panic("SimRuntime::start() called twice");
    started_ = true;
    prepare();
    placeWeights();
    policy_->onSimulationStart(*this);
}

bool
SimRuntime::finished() const
{
    // An empty trace has nothing to step (guards runKernel(0)).
    return stats_.failed || iter_ >= config_.iterations ||
           trace_->numKernels() == 0;
}

bool
SimRuntime::stepKernel()
{
    if (!started_)
        panic("SimRuntime::stepKernel() before start()");
    if (finished())
        return false;

    if (nextKernel_ == 0 && iter_ == config_.iterations - 1) {
        measuring_ = true;
        measureStart_ = streamTime_;
        trafficAtMeasureStart_ = fabric_.traffic();
        faultsAtMeasureStart_ = fabric_.traffic().faultBatches;
        stats_.kernels.clear();
        stats_.kernels.reserve(trace_->numKernels());
        stats_.totalStallNs = 0;
    }

    runKernel(static_cast<KernelId>(nextKernel_));
    ++globalIndex_;
    if (++nextKernel_ >= trace_->numKernels()) {
        nextKernel_ = 0;
        ++iter_;
    }
    return true;
}

ExecStats
SimRuntime::finalize()
{
    if (!stats_.failed) {
        stats_.measuredIterationNs = streamTime_ - measureStart_;
        const TrafficStats& tot = fabric_.traffic();
        stats_.traffic.ssdToGpu =
            tot.ssdToGpu - trafficAtMeasureStart_.ssdToGpu;
        stats_.traffic.gpuToSsd =
            tot.gpuToSsd - trafficAtMeasureStart_.gpuToSsd;
        stats_.traffic.hostToGpu =
            tot.hostToGpu - trafficAtMeasureStart_.hostToGpu;
        stats_.traffic.gpuToHost =
            tot.gpuToHost - trafficAtMeasureStart_.gpuToHost;
        stats_.traffic.migrationOps =
            tot.migrationOps - trafficAtMeasureStart_.migrationOps;
        stats_.traffic.faultBatches =
            tot.faultBatches - trafficAtMeasureStart_.faultBatches;
        stats_.pageFaultBatches = stats_.traffic.faultBatches;
        stats_.ssd = ssd_->stats();
    }
    return stats_;
}

void
SimRuntime::releaseSsdLog()
{
    for (TensorRt& tr : tensors_) {
        if (tr.ssdLogical == UINT64_MAX)
            continue;
        ssd_->freeLogical(tr.ssdLogical, tr.footprint);
        tr.ssdLogical = UINT64_MAX;
        tr.awaySsdBytes = 0;
    }
}

void
SimRuntime::setTracer(Tracer* tracer, int pid)
{
    tracer_ = tracer;
    tracePid_ = pid;
    // Report only GC activity from here on (the shared device may
    // already have wear from earlier jobs).
    tracedGcRuns_ = ssd_->stats().gcRuns;
    tracedGcErases_ = ssd_->stats().blockErases;
}

SimRuntime::ResizeOutcome
SimRuntime::resizeMemoryBudget(Bytes gpuBytes, Bytes hostBytes)
{
    ResizeOutcome out;
    out.effectiveNs = streamTime_;
    const Bytes oldGpuBytes = config_.sys.gpuMemBytes;
    if (policy_->infiniteMemory()) {
        // The ideal baseline models unbounded GPU memory (the
        // constructor inflated the budget); only the host staging
        // budget tracks the lease.
        config_.sys.hostMemBytes = hostBytes;
        return out;
    }
    out.shrunk = gpuBytes < config_.sys.gpuMemBytes;
    ++resizeCount_;
    config_.sys.gpuMemBytes = gpuBytes;
    // Host staging drains lazily: hostFreeBytes() saturates at zero,
    // so while usage exceeds the shrunk budget new evictions overflow
    // to the SSD and fetches bleed the staging area down.
    config_.sys.hostMemBytes = hostBytes;
    if (!started_ || stats_.failed || !out.shrunk) {
        if (tracer_ && started_)
            tracer_->budgetResize(tracePid_, oldGpuBytes, gpuBytes, 0,
                                  streamTime_);
        return out;
    }

    // Eager drain to the new watermark through the same machinery
    // capacity pressure uses: LRU victims, the policy's destination
    // choice, and real DMA reservations on the fabric timelines.
    drainPendingFrees(streamTime_);
    if (gpuUsedBytes_ > gpuBytes) {
        out.evictedBytes = gpuUsedBytes_ - gpuBytes;
        resizeEvictedBytes_ += out.evictedBytes;
        out.effectiveNs = makeSpace(0, streamTime_);
    }
    if (tracer_)
        tracer_->budgetResize(tracePid_, oldGpuBytes, gpuBytes,
                              out.evictedBytes, streamTime_);
    return out;
}

void
SimRuntime::setPolicy(Policy& policy)
{
    if (policy.infiniteMemory() != policy_->infiniteMemory() ||
        policy.demandPagingAllowed() != policy_->demandPagingAllowed())
        panic("setPolicy: replacement policy changes the memory model "
              "mid-run");
    policy_ = &policy;
    stats_.policyName = policy.name();
}

ExecStats
SimRuntime::run()
{
    start();
    while (stepKernel()) {
    }
    return finalize();
}

ExecStats
simulate(const KernelTrace& trace, Policy& policy,
         const RunConfig& config)
{
    SimRuntime rt(trace, policy, config);
    return rt.run();
}

}  // namespace g10
