/**
 * @file
 * The memory-management policy interface the runtime simulator drives,
 * plus the run configuration and result statistics shared by every
 * design point (Ideal / Base UVM / DeepUM+ / FlashNeuron / G10*).
 */

#ifndef G10_SIM_RUNTIME_POLICY_H
#define G10_SIM_RUNTIME_POLICY_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/system_config.h"
#include "common/types.h"
#include "core/sched/schedule_types.h"
#include "sim/interconnect/fabric.h"
#include "sim/ssd/ssd_device.h"

namespace g10 {

class SimRuntime;

/** Per-run configuration beyond the platform description. */
struct RunConfig
{
    SystemConfig sys;

    /** Training iterations to replay; the last one is measured. */
    int iterations = 2;

    /**
     * G10's unified-page-table extension (§4.5). When false, planned
     * migrations pay the host driver/syscall overhead per op.
     */
    bool uvmExtension = true;

    /**
     * Kernel-duration perturbation magnitude for the §7.6 robustness
     * study, e.g. 0.2 = uniform +-20% noise. The *plan* is always built
     * from unperturbed durations; only the replay is noisy.
     */
    double timingErrorPct = 0.0;

    /** RNG seed for the perturbation (shared across designs). */
    std::uint64_t seed = 42;

    /** Fraction of GPU memory weights may fill at placement time. */
    double weightWatermark = 0.85;

    /**
     * Simulated time at which the job enters the system. The GPU stream
     * clock starts here; used by the multi-tenant engine to model job
     * arrival offsets. 0 = start of time (single-job runs).
     */
    TimeNs startNs = 0;
};

/** Per-kernel replay timing (measured iteration). */
struct KernelStat
{
    TimeNs idealNs = 0;   ///< duration + launch overhead
    TimeNs actualNs = 0;  ///< contribution to the measured iteration
    TimeNs stallNs = 0;   ///< actual - ideal (>= 0)
};

/** End-to-end results of one simulated run. */
struct ExecStats
{
    std::string policyName;
    std::string modelName;
    int batchSize = 0;

    bool failed = false;          ///< FlashNeuron-style hard OOM
    std::string failReason;

    TimeNs idealIterationNs = 0;  ///< infinite-memory iteration time
    TimeNs measuredIterationNs = 0;

    /** ideal / measured (1.0 = ideal performance). */
    double normalizedPerf() const
    {
        if (failed || measuredIterationNs <= 0)
            return 0.0;
        return static_cast<double>(idealIterationNs) /
               static_cast<double>(measuredIterationNs);
    }

    /** Throughput in samples/second for the measured iteration. */
    double throughput() const
    {
        if (failed || measuredIterationNs <= 0)
            return 0.0;
        return static_cast<double>(batchSize) /
               (static_cast<double>(measuredIterationNs) / SEC);
    }

    TimeNs totalStallNs = 0;
    std::uint64_t pageFaultBatches = 0;  ///< measured iteration

    /** Migration traffic during the measured iteration. */
    TrafficStats traffic;

    /** Cumulative SSD wear over all iterations. */
    SsdStats ssd;

    std::vector<KernelStat> kernels;  ///< measured iteration
};

/**
 * A GPU memory-management design point. The runtime calls the hooks as
 * the kernel stream replays; policies react by issuing prefetches and
 * evictions through the SimRuntime services.
 */
class Policy
{
  public:
    virtual ~Policy() = default;

    /** Display name ("Base UVM", "G10", ...). */
    virtual const char* name() const = 0;

    /** Called once before the first iteration. */
    virtual void onSimulationStart(SimRuntime&) {}

    /** Called at the instrumentation point just before kernel @p k. */
    virtual void beforeKernel(SimRuntime&, KernelId) {}

    /** Called right after kernel @p k completes. */
    virtual void afterKernel(SimRuntime&, KernelId) {}

    /**
     * Preferred destination for capacity evictions when the allocator
     * must push tensors out (LRU victims chosen by the runtime).
     *
     * Contract: this hook runs *inside* the allocator's eviction loop
     * and must only inspect state (tensorState(), gpuFreeBytes(), ...)
     * and answer. It must not issue transfers or touch residency —
     * calling issuePrefetch()/issueEvict() from here would mutate the
     * LRU order mid-scan; the runtime enforces this with a panic.
     */
    virtual MemLoc capacityEvictDest(SimRuntime&, TensorId) = 0;

    /**
     * False for designs without demand paging (FlashNeuron): an
     * allocation that cannot be satisfied fails the run instead of
     * faulting.
     */
    virtual bool demandPagingAllowed() const { return true; }

    /** Ideal baseline: capacity checks disabled entirely. */
    virtual bool infiniteMemory() const { return false; }

    /**
     * True when capacity evictions run inside the page-fault handler
     * critical path (stock UVM's LRU writeback-before-resume) instead
     * of as driver-managed background DMA.
     */
    virtual bool faultDrivenEviction() const { return false; }
};

}  // namespace g10

#endif  // G10_SIM_RUNTIME_POLICY_H
