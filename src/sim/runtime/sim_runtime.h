/**
 * @file
 * The end-to-end execution simulator (paper §5).
 *
 * Replays a kernel trace under a memory-management policy on the modeled
 * platform: GPU memory is a finite pool at chunk granularity, misses are
 * serviced through the UVM fault path (45 us handler + DMA), planned
 * migrations flow through the PCIe/SSD fabric, and kernel completion
 * waits on data arrival (compute overlaps in-flight transfers, so a
 * kernel's stall is exactly the data wait the paper's Fig. 12/13
 * breakdowns measure).
 *
 * The replay is sequential in kernel-stream order; every transfer is an
 * explicit reservation on the fabric's resource timelines, making runs
 * deterministic and O(kernels + migrations).
 */

#ifndef G10_SIM_RUNTIME_SIM_RUNTIME_H
#define G10_SIM_RUNTIME_SIM_RUNTIME_H

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <vector>

#include "common/rng.h"
#include "common/system_config.h"
#include "common/types.h"
#include "graph/trace.h"
#include "sim/interconnect/fabric.h"
#include "sim/runtime/policy.h"
#include "sim/ssd/ssd_device.h"

namespace g10 {

class Tracer;

/** Runtime residency record for one tensor. */
struct TensorRt
{
    Bytes footprint = 0;      ///< page-rounded allocation size
    Bytes residentBytes = 0;  ///< bytes currently in GPU memory
    Bytes awayHostBytes = 0;  ///< bytes staged in host DRAM
    Bytes awaySsdBytes = 0;   ///< bytes staged on the SSD
    TimeNs arrival = -1;      ///< in-flight fetch completion (-1 = none)
    bool allocated = false;   ///< materialized at least once
    std::uint64_t ssdLogical = UINT64_MAX;  ///< FTL logical page base
    std::int64_t pinnedUntil = -1;  ///< global kernel idx pin horizon
};

/**
 * The GPU's execution-unit timeline when compute is time-shared between
 * jobs. A kernel that is ready at `ready` launches at
 * max(ready, freeAt) and occupies the device for its duration; planned
 * DMA still overlaps compute exactly as in the single-job model, only
 * the execution units themselves serialize across tenants.
 */
struct GpuComputeTimeline
{
    TimeNs freeAt = 0;   ///< earliest time the next kernel may launch
    TimeNs busyNs = 0;   ///< total kernel-occupied time (utilization)

    /** Reserve the device for one kernel; returns its launch time. */
    TimeNs
    acquire(TimeNs ready, TimeNs dur)
    {
        TimeNs start = ready > freeAt ? ready : freeAt;
        freeAt = start + dur;
        busyNs += dur;
        return start;
    }
};

/**
 * Platform resources shared by co-located jobs. All pointers are
 * borrowed; the multi-tenant engine owns the actual instances. `gpu`
 * may be null to share only the storage/interconnect path.
 */
struct SharedResources
{
    SsdDevice* ssd = nullptr;            ///< one flash device, shared wear
    FabricChannels* channels = nullptr;  ///< PCIe/SSD/host-SW timelines
    GpuComputeTimeline* gpu = nullptr;   ///< time-shared execution units

    /**
     * Memory resource backing the runtime's scratch state (use lists,
     * LRU arrays, pending-free heap). Null = the default new/delete
     * resource. Sweep drivers pass a probe-scoped Arena here and
     * reset() it between probes; the resource must outlive the
     * runtime. Allocation placement never affects simulated results.
     */
    std::pmr::memory_resource* arena = nullptr;
};

/** Drives one simulation; see simulate() for the one-call entry point. */
class SimRuntime
{
  public:
    SimRuntime(const KernelTrace& trace, Policy& policy, RunConfig config);

    /**
     * Construct a runtime whose transfers and (optionally) compute
     * contend with other runtimes through @p shared. Traffic accounting
     * stays per-runtime; SSD wear accumulates on the shared device.
     */
    SimRuntime(const KernelTrace& trace, Policy& policy, RunConfig config,
               const SharedResources& shared);

    /** Run all iterations and return the measured statistics. */
    ExecStats run();

    // ---- Incremental stepping (multi-tenant interleaving) ----------

    /** Prepare the run: build schedules, place weights, notify policy. */
    void start();

    /** True once every iteration completed (or the run failed). */
    bool finished() const;

    /**
     * Replay exactly one kernel of the current iteration and advance.
     * @return false when there was nothing left to do
     */
    bool stepKernel();

    /** Finalize and return statistics; call after finished(). */
    ExecStats finalize();

    /**
     * Detach the job from the (possibly shared) platform after
     * finalize(): trims every tensor's SSD log allocation so the
     * flash space becomes garbage-collectable for later arrivals
     * (no-op on regions never allocated). The serving engine calls
     * this when a job departs mid-simulation; single-job runs that
     * own their SsdDevice never need to.
     */
    void releaseSsdLog();

    // ---- Dynamic memory budget (elastic partitions) ----------------

    /** Outcome of one resizeMemoryBudget() call. */
    struct ResizeOutcome
    {
        bool shrunk = false;      ///< GPU budget decreased
        Bytes evictedBytes = 0;   ///< GPU bytes drained to fit
        TimeNs effectiveNs = 0;   ///< when the new watermark holds
    };

    /**
     * Change the job's memory capacity mid-run (the elastic-partition
     * path: the serving engine resizes a live job's lease and tells
     * its runtime here). Growth takes effect immediately. A GPU
     * shrink eagerly evicts LRU victims through the existing
     * migration machinery until residency fits under the new
     * watermark — resident state is staged to host/SSD, never
     * dropped; if the pinned working set cannot fit, the run fails
     * explicitly (same contract as any other hard OOM). A host
     * shrink drains lazily: staged bytes stay where they are, new
     * evictions overflow to the SSD until usage falls under budget.
     *
     * Must be called between kernels (never from policy hooks). The
     * ideal (infinite-memory) baseline only tracks the host budget.
     */
    ResizeOutcome resizeMemoryBudget(Bytes gpuBytes, Bytes hostBytes);

    /** Budget changes applied so far (reported by the serve layer). */
    std::uint64_t resizeCount() const { return resizeCount_; }

    /** GPU bytes shrinks had to drain (cumulative). */
    Bytes resizeEvictedBytes() const { return resizeEvictedBytes_; }

    /**
     * Swap the driving policy (elastic replanning: after a capacity
     * resize the serving engine recompiles the migration plan at the
     * new budget, warm-started from the old schedule, and installs it
     * here). Must be called between kernels; the new policy must have
     * the same memory model (demand paging / infinite memory) as the
     * old one. The caller keeps ownership of both policies.
     */
    void setPolicy(Policy& policy);

    // ---- Services for policies -------------------------------------

    const KernelTrace& trace() const { return *trace_; }
    const RunConfig& config() const { return config_; }

    /** Global kernel index (iteration * numKernels + k). */
    std::int64_t globalKernelIndex() const { return globalIndex_; }

    /** Current GPU stream time. */
    TimeNs now() const { return streamTime_; }

    /** Kernel ids using each tensor, ascending (shared index). */
    const std::vector<std::vector<KernelId>>& useLists() const
    {
        return trace_->useIndex().uses;
    }

    /** Residency record (read-only for policies). */
    const TensorRt& tensorState(TensorId t) const
    {
        return tensors_[static_cast<std::size_t>(t)];
    }

    /** True when every byte of @p t is in GPU memory or in flight. */
    bool residentOrInFlight(TensorId t) const;

    /**
     * Fetch the non-resident bytes of @p t into GPU memory ahead of
     * use. No-op if fully resident or already in flight. Space is made
     * by LRU capacity eviction if needed.
     *
     * @return completion time of the fetch (now() if nothing to do)
     */
    TimeNs issuePrefetch(TensorId t);

    /**
     * Evict the resident bytes of @p t to @p dest (planned pre-evict or
     * policy-driven early eviction). Hard-pinned tensors are skipped.
     *
     * @param earliest eviction may not start before this time (used by
     *        the allocator to evict data whose inbound DMA is still in
     *        flight); -1 = now
     * @return bytes actually scheduled for eviction
     */
    Bytes issueEvict(TensorId t, MemLoc dest, TransferCause cause,
                     TimeNs earliest = -1);

    /** Pin @p t against capacity eviction until global kernel index. */
    void pinUntil(TensorId t, std::int64_t global_kernel);

    /** GPU bytes not currently allocated (0 while a shrink drains). */
    Bytes gpuFreeBytes() const
    {
        return config_.sys.gpuMemBytes > gpuUsedBytes_
            ? config_.sys.gpuMemBytes - gpuUsedBytes_
            : 0;
    }

    /** Host staging bytes still free (0 while a shrink drains). */
    Bytes hostFreeBytes() const
    {
        return config_.sys.hostMemBytes > hostUsedBytes_
            ? config_.sys.hostMemBytes - hostUsedBytes_
            : 0;
    }

    /** Number of kernels in one iteration. */
    std::size_t numKernels() const { return trace_->numKernels(); }

    /** This runtime's fabric view (per-job traffic accounting). */
    const Fabric& fabric() const { return fabric_; }

    /** The SSD this runtime writes to (shared in multi-tenant runs). */
    const SsdDevice& ssd() const { return *ssd_; }

    // ---- Observability ----------------------------------------------

    /**
     * Attach an event/counter tracer (nullptr detaches). @p pid labels
     * this job's events in multi-job traces. Tracing is strictly
     * read-only on simulation state: every emit site is guarded by a
     * null check, so an untraced run does no observability work and a
     * traced run is bit-identical to it.
     */
    void setTracer(Tracer* tracer, int pid = 0);

  private:
    struct PendingFree
    {
        TimeNs at;
        Bytes bytes;
        bool operator>(const PendingFree& o) const { return at > o.at; }
    };

    /** Round @p bytes to its GPU footprint (page compaction for tiny
     *  tensors, §4.5). */
    Bytes footprintOf(Bytes bytes) const;

    void prepare();
    void placeWeights();
    void runKernel(KernelId k);

    /**
     * Ensure @p needed bytes are free, evicting LRU victims via the
     * policy if necessary. Returns the time at which the space is
     * actually available (>= @p at).
     *
     * @param soft when true a space failure returns -1 instead of
     *        failing the run (used for opportunistic prefetches)
     */
    TimeNs makeSpace(Bytes needed, TimeNs at, bool soft = false);

    /** Apply pending frees with completion <= @p at. */
    void drainPendingFrees(TimeNs at);

    /** Fetch missing bytes of @p t (demand fault or prefetch). */
    TimeNs fetchMissing(TensorId t, TimeNs at, TransferCause cause);

    /** Release the GPU copy of a dead tensor immediately. */
    void freeTensor(TensorId t);

    /** Record use for LRU bookkeeping. */
    void touch(TensorId t);

    // ---- Intrusive LRU list (O(1) touch/erase, no allocations) ------

    /** True when @p t is linked into the recency list. */
    bool
    lruLinked(TensorId t) const
    {
        return lruPrev_[static_cast<std::size_t>(t)] != kLruDetached;
    }

    /** Unlink @p t, keeping its forward pointer for stale cursors. */
    void lruUnlink(TensorId t);

    const KernelTrace* trace_;
    Policy* policy_;
    RunConfig config_;

    std::unique_ptr<SsdDevice> ownedSsd_;  ///< null when SSD is shared
    SsdDevice* ssd_;
    Fabric fabric_;
    GpuComputeTimeline* gpu_ = nullptr;  ///< null = exclusive GPU
    Rng rng_;

    // Scratch allocator (probe-scoped arena in sweeps, else new/delete).
    std::pmr::memory_resource* mem_;

    std::pmr::vector<TensorRt> tensors_;
    std::pmr::vector<std::pmr::vector<TensorId>> bornAt_;
    std::pmr::vector<std::pmr::vector<TensorId>> diesAfter_;
    std::pmr::vector<TimeNs> perturbedDur_;

    // The trace's shared use-list / kernel-tensor index (set in
    // prepare()): runKernel() walks precomputed slices instead of
    // re-sorting a fresh Kernel::allTensors() vector per execution.
    const TraceUseIndex* useIndex_ = nullptr;

    Bytes gpuUsedBytes_ = 0;
    Bytes hostUsedBytes_ = 0;

    TimeNs streamTime_ = 0;
    std::int64_t globalIndex_ = 0;
    KernelId currentKernel_ = 0;

    // LRU recency order as an intrusive doubly-linked list indexed by
    // TensorId: node numTensors() is the sentinel, sentinel->next is the
    // coldest (least recently used) tensor, sentinel->prev the hottest.
    // touch/erase are O(1) with zero allocations; victim scans walk
    // coldest-to-hottest, exactly the order the former
    // std::set<(lruSeq, tensor)> iterated in. A detached node keeps its
    // forward pointer so a makeSpace() cursor parked on a just-evicted
    // entry can keep walking (nodes are never re-linked mid-makeSpace).
    static constexpr std::int32_t kLruDetached = -1;
    std::pmr::vector<std::int32_t> lruPrev_;
    std::pmr::vector<std::int32_t> lruNext_;
    std::int32_t lruSentinel_ = 0;  ///< == numTensors(), set in prepare()

    // Outstanding eviction space returns.
    std::pmr::vector<PendingFree> pendingFrees_;  // min-heap by `at`

    // Guards the resumable victim cursors: while makeSpace() runs, no
    // code path may re-link LRU nodes (see Policy::capacityEvictDest's
    // contract); touch() and reentrant makeSpace() panic if one does.
    bool inMakeSpace_ = false;

    // Stepping cursor (used by run() and the multi-tenant engine).
    bool started_ = false;
    int iter_ = 0;
    std::size_t nextKernel_ = 0;

    // Elastic-budget bookkeeping.
    std::uint64_t resizeCount_ = 0;
    Bytes resizeEvictedBytes_ = 0;

    // Observability (null = off; the only cost then is this branch).
    Tracer* tracer_ = nullptr;
    int tracePid_ = 0;
    std::uint64_t tracedGcRuns_ = 0;    ///< SSD GC runs already reported
    std::uint64_t tracedGcErases_ = 0;  ///< ... and block erases

    // Stats under construction.
    ExecStats stats_;
    bool measuring_ = false;
    TimeNs measureStart_ = 0;
    TrafficStats trafficAtMeasureStart_;
    std::uint64_t faultsAtMeasureStart_ = 0;
};

/** One-call convenience wrapper. */
ExecStats simulate(const KernelTrace& trace, Policy& policy,
                   const RunConfig& config);

}  // namespace g10

#endif  // G10_SIM_RUNTIME_SIM_RUNTIME_H
