/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (profiling-error injection for
 * Fig. 19, synthetic graph generation in tests) draws from an explicitly
 * seeded Rng so runs are reproducible bit-for-bit.
 */

#ifndef G10_COMMON_RNG_H
#define G10_COMMON_RNG_H

#include <cstdint>
#include <random>

namespace g10 {

/** Thin seeded wrapper around a fixed-algorithm engine. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        std::uniform_real_distribution<double> d(lo, hi);
        return d(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> d(lo, hi);
        return d(engine_);
    }

    /** Standard normal scaled by @p stddev around @p mean. */
    double
    gaussian(double mean, double stddev)
    {
        std::normal_distribution<double> d(mean, stddev);
        return d(engine_);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution d(p);
        return d(engine_);
    }

    /** Underlying engine (for std::shuffle etc.). */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace g10

#endif  // G10_COMMON_RNG_H
