/**
 * @file
 * Status/error reporting in the gem5 tradition.
 *
 * - panic():  an internal invariant was violated -- a G10 bug. Aborts.
 * - fatal():  the simulation cannot continue because of a user/config
 *             error. Exits with status 1.
 * - warn():   something is modeled approximately; results may be affected.
 * - inform(): progress/status output.
 *
 * All functions accept printf-style formatting.
 */

#ifndef G10_COMMON_LOGGING_H
#define G10_COMMON_LOGGING_H

#include <cstdarg>

namespace g10 {

/** Verbosity filter for inform(); warnings and errors always print. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global log level (default: Warn, so benches stay quiet). */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

/**
 * Parse a log-level name ("silent", "warn", "info", "debug",
 * case-insensitive) — the `--log-level` CLI surface. Returns false on
 * unknown names.
 */
bool logLevelFromName(const char* name, LogLevel* out);

/** Report an internal error (a bug in G10) and abort. */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about an approximation or suspicious condition. */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message (shown at LogLevel::Info and above). */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug-level message (shown at LogLevel::Debug). */
void debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace g10

#endif  // G10_COMMON_LOGGING_H
