#include "logging.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace g10 {

namespace {
LogLevel g_level = LogLevel::Warn;

void
vreport(const char* tag, const char* fmt, va_list args)
{
    std::fprintf(stderr, "[g10:%s] ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}
}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

bool
logLevelFromName(const char* name, LogLevel* out)
{
    std::string s;
    for (const char* p = name; *p; ++p)
        s.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p))));
    if (s == "silent")
        *out = LogLevel::Silent;
    else if (s == "warn")
        *out = LogLevel::Warn;
    else if (s == "info")
        *out = LogLevel::Info;
    else if (s == "debug")
        *out = LogLevel::Debug;
    else
        return false;
    return true;
}

void
panic(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("PANIC", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("FATAL", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char* fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char* fmt, ...)
{
    if (g_level < LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
debug(const char* fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("debug", fmt, args);
    va_end(args);
}

}  // namespace g10
