#include "json_writer.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace g10 {

// ------------------------------------------------------------- writer

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent)
{}

JsonWriter::~JsonWriter()
{
    if (!stack_.empty())
        panic("JsonWriter destroyed with %zu unclosed container(s)",
              stack_.size());
}

void
JsonWriter::prefix(bool isKey)
{
    Ctx ctx = stack_.empty() ? Ctx::Top : stack_.back();
    if (ctx == Ctx::Top) {
        if (isKey)
            panic("JsonWriter: key() outside any object");
        if (done_)
            panic("JsonWriter: second top-level value");
        return;
    }
    if (ctx == Ctx::Object && !isKey && !keyPending_)
        panic("JsonWriter: object member needs key() first");
    if (ctx == Ctx::Array && isKey)
        panic("JsonWriter: key() inside an array");
    if (keyPending_)
        return;  // the value right after its key: no comma/indent

    if (hasItems_.back())
        os_ << ',';
    if (indent_ > 0) {
        os_ << '\n';
        os_ << std::string(stack_.size() *
                           static_cast<std::size_t>(indent_), ' ');
    }
    hasItems_.back() = true;
}

JsonWriter&
JsonWriter::beginObject()
{
    prefix(false);
    keyPending_ = false;
    os_ << '{';
    stack_.push_back(Ctx::Object);
    hasItems_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Ctx::Object || keyPending_)
        panic("JsonWriter: endObject() does not match an open object");
    bool had = hasItems_.back();
    stack_.pop_back();
    hasItems_.pop_back();
    if (had && indent_ > 0)
        os_ << '\n'
            << std::string(stack_.size() *
                           static_cast<std::size_t>(indent_), ' ');
    os_ << '}';
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    prefix(false);
    keyPending_ = false;
    os_ << '[';
    stack_.push_back(Ctx::Array);
    hasItems_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Ctx::Array)
        panic("JsonWriter: endArray() does not match an open array");
    bool had = hasItems_.back();
    stack_.pop_back();
    hasItems_.pop_back();
    if (had && indent_ > 0)
        os_ << '\n'
            << std::string(stack_.size() *
                           static_cast<std::size_t>(indent_), ' ');
    os_ << ']';
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter&
JsonWriter::key(const std::string& k)
{
    if (keyPending_)
        panic("JsonWriter: key('%s') while another key is pending",
              k.c_str());
    prefix(true);
    os_ << quote(k) << (indent_ > 0 ? ": " : ":");
    keyPending_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(const std::string& v)
{
    prefix(false);
    keyPending_ = false;
    os_ << quote(v);
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(const char* v)
{
    return value(std::string(v));
}

JsonWriter&
JsonWriter::value(double v)
{
    prefix(false);
    keyPending_ = false;
    if (!std::isfinite(v)) {
        os_ << "null";
    } else {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.12g", v);
        os_ << buf;
    }
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(bool v)
{
    prefix(false);
    keyPending_ = false;
    os_ << (v ? "true" : "false");
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(std::int64_t v)
{
    prefix(false);
    keyPending_ = false;
    os_ << v;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint64_t v)
{
    prefix(false);
    keyPending_ = false;
    os_ << v;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter&
JsonWriter::rawNumber(const std::string& token)
{
    prefix(false);
    keyPending_ = false;
    os_ << token;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter&
JsonWriter::null()
{
    prefix(false);
    keyPending_ = false;
    os_ << "null";
    if (stack_.empty())
        done_ = true;
    return *this;
}

std::string
JsonWriter::quote(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
    return out;
}

// ------------------------------------------------------------- parser

const JsonValue*
JsonValue::find(const std::string& k) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto& m : members)
        if (m.first == k)
            return &m.second;
    return nullptr;
}

const JsonValue&
JsonValue::at(const std::string& k) const
{
    const JsonValue* v = find(k);
    if (!v)
        panic("JsonValue: missing member '%s'", k.c_str());
    return *v;
}

namespace {

/** Cursor over the input text with error reporting. */
struct JsonParser
{
    const std::string& text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string& msg)
    {
        if (error.empty())
            error = msg + " at byte " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char* word, std::size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += len;
        return true;
    }

    bool
    parseString(std::string* out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out->clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("dangling escape");
            char e = text[pos++];
            switch (e) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode (surrogate pairs are passed through as
                // two 3-byte sequences; the writer never emits them).
                if (cp < 0x80) {
                    *out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    *out += static_cast<char>(0xC0 | (cp >> 6));
                    *out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    *out += static_cast<char>(0xE0 | (cp >> 12));
                    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    *out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue* out, int depth)
    {
        if (depth > 128)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out->kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                skipWs();
                std::string k;
                if (!parseString(&k))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue v;
                if (!parseValue(&v, depth + 1))
                    return false;
                out->members.emplace_back(std::move(k), std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out->kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue v;
                if (!parseValue(&v, depth + 1))
                    return false;
                out->items.push_back(std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out->kind = JsonValue::Kind::String;
            return parseString(&out->str);
        }
        if (c == 't') {
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return literal("true", 4);
        }
        if (c == 'f') {
            out->kind = JsonValue::Kind::Bool;
            out->boolean = false;
            return literal("false", 5);
        }
        if (c == 'n') {
            out->kind = JsonValue::Kind::Null;
            return literal("null", 4);
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            std::size_t start = pos;
            if (consume('-')) {}
            if (pos >= text.size() || !std::isdigit(
                    static_cast<unsigned char>(text[pos])))
                return fail("malformed number");
            if (text[pos] == '0') {
                ++pos;
            } else {
                while (pos < text.size() &&
                       std::isdigit(
                           static_cast<unsigned char>(text[pos])))
                    ++pos;
            }
            if (consume('.')) {
                if (pos >= text.size() || !std::isdigit(
                        static_cast<unsigned char>(text[pos])))
                    return fail("malformed fraction");
                while (pos < text.size() &&
                       std::isdigit(
                           static_cast<unsigned char>(text[pos])))
                    ++pos;
            }
            if (pos < text.size() &&
                (text[pos] == 'e' || text[pos] == 'E')) {
                ++pos;
                if (pos < text.size() &&
                    (text[pos] == '+' || text[pos] == '-'))
                    ++pos;
                if (pos >= text.size() || !std::isdigit(
                        static_cast<unsigned char>(text[pos])))
                    return fail("malformed exponent");
                while (pos < text.size() &&
                       std::isdigit(
                           static_cast<unsigned char>(text[pos])))
                    ++pos;
            }
            out->kind = JsonValue::Kind::Number;
            out->number =
                std::strtod(text.substr(start, pos - start).c_str(),
                            nullptr);
            return true;
        }
        return fail("unexpected character");
    }
};

}  // namespace

bool
parseJson(const std::string& text, JsonValue* out, std::string* err)
{
    JsonParser p{text, 0, {}};
    JsonValue v;
    if (!p.parseValue(&v, 0)) {
        if (err)
            *err = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = "trailing garbage at byte " + std::to_string(p.pos);
        return false;
    }
    *out = std::move(v);
    return true;
}

}  // namespace g10
