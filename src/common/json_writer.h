/**
 * @file
 * Minimal dependency-free JSON support for machine-readable results:
 * a streaming writer (pretty-printed, RFC 8259 escaping) used by the
 * report layer, and a small recursive-descent parser used by tests and
 * smoke checks to validate what the writer emitted.
 */

#ifndef G10_COMMON_JSON_WRITER_H
#define G10_COMMON_JSON_WRITER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace g10 {

/**
 * Streaming JSON emitter. Call begin/end/key/value in document order;
 * commas, indentation, and string escaping are handled internally.
 * Nesting errors (a value without a pending key inside an object, or
 * unbalanced begin/end) are programming errors and panic().
 *
 * Non-finite doubles are emitted as `null` so the output always parses.
 */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level; 0 = compact one-line. */
    explicit JsonWriter(std::ostream& os, int indent = 2);

    /** All containers must be closed by the time this runs. */
    ~JsonWriter();

    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Member key; must be directly inside an object. */
    JsonWriter& key(const std::string& k);

    JsonWriter& value(const std::string& v);
    JsonWriter& value(const char* v);
    JsonWriter& value(double v);
    JsonWriter& value(bool v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& null();

    /**
     * Emit @p token verbatim as a number value. The caller guarantees
     * it is a valid JSON number literal; used where value(double)'s
     * %.12g would lose precision (exact decimal microsecond
     * timestamps in the chrome-trace writer).
     */
    JsonWriter& rawNumber(const std::string& token);

    /** key(k) + value(v) in one call. */
    template <typename T>
    JsonWriter&
    field(const std::string& k, T&& v)
    {
        key(k);
        return value(std::forward<T>(v));
    }

    /** Escape @p s into a quoted JSON string literal. */
    static std::string quote(const std::string& s);

  private:
    enum class Ctx { Top, Object, Array };

    /** Comma/newline/indent bookkeeping before any value or key. */
    void prefix(bool isKey);

    std::ostream& os_;
    int indent_;
    std::vector<Ctx> stack_;
    std::vector<bool> hasItems_;  ///< per level: emitted anything yet?
    bool keyPending_ = false;
    bool done_ = false;  ///< one top-level value already written
};

/**
 * Parsed JSON document node. A deliberately small tree representation:
 * numbers are doubles (adequate for every field the report layer
 * writes), object member order is preserved.
 */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;  ///< Kind::Array
    std::vector<std::pair<std::string, JsonValue>> members;  ///< Object

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue* find(const std::string& k) const;

    /** find() that fails loudly (panic) — convenient in tests. */
    const JsonValue& at(const std::string& k) const;

    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
};

/**
 * Parse one complete JSON document (trailing whitespace allowed,
 * trailing garbage rejected).
 *
 * @param err when non-null, receives a message with the byte offset of
 *        the first error
 * @return false on malformed input
 */
bool parseJson(const std::string& text, JsonValue* out,
               std::string* err = nullptr);

}  // namespace g10

#endif  // G10_COMMON_JSON_WRITER_H
