/**
 * @file
 * Plain-text/CSV table emitter for the benchmark binaries.
 *
 * Every figure-reproduction bench prints its series both as an aligned
 * human-readable table (stdout) and, optionally, as CSV for plotting.
 */

#ifndef G10_COMMON_TABLE_H
#define G10_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace g10 {

/** Columnar table with uniform-width pretty printing. */
class Table
{
  public:
    /** @param title printed as a header line above the table. */
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the column headers; must be called before addRow. */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles/ints into a row. */
    template <typename... Ts>
    void
    addRowOf(Ts&&... cells)
    {
        addRow(std::vector<std::string>{formatCell(cells)...});
    }

    /** Pretty-print with aligned columns. */
    void print(std::ostream& os) const;

    /** Emit RFC-4180-ish CSV (no quoting of embedded commas needed here). */
    void printCsv(std::ostream& os) const;

    std::size_t rowCount() const { return rows_.size(); }

    /** Format helper shared with benches. */
    static std::string formatCell(double v);
    static std::string formatCell(int v);
    static std::string formatCell(long v);
    static std::string formatCell(long long v);
    static std::string formatCell(unsigned long v);
    static std::string formatCell(unsigned long long v);
    static std::string formatCell(const char* v);
    static std::string formatCell(const std::string& v);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace g10

#endif  // G10_COMMON_TABLE_H
