#include "table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "logging.h"

namespace g10 {

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size())
        panic("Table '%s': row width %zu != header width %zu",
              title_.c_str(), row.size(), header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::formatCell(double v)
{
    char buf[64];
    if (v == 0.0) {
        return "0";
    } else if (std::abs(v) >= 1e6 || std::abs(v) < 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.3e", v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f", v);
    }
    return buf;
}

std::string
Table::formatCell(int v)
{
    return std::to_string(v);
}

std::string
Table::formatCell(long v)
{
    return std::to_string(v);
}

std::string
Table::formatCell(long long v)
{
    return std::to_string(v);
}

std::string
Table::formatCell(unsigned long v)
{
    return std::to_string(v);
}

std::string
Table::formatCell(unsigned long long v)
{
    return std::to_string(v);
}

std::string
Table::formatCell(const char* v)
{
    return v;
}

std::string
Table::formatCell(const std::string& v)
{
    return v;
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto grow = [&](const std::vector<std::string>& row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto& r : rows_)
        grow(r);

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                os << std::string(widths[i] - row[i].size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    }
    for (const auto& r : rows_)
        emit(r);
    os.flush();
}

void
Table::printCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                os << ",";
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto& r : rows_)
        emit(r);
    os.flush();
}

}  // namespace g10
