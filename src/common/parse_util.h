/**
 * @file
 * Strict string->number parsing for config/CLI surfaces: the whole
 * token must parse (no silently ignored suffixes, no empty strings).
 * Callers format their own diagnostics and fatal() with location info.
 */

#ifndef G10_COMMON_PARSE_UTIL_H
#define G10_COMMON_PARSE_UTIL_H

#include <string>

namespace g10 {

/** Parse all of @p s as an integer; false on any malformed input. */
inline bool
parseIntStrict(const std::string& s, long long* out)
{
    if (s.empty())
        return false;
    std::size_t pos = 0;
    try {
        *out = std::stoll(s, &pos);
    } catch (...) {
        return false;
    }
    return pos == s.size();
}

/** Parse all of @p s as a double; false on any malformed input. */
inline bool
parseDoubleStrict(const std::string& s, double* out)
{
    if (s.empty())
        return false;
    std::size_t pos = 0;
    try {
        *out = std::stod(s, &pos);
    } catch (...) {
        return false;
    }
    return pos == s.size();
}

}  // namespace g10

#endif  // G10_COMMON_PARSE_UTIL_H
