/**
 * @file
 * Minimal discrete-event simulation core.
 *
 * Events are closures scheduled at absolute simulated times. Ties are broken
 * by insertion order so simulation runs are fully deterministic. The queue
 * is the single source of simulated "now" for a run; components must never
 * keep their own clocks.
 */

#ifndef G10_COMMON_EVENT_QUEUE_H
#define G10_COMMON_EVENT_QUEUE_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "logging.h"
#include "types.h"

namespace g10 {

/**
 * A deterministic priority queue of timed callbacks.
 *
 * Typical use:
 * @code
 *   EventQueue eq;
 *   eq.schedule(10 * USEC, [&] { ... });
 *   eq.run();
 * @endcode
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time in nanoseconds. */
    TimeNs now() const { return now_; }

    /**
     * Pre-size the heap for @p events additional pending events (e.g.
     * sized from the compiled plan / request count before a replay
     * loop) so steady scheduling never regrows the vector mid-run.
     */
    void reserve(std::size_t events)
    {
        heap_.reserve(heap_.size() + events);
    }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @pre when >= now(); scheduling in the past is an internal error.
     */
    void
    schedule(TimeNs when, Callback cb)
    {
        if (when < now_)
            panic("event scheduled in the past (when=%lld now=%lld)",
                  static_cast<long long>(when),
                  static_cast<long long>(now_));
        heap_.push_back(Event{when, nextSeq_++, std::move(cb)});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    }

    /** Schedule @p cb to run @p delay after the current time. */
    void scheduleAfter(TimeNs delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** One (time, callback) pair for bulk scheduling. */
    struct TimedCallback
    {
        TimeNs when = 0;
        Callback cb;
    };

    /**
     * Schedule every entry of @p batch in one O(n) heap rebuild
     * (std::make_heap) instead of n O(log n) pushes. Entries keep
     * @p batch's order for same-timestamp ties, and interleave with
     * previously scheduled events exactly as individual schedule()
     * calls would — phase-oriented simulations (e.g. injecting a whole
     * arrival trace up front) use this to avoid the per-push cost.
     *
     * @pre every entry's time >= now()
     */
    void
    scheduleBatch(std::vector<TimedCallback> batch)
    {
        if (batch.empty())
            return;
        heap_.reserve(heap_.size() + batch.size());
        for (TimedCallback& tc : batch) {
            if (tc.when < now_)
                panic("event scheduled in the past (when=%lld now=%lld)",
                      static_cast<long long>(tc.when),
                      static_cast<long long>(now_));
            heap_.push_back(Event{tc.when, nextSeq_++, std::move(tc.cb)});
        }
        std::make_heap(heap_.begin(), heap_.end(), Later{});
    }

    /**
     * Remove every pending event with time <= @p until and append them
     * to @p out in execution order, *without* running them. Leaves
     * now() untouched (the caller decides what to do with the drained
     * work). Phase-oriented simulations use this to hand a whole phase
     * of events to bulk processing instead of stepping one at a time.
     *
     * @return number of events drained
     */
    std::size_t
    drainTo(TimeNs until, std::vector<TimedCallback>* out)
    {
        std::size_t drained = 0;
        while (!heap_.empty() && heap_.front().when <= until) {
            std::pop_heap(heap_.begin(), heap_.end(), Later{});
            Event ev = std::move(heap_.back());
            heap_.pop_back();
            out->push_back(TimedCallback{ev.when, std::move(ev.cb)});
            ++drained;
        }
        return drained;
    }

    /** drainTo() over every pending event regardless of time. */
    std::size_t
    drainAll(std::vector<TimedCallback>* out)
    {
        return drainTo(heap_.empty() ? 0 : kMaxTime, out);
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Time of the earliest pending event; TimeNs max when empty. */
    TimeNs nextTime() const
    {
        return heap_.empty() ? kMaxTime : heap_.front().when;
    }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /**
     * Run events until the queue drains.
     * @return the time of the last executed event (== now()).
     */
    TimeNs
    run()
    {
        while (step()) {
        }
        return now_;
    }

    /**
     * Run events with time <= @p until; afterwards now() == max(reached
     * event time, until).
     */
    TimeNs
    runUntil(TimeNs until)
    {
        while (!heap_.empty() && heap_.front().when <= until)
            step();
        if (now_ < until)
            now_ = until;
        return now_;
    }

    /**
     * Execute the single earliest event.
     * @return false if the queue was empty.
     */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        // Pop first, then run: the event is moved (never copied) out of
        // the heap, and the callback is free to schedule new events,
        // including at the same timestamp. Using an explicit
        // vector-backed heap instead of std::priority_queue is what
        // makes the move possible -- priority_queue::top() only exposes
        // a const reference, so the old `Event ev = heap_.top()` deep-
        // copied every std::function despite intending to move it.
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Event ev = std::move(heap_.back());
        heap_.pop_back();
        now_ = ev.when;
        ev.cb();
        ++executed_;
        return true;
    }

    /** Total number of events executed so far (for micro-benchmarks). */
    std::uint64_t executedCount() const { return executed_; }

    /** The "no pending event" sentinel nextTime() returns. */
    static constexpr TimeNs kMaxTime = std::numeric_limits<TimeNs>::max();

  private:
    struct Event
    {
        TimeNs when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    // Min-heap on (when, seq) kept via the std heap algorithms over a
    // plain vector; heap_.front() is the earliest event. The (when,
    // seq) key is a strict total order, so execution order is fully
    // deterministic regardless of internal heap layout.
    std::vector<Event> heap_;
    TimeNs now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

}  // namespace g10

#endif  // G10_COMMON_EVENT_QUEUE_H
