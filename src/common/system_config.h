/**
 * @file
 * Hardware platform description (the paper's Table 2).
 *
 * One SystemConfig instance describes the machine being simulated; it is
 * consumed both by the compile-time migration scheduler (which needs the
 * bandwidths/latencies to cost migrations) and by the runtime simulator.
 */

#ifndef G10_COMMON_SYSTEM_CONFIG_H
#define G10_COMMON_SYSTEM_CONFIG_H

#include "types.h"

namespace g10 {

/**
 * Simulated platform parameters. Defaults reproduce Table 2 of the paper:
 * A100-40GB, 128 GB host DRAM, Samsung Z-NAND-class SSD, PCIe Gen3 x16.
 */
struct SystemConfig
{
    /** GPU on-board memory capacity (HBM2e). */
    Bytes gpuMemBytes = 40 * GiB;

    /** Host DRAM capacity available for tensor staging. */
    Bytes hostMemBytes = 128 * GiB;

    /** Virtual-memory page size. */
    Bytes pageBytes = 4 * KiB;

    /**
     * Residency-tracking / fault-service granularity. Real UVM services
     * faults in multi-page batches; tracking 40+ GB at 4 KB granularity
     * per-event is also intractable, so residency state is kept per chunk.
     */
    Bytes chunkBytes = 64 * KiB;

    /** PCIe Gen3 x16 per-direction bandwidth, GB/s. */
    double pcieGBps = 15.754;

    /** SSD sequential read bandwidth, GB/s (Z-NAND). */
    double ssdReadGBps = 3.2;

    /** SSD sequential write bandwidth, GB/s (Z-NAND). */
    double ssdWriteGBps = 3.0;

    /** SSD read latency per command. */
    TimeNs ssdReadLatencyNs = 20 * USEC;

    /** SSD program (write) latency per command. */
    TimeNs ssdWriteLatencyNs = 16 * USEC;

    /** SSD capacity. */
    Bytes ssdCapacityBytes = 3200ULL * 1000 * 1000 * 1000;  // 3.2 TB

    /** End-to-end GPU page-fault handling latency (host round trip). */
    TimeNs gpuFaultLatencyNs = 45 * USEC;

    /**
     * Host software overhead per driver-managed copy chunk when G10's
     * UVM extension is absent (PTE updates + syscall path for every
     * flash/host page-group access). The unified page table (§4.5)
     * lets the hardware migration arbiter batch whole transfer sets
     * instead, eliminating most of this.
     */
    TimeNs hostSwOverheadNs = 15 * USEC;

    /** Driver copy granularity without the UVM extension. */
    Bytes nonUvmCopyBytes = 512 * KiB;

    /** DMA transfer-set batch size used by the migration arbiter. */
    Bytes transferSetBytes = 2 * MiB;

    /**
     * Bytes migrated per demand-fault service round trip. On-demand
     * paging discovers faults serially (the faulting warp must resume
     * and touch the next page before the next fault is raised), so this
     * granularity -- not the DMA batch -- gates Base UVM throughput.
     */
    Bytes faultBatchBytes = 1 * MiB;

    /** Kernel launch overhead added to each replayed kernel. */
    TimeNs kernelLaunchOverheadNs = 5 * USEC;

    /**
     * Set the SSD read bandwidth and derive the write bandwidth with
     * the Z-NAND datasheet's read:write ratio preserved (3.2 : 3.0).
     * Every sweep that scales "SSD bandwidth" (CLI knobs, Fig. 18)
     * must go through this so the two stay consistent.
     */
    void
    setSsdBandwidthGBps(double read_gbps)
    {
        ssdReadGBps = read_gbps;
        ssdWriteGBps = read_gbps * (3.0 / 3.2);
    }

    /**
     * Return a copy with all capacities divided by @p factor.
     *
     * Bandwidths and latencies are left untouched; pairing this with a
     * model built at `scale = factor` preserves every ratio the paper's
     * normalized figures depend on while shrinking simulation work.
     */
    SystemConfig
    scaledDown(unsigned factor) const
    {
        SystemConfig c = *this;
        if (factor <= 1)
            return c;
        c.gpuMemBytes /= factor;
        c.hostMemBytes /= factor;
        c.ssdCapacityBytes /= factor;
        return c;
    }
};

}  // namespace g10

#endif  // G10_COMMON_SYSTEM_CONFIG_H
