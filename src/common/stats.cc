#include "stats.h"

#include <cmath>
#include <numeric>

#include "logging.h"

namespace g10 {

double
Distribution::sum() const
{
    return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double
Distribution::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum() / static_cast<double>(samples_.size());
}

double
Distribution::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Distribution::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

const std::vector<double>&
Distribution::sorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    return samples_;
}

double
Distribution::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const auto& s = sorted();
    if (s.size() == 1)
        return s[0];
    double idx = p * static_cast<double>(s.size() - 1);
    auto lo = static_cast<std::size_t>(idx);
    auto hi = std::min(lo + 1, s.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double
Distribution::fractionAbove(double v) const
{
    if (samples_.empty())
        return 0.0;
    const auto& s = sorted();
    auto it = std::upper_bound(s.begin(), s.end(), v);
    return static_cast<double>(s.end() - it) /
           static_cast<double>(s.size());
}

LogHistogram::LogHistogram(double lo, double hi, int bins_per_decade)
    : lo_(lo)
{
    if (lo <= 0.0 || hi <= lo || bins_per_decade <= 0)
        panic("LogHistogram: bad range [%g, %g] x %d",
              lo, hi, bins_per_decade);
    log_lo_ = std::log10(lo);
    bin_width_log_ = 1.0 / bins_per_decade;
    double decades = std::log10(hi) - log_lo_;
    auto regular = static_cast<std::size_t>(
        std::ceil(decades * bins_per_decade));
    // +2 clamp bins: [0] for underflow, [n+1] for overflow.
    counts_.assign(regular + 2, 0);
}

void
LogHistogram::add(double v)
{
    ++total_;
    if (v < lo_) {
        ++counts_.front();
        return;
    }
    double pos = (std::log10(v) - log_lo_) / bin_width_log_;
    auto idx = static_cast<std::size_t>(pos) + 1;
    if (idx >= counts_.size() - 1) {
        ++counts_.back();
        return;
    }
    ++counts_[idx];
}

double
LogHistogram::binCenter(std::size_t i) const
{
    if (i == 0)
        return lo_ / 2.0;
    double lo_edge = log_lo_ + static_cast<double>(i - 1) * bin_width_log_;
    return std::pow(10.0, lo_edge + bin_width_log_ / 2.0);
}

double
LogHistogram::cdfAt(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t cum = 0;
    for (std::size_t j = 0; j <= i && j < counts_.size(); ++j)
        cum += counts_[j];
    return static_cast<double>(cum) / static_cast<double>(total_);
}

}  // namespace g10
