/**
 * @file
 * Chunked bump allocator behind the std::pmr interface.
 *
 * Probe-scoped simulation state (runtime scratch vectors, LRU arrays,
 * schedule staging) is allocated and thrown away once per rate probe of
 * a sweep; under bisection that is hundreds of construct/destruct
 * cycles whose malloc churn dominates the short per-probe sims. An
 * Arena turns all of it into pointer bumps: allocations come from
 * geometrically grown chunks, deallocation is a no-op, and reset()
 * recycles the capacity for the next probe while keeping the largest
 * chunk so a steady-state sweep stops touching malloc entirely.
 *
 * Not thread-safe: one Arena per engine task (probe chain / sweep
 * cell), never shared across concurrent sims. Containers using it must
 * be destroyed (or never touched again) before reset() runs.
 */

#ifndef G10_COMMON_ARENA_H
#define G10_COMMON_ARENA_H

#include <cstddef>
#include <memory>
#include <memory_resource>
#include <vector>

namespace g10 {

class Arena : public std::pmr::memory_resource
{
  public:
    explicit Arena(std::size_t firstChunkBytes = 64 * 1024)
        : nextChunkBytes_(firstChunkBytes)
    {
    }

    /**
     * Drop every allocation and recycle capacity. Only the largest
     * chunk is kept, so repeated reset() converges to one chunk sized
     * for the steady-state working set.
     */
    void
    reset()
    {
        if (chunks_.size() > 1) {
            std::size_t largest = 0;
            for (std::size_t i = 1; i < chunks_.size(); ++i)
                if (chunks_[i].size > chunks_[largest].size)
                    largest = i;
            Chunk keep = std::move(chunks_[largest]);
            chunks_.clear();
            chunks_.push_back(std::move(keep));
        }
        cur_ = chunks_.empty() ? nullptr : chunks_.back().data.get();
        end_ = chunks_.empty() ? nullptr
                               : chunks_.back().data.get() +
                chunks_.back().size;
        bytesInUse_ = 0;
    }

    /** Bytes handed out since construction or the last reset(). */
    std::size_t bytesInUse() const { return bytesInUse_; }

    /** Total chunk capacity currently owned. */
    std::size_t
    bytesReserved() const
    {
        std::size_t total = 0;
        for (const Chunk& c : chunks_)
            total += c.size;
        return total;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    void*
    do_allocate(std::size_t bytes, std::size_t alignment) override
    {
        auto p = reinterpret_cast<std::uintptr_t>(cur_);
        std::uintptr_t aligned = (p + alignment - 1) & ~(alignment - 1);
        if (cur_ == nullptr ||
            aligned + bytes > reinterpret_cast<std::uintptr_t>(end_)) {
            grow(bytes + alignment);
            p = reinterpret_cast<std::uintptr_t>(cur_);
            aligned = (p + alignment - 1) & ~(alignment - 1);
        }
        cur_ = reinterpret_cast<std::byte*>(aligned + bytes);
        bytesInUse_ += bytes;
        return reinterpret_cast<void*>(aligned);
    }

    void
    do_deallocate(void*, std::size_t, std::size_t) override
    {
        // Bump allocator: space is reclaimed wholesale by reset().
    }

    bool
    do_is_equal(const std::pmr::memory_resource& other) const
        noexcept override
    {
        return this == &other;
    }

    void
    grow(std::size_t atLeast)
    {
        std::size_t size = nextChunkBytes_;
        while (size < atLeast)
            size *= 2;
        nextChunkBytes_ = size * 2;
        Chunk c;
        c.data = std::make_unique<std::byte[]>(size);
        c.size = size;
        cur_ = c.data.get();
        end_ = c.data.get() + size;
        chunks_.push_back(std::move(c));
    }

    std::vector<Chunk> chunks_;
    std::byte* cur_ = nullptr;
    std::byte* end_ = nullptr;
    std::size_t nextChunkBytes_;
    std::size_t bytesInUse_ = 0;
};

}  // namespace g10

#endif  // G10_COMMON_ARENA_H
