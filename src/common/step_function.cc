#include "step_function.h"

#include <algorithm>
#include <cmath>

#include "logging.h"

namespace g10 {

std::size_t
StepFunction::ensureBreakpoint(TimeNs t)
{
    auto it = std::lower_bound(times_.begin(), times_.end(), t);
    auto idx = static_cast<std::size_t>(it - times_.begin());
    if (it != times_.end() && *it == t)
        return idx;
    // A new breakpoint carries the value in force at t, so the function
    // itself (and the cached peak) is unchanged by the insertion.
    double prev = (idx == 0) ? 0.0 : vals_[idx - 1];
    times_.insert(it, t);
    vals_.insert(vals_.begin() + static_cast<std::ptrdiff_t>(idx), prev);
    indexShiftedAt(idx);
    return idx;
}

void
StepFunction::indexShiftedAt(std::size_t idx)
{
    std::size_t nb = numBlocks();
    blockMax_.resize(nb);
    blockValid_.resize(nb, 0);
    // Everything from the insertion block on holds a different slice of
    // vals_ now; an append only dirties the final block.
    std::fill(blockValid_.begin() +
                  static_cast<std::ptrdiff_t>(idx >> kBlockShift),
              blockValid_.end(), static_cast<unsigned char>(0));
}

double
StepFunction::blockMaxOf(std::size_t b) const
{
    if (!blockValid_[b]) {
        std::size_t lo = b << kBlockShift;
        std::size_t hi = std::min(times_.size(), lo + kBlockSize);
        double m = vals_[lo];
        for (std::size_t i = lo + 1; i < hi; ++i)
            m = std::max(m, vals_[i]);
        blockMax_[b] = m;
        blockValid_[b] = 1;
    }
    return blockMax_[b];
}

double
StepFunction::maxRange(std::size_t lo, std::size_t hi, double best) const
{
    while (lo < hi) {
        std::size_t b = lo >> kBlockShift;
        std::size_t blockEnd =
            std::min(times_.size(), (b + 1) << kBlockShift);
        if (lo == (b << kBlockShift) && blockEnd <= hi) {
            best = std::max(best, blockMaxOf(b));
            lo = blockEnd;
            continue;
        }
        std::size_t stop = std::min(hi, blockEnd);
        for (; lo < stop; ++lo)
            best = std::max(best, vals_[lo]);
    }
    return best;
}

void
StepFunction::add(TimeNs t0, TimeNs t1, double delta)
{
    if (t1 <= t0 || delta == 0.0)
        return;

    std::size_t i0 = ensureBreakpoint(t0);
    std::size_t i1 = ensureBreakpoint(t1);  // i1 > i0 since t1 > t0

    double span_before = vals_[i0];
    double span_after = vals_[i0] + delta;
    for (std::size_t i = i0; i < i1; ++i) {
        span_before = std::max(span_before, vals_[i]);
        vals_[i] += delta;
        span_after = std::max(span_after, vals_[i]);
    }

    // Maintain the block index across the range-add: a block fully
    // inside [i0, i1) keeps its max witness (max(fl(v+d)) ==
    // fl(max(v)+d) since rounding is monotone); a partially covered
    // block goes stale.
    for (std::size_t b = i0 >> kBlockShift; b <= ((i1 - 1) >> kBlockShift);
         ++b) {
        if (!blockValid_[b])
            continue;
        std::size_t lo = b << kBlockShift;
        std::size_t hi = std::min(times_.size(), lo + kBlockSize);
        if (i0 <= lo && hi <= i1)
            blockMax_[b] += delta;
        else
            blockValid_[b] = 0;
    }

    if (!maxDirty_) {
        if (delta > 0.0) {
            // Values outside [i0,i1) are unchanged, values inside only
            // grew: the new peak is known exactly.
            cachedMax_ = std::max(cachedMax_, span_after);
        } else if (span_before >= cachedMax_) {
            // The old peak may have lived in the lowered span; a lazy
            // rescan settles it.
            maxDirty_ = true;
        }
        // else: the peak is outside the lowered span and survives.
    }
}

double
StepFunction::valueAt(TimeNs t) const
{
    std::size_t idx = upperBound(t);
    return (idx == 0) ? 0.0 : vals_[idx - 1];
}

double
StepFunction::maxOver(TimeNs t0, TimeNs t1) const
{
    if (t1 <= t0)
        return 0.0;
    std::size_t lo = upperBound(t0);
    double best = (lo == 0) ? 0.0 : vals_[lo - 1];
    return maxRange(lo, lowerBound(t1), best);
}

double
StepFunction::minOver(TimeNs t0, TimeNs t1) const
{
    if (t1 <= t0)
        return 0.0;
    double best = valueAt(t0);
    for (std::size_t i = upperBound(t0);
         i < times_.size() && times_[i] < t1; ++i)
        best = std::min(best, vals_[i]);
    return best;
}

double
StepFunction::maxValue() const
{
    if (maxDirty_) {
        cachedMax_ = maxRange(0, times_.size(), 0.0);
        maxDirty_ = false;
    }
    return cachedMax_;
}

double
StepFunction::integralAbove(TimeNs t0, TimeNs t1, double threshold,
                            double cap_per_t) const
{
    if (t1 <= t0)
        return 0.0;
    double area = 0.0;

    // Head segment [t0, first breakpoint past t0), value in force at t0.
    std::size_t lo = upperBound(t0);
    double headVal = (lo == 0) ? 0.0 : vals_[lo - 1];
    TimeNs headEnd = (lo < times_.size())
        ? std::min<TimeNs>(times_[lo], t1)
        : t1;
    double headExcess = headVal - threshold;
    if (headExcess > 0.0)
        area += std::min(headExcess, cap_per_t) *
            static_cast<double>(headEnd - t0);

    // Body: breakpoints inside the window, skipping whole blocks whose
    // max sits at or below the threshold — every segment there fails
    // the excess test and would never have touched the accumulator, so
    // the result is bit-identical to the plain segment walk.
    std::size_t hi = lowerBound(t1);
    std::size_t i = lo;
    while (i < hi) {
        std::size_t b = i >> kBlockShift;
        std::size_t stop =
            std::min(hi, std::min(times_.size(), (b + 1) << kBlockShift));
        if (blockMaxOf(b) <= threshold) {
            i = stop;
            continue;
        }
        for (; i < stop; ++i) {
            double excess = vals_[i] - threshold;
            if (excess > 0.0) {
                TimeNs end = (i + 1 < times_.size())
                    ? std::min<TimeNs>(times_[i + 1], t1)
                    : t1;
                area += std::min(excess, cap_per_t) *
                    static_cast<double>(end - times_[i]);
            }
        }
    }
    return area;
}

TimeNs
StepFunction::earliestFit(TimeNs t_min, TimeNs t_latest, TimeNs t_end,
                          double delta, double limit) const
{
    if (t_latest < t_min)
        return t_latest;

    // The prefetch must fit from its issue time t' all the way to t_end
    // (when the tensor turns active and is accounted for by the kernel
    // itself). Scan segments backward from t_latest; the answer is the
    // start of the earliest contiguous run of segments, ending at or after
    // t_latest, whose value + delta stays within limit.
    if (maxOver(t_latest, std::max(t_latest + 1, t_end)) + delta > limit) {
        // Even the latest position overflows; report t_latest and let the
        // caller keep the latest-safe schedule (capacity will be handled
        // at runtime by demand eviction).
        return t_latest;
    }

    TimeNs candidate = t_latest;
    // Walk breakpoints in (t_min, t_latest] from the right.
    std::size_t idx = upperBound(t_latest);
    while (true) {
        if (idx == 0) {
            // Value is 0 all the way back to -inf.
            if (0.0 + delta <= limit)
                candidate = t_min;
            break;
        }
        --idx;
        if (vals_[idx] + delta > limit)
            break;  // this segment [times_[idx], ...) would overflow
        candidate = std::max<TimeNs>(t_min, times_[idx]);
        if (times_[idx] <= t_min)
            break;
    }
    return candidate;
}

std::vector<StepFunction::Segment>
StepFunction::segments(TimeNs t0, TimeNs t1) const
{
    std::vector<Segment> out;
    if (t1 <= t0)
        return out;
    for (Cursor c = cursor(t0, t1); !c.done(); c.next())
        out.push_back(Segment{c.begin(), c.end(), c.value()});
    return out;
}

void
StepFunction::compact()
{
    // In-place two-pointer sweep keeping only breakpoints that change
    // the value. The function is untouched, so the cached peak stays
    // valid: any dropped value is duplicated by the kept breakpoint
    // before it (or is the implicit leading 0).
    double prev = 0.0;
    std::size_t w = 0;
    for (std::size_t r = 0; r < times_.size(); ++r) {
        if (vals_[r] == prev)
            continue;
        times_[w] = times_[r];
        vals_[w] = vals_[r];
        prev = vals_[w];
        ++w;
    }
    times_.resize(w);
    vals_.resize(w);
    blockMax_.assign(numBlocks(), 0.0);
    blockValid_.assign(numBlocks(), 0);
}

}  // namespace g10
