#include "step_function.h"

#include <algorithm>
#include <cmath>

#include "logging.h"

namespace g10 {

void
StepFunction::add(TimeNs t0, TimeNs t1, double delta)
{
    if (t1 <= t0 || delta == 0.0)
        return;

    // Ensure breakpoints exist at t0 and t1 carrying the current value.
    auto ensure = [this](TimeNs t) {
        auto it = points_.lower_bound(t);
        if (it != points_.end() && it->first == t)
            return it;
        double prev = (it == points_.begin())
            ? 0.0 : std::prev(it)->second;
        return points_.emplace_hint(it, t, prev);
    };

    auto first = ensure(t0);
    auto last = ensure(t1);
    for (auto it = first; it != last; ++it)
        it->second += delta;
}

double
StepFunction::valueAt(TimeNs t) const
{
    auto it = points_.upper_bound(t);
    if (it == points_.begin())
        return 0.0;
    return std::prev(it)->second;
}

double
StepFunction::maxOver(TimeNs t0, TimeNs t1) const
{
    if (t1 <= t0)
        return 0.0;
    double best = valueAt(t0);
    for (auto it = points_.upper_bound(t0);
         it != points_.end() && it->first < t1; ++it)
        best = std::max(best, it->second);
    return best;
}

double
StepFunction::minOver(TimeNs t0, TimeNs t1) const
{
    if (t1 <= t0)
        return 0.0;
    double best = valueAt(t0);
    for (auto it = points_.upper_bound(t0);
         it != points_.end() && it->first < t1; ++it)
        best = std::min(best, it->second);
    return best;
}

double
StepFunction::maxValue() const
{
    double best = 0.0;
    for (const auto& [t, v] : points_)
        best = std::max(best, v);
    return best;
}

double
StepFunction::integralAbove(TimeNs t0, TimeNs t1, double threshold,
                            double cap_per_t) const
{
    if (t1 <= t0)
        return 0.0;
    double area = 0.0;
    TimeNs cur = t0;
    double cur_val = valueAt(t0);
    auto it = points_.upper_bound(t0);
    while (cur < t1) {
        TimeNs next = (it == points_.end())
            ? t1 : std::min<TimeNs>(it->first, t1);
        double excess = cur_val - threshold;
        if (excess > 0.0) {
            double contrib = std::min(excess, cap_per_t);
            area += contrib * static_cast<double>(next - cur);
        }
        cur = next;
        if (it != points_.end() && it->first == next) {
            cur_val = it->second;
            ++it;
        }
    }
    return area;
}

TimeNs
StepFunction::earliestFit(TimeNs t_min, TimeNs t_latest, TimeNs t_end,
                          double delta, double limit) const
{
    if (t_latest < t_min)
        return t_latest;

    // The prefetch must fit from its issue time t' all the way to t_end
    // (when the tensor turns active and is accounted for by the kernel
    // itself). Scan segments backward from t_latest; the answer is the
    // start of the earliest contiguous run of segments, ending at or after
    // t_latest, whose value + delta stays within limit.
    if (maxOver(t_latest, std::max(t_latest + 1, t_end)) + delta > limit) {
        // Even the latest position overflows; report t_latest and let the
        // caller keep the latest-safe schedule (capacity will be handled
        // at runtime by demand eviction).
        return t_latest;
    }

    TimeNs candidate = t_latest;
    // Walk breakpoints in (t_min, t_latest] from the right.
    auto it = points_.upper_bound(t_latest);
    while (true) {
        if (it == points_.begin()) {
            // Value is 0 all the way back to -inf.
            if (0.0 + delta <= limit)
                candidate = t_min;
            break;
        }
        --it;
        if (it->second + delta > limit)
            break;  // this segment [it->first, ...) would overflow
        candidate = std::max<TimeNs>(t_min, it->first);
        if (it->first <= t_min)
            break;
    }
    return candidate;
}

std::vector<StepFunction::Segment>
StepFunction::segments(TimeNs t0, TimeNs t1) const
{
    std::vector<Segment> out;
    if (t1 <= t0)
        return out;
    TimeNs cur = t0;
    double cur_val = valueAt(t0);
    auto it = points_.upper_bound(t0);
    while (cur < t1) {
        TimeNs next = (it == points_.end())
            ? t1 : std::min<TimeNs>(it->first, t1);
        out.push_back(Segment{cur, next, cur_val});
        cur = next;
        if (it != points_.end() && it->first == next) {
            cur_val = it->second;
            ++it;
        }
    }
    return out;
}

void
StepFunction::compact()
{
    double prev = 0.0;
    for (auto it = points_.begin(); it != points_.end();) {
        if (it->second == prev) {
            it = points_.erase(it);
        } else {
            prev = it->second;
            ++it;
        }
    }
}

}  // namespace g10
