#include "step_function.h"

#include <algorithm>
#include <cmath>

#include "logging.h"

namespace g10 {

std::size_t
StepFunction::ensureBreakpoint(TimeNs t)
{
    auto it = std::lower_bound(times_.begin(), times_.end(), t);
    auto idx = static_cast<std::size_t>(it - times_.begin());
    if (it != times_.end() && *it == t)
        return idx;
    // A new breakpoint carries the value in force at t, so the function
    // itself (and the cached peak) is unchanged by the insertion.
    double prev = (idx == 0) ? 0.0 : vals_[idx - 1];
    times_.insert(it, t);
    vals_.insert(vals_.begin() + static_cast<std::ptrdiff_t>(idx), prev);
    return idx;
}

void
StepFunction::add(TimeNs t0, TimeNs t1, double delta)
{
    if (t1 <= t0 || delta == 0.0)
        return;

    std::size_t i0 = ensureBreakpoint(t0);
    std::size_t i1 = ensureBreakpoint(t1);  // i1 > i0 since t1 > t0

    double span_before = vals_[i0];
    double span_after = vals_[i0] + delta;
    for (std::size_t i = i0; i < i1; ++i) {
        span_before = std::max(span_before, vals_[i]);
        vals_[i] += delta;
        span_after = std::max(span_after, vals_[i]);
    }

    if (!maxDirty_) {
        if (delta > 0.0) {
            // Values outside [i0,i1) are unchanged, values inside only
            // grew: the new peak is known exactly.
            cachedMax_ = std::max(cachedMax_, span_after);
        } else if (span_before >= cachedMax_) {
            // The old peak may have lived in the lowered span; a lazy
            // rescan settles it.
            maxDirty_ = true;
        }
        // else: the peak is outside the lowered span and survives.
    }
}

double
StepFunction::valueAt(TimeNs t) const
{
    std::size_t idx = upperBound(t);
    return (idx == 0) ? 0.0 : vals_[idx - 1];
}

double
StepFunction::maxOver(TimeNs t0, TimeNs t1) const
{
    if (t1 <= t0)
        return 0.0;
    double best = valueAt(t0);
    for (std::size_t i = upperBound(t0);
         i < times_.size() && times_[i] < t1; ++i)
        best = std::max(best, vals_[i]);
    return best;
}

double
StepFunction::minOver(TimeNs t0, TimeNs t1) const
{
    if (t1 <= t0)
        return 0.0;
    double best = valueAt(t0);
    for (std::size_t i = upperBound(t0);
         i < times_.size() && times_[i] < t1; ++i)
        best = std::min(best, vals_[i]);
    return best;
}

double
StepFunction::maxValue() const
{
    if (maxDirty_) {
        double best = 0.0;
        for (double v : vals_)
            best = std::max(best, v);
        cachedMax_ = best;
        maxDirty_ = false;
    }
    return cachedMax_;
}

double
StepFunction::integralAbove(TimeNs t0, TimeNs t1, double threshold,
                            double cap_per_t) const
{
    if (t1 <= t0)
        return 0.0;
    double area = 0.0;
    for (Cursor c = cursor(t0, t1); !c.done(); c.next()) {
        double excess = c.value() - threshold;
        if (excess > 0.0) {
            double contrib = std::min(excess, cap_per_t);
            area += contrib * static_cast<double>(c.end() - c.begin());
        }
    }
    return area;
}

TimeNs
StepFunction::earliestFit(TimeNs t_min, TimeNs t_latest, TimeNs t_end,
                          double delta, double limit) const
{
    if (t_latest < t_min)
        return t_latest;

    // The prefetch must fit from its issue time t' all the way to t_end
    // (when the tensor turns active and is accounted for by the kernel
    // itself). Scan segments backward from t_latest; the answer is the
    // start of the earliest contiguous run of segments, ending at or after
    // t_latest, whose value + delta stays within limit.
    if (maxOver(t_latest, std::max(t_latest + 1, t_end)) + delta > limit) {
        // Even the latest position overflows; report t_latest and let the
        // caller keep the latest-safe schedule (capacity will be handled
        // at runtime by demand eviction).
        return t_latest;
    }

    TimeNs candidate = t_latest;
    // Walk breakpoints in (t_min, t_latest] from the right.
    std::size_t idx = upperBound(t_latest);
    while (true) {
        if (idx == 0) {
            // Value is 0 all the way back to -inf.
            if (0.0 + delta <= limit)
                candidate = t_min;
            break;
        }
        --idx;
        if (vals_[idx] + delta > limit)
            break;  // this segment [times_[idx], ...) would overflow
        candidate = std::max<TimeNs>(t_min, times_[idx]);
        if (times_[idx] <= t_min)
            break;
    }
    return candidate;
}

std::vector<StepFunction::Segment>
StepFunction::segments(TimeNs t0, TimeNs t1) const
{
    std::vector<Segment> out;
    if (t1 <= t0)
        return out;
    for (Cursor c = cursor(t0, t1); !c.done(); c.next())
        out.push_back(Segment{c.begin(), c.end(), c.value()});
    return out;
}

void
StepFunction::compact()
{
    // In-place two-pointer sweep keeping only breakpoints that change
    // the value. The function is untouched, so the cached peak stays
    // valid: any dropped value is duplicated by the kept breakpoint
    // before it (or is the implicit leading 0).
    double prev = 0.0;
    std::size_t w = 0;
    for (std::size_t r = 0; r < times_.size(); ++r) {
        if (vals_[r] == prev)
            continue;
        times_[w] = times_[r];
        vals_[w] = vals_[r];
        prev = vals_[w];
        ++w;
    }
    times_.resize(w);
    vals_.resize(w);
}

}  // namespace g10
