/**
 * @file
 * Fundamental scalar types and unit helpers shared by every G10 module.
 *
 * All simulated time is kept in integer nanoseconds to avoid floating-point
 * drift in the event queue; all capacities and transfer sizes are kept in
 * bytes. Helper constants give readable literals at call sites
 * (e.g. `4 * KiB`, `20 * USEC`).
 */

#ifndef G10_COMMON_TYPES_H
#define G10_COMMON_TYPES_H

#include <cstdint>
#include <limits>

namespace g10 {

/** Simulated time, in nanoseconds. */
using TimeNs = std::int64_t;

/** Memory/storage size, in bytes. */
using Bytes = std::uint64_t;

/** Dense integer id of a tensor within one DnnGraph. */
using TensorId = std::int32_t;

/** Dense integer id (execution-order index) of a kernel within one trace. */
using KernelId = std::int32_t;

/** Sentinel for "no tensor". */
inline constexpr TensorId kInvalidTensor = -1;

/** Sentinel for "no kernel". */
inline constexpr KernelId kInvalidKernel = -1;

/** Largest representable time; used as "never". */
inline constexpr TimeNs kTimeInfinity =
    std::numeric_limits<TimeNs>::max() / 4;

// Size literals.
inline constexpr Bytes KiB = 1024ULL;
inline constexpr Bytes MiB = 1024ULL * KiB;
inline constexpr Bytes GiB = 1024ULL * MiB;

// Time literals (nanoseconds).
inline constexpr TimeNs NSEC = 1;
inline constexpr TimeNs USEC = 1000;
inline constexpr TimeNs MSEC = 1000 * USEC;
inline constexpr TimeNs SEC = 1000 * MSEC;

/**
 * Duration of moving @p size bytes at @p gbps gigabytes per second.
 *
 * @param size  transfer size in bytes
 * @param gbps  bandwidth in GB/s (decimal gigabytes, as datasheets quote)
 * @return transfer time in nanoseconds (at least 1 ns for non-empty sizes)
 */
inline TimeNs
transferTimeNs(Bytes size, double gbps)
{
    if (size == 0 || gbps <= 0.0)
        return 0;
    double ns = static_cast<double>(size) / gbps;  // bytes / (GB/s) == ns
    TimeNs t = static_cast<TimeNs>(ns);
    return t > 0 ? t : 1;
}

/** Bytes per second -> GB/s pretty factor used in reports. */
inline double
toGBps(Bytes bytes, TimeNs elapsed)
{
    if (elapsed <= 0)
        return 0.0;
    return static_cast<double>(bytes) / static_cast<double>(elapsed);
}

}  // namespace g10

#endif  // G10_COMMON_TYPES_H
