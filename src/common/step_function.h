/**
 * @file
 * Piecewise-constant function over simulated time.
 *
 * This is the workhorse of G10's compile-time scheduler: the GPU memory
 * pressure curve (bytes vs. time) and the per-link bandwidth occupancy
 * timelines (busy fraction vs. time) are both StepFunctions. The eviction
 * scheduler repeatedly needs
 *   - range updates:   add +size over a tensor's residency interval,
 *   - range queries:   max over [t0,t1), value at t,
 *   - "benefit" math:  the integral of the part of the curve above a
 *                      threshold, clipped per-interval (Fig. 7 of the paper).
 */

#ifndef G10_COMMON_STEP_FUNCTION_H
#define G10_COMMON_STEP_FUNCTION_H

#include <cstdint>
#include <map>
#include <vector>

#include "types.h"

namespace g10 {

/**
 * A function f : TimeNs -> double that is constant between breakpoints.
 * f is 0 everywhere initially. Mutations are range additions.
 */
class StepFunction
{
  public:
    /** A maximal constant segment [begin, end) with value. */
    struct Segment
    {
        TimeNs begin;
        TimeNs end;
        double value;
    };

    StepFunction() = default;

    /** Add @p delta over the half-open interval [t0, t1). */
    void add(TimeNs t0, TimeNs t1, double delta);

    /** Value at time @p t. */
    double valueAt(TimeNs t) const;

    /** Maximum value over [t0, t1); 0 for empty intervals. */
    double maxOver(TimeNs t0, TimeNs t1) const;

    /** Minimum value over [t0, t1); 0 for empty intervals. */
    double minOver(TimeNs t0, TimeNs t1) const;

    /** Global maximum over the whole support. */
    double maxValue() const;

    /**
     * Integral over [t0, t1) of max(0, min(cap_per_t, f(t) - threshold))
     * where cap_per_t limits the per-instant contribution.
     *
     * With cap_per_t = +inf this is the area of the curve above
     * @p threshold; with cap_per_t = tensor size it is exactly the paper's
     * shaded "benefit" area of evicting that tensor (the eviction cannot
     * reduce pressure at an instant by more than the tensor's size).
     *
     * @return area in value-units * nanoseconds
     */
    double integralAbove(TimeNs t0, TimeNs t1, double threshold,
                         double cap_per_t) const;

    /**
     * Latest t' <= t_latest such that f(t) + delta <= limit for all
     * t in [t', t_end). Returns t_latest if the condition already fails at
     * t_latest itself (caller falls back to the latest safe time), else the
     * earliest such t' bounded below by @p t_min.
     *
     * Used by the eager-prefetch pass (§4.4): search backward from the
     * latest safe prefetch time for the earliest time the whole tensor fits
     * under the capacity limit.
     */
    TimeNs earliestFit(TimeNs t_min, TimeNs t_latest, TimeNs t_end,
                       double delta, double limit) const;

    /** Dump all maximal segments intersecting [t0, t1). */
    std::vector<Segment> segments(TimeNs t0, TimeNs t1) const;

    /** Number of internal breakpoints (for complexity tests). */
    std::size_t breakpointCount() const { return points_.size(); }

    /** Remove breakpoints that no longer change the value. */
    void compact();

  private:
    // Maps breakpoint time -> value from that time until the next
    // breakpoint. Value before the first breakpoint is 0.
    std::map<TimeNs, double> points_;
};

}  // namespace g10

#endif  // G10_COMMON_STEP_FUNCTION_H
