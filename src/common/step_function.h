/**
 * @file
 * Piecewise-constant function over simulated time.
 *
 * This is the workhorse of G10's compile-time scheduler: the GPU memory
 * pressure curve (bytes vs. time) and the per-link bandwidth occupancy
 * timelines (busy fraction vs. time) are both StepFunctions. The eviction
 * scheduler repeatedly needs
 *   - range updates:   add +size over a tensor's residency interval,
 *   - range queries:   max over [t0,t1), value at t,
 *   - "benefit" math:  the integral of the part of the curve above a
 *                      threshold, clipped per-interval (Fig. 7 of the paper).
 *
 * Representation: flat sorted breakpoint arrays (structure-of-arrays:
 * `times_[i]` holds breakpoint i, `vals_[i]` the value on
 * [times_[i], times_[i+1])) instead of a node-based std::map. Lookups
 * are binary searches over a contiguous TimeNs array, range updates
 * touch a contiguous double span (vectorizable, zero allocations in the
 * common case), and the global maximum is cached so the eviction
 * scheduler's per-iteration peak check is O(1) instead of a full
 * rescan. Values are updated eagerly (no lazy tags) so every operation
 * of this class reproduces the historical map-based implementation's
 * floating-point accumulation order bit for bit. (Callers that also
 * changed *how often* they compact() — see BandwidthModel — own any
 * regrouping that introduces; the golden-determinism suite pins the
 * combined result.)
 *
 * Windowed queries (maxOver, the maxValue rescan, integralAbove) go
 * through a block range-max index: every 64 consecutive breakpoints
 * cache their value maximum, invalidated lazily — a breakpoint
 * insertion shifts the tail of the flat arrays, so blocks from the
 * insertion point on are marked stale and repaired on next touch,
 * while a pure range-add over fully covered blocks updates the cached
 * max in place (rounding is monotone, so max(fl(v_i+d)) ==
 * fl(max(v_i)+d) exactly). The index never changes results: the max
 * of a fixed multiset of doubles is independent of scan grouping, and
 * integralAbove only skips blocks whose contribution is exactly zero.
 *
 * Iteration over segments goes through the allocation-free Cursor
 * instead of materializing a std::vector<Segment> per query; the
 * bandwidth model's drain walks exit early without ever building the
 * full horizon.
 */

#ifndef G10_COMMON_STEP_FUNCTION_H
#define G10_COMMON_STEP_FUNCTION_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "types.h"

namespace g10 {

/**
 * A function f : TimeNs -> double that is constant between breakpoints.
 * f is 0 everywhere initially. Mutations are range additions.
 */
class StepFunction
{
  public:
    /** A maximal constant segment [begin, end) with value. */
    struct Segment
    {
        TimeNs begin;
        TimeNs end;
        double value;
    };

    /**
     * Allocation-free forward iteration over the constant segments
     * covering a query window [t0, t1). The cursor yields the same
     * tiling segments(t0, t1) would materialize, one at a time:
     *
     *   for (auto c = f.cursor(t0, t1); !c.done(); c.next())
     *       use(c.begin(), c.end(), c.value());
     *
     * Must not outlive the StepFunction, and is invalidated by any
     * mutation of it.
     */
    class Cursor
    {
      public:
        /** True once the window is exhausted. */
        bool done() const { return cur_ >= t1_; }

        /** Start of the current segment (clamped to the window). */
        TimeNs begin() const { return cur_; }

        /** End of the current segment (clamped to the window). */
        TimeNs end() const { return segEnd_; }

        /** Value of f over [begin(), end()). */
        double value() const { return val_; }

        /** Advance to the next segment. */
        void
        next()
        {
            cur_ = segEnd_;
            if (idx_ < f_->times_.size() && f_->times_[idx_] == cur_) {
                val_ = f_->vals_[idx_];
                ++idx_;
            }
            segEnd_ = (idx_ < f_->times_.size())
                ? std::min<TimeNs>(f_->times_[idx_], t1_)
                : t1_;
        }

      private:
        friend class StepFunction;

        Cursor(const StepFunction& f, TimeNs t0, TimeNs t1)
            : f_(&f), idx_(f.upperBound(t0)), cur_(t0), t1_(t1)
        {
            val_ = (idx_ == 0) ? 0.0 : f.vals_[idx_ - 1];
            segEnd_ = (idx_ < f.times_.size())
                ? std::min<TimeNs>(f.times_[idx_], t1)
                : t1;
        }

        const StepFunction* f_;
        std::size_t idx_;  ///< next breakpoint index past cur_
        TimeNs cur_;
        TimeNs segEnd_;
        TimeNs t1_;
        double val_;
    };

    StepFunction() = default;

    /** Add @p delta over the half-open interval [t0, t1). */
    void add(TimeNs t0, TimeNs t1, double delta);

    /** Value at time @p t. */
    double valueAt(TimeNs t) const;

    /** Maximum value over [t0, t1); 0 for empty intervals. */
    double maxOver(TimeNs t0, TimeNs t1) const;

    /** Minimum value over [t0, t1); 0 for empty intervals. */
    double minOver(TimeNs t0, TimeNs t1) const;

    /**
     * Global maximum over the whole support (never below 0, matching
     * the zero value outside the support). O(1) when the cached peak is
     * valid; a range add can only invalidate it when it lowers the
     * region the maximum lived in, which triggers one amortized linear
     * rescan of the flat value array.
     */
    double maxValue() const;

    /**
     * Integral over [t0, t1) of max(0, min(cap_per_t, f(t) - threshold))
     * where cap_per_t limits the per-instant contribution.
     *
     * With cap_per_t = +inf this is the area of the curve above
     * @p threshold; with cap_per_t = tensor size it is exactly the paper's
     * shaded "benefit" area of evicting that tensor (the eviction cannot
     * reduce pressure at an instant by more than the tensor's size).
     *
     * @return area in value-units * nanoseconds
     */
    double integralAbove(TimeNs t0, TimeNs t1, double threshold,
                         double cap_per_t) const;

    /**
     * Latest t' <= t_latest such that f(t) + delta <= limit for all
     * t in [t', t_end). Returns t_latest if the condition already fails at
     * t_latest itself (caller falls back to the latest safe time), else the
     * earliest such t' bounded below by @p t_min.
     *
     * Used by the eager-prefetch pass (§4.4): search backward from the
     * latest safe prefetch time for the earliest time the whole tensor fits
     * under the capacity limit.
     */
    TimeNs earliestFit(TimeNs t_min, TimeNs t_latest, TimeNs t_end,
                       double delta, double limit) const;

    /** Segment cursor over the window [t0, t1); see Cursor. */
    Cursor cursor(TimeNs t0, TimeNs t1) const
    {
        return Cursor(*this, t0, t1);
    }

    /** Dump all maximal segments intersecting [t0, t1). */
    std::vector<Segment> segments(TimeNs t0, TimeNs t1) const;

    /** Number of internal breakpoints (for complexity tests). */
    std::size_t breakpointCount() const { return times_.size(); }

    /** Remove breakpoints that no longer change the value. */
    void compact();

  private:
    /// Breakpoints per range-max block (see file comment).
    static constexpr std::size_t kBlockShift = 6;
    static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;

    /** Index of the first breakpoint with time > @p t. */
    std::size_t
    upperBound(TimeNs t) const
    {
        return static_cast<std::size_t>(
            std::upper_bound(times_.begin(), times_.end(), t) -
            times_.begin());
    }

    /** Index of the first breakpoint with time >= @p t. */
    std::size_t
    lowerBound(TimeNs t) const
    {
        return static_cast<std::size_t>(
            std::lower_bound(times_.begin(), times_.end(), t) -
            times_.begin());
    }

    /**
     * Index of the breakpoint at exactly @p t, inserting one carrying
     * the current value if absent.
     */
    std::size_t ensureBreakpoint(TimeNs t);

    /** Block count covering @c vals_. */
    std::size_t
    numBlocks() const
    {
        return (times_.size() + kBlockSize - 1) >> kBlockShift;
    }

    /**
     * Resize the block index after an insertion at @p idx and mark
     * every block from the insertion point on stale (their contents
     * shifted one slot right).
     */
    void indexShiftedAt(std::size_t idx);

    /** Cached max of block @p b, repairing a stale block by rescan. */
    double blockMaxOf(std::size_t b) const;

    /** max(@p best, max of vals_[lo, hi)) via the block index. */
    double maxRange(std::size_t lo, std::size_t hi, double best) const;

    // Breakpoints ascending; vals_[i] is the value from times_[i] until
    // times_[i+1]. The value before times_[0] is 0.
    std::vector<TimeNs> times_;
    std::vector<double> vals_;

    // Range-max block index over vals_: blockMax_[b] is the max of
    // vals_[b*64, (b+1)*64) while blockValid_[b]; repaired lazily.
    mutable std::vector<double> blockMax_;
    mutable std::vector<unsigned char> blockValid_;

    // Cached global peak (floored at 0). Exact while !maxDirty_;
    // maxValue() rescans lazily otherwise.
    mutable double cachedMax_ = 0.0;
    mutable bool maxDirty_ = false;
};

}  // namespace g10

#endif  // G10_COMMON_STEP_FUNCTION_H
