/**
 * @file
 * Lightweight statistics containers used across the simulator: scalar
 * counters, reservoir-free sample distributions (exact percentiles), and
 * logarithmic histograms for the paper's CDF figures (Figs. 3, 13).
 */

#ifndef G10_COMMON_STATS_H
#define G10_COMMON_STATS_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "types.h"

namespace g10 {

/**
 * An exact sample distribution. Stores every sample; fine for the
 * per-kernel and per-period populations in this simulator (<= a few 10^5).
 */
class Distribution
{
  public:
    /** Record one sample. */
    void add(double v) { samples_.push_back(v); sorted_ = false; }

    /** Number of samples recorded. */
    std::size_t count() const { return samples_.size(); }

    /** Sum of all samples. */
    double sum() const;

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

    /**
     * Exact p-quantile with linear interpolation, p in [0,1].
     * 0 when empty.
     */
    double percentile(double p) const;

    /** Fraction of samples strictly greater than @p v. */
    double fractionAbove(double v) const;

    /** All samples, ascending (sorts lazily). */
    const std::vector<double>& sorted() const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Histogram with logarithmically spaced bins, e.g. for inactive-period
 * lengths spanning 10 us .. 100 s.
 */
class LogHistogram
{
  public:
    /**
     * @param lo         lower edge of the first bin (> 0)
     * @param hi         upper edge of the last regular bin
     * @param bins_per_decade  resolution
     */
    LogHistogram(double lo, double hi, int bins_per_decade);

    /** Record one sample; out-of-range samples clamp to the edge bins. */
    void add(double v);

    /** Number of bins (including the two clamp bins). */
    std::size_t binCount() const { return counts_.size(); }

    /** Count in bin @p i. */
    std::uint64_t binCountAt(std::size_t i) const { return counts_[i]; }

    /** Geometric center of bin @p i. */
    double binCenter(std::size_t i) const;

    /** Total samples. */
    std::uint64_t total() const { return total_; }

    /** Cumulative fraction of samples <= upper edge of bin i. */
    double cdfAt(std::size_t i) const;

  private:
    double lo_;
    double log_lo_;
    double bin_width_log_;  // width of one bin in log10 space
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** A named monotonically increasing counter. */
struct Counter
{
    std::string name;
    std::uint64_t value = 0;

    Counter& operator+=(std::uint64_t d) { value += d; return *this; }
};

}  // namespace g10

#endif  // G10_COMMON_STATS_H
