#include "design_point.h"

#include "common/logging.h"
#include "policies/registry.h"

namespace g10 {

const char*
designPointName(DesignPoint d)
{
    switch (d) {
      case DesignPoint::Ideal: return "Ideal";
      case DesignPoint::BaseUvm: return "Base UVM";
      case DesignPoint::DeepUmPlus: return "DeepUM+";
      case DesignPoint::FlashNeuron: return "FlashNeuron";
      case DesignPoint::G10Gds: return "G10-GDS";
      case DesignPoint::G10Host: return "G10-Host";
      case DesignPoint::G10: return "G10";
    }
    return "?";
}

DesignPoint
designPointFromName(const std::string& name)
{
    const PolicyInfo& info = PolicyRegistry::instance().resolve(name);
    if (info.builtinTag < 0)
        fatal("design '%s' is a registered custom policy; it has no "
              "DesignPoint enum value — use the string-based API "
              "(ExperimentConfig::design / PolicyRegistry)",
              name.c_str());
    return static_cast<DesignPoint>(info.builtinTag);
}

std::vector<DesignPoint>
allDesignPoints()
{
    return {DesignPoint::BaseUvm,     DesignPoint::FlashNeuron,
            DesignPoint::DeepUmPlus,  DesignPoint::G10Gds,
            DesignPoint::G10Host,     DesignPoint::G10};
}

std::vector<DesignPoint>
sweepDesignPoints()
{
    return {DesignPoint::BaseUvm, DesignPoint::FlashNeuron,
            DesignPoint::DeepUmPlus, DesignPoint::G10};
}

DesignInstance
makeDesign(DesignPoint design, const KernelTrace& trace,
           const SystemConfig& config)
{
    return PolicyRegistry::instance().make(designPointName(design),
                                           trace, config);
}

}  // namespace g10
