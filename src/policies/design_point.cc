#include "design_point.h"

#include <cctype>

#include "common/logging.h"
#include "policies/baselines.h"
#include "policies/g10_policy.h"

namespace g10 {

const char*
designPointName(DesignPoint d)
{
    switch (d) {
      case DesignPoint::Ideal: return "Ideal";
      case DesignPoint::BaseUvm: return "Base UVM";
      case DesignPoint::DeepUmPlus: return "DeepUM+";
      case DesignPoint::FlashNeuron: return "FlashNeuron";
      case DesignPoint::G10Gds: return "G10-GDS";
      case DesignPoint::G10Host: return "G10-Host";
      case DesignPoint::G10: return "G10";
    }
    return "?";
}

DesignPoint
designPointFromName(const std::string& name)
{
    std::string s = name;
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == "ideal") return DesignPoint::Ideal;
    if (s == "baseuvm" || s == "uvm") return DesignPoint::BaseUvm;
    if (s == "deepum" || s == "deepum+") return DesignPoint::DeepUmPlus;
    if (s == "flashneuron") return DesignPoint::FlashNeuron;
    if (s == "g10gds" || s == "g10-gds") return DesignPoint::G10Gds;
    if (s == "g10host" || s == "g10-host") return DesignPoint::G10Host;
    if (s == "g10") return DesignPoint::G10;
    fatal("unknown design '%s'", name.c_str());
}

std::vector<DesignPoint>
allDesignPoints()
{
    return {DesignPoint::BaseUvm,     DesignPoint::FlashNeuron,
            DesignPoint::DeepUmPlus,  DesignPoint::G10Gds,
            DesignPoint::G10Host,     DesignPoint::G10};
}

std::vector<DesignPoint>
sweepDesignPoints()
{
    return {DesignPoint::BaseUvm, DesignPoint::FlashNeuron,
            DesignPoint::DeepUmPlus, DesignPoint::G10};
}

DesignInstance
makeDesign(DesignPoint design, const KernelTrace& trace,
           const SystemConfig& config)
{
    DesignInstance out;
    switch (design) {
      case DesignPoint::Ideal:
        out.policy = std::make_unique<IdealPolicy>();
        return out;
      case DesignPoint::BaseUvm:
        out.policy = std::make_unique<BaseUvmPolicy>();
        return out;
      case DesignPoint::DeepUmPlus:
        out.policy = std::make_unique<DeepUmPolicy>();
        return out;
      case DesignPoint::FlashNeuron:
        out.policy =
            std::make_unique<FlashNeuronPolicy>(trace, config);
        return out;
      case DesignPoint::G10Gds:
        out.policy = makeG10Gds(trace, config);
        return out;
      case DesignPoint::G10Host:
        out.policy = makeG10Host(trace, config);
        return out;
      case DesignPoint::G10:
        out.policy = makeG10(trace, config);
        out.uvmExtension = true;  // §4.5 unified page table
        return out;
    }
    panic("unreachable design point");
}

}  // namespace g10
