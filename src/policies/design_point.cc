#include "design_point.h"

#include "common/logging.h"
#include "policies/baselines.h"
#include "policies/g10_policy.h"

namespace g10 {

const char*
designPointName(DesignPoint d)
{
    switch (d) {
      case DesignPoint::Ideal: return "Ideal";
      case DesignPoint::BaseUvm: return "Base UVM";
      case DesignPoint::DeepUmPlus: return "DeepUM+";
      case DesignPoint::FlashNeuron: return "FlashNeuron";
      case DesignPoint::G10Gds: return "G10-GDS";
      case DesignPoint::G10Host: return "G10-Host";
      case DesignPoint::G10: return "G10";
    }
    return "?";
}

std::vector<DesignPoint>
allDesignPoints()
{
    return {DesignPoint::BaseUvm,     DesignPoint::FlashNeuron,
            DesignPoint::DeepUmPlus,  DesignPoint::G10Gds,
            DesignPoint::G10Host,     DesignPoint::G10};
}

std::vector<DesignPoint>
sweepDesignPoints()
{
    return {DesignPoint::BaseUvm, DesignPoint::FlashNeuron,
            DesignPoint::DeepUmPlus, DesignPoint::G10};
}

DesignInstance
makeDesign(DesignPoint design, const KernelTrace& trace,
           const SystemConfig& config)
{
    DesignInstance out;
    switch (design) {
      case DesignPoint::Ideal:
        out.policy = std::make_unique<IdealPolicy>();
        return out;
      case DesignPoint::BaseUvm:
        out.policy = std::make_unique<BaseUvmPolicy>();
        return out;
      case DesignPoint::DeepUmPlus:
        out.policy = std::make_unique<DeepUmPolicy>();
        return out;
      case DesignPoint::FlashNeuron:
        out.policy =
            std::make_unique<FlashNeuronPolicy>(trace, config);
        return out;
      case DesignPoint::G10Gds:
        out.policy = makeG10Gds(trace, config);
        return out;
      case DesignPoint::G10Host:
        out.policy = makeG10Host(trace, config);
        return out;
      case DesignPoint::G10:
        out.policy = makeG10(trace, config);
        out.uvmExtension = true;  // §4.5 unified page table
        return out;
    }
    panic("unreachable design point");
}

}  // namespace g10
