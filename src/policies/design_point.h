/**
 * @file
 * The named design points of the paper's evaluation, the DesignInstance
 * bundle they produce, and legacy enum-based shims over the string-keyed
 * PolicyRegistry (policies/registry.h), which is the extensible surface
 * new code should target.
 */

#ifndef G10_POLICIES_DESIGN_POINT_H
#define G10_POLICIES_DESIGN_POINT_H

#include <memory>
#include <string>
#include <vector>

#include "common/system_config.h"
#include "graph/trace.h"
#include "sim/runtime/policy.h"

namespace g10 {

/** Every design point evaluated in §7. */
enum class DesignPoint
{
    Ideal,
    BaseUvm,
    DeepUmPlus,
    FlashNeuron,
    G10Gds,
    G10Host,
    G10,
};

/** Display name matching the paper's legends. */
const char* designPointName(DesignPoint d);

/**
 * Parse a design name (case-insensitive; accepts the CLI spellings
 * "ideal", "baseuvm"/"uvm", "deepum"/"deepum+", "flashneuron",
 * "g10gds"/"g10-gds", "g10host"/"g10-host", "g10"). Resolution goes
 * through the PolicyRegistry; fatal() on unknown names and on names
 * that resolve to a registered custom (non-built-in) policy — those
 * are only reachable through the string-based API.
 */
DesignPoint designPointFromName(const std::string& name);

/** The designs of Fig. 11, left-to-right. */
std::vector<DesignPoint> allDesignPoints();

/** The non-ablation designs used in the sweep figures (15-18). */
std::vector<DesignPoint> sweepDesignPoints();

/** A policy plus the runtime flags it requires. */
struct DesignInstance
{
    std::unique_ptr<Policy> policy;
    bool uvmExtension = false;
};

/**
 * Instantiate @p design for @p trace on @p config (runs the G10 or
 * FlashNeuron compile passes when the design needs a plan). Shim over
 * PolicyRegistry::make().
 */
DesignInstance makeDesign(DesignPoint design, const KernelTrace& trace,
                          const SystemConfig& config);

}  // namespace g10

#endif  // G10_POLICIES_DESIGN_POINT_H
