#include "baselines.h"

#include <algorithm>

#include "common/logging.h"
#include "core/sched/bandwidth_model.h"
#include "core/sched/plan_builder.h"

namespace g10 {

MemLoc
BaseUvmPolicy::capacityEvictDest(SimRuntime& rt, TensorId t)
{
    // LRU pages go to host memory; the runtime overflows to the SSD
    // when host staging is full.
    (void)rt;
    (void)t;
    return MemLoc::Host;
}

void
DeepUmPolicy::beforeKernel(SimRuntime& rt, KernelId k)
{
    const auto nk = static_cast<KernelId>(rt.numKernels());
    const TraceUseIndex& idx = rt.trace().useIndex();
    // In steady state DeepUM's correlation tables predict exactly the
    // recorded kernel sequence, so the prefetcher walks the next W
    // kernels (wrapping across the iteration boundary, as its UM blocks
    // persist across iterations).
    for (int ahead = 1; ahead <= lookahead_; ++ahead) {
        const auto j = static_cast<std::size_t>(
            (static_cast<std::int64_t>(k) + ahead) % nk);
        for (std::uint32_t ti = idx.kernelTensorsOff[j];
             ti < idx.kernelTensorsOff[j + 1]; ++ti) {
            const TensorId t = idx.kernelTensors[ti];
            const TensorRt& ts = rt.tensorState(t);
            if (!ts.allocated)
                continue;  // not yet materialized; nothing to fetch
            // Pin so the prefetches of kernel k+1 don't evict data
            // needed by kernel k+2 in the same window.
            rt.pinUntil(t, rt.globalKernelIndex() + ahead);
            if (ts.residentBytes < ts.footprint)
                rt.issuePrefetch(t);
        }
    }
}

MemLoc
DeepUmPolicy::capacityEvictDest(SimRuntime& rt, TensorId t)
{
    (void)rt;
    (void)t;
    return MemLoc::Host;  // runtime overflows to SSD when host is full
}

FlashNeuronPolicy::FlashNeuronPolicy(const KernelTrace& trace,
                                     const SystemConfig& config)
{
    vitality_ = std::make_unique<VitalityAnalysis>(
        trace, config.kernelLaunchOverheadNs);
    BandwidthModel bw(config);

    StepFunction pressure = vitality_->memoryPressure();
    const double cap = static_cast<double>(config.gpuMemBytes);

    // Map each candidate tensor to its single longest inactive period
    // (FlashNeuron offloads a tensor once: after its last forward use,
    // back before its backward use).
    const auto& periods = vitality_->periods();
    std::vector<int> best_period(trace.numTensors(), -1);
    for (std::size_t i = 0; i < periods.size(); ++i) {
        const InactivePeriod& p = periods[i];
        const Tensor& t = trace.tensor(p.tensor);
        if (t.kind != TensorKind::Activation)
            continue;  // FlashNeuron does not swap weights (Fig. 14)
        if (p.wrapsIteration)
            continue;
        int cur = best_period[static_cast<std::size_t>(p.tensor)];
        if (cur < 0 || periods[static_cast<std::size_t>(cur)].lengthNs() <
                           p.lengthNs())
            best_period[static_cast<std::size_t>(p.tensor)] =
                static_cast<int>(i);
    }

    // Linear selection: walk tensors in birth order, offload until the
    // projected peak fits (or we run out of candidates).
    std::vector<TensorId> order;
    for (const auto& lv : vitality_->liveness()) {
        if (lv.tensor >= 0 &&
            best_period[static_cast<std::size_t>(lv.tensor)] >= 0)
            order.push_back(lv.tensor);
    }
    std::sort(order.begin(), order.end(), [&](TensorId a, TensorId b) {
        return vitality_->liveness()[static_cast<std::size_t>(a)].birth <
               vitality_->liveness()[static_cast<std::size_t>(b)].birth;
    });

    EvictionSchedule schedule;
    // The projected peak only moves when an offload is recorded below;
    // hoist it so the convergence check costs one rescan per selection
    // instead of one per visited tensor.
    double peak = pressure.maxValue();
    for (TensorId t : order) {
        if (peak <= cap)
            break;
        const auto pi = static_cast<std::size_t>(
            best_period[static_cast<std::size_t>(t)]);
        const InactivePeriod& p = periods[pi];
        const Bytes size = trace.tensor(t).bytes;
        if (size < 256 * KiB)
            continue;  // too small to pay the transfer setup for

        ScheduledMigration m;
        m.periodIndex = pi;
        m.tensor = t;
        m.bytes = size;
        m.dest = MemLoc::Ssd;
        m.evictStart = p.startNs;
        m.evictComplete =
            p.startNs + bw.evictDuration(size, MemLoc::Ssd);
        m.prefetchDuration = bw.prefetchDuration(size, MemLoc::Ssd);
        m.prefetchLatest = std::max(
            m.evictComplete, p.endNs - m.prefetchDuration - 20 * USEC);
        m.prefetchStart = m.prefetchLatest;
        if (m.prefetchLatest <= m.evictComplete)
            continue;  // period cannot hide the round trip
        schedule.migrations.push_back(m);
        pressure.add(m.evictComplete, m.prefetchStart,
                     -static_cast<double>(size));
        peak = pressure.maxValue();
        ++selected_;
    }
    plannedPeak_ = static_cast<Bytes>(peak);
    plan_ = buildMigrationPlan(*vitality_, schedule);
}

void
FlashNeuronPolicy::beforeKernel(SimRuntime& rt, KernelId k)
{
    auto [begin, end] = plan_.instrsBefore(k);
    for (const MigrationInstr* it = begin; it != end; ++it) {
        if (it->kind == InstrKind::PreEvict)
            rt.issueEvict(it->tensor, it->dest,
                          TransferCause::PreEvict);
        else
            rt.issuePrefetch(it->tensor);
    }
}

}  // namespace g10
