/**
 * @file
 * The G10 design points: the full system and the two ablations the
 * paper's Fig. 11 studies.
 *
 *  - G10-GDS:  smart migrations between GPU and SSD only (GPUDirect-
 *              Storage-style), no host staging, no UVM extension.
 *  - G10-Host: smart migrations across GPU/host/SSD, but still paying
 *              the host software path per migration op.
 *  - G10:      G10-Host plus the unified page table extension (§4.5),
 *              which removes most of the software overhead.
 *
 * All three replay the compile-time migration plan produced by
 * compileG10Plan(); the variants differ in which destinations the
 * scheduler may use and whether the runtime charges the driver path.
 */

#ifndef G10_POLICIES_G10_POLICY_H
#define G10_POLICIES_G10_POLICY_H

#include <memory>

#include "core/g10_compiler.h"
#include "sim/runtime/policy.h"
#include "sim/runtime/sim_runtime.h"

namespace g10 {

/** Plan-replaying policy used by all G10 variants. */
class G10Policy : public Policy
{
  public:
    /**
     * @param display_name "G10", "G10-GDS" or "G10-Host"
     * @param plan         compiled migration plan (owned)
     */
    G10Policy(std::string display_name, CompiledPlan plan)
        : name_(std::move(display_name)),
          plan_(std::make_shared<const CompiledPlan>(std::move(plan)))
    {}

    /**
     * Share an already-compiled plan (a SweepPlanCache hit, or a plan
     * another variant with the same compile options produced). The
     * policy only replays the plan, so sharing is safe across
     * concurrent simulations.
     */
    G10Policy(std::string display_name,
              std::shared_ptr<const CompiledPlan> plan)
        : name_(std::move(display_name)), plan_(std::move(plan))
    {}

    const char* name() const override { return name_.c_str(); }

    void beforeKernel(SimRuntime& rt, KernelId k) override;

    MemLoc capacityEvictDest(SimRuntime& rt, TensorId t) override;

    const CompiledPlan& compiled() const { return *plan_; }

    /** The plan as a shareable handle (seeds later warm compiles). */
    const std::shared_ptr<const CompiledPlan>& compiledShared() const
    {
        return plan_;
    }

  private:
    std::string name_;
    std::shared_ptr<const CompiledPlan> plan_;
};

/**
 * Compile + wrap the full G10 design.
 *
 * @param warm_start optional EvictionSchedule from a previous compile of
 *        the same model topology (different batch size / capacity knob):
 *        replayed as a warm start so re-planning skips most of the
 *        greedy search (see EvictionSchedulerParams::warmStart). The
 *        schedule only needs to live until this call returns.
 */
std::unique_ptr<G10Policy> makeG10(const KernelTrace& trace,
                                   const SystemConfig& config,
                                   const EvictionSchedule* warm_start =
                                       nullptr);

/** G10 with GPU<->SSD migrations only. */
std::unique_ptr<G10Policy> makeG10Gds(const KernelTrace& trace,
                                      const SystemConfig& config,
                                      const EvictionSchedule* warm_start =
                                          nullptr);

/** G10 with host staging but without the UVM extension. */
std::unique_ptr<G10Policy> makeG10Host(const KernelTrace& trace,
                                       const SystemConfig& config,
                                       const EvictionSchedule* warm_start =
                                           nullptr);

/**
 * Compile-options class of one family member (@p tag is a DesignPoint
 * value): members with equal keys run the compiler with identical
 * options and therefore produce bit-identical plans — G10 and G10-Host
 * share a class (both allow SSD + host destinations; they differ only
 * in the runtime's UVM-extension charging), G10-GDS (SSD only) is its
 * own. Cache keys use this instead of the tag so a sweep over g10 and
 * g10host compiles each plan once.
 */
int planCompileOptionsKey(int tag);

/**
 * Compile the plan for family member @p tag without wrapping it in a
 * policy — the form plan caches store and share.
 */
std::shared_ptr<const CompiledPlan> compileFamilyPlan(
    int tag, const KernelTrace& trace, const SystemConfig& config,
    const EvictionSchedule* warm_start = nullptr);

/**
 * Wrap an already-compiled (possibly cached/shared) plan in family
 * member @p tag's policy, with its display name.
 */
std::unique_ptr<G10Policy> makeFamilyPolicy(
    int tag, std::shared_ptr<const CompiledPlan> plan);

}  // namespace g10

#endif  // G10_POLICIES_G10_POLICY_H
