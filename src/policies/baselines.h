/**
 * @file
 * The paper's comparison designs (§7.1):
 *
 *  - IdealPolicy:      infinite GPU memory; the normalization baseline.
 *  - BaseUvmPolicy:    stock UVM -- on-demand page-fault migrations only,
 *                      LRU eviction to host memory, overflow to SSD.
 *  - DeepUmPolicy:     DeepUM+ -- UVM plus a correlation prefetcher that
 *                      fetches the tensors of the next W kernels (the
 *                      kernel execution order *is* the learned
 *                      correlation in steady state), LRU eviction to
 *                      host, overflow to SSD.
 *  - FlashNeuronPolicy: direct GPU-SSD tensor offloading with linear
 *                      tensor selection over forward-pass activations,
 *                      no host staging, no demand paging (hard-fails
 *                      when a kernel's working set cannot fit).
 */

#ifndef G10_POLICIES_BASELINES_H
#define G10_POLICIES_BASELINES_H

#include <memory>

#include "core/sched/schedule_types.h"
#include "core/vitality/vitality.h"
#include "sim/runtime/policy.h"
#include "sim/runtime/sim_runtime.h"

namespace g10 {

/** GPU with unbounded on-board memory. */
class IdealPolicy : public Policy
{
  public:
    const char* name() const override { return "Ideal"; }
    bool infiniteMemory() const override { return true; }
    MemLoc capacityEvictDest(SimRuntime&, TensorId) override
    {
        return MemLoc::Host;  // never called
    }
};

/** Stock UVM: page faults only, LRU to host, overflow to SSD. */
class BaseUvmPolicy : public Policy
{
  public:
    const char* name() const override { return "Base UVM"; }
    MemLoc capacityEvictDest(SimRuntime& rt, TensorId t) override;
    bool faultDrivenEviction() const override { return true; }
};

/** DeepUM+ (Jung et al., ASPLOS'23, extended with SSD backing). */
class DeepUmPolicy : public Policy
{
  public:
    /** @param lookahead number of future kernels to prefetch for. */
    explicit DeepUmPolicy(int lookahead = 8) : lookahead_(lookahead) {}

    const char* name() const override { return "DeepUM+"; }
    void beforeKernel(SimRuntime& rt, KernelId k) override;
    MemLoc capacityEvictDest(SimRuntime& rt, TensorId t) override;

  private:
    int lookahead_;
};

/**
 * FlashNeuron (Bae et al., FAST'21): compile-time linear selection of
 * forward activations to offload to the SSD, prefetched for the backward
 * pass; no UVM, no host staging.
 */
class FlashNeuronPolicy : public Policy
{
  public:
    /**
     * Build the offload plan for @p trace on @p config.
     * The trace must outlive the policy.
     */
    FlashNeuronPolicy(const KernelTrace& trace,
                      const SystemConfig& config);

    const char* name() const override { return "FlashNeuron"; }
    void beforeKernel(SimRuntime& rt, KernelId k) override;
    MemLoc capacityEvictDest(SimRuntime&, TensorId) override
    {
        return MemLoc::Ssd;  // direct GPU-SSD design
    }
    bool demandPagingAllowed() const override { return false; }

    /** Number of tensors selected for offload (for tests/reports). */
    std::size_t selectedCount() const { return selected_; }

    /** Planned peak GPU memory after offloading. */
    Bytes plannedPeakBytes() const { return plannedPeak_; }

  private:
    std::unique_ptr<VitalityAnalysis> vitality_;
    MigrationPlan plan_;
    std::size_t selected_ = 0;
    Bytes plannedPeak_ = 0;
};

}  // namespace g10

#endif  // G10_POLICIES_BASELINES_H
