#include "registry.h"

#include <cctype>

#include "common/logging.h"
#include "policies/baselines.h"
#include "policies/g10_policy.h"

namespace g10 {

namespace {

/** Wrap a policy pointer into a DesignInstance. */
DesignInstance
instanceOf(std::unique_ptr<Policy> policy, bool uvm_extension = false)
{
    DesignInstance d;
    d.policy = std::move(policy);
    d.uvmExtension = uvm_extension;
    return d;
}

}  // namespace

PolicyRegistry&
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    return registry;
}

PolicyRegistry::PolicyRegistry()
{
    // The paper's §7 design points, in Fig. 11 legend order. Keys are
    // the CLI spellings g10sim has always accepted.
    add({"Ideal", "ideal", {},
         "Infinite GPU memory; the normalization baseline.",
         [](const KernelTrace&, const SystemConfig&) {
             return instanceOf(std::make_unique<IdealPolicy>());
         },
         static_cast<int>(DesignPoint::Ideal)});

    add({"Base UVM", "baseuvm", {"uvm"},
         "Stock UVM: on-demand page faults, LRU eviction to host, "
         "overflow to SSD.",
         [](const KernelTrace&, const SystemConfig&) {
             return instanceOf(std::make_unique<BaseUvmPolicy>());
         },
         static_cast<int>(DesignPoint::BaseUvm)});

    add({"DeepUM+", "deepum", {"deepum+"},
         "UVM plus a correlation prefetcher over the next kernels' "
         "tensors (ASPLOS'23, SSD-backed).",
         [](const KernelTrace&, const SystemConfig&) {
             return instanceOf(std::make_unique<DeepUmPolicy>());
         },
         static_cast<int>(DesignPoint::DeepUmPlus)});

    add({"FlashNeuron", "flashneuron", {},
         "Direct GPU-SSD activation offloading; no host staging, no "
         "demand paging (FAST'21).",
         [](const KernelTrace& trace, const SystemConfig& config) {
             return instanceOf(
                 std::make_unique<FlashNeuronPolicy>(trace, config));
         },
         static_cast<int>(DesignPoint::FlashNeuron)});

    add({"G10-GDS", "g10gds", {},
         "Smart tensor migrations between GPU and SSD only "
         "(GPUDirect-Storage-style ablation).",
         [](const KernelTrace& trace, const SystemConfig& config) {
             return instanceOf(makeG10Gds(trace, config));
         },
         static_cast<int>(DesignPoint::G10Gds)});

    add({"G10-Host", "g10host", {},
         "Smart GPU/host/SSD migrations without the unified page "
         "table (pays the host software path).",
         [](const KernelTrace& trace, const SystemConfig& config) {
             return instanceOf(makeG10Host(trace, config));
         },
         static_cast<int>(DesignPoint::G10Host)});

    add({"G10", "g10", {},
         "Full G10: smart migrations plus the unified page table "
         "extension (paper §4.5).",
         [](const KernelTrace& trace, const SystemConfig& config) {
             // §4.5 unified page table
             return instanceOf(makeG10(trace, config), true);
         },
         static_cast<int>(DesignPoint::G10)});
}

std::string
PolicyRegistry::normalizeKey(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c == ' ' || c == '-' || c == '_')
            continue;
        out += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

void
PolicyRegistry::add(PolicyInfo info)
{
    if (info.key.empty())
        fatal("PolicyRegistry: design '%s' has an empty key",
              info.name.c_str());
    if (!info.factory)
        fatal("PolicyRegistry: design '%s' has no factory",
              info.name.c_str());

    std::lock_guard<std::mutex> lock(mutex_);
    auto owned = std::make_unique<PolicyInfo>(std::move(info));
    const PolicyInfo* entry = owned.get();

    std::vector<std::string> keys;
    keys.push_back(normalizeKey(entry->key));
    keys.push_back(normalizeKey(entry->name));
    for (const std::string& a : entry->aliases)
        keys.push_back(normalizeKey(a));

    for (const std::string& k : keys) {
        auto it = lookup_.find(k);
        if (it != lookup_.end())
            fatal("PolicyRegistry: design name '%s' already registered "
                  "by '%s' (while adding '%s')",
                  k.c_str(), it->second->name.c_str(),
                  entry->name.c_str());
    }
    for (const std::string& k : keys)
        lookup_[k] = entry;
    entries_.push_back(std::move(owned));
}

const PolicyInfo*
PolicyRegistry::find(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = lookup_.find(normalizeKey(name));
    return it == lookup_.end() ? nullptr : it->second;
}

bool
PolicyRegistry::contains(const std::string& name) const
{
    return find(name) != nullptr;
}

const PolicyInfo&
PolicyRegistry::resolve(const std::string& name) const
{
    const PolicyInfo* info = find(name);
    if (!info)
        fatal("unknown design '%s' (registered: %s)", name.c_str(),
              knownNames().c_str());
    return *info;
}

DesignInstance
PolicyRegistry::make(const std::string& name, const KernelTrace& trace,
                     const SystemConfig& config) const
{
    const PolicyInfo& info = resolve(name);
    DesignInstance out = info.factory(trace, config);
    if (!out.policy)
        fatal("design '%s': factory returned a null policy",
              info.name.c_str());
    return out;
}

std::vector<const PolicyInfo*>
PolicyRegistry::registeredDesigns() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const PolicyInfo*> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_)
        out.push_back(e.get());
    return out;
}

std::string
PolicyRegistry::knownNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto& e : entries_) {
        if (!out.empty())
            out += ", ";
        out += e->key;
    }
    return out;
}

std::string
designDisplayName(const std::string& name)
{
    return PolicyRegistry::instance().resolve(name).name;
}

std::vector<std::string>
allDesignNames()
{
    return {"baseuvm", "flashneuron", "deepum",
            "g10gds",  "g10host",     "g10"};
}

std::vector<std::string>
sweepDesignNames()
{
    return {"baseuvm", "flashneuron", "deepum", "g10"};
}

}  // namespace g10
