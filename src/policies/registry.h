/**
 * @file
 * String-keyed registry of memory-management designs.
 *
 * Every design — the paper's seven built-ins and any downstream custom
 * policy — is a named factory `(trace, config) -> DesignInstance`.
 * Lookup is case-insensitive and ignores spaces/dashes/underscores, so
 * the paper legend spelling ("G10-GDS"), the CLI spelling ("g10gds"),
 * and aliases ("uvm" for "baseuvm") all resolve to the same entry.
 *
 * Custom policies register at startup (or from a test) without touching
 * this library:
 *
 *   static g10::RegisterPolicy reg({
 *       "My-Policy", "mypolicy", {"mp"},
 *       "one-line description",
 *       [](const g10::KernelTrace& t, const g10::SystemConfig& s) {
 *           g10::DesignInstance d;
 *           d.policy = std::make_unique<MyPolicy>(t, s);
 *           return d;
 *       }});
 *
 * After that, "mypolicy" works everywhere a design name is accepted:
 * the ExperimentBuilder, ExperimentConfig, mix files, and the g10sim /
 * g10multi CLIs.
 */

#ifndef G10_POLICIES_REGISTRY_H
#define G10_POLICIES_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/system_config.h"
#include "graph/trace.h"
#include "policies/design_point.h"

namespace g10 {

/** Factory instantiating one design for a trace/platform pair. */
using PolicyFactory = std::function<DesignInstance(
    const KernelTrace&, const SystemConfig&)>;

/** One registered design. */
struct PolicyInfo
{
    /** Display name matching the paper's legends, e.g. "G10-GDS". */
    std::string name;

    /** Canonical CLI spelling, e.g. "g10gds". */
    std::string key;

    /** Additional accepted spellings. */
    std::vector<std::string> aliases;

    /** One-line description for `--list-designs`. */
    std::string description;

    PolicyFactory factory;

    /**
     * static_cast<int>(DesignPoint) for the seven built-ins so the
     * legacy enum shims can map back; -1 for custom policies.
     */
    int builtinTag = -1;
};

/**
 * Process-wide design registry. The seven built-in design points are
 * registered on first access; additional policies may be added at any
 * time before they are looked up. Lookup is thread-safe (the parallel
 * experiment engine resolves names from worker threads).
 */
class PolicyRegistry
{
  public:
    static PolicyRegistry& instance();

    /**
     * Register a design. fatal() when any of its lookup keys collides
     * with an already-registered design.
     */
    void add(PolicyInfo info);

    /** Entry for @p name, or nullptr when unknown. */
    const PolicyInfo* find(const std::string& name) const;

    /** True when @p name resolves. */
    bool contains(const std::string& name) const;

    /**
     * Entry for @p name; fatal() with the list of registered designs
     * when unknown.
     */
    const PolicyInfo& resolve(const std::string& name) const;

    /** Instantiate @p name for @p trace on @p config (or fatal()). */
    DesignInstance make(const std::string& name,
                        const KernelTrace& trace,
                        const SystemConfig& config) const;

    /** All designs, in registration order (built-ins first). */
    std::vector<const PolicyInfo*> registeredDesigns() const;

    /** Comma-joined canonical keys, for error messages and --help. */
    std::string knownNames() const;

    /**
     * Lookup normalization: lower-case, spaces/dashes/underscores
     * removed ("G10-GDS" -> "g10gds").
     */
    static std::string normalizeKey(const std::string& name);

  private:
    PolicyRegistry();  // registers the built-in design points

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<PolicyInfo>> entries_;
    std::map<std::string, const PolicyInfo*> lookup_;
};

/** Static-initialization helper for self-registering policies. */
struct RegisterPolicy
{
    explicit RegisterPolicy(PolicyInfo info)
    {
        PolicyRegistry::instance().add(std::move(info));
    }
};

/** Display name of a registered design (fatal on unknown names). */
std::string designDisplayName(const std::string& name);

/** Canonical keys of the Fig. 11 designs, left-to-right. */
std::vector<std::string> allDesignNames();

/** Canonical keys of the sweep designs (Figs. 15-18). */
std::vector<std::string> sweepDesignNames();

}  // namespace g10

#endif  // G10_POLICIES_REGISTRY_H
