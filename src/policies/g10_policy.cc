#include "g10_policy.h"

namespace g10 {

void
G10Policy::beforeKernel(SimRuntime& rt, KernelId k)
{
    auto [begin, end] = plan_.plan.instrsBefore(k);
    for (const MigrationInstr* it = begin; it != end; ++it) {
        if (it->kind == InstrKind::PreEvict)
            rt.issueEvict(it->tensor, it->dest, TransferCause::PreEvict);
        else
            rt.issuePrefetch(it->tensor);
    }
}

MemLoc
G10Policy::capacityEvictDest(SimRuntime& rt, TensorId t)
{
    (void)t;
    // Unplanned pressure is rare under a good plan; spill to host when
    // it has room (fast path back), otherwise to the SSD.
    return rt.hostFreeBytes() > 0 ? MemLoc::Host : MemLoc::Ssd;
}

std::unique_ptr<G10Policy>
makeG10(const KernelTrace& trace, const SystemConfig& config,
        const EvictionSchedule* warm_start)
{
    G10CompilerOptions opt;
    opt.eviction.allowSsd = true;
    opt.eviction.allowHost = true;
    opt.eviction.warmStart = warm_start;
    return std::make_unique<G10Policy>(
        "G10", compileG10Plan(trace, config, opt));
}

std::unique_ptr<G10Policy>
makeG10Gds(const KernelTrace& trace, const SystemConfig& config,
           const EvictionSchedule* warm_start)
{
    G10CompilerOptions opt;
    opt.eviction.allowSsd = true;
    opt.eviction.allowHost = false;
    opt.eviction.warmStart = warm_start;
    return std::make_unique<G10Policy>(
        "G10-GDS", compileG10Plan(trace, config, opt));
}

std::unique_ptr<G10Policy>
makeG10Host(const KernelTrace& trace, const SystemConfig& config,
            const EvictionSchedule* warm_start)
{
    G10CompilerOptions opt;
    opt.eviction.allowSsd = true;
    opt.eviction.allowHost = true;
    opt.eviction.warmStart = warm_start;
    return std::make_unique<G10Policy>(
        "G10-Host", compileG10Plan(trace, config, opt));
}

}  // namespace g10
