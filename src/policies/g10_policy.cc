#include "g10_policy.h"

#include "common/logging.h"
#include "policies/design_point.h"

namespace g10 {

void
G10Policy::beforeKernel(SimRuntime& rt, KernelId k)
{
    auto [begin, end] = plan_->plan.instrsBefore(k);
    for (const MigrationInstr* it = begin; it != end; ++it) {
        if (it->kind == InstrKind::PreEvict)
            rt.issueEvict(it->tensor, it->dest, TransferCause::PreEvict);
        else
            rt.issuePrefetch(it->tensor);
    }
}

MemLoc
G10Policy::capacityEvictDest(SimRuntime& rt, TensorId t)
{
    (void)t;
    // Unplanned pressure is rare under a good plan; spill to host when
    // it has room (fast path back), otherwise to the SSD.
    return rt.hostFreeBytes() > 0 ? MemLoc::Host : MemLoc::Ssd;
}

int
planCompileOptionsKey(int tag)
{
    // G10 and G10-Host compile with identical options (SSD + host
    // destinations); only G10-GDS restricts the destination set.
    return tag == static_cast<int>(DesignPoint::G10Gds) ? 1 : 0;
}

std::shared_ptr<const CompiledPlan>
compileFamilyPlan(int tag, const KernelTrace& trace,
                  const SystemConfig& config,
                  const EvictionSchedule* warm_start)
{
    G10CompilerOptions opt;
    opt.eviction.allowSsd = true;
    opt.eviction.allowHost =
        tag != static_cast<int>(DesignPoint::G10Gds);
    opt.eviction.warmStart = warm_start;
    return std::make_shared<const CompiledPlan>(
        compileG10Plan(trace, config, opt));
}

std::unique_ptr<G10Policy>
makeFamilyPolicy(int tag, std::shared_ptr<const CompiledPlan> plan)
{
    const char* name = "G10";
    if (tag == static_cast<int>(DesignPoint::G10Gds))
        name = "G10-GDS";
    else if (tag == static_cast<int>(DesignPoint::G10Host))
        name = "G10-Host";
    else if (tag != static_cast<int>(DesignPoint::G10))
        panic("makeFamilyPolicy: tag %d is not a G10 family member",
              tag);
    return std::make_unique<G10Policy>(name, std::move(plan));
}

std::unique_ptr<G10Policy>
makeG10(const KernelTrace& trace, const SystemConfig& config,
        const EvictionSchedule* warm_start)
{
    const int tag = static_cast<int>(DesignPoint::G10);
    return makeFamilyPolicy(
        tag, compileFamilyPlan(tag, trace, config, warm_start));
}

std::unique_ptr<G10Policy>
makeG10Gds(const KernelTrace& trace, const SystemConfig& config,
           const EvictionSchedule* warm_start)
{
    const int tag = static_cast<int>(DesignPoint::G10Gds);
    return makeFamilyPolicy(
        tag, compileFamilyPlan(tag, trace, config, warm_start));
}

std::unique_ptr<G10Policy>
makeG10Host(const KernelTrace& trace, const SystemConfig& config,
            const EvictionSchedule* warm_start)
{
    const int tag = static_cast<int>(DesignPoint::G10Host);
    return makeFamilyPolicy(
        tag, compileFamilyPlan(tag, trace, config, warm_start));
}

}  // namespace g10
