/**
 * @file
 * The replayable kernel trace: the contract between the model zoo, the
 * vitality analyzer / migration scheduler, and the runtime simulator.
 *
 * Mirrors the paper's methodology (§5): real models are profiled once and
 * their kernel traces replayed. Here the "profile" comes from the analytic
 * cost model, but the downstream consumers only see this trace type either
 * way.
 */

#ifndef G10_GRAPH_TRACE_H
#define G10_GRAPH_TRACE_H

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/kernel.h"
#include "graph/tensor.h"

namespace g10 {

/**
 * Derived read-only indexes over a trace's kernel list, built once and
 * shared by every runtime replaying the trace (a sweep can replay the
 * same trace hundreds of times; rebuilding these per replay dominated
 * runtime setup).
 */
struct TraceUseIndex
{
    /** Kernel ids using each tensor, ascending (workspace counts). */
    std::vector<std::vector<KernelId>> uses;

    /**
     * Kernel::allTensors() for every kernel (sorted, deduplicated),
     * flattened in CSR layout: kernel k's tensors live at
     * [kernelTensorsOff[k], kernelTensorsOff[k + 1]).
     */
    std::vector<TensorId> kernelTensors;
    std::vector<std::uint32_t> kernelTensorsOff;
};

/**
 * An immutable-after-build sequence of kernels plus the tensor set they
 * reference. Kernel ids equal their execution-order index.
 */
class KernelTrace
{
  public:
    KernelTrace() = default;

    /** Model name, e.g. "ResNet152" (used in reports). */
    const std::string& modelName() const { return modelName_; }
    void setModelName(std::string name) { modelName_ = std::move(name); }

    /** Batch size the trace was generated for. */
    int batchSize() const { return batchSize_; }
    void setBatchSize(int b) { batchSize_ = b; }

    /** Register a tensor; returns its id. */
    TensorId addTensor(std::string name, Bytes bytes, TensorKind kind);

    /** Append a kernel; its id is assigned to the execution index. */
    KernelId addKernel(Kernel kernel);

    const Tensor& tensor(TensorId id) const;
    Tensor& tensor(TensorId id);
    const Kernel& kernel(KernelId id) const;

    std::size_t numTensors() const { return tensors_.size(); }
    std::size_t numKernels() const { return kernels_.size(); }
    const std::vector<Tensor>& tensors() const { return tensors_; }
    const std::vector<Kernel>& kernels() const { return kernels_; }

    /** Sum of kernel durations: the ideal (infinite-memory) iteration. */
    TimeNs totalComputeNs() const;

    /** Multiply every kernel duration by @p factor (calibration). */
    void scaleDurations(double factor);

    /**
     * Ideal-timing start offset of each kernel (prefix sums of durations
     * plus per-kernel launch overhead). Index numKernels() holds the end
     * time of the final kernel.
     */
    std::vector<TimeNs> idealStartTimes(TimeNs launch_overhead) const;

    /**
     * Kernel indices that use each tensor, ascending. Workspace uses
     * count as uses.
     */
    std::vector<std::vector<KernelId>> buildUseLists() const;

    /**
     * The cached use-list / kernel-tensor index, built lazily on first
     * access and shared by all readers (thread-safe: concurrent first
     * calls race to publish identical indexes and one wins). addKernel
     * invalidates it, so hold no reference across trace mutation.
     */
    const TraceUseIndex& useIndex() const;

    /** Sum of all tensor sizes (the program's total memory demand). */
    Bytes totalTensorBytes() const;

    /** Largest single-kernel working set (inputs+outputs+workspace). */
    Bytes peakKernelWorkingSet() const;

    /**
     * Sanity-check structural invariants; panics on violation:
     * tensor ids in range, every tensor's first use lists it as an output
     * or workspace (no reads of never-written tensors except weights),
     * kernel ids dense.
     */
    void validate() const;

  private:
    std::string modelName_ = "unnamed";
    int batchSize_ = 1;
    std::vector<Tensor> tensors_;
    std::vector<Kernel> kernels_;

    // Lazily published index (accessed via std::atomic_* shared_ptr
    // functions). Copies share it; addKernel resets it.
    mutable std::shared_ptr<const TraceUseIndex> useIndex_;
};

}  // namespace g10

#endif  // G10_GRAPH_TRACE_H
