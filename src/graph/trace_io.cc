#include "trace_io.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace g10 {

namespace {

const char*
kindToken(TensorKind k)
{
    switch (k) {
      case TensorKind::Weight: return "W";
      case TensorKind::WeightGrad: return "dW";
      case TensorKind::Activation: return "A";
      case TensorKind::ActivationGrad: return "dA";
      case TensorKind::Workspace: return "WS";
    }
    return "?";
}

TensorKind
kindFromToken(const std::string& s)
{
    if (s == "W") return TensorKind::Weight;
    if (s == "dW") return TensorKind::WeightGrad;
    if (s == "A") return TensorKind::Activation;
    if (s == "dA") return TensorKind::ActivationGrad;
    if (s == "WS") return TensorKind::Workspace;
    fatal("trace: unknown tensor kind '%s'", s.c_str());
}

const char*
opToken(OpKind k)
{
    return opKindName(k);
}

OpKind
opFromToken(const std::string& s)
{
    for (int i = 0; i <= static_cast<int>(OpKind::Embedding); ++i) {
        auto k = static_cast<OpKind>(i);
        if (s == opKindName(k))
            return k;
    }
    fatal("trace: unknown op kind '%s'", s.c_str());
}

std::vector<TensorId>
parseIdList(const std::string& field, const char* prefix)
{
    std::vector<TensorId> out;
    std::string body = field.substr(std::string(prefix).size());
    if (body.empty() || body == "-")
        return out;
    std::stringstream ss(body);
    std::string tok;
    while (std::getline(ss, tok, ','))
        out.push_back(static_cast<TensorId>(std::stol(tok)));
    return out;
}

std::string
idList(const std::vector<TensorId>& ids)
{
    if (ids.empty())
        return "-";
    std::string out;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i)
            out += ",";
        out += std::to_string(ids[i]);
    }
    return out;
}

}  // namespace

void
writeTrace(std::ostream& os, const KernelTrace& trace)
{
    os << "# g10 kernel trace v1\n";
    os << "trace " << trace.modelName() << " " << trace.batchSize()
       << "\n";
    for (const auto& t : trace.tensors())
        os << "tensor " << t.id << " " << kindToken(t.kind) << " "
           << t.bytes << " " << t.name << "\n";
    for (const auto& k : trace.kernels())
        os << "kernel " << k.id << " " << opToken(k.kind) << " "
           << k.durationNs << " in=" << idList(k.inputs)
           << " out=" << idList(k.outputs)
           << " ws=" << idList(k.workspace) << " " << k.name << "\n";
    os.flush();
}

KernelTrace
readTrace(std::istream& is)
{
    KernelTrace trace;
    std::string line;
    std::size_t lineno = 0;
    bool have_header = false;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::stringstream ss(line);
        std::string tag;
        ss >> tag;
        if (tag == "trace") {
            std::string name;
            int batch = 0;
            ss >> name >> batch;
            if (name.empty() || batch < 1)
                fatal("trace line %zu: bad header", lineno);
            trace.setModelName(name);
            trace.setBatchSize(batch);
            have_header = true;
        } else if (tag == "tensor") {
            long id;
            std::string kind;
            unsigned long long bytes;
            std::string name;
            ss >> id >> kind >> bytes >> name;
            if (!ss || name.empty())
                fatal("trace line %zu: bad tensor", lineno);
            TensorId got = trace.addTensor(name, bytes,
                                           kindFromToken(kind));
            if (got != static_cast<TensorId>(id))
                fatal("trace line %zu: tensor ids must be dense "
                      "(expected %d, got %ld)", lineno, got, id);
        } else if (tag == "kernel") {
            long id;
            std::string op;
            long long dur;
            std::string in_f, out_f, ws_f, name;
            ss >> id >> op >> dur >> in_f >> out_f >> ws_f >> name;
            if (!ss || name.empty())
                fatal("trace line %zu: bad kernel", lineno);
            Kernel k;
            k.name = name;
            k.kind = opFromToken(op);
            k.durationNs = dur;
            k.inputs = parseIdList(in_f, "in=");
            k.outputs = parseIdList(out_f, "out=");
            k.workspace = parseIdList(ws_f, "ws=");
            KernelId got = trace.addKernel(std::move(k));
            if (got != static_cast<KernelId>(id))
                fatal("trace line %zu: kernel ids must be dense",
                      lineno);
        } else {
            fatal("trace line %zu: unknown tag '%s'", lineno,
                  tag.c_str());
        }
    }
    if (!have_header)
        fatal("trace: missing 'trace <name> <batch>' header");
    trace.validate();
    return trace;
}

void
saveTraceFile(const std::string& path, const KernelTrace& trace)
{
    std::ofstream f(path);
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    writeTrace(f, trace);
}

KernelTrace
loadTraceFile(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open '%s'", path.c_str());
    return readTrace(f);
}

}  // namespace g10
