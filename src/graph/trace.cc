#include "trace.h"

#include <algorithm>

#include "common/logging.h"

namespace g10 {

const char*
tensorKindName(TensorKind kind)
{
    switch (kind) {
      case TensorKind::Weight: return "weight";
      case TensorKind::WeightGrad: return "weight_grad";
      case TensorKind::Activation: return "activation";
      case TensorKind::ActivationGrad: return "activation_grad";
      case TensorKind::Workspace: return "workspace";
    }
    return "?";
}

const char*
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::DataLoad: return "DataLoad";
      case OpKind::Conv2d: return "Conv2d";
      case OpKind::ConvBackward: return "ConvBackward";
      case OpKind::Gemm: return "Gemm";
      case OpKind::BatchNorm: return "BatchNorm";
      case OpKind::LayerNorm: return "LayerNorm";
      case OpKind::Activation: return "Activation";
      case OpKind::Pool: return "Pool";
      case OpKind::Softmax: return "Softmax";
      case OpKind::Attention: return "Attention";
      case OpKind::Elementwise: return "Elementwise";
      case OpKind::Reduce: return "Reduce";
      case OpKind::Optimizer: return "Optimizer";
      case OpKind::Embedding: return "Embedding";
    }
    return "?";
}

std::vector<TensorId>
Kernel::allTensors() const
{
    std::vector<TensorId> all;
    all.reserve(inputs.size() + outputs.size() + workspace.size());
    all.insert(all.end(), inputs.begin(), inputs.end());
    all.insert(all.end(), outputs.begin(), outputs.end());
    all.insert(all.end(), workspace.begin(), workspace.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all;
}

TensorId
KernelTrace::addTensor(std::string name, Bytes bytes, TensorKind kind)
{
    Tensor t;
    t.id = static_cast<TensorId>(tensors_.size());
    t.name = std::move(name);
    t.bytes = bytes;
    t.kind = kind;
    tensors_.push_back(std::move(t));
    return tensors_.back().id;
}

KernelId
KernelTrace::addKernel(Kernel kernel)
{
    kernel.id = static_cast<KernelId>(kernels_.size());
    kernels_.push_back(std::move(kernel));
    std::atomic_store(&useIndex_,
                      std::shared_ptr<const TraceUseIndex>());
    return kernels_.back().id;
}

const TraceUseIndex&
KernelTrace::useIndex() const
{
    std::shared_ptr<const TraceUseIndex> idx =
        std::atomic_load(&useIndex_);
    if (idx != nullptr)
        return *idx;

    auto built = std::make_shared<TraceUseIndex>();
    built->uses = buildUseLists();
    built->kernelTensorsOff.reserve(kernels_.size() + 1);
    built->kernelTensorsOff.push_back(0);
    for (const Kernel& k : kernels_) {
        std::vector<TensorId> all = k.allTensors();
        built->kernelTensors.insert(built->kernelTensors.end(),
                                    all.begin(), all.end());
        built->kernelTensorsOff.push_back(
            static_cast<std::uint32_t>(built->kernelTensors.size()));
    }

    // First publisher wins; a losing racer built an identical index
    // and returns the winner's (kept alive by the member).
    std::shared_ptr<const TraceUseIndex> expected;
    std::shared_ptr<const TraceUseIndex> publish = std::move(built);
    if (std::atomic_compare_exchange_strong(&useIndex_, &expected,
                                            publish))
        return *publish;
    return *expected;
}

const Tensor&
KernelTrace::tensor(TensorId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= tensors_.size())
        panic("tensor id %d out of range (have %zu)", id, tensors_.size());
    return tensors_[static_cast<std::size_t>(id)];
}

Tensor&
KernelTrace::tensor(TensorId id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= tensors_.size())
        panic("tensor id %d out of range (have %zu)", id, tensors_.size());
    return tensors_[static_cast<std::size_t>(id)];
}

const Kernel&
KernelTrace::kernel(KernelId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= kernels_.size())
        panic("kernel id %d out of range (have %zu)", id, kernels_.size());
    return kernels_[static_cast<std::size_t>(id)];
}

TimeNs
KernelTrace::totalComputeNs() const
{
    TimeNs total = 0;
    for (const auto& k : kernels_)
        total += k.durationNs;
    return total;
}

void
KernelTrace::scaleDurations(double factor)
{
    if (factor <= 0.0)
        panic("scaleDurations: non-positive factor %g", factor);
    for (auto& k : kernels_) {
        auto scaled = static_cast<TimeNs>(
            static_cast<double>(k.durationNs) * factor);
        k.durationNs = std::max<TimeNs>(scaled, 1000);
    }
}

std::vector<TimeNs>
KernelTrace::idealStartTimes(TimeNs launch_overhead) const
{
    std::vector<TimeNs> starts(kernels_.size() + 1, 0);
    TimeNs t = 0;
    for (std::size_t i = 0; i < kernels_.size(); ++i) {
        starts[i] = t;
        t += kernels_[i].durationNs + launch_overhead;
    }
    starts[kernels_.size()] = t;
    return starts;
}

std::vector<std::vector<KernelId>>
KernelTrace::buildUseLists() const
{
    std::vector<std::vector<KernelId>> uses(tensors_.size());
    for (const auto& k : kernels_) {
        for (TensorId t : k.allTensors())
            uses[static_cast<std::size_t>(t)].push_back(k.id);
    }
    return uses;
}

Bytes
KernelTrace::totalTensorBytes() const
{
    Bytes total = 0;
    for (const auto& t : tensors_)
        total += t.bytes;
    return total;
}

Bytes
KernelTrace::peakKernelWorkingSet() const
{
    Bytes peak = 0;
    for (const auto& k : kernels_) {
        Bytes ws = 0;
        for (TensorId t : k.allTensors())
            ws += tensor(t).bytes;
        peak = std::max(peak, ws);
    }
    return peak;
}

void
KernelTrace::validate() const
{
    std::vector<bool> written(tensors_.size(), false);
    for (const auto& k : kernels_) {
        if (k.durationNs < 0)
            panic("kernel %d has negative duration", k.id);
        for (TensorId t : k.allTensors()) {
            if (t < 0 || static_cast<std::size_t>(t) >= tensors_.size())
                panic("kernel %d references bad tensor %d", k.id, t);
        }
        for (TensorId t : k.inputs) {
            const auto& ten = tensors_[static_cast<std::size_t>(t)];
            if (!written[static_cast<std::size_t>(t)] && !ten.isGlobal())
                panic("kernel %d (%s) reads tensor %d (%s) before any "
                      "kernel wrote it", k.id, k.name.c_str(), t,
                      ten.name.c_str());
        }
        for (TensorId t : k.outputs)
            written[static_cast<std::size_t>(t)] = true;
        for (TensorId t : k.workspace)
            written[static_cast<std::size_t>(t)] = true;
    }
    for (const auto& t : tensors_) {
        if (t.bytes == 0)
            panic("tensor %d (%s) has zero size", t.id, t.name.c_str());
    }
}

}  // namespace g10
