/**
 * @file
 * Tensor metadata as seen by the G10 compiler passes.
 *
 * G10 never touches tensor *contents*; everything it needs is the size,
 * the role of the tensor in training (weight vs. activation vs. gradient
 * vs. scratch), and -- derived later by the vitality analyzer -- the
 * points in the kernel stream where the tensor is used.
 */

#ifndef G10_GRAPH_TENSOR_H
#define G10_GRAPH_TENSOR_H

#include <string>

#include "common/types.h"

namespace g10 {

/** Role of a tensor within one training iteration. */
enum class TensorKind
{
    Weight,          ///< model parameter; lives across iterations (global)
    WeightGrad,      ///< dW; born in backward, dead after optimizer step
    Activation,      ///< forward intermediate (includes network inputs)
    ActivationGrad,  ///< dA; born and dead within the backward pass
    Workspace,       ///< kernel scratch (e.g. conv algo workspace)
};

/** Human-readable kind name (for instrumented listings and reports). */
const char* tensorKindName(TensorKind kind);

/**
 * One tensor in a DNN program.
 *
 * Matches the paper's §4.2 taxonomy: tensors whose lifetime spans
 * iterations are "global" (weights); everything else is "intermediate"
 * and can be freed at death.
 */
struct Tensor
{
    TensorId id = kInvalidTensor;
    std::string name;
    Bytes bytes = 0;
    TensorKind kind = TensorKind::Activation;

    /** Global tensors persist across training iterations (§4.2). */
    bool
    isGlobal() const
    {
        return kind == TensorKind::Weight;
    }
};

}  // namespace g10

#endif  // G10_GRAPH_TENSOR_H
