/**
 * @file
 * Plain-text serialization of kernel traces.
 *
 * The paper's artifact ships profiled DNN traces as files and replays
 * them; this gives the same workflow: models built once (or profiled
 * elsewhere) can be saved, inspected, diffed, and re-simulated without
 * rebuilding, and users can hand-write custom workloads.
 *
 * Format (line oriented, '#' comments):
 *   trace <model_name> <batch_size>
 *   tensor <id> <kind> <bytes> <name>
 *   kernel <id> <op_kind> <duration_ns> in=<a,b,...> out=<c,...> \
 *          ws=<d,...> <name>
 */

#ifndef G10_GRAPH_TRACE_IO_H
#define G10_GRAPH_TRACE_IO_H

#include <iosfwd>
#include <string>

#include "graph/trace.h"

namespace g10 {

/** Serialize @p trace to @p os. */
void writeTrace(std::ostream& os, const KernelTrace& trace);

/**
 * Parse a trace from @p is. fatal() on malformed input (user error).
 * The result is validated before returning.
 */
KernelTrace readTrace(std::istream& is);

/** Convenience file wrappers (fatal() when the file cannot be used). */
void saveTraceFile(const std::string& path, const KernelTrace& trace);
KernelTrace loadTraceFile(const std::string& path);

}  // namespace g10

#endif  // G10_GRAPH_TRACE_IO_H
