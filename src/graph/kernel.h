/**
 * @file
 * One CUDA-kernel-equivalent unit of the replayable execution trace.
 */

#ifndef G10_GRAPH_KERNEL_H
#define G10_GRAPH_KERNEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace g10 {

/** Operator class a kernel implements; drives the roofline cost model. */
enum class OpKind
{
    DataLoad,    ///< host->GPU input batch materialization
    Conv2d,
    ConvBackward,
    Gemm,        ///< dense matmul (fwd or bwd)
    BatchNorm,
    LayerNorm,
    Activation,  ///< ReLU/GELU/sigmoid-style elementwise
    Pool,
    Softmax,
    Attention,   ///< fused attention score/context kernels
    Elementwise, ///< add/mul/scale/copy/concat
    Reduce,      ///< global pooling / loss reduction
    Optimizer,   ///< SGD parameter update
    Embedding,
};

/** Human-readable op-kind name. */
const char* opKindName(OpKind kind);

/**
 * One kernel in execution order.
 *
 * `inputs` must be resident when the kernel runs; `outputs` are allocated
 * at kernel start (their first use); `workspace` tensors are scratch that
 * is live only during this kernel.
 */
struct Kernel
{
    KernelId id = kInvalidKernel;
    std::string name;
    OpKind kind = OpKind::Elementwise;

    /** Profiled/modeled execution time, excluding launch overhead. */
    TimeNs durationNs = 0;

    /** Floating-point work (for the cost model / reports). */
    double flops = 0.0;

    /** DRAM bytes moved (for the cost model / reports). */
    double memBytes = 0.0;

    std::vector<TensorId> inputs;
    std::vector<TensorId> outputs;
    std::vector<TensorId> workspace;

    /** All tensors this kernel touches (inputs + outputs + workspace). */
    std::vector<TensorId> allTensors() const;
};

}  // namespace g10

#endif  // G10_GRAPH_KERNEL_H
