#include "cost_model.h"

#include <algorithm>

namespace g10 {

double
CostModel::flopEfficiency(OpKind kind)
{
    switch (kind) {
      case OpKind::Gemm: return 0.62;
      case OpKind::Conv2d: return 0.55;
      case OpKind::ConvBackward: return 0.50;
      case OpKind::Attention: return 0.45;
      default: return 0.25;  // non-GEMM kernels rarely near peak
    }
}

double
CostModel::memEfficiency(OpKind kind)
{
    switch (kind) {
      case OpKind::Elementwise:
      case OpKind::Activation: return 0.82;
      case OpKind::BatchNorm:
      case OpKind::LayerNorm: return 0.70;
      case OpKind::Softmax: return 0.65;
      case OpKind::Pool: return 0.70;
      case OpKind::Reduce: return 0.60;
      case OpKind::Optimizer: return 0.80;
      case OpKind::Embedding: return 0.50;
      case OpKind::DataLoad: return 0.85;
      default: return 0.60;
    }
}

TimeNs
CostModel::kernelTime(OpKind kind, double flops, double bytes) const
{
    double flop_time_ns = 0.0;
    if (flops > 0.0)
        flop_time_ns = flops / (peakFlops_ * flopEfficiency(kind)) * 1e9;
    double mem_time_ns = 0.0;
    if (bytes > 0.0)
        mem_time_ns = bytes / (hbmGBps_ * memEfficiency(kind));

    // Even trivial kernels occupy the GPU for a couple of microseconds.
    constexpr double kFloorNs = 2000.0;
    double ns = std::max({flop_time_ns, mem_time_ns, kFloorNs});
    return static_cast<TimeNs>(ns);
}

}  // namespace g10
