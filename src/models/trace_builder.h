/**
 * @file
 * Autograd-tape trace builder.
 *
 * Model definitions emit *forward* operators through this builder; the
 * builder records a tape and, at finish(), synthesizes the full backward
 * pass (activation gradients, weight gradients, gradient accumulation at
 * dataflow joins -- cf. the paper's Fig. 6) plus SGD optimizer kernels,
 * yielding the complete one-iteration KernelTrace the vitality analyzer
 * and simulator consume.
 */

#ifndef G10_MODELS_TRACE_BUILDER_H
#define G10_MODELS_TRACE_BUILDER_H

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/trace.h"
#include "models/cost_model.h"

namespace g10 {

/** Description of one forward operator for TraceBuilder::op(). */
struct OpSpec
{
    OpKind kind = OpKind::Elementwise;
    std::string name;

    /** Activation tensors the op reads. */
    std::vector<TensorId> inputs;

    /** Weight tensors the op reads (each yields a dW in backward). */
    std::vector<TensorId> weights;

    /** Size of the forward output tensor. */
    Bytes outBytes = 0;

    /** Forward floating-point work. */
    double flops = 0.0;

    /** Scratch bytes live only during the forward kernel. */
    Bytes workspaceBytes = 0;

    /** Scratch bytes live only during the backward kernel. */
    Bytes bwdWorkspaceBytes = 0;

    /** Backward flops as a multiple of forward flops (typically ~2x). */
    double bwdFlopsFactor = 2.0;

    /**
     * Per-input flag: does this input receive a gradient? Empty means
     * "all true". Raw network inputs never receive gradients regardless.
     */
    std::vector<bool> inputNeedsGrad;

    /**
     * Per-input flag: is this input kept alive and re-read by the
     * backward kernel? Empty means "all true". ReLU/softmax-style ops
     * set this false and use the output instead, which lets the input
     * die right after the forward kernel -- exactly what eager
     * frameworks do and a major driver of real lifetime patterns.
     */
    std::vector<bool> inputSavedForBwd;

    /** Backward re-reads the forward *output* (ReLU, softmax, ...). */
    bool outputUsedInBwd = false;

    /**
     * Pure routing ops (residual add): backward is a no-op; the output
     * gradient tensor itself flows to every grad-needing input, as with
     * framework view/alias semantics. No backward kernel is emitted.
     */
    bool gradPassthrough = false;

    /**
     * Extra side output saved for backward (dropout mask, BN saved
     * mean/var). Born at the forward kernel, last used by the backward
     * kernel.
     */
    Bytes extraSavedBytes = 0;

    /** If false the op participates in forward only (e.g. metrics). */
    bool differentiable = true;
};

/**
 * Builds a one-training-iteration kernel trace from forward-op calls.
 *
 * Usage:
 * @code
 *   TraceBuilder b("MyNet", batch, CostModel());
 *   TensorId x = b.input("x", bytes);
 *   TensorId w = b.weight("w", bytes);
 *   TensorId y = b.op({.kind=OpKind::Gemm, .name="fc",
 *                      .inputs={x}, .weights={w},
 *                      .outBytes=..., .flops=...});
 *   b.loss(y);
 *   KernelTrace trace = b.finish();
 * @endcode
 */
class TraceBuilder
{
  public:
    TraceBuilder(std::string model_name, int batch_size,
                 const CostModel& cost_model);

    /** Network input; emits a DataLoad kernel that materializes it. */
    TensorId input(const std::string& name, Bytes bytes);

    /** Model parameter (global tensor; no producing kernel). */
    TensorId weight(const std::string& name, Bytes bytes);

    /** Emit one forward operator; returns its output tensor. */
    TensorId op(const OpSpec& spec);

    /**
     * Mark @p logits as a training loss head: emits the loss-forward
     * reduction kernel and seeds the backward chain with d(logits).
     * May be called more than once (auxiliary heads).
     */
    void loss(TensorId logits);

    /**
     * Emit the backward pass and optimizer, then return the finished
     * trace. The builder must not be reused afterwards.
     */
    KernelTrace finish();

    /** Access to the under-construction trace (for size queries). */
    const KernelTrace& trace() const { return trace_; }

    /** Bytes of one FP32 element. */
    static constexpr Bytes kElem = 4;

  private:
    struct TapeEntry
    {
        OpKind kind;
        std::string name;
        std::vector<TensorId> inputs;
        std::vector<TensorId> weights;
        TensorId output;
        TensorId extraSaved;  // kInvalidTensor if none
        double fwdFlops;
        double bwdFlopsFactor;
        Bytes bwdWorkspaceBytes;
        std::vector<bool> inputNeedsGrad;
        std::vector<bool> inputSavedForBwd;
        bool outputUsedInBwd;
        bool gradPassthrough;
    };

    /** Sum of sizes of the given tensors. */
    Bytes bytesOf(const std::vector<TensorId>& ids) const;

    /** Gradient tensor for @p t, creating on first request. */
    TensorId gradFor(TensorId t, TensorKind kind);

    /** Accumulate partial gradient @p partial into t's gradient slot. */
    void accumulateGrad(TensorId t, TensorId partial);

    KernelTrace trace_;
    CostModel costModel_;
    std::vector<TapeEntry> tape_;
    std::vector<TensorId> weights_;
    std::vector<TensorId> networkInputs_;

    // Activation -> accumulated gradient tensor (during backward build).
    std::unordered_map<TensorId, TensorId> gradOf_;
    // Weight -> accumulated weight-gradient tensor.
    std::unordered_map<TensorId, TensorId> weightGradOf_;

    bool finished_ = false;
    bool lossSeeded_ = false;
};

}  // namespace g10

#endif  // G10_MODELS_TRACE_BUILDER_H
