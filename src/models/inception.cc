/**
 * @file
 * Inception v3 (Szegedy et al., CVPR'16) trace builder, following the
 * torchvision layout on 299x299 inputs, including the factorized 1x7/7x1
 * convolutions, the branch/concat dataflow joins the paper's §3 calls out,
 * and the auxiliary classifier head used during training.
 */

#include <string>
#include <vector>

#include "models/layers.h"
#include "models/model_zoo.h"

namespace g10 {

namespace {

FMap
inceptionA(CnnBuilder& c, const FMap& in, int pool_features,
           const std::string& name)
{
    FMap b1 = c.convBnRelu(in, 64, 1, 1, 0, name + "_1x1");

    FMap b5 = c.convBnRelu(in, 48, 1, 1, 0, name + "_5x5a");
    b5 = c.convBnRelu(b5, 64, 5, 1, 2, name + "_5x5b");

    FMap b3 = c.convBnRelu(in, 64, 1, 1, 0, name + "_3x3a");
    b3 = c.convBnRelu(b3, 96, 3, 1, 1, name + "_3x3b");
    b3 = c.convBnRelu(b3, 96, 3, 1, 1, name + "_3x3c");

    FMap bp = c.avgPool(in, 3, 1, 1, name + "_pool");
    bp = c.convBnRelu(bp, pool_features, 1, 1, 0, name + "_pool_proj");

    return c.concat({b1, b5, b3, bp}, name + "_concat");
}

FMap
inceptionB(CnnBuilder& c, const FMap& in, const std::string& name)
{
    FMap b3 = c.convBnRelu(in, 384, 3, 2, 0, name + "_3x3");

    FMap bd = c.convBnRelu(in, 64, 1, 1, 0, name + "_dbl_a");
    bd = c.convBnRelu(bd, 96, 3, 1, 1, name + "_dbl_b");
    bd = c.convBnRelu(bd, 96, 3, 2, 0, name + "_dbl_c");

    FMap bp = c.maxPool(in, 3, 2, 0, name + "_pool");
    return c.concat({b3, bd, bp}, name + "_concat");
}

/** Factorized 7x7 tower: 1x1 then alternating 1x7 / 7x1 convolutions. */
FMap
sevenTower(CnnBuilder& c, const FMap& in, int mid, int out, int pairs,
           const std::string& name)
{
    FMap x = c.convBnRelu(in, mid, 1, 1, 0, name + "_reduce");
    for (int i = 0; i < pairs; ++i) {
        bool last = (i == pairs - 1);
        int c17 = last ? out : mid;
        x = c.convRect(x, mid, 1, 7, 1, 0, 3,
                       name + "_1x7_" + std::to_string(i) + "_conv");
        x = c.batchNorm(x, name + "_1x7_" + std::to_string(i) + "_bn");
        x = c.relu(x, name + "_1x7_" + std::to_string(i) + "_relu");
        x = c.convRect(x, c17, 7, 1, 1, 3, 0,
                       name + "_7x1_" + std::to_string(i) + "_conv");
        x = c.batchNorm(x, name + "_7x1_" + std::to_string(i) + "_bn");
        x = c.relu(x, name + "_7x1_" + std::to_string(i) + "_relu");
    }
    return x;
}

FMap
inceptionC(CnnBuilder& c, const FMap& in, int c7, const std::string& name)
{
    FMap b1 = c.convBnRelu(in, 192, 1, 1, 0, name + "_1x1");
    FMap b7 = sevenTower(c, in, c7, 192, 1, name + "_t7");
    FMap b7d = sevenTower(c, in, c7, 192, 2, name + "_t7dbl");
    FMap bp = c.avgPool(in, 3, 1, 1, name + "_pool");
    bp = c.convBnRelu(bp, 192, 1, 1, 0, name + "_pool_proj");
    return c.concat({b1, b7, b7d, bp}, name + "_concat");
}

FMap
inceptionD(CnnBuilder& c, const FMap& in, const std::string& name)
{
    FMap b3 = c.convBnRelu(in, 192, 1, 1, 0, name + "_3x3a");
    b3 = c.convBnRelu(b3, 320, 3, 2, 0, name + "_3x3b");

    FMap b7 = sevenTower(c, in, 192, 192, 1, name + "_t7");
    b7 = c.convBnRelu(b7, 192, 3, 2, 0, name + "_t7_down");

    FMap bp = c.maxPool(in, 3, 2, 0, name + "_pool");
    return c.concat({b3, b7, bp}, name + "_concat");
}

FMap
inceptionE(CnnBuilder& c, const FMap& in, const std::string& name)
{
    FMap b1 = c.convBnRelu(in, 320, 1, 1, 0, name + "_1x1");

    FMap b3 = c.convBnRelu(in, 384, 1, 1, 0, name + "_3x3");
    FMap b3a = c.convRect(b3, 384, 1, 3, 1, 0, 1, name + "_3x3_1x3");
    b3a = c.batchNorm(b3a, name + "_3x3_1x3_bn");
    b3a = c.relu(b3a, name + "_3x3_1x3_relu");
    FMap b3b = c.convRect(b3, 384, 3, 1, 1, 1, 0, name + "_3x3_3x1");
    b3b = c.batchNorm(b3b, name + "_3x3_3x1_bn");
    b3b = c.relu(b3b, name + "_3x3_3x1_relu");
    FMap b3cat = c.concat({b3a, b3b}, name + "_3x3_concat");

    FMap bd = c.convBnRelu(in, 448, 1, 1, 0, name + "_dbl_a");
    bd = c.convBnRelu(bd, 384, 3, 1, 1, name + "_dbl_b");
    FMap bda = c.convRect(bd, 384, 1, 3, 1, 0, 1, name + "_dbl_1x3");
    bda = c.batchNorm(bda, name + "_dbl_1x3_bn");
    bda = c.relu(bda, name + "_dbl_1x3_relu");
    FMap bdb = c.convRect(bd, 384, 3, 1, 1, 1, 0, name + "_dbl_3x1");
    bdb = c.batchNorm(bdb, name + "_dbl_3x1_bn");
    bdb = c.relu(bdb, name + "_dbl_3x1_relu");
    FMap bdcat = c.concat({bda, bdb}, name + "_dbl_concat");

    FMap bp = c.avgPool(in, 3, 1, 1, name + "_pool");
    bp = c.convBnRelu(bp, 192, 1, 1, 0, name + "_pool_proj");

    return c.concat({b1, b3cat, bdcat, bp}, name + "_concat");
}

}  // namespace

KernelTrace
buildInceptionv3(int batch, const CostModel& cm, Bytes ws_cap)
{
    TraceBuilder b("Inceptionv3", batch, cm);
    CnnBuilder c(b, batch, ws_cap);

    FMap x = c.input(3, 299, 299, "image");
    x = c.convBnRelu(x, 32, 3, 2, 0, "stem_a");    // 149
    x = c.convBnRelu(x, 32, 3, 1, 0, "stem_b");    // 147
    x = c.convBnRelu(x, 64, 3, 1, 1, "stem_c");    // 147
    x = c.maxPool(x, 3, 2, 0, "stem_pool1");       // 73
    x = c.convBnRelu(x, 80, 1, 1, 0, "stem_d");    // 73
    x = c.convBnRelu(x, 192, 3, 1, 0, "stem_e");   // 71
    x = c.maxPool(x, 3, 2, 0, "stem_pool2");       // 35

    x = inceptionA(c, x, 32, "mixed5b");   // 256
    x = inceptionA(c, x, 64, "mixed5c");   // 288
    x = inceptionA(c, x, 64, "mixed5d");   // 288
    x = inceptionB(c, x, "mixed6a");       // 768, 17x17
    x = inceptionC(c, x, 128, "mixed6b");
    x = inceptionC(c, x, 160, "mixed6c");
    x = inceptionC(c, x, 160, "mixed6d");
    x = inceptionC(c, x, 192, "mixed6e");

    // Auxiliary classifier (training mode), off mixed6e.
    FMap aux = c.avgPool(x, 5, 3, 0, "aux_pool");
    aux = c.convBnRelu(aux, 128, 1, 1, 0, "aux_proj");
    aux = c.convBnRelu(aux, 768, 5, 1, 0, "aux_conv");
    FMap aux_logits = c.fc(aux, 1000, "aux_fc");
    b.loss(aux_logits.t);

    x = inceptionD(c, x, "mixed7a");       // 1280, 8x8
    x = inceptionE(c, x, "mixed7b");       // 2048
    x = inceptionE(c, x, "mixed7c");       // 2048

    x = c.globalAvgPool(x, "gap");
    FMap logits = c.fc(x, 1000, "fc");
    b.loss(logits.t);
    return b.finish();
}

}  // namespace g10
