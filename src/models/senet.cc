/**
 * @file
 * SENet-154 (Hu et al., CVPR'18) trace builder: grouped-bottleneck
 * ResNeXt-style blocks [3, 8, 36, 3] with squeeze-and-excitation gates.
 * The SE branches contribute the swarm of tiny (<4 KB .. few-hundred-KB)
 * tensors visible in the paper's Fig. 4 size distribution.
 */

#include <string>

#include "models/layers.h"
#include "models/model_zoo.h"

namespace g10 {

namespace {

/** Squeeze-and-excitation gate: GAP -> FC/16 -> ReLU -> FC -> sigmoid. */
FMap
seGate(CnnBuilder& c, const FMap& in, const std::string& name)
{
    FMap s = c.globalAvgPool(in, name + "_squeeze");
    s = c.fc(s, in.c / 16, name + "_fc1");
    s = c.relu(s, name + "_relu");
    s = c.fc(s, in.c, name + "_fc2");
    return c.sigmoid(s, name + "_gate");
}

FMap
seBottleneck(CnnBuilder& c, const FMap& in, int planes, int stride,
             bool project, const std::string& name)
{
    // SENet-154 uses double-width grouped 3x3 convolutions (groups=64).
    int width = planes * 2;
    FMap x = c.convBnRelu(in, width, 1, 1, 0, name + "_a");
    x = c.convBnRelu(x, width, 3, stride, 1, name + "_b", /*groups=*/64);
    x = c.conv(x, planes * 4, 1, 1, 0, name + "_c_conv");
    x = c.batchNorm(x, name + "_c_bn");

    FMap gate = seGate(c, x, name + "_se");
    x = c.channelScale(x, gate, name + "_se_scale");

    FMap shortcut = in;
    if (project) {
        shortcut = c.conv(in, planes * 4, 3, stride, 1,
                          name + "_down_conv");
        shortcut = c.batchNorm(shortcut, name + "_down_bn");
    }
    FMap sum = c.add(x, shortcut, name + "_add");
    return c.relu(sum, name + "_relu");
}

}  // namespace

KernelTrace
buildSENet154(int batch, const CostModel& cm, Bytes ws_cap)
{
    TraceBuilder b("SENet154", batch, cm);
    CnnBuilder c(b, batch, ws_cap);

    FMap x = c.input(3, 224, 224, "image");
    // SENet-154 stem: three 3x3 convolutions.
    x = c.convBnRelu(x, 64, 3, 2, 1, "stem_a");
    x = c.convBnRelu(x, 64, 3, 1, 1, "stem_b");
    x = c.convBnRelu(x, 128, 3, 1, 1, "stem_c");
    x = c.maxPool(x, 3, 2, 1, "stem_pool");

    struct Stage { int blocks; int planes; int stride; };
    const Stage stages[] = {
        {3, 64, 1}, {8, 128, 2}, {36, 256, 2}, {3, 512, 2},
    };

    for (int si = 0; si < 4; ++si) {
        const Stage& st = stages[si];
        for (int bi = 0; bi < st.blocks; ++bi) {
            bool first = (bi == 0);
            int stride = first ? st.stride : 1;
            std::string name = "stage" + std::to_string(si + 1) + "_" +
                               std::to_string(bi);
            x = seBottleneck(c, x, st.planes, stride, first, name);
        }
    }

    x = c.globalAvgPool(x, "gap");
    FMap logits = c.fc(x, 1000, "fc");
    b.loss(logits.t);
    return b.finish();
}

}  // namespace g10
