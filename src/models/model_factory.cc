#include <algorithm>
#include <cctype>

#include "common/logging.h"
#include "models/model_zoo.h"

namespace g10 {

const char*
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::BertBase: return "BERT_Base";
      case ModelKind::ViT: return "ViT";
      case ModelKind::Inceptionv3: return "Inceptionv3";
      case ModelKind::ResNet152: return "ResNet152";
      case ModelKind::SENet154: return "SENet154";
    }
    return "?";
}

bool
tryModelKindFromName(const std::string& name, ModelKind* out)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    if (lower == "bert" || lower == "bert_base" || lower == "bertbase")
        *out = ModelKind::BertBase;
    else if (lower == "vit")
        *out = ModelKind::ViT;
    else if (lower == "inceptionv3" || lower == "inception")
        *out = ModelKind::Inceptionv3;
    else if (lower == "resnet152" || lower == "resnet")
        *out = ModelKind::ResNet152;
    else if (lower == "senet154" || lower == "senet")
        *out = ModelKind::SENet154;
    else
        return false;
    return true;
}

ModelKind
modelKindFromName(const std::string& name)
{
    ModelKind kind;
    if (!tryModelKindFromName(name, &kind))
        fatal("unknown model '%s' (expected BERT/ViT/Inceptionv3/"
              "ResNet152/SENet154)", name.c_str());
    return kind;
}

std::vector<ModelKind>
allModels()
{
    return {ModelKind::BertBase, ModelKind::ViT, ModelKind::Inceptionv3,
            ModelKind::ResNet152, ModelKind::SENet154};
}

int
paperBatchSize(ModelKind kind)
{
    switch (kind) {
      case ModelKind::BertBase: return 256;
      case ModelKind::ViT: return 1280;
      case ModelKind::Inceptionv3: return 1536;
      case ModelKind::ResNet152: return 1280;
      case ModelKind::SENet154: return 1024;
    }
    return 256;
}

TimeNs
paperIdealPerSampleNs(ModelKind kind)
{
    // Implied by the ideal curves of the paper's Fig. 15 (samples/sec at
    // the largest batch where the ideal is flat).
    switch (kind) {
      case ModelKind::BertBase: return static_cast<TimeNs>(18.2 * MSEC);
      case ModelKind::ViT: return static_cast<TimeNs>(6.0 * MSEC);
      case ModelKind::Inceptionv3:
        return static_cast<TimeNs>(30.0 * MSEC);
      case ModelKind::ResNet152: return static_cast<TimeNs>(83.0 * MSEC);
      case ModelKind::SENet154: return static_cast<TimeNs>(133.0 * MSEC);
    }
    return 10 * MSEC;
}

namespace {

/**
 * Pin the trace's total duration to the paper's profiled scale: the
 * roofline gives faithful relative kernel costs, and this multiplies all
 * of them so the ideal iteration matches paperIdealPerSampleNs().
 */
void
calibrate(KernelTrace& trace, ModelKind kind)
{
    TimeNs target = paperIdealPerSampleNs(kind) *
                    static_cast<TimeNs>(trace.batchSize());
    TimeNs modeled = trace.totalComputeNs();
    if (modeled <= 0)
        return;
    trace.scaleDurations(static_cast<double>(target) /
                         static_cast<double>(modeled));
}

KernelTrace
buildModelImpl(ModelKind kind, int batch_size,
               const CostModel& cost_model, Bytes ws_cap)
{
    if (batch_size < 1)
        fatal("batch size must be >= 1 (got %d)", batch_size);
    switch (kind) {
      case ModelKind::BertBase:
        return buildBertBase(batch_size, cost_model);
      case ModelKind::ViT:
        return buildViT(batch_size, cost_model);
      case ModelKind::Inceptionv3:
        return buildInceptionv3(batch_size, cost_model, ws_cap);
      case ModelKind::ResNet152:
        return buildResNet152(batch_size, cost_model, ws_cap);
      case ModelKind::SENet154:
        return buildSENet154(batch_size, cost_model, ws_cap);
    }
    panic("unreachable model kind");
}

}  // namespace

KernelTrace
buildModel(ModelKind kind, int batch_size, const CostModel& cost_model)
{
    KernelTrace trace =
        buildModelImpl(kind, batch_size, cost_model, 4 * GiB);
    calibrate(trace, kind);
    return trace;
}

KernelTrace
buildModelScaled(ModelKind kind, int batch_size, unsigned scale_down,
                 const CostModel& cost_model)
{
    if (scale_down <= 1)
        return buildModel(kind, batch_size, cost_model);
    int scaled = std::max(1, batch_size / static_cast<int>(scale_down));
    Bytes ws_cap = std::max<Bytes>(4 * GiB / scale_down, 16 * MiB);
    KernelTrace trace =
        buildModelImpl(kind, scaled, cost_model, ws_cap);
    calibrate(trace, kind);
    return trace;
}

}  // namespace g10
