/**
 * @file
 * ResNet-152 (He et al., CVPR'16) trace builder: the torchvision layout
 * with bottleneck blocks [3, 8, 36, 3] on 224x224 inputs.
 */

#include <string>

#include "models/layers.h"
#include "models/model_zoo.h"

namespace g10 {

namespace {

/**
 * One bottleneck residual block: 1x1 reduce, 3x3, 1x1 expand, with a
 * projection shortcut when the shape changes.
 */
FMap
bottleneck(CnnBuilder& c, const FMap& in, int planes, int stride,
           bool project, const std::string& name)
{
    FMap x = c.convBnRelu(in, planes, 1, 1, 0, name + "_a");
    x = c.convBnRelu(x, planes, 3, stride, 1, name + "_b");
    x = c.conv(x, planes * 4, 1, 1, 0, name + "_c_conv");
    x = c.batchNorm(x, name + "_c_bn");

    FMap shortcut = in;
    if (project) {
        shortcut = c.conv(in, planes * 4, 1, stride, 0,
                          name + "_down_conv");
        shortcut = c.batchNorm(shortcut, name + "_down_bn");
    }
    FMap sum = c.add(x, shortcut, name + "_add");
    return c.relu(sum, name + "_relu");
}

}  // namespace

KernelTrace
buildResNet152(int batch, const CostModel& cm, Bytes ws_cap)
{
    TraceBuilder b("ResNet152", batch, cm);
    CnnBuilder c(b, batch, ws_cap);

    FMap x = c.input(3, 224, 224, "image");
    x = c.convBnRelu(x, 64, 7, 2, 3, "stem");
    x = c.maxPool(x, 3, 2, 1, "stem_pool");

    struct Stage { int blocks; int planes; int stride; };
    const Stage stages[] = {
        {3, 64, 1}, {8, 128, 2}, {36, 256, 2}, {3, 512, 2},
    };

    for (int si = 0; si < 4; ++si) {
        const Stage& st = stages[si];
        for (int bi = 0; bi < st.blocks; ++bi) {
            bool first = (bi == 0);
            int stride = first ? st.stride : 1;
            std::string name = "layer" + std::to_string(si + 1) + "_" +
                               std::to_string(bi);
            x = bottleneck(c, x, st.planes, stride, first, name);
        }
    }

    x = c.globalAvgPool(x, "gap");
    FMap logits = c.fc(x, 1000, "fc");
    b.loss(logits.t);
    return b.finish();
}

}  // namespace g10
