/**
 * @file
 * BERT-Base (Devlin et al., 2018) trace builder: 12 encoder layers,
 * hidden 768, 12 heads, sequence length 256, with a 2-class CoLA-style
 * classification head.
 *
 * Sequence length note: the HuggingFace CoLA fine-tune the paper profiles
 * pads to a fixed length; we use 256 so the memory-over-capacity ratio at
 * the paper's batch sizes lands in the same multi-hundred-percent regime
 * as Table 1/Fig. 11 (documented in EXPERIMENTS.md).
 */

#include "models/layers.h"
#include "models/model_zoo.h"

namespace g10 {

KernelTrace
buildBertBase(int batch, const CostModel& cm)
{
    constexpr int kSeqLen = 256;
    constexpr int kHidden = 768;
    constexpr int kHeads = 12;
    constexpr int kLayers = 12;
    constexpr int kVocab = 30522;

    TraceBuilder b("BERT_Base", batch, cm);
    SeqBuilder s(b, batch, kSeqLen, kHidden, kHeads);

    TensorId x = s.embeddings(kVocab, "emb");
    for (int i = 0; i < kLayers; ++i)
        x = s.encoderLayer(x, "layer" + std::to_string(i));

    TensorId logits = s.classifierHead(x, 2, "cls");
    b.loss(logits);
    return b.finish();
}

}  // namespace g10
