/**
 * @file
 * The five DNN training workloads of the paper's Table 1, built
 * structurally (layer by layer, forward + backward + optimizer) at a
 * requested batch size.
 *
 * A `scale_down` factor divides the batch size (and is meant to be paired
 * with SystemConfig::scaledDown) so the full evaluation sweeps finish in
 * minutes instead of the artifact's ~20 hours; memory-to-capacity ratios
 * and compute-to-transfer ratios are preserved.
 */

#ifndef G10_MODELS_MODEL_ZOO_H
#define G10_MODELS_MODEL_ZOO_H

#include <string>
#include <vector>

#include "graph/trace.h"
#include "models/cost_model.h"

namespace g10 {

/** The evaluated workloads (paper Table 1). */
enum class ModelKind
{
    BertBase,     ///< BERT-Base encoder, CoLA-style classification
    ViT,          ///< ViT-Base/16, ImageNet
    Inceptionv3,  ///< torchvision Inception v3, ImageNet
    ResNet152,    ///< torchvision ResNet-152, ImageNet
    SENet154,     ///< SENet-154, ImageNet
};

/** Canonical model name as used in the paper's figures. */
const char* modelName(ModelKind kind);

/** Parse a model name (case-insensitive); fatal() on unknown names. */
ModelKind modelKindFromName(const std::string& name);

/**
 * Non-fatal variant: false when @p name is not a zoo model (e.g. the
 * model name of a synthetic saved trace). @p out is untouched then.
 */
bool tryModelKindFromName(const std::string& name, ModelKind* out);

/** All five models, in the paper's figure order. */
std::vector<ModelKind> allModels();

/** The paper's Figure 11 batch size for each model. */
int paperBatchSize(ModelKind kind);

/**
 * Ideal (infinite-memory) per-sample training time implied by the
 * paper's Fig. 15 ideal curves, used to calibrate the roofline model's
 * absolute scale to the authors' A100 kernel profiles (the roofline
 * preserves per-kernel *relative* cost; this pins the total).
 */
TimeNs paperIdealPerSampleNs(ModelKind kind);

/** Build one full training-iteration trace. */
KernelTrace buildModel(ModelKind kind, int batch_size,
                       const CostModel& cost_model = CostModel());

/**
 * Build with batch divided by @p scale_down (floor 1). Pair with
 * SystemConfig::scaledDown(scale_down).
 */
KernelTrace buildModelScaled(ModelKind kind, int batch_size,
                             unsigned scale_down,
                             const CostModel& cost_model = CostModel());

// Individual builders (exposed for tests). `ws_cap` bounds cuDNN-style
// conv workspaces (scaled down together with the platform).
KernelTrace buildBertBase(int batch, const CostModel& cm);
KernelTrace buildViT(int batch, const CostModel& cm);
KernelTrace buildInceptionv3(int batch, const CostModel& cm,
                             Bytes ws_cap = 4 * GiB);
KernelTrace buildResNet152(int batch, const CostModel& cm,
                           Bytes ws_cap = 4 * GiB);
KernelTrace buildSENet154(int batch, const CostModel& cm,
                          Bytes ws_cap = 4 * GiB);

}  // namespace g10

#endif  // G10_MODELS_MODEL_ZOO_H
