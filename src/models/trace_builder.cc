#include "trace_builder.h"

#include <utility>

#include "common/logging.h"

namespace g10 {

TraceBuilder::TraceBuilder(std::string model_name, int batch_size,
                           const CostModel& cost_model)
    : costModel_(cost_model)
{
    trace_.setModelName(std::move(model_name));
    trace_.setBatchSize(batch_size);
}

Bytes
TraceBuilder::bytesOf(const std::vector<TensorId>& ids) const
{
    Bytes total = 0;
    for (TensorId t : ids)
        total += trace_.tensor(t).bytes;
    return total;
}

TensorId
TraceBuilder::input(const std::string& name, Bytes bytes)
{
    TensorId t = trace_.addTensor(name, bytes, TensorKind::Activation);
    Kernel k;
    k.name = "load_" + name;
    k.kind = OpKind::DataLoad;
    k.outputs = {t};
    k.memBytes = static_cast<double>(bytes);
    k.durationNs = costModel_.kernelTime(OpKind::DataLoad, 0.0, k.memBytes);
    trace_.addKernel(std::move(k));
    networkInputs_.push_back(t);
    return t;
}

TensorId
TraceBuilder::weight(const std::string& name, Bytes bytes)
{
    TensorId t = trace_.addTensor(name, bytes, TensorKind::Weight);
    weights_.push_back(t);
    return t;
}

TensorId
TraceBuilder::op(const OpSpec& spec)
{
    if (finished_)
        panic("TraceBuilder::op() after finish()");
    if (spec.outBytes == 0)
        panic("op '%s' has zero output size", spec.name.c_str());

    TensorId out = trace_.addTensor(spec.name + "_out", spec.outBytes,
                                    TensorKind::Activation);
    TensorId extra = kInvalidTensor;
    if (spec.extraSavedBytes > 0)
        extra = trace_.addTensor(spec.name + "_saved",
                                 spec.extraSavedBytes,
                                 TensorKind::Activation);

    Kernel k;
    k.name = spec.name;
    k.kind = spec.kind;
    k.inputs = spec.inputs;
    k.inputs.insert(k.inputs.end(), spec.weights.begin(),
                    spec.weights.end());
    k.outputs = {out};
    if (extra != kInvalidTensor)
        k.outputs.push_back(extra);
    if (spec.workspaceBytes > 0) {
        TensorId ws = trace_.addTensor(spec.name + "_ws",
                                       spec.workspaceBytes,
                                       TensorKind::Workspace);
        k.workspace = {ws};
    }
    k.flops = spec.flops;
    k.memBytes = static_cast<double>(
        bytesOf(spec.inputs) + bytesOf(spec.weights) + spec.outBytes +
        spec.extraSavedBytes);
    k.durationNs = costModel_.kernelTime(spec.kind, k.flops, k.memBytes);
    trace_.addKernel(std::move(k));

    if (spec.differentiable) {
        TapeEntry e;
        e.kind = spec.kind;
        e.name = spec.name;
        e.inputs = spec.inputs;
        e.weights = spec.weights;
        e.output = out;
        e.extraSaved = extra;
        e.fwdFlops = spec.flops;
        e.bwdFlopsFactor = spec.bwdFlopsFactor;
        e.bwdWorkspaceBytes = spec.bwdWorkspaceBytes;
        e.inputNeedsGrad = spec.inputNeedsGrad;
        e.inputSavedForBwd = spec.inputSavedForBwd;
        e.outputUsedInBwd = spec.outputUsedInBwd;
        e.gradPassthrough = spec.gradPassthrough;
        tape_.push_back(std::move(e));
    }
    return out;
}

void
TraceBuilder::loss(TensorId logits)
{
    const Bytes logits_bytes = trace_.tensor(logits).bytes;

    // Forward loss reduction (e.g. cross entropy) down to a scalar-ish
    // per-batch loss tensor.
    TensorId loss_t = trace_.addTensor(
        trace_.tensor(logits).name + "_loss",
        static_cast<Bytes>(trace_.batchSize()) * kElem,
        TensorKind::Activation);
    Kernel fwd;
    fwd.name = "loss_fwd";
    fwd.kind = OpKind::Reduce;
    fwd.inputs = {logits};
    fwd.outputs = {loss_t};
    fwd.memBytes = static_cast<double>(logits_bytes);
    fwd.flops = static_cast<double>(logits_bytes / kElem) * 4.0;
    fwd.durationNs = costModel_.kernelTime(fwd.kind, fwd.flops,
                                           fwd.memBytes);
    trace_.addKernel(std::move(fwd));

    // Seed the backward chain: d(logits) from the loss.
    TensorId dlogits = trace_.addTensor(
        "d_" + trace_.tensor(logits).name, logits_bytes,
        TensorKind::ActivationGrad);
    Kernel bwd;
    bwd.name = "loss_bwd";
    bwd.kind = OpKind::Softmax;
    bwd.inputs = {logits, loss_t};
    bwd.outputs = {dlogits};
    bwd.memBytes = static_cast<double>(2 * logits_bytes);
    bwd.flops = static_cast<double>(logits_bytes / kElem) * 6.0;
    bwd.durationNs = costModel_.kernelTime(bwd.kind, bwd.flops,
                                           bwd.memBytes);
    trace_.addKernel(std::move(bwd));

    accumulateGrad(logits, dlogits);
    lossSeeded_ = true;
}

void
TraceBuilder::accumulateGrad(TensorId t, TensorId partial)
{
    auto it = gradOf_.find(t);
    if (it == gradOf_.end()) {
        gradOf_.emplace(t, partial);
        return;
    }
    // Dataflow join (cf. paper Fig. 6): sum the partial gradients.
    Bytes bytes = trace_.tensor(partial).bytes;
    TensorId sum = trace_.addTensor(
        trace_.tensor(partial).name + "_acc", bytes,
        TensorKind::ActivationGrad);
    Kernel k;
    k.name = "grad_accum_" + trace_.tensor(t).name;
    k.kind = OpKind::Elementwise;
    k.inputs = {it->second, partial};
    k.outputs = {sum};
    k.memBytes = static_cast<double>(3 * bytes);
    k.flops = static_cast<double>(bytes / kElem);
    k.durationNs = costModel_.kernelTime(k.kind, k.flops, k.memBytes);
    trace_.addKernel(std::move(k));
    it->second = sum;
}

KernelTrace
TraceBuilder::finish()
{
    if (finished_)
        panic("TraceBuilder::finish() called twice");
    if (!lossSeeded_)
        panic("finish() without loss(); backward has no seed");
    finished_ = true;

    // ---- Backward pass: walk the tape in reverse. ----
    for (auto it = tape_.rbegin(); it != tape_.rend(); ++it) {
        const TapeEntry& e = *it;
        auto gout_it = gradOf_.find(e.output);
        if (gout_it == gradOf_.end()) {
            // Output never influenced the loss; nothing to do.
            debug("no gradient flows to op '%s'", e.name.c_str());
            continue;
        }
        TensorId g_out = gout_it->second;

        auto needs_grad = [&](std::size_t i) {
            bool wants = e.inputNeedsGrad.empty() || e.inputNeedsGrad[i];
            if (!wants)
                return false;
            TensorId x = e.inputs[i];
            for (TensorId ni : networkInputs_)
                if (ni == x)
                    return false;  // raw inputs receive no gradient
            return true;
        };

        if (e.gradPassthrough) {
            // Routing op: the output gradient itself flows to every
            // grad-needing input; no kernel runs.
            for (std::size_t i = 0; i < e.inputs.size(); ++i)
                if (needs_grad(i))
                    accumulateGrad(e.inputs[i], g_out);
            continue;
        }

        Kernel k;
        k.name = e.name + "_bwd";
        k.kind = (e.kind == OpKind::Conv2d) ? OpKind::ConvBackward : e.kind;
        for (std::size_t i = 0; i < e.inputs.size(); ++i) {
            bool saved = e.inputSavedForBwd.empty() ||
                         e.inputSavedForBwd[i];
            if (saved)
                k.inputs.push_back(e.inputs[i]);
        }
        k.inputs.insert(k.inputs.end(), e.weights.begin(), e.weights.end());
        if (e.extraSaved != kInvalidTensor)
            k.inputs.push_back(e.extraSaved);
        if (e.outputUsedInBwd)
            k.inputs.push_back(e.output);
        k.inputs.push_back(g_out);

        // Partial input gradients.
        std::vector<std::pair<TensorId, TensorId>> partials;
        for (std::size_t i = 0; i < e.inputs.size(); ++i) {
            if (!needs_grad(i))
                continue;
            TensorId x = e.inputs[i];
            TensorId dx = trace_.addTensor(
                "d_" + trace_.tensor(x).name,
                trace_.tensor(x).bytes, TensorKind::ActivationGrad);
            k.outputs.push_back(dx);
            partials.emplace_back(x, dx);
        }

        // Weight gradients (accumulated in place on shared weights).
        std::vector<std::pair<TensorId, TensorId>> wpartials;
        for (TensorId w : e.weights) {
            TensorId dw = trace_.addTensor(
                "d_" + trace_.tensor(w).name,
                trace_.tensor(w).bytes, TensorKind::WeightGrad);
            k.outputs.push_back(dw);
            wpartials.emplace_back(w, dw);
        }

        if (e.bwdWorkspaceBytes > 0) {
            TensorId ws = trace_.addTensor(e.name + "_bwd_ws",
                                           e.bwdWorkspaceBytes,
                                           TensorKind::Workspace);
            k.workspace = {ws};
        }

        k.flops = e.fwdFlops * e.bwdFlopsFactor;
        Bytes io_bytes = bytesOf(k.inputs) + bytesOf(k.outputs);
        k.memBytes = static_cast<double>(io_bytes);
        k.durationNs = costModel_.kernelTime(k.kind, k.flops, k.memBytes);
        trace_.addKernel(std::move(k));

        for (auto& [x, dx] : partials)
            accumulateGrad(x, dx);
        for (auto& [w, dw] : wpartials) {
            auto wit = weightGradOf_.find(w);
            if (wit == weightGradOf_.end()) {
                weightGradOf_.emplace(w, dw);
            } else {
                // Shared weight (e.g. tied embeddings): sum partial dWs.
                Bytes bytes = trace_.tensor(dw).bytes;
                TensorId sum = trace_.addTensor(
                    trace_.tensor(dw).name + "_acc", bytes,
                    TensorKind::WeightGrad);
                Kernel acc;
                acc.name = "wgrad_accum_" + trace_.tensor(w).name;
                acc.kind = OpKind::Elementwise;
                acc.inputs = {wit->second, dw};
                acc.outputs = {sum};
                acc.memBytes = static_cast<double>(3 * bytes);
                acc.flops = static_cast<double>(bytes / kElem);
                acc.durationNs = costModel_.kernelTime(
                    acc.kind, acc.flops, acc.memBytes);
                trace_.addKernel(std::move(acc));
                wit->second = sum;
            }
        }
    }

    // ---- Optimizer: SGD update per parameter tensor. ----
    for (TensorId w : weights_) {
        auto wit = weightGradOf_.find(w);
        if (wit == weightGradOf_.end()) {
            debug("weight '%s' received no gradient",
                  trace_.tensor(w).name.c_str());
            continue;
        }
        Bytes bytes = trace_.tensor(w).bytes;
        Kernel k;
        k.name = "sgd_" + trace_.tensor(w).name;
        k.kind = OpKind::Optimizer;
        k.inputs = {w, wit->second};
        k.outputs = {w};
        k.memBytes = static_cast<double>(3 * bytes);
        k.flops = static_cast<double>(bytes / kElem) * 2.0;
        k.durationNs = costModel_.kernelTime(k.kind, k.flops, k.memBytes);
        trace_.addKernel(std::move(k));
    }

    trace_.validate();
    return std::move(trace_);
}

}  // namespace g10
