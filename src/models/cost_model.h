/**
 * @file
 * Analytic kernel-latency model standing in for A100 profiling.
 *
 * The paper profiles every CUDA kernel of each model on a real A100 and
 * replays the measured times (§5). Without that hardware we estimate each
 * kernel's time with a classic roofline: latency is the max of compute time
 * (flops / achievable flops) and memory time (bytes / achievable DRAM
 * bandwidth), with per-operator-class efficiency factors and a floor for
 * tiny kernels. §7.6 of the paper shows the system tolerates ±20% timing
 * error, so modeling error of this magnitude does not change conclusions.
 */

#ifndef G10_MODELS_COST_MODEL_H
#define G10_MODELS_COST_MODEL_H

#include "common/types.h"
#include "graph/kernel.h"

namespace g10 {

/** Roofline latency model parameterized on GPU peak capabilities. */
class CostModel
{
  public:
    /** Defaults: NVIDIA A100-40GB (FP32 CUDA-core path, HBM2e). */
    CostModel() = default;

    /**
     * @param peak_flops  peak FP32 throughput, FLOP/s
     * @param hbm_gbps    peak DRAM bandwidth, GB/s
     */
    CostModel(double peak_flops, double hbm_gbps)
        : peakFlops_(peak_flops), hbmGBps_(hbm_gbps)
    {}

    /**
     * Latency of one kernel.
     *
     * @param kind   operator class (selects efficiency factors)
     * @param flops  floating point operations performed
     * @param bytes  DRAM traffic in bytes
     */
    TimeNs kernelTime(OpKind kind, double flops, double bytes) const;

    /** Fraction of peak FLOP/s this operator class achieves. */
    static double flopEfficiency(OpKind kind);

    /** Fraction of peak DRAM bandwidth this operator class achieves. */
    static double memEfficiency(OpKind kind);

    double peakFlops() const { return peakFlops_; }
    double hbmGBps() const { return hbmGBps_; }

  private:
    double peakFlops_ = 19.5e12;  // A100 FP32
    double hbmGBps_ = 1555.0;     // A100 40GB HBM2e
};

}  // namespace g10

#endif  // G10_MODELS_COST_MODEL_H
