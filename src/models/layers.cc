#include "layers.h"

#include <algorithm>

#include "common/logging.h"

namespace g10 {

namespace {

int
convOut(int in, int k, int stride, int pad)
{
    return (in + 2 * pad - k) / stride + 1;
}

}  // namespace

Bytes
CnnBuilder::actBytes(int c, int h, int w) const
{
    return static_cast<Bytes>(n_) * c * h * w * TraceBuilder::kElem;
}

FMap
CnnBuilder::input(int c, int h, int w, const std::string& name)
{
    TensorId t = b_.input(name, actBytes(c, h, w));
    return FMap{t, c, h, w};
}

FMap
CnnBuilder::conv(const FMap& in, int out_c, int k, int stride, int pad,
                 const std::string& name, int groups)
{
    int oh = convOut(in.h, k, stride, pad);
    int ow = convOut(in.w, k, stride, pad);
    if (oh <= 0 || ow <= 0)
        panic("conv '%s' output collapsed (%dx%d)", name.c_str(), oh, ow);

    Bytes wbytes = static_cast<Bytes>(out_c) * (in.c / groups) * k * k *
                   TraceBuilder::kElem;
    TensorId w = b_.weight(name + "_w", wbytes);

    double flops = 2.0 * n_ * out_c * oh * ow *
                   (static_cast<double>(in.c) / groups) * k * k;
    Bytes workspace = 0;
    if (k > 1) {
        // im2col-style scratch, bounded like cuDNN workspace limits.
        Bytes im2col = static_cast<Bytes>(n_) * (in.c / groups) * k * k *
                       oh * ow * TraceBuilder::kElem;
        workspace = std::min(im2col, wsCap_);
    }

    OpSpec spec;
    spec.kind = OpKind::Conv2d;
    spec.name = name;
    spec.inputs = {in.t};
    spec.weights = {w};
    spec.outBytes = actBytes(out_c, oh, ow);
    spec.flops = flops;
    spec.workspaceBytes = workspace;
    spec.bwdWorkspaceBytes = workspace;
    TensorId out = b_.op(spec);
    return FMap{out, out_c, oh, ow};
}

FMap
CnnBuilder::convRect(const FMap& in, int out_c, int kh, int kw, int stride,
                     int pad_h, int pad_w, const std::string& name)
{
    int oh = convOut(in.h, kh, stride, pad_h);
    int ow = convOut(in.w, kw, stride, pad_w);
    if (oh <= 0 || ow <= 0)
        panic("convRect '%s' output collapsed (%dx%d)",
              name.c_str(), oh, ow);

    Bytes wbytes = static_cast<Bytes>(out_c) * in.c * kh * kw *
                   TraceBuilder::kElem;
    TensorId w = b_.weight(name + "_w", wbytes);

    double flops = 2.0 * n_ * out_c * oh * ow *
                   static_cast<double>(in.c) * kh * kw;
    Bytes im2col = static_cast<Bytes>(n_) * in.c * kh * kw * oh * ow *
                   TraceBuilder::kElem;
    Bytes workspace = std::min(im2col, wsCap_);

    OpSpec spec;
    spec.kind = OpKind::Conv2d;
    spec.name = name;
    spec.inputs = {in.t};
    spec.weights = {w};
    spec.outBytes = actBytes(out_c, oh, ow);
    spec.flops = flops;
    spec.workspaceBytes = workspace;
    spec.bwdWorkspaceBytes = workspace;
    TensorId out = b_.op(spec);
    return FMap{out, out_c, oh, ow};
}

FMap
CnnBuilder::batchNorm(const FMap& in, const std::string& name)
{
    // Scale+shift packed into one small parameter tensor.
    TensorId w = b_.weight(name + "_scale",
                           static_cast<Bytes>(2) * in.c *
                               TraceBuilder::kElem);
    OpSpec spec;
    spec.kind = OpKind::BatchNorm;
    spec.name = name;
    spec.inputs = {in.t};
    spec.weights = {w};
    spec.outBytes = actBytes(in.c, in.h, in.w);
    spec.flops = 10.0 * n_ * in.c * in.h * in.w;
    spec.extraSavedBytes =
        static_cast<Bytes>(2) * in.c * TraceBuilder::kElem;
    TensorId out = b_.op(spec);
    return FMap{out, in.c, in.h, in.w};
}

FMap
CnnBuilder::relu(const FMap& in, const std::string& name)
{
    OpSpec spec;
    spec.kind = OpKind::Activation;
    spec.name = name;
    spec.inputs = {in.t};
    spec.outBytes = actBytes(in.c, in.h, in.w);
    spec.flops = 1.0 * n_ * in.c * in.h * in.w;
    spec.bwdFlopsFactor = 1.0;
    spec.inputSavedForBwd = {false};
    spec.outputUsedInBwd = true;
    TensorId out = b_.op(spec);
    return FMap{out, in.c, in.h, in.w};
}

FMap
CnnBuilder::sigmoid(const FMap& in, const std::string& name)
{
    OpSpec spec;
    spec.kind = OpKind::Activation;
    spec.name = name;
    spec.inputs = {in.t};
    spec.outBytes = actBytes(in.c, in.h, in.w);
    spec.flops = 4.0 * n_ * in.c * in.h * in.w;
    spec.bwdFlopsFactor = 1.0;
    spec.inputSavedForBwd = {false};
    spec.outputUsedInBwd = true;
    TensorId out = b_.op(spec);
    return FMap{out, in.c, in.h, in.w};
}

FMap
CnnBuilder::maxPool(const FMap& in, int k, int stride, int pad,
                    const std::string& name)
{
    int oh = convOut(in.h, k, stride, pad);
    int ow = convOut(in.w, k, stride, pad);
    OpSpec spec;
    spec.kind = OpKind::Pool;
    spec.name = name;
    spec.inputs = {in.t};
    spec.outBytes = actBytes(in.c, oh, ow);
    spec.flops = 1.0 * n_ * in.c * oh * ow * k * k;
    spec.bwdFlopsFactor = 1.0;
    TensorId out = b_.op(spec);
    return FMap{out, in.c, oh, ow};
}

FMap
CnnBuilder::avgPool(const FMap& in, int k, int stride, int pad,
                    const std::string& name)
{
    int oh = convOut(in.h, k, stride, pad);
    int ow = convOut(in.w, k, stride, pad);
    OpSpec spec;
    spec.kind = OpKind::Pool;
    spec.name = name;
    spec.inputs = {in.t};
    spec.inputSavedForBwd = {false};
    spec.outBytes = actBytes(in.c, oh, ow);
    spec.flops = 1.0 * n_ * in.c * oh * ow * k * k;
    spec.bwdFlopsFactor = 1.0;
    TensorId out = b_.op(spec);
    return FMap{out, in.c, oh, ow};
}

FMap
CnnBuilder::globalAvgPool(const FMap& in, const std::string& name)
{
    OpSpec spec;
    spec.kind = OpKind::Reduce;
    spec.name = name;
    spec.inputs = {in.t};
    spec.outBytes = actBytes(in.c, 1, 1);
    spec.flops = 1.0 * n_ * in.c * in.h * in.w;
    spec.bwdFlopsFactor = 1.0;
    TensorId out = b_.op(spec);
    return FMap{out, in.c, 1, 1};
}

FMap
CnnBuilder::add(const FMap& a, const FMap& b, const std::string& name)
{
    if (a.c != b.c || a.h != b.h || a.w != b.w)
        panic("add '%s': shape mismatch (%d,%d,%d) vs (%d,%d,%d)",
              name.c_str(), a.c, a.h, a.w, b.c, b.h, b.w);
    OpSpec spec;
    spec.kind = OpKind::Elementwise;
    spec.name = name;
    spec.inputs = {a.t, b.t};
    spec.outBytes = actBytes(a.c, a.h, a.w);
    spec.flops = 1.0 * n_ * a.c * a.h * a.w;
    spec.gradPassthrough = true;
    TensorId out = b_.op(spec);
    return FMap{out, a.c, a.h, a.w};
}

FMap
CnnBuilder::concat(const std::vector<FMap>& parts, const std::string& name)
{
    if (parts.empty())
        panic("concat '%s' with no inputs", name.c_str());
    int c = 0;
    for (const auto& p : parts) {
        if (p.h != parts[0].h || p.w != parts[0].w)
            panic("concat '%s': spatial mismatch", name.c_str());
        c += p.c;
    }
    OpSpec spec;
    spec.kind = OpKind::Elementwise;
    spec.name = name;
    for (const auto& p : parts)
        spec.inputs.push_back(p.t);
    spec.inputSavedForBwd.assign(parts.size(), false);
    spec.outBytes = actBytes(c, parts[0].h, parts[0].w);
    spec.flops = 0.0;
    spec.bwdFlopsFactor = 0.0;
    TensorId out = b_.op(spec);
    return FMap{out, c, parts[0].h, parts[0].w};
}

FMap
CnnBuilder::channelScale(const FMap& x, const FMap& g,
                         const std::string& name)
{
    if (x.c != g.c)
        panic("channelScale '%s': channel mismatch", name.c_str());
    OpSpec spec;
    spec.kind = OpKind::Elementwise;
    spec.name = name;
    spec.inputs = {x.t, g.t};
    spec.outBytes = actBytes(x.c, x.h, x.w);
    spec.flops = 1.0 * n_ * x.c * x.h * x.w;
    TensorId out = b_.op(spec);
    return FMap{out, x.c, x.h, x.w};
}

FMap
CnnBuilder::fc(const FMap& in, int out_dim, const std::string& name)
{
    int in_dim = in.c * in.h * in.w;
    TensorId w = b_.weight(
        name + "_w",
        static_cast<Bytes>(in_dim) * out_dim * TraceBuilder::kElem);
    OpSpec spec;
    spec.kind = OpKind::Gemm;
    spec.name = name;
    spec.inputs = {in.t};
    spec.weights = {w};
    spec.outBytes = actBytes(out_dim, 1, 1);
    spec.flops = 2.0 * n_ * in_dim * out_dim;
    TensorId out = b_.op(spec);
    return FMap{out, out_dim, 1, 1};
}

FMap
CnnBuilder::convBnRelu(const FMap& in, int out_c, int k, int stride,
                       int pad, const std::string& name, int groups)
{
    FMap x = conv(in, out_c, k, stride, pad, name + "_conv", groups);
    x = batchNorm(x, name + "_bn");
    return relu(x, name + "_relu");
}

// ---------------------------------------------------------------------
// SeqBuilder
// ---------------------------------------------------------------------

Bytes
SeqBuilder::seqBytes(int dim) const
{
    return static_cast<Bytes>(n_) * s_ * dim * TraceBuilder::kElem;
}

TensorId
SeqBuilder::linear(TensorId x, int in_dim, int out_dim,
                   const std::string& name)
{
    TensorId w = b_.weight(
        name + "_w",
        static_cast<Bytes>(in_dim) * out_dim * TraceBuilder::kElem);
    TensorId bias = b_.weight(
        name + "_b", static_cast<Bytes>(out_dim) * TraceBuilder::kElem);
    OpSpec spec;
    spec.kind = OpKind::Gemm;
    spec.name = name;
    spec.inputs = {x};
    spec.weights = {w, bias};
    spec.outBytes = seqBytes(out_dim);
    spec.flops = 2.0 * n_ * s_ * static_cast<double>(in_dim) * out_dim;
    return b_.op(spec);
}

TensorId
SeqBuilder::dropout(TensorId x, Bytes bytes, const std::string& name)
{
    if (!useDropout_)
        return x;
    OpSpec spec;
    spec.kind = OpKind::Elementwise;
    spec.name = name;
    spec.inputs = {x};
    spec.inputSavedForBwd = {false};
    spec.outBytes = bytes;
    spec.flops = static_cast<double>(bytes / TraceBuilder::kElem);
    spec.bwdFlopsFactor = 1.0;
    // The dropout mask (1 byte per element) is saved for backward.
    spec.extraSavedBytes = bytes / TraceBuilder::kElem;
    return b_.op(spec);
}

TensorId
SeqBuilder::transpose(TensorId x, Bytes bytes, const std::string& name)
{
    OpSpec spec;
    spec.kind = OpKind::Elementwise;
    spec.name = name;
    spec.inputs = {x};
    spec.inputSavedForBwd = {false};
    spec.outBytes = bytes;
    spec.flops = 0.0;
    spec.bwdFlopsFactor = 0.0;
    return b_.op(spec);
}

TensorId
SeqBuilder::layerNorm(TensorId x, int dim, const std::string& name)
{
    TensorId w = b_.weight(name + "_scale",
                           static_cast<Bytes>(2) * dim *
                               TraceBuilder::kElem);
    OpSpec spec;
    spec.kind = OpKind::LayerNorm;
    spec.name = name;
    spec.inputs = {x};
    spec.weights = {w};
    spec.outBytes = seqBytes(dim);
    spec.flops = 8.0 * n_ * s_ * dim;
    // Saved per-token mean/rstd for the backward kernel.
    spec.extraSavedBytes =
        static_cast<Bytes>(2) * n_ * s_ * TraceBuilder::kElem;
    return b_.op(spec);
}

TensorId
SeqBuilder::embeddings(int vocab, const std::string& name)
{
    // Token ids are a small int tensor.
    TensorId ids = b_.input(name + "_ids",
                            static_cast<Bytes>(n_) * s_ * 4);
    TensorId tok_w = b_.weight(
        name + "_tok_emb",
        static_cast<Bytes>(vocab) * d_ * TraceBuilder::kElem);
    TensorId pos_w = b_.weight(
        name + "_pos_emb",
        static_cast<Bytes>(s_) * d_ * TraceBuilder::kElem);

    OpSpec lookup;
    lookup.kind = OpKind::Embedding;
    lookup.name = name + "_lookup";
    lookup.inputs = {ids};
    lookup.weights = {tok_w, pos_w};
    lookup.outBytes = seqBytes(d_);
    lookup.flops = 2.0 * n_ * s_ * d_;
    lookup.bwdFlopsFactor = 1.0;
    TensorId x = b_.op(lookup);

    return layerNorm(x, d_, name + "_ln");
}

TensorId
SeqBuilder::patchEmbeddings(int image_hw, int patch, int channels,
                            const std::string& name)
{
    int grid = image_hw / patch;
    // Keep seq length consistent with what the caller configured
    // (grid*grid + 1 for the class token is typical).
    if (grid * grid > s_)
        panic("patchEmbeddings: %d patches exceed seq len %d",
              grid * grid, s_);

    TensorId img = b_.input(
        name + "_image",
        static_cast<Bytes>(n_) * channels * image_hw * image_hw *
            TraceBuilder::kElem);
    TensorId w = b_.weight(
        name + "_proj_w",
        static_cast<Bytes>(d_) * channels * patch * patch *
            TraceBuilder::kElem);
    TensorId pos_w = b_.weight(
        name + "_pos_emb",
        static_cast<Bytes>(s_) * d_ * TraceBuilder::kElem);

    OpSpec proj;
    proj.kind = OpKind::Conv2d;
    proj.name = name + "_proj";
    proj.inputs = {img};
    proj.weights = {w, pos_w};
    proj.outBytes = seqBytes(d_);
    proj.flops = 2.0 * n_ * grid * grid *
                 static_cast<double>(channels) * patch * patch * d_;
    TensorId x = b_.op(proj);

    return layerNorm(x, d_, name + "_ln");
}

TensorId
SeqBuilder::encoderLayer(TensorId x, const std::string& name)
{
    const double dh = static_cast<double>(d_) / h_;
    const Bytes score_bytes =
        static_cast<Bytes>(n_) * h_ * s_ * s_ * TraceBuilder::kElem;

    TensorId ln1 = layerNorm(x, d_, name + "_ln1");

    // Separate Q/K/V projections, as HuggingFace launches them.
    TensorId q = linear(ln1, d_, d_, name + "_q");
    TensorId k = linear(ln1, d_, d_, name + "_k");
    TensorId v = linear(ln1, d_, d_, name + "_v");

    // Head-major relayout of Q/K/V before the batched GEMMs.
    OpSpec perm;
    perm.kind = OpKind::Elementwise;
    perm.name = name + "_permute_qkv";
    perm.inputs = {q, k, v};
    perm.inputSavedForBwd = {false, false, false};
    perm.outBytes = seqBytes(3 * d_);
    perm.flops = 0.0;
    perm.bwdFlopsFactor = 0.0;
    TensorId qkv = b_.op(perm);

    // Attention scores: Q*K^T per head.
    OpSpec scores;
    scores.kind = OpKind::Attention;
    scores.name = name + "_scores";
    scores.inputs = {qkv};
    scores.outBytes = score_bytes;
    scores.flops = 2.0 * n_ * h_ * s_ * s_ * dh;
    TensorId sc = b_.op(scores);

    OpSpec sm;
    sm.kind = OpKind::Softmax;
    sm.name = name + "_softmax";
    sm.inputs = {sc};
    sm.inputSavedForBwd = {false};
    sm.outputUsedInBwd = true;
    sm.outBytes = score_bytes;
    sm.flops = 5.0 * n_ * h_ * s_ * s_;
    sm.bwdFlopsFactor = 1.0;
    TensorId probs = b_.op(sm);

    TensorId probs_d = dropout(probs, score_bytes, name + "_attn_drop");

    // Context: probs * V.
    OpSpec ctx;
    ctx.kind = OpKind::Attention;
    ctx.name = name + "_context";
    ctx.inputs = {probs_d, qkv};
    ctx.outBytes = seqBytes(d_);
    ctx.flops = 2.0 * n_ * h_ * s_ * s_ * dh;
    TensorId context = b_.op(ctx);

    TensorId ctx_t = transpose(context, seqBytes(d_),
                               name + "_merge_heads");
    TensorId attn_out = linear(ctx_t, d_, d_, name + "_attn_proj");
    TensorId attn_d = dropout(attn_out, seqBytes(d_),
                              name + "_proj_drop");

    // Residual 1 (gradient passes through).
    OpSpec res1;
    res1.kind = OpKind::Elementwise;
    res1.name = name + "_res1";
    res1.inputs = {x, attn_d};
    res1.outBytes = seqBytes(d_);
    res1.flops = 1.0 * n_ * s_ * d_;
    res1.gradPassthrough = true;
    TensorId r1 = b_.op(res1);

    // MLP block.
    TensorId ln2 = layerNorm(r1, d_, name + "_ln2");
    TensorId fc1 = linear(ln2, d_, 4 * d_, name + "_fc1");

    OpSpec gelu;
    gelu.kind = OpKind::Activation;
    gelu.name = name + "_gelu";
    gelu.inputs = {fc1};
    gelu.inputSavedForBwd = {false};
    gelu.outputUsedInBwd = true;
    gelu.outBytes = seqBytes(4 * d_);
    gelu.flops = 8.0 * n_ * s_ * 4.0 * d_;
    gelu.bwdFlopsFactor = 1.0;
    TensorId g = b_.op(gelu);

    TensorId fc2 = linear(g, 4 * d_, d_, name + "_fc2");
    TensorId mlp_d = dropout(fc2, seqBytes(d_), name + "_mlp_drop");

    OpSpec res2;
    res2.kind = OpKind::Elementwise;
    res2.name = name + "_res2";
    res2.inputs = {r1, mlp_d};
    res2.outBytes = seqBytes(d_);
    res2.flops = 1.0 * n_ * s_ * d_;
    res2.gradPassthrough = true;
    return b_.op(res2);
}

TensorId
SeqBuilder::classifierHead(TensorId x, int classes, const std::string& name)
{
    TensorId ln = layerNorm(x, d_, name + "_ln");

    // Pool the [CLS]/first token then classify.
    OpSpec pool;
    pool.kind = OpKind::Reduce;
    pool.name = name + "_pool";
    pool.inputs = {ln};
    pool.outBytes = static_cast<Bytes>(n_) * d_ * TraceBuilder::kElem;
    pool.flops = 1.0 * n_ * s_ * d_;
    pool.bwdFlopsFactor = 1.0;
    TensorId pooled = b_.op(pool);

    TensorId w = b_.weight(
        name + "_w",
        static_cast<Bytes>(d_) * classes * TraceBuilder::kElem);
    OpSpec cls;
    cls.kind = OpKind::Gemm;
    cls.name = name + "_logits";
    cls.inputs = {pooled};
    cls.weights = {w};
    cls.outBytes = static_cast<Bytes>(n_) * classes * TraceBuilder::kElem;
    cls.flops = 2.0 * n_ * static_cast<double>(d_) * classes;
    return b_.op(cls);
}

}  // namespace g10
