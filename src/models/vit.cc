/**
 * @file
 * ViT-Base/16 (Dosovitskiy et al., ICLR'21) trace builder: 224x224
 * ImageNet input patchified at 16x16 (196 patches + class token),
 * 12 encoder layers, hidden 768, 12 heads, 1000-way head.
 */

#include "models/layers.h"
#include "models/model_zoo.h"

namespace g10 {

KernelTrace
buildViT(int batch, const CostModel& cm)
{
    constexpr int kImage = 224;
    constexpr int kPatch = 16;
    constexpr int kSeqLen = (kImage / kPatch) * (kImage / kPatch) + 1;
    constexpr int kHidden = 768;
    constexpr int kHeads = 12;
    constexpr int kLayers = 12;

    TraceBuilder b("ViT", batch, cm);
    SeqBuilder s(b, batch, kSeqLen, kHidden, kHeads,
                 /*use_dropout=*/false);

    TensorId x = s.patchEmbeddings(kImage, kPatch, 3, "patch");
    for (int i = 0; i < kLayers; ++i)
        x = s.encoderLayer(x, "layer" + std::to_string(i));

    TensorId logits = s.classifierHead(x, 1000, "head");
    b.loss(logits);
    return b.finish();
}

}  // namespace g10
