/**
 * @file
 * Layer-level helpers on top of TraceBuilder.
 *
 * CnnBuilder tracks feature-map shapes through convolutional networks;
 * SeqBuilder does the same for token sequences in transformers. Both emit
 * the kernel sequences a cuDNN/cuBLAS-backed framework would launch
 * (conv/BN/ReLU as separate kernels, attention as QKV/score/softmax/
 * context/proj kernels, etc.), which is what gives the traces the kernel
 * counts and tensor-size distributions of the paper's Table 1 workloads.
 */

#ifndef G10_MODELS_LAYERS_H
#define G10_MODELS_LAYERS_H

#include <string>
#include <vector>

#include "models/trace_builder.h"

namespace g10 {

/** A (per-sample) feature-map shape attached to its tensor. */
struct FMap
{
    TensorId t = kInvalidTensor;
    int c = 0;  ///< channels
    int h = 0;  ///< height
    int w = 0;  ///< width
};

/** Convolutional-network layer emitter. */
class CnnBuilder
{
  public:
    /**
     * @param builder underlying tape builder
     * @param batch   batch size
     * @param ws_cap  cuDNN-style conv workspace limit
     */
    CnnBuilder(TraceBuilder& builder, int batch, Bytes ws_cap = 4 * GiB)
        : b_(builder), n_(batch), wsCap_(ws_cap)
    {}

    /** Network input image batch. */
    FMap input(int c, int h, int w, const std::string& name = "image");

    /** Plain convolution (no bias; BN provides affine). */
    FMap conv(const FMap& in, int out_c, int k, int stride, int pad,
              const std::string& name, int groups = 1);

    /** Asymmetric convolution (Inception 1x7 / 7x1 factorizations). */
    FMap convRect(const FMap& in, int out_c, int kh, int kw, int stride,
                  int pad_h, int pad_w, const std::string& name);

    /** Batch normalization with learned scale/shift. */
    FMap batchNorm(const FMap& in, const std::string& name);

    /** Elementwise ReLU. */
    FMap relu(const FMap& in, const std::string& name);

    /** Elementwise sigmoid (SE gates). */
    FMap sigmoid(const FMap& in, const std::string& name);

    /** Max pooling. */
    FMap maxPool(const FMap& in, int k, int stride, int pad,
                 const std::string& name);

    /** Average pooling. */
    FMap avgPool(const FMap& in, int k, int stride, int pad,
                 const std::string& name);

    /** Global average pooling to 1x1. */
    FMap globalAvgPool(const FMap& in, const std::string& name);

    /** Elementwise residual addition (shapes must match). */
    FMap add(const FMap& a, const FMap& b, const std::string& name);

    /** Channel concatenation (inception joins). */
    FMap concat(const std::vector<FMap>& parts, const std::string& name);

    /** Per-channel scaling of @p x by gate @p g (SE excitation). */
    FMap channelScale(const FMap& x, const FMap& g,
                      const std::string& name);

    /** Fully connected layer on a flattened map. */
    FMap fc(const FMap& in, int out_dim, const std::string& name);

    /** conv + batchNorm + relu shorthand. */
    FMap convBnRelu(const FMap& in, int out_c, int k, int stride, int pad,
                    const std::string& name, int groups = 1);

    /** Per-batch activation size of shape (c,h,w). */
    Bytes actBytes(int c, int h, int w) const;

    int batch() const { return n_; }
    TraceBuilder& builder() { return b_; }

  private:
    TraceBuilder& b_;
    int n_;
    Bytes wsCap_;
};

/** Transformer-encoder layer emitter. */
class SeqBuilder
{
  public:
    /**
     * @param use_dropout emit dropout kernels + saved masks (BERT's
     *        defaults train with dropout; HF ViT defaults to 0.0)
     */
    SeqBuilder(TraceBuilder& builder, int batch, int seq_len, int hidden,
               int heads, bool use_dropout = true)
        : b_(builder), n_(batch), s_(seq_len), d_(hidden), h_(heads),
          useDropout_(use_dropout)
    {}

    /** Token-id input + embedding lookup + positional add + layernorm. */
    TensorId embeddings(int vocab, const std::string& name);

    /**
     * Patch-embedding front end for ViT: conv patchify + position add
     * + (class token concat folded into seq_len).
     */
    TensorId patchEmbeddings(int image_hw, int patch, int channels,
                             const std::string& name);

    /** One pre-LN transformer encoder block; returns the block output. */
    TensorId encoderLayer(TensorId x, const std::string& name);

    /** Classifier head: layernorm + pooled linear to @p classes. */
    TensorId classifierHead(TensorId x, int classes,
                            const std::string& name);

    /** Bytes of one (batch, seq, dim) activation. */
    Bytes seqBytes(int dim) const;

    int batch() const { return n_; }
    int seqLen() const { return s_; }
    int hidden() const { return d_; }

  private:
    TensorId linear(TensorId x, int in_dim, int out_dim,
                    const std::string& name);
    TensorId layerNorm(TensorId x, int dim, const std::string& name);
    TensorId dropout(TensorId x, Bytes bytes, const std::string& name);
    TensorId transpose(TensorId x, Bytes bytes, const std::string& name);

    TraceBuilder& b_;
    int n_;
    int s_;
    int d_;
    int h_;
    bool useDropout_;
};

}  // namespace g10

#endif  // G10_MODELS_LAYERS_H
