/**
 * @file
 * GPU/host memory partition leases for jobs sharing one machine.
 *
 * A PartitionManager carves one SystemConfig into per-job partitions
 * and tracks which of them are out on lease. Capacity is a *dynamic*
 * quantity: every lease is byte-accounted against the machine, and
 * live leases can be resized, split, or merged while the free pool
 * conserves every byte. Three sizing modes:
 *
 *  - slot leases (acquire()): the machine is divided into `slots`
 *    equal partitions. The serving engine's static policy leases a
 *    slot when a job is admitted and reclaims it on departure, so a
 *    node with churn keeps handing the same partition geometry to
 *    successive jobs (which is what makes compiled plans reusable
 *    across arrivals).
 *  - weighted leases (acquireWeighted()): each lease takes an explicit
 *    fraction of the machine. The multi-tenant engine uses this for
 *    its memWeight-proportional split.
 *  - byte leases (acquireBytes()): each lease takes an explicit byte
 *    capacity from the free pool. The serving engine's *elastic*
 *    partition policies use this together with resize()/split()/
 *    merge() to redistribute capacity as jobs arrive and depart.
 *
 * Only GPU and host memory are partitioned; the PCIe fabric and the
 * SSD stay fully shared (that is the experiment). Leases must be
 * released back; every lease carries a generation id, so the manager
 * panics on over-subscription, double release, and stale-lease release
 * (a copy of an already-reclaimed lease whose slot has since been
 * re-leased) instead of silently corrupting the free pool.
 */

#ifndef G10_ENGINE_PARTITION_H
#define G10_ENGINE_PARTITION_H

#include <cstdint>
#include <vector>

#include "common/system_config.h"

namespace g10 {

/**
 * A share of @p whole: the same platform with GPU/host memory scaled
 * to @p fraction (capacities only; bandwidths, latencies, and the SSD
 * are untouched). This is the one place partition arithmetic lives so
 * every engine splits memory identically.
 */
SystemConfig partitionShare(const SystemConfig& whole, double fraction);

/**
 * A share of @p whole with explicit byte capacities (the elastic
 * analogue of partitionShare): GPU and host memory are set to @p gpu
 * and @p host, everything else is untouched.
 */
SystemConfig partitionBytes(const SystemConfig& whole, Bytes gpu,
                            Bytes host);

/** Tracks leases of one machine's memory partitions. */
class PartitionManager
{
  public:
    /** One leased partition; returned to the manager via release(). */
    struct Lease
    {
        int slot = -1;         ///< manager-internal slot id
        std::uint64_t id = 0;  ///< lease generation (0 = never leased)
        SystemConfig sys;      ///< the partition's platform view

        bool active() const { return slot >= 0; }
    };

    /**
     * @param whole the shared machine (already scaled)
     * @param slots number of concurrent slot-mode leases (>= 1); also
     *              the equal-split denominator of slotSystem()
     */
    PartitionManager(const SystemConfig& whole, int slots);

    /** Number of equal partitions the slot mode divides the machine
     *  into (the concurrency cap of acquire()/acquireWeighted()). */
    int slots() const { return slotCap_; }

    /** Slot-mode leases still available. */
    int freeSlots() const
    {
        return slotCap_ > activeLeases_ ? slotCap_ - activeLeases_ : 0;
    }

    bool hasFree() const { return freeSlots() > 0; }

    /** Leases currently outstanding (any mode). */
    int activeLeases() const { return activeLeases_; }

    /** The platform view an equal-slot lease grants (1/slots each). */
    const SystemConfig& slotSystem() const { return slotSys_; }

    /** Lease one equal slot; panics when none is free. */
    Lease acquire();

    /**
     * Lease @p fraction of the machine (weighted mode). Occupies one
     * slot; the caller is responsible for fractions summing to <= 1
     * (weighted mode does not gate on the byte pool, for backward
     * compatibility with memWeight splits that round independently).
     */
    Lease acquireWeighted(double fraction);

    /**
     * Lease an explicit byte capacity from the free pool (elastic
     * mode). Unlike the weighted mode this *does* gate on the pool:
     * asking for more than freeGpuBytes()/freeHostBytes() panics.
     * Byte leases are not bounded by slots(); the slot table grows.
     */
    Lease acquireBytes(Bytes gpu, Bytes host);

    /**
     * Grow or shrink a live lease to the new byte capacity. Shrinking
     * returns the difference to the free pool; growing takes it from
     * the pool (panics when the pool cannot cover the growth). The
     * lease's sys is updated in place. Panics on stale leases.
     */
    void resize(Lease* lease, Bytes gpu, Bytes host);

    /**
     * Carve @p fraction (0 < fraction < 1) of @p lease off into a new
     * lease; @p lease shrinks by exactly the carved bytes, so the two
     * leases together hold precisely what the one held before (full
     * conservation, no free-pool round trip).
     */
    Lease split(Lease* lease, double fraction);

    /**
     * Merge @p from's entire capacity into @p into and reclaim @p from
     * (the inverse of split): @p into grows by exactly @p from's bytes.
     */
    void merge(Lease* into, Lease* from);

    /** Reclaim @p lease (panics on double/stale release); resets it. */
    void release(Lease* lease);

    // ---- Byte accounting (conservation invariants) ------------------

    Bytes totalGpuBytes() const { return whole_.gpuMemBytes; }
    Bytes totalHostBytes() const { return whole_.hostMemBytes; }

    /** Sum of all outstanding leases' GPU / host bytes. */
    Bytes leasedGpuBytes() const { return leasedGpu_; }
    Bytes leasedHostBytes() const { return leasedHost_; }

    /** total - leased, saturating at zero (weighted mode may round
     *  independently and transiently oversubscribe by design). */
    Bytes freeGpuBytes() const
    {
        return whole_.gpuMemBytes > leasedGpu_
            ? whole_.gpuMemBytes - leasedGpu_
            : 0;
    }
    Bytes freeHostBytes() const
    {
        return whole_.hostMemBytes > leasedHost_
            ? whole_.hostMemBytes - leasedHost_
            : 0;
    }

    /** Total leases handed out / reclaimed (for tests and reports). */
    std::uint64_t granted() const { return granted_; }
    std::uint64_t reclaimed() const { return reclaimed_; }

    /** Lease resizes (resize(), plus the shrink half of split()). */
    std::uint64_t resizes() const { return resizes_; }

  private:
    struct Slot
    {
        bool inUse = false;
        std::uint64_t leaseId = 0;  ///< generation of the current lease
        Bytes gpu = 0;              ///< leased GPU bytes
        Bytes host = 0;             ///< leased host bytes
    };

    /** Validate @p lease against the slot table; panics when it is
     *  null, inactive, double-released, or stale. Returns the slot. */
    Slot& checkLease(const Lease* lease, const char* op);

    /** Book a new lease of (@p gpu, @p host) into a free slot. */
    Lease bookLease(const SystemConfig& sys, Bytes gpu, Bytes host);

    SystemConfig whole_;
    SystemConfig slotSys_;
    std::vector<Slot> table_;
    int slotCap_ = 0;       ///< slot-mode concurrency cap
    int activeLeases_ = 0;
    Bytes leasedGpu_ = 0;
    Bytes leasedHost_ = 0;
    std::uint64_t nextLeaseId_ = 1;
    std::uint64_t granted_ = 0;
    std::uint64_t reclaimed_ = 0;
    std::uint64_t resizes_ = 0;
};

}  // namespace g10

#endif  // G10_ENGINE_PARTITION_H
