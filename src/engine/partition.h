/**
 * @file
 * GPU/host memory partition leases for jobs sharing one machine.
 *
 * A PartitionManager carves one SystemConfig into per-job partitions
 * and tracks which of them are out on lease. Two sizing modes:
 *
 *  - slot leases (acquire()): the machine is divided into `slots`
 *    equal partitions. The serving engine leases a slot when a job is
 *    admitted and reclaims it on departure, so a node with churn keeps
 *    handing the same partition geometry to successive jobs (which is
 *    what makes compiled plans reusable across arrivals).
 *  - weighted leases (acquireWeighted()): each lease takes an explicit
 *    fraction of the machine. The multi-tenant engine uses this for
 *    its memWeight-proportional split.
 *
 * Only GPU and host memory are partitioned; the PCIe fabric and the
 * SSD stay fully shared (that is the experiment). Leases must be
 * released back; the manager panics on over-subscription and double
 * release so engine bugs surface immediately.
 */

#ifndef G10_ENGINE_PARTITION_H
#define G10_ENGINE_PARTITION_H

#include <cstdint>
#include <vector>

#include "common/system_config.h"

namespace g10 {

/**
 * A share of @p whole: the same platform with GPU/host memory scaled
 * to @p fraction (capacities only; bandwidths, latencies, and the SSD
 * are untouched). This is the one place partition arithmetic lives so
 * every engine splits memory identically.
 */
SystemConfig partitionShare(const SystemConfig& whole, double fraction);

/** Tracks leases of one machine's memory partitions. */
class PartitionManager
{
  public:
    /** One leased partition; returned to the manager via release(). */
    struct Lease
    {
        int slot = -1;      ///< manager-internal slot id
        SystemConfig sys;   ///< the partition's platform view

        bool active() const { return slot >= 0; }
    };

    /**
     * @param whole the shared machine (already scaled)
     * @param slots number of concurrent leases (>= 1)
     */
    PartitionManager(const SystemConfig& whole, int slots);

    /** Number of partitions the machine is divided into. */
    int slots() const { return static_cast<int>(inUse_.size()); }

    /** Partitions not currently out on lease. */
    int freeSlots() const { return free_; }

    bool hasFree() const { return free_ > 0; }

    /** The platform view an equal-slot lease grants (1/slots each). */
    const SystemConfig& slotSystem() const { return slotSys_; }

    /** Lease one equal slot; panics when none is free. */
    Lease acquire();

    /**
     * Lease @p fraction of the machine (weighted mode). Occupies one
     * slot; the caller is responsible for fractions summing to <= 1.
     */
    Lease acquireWeighted(double fraction);

    /** Reclaim @p lease (panics on double release); resets it. */
    void release(Lease* lease);

    /** Total leases handed out / reclaimed (for tests and reports). */
    std::uint64_t granted() const { return granted_; }
    std::uint64_t reclaimed() const { return reclaimed_; }

  private:
    SystemConfig whole_;
    SystemConfig slotSys_;
    std::vector<bool> inUse_;
    int free_ = 0;
    std::uint64_t granted_ = 0;
    std::uint64_t reclaimed_ = 0;
};

}  // namespace g10

#endif  // G10_ENGINE_PARTITION_H
