#include "multi_tenant.h"

#include <algorithm>

#include "common/logging.h"
#include "engine/partition.h"
#include "policies/registry.h"

namespace g10 {

bool
MixResult::allSucceeded() const
{
    for (const JobResult& j : jobs)
        if (j.shared.failed)
            return false;
    return true;
}

MultiTenantSim::MultiTenantSim(const WorkloadMix& mix)
    : mix_(mix), scaledSys_(mix.sys.scaledDown(mix.scaleDown))
{
    if (mix_.jobs.empty())
        fatal("MultiTenantSim: mix has no jobs");
    traces_.reserve(mix_.jobs.size());
    for (JobSpec& spec : mix_.jobs) {
        if (spec.batchSize <= 0)
            spec.batchSize = paperBatchSize(spec.model);
        traces_.push_back(buildModelScaled(spec.model, spec.batchSize,
                                           mix_.scaleDown));
    }
}

MultiTenantSim::MultiTenantSim(const WorkloadMix& mix,
                               std::vector<KernelTrace> traces)
    : mix_(mix), traces_(std::move(traces)), scaledSys_(mix.sys)
{
    if (mix_.jobs.empty())
        fatal("MultiTenantSim: mix has no jobs");
    if (traces_.size() != mix_.jobs.size())
        fatal("MultiTenantSim: %zu traces for %zu jobs",
              traces_.size(), mix_.jobs.size());
}

namespace {

/** Scheduling weight of job @p spec (1 outside priority mode). */
std::int64_t
schedWeight(const JobSpec& spec, MixSched sched)
{
    if (sched != MixSched::Priority)
        return 1;
    return std::clamp<std::int64_t>(spec.priority, 1, 1000);
}

}  // namespace

int
MultiTenantSim::pickNext(
    const std::vector<std::unique_ptr<SimRuntime>>& rts,
    const std::vector<bool>& live)
{
    // Step the live job that is furthest behind in virtual time.
    // Round-robin: virtual time is the job's stream clock. Priority:
    // stride scheduling -- virtual time advances at 1/weight of the
    // job's clock, so a priority-p job receives ~p times the
    // interleaving share. Deterministic: ties break toward the lower
    // job index.
    //
    // A job has not arrived until every other tenant's clock reaches
    // its arrival time; stepping it earlier would let it reserve the
    // shared GPU/fabric timelines in the future and stall kernels that
    // are ready now (the GPU would sit modeled-idle over the arrival
    // gap). The job attaining the minimum clock always satisfies
    // arrival <= minNow, so the eligible set is never empty.
    TimeNs minNow = 0;
    bool haveMin = false;
    for (std::size_t i = 0; i < rts.size(); ++i) {
        if (!live[i])
            continue;
        if (!haveMin || rts[i]->now() < minNow) {
            minNow = rts[i]->now();
            haveMin = true;
        }
    }

    // Priority mode: admit newly arrived jobs into the stride queue.
    // A joiner's virtual time is seeded to the runnable set's current
    // minimum (CFS-style): it competes from here on at its weighted
    // share but gets no catch-up credit for the time before it
    // arrived -- otherwise a late joiner would monopolize the GPU and
    // starve incumbents until it "caught up".
    if (mix_.sched == MixSched::Priority) {
        for (std::size_t i = 0; i < rts.size(); ++i) {
            if (!live[i] || joined_[i] ||
                mix_.jobs[i].arrivalNs > minNow)
                continue;
            TimeNs min_num = 0;
            std::int64_t min_w = 1;
            bool found = false;
            for (std::size_t j = 0; j < rts.size(); ++j) {
                if (!live[j] || !joined_[j])
                    continue;
                TimeNs num = rts[j]->now() - vtBase_[j];
                std::int64_t w = schedWeight(mix_.jobs[j], mix_.sched);
                if (!found || num * min_w < min_num * w) {
                    min_num = num;
                    min_w = w;
                    found = true;
                }
            }
            std::int64_t wi = schedWeight(mix_.jobs[i], mix_.sched);
            vtBase_[i] = found
                ? rts[i]->now() - (min_num * wi) / min_w
                : rts[i]->now();
            joined_[i] = true;
        }
    }

    int best = -1;
    TimeNs best_num = 0;
    std::int64_t best_w = 1;
    for (std::size_t i = 0; i < rts.size(); ++i) {
        if (!live[i])
            continue;
        if (mix_.jobs[i].arrivalNs > minNow)
            continue;  // not yet arrived relative to the mix's progress
        std::int64_t w = 1;
        TimeNs num = rts[i]->now();
        if (mix_.sched == MixSched::Priority) {
            w = schedWeight(mix_.jobs[i], mix_.sched);
            num = rts[i]->now() - vtBase_[i];
        }
        // Compare num/w < best_num/best_w without division.
        if (best < 0 || num * best_w < best_num * w) {
            best = static_cast<int>(i);
            best_num = num;
            best_w = w;
        }
    }
    return best;
}

MixResult
MultiTenantSim::run()
{
    const std::size_t n = mix_.jobs.size();

    // Partition GPU and host memory by the jobs' memory weights; the
    // SSD and PCIe fabric stay fully shared (that is the experiment).
    // Every tenant holds its weighted lease for the whole run (this
    // engine has no churn; the serving engine leases/reclaims).
    double wsum = 0.0;
    for (const JobSpec& s : mix_.jobs)
        wsum += (s.memWeight > 0.0 ? s.memWeight : 1.0);
    PartitionManager partitions(scaledSys_, static_cast<int>(n));
    std::vector<PartitionManager::Lease> leases(n);

    SsdDevice sharedSsd(scaledSys_);
    FabricChannels channels;
    GpuComputeTimeline gpuTimeline;
    SharedResources shared;
    shared.ssd = &sharedSsd;
    shared.channels = &channels;
    shared.gpu = &gpuTimeline;

    std::vector<DesignInstance> designs;
    std::vector<std::unique_ptr<SimRuntime>> rts;
    designs.reserve(n);
    rts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const JobSpec& spec = mix_.jobs[i];
        double w = (spec.memWeight > 0.0 ? spec.memWeight : 1.0) / wsum;
        leases[i] = partitions.acquireWeighted(w);
        const SystemConfig& jobSys = leases[i].sys;

        designs.push_back(PolicyRegistry::instance().make(
            spec.design, traces_[i], jobSys));

        RunConfig rc;
        rc.sys = jobSys;
        rc.iterations = spec.iterations;
        rc.uvmExtension = designs.back().uvmExtension;
        rc.seed = mix_.seed + i;
        rc.startNs = spec.arrivalNs;
        rts.push_back(std::make_unique<SimRuntime>(
            traces_[i], *designs.back().policy, rc, shared));
        if (tracer_)
            rts.back()->setTracer(tracer_, static_cast<int>(i));
    }

    for (auto& rt : rts)
        rt->start();

    vtBase_.assign(n, 0);
    joined_.assign(n, false);
    std::vector<bool> live(n, true);
    std::size_t liveCount = n;
    while (liveCount > 0) {
        int i = pickNext(rts, live);
        if (i < 0)
            panic("multi-tenant scheduler found no live job");
        if (!rts[static_cast<std::size_t>(i)]->stepKernel()) {
            live[static_cast<std::size_t>(i)] = false;
            --liveCount;
        }
    }

    MixResult out;
    out.jobs.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        JobResult& jr = out.jobs[i];
        jr.spec = mix_.jobs[i];
        jr.name = mix_.jobs[i].name;
        if (jr.name.empty()) {
            jr.name = traces_[i].modelName() + "-" +
                      std::to_string(traces_[i].batchSize()) + "#" +
                      std::to_string(i);
        }
        jr.shared = rts[i]->finalize();
        jr.lifetimeTraffic = rts[i]->fabric().traffic();
        jr.finishNs = rts[i]->now();
        out.makespanNs = std::max(out.makespanNs, jr.finishNs);
        if (!jr.shared.failed)
            out.aggregateThroughput += jr.shared.throughput();
    }
    out.gpuBusyNs = gpuTimeline.busyNs;
    if (out.makespanNs > 0)
        out.gpuUtilization = static_cast<double>(out.gpuBusyNs) /
                             static_cast<double>(out.makespanNs);
    out.ssd = sharedSsd.stats();

    // All tenants have departed; return the partitions.
    for (PartitionManager::Lease& l : leases)
        partitions.release(&l);

    // Per-job isolated baselines: the same job alone on the whole
    // machine (full memory, private fabric/SSD, exclusive GPU).
    std::vector<double> speeds;
    for (std::size_t i = 0; i < n; ++i) {
        JobResult& jr = out.jobs[i];
        if (mix_.isolatedBaseline) {
            DesignInstance design = PolicyRegistry::instance().make(
                mix_.jobs[i].design, traces_[i], scaledSys_);
            RunConfig rc;
            rc.sys = scaledSys_;
            rc.iterations = mix_.jobs[i].iterations;
            rc.uvmExtension = design.uvmExtension;
            rc.seed = mix_.seed + i;
            SimRuntime iso(traces_[i], *design.policy, rc);
            jr.isolated = iso.run();
            jr.isolatedRunNs = iso.now();
            if (!jr.shared.failed && !jr.isolated.failed &&
                jr.isolated.measuredIterationNs > 0) {
                jr.slowdown =
                    static_cast<double>(jr.shared.measuredIterationNs) /
                    static_cast<double>(jr.isolated.measuredIterationNs);
                if (jr.isolatedRunNs > 0) {
                    jr.turnaroundSlowdown =
                        static_cast<double>(jr.finishNs -
                                            jr.spec.arrivalNs) /
                        static_cast<double>(jr.isolatedRunNs);
                    speeds.push_back(1.0 / jr.turnaroundSlowdown);
                }
            }
        } else if (!jr.shared.failed) {
            speeds.push_back(jr.shared.normalizedPerf());
        }
    }
    if (!speeds.empty()) {
        double s = 0.0, s2 = 0.0;
        for (double x : speeds) {
            s += x;
            s2 += x * x;
        }
        out.fairness =
            (s * s) / (static_cast<double>(speeds.size()) * s2);
    }
    return out;
}

}  // namespace g10
