/**
 * @file
 * Multi-tenant execution: N DNN training jobs time-sharing one modeled
 * GPU while contending for partitioned GPU/host memory and the shared
 * PCIe fabric + SSD.
 *
 * Each job keeps its own SimRuntime + Policy (plans are compiled
 * against the job's memory partition), but all jobs reserve bandwidth
 * on one FabricChannels, wear one SsdDevice, and serialize kernels on
 * one GpuComputeTimeline. The engine interleaves jobs at kernel
 * granularity by stepping whichever job is furthest behind in virtual
 * time (optionally weighted by priority — stride scheduling), which
 * makes runs deterministic and independent of host thread count.
 */

#ifndef G10_ENGINE_MULTI_TENANT_H
#define G10_ENGINE_MULTI_TENANT_H

#include <memory>
#include <vector>

#include "engine/workload_mix.h"
#include "graph/trace.h"
#include "sim/runtime/policy.h"
#include "sim/runtime/sim_runtime.h"

namespace g10 {

/** Outcome of one job inside a consolidated run. */
struct JobResult
{
    std::string name;
    JobSpec spec;

    /** Stats measured while sharing the machine. */
    ExecStats shared;

    /** Stats of the same job alone on the full machine (baseline). */
    ExecStats isolated;

    /**
     * Measured-iteration slowdown vs. the isolated run (>= ~1.0);
     * 0 when the baseline was skipped or either run failed. Captures
     * steady-state contention while both jobs are on the machine.
     */
    double slowdown = 0.0;

    /**
     * ANTT-style turnaround slowdown: (finish - arrival) divided by
     * the job's isolated end-to-end runtime. Captures queueing and
     * scheduling-priority effects that iteration slowdown misses
     * (e.g. strict priority serializing the tenants). 0 when the
     * baseline was skipped or either run failed.
     */
    double turnaroundSlowdown = 0.0;

    /** End-to-end runtime of the isolated baseline. */
    TimeNs isolatedRunNs = 0;

    /** All-iteration migration traffic through this job's fabric view. */
    TrafficStats lifetimeTraffic;

    /** Stream time at which the job's last kernel completed. */
    TimeNs finishNs = 0;
};

/** Aggregate outcome of one consolidated mix. */
struct MixResult
{
    std::vector<JobResult> jobs;

    /** Latest job completion time. */
    TimeNs makespanNs = 0;

    /** Total kernel-occupied GPU time across all tenants. */
    TimeNs gpuBusyNs = 0;

    /** gpuBusyNs / makespanNs. */
    double gpuUtilization = 0.0;

    /** Sum of per-job measured throughput, samples/s. */
    double aggregateThroughput = 0.0;

    /**
     * Jain's fairness index over per-job service speeds
     * (1/turnaroundSlowdown when baselines ran, normalized perf
     * otherwise). 1.0 = perfectly fair.
     */
    double fairness = 1.0;

    /** Wear of the one shared SSD (consolidated WAF/lifetime). */
    SsdStats ssd;

    /** True when every job completed without failure. */
    bool allSucceeded() const;
};

/** Simulates one WorkloadMix; see run(). */
class MultiTenantSim
{
  public:
    /** Build job traces from the mix's model specs (scaled). */
    explicit MultiTenantSim(const WorkloadMix& mix);

    /**
     * Use pre-built traces (index-matched to mix.jobs) instead of
     * building models; mix.sys is used as-is, ignoring mix.scaleDown.
     * Lets tests drive the engine with tiny synthetic traces.
     */
    MultiTenantSim(const WorkloadMix& mix,
                   std::vector<KernelTrace> traces);

    /** Run the consolidated mix (and isolated baselines if enabled). */
    MixResult run();

    /**
     * Attach observability (see obs/tracer.h) before run(); nullptr =
     * off. The consolidated runtimes emit with pid = job index; the
     * isolated baselines stay untraced (they are a reference, not part
     * of the consolidated timeline).
     */
    void setTracer(Tracer* tracer) { tracer_ = tracer; }

  private:
    /** Index of the next job to step, or -1 when all finished. */
    int pickNext(const std::vector<std::unique_ptr<SimRuntime>>& rts,
                 const std::vector<bool>& live);

    WorkloadMix mix_;
    std::vector<KernelTrace> traces_;
    SystemConfig scaledSys_;  ///< the shared machine, after scaling
    Tracer* tracer_ = nullptr;

    // Priority (stride) scheduling state, sized/reset by run(): a
    // job's virtual time is (now - vtBase) / priority. A joiner's
    // base is seeded so its virtual time equals the runnable set's
    // minimum -- no catch-up credit for time before its arrival.
    std::vector<TimeNs> vtBase_;
    std::vector<bool> joined_;
};

}  // namespace g10

#endif  // G10_ENGINE_MULTI_TENANT_H
