#include "experiment_engine.h"

namespace g10 {

ExperimentEngine::ExperimentEngine(unsigned workers)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ExperimentEngine::~ExperimentEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread& t : threads_)
        t.join();
}

void
ExperimentEngine::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ExperimentEngine::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    workReady_.notify_one();
}

bool
ExperimentEngine::tryRunOne()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task();
    return true;
}

void
ExperimentEngine::parallelFor(std::size_t n,
                              const std::function<void(std::size_t)>& fn)
{
    if (n == 0)
        return;

    // `remaining` is guarded by the mutex (not a bare atomic) so the
    // final decrement and the waiter's predicate check are ordered:
    // otherwise the waiter could observe zero and destroy this stack
    // frame while the last worker is still about to lock/notify.
    struct Batch
    {
        std::size_t remaining;
        std::mutex m;
        std::condition_variable done;
    };
    Batch batch;
    batch.remaining = n;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < n; ++i) {
            queue_.emplace_back([&batch, &fn, i] {
                fn(i);
                std::lock_guard<std::mutex> lk(batch.m);
                if (--batch.remaining == 0)
                    batch.done.notify_all();
            });
        }
    }
    workReady_.notify_all();

    // The calling thread pitches in: draining the queue here means a
    // 1-worker pool still makes progress even while it is blocked in a
    // nested parallelFor, and small grids finish faster.
    for (;;) {
        std::function<void()> task;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!queue_.empty()) {
                task = std::move(queue_.front());
                queue_.pop_front();
            }
        }
        if (!task)
            break;
        task();
    }

    std::unique_lock<std::mutex> lk(batch.m);
    batch.done.wait(lk, [&batch] { return batch.remaining == 0; });
}

std::vector<ExecStats>
ExperimentEngine::runGrid(const std::vector<ExperimentConfig>& grid)
{
    std::vector<ExecStats> results(grid.size());
    parallelFor(grid.size(), [&](std::size_t i) {
        results[i] = runExperiment(grid[i]);
    });
    return results;
}

std::vector<ExecStats>
ExperimentEngine::runGridOnTrace(const KernelTrace& trace,
                                 const std::vector<ExperimentConfig>& grid)
{
    std::vector<ExecStats> results(grid.size());
    parallelFor(grid.size(), [&](std::size_t i) {
        results[i] = runExperimentOnTrace(trace, grid[i]);
    });
    return results;
}

std::vector<RunResult>
ExperimentEngine::runGridResults(const std::vector<ExperimentConfig>& grid)
{
    std::vector<RunResult> results(grid.size());
    parallelFor(grid.size(), [&](std::size_t i) {
        results[i] = runExperimentResult(grid[i]);
    });
    return results;
}

std::vector<RunResult>
ExperimentEngine::runGridResultsOnTrace(
    const KernelTrace& trace, const std::vector<ExperimentConfig>& grid)
{
    std::vector<RunResult> results(grid.size());
    parallelFor(grid.size(), [&](std::size_t i) {
        results[i] = runExperimentResultOnTrace(trace, grid[i]);
    });
    return results;
}

std::vector<MixResult>
ExperimentEngine::runMixes(const std::vector<WorkloadMix>& mixes)
{
    std::vector<MixResult> results(mixes.size());
    parallelFor(mixes.size(), [&](std::size_t i) {
        MultiTenantSim sim(mixes[i]);
        results[i] = sim.run();
    });
    return results;
}

std::vector<DesignInstance>
ExperimentEngine::compileDesignsOnTrace(
    const KernelTrace& trace, const SystemConfig& sys,
    const std::vector<std::string>& designs)
{
    std::vector<DesignInstance> out(designs.size());
    parallelFor(designs.size(), [&](std::size_t i) {
        out[i] = PolicyRegistry::instance().make(designs[i], trace, sys);
    });
    return out;
}

}  // namespace g10
