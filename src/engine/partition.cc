#include "partition.h"

#include "common/logging.h"

namespace g10 {

SystemConfig
partitionShare(const SystemConfig& whole, double fraction)
{
    SystemConfig part = whole;
    part.gpuMemBytes = static_cast<Bytes>(
        static_cast<double>(whole.gpuMemBytes) * fraction);
    part.hostMemBytes = static_cast<Bytes>(
        static_cast<double>(whole.hostMemBytes) * fraction);
    return part;
}

SystemConfig
partitionBytes(const SystemConfig& whole, Bytes gpu, Bytes host)
{
    SystemConfig part = whole;
    part.gpuMemBytes = gpu;
    part.hostMemBytes = host;
    return part;
}

PartitionManager::PartitionManager(const SystemConfig& whole, int slots)
    : whole_(whole)
{
    if (slots < 1)
        fatal("PartitionManager: slots must be >= 1, got %d", slots);
    table_.assign(static_cast<std::size_t>(slots), Slot{});
    slotCap_ = slots;
    slotSys_ = partitionShare(
        whole_, 1.0 / static_cast<double>(slots));
}

PartitionManager::Lease
PartitionManager::acquire()
{
    return acquireWeighted(1.0 / static_cast<double>(slots()));
}

PartitionManager::Lease
PartitionManager::bookLease(const SystemConfig& sys, Bytes gpu,
                            Bytes host)
{
    std::size_t i = 0;
    while (i < table_.size() && table_[i].inUse)
        ++i;
    if (i == table_.size())
        table_.push_back(Slot{});  // byte mode grows past slots()
    table_[i].inUse = true;
    table_[i].leaseId = nextLeaseId_++;
    table_[i].gpu = gpu;
    table_[i].host = host;
    leasedGpu_ += gpu;
    leasedHost_ += host;
    ++activeLeases_;
    ++granted_;
    Lease l;
    l.slot = static_cast<int>(i);
    l.id = table_[i].leaseId;
    l.sys = sys;
    return l;
}

PartitionManager::Lease
PartitionManager::acquireWeighted(double fraction)
{
    if (!hasFree())
        panic("PartitionManager: no free partition slot "
              "(%d leased); admission control must gate acquire()",
              slots());
    SystemConfig sys = partitionShare(whole_, fraction);
    return bookLease(sys, sys.gpuMemBytes, sys.hostMemBytes);
}

PartitionManager::Lease
PartitionManager::acquireBytes(Bytes gpu, Bytes host)
{
    if (gpu > freeGpuBytes() || host > freeHostBytes())
        panic("PartitionManager: byte lease (%llu GPU, %llu host) "
              "over-subscribes the free pool (%llu GPU, %llu host)",
              static_cast<unsigned long long>(gpu),
              static_cast<unsigned long long>(host),
              static_cast<unsigned long long>(freeGpuBytes()),
              static_cast<unsigned long long>(freeHostBytes()));
    return bookLease(partitionBytes(whole_, gpu, host), gpu, host);
}

PartitionManager::Slot&
PartitionManager::checkLease(const Lease* lease, const char* op)
{
    if (lease == nullptr || !lease->active())
        panic("PartitionManager: %s of an inactive lease", op);
    auto i = static_cast<std::size_t>(lease->slot);
    if (i >= table_.size() || !table_[i].inUse)
        panic("PartitionManager: double release of slot %d (%s of a "
              "lease already reclaimed)",
              lease->slot, op);
    if (table_[i].leaseId != lease->id)
        panic("PartitionManager: stale lease for slot %d (%s of "
              "generation %llu, slot now holds generation %llu); "
              "double release would corrupt the free pool",
              lease->slot, op,
              static_cast<unsigned long long>(lease->id),
              static_cast<unsigned long long>(table_[i].leaseId));
    return table_[i];
}

void
PartitionManager::resize(Lease* lease, Bytes gpu, Bytes host)
{
    Slot& s = checkLease(lease, "resize");
    if (gpu > s.gpu && gpu - s.gpu > freeGpuBytes())
        panic("PartitionManager: resize grows slot %d by %llu GPU "
              "bytes but only %llu are free",
              lease->slot,
              static_cast<unsigned long long>(gpu - s.gpu),
              static_cast<unsigned long long>(freeGpuBytes()));
    if (host > s.host && host - s.host > freeHostBytes())
        panic("PartitionManager: resize grows slot %d by %llu host "
              "bytes but only %llu are free",
              lease->slot,
              static_cast<unsigned long long>(host - s.host),
              static_cast<unsigned long long>(freeHostBytes()));
    leasedGpu_ = leasedGpu_ - s.gpu + gpu;
    leasedHost_ = leasedHost_ - s.host + host;
    s.gpu = gpu;
    s.host = host;
    lease->sys = partitionBytes(whole_, gpu, host);
    ++resizes_;
}

PartitionManager::Lease
PartitionManager::split(Lease* lease, double fraction)
{
    if (fraction <= 0.0 || fraction >= 1.0)
        panic("PartitionManager: split fraction must be in (0, 1), "
              "got %g",
              fraction);
    Slot& s = checkLease(lease, "split");
    const Bytes carveGpu = static_cast<Bytes>(
        static_cast<double>(s.gpu) * fraction);
    const Bytes carveHost = static_cast<Bytes>(
        static_cast<double>(s.host) * fraction);
    if (carveGpu == 0 && s.gpu > 0)
        panic("PartitionManager: split of slot %d carves zero GPU "
              "bytes (lease too small for fraction %g)",
              lease->slot, fraction);
    // Shrink the parent by exactly the carved bytes (conservation),
    // then book the child straight out of the freed capacity.
    leasedGpu_ -= carveGpu;
    leasedHost_ -= carveHost;
    s.gpu -= carveGpu;
    s.host -= carveHost;
    lease->sys = partitionBytes(whole_, s.gpu, s.host);
    ++resizes_;
    return bookLease(partitionBytes(whole_, carveGpu, carveHost),
                     carveGpu, carveHost);
}

void
PartitionManager::merge(Lease* into, Lease* from)
{
    Slot& dst = checkLease(into, "merge");
    Slot& src = checkLease(from, "merge");
    if (&dst == &src)
        panic("PartitionManager: merging slot %d into itself",
              into->slot);
    const Bytes gpu = src.gpu;
    const Bytes host = src.host;
    release(from);
    // release() returned src's bytes to the pool; take them back for
    // the destination so the merge conserves every byte.
    leasedGpu_ += gpu;
    leasedHost_ += host;
    dst.gpu += gpu;
    dst.host += host;
    into->sys = partitionBytes(whole_, dst.gpu, dst.host);
    ++resizes_;
}

void
PartitionManager::release(Lease* lease)
{
    Slot& s = checkLease(lease, "release");
    s.inUse = false;
    s.leaseId = 0;
    leasedGpu_ -= s.gpu;
    leasedHost_ -= s.host;
    s.gpu = 0;
    s.host = 0;
    --activeLeases_;
    ++reclaimed_;
    lease->slot = -1;
    lease->id = 0;
}

}  // namespace g10
