#include "partition.h"

#include "common/logging.h"

namespace g10 {

SystemConfig
partitionShare(const SystemConfig& whole, double fraction)
{
    SystemConfig part = whole;
    part.gpuMemBytes = static_cast<Bytes>(
        static_cast<double>(whole.gpuMemBytes) * fraction);
    part.hostMemBytes = static_cast<Bytes>(
        static_cast<double>(whole.hostMemBytes) * fraction);
    return part;
}

PartitionManager::PartitionManager(const SystemConfig& whole, int slots)
    : whole_(whole)
{
    if (slots < 1)
        fatal("PartitionManager: slots must be >= 1, got %d", slots);
    inUse_.assign(static_cast<std::size_t>(slots), false);
    free_ = slots;
    slotSys_ = partitionShare(
        whole_, 1.0 / static_cast<double>(slots));
}

PartitionManager::Lease
PartitionManager::acquire()
{
    return acquireWeighted(1.0 / static_cast<double>(slots()));
}

PartitionManager::Lease
PartitionManager::acquireWeighted(double fraction)
{
    if (free_ == 0)
        panic("PartitionManager: no free partition slot "
              "(%d leased); admission control must gate acquire()",
              slots());
    for (std::size_t i = 0; i < inUse_.size(); ++i) {
        if (inUse_[i])
            continue;
        inUse_[i] = true;
        --free_;
        ++granted_;
        Lease l;
        l.slot = static_cast<int>(i);
        l.sys = partitionShare(whole_, fraction);
        return l;
    }
    panic("PartitionManager: free count %d but no free slot", free_);
}

void
PartitionManager::release(Lease* lease)
{
    if (lease == nullptr || !lease->active())
        panic("PartitionManager: releasing an inactive lease");
    auto i = static_cast<std::size_t>(lease->slot);
    if (i >= inUse_.size() || !inUse_[i])
        panic("PartitionManager: double release of slot %d",
              lease->slot);
    inUse_[i] = false;
    ++free_;
    ++reclaimed_;
    lease->slot = -1;
}

}  // namespace g10
