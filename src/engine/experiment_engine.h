/**
 * @file
 * Thread-pooled experiment runner: executes grids of ExperimentConfigs
 * and WorkloadMixes concurrently across worker threads.
 *
 * Every run is an isolated, deterministic simulation (its RunConfig
 * carries an explicit seed and no state is shared between runs), so
 * results are bit-identical regardless of worker count or completion
 * order — the pool only changes wall-clock time. Results come back in
 * input order.
 */

#ifndef G10_ENGINE_EXPERIMENT_ENGINE_H
#define G10_ENGINE_EXPERIMENT_ENGINE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "api/experiment.h"
#include "engine/multi_tenant.h"
#include "engine/workload_mix.h"

namespace g10 {

/** A fixed pool of worker threads running simulation jobs. */
class ExperimentEngine
{
  public:
    /**
     * @param workers pool size; 0 = one per hardware thread (min 1)
     */
    explicit ExperimentEngine(unsigned workers = 0);

    /** Joins all workers (waits for queued tasks to finish). */
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine&) = delete;
    ExperimentEngine& operator=(const ExperimentEngine&) = delete;

    /** Number of worker threads in the pool. */
    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Run fn(0) .. fn(n-1) across the pool; blocks until all complete.
     * fn must not touch shared mutable state (each index is one
     * independent simulation).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)>& fn);

    /**
     * Enqueue one task for the pool — the incremental feed the probe
     * scheduler uses: where parallelFor ships a pre-sized grid and
     * blocks, submit() returns immediately and the caller tracks
     * completion itself (ProbeScheduler counts in-flight probes under
     * its own lock). The task runs on a worker or inside any thread's
     * tryRunOne() pitch-in.
     */
    void submit(std::function<void()> task);

    /**
     * Pop and run one queued task on the calling thread; false when
     * the queue was empty. Blocked consumers (a thread waiting on a
     * result another task will produce) call this in a loop so a
     * 1-worker pool — or a pool whose workers are all blocked as
     * consumers themselves — still drains the queue instead of
     * deadlocking.
     */
    bool tryRunOne();

    /** Run every config; results in input order. */
    std::vector<ExecStats>
    runGrid(const std::vector<ExperimentConfig>& grid);

    /**
     * Run every config against one pre-built trace (amortizes trace
     * construction); results in input order.
     */
    std::vector<ExecStats>
    runGridOnTrace(const KernelTrace& trace,
                   const std::vector<ExperimentConfig>& grid);

    /**
     * Like runGrid(), but each result carries its config echo — the
     * shape writeGridJson() serializes.
     */
    std::vector<RunResult>
    runGridResults(const std::vector<ExperimentConfig>& grid);

    /** runGridOnTrace() with config echoes; results in input order. */
    std::vector<RunResult>
    runGridResultsOnTrace(const KernelTrace& trace,
                          const std::vector<ExperimentConfig>& grid);

    /** Run every workload mix; results in input order. */
    std::vector<MixResult>
    runMixes(const std::vector<WorkloadMix>& mixes);

    /**
     * Instantiate every design in @p designs for one (trace, platform)
     * pair across the pool — the G10-family entries each run their
     * compile pipeline (compileG10Plan), which is independent per
     * design and whose plans are read-only after build, so grid sweeps
     * and serving engines can compile plans concurrently. Results in
     * input order, bit-identical regardless of worker count.
     */
    std::vector<DesignInstance>
    compileDesignsOnTrace(const KernelTrace& trace,
                          const SystemConfig& sys,
                          const std::vector<std::string>& designs);

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workReady_;
    bool stopping_ = false;
};

}  // namespace g10

#endif  // G10_ENGINE_EXPERIMENT_ENGINE_H
