/**
 * @file
 * Multi-tenant workload descriptions: one JobSpec per co-located DNN
 * training job, a WorkloadMix grouping N of them on one shared
 * GPU + host DRAM + SSD platform, and a strict `key = value` mix-file
 * parser for the CLI (`g10multi <mix>` / `g10sim --mix <mix>`).
 */

#ifndef G10_ENGINE_WORKLOAD_MIX_H
#define G10_ENGINE_WORKLOAD_MIX_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/system_config.h"
#include "common/types.h"
#include "models/model_zoo.h"
#include "policies/registry.h"

namespace g10 {

/** One tenant: a DNN training job entering the shared machine. */
struct JobSpec
{
    /** Display name; defaults to "<model>-<batch>#<index>". */
    std::string name;

    ModelKind model = ModelKind::ResNet152;

    /** Paper-scale batch size; 0 = the model's Fig. 11 batch. */
    int batchSize = 0;

    /**
     * Memory-management design this job runs under, by PolicyRegistry
     * name (built-in or registered custom policy).
     */
    std::string design = "g10";

    /**
     * Scheduling weight (>= 1). Under MixSched::Priority a job with
     * priority p receives ~p times the kernel-interleaving share of a
     * priority-1 job (stride scheduling over the jobs' virtual times).
     */
    int priority = 1;

    /** Simulated time at which the job arrives. */
    TimeNs arrivalNs = 0;

    /** Training iterations to replay; the last one is measured. */
    int iterations = 2;

    /**
     * Relative share of the partitioned GPU/host memory (normalized
     * across the mix). 1.0 everywhere = equal split.
     */
    double memWeight = 1.0;
};

/** How the engine interleaves kernels across tenants. */
enum class MixSched
{
    RoundRobin,  ///< fair: always step the job furthest behind in time
    Priority,    ///< stride scheduling weighted by JobSpec::priority
};

/** Display name for a scheduling mode. */
const char* mixSchedName(MixSched sched);

/** N jobs consolidated onto one simulated machine. */
struct WorkloadMix
{
    std::vector<JobSpec> jobs;

    /** Platform before scaling (Table 2 defaults). */
    SystemConfig sys;

    /** Divide batches and capacities by this factor (1 = paper scale). */
    unsigned scaleDown = 16;

    MixSched sched = MixSched::RoundRobin;

    /** Base RNG seed; job i derives seed + i. */
    std::uint64_t seed = 42;

    /**
     * Also run every job alone on the full (unpartitioned) machine to
     * report per-job slowdown under consolidation.
     */
    bool isolatedBaseline = true;
};

/**
 * Parse a mix file. Unknown keys, malformed values, and empty mixes are
 * fatal (exit 1) with file/line diagnostics. Format:
 *
 *   # mix-level keys
 *   scale    = 16            # 1/N platform scale
 *   sched    = roundrobin    # roundrobin | priority
 *   seed     = 42
 *   isolated = 1             # compute per-job isolated baselines
 *   gpu_mem_gb / host_mem_gb / ssd_gbps / pcie_gbps = <platform knobs>
 *
 *   # one line per job: "job = <Model> key=value ..."
 *   job = ResNet152 batch=512 design=g10 priority=1 arrival_ms=0
 *   job = BERT batch=128 design=g10 priority=2 iterations=2 weight=1.5
 */
WorkloadMix parseMixFile(const std::string& path);

}  // namespace g10

#endif  // G10_ENGINE_WORKLOAD_MIX_H
