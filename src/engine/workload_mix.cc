#include "workload_mix.h"

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/parse_util.h"

namespace g10 {

const char*
mixSchedName(MixSched sched)
{
    switch (sched) {
      case MixSched::RoundRobin: return "round-robin";
      case MixSched::Priority: return "priority";
    }
    return "?";
}

namespace {

/** Parse an integer; fatal with location on malformed input. */
long long
parseInt(const std::string& v, const std::string& path, std::size_t line,
         const std::string& key)
{
    long long out = 0;
    if (!parseIntStrict(v, &out))
        fatal("%s:%zu: '%s' needs an integer, got '%s'", path.c_str(),
              line, key.c_str(), v.c_str());
    return out;
}

/** Parse a double; fatal with location on malformed input. */
double
parseDouble(const std::string& v, const std::string& path,
            std::size_t line, const std::string& key)
{
    double out = 0.0;
    if (!parseDoubleStrict(v, &out))
        fatal("%s:%zu: '%s' needs a number, got '%s'", path.c_str(),
              line, key.c_str(), v.c_str());
    return out;
}

/** Parse one "job = <Model> k=v ..." payload into a JobSpec. */
JobSpec
parseJobLine(const std::string& payload, const std::string& path,
             std::size_t line)
{
    std::stringstream ss(payload);
    std::string model_name;
    if (!(ss >> model_name))
        fatal("%s:%zu: 'job =' needs at least a model name",
              path.c_str(), line);

    JobSpec job;
    job.model = modelKindFromName(model_name);
    std::string tok;
    while (ss >> tok) {
        auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size())
            fatal("%s:%zu: job attribute '%s' is not key=value",
                  path.c_str(), line, tok.c_str());
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        if (key == "batch") {
            job.batchSize =
                static_cast<int>(parseInt(val, path, line, key));
        } else if (key == "design") {
            if (!PolicyRegistry::instance().contains(val))
                fatal("%s:%zu: unknown design '%s' (registered: %s)",
                      path.c_str(), line, val.c_str(),
                      PolicyRegistry::instance().knownNames().c_str());
            job.design = val;
        } else if (key == "priority") {
            job.priority =
                static_cast<int>(parseInt(val, path, line, key));
            if (job.priority < 1 || job.priority > 1000)
                fatal("%s:%zu: priority must be in [1, 1000]",
                      path.c_str(), line);
        } else if (key == "arrival_ms") {
            job.arrivalNs = static_cast<TimeNs>(
                parseDouble(val, path, line, key) *
                static_cast<double>(MSEC));
            if (job.arrivalNs < 0)
                fatal("%s:%zu: arrival_ms must be >= 0", path.c_str(),
                      line);
        } else if (key == "iterations") {
            job.iterations =
                static_cast<int>(parseInt(val, path, line, key));
            if (job.iterations < 1)
                fatal("%s:%zu: iterations must be >= 1", path.c_str(),
                      line);
        } else if (key == "weight") {
            job.memWeight = parseDouble(val, path, line, key);
            if (job.memWeight <= 0.0)
                fatal("%s:%zu: weight must be > 0", path.c_str(), line);
        } else if (key == "name") {
            job.name = val;
        } else {
            fatal("%s:%zu: unknown job attribute '%s' (expected batch, "
                  "design, priority, arrival_ms, iterations, weight, "
                  "name)",
                  path.c_str(), line, key.c_str());
        }
    }
    if (job.batchSize <= 0)
        job.batchSize = paperBatchSize(job.model);
    return job;
}

}  // namespace

WorkloadMix
parseMixFile(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open mix file '%s'", path.c_str());

    WorkloadMix mix;
    std::set<std::string> seen;  // scalar keys may not repeat
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(f, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);

        std::stringstream ss(line);
        std::string key, eq;
        if (!(ss >> key))
            continue;  // blank / comment-only line
        if (!(ss >> eq) || eq != "=")
            fatal("%s:%zu: expected 'key = value'", path.c_str(),
                  lineno);

        if (key == "job") {
            std::string payload;
            std::getline(ss, payload);
            mix.jobs.push_back(parseJobLine(payload, path, lineno));
            continue;
        }

        std::string value, extra;
        if (!(ss >> value))
            fatal("%s:%zu: '%s =' is missing a value", path.c_str(),
                  lineno, key.c_str());
        if (ss >> extra)
            fatal("%s:%zu: trailing garbage '%s' after value",
                  path.c_str(), lineno, extra.c_str());
        if (!seen.insert(key).second)
            fatal("%s:%zu: duplicate key '%s'", path.c_str(), lineno,
                  key.c_str());

        if (key == "scale") {
            long long v = parseInt(value, path, lineno, key);
            if (v < 1)
                fatal("%s:%zu: scale must be >= 1", path.c_str(),
                      lineno);
            mix.scaleDown = static_cast<unsigned>(v);
        } else if (key == "sched") {
            if (value == "roundrobin" || value == "round-robin")
                mix.sched = MixSched::RoundRobin;
            else if (value == "priority")
                mix.sched = MixSched::Priority;
            else
                fatal("%s:%zu: unknown sched '%s' (roundrobin | "
                      "priority)",
                      path.c_str(), lineno, value.c_str());
        } else if (key == "seed") {
            mix.seed = static_cast<std::uint64_t>(
                parseInt(value, path, lineno, key));
        } else if (key == "isolated") {
            long long v = parseInt(value, path, lineno, key);
            mix.isolatedBaseline = (v != 0);
        } else if (key == "gpu_mem_gb") {
            double v = parseDouble(value, path, lineno, key);
            if (v <= 0.0)
                fatal("%s:%zu: gpu_mem_gb must be > 0", path.c_str(),
                      lineno);
            mix.sys.gpuMemBytes = static_cast<Bytes>(v * 1e9);
        } else if (key == "host_mem_gb") {
            mix.sys.hostMemBytes = static_cast<Bytes>(
                parseDouble(value, path, lineno, key) * 1e9);
        } else if (key == "ssd_gbps") {
            mix.sys.setSsdBandwidthGBps(
                parseDouble(value, path, lineno, key));
        } else if (key == "pcie_gbps") {
            mix.sys.pcieGBps = parseDouble(value, path, lineno, key);
        } else {
            fatal("%s:%zu: unknown key '%s' (expected job, scale, "
                  "sched, seed, isolated, gpu_mem_gb, host_mem_gb, "
                  "ssd_gbps, pcie_gbps)",
                  path.c_str(), lineno, key.c_str());
        }
    }

    if (mix.jobs.empty())
        fatal("%s: mix defines no jobs", path.c_str());
    return mix;
}

}  // namespace g10
