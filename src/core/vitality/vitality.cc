#include "vitality.h"

#include <algorithm>

#include "common/logging.h"

namespace g10 {

VitalityAnalysis::VitalityAnalysis(const KernelTrace& trace,
                                   TimeNs launch_overhead)
    : trace_(&trace), launchOverhead_(launch_overhead)
{
    kernelStart_ = trace.idealStartTimes(launch_overhead);

    auto uses = trace.buildUseLists();
    liveness_.resize(trace.numTensors());

    for (std::size_t ti = 0; ti < trace.numTensors(); ++ti) {
        const Tensor& t = trace.tensor(static_cast<TensorId>(ti));
        TensorLiveness& lv = liveness_[ti];
        lv.tensor = t.id;
        lv.isGlobal = t.isGlobal();
        lv.uses = std::move(uses[ti]);
        if (lv.uses.empty()) {
            // Unused tensor: no periods; weights may legitimately be
            // untouched (frozen), intermediates should not happen.
            if (!lv.isGlobal)
                warn("intermediate tensor '%s' is never used",
                     t.name.c_str());
            continue;
        }
        lv.birth = lv.isGlobal ? kInvalidKernel : lv.uses.front();
        lv.death = lv.uses.back();

        // Periods between consecutive uses.
        for (std::size_t u = 0; u + 1 < lv.uses.size(); ++u) {
            KernelId a = lv.uses[u];
            KernelId b = lv.uses[u + 1];
            if (b == a || b == a + 1)
                continue;  // no gap
            InactivePeriod p;
            p.tensor = t.id;
            p.lastUse = a;
            p.nextUse = b;
            p.startNs = kernelEnd(a);
            p.endNs = kernelStart_[static_cast<std::size_t>(b)];
            if (p.lengthNs() > 0)
                periods_.push_back(p);
        }

        // Wrap-around period for globals: last use -> first use of the
        // next iteration.
        if (lv.isGlobal) {
            InactivePeriod p;
            p.tensor = t.id;
            p.lastUse = lv.uses.back();
            p.nextUse = lv.uses.front();
            p.startNs = kernelEnd(lv.uses.back());
            p.endNs = iterationLengthNs() +
                      kernelStart_[static_cast<std::size_t>(
                          lv.uses.front())];
            if (p.lengthNs() > 0) {
                p.wrapsIteration = true;
                periods_.push_back(p);
            }
        }
    }
}

TimeNs
VitalityAnalysis::kernelEnd(KernelId k) const
{
    if (k < 0 || static_cast<std::size_t>(k) >= trace_->numKernels())
        panic("kernelEnd: bad kernel id %d", k);
    return kernelStart_[static_cast<std::size_t>(k)] +
           trace_->kernel(k).durationNs;
}

StepFunction
VitalityAnalysis::memoryPressure() const
{
    StepFunction f;
    const TimeNs iter_end = iterationLengthNs();
    for (const auto& lv : liveness_) {
        if (lv.uses.empty() && !lv.isGlobal)
            continue;
        const Tensor& t = trace_->tensor(lv.tensor);
        if (lv.isGlobal) {
            f.add(0, iter_end, static_cast<double>(t.bytes));
        } else {
            TimeNs born = kernelStart_[static_cast<std::size_t>(lv.birth)];
            TimeNs dead = kernelEnd(lv.death);
            f.add(born, dead, static_cast<double>(t.bytes));
        }
    }
    return f;
}

Bytes
VitalityAnalysis::peakMemoryBytes() const
{
    return static_cast<Bytes>(memoryPressure().maxValue());
}

std::vector<Bytes>
VitalityAnalysis::activeBytesPerKernel() const
{
    std::vector<Bytes> out(trace_->numKernels(), 0);
    const TraceUseIndex& idx = trace_->useIndex();
    for (const auto& k : trace_->kernels()) {
        Bytes sum = 0;
        const auto ki = static_cast<std::size_t>(k.id);
        for (std::uint32_t ti = idx.kernelTensorsOff[ki];
             ti < idx.kernelTensorsOff[ki + 1]; ++ti)
            sum += trace_->tensor(idx.kernelTensors[ti]).bytes;
        out[ki] = sum;
    }
    return out;
}

std::vector<Bytes>
VitalityAnalysis::liveBytesPerKernel() const
{
    // Sweep births/deaths over kernel indices.
    std::vector<std::int64_t> delta(trace_->numKernels() + 1, 0);
    Bytes global_bytes = 0;
    for (const auto& lv : liveness_) {
        const Tensor& t = trace_->tensor(lv.tensor);
        if (lv.isGlobal) {
            global_bytes += t.bytes;
            continue;
        }
        if (lv.uses.empty())
            continue;
        delta[static_cast<std::size_t>(lv.birth)] +=
            static_cast<std::int64_t>(t.bytes);
        delta[static_cast<std::size_t>(lv.death) + 1] -=
            static_cast<std::int64_t>(t.bytes);
    }
    std::vector<Bytes> out(trace_->numKernels(), 0);
    std::int64_t run = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        run += delta[i];
        out[i] = global_bytes + static_cast<Bytes>(run);
    }
    return out;
}

}  // namespace g10
