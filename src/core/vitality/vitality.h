/**
 * @file
 * Tensor vitality analysis (paper §4.2).
 *
 * Consumes a kernel trace and derives, for every tensor: birth/death
 * kernels, the list of kernels that use it, and every *inactive period* --
 * a maximal interval during which the tensor is alive but unused, i.e. the
 * window in which it may be migrated out and must be migrated back.
 *
 * Global tensors (weights) additionally get a *wrap-around* inactive
 * period spanning from their last use in one iteration to their first use
 * in the next, exactly as in the paper's Fig. 6 (W1 turns inactive in the
 * backward pass and active again in the next iteration's forward pass).
 */

#ifndef G10_CORE_VITALITY_VITALITY_H
#define G10_CORE_VITALITY_VITALITY_H

#include <vector>

#include "common/step_function.h"
#include "common/types.h"
#include "graph/trace.h"

namespace g10 {

/** One maximal interval in which a live tensor is unused. */
struct InactivePeriod
{
    TensorId tensor = kInvalidTensor;

    /** Kernel whose completion opens the period (its last active use). */
    KernelId lastUse = kInvalidKernel;

    /**
     * Kernel whose start closes the period (the next active use). For
     * wrap-around periods this is the first-use kernel of the *next*
     * iteration.
     */
    KernelId nextUse = kInvalidKernel;

    /** Ideal-timing start (end of lastUse kernel). */
    TimeNs startNs = 0;

    /**
     * Ideal-timing end (start of nextUse kernel). For wrap-around
     * periods this exceeds the iteration length by nextUse's offset in
     * the following iteration.
     */
    TimeNs endNs = 0;

    /** True for a global tensor's cross-iteration period. */
    bool wrapsIteration = false;

    TimeNs lengthNs() const { return endNs - startNs; }
};

/** Liveness summary for one tensor. */
struct TensorLiveness
{
    TensorId tensor = kInvalidTensor;

    /** First kernel that uses the tensor (kInvalidKernel for globals,
     *  which are live from program start). */
    KernelId birth = kInvalidKernel;

    /** Last kernel that uses the tensor. Intermediates die after it. */
    KernelId death = kInvalidKernel;

    /** All kernels using the tensor, ascending. */
    std::vector<KernelId> uses;

    bool isGlobal = false;
};

/**
 * The analysis pass. Runs once over a trace (O(kernels + uses)) and then
 * serves queries; all time values use the ideal (infinite-memory) kernel
 * timeline, which is what the compile-time scheduler plans against.
 */
class VitalityAnalysis
{
  public:
    /**
     * @param trace            the one-iteration kernel trace
     * @param launch_overhead  per-kernel launch gap used for the ideal
     *                         timeline
     */
    VitalityAnalysis(const KernelTrace& trace, TimeNs launch_overhead);

    const KernelTrace& trace() const { return *trace_; }

    /** Per-tensor liveness, indexed by TensorId. */
    const std::vector<TensorLiveness>& liveness() const
    {
        return liveness_;
    }

    /** Every inactive period of every tensor. */
    const std::vector<InactivePeriod>& periods() const { return periods_; }

    /** Ideal start time of each kernel; index numKernels() = iter end. */
    const std::vector<TimeNs>& kernelStart() const { return kernelStart_; }

    /** Ideal end time of kernel @p k. */
    TimeNs kernelEnd(KernelId k) const;

    /** Length of one ideal iteration. */
    TimeNs iterationLengthNs() const
    {
        return kernelStart_.back();
    }

    /**
     * Live bytes over the ideal timeline with *no* migrations: every
     * tensor contributes its size from birth to death (globals always).
     * This is the paper's initial "memory pressure" curve.
     */
    StepFunction memoryPressure() const;

    /** Peak of memoryPressure(). */
    Bytes peakMemoryBytes() const;

    /** Bytes of tensors active in (used by) each kernel (Fig. 2). */
    std::vector<Bytes> activeBytesPerKernel() const;

    /** Bytes of tensors live at each kernel (Fig. 2 "all"). */
    std::vector<Bytes> liveBytesPerKernel() const;

  private:
    const KernelTrace* trace_;
    std::vector<TimeNs> kernelStart_;
    std::vector<TensorLiveness> liveness_;
    std::vector<InactivePeriod> periods_;
    TimeNs launchOverhead_;
};

}  // namespace g10

#endif  // G10_CORE_VITALITY_VITALITY_H
