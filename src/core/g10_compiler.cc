#include "g10_compiler.h"

#include "common/logging.h"

namespace g10 {

CompiledPlan
compileG10Plan(const KernelTrace& trace, const SystemConfig& config,
               G10CompilerOptions options)
{
    CompiledPlan out;
    out.vitality = std::make_unique<VitalityAnalysis>(
        trace, config.kernelLaunchOverheadNs);

    EvictionScheduler evictor(*out.vitality, config, options.eviction);
    out.schedule = evictor.run();
    out.prefetchStats = schedulePrefetches(
        out.schedule, evictor.bandwidth(), config, options.prefetch);
    out.plan = buildMigrationPlan(*out.vitality, out.schedule);

    inform("g10 compile: %s b=%d: %zu migrations (%.1f GB ssd, %.1f GB "
           "host), peak %.2f -> %.2f GB",
           trace.modelName().c_str(), trace.batchSize(),
           out.schedule.migrations.size(),
           static_cast<double>(out.schedule.bytesToSsd) / 1e9,
           static_cast<double>(out.schedule.bytesToHost) / 1e9,
           static_cast<double>(out.schedule.initialPeakBytes) / 1e9,
           static_cast<double>(out.schedule.finalPeakBytes) / 1e9);
    return out;
}

}  // namespace g10
