/**
 * @file
 * The end-to-end G10 compile-time pipeline: vitality analysis ->
 * smart eviction scheduling -> smart prefetch scheduling -> instrumented
 * migration plan. This is the main entry point a framework integration
 * would call once per model/batch configuration.
 */

#ifndef G10_CORE_G10_COMPILER_H
#define G10_CORE_G10_COMPILER_H

#include <memory>

#include "common/system_config.h"
#include "core/sched/eviction_scheduler.h"
#include "core/sched/plan_builder.h"
#include "core/sched/prefetch_scheduler.h"
#include "core/vitality/vitality.h"
#include "graph/trace.h"

namespace g10 {

/** Which migration paths the compiled plan may use. */
struct G10CompilerOptions
{
    EvictionSchedulerParams eviction;
    PrefetchSchedulerParams prefetch;
};

/** Everything the compile stage produces for one configuration. */
struct CompiledPlan
{
    std::unique_ptr<VitalityAnalysis> vitality;
    EvictionSchedule schedule;
    PrefetchStats prefetchStats;
    MigrationPlan plan;
};

/**
 * Run the full pipeline.
 *
 * @param trace   one-iteration kernel trace (kept alive by the caller)
 * @param config  platform description (capacities/bandwidths)
 * @param options path/tuning knobs; defaults give full G10
 */
CompiledPlan compileG10Plan(const KernelTrace& trace,
                            const SystemConfig& config,
                            G10CompilerOptions options = {});

}  // namespace g10

#endif  // G10_CORE_G10_COMPILER_H
