/**
 * @file
 * Smart tensor eviction scheduling (paper §4.3, Algorithm 1).
 *
 * Iteratively selects the inactive period whose eviction yields the
 * highest benefit/cost ratio -- benefit being the area of the
 * memory-pressure curve above GPU capacity that the eviction removes
 * (Fig. 7's shaded region), cost being the eviction + prefetch I/O time
 * -- commits it, updates the pressure curve and per-channel bandwidth
 * timelines, and repeats until pressure fits under capacity or no
 * beneficial candidate remains.
 *
 * Destination choice follows Algorithm 1: SSD first (capacity), host
 * memory when the SSD write path is saturated in the eviction window and
 * the host still has room for the tensor over its inactive period.
 *
 * Candidate selection uses a lazy-greedy priority queue: benefits only
 * shrink as evictions are committed (pressure only decreases), so a
 * popped candidate whose recomputed score still dominates the next
 * entry's stale score is globally best. This keeps the loop near
 * O(P log P) instead of Algorithm 1's literal O(P^2) re-sort without
 * changing its choices.
 */

#ifndef G10_CORE_SCHED_EVICTION_SCHEDULER_H
#define G10_CORE_SCHED_EVICTION_SCHEDULER_H

#include <vector>

#include "common/step_function.h"
#include "common/system_config.h"
#include "core/sched/bandwidth_model.h"
#include "core/sched/schedule_types.h"
#include "core/vitality/vitality.h"

namespace g10 {

struct EvictionSchedule;

/** Tunables for the eviction pass. */
struct EvictionSchedulerParams
{
    /** Safety margin subtracted from the latest safe prefetch time. */
    TimeNs prefetchSafetyNs = 50 * USEC;

    /** Ignore periods shorter than this (not worth a migration). */
    TimeNs minPeriodNs = 100 * USEC;

    /** Ignore tensors smaller than this (page-compaction territory). */
    Bytes minTensorBytes = 64 * KiB;

    /** Allow evictions to the SSD (G10, G10-GDS). */
    bool allowSsd = true;

    /** Allow evictions to host memory (G10, G10-Host). */
    bool allowHost = true;

    /**
     * Fraction of host DRAM available for staging tensors (the rest
     * belongs to the OS/framework).
     */
    double hostMemFraction = 1.0;

    /**
     * Optional warm start for incremental re-planning (TENSILE-style):
     * a schedule previously compiled for the *same model topology* at a
     * different batch size or GPU capacity (elastic partition resizes
     * replay a schedule compiled at capacity C against capacity C′).
     * Its (tensor, period) picks are re-validated against the new
     * vitality analysis and committed first; the greedy search then
     * only runs for the pressure the capacity/topology delta left
     * uncovered — when the replayed picks already fit under capacity
     * the O(P log P) search is skipped entirely. On a shrink (C′ < C)
     * every prior pick stays beneficial and replays; on a grow
     * (C′ > C) the replay stops as soon as pressure fits and the
     * now-unnecessary tail is dropped. The replay outcome is reported
     * in EvictionSchedule::{warmReplayed, warmDropped}. Borrowed
     * pointer; the schedule must outlive run(). nullptr = cold compile
     * (bit-identical to the pre-warm-start behavior).
     */
    const EvictionSchedule* warmStart = nullptr;
};

/** Output of the eviction pass (prefetches still at their latest time). */
struct EvictionSchedule
{
    std::vector<ScheduledMigration> migrations;

    /** Pressure curve after all committed evictions. */
    StepFunction pressure;

    /** Peak pressure before any eviction. */
    Bytes initialPeakBytes = 0;

    /** Peak pressure after scheduling. */
    Bytes finalPeakBytes = 0;

    /** Planned eviction traffic per destination. */
    Bytes bytesToSsd = 0;
    Bytes bytesToHost = 0;

    /** Number of candidate evaluations (for complexity tests). */
    std::uint64_t evaluations = 0;

    /** GPU capacity this schedule was compiled against (the C in a
     *  later "replay at C′" warm start). */
    Bytes scheduledForGpuBytes = 0;

    /** Warm-start replay outcome: prior picks recommitted vs. prior
     *  picks the capacity/topology delta invalidated or made
     *  unnecessary. Both zero on cold compiles. */
    std::uint64_t warmReplayed = 0;
    std::uint64_t warmDropped = 0;

    /** Fraction of the prior schedule that replayed (0 when cold). */
    double warmHitRate() const
    {
        const std::uint64_t total = warmReplayed + warmDropped;
        return total > 0
            ? static_cast<double>(warmReplayed) /
                  static_cast<double>(total)
            : 0.0;
    }
};

/** Runs Algorithm 1 over one iteration's vitality analysis. */
class EvictionScheduler
{
  public:
    EvictionScheduler(const VitalityAnalysis& vitality,
                      const SystemConfig& config,
                      EvictionSchedulerParams params = {});

    /** Execute the scheduling loop and return the committed schedule. */
    EvictionSchedule run();

    /** The bandwidth model after run() (prefetch pass continues on it). */
    BandwidthModel& bandwidth() { return bandwidth_; }

  private:
    struct Candidate
    {
        std::size_t periodIndex;
        double staleScore;
    };

    /**
     * Benefit/cost of evicting the tensor of period @p pi right now.
     * @return score, plus the window/durations via out-params.
     */
    double scorePeriod(std::size_t pi, const StepFunction& pressure,
                       double cap, TimeNs* evict_complete,
                       TimeNs* prefetch_latest) const;

    /**
     * Choose a destination, check feasibility, and commit period @p pi
     * (Algorithm 1 lines 7-17 plus the bandwidth/pressure updates).
     * @return false when no destination has room (nothing committed)
     */
    bool tryCommit(std::size_t pi, double host_cap,
                   EvictionSchedule* out);

    const VitalityAnalysis& vitality_;
    SystemConfig config_;
    EvictionSchedulerParams params_;
    BandwidthModel bandwidth_;

    // Host staging occupancy over planned time (bytes).
    StepFunction hostMemUse_;
};

}  // namespace g10

#endif  // G10_CORE_SCHED_EVICTION_SCHEDULER_H
