#include "bandwidth_model.h"

#include <algorithm>

#include "common/logging.h"

namespace g10 {

const char*
memLocName(MemLoc loc)
{
    switch (loc) {
      case MemLoc::Gpu: return "GPU";
      case MemLoc::Host: return "Host";
      case MemLoc::Ssd: return "SSD";
    }
    return "?";
}

std::pair<const MigrationInstr*, const MigrationInstr*>
MigrationPlan::instrsBefore(KernelId k) const
{
    if (kernelFirstInstr.empty())
        return {nullptr, nullptr};
    auto idx = static_cast<std::size_t>(k);
    if (idx + 1 >= kernelFirstInstr.size())
        return {nullptr, nullptr};
    const MigrationInstr* base = instrs.data();
    return {base + kernelFirstInstr[idx], base + kernelFirstInstr[idx + 1]};
}

BandwidthModel::BandwidthModel(const SystemConfig& config)
    : config_(config)
{
    if (config.pcieGBps <= 0.0 || config.ssdReadGBps <= 0.0 ||
        config.ssdWriteGBps <= 0.0)
        fatal("bandwidths must be positive");
}

double
BandwidthModel::evictGBps(MemLoc dest) const
{
    switch (dest) {
      case MemLoc::Ssd:
        return std::min(config_.pcieGBps, config_.ssdWriteGBps);
      case MemLoc::Host:
        return config_.pcieGBps;
      case MemLoc::Gpu:
        break;
    }
    panic("evictGBps: GPU is not an eviction destination");
}

double
BandwidthModel::prefetchGBps(MemLoc src) const
{
    switch (src) {
      case MemLoc::Ssd:
        return std::min(config_.pcieGBps, config_.ssdReadGBps);
      case MemLoc::Host:
        return config_.pcieGBps;
      case MemLoc::Gpu:
        break;
    }
    panic("prefetchGBps: GPU is not a prefetch source");
}

TimeNs
BandwidthModel::evictDuration(Bytes bytes, MemLoc dest) const
{
    TimeNs lat = (dest == MemLoc::Ssd) ? config_.ssdWriteLatencyNs : 0;
    return lat + transferTimeNs(bytes, evictGBps(dest));
}

TimeNs
BandwidthModel::prefetchDuration(Bytes bytes, MemLoc src) const
{
    TimeNs lat = (src == MemLoc::Ssd) ? config_.ssdReadLatencyNs : 0;
    return lat + transferTimeNs(bytes, prefetchGBps(src));
}

TimeNs
BandwidthModel::drainTime(const StepFunction& util, double cap_gbps,
                          double rate_cap_gbps, TimeNs t0, Bytes bytes)
{
    if (bytes == 0)
        return t0;
    // Never model less than 2% of the channel: a fully saturated plan
    // still trickles (and completes; the scheduler then sees the huge
    // cost and avoids it).
    const double floor_rate = cap_gbps * 0.02;
    double remaining = static_cast<double>(bytes);
    TimeNs cur = t0;
    // Walk far enough ahead: worst case at the floor rate. The cursor
    // yields one segment at a time, so the common fast drain never
    // materializes (or even visits) the full horizon.
    TimeNs horizon =
        t0 + transferTimeNs(bytes, floor_rate) + 100 * MSEC;
    for (auto seg = util.cursor(t0, horizon); !seg.done(); seg.next()) {
        double avail = std::min(rate_cap_gbps,
                                std::max(cap_gbps - seg.value(),
                                         floor_rate));
        double span_ns = static_cast<double>(seg.end() - cur);
        double can_move = avail * span_ns;  // GB/s * ns == bytes
        if (can_move >= remaining) {
            cur += static_cast<TimeNs>(remaining / avail);
            return std::max(cur, t0 + 1);
        }
        remaining -= can_move;
        cur = seg.end();
    }
    // Past the horizon the channel is unreserved.
    cur += transferTimeNs(static_cast<Bytes>(remaining),
                          std::min(rate_cap_gbps, cap_gbps));
    return std::max(cur, t0 + 1);
}

FlowSchedule
BandwidthModel::planEvict(TimeNs t0, Bytes bytes, MemLoc dest) const
{
    FlowSchedule f;
    f.start = t0;
    double rate = evictGBps(dest);
    TimeNs done = drainTime(pcieOut_, config_.pcieGBps, rate, t0, bytes);
    if (dest == MemLoc::Ssd) {
        done = std::max(done, drainTime(ssdWrite_, config_.ssdWriteGBps,
                                        rate, t0, bytes));
        done += config_.ssdWriteLatencyNs;
    }
    f.complete = done;
    return f;
}

FlowSchedule
BandwidthModel::planPrefetch(TimeNs t0, Bytes bytes, MemLoc src) const
{
    FlowSchedule f;
    f.start = t0;
    double rate = prefetchGBps(src);
    TimeNs done = drainTime(pcieIn_, config_.pcieGBps, rate, t0, bytes);
    if (src == MemLoc::Ssd) {
        done = std::max(done, drainTime(ssdRead_, config_.ssdReadGBps,
                                        rate, t0, bytes));
        done += config_.ssdReadLatencyNs;
    }
    f.complete = done;
    return f;
}

TimeNs
BandwidthModel::latestPrefetchStart(TimeNs deadline, Bytes bytes,
                                    MemLoc src) const
{
    // Start from the uncontended bound and push earlier until the
    // contention-aware completion meets the deadline (few iterations
    // suffice; fall back to a full uncontended slot earlier).
    TimeNs start = deadline - prefetchDuration(bytes, src);
    for (int iter = 0; iter < 6; ++iter) {
        FlowSchedule f = planPrefetch(start, bytes, src);
        if (f.complete <= deadline)
            return start;
        start -= (f.complete - deadline);
    }
    return start;
}

bool
BandwidthModel::ssdEvictSaturated(TimeNs t0, Bytes bytes) const
{
    // Saturated = the contention-aware eviction takes noticeably longer
    // than the uncontended transfer (Algorithm 1's "to_ssd_traffic is
    // full during t_r .. t_r + t_s").
    FlowSchedule f = planEvict(t0, bytes, MemLoc::Ssd);
    TimeNs ideal = evictDuration(bytes, MemLoc::Ssd);
    return f.duration() > ideal + ideal / 2;
}

bool
BandwidthModel::ssdPrefetchSaturated(TimeNs t0, Bytes bytes) const
{
    FlowSchedule f = planPrefetch(t0, bytes, MemLoc::Ssd);
    TimeNs ideal = prefetchDuration(bytes, MemLoc::Ssd);
    return f.duration() > ideal + ideal / 2;
}

void
BandwidthModel::reserveEvict(const FlowSchedule& f, Bytes bytes,
                             MemLoc dest)
{
    if (f.complete <= f.start)
        return;
    double rate = static_cast<double>(bytes) /
                  static_cast<double>(f.complete - f.start);
    pcieOut_.add(f.start, f.complete, rate);
    if (dest == MemLoc::Ssd)
        ssdWrite_.add(f.start, f.complete, rate);
}

void
BandwidthModel::reservePrefetch(const FlowSchedule& f, Bytes bytes,
                                MemLoc src)
{
    if (f.complete <= f.start)
        return;
    double rate = static_cast<double>(bytes) /
                  static_cast<double>(f.complete - f.start);
    pcieIn_.add(f.start, f.complete, rate);
    if (src == MemLoc::Ssd)
        ssdRead_.add(f.start, f.complete, rate);
}

void
BandwidthModel::releasePrefetch(const FlowSchedule& f, Bytes bytes,
                                MemLoc src)
{
    if (f.complete <= f.start)
        return;
    double rate = static_cast<double>(bytes) /
                  static_cast<double>(f.complete - f.start);
    pcieIn_.add(f.start, f.complete, -rate);
    if (src == MemLoc::Ssd)
        ssdRead_.add(f.start, f.complete, -rate);

    // Cancelled reservations leave behind breakpoints whose deltas
    // cancelled out exactly; periodically sweep them so every later
    // drainTime walk doesn't step over dead segments. compact() merges
    // only bitwise-equal adjacent segments, leaving the function
    // itself unchanged; later walks then accumulate over the merged
    // span in one step instead of two, an ulp-level FP regrouping that
    // the golden-determinism suite pins as harmless in practice.
    if (++releasesSinceCompact_ >= kCompactInterval) {
        releasesSinceCompact_ = 0;
        pcieIn_.compact();
        ssdRead_.compact();
    }
}

}  // namespace g10
