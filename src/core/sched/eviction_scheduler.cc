#include "eviction_scheduler.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace g10 {

EvictionScheduler::EvictionScheduler(const VitalityAnalysis& vitality,
                                     const SystemConfig& config,
                                     EvictionSchedulerParams params)
    : vitality_(vitality), config_(config), params_(params),
      bandwidth_(config)
{
    if (!params_.allowSsd && !params_.allowHost)
        fatal("eviction scheduler needs at least one destination");
}

double
EvictionScheduler::scorePeriod(std::size_t pi,
                               const StepFunction& pressure, double cap,
                               TimeNs* evict_complete,
                               TimeNs* prefetch_latest) const
{
    const InactivePeriod& p = vitality_.periods()[pi];
    const Tensor& t = vitality_.trace().tensor(p.tensor);
    const Bytes size = t.bytes;

    // Conservative duration estimates use the slower allowed path so the
    // benefit window is valid for either destination.
    MemLoc slow_dest = params_.allowSsd ? MemLoc::Ssd : MemLoc::Host;
    TimeNs evict_dur = bandwidth_.evictDuration(size, slow_dest);
    TimeNs prefetch_dur = bandwidth_.prefetchDuration(size, slow_dest);

    TimeNs t_free = p.startNs + evict_dur;
    TimeNs t_pf = p.endNs - prefetch_dur - params_.prefetchSafetyNs;
    if (evict_complete)
        *evict_complete = t_free;
    if (prefetch_latest)
        *prefetch_latest = t_pf;

    if (t_pf <= t_free)
        return -1.0;  // period too short to hide the round trip

    // Paper Fig. 7: benefit = area of pressure above capacity that this
    // eviction removes; per-instant removal is capped by tensor size.
    double area = pressure.integralAbove(t_free, t_pf, cap,
                                         static_cast<double>(size));
    if (area <= 0.0)
        return 0.0;

    double cost_ns = static_cast<double>(evict_dur + prefetch_dur);
    return area / cost_ns;
}

bool
EvictionScheduler::tryCommit(std::size_t pi, double host_cap,
                             EvictionSchedule* out)
{
    const InactivePeriod& p = vitality_.periods()[pi];
    const Tensor& t = vitality_.trace().tensor(p.tensor);
    const Bytes size = t.bytes;

    // ---- Destination choice (Algorithm 1 lines 7-17). ----
    // SSD first for capacity; divert to host when the flash path is
    // under pressure in either the eviction window or the planned
    // prefetch window (a tensor written to the SSD must also come
    // *back* through the saturated read path in time).
    TimeNs pf_ssd = std::max(
        p.startNs,
        p.endNs - bandwidth_.prefetchDuration(size, MemLoc::Ssd) -
            params_.prefetchSafetyNs);
    MemLoc dest = MemLoc::Ssd;
    if (!params_.allowSsd) {
        dest = MemLoc::Host;
    } else if (params_.allowHost &&
               (bandwidth_.ssdEvictSaturated(p.startNs, size) ||
                bandwidth_.ssdPrefetchSaturated(pf_ssd, size))) {
        dest = MemLoc::Host;
    }
    if (dest == MemLoc::Host) {
        // Host staging must have room for the whole inactive period.
        double host_peak = hostMemUse_.maxOver(p.startNs, p.endNs) +
                           static_cast<double>(size);
        if (host_peak > host_cap) {
            if (params_.allowSsd) {
                dest = MemLoc::Ssd;  // fall back to SSD
            } else {
                return false;  // host-only mode and host is full
            }
        }
    }

    // ---- Feasibility under contention. ----
    FlowSchedule evict_flow = bandwidth_.planEvict(p.startNs, size,
                                                   dest);
    TimeNs deadline = p.endNs - params_.prefetchSafetyNs;
    TimeNs pf_latest =
        bandwidth_.latestPrefetchStart(deadline, size, dest);
    if (pf_latest <= evict_flow.complete) {
        // The round trip cannot be fully hidden any more. When the
        // program is bandwidth-bound this is true for *all* the
        // remaining excess; planned-but-late streaming still beats
        // demand faulting and allocator thrash, so commit with the
        // prefetch as late as possible: it will arrive past its
        // deadline (contention), but it must not return earlier
        // than necessary and re-inflate memory pressure.
        pf_latest = std::max(
            evict_flow.complete + 1,
            deadline - bandwidth_.prefetchDuration(size, dest));
    }

    // ---- Commit. ----
    ScheduledMigration m;
    m.periodIndex = pi;
    m.tensor = p.tensor;
    m.bytes = size;
    m.dest = dest;
    m.evictStart = evict_flow.start;
    m.evictComplete = evict_flow.complete;
    m.prefetchLatest = pf_latest;
    m.prefetchStart = pf_latest;
    FlowSchedule pf_flow =
        bandwidth_.planPrefetch(pf_latest, size, dest);
    m.prefetchComplete = pf_flow.complete;
    m.prefetchDuration = pf_flow.duration();
    m.wrapsIteration = p.wrapsIteration;

    out->pressure.add(m.evictComplete, m.prefetchStart,
                      -static_cast<double>(size));
    bandwidth_.reserveEvict(evict_flow, size, dest);
    bandwidth_.reservePrefetch(pf_flow, size, dest);
    if (dest == MemLoc::Host) {
        hostMemUse_.add(p.startNs, p.endNs,
                        static_cast<double>(size));
        out->bytesToHost += size;
    } else {
        out->bytesToSsd += size;
    }
    out->migrations.push_back(m);
    return true;
}

EvictionSchedule
EvictionScheduler::run()
{
    const auto& periods = vitality_.periods();
    const double cap = static_cast<double>(config_.gpuMemBytes);
    const double host_cap = static_cast<double>(config_.hostMemBytes) *
                            params_.hostMemFraction;

    EvictionSchedule out;
    out.pressure = vitality_.memoryPressure();
    out.initialPeakBytes =
        static_cast<Bytes>(out.pressure.maxValue());
    out.scheduledForGpuBytes = config_.gpuMemBytes;

    std::vector<bool> committed(periods.size(), false);

    // Warm-start replay: re-validate the previous schedule's picks
    // against the new vitality analysis and capacity, committing the
    // ones that are still beneficial. Period indices line up when the
    // topology is unchanged (same model, different batch or partition
    // capacity). A capacity shrink leaves every pick beneficial (more
    // pressure sits above the lower cap); a capacity grow makes a
    // tail of them unnecessary — the replay stops as soon as pressure
    // fits and drops the rest. Entries that no longer match the
    // topology or no longer help are dropped individually. Either
    // way, the greedy search below only runs for whatever pressure
    // the delta left uncovered.
    // The pressure peak only moves when tryCommit() lands a migration,
    // so every convergence check below reuses this hoisted value and
    // refreshes it exactly once per successful commit instead of
    // re-asking the (possibly dirty) curve each iteration.
    double peak = out.pressure.maxValue();

    if (params_.warmStart != nullptr) {
        const auto& prior = params_.warmStart->migrations;
        for (std::size_t wi = 0; wi < prior.size(); ++wi) {
            const ScheduledMigration& wm = prior[wi];
            if (peak <= cap) {
                // Capacity grew past the remaining picks' benefit.
                out.warmDropped += prior.size() - wi;
                break;
            }
            std::size_t pi = wm.periodIndex;
            if (pi >= periods.size() ||
                periods[pi].tensor != wm.tensor) {
                ++out.warmDropped;  // topology drifted
                continue;
            }
            const InactivePeriod& p = periods[pi];
            const Tensor& t = vitality_.trace().tensor(p.tensor);
            if (t.bytes < params_.minTensorBytes ||
                p.lengthNs() < params_.minPeriodNs) {
                ++out.warmDropped;
                continue;
            }
            double s = scorePeriod(pi, out.pressure, cap, nullptr,
                                   nullptr);
            ++out.evaluations;
            if (s <= 0.0) {
                ++out.warmDropped;
                continue;
            }
            if (tryCommit(pi, host_cap, &out)) {
                committed[pi] = true;
                ++out.warmReplayed;
                peak = out.pressure.maxValue();
            } else {
                ++out.warmDropped;
            }
        }
    }

    // When pressure already fits under capacity — the model simply
    // fits, or the replayed warm start brought it under — the greedy
    // search has nothing to do: the loop below would discard every
    // candidate unpopped, so skip seeding the heap (and its
    // O(periods) scoring scans) entirely.
    const bool search = peak > cap;

    // Seed the lazy-greedy heap with optimistic scores.
    auto cmp = [](const Candidate& a, const Candidate& b) {
        return a.staleScore < b.staleScore;
    };
    std::priority_queue<Candidate, std::vector<Candidate>, decltype(cmp)>
        heap(cmp);

    if (search) {
        for (std::size_t i = 0; i < periods.size(); ++i) {
            if (committed[i])
                continue;  // already replayed from the warm start
            const InactivePeriod& p = periods[i];
            const Tensor& t = vitality_.trace().tensor(p.tensor);
            if (t.bytes < params_.minTensorBytes)
                continue;
            if (p.lengthNs() < params_.minPeriodNs)
                continue;
            double s = scorePeriod(i, out.pressure, cap, nullptr,
                                   nullptr);
            ++out.evaluations;
            if (s > 0.0)
                heap.push(Candidate{i, s});
        }
    }

    while (!heap.empty()) {
        if (peak <= cap)
            break;  // memory pressure fits; Algorithm 1 line 3

        Candidate top = heap.top();
        heap.pop();
        if (committed[top.periodIndex])
            continue;

        TimeNs evict_complete = 0;
        TimeNs prefetch_latest = 0;
        double fresh = scorePeriod(top.periodIndex, out.pressure, cap,
                                   &evict_complete, &prefetch_latest);
        ++out.evaluations;
        if (fresh <= 0.0)
            continue;  // no longer beneficial
        if (!heap.empty() && fresh + 1e-12 < heap.top().staleScore) {
            // Stale: someone else may now be better; reinsert.
            heap.push(Candidate{top.periodIndex, fresh});
            continue;
        }

        if (tryCommit(top.periodIndex, host_cap, &out)) {
            committed[top.periodIndex] = true;
            peak = out.pressure.maxValue();
        }
    }

    out.finalPeakBytes = static_cast<Bytes>(peak);
    std::sort(out.migrations.begin(), out.migrations.end(),
              [](const ScheduledMigration& a, const ScheduledMigration& b) {
                  return a.evictStart < b.evictStart;
              });
    return out;
}

}  // namespace g10
