/**
 * @file
 * Lowers a committed migration schedule to the instrumented instruction
 * stream (paper §4.4 "Code Instrumentation", Fig. 9).
 *
 * Each scheduled eviction/prefetch is anchored to a position in the
 * kernel launch stream: pre-evictions right after their tensor's last
 * active use; prefetches before the first kernel whose ideal start time
 * is at or past the chosen prefetch time. Wrap-around migrations of
 * global tensors anchor into the next iteration's prefix, which the
 * runtime executes on every iteration of the training loop.
 */

#ifndef G10_CORE_SCHED_PLAN_BUILDER_H
#define G10_CORE_SCHED_PLAN_BUILDER_H

#include <iosfwd>
#include <string>

#include "core/sched/eviction_scheduler.h"
#include "core/sched/schedule_types.h"
#include "core/vitality/vitality.h"

namespace g10 {

/** Build the instrumented plan from a finished schedule. */
MigrationPlan buildMigrationPlan(const VitalityAnalysis& vitality,
                                 const EvictionSchedule& schedule);

/**
 * Emit a human-readable instrumented-program listing in the style of the
 * paper's Fig. 9 (kernel launches interleaved with g10_* calls), limited
 * to kernels [first, last).
 */
void printInstrumentedProgram(std::ostream& os,
                              const VitalityAnalysis& vitality,
                              const MigrationPlan& plan,
                              KernelId first, KernelId last);

}  // namespace g10

#endif  // G10_CORE_SCHED_PLAN_BUILDER_H
