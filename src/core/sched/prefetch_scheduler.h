/**
 * @file
 * Smart tensor prefetching (paper §4.4).
 *
 * The eviction pass leaves every prefetch at its *latest safe* time,
 * which maximizes pressure suppression but tolerates zero estimation
 * error. This pass walks the committed migrations in latest-safe-time
 * order and eagerly moves each prefetch to the earliest time at which
 * the GPU can hold the whole tensor without exceeding capacity (Fig. 8),
 * buying slack against profiling errors (§7.6) and I/O jitter.
 */

#ifndef G10_CORE_SCHED_PREFETCH_SCHEDULER_H
#define G10_CORE_SCHED_PREFETCH_SCHEDULER_H

#include "common/system_config.h"
#include "core/sched/bandwidth_model.h"
#include "core/sched/eviction_scheduler.h"

namespace g10 {

/** Tunables for the eager-prefetch pass. */
struct PrefetchSchedulerParams
{
    /**
     * Fraction of GPU capacity eager prefetches may fill up to. Slightly
     * below 1.0 leaves allocator headroom for workspaces the scheduler
     * cannot see.
     */
    double capacityFraction = 0.95;
};

/** Statistics of the eager pass. */
struct PrefetchStats
{
    std::size_t rescheduled = 0;   ///< prefetches moved earlier
    TimeNs totalSlackGainedNs = 0; ///< sum of (latest - chosen)
};

/**
 * Rewrites migrations' prefetchStart in place (and re-reserves their
 * bandwidth) using the post-eviction pressure curve in @p schedule.
 */
PrefetchStats
schedulePrefetches(EvictionSchedule& schedule, BandwidthModel& bandwidth,
                   const SystemConfig& config,
                   PrefetchSchedulerParams params = {});

}  // namespace g10

#endif  // G10_CORE_SCHED_PREFETCH_SCHEDULER_H
