/**
 * @file
 * Shared types for migration planning: memory locations, scheduled
 * migrations, and the instrumented migration plan (the paper's
 * g10_prefetch / g10_pre_evict instruction stream, Fig. 9).
 */

#ifndef G10_CORE_SCHED_SCHEDULE_TYPES_H
#define G10_CORE_SCHED_SCHEDULE_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace g10 {

/** Tier of the unified memory space a page/tensor can live in. */
enum class MemLoc : std::uint8_t { Gpu = 0, Host = 1, Ssd = 2 };

/** Human-readable tier name. */
const char* memLocName(MemLoc loc);

/**
 * One eviction+prefetch pair committed by the eviction scheduler for a
 * specific tensor inactive period (times on the ideal timeline).
 */
struct ScheduledMigration
{
    std::size_t periodIndex = 0;   ///< into VitalityAnalysis::periods()
    TensorId tensor = kInvalidTensor;
    Bytes bytes = 0;
    MemLoc dest = MemLoc::Ssd;

    TimeNs evictStart = 0;         ///< period start (tensor turns inactive)
    TimeNs evictComplete = 0;      ///< GPU copy of the tensor is freed
    TimeNs prefetchLatest = 0;     ///< latest safe prefetch start (§4.4)
    TimeNs prefetchStart = 0;      ///< chosen (possibly eager) start
    TimeNs prefetchComplete = 0;   ///< planned arrival back in GPU memory
    TimeNs prefetchDuration = 0;
    bool wrapsIteration = false;
};

/** Kinds of instrumented migration instructions. */
enum class InstrKind : std::uint8_t { Prefetch, PreEvict };

/**
 * One instruction inserted into the GPU program. Instructions are
 * anchored to positions in the kernel stream ("issue just before kernel
 * N launches"), the same mechanism as the paper's compiler
 * instrumentation, so they keep working when runtime timing drifts from
 * the ideal timeline (§7.6).
 */
struct MigrationInstr
{
    InstrKind kind = InstrKind::Prefetch;
    TensorId tensor = kInvalidTensor;
    Bytes bytes = 0;
    MemLoc dest = MemLoc::Ssd;       ///< PreEvict destination
    KernelId issueBefore = 0;        ///< anchor: kernel index in [0, N]
    TimeNs plannedTime = 0;          ///< ideal-time the scheduler chose
    std::size_t migrationIndex = 0;  ///< back-ref into the schedule
};

/** The complete instrumented plan for one training iteration. */
struct MigrationPlan
{
    std::vector<MigrationInstr> instrs;  ///< sorted by issueBefore

    /** Index of the first instruction anchored at each kernel id. */
    std::vector<std::uint32_t> kernelFirstInstr;

    /** Instructions to issue before kernel @p k launches. */
    std::pair<const MigrationInstr*, const MigrationInstr*>
    instrsBefore(KernelId k) const;

    std::size_t size() const { return instrs.size(); }
    bool empty() const { return instrs.empty(); }
};

}  // namespace g10

#endif  // G10_CORE_SCHED_SCHEDULE_TYPES_H
