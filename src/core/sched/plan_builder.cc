#include "plan_builder.h"

#include <algorithm>
#include <ostream>

#include "common/logging.h"

namespace g10 {

namespace {

/** First kernel whose ideal start is >= t (within one iteration). */
KernelId
anchorKernel(const std::vector<TimeNs>& starts, TimeNs iter_len, TimeNs t)
{
    // Wrap-around times land in the next iteration's prefix.
    if (t >= iter_len)
        t -= iter_len;
    if (t < 0)
        t = 0;
    auto it = std::lower_bound(starts.begin(), starts.end() - 1, t);
    auto idx = static_cast<std::size_t>(it - starts.begin());
    // starts has numKernels()+1 entries; clamp to a real kernel.
    if (idx >= starts.size() - 1)
        idx = starts.size() - 2;
    return static_cast<KernelId>(idx);
}

}  // namespace

MigrationPlan
buildMigrationPlan(const VitalityAnalysis& vitality,
                   const EvictionSchedule& schedule)
{
    const auto& starts = vitality.kernelStart();
    const TimeNs iter_len = vitality.iterationLengthNs();
    const std::size_t num_kernels = vitality.trace().numKernels();

    MigrationPlan plan;
    plan.instrs.reserve(schedule.migrations.size() * 2);

    for (std::size_t mi = 0; mi < schedule.migrations.size(); ++mi) {
        const ScheduledMigration& m = schedule.migrations[mi];
        const InactivePeriod& p = vitality.periods()[m.periodIndex];

        // Pre-evict right after the last active use completes, i.e.
        // before the following kernel launches.
        MigrationInstr evict;
        evict.kind = InstrKind::PreEvict;
        evict.tensor = m.tensor;
        evict.bytes = m.bytes;
        evict.dest = m.dest;
        evict.issueBefore = static_cast<KernelId>(
            (static_cast<std::size_t>(p.lastUse) + 1) % num_kernels);
        evict.plannedTime = m.evictStart;
        evict.migrationIndex = mi;
        plan.instrs.push_back(evict);

        MigrationInstr pf;
        pf.kind = InstrKind::Prefetch;
        pf.tensor = m.tensor;
        pf.bytes = m.bytes;
        pf.dest = MemLoc::Gpu;
        pf.issueBefore = anchorKernel(starts, iter_len, m.prefetchStart);
        pf.plannedTime = m.prefetchStart;
        pf.migrationIndex = mi;
        // Never anchor a prefetch after the tensor's next use.
        if (!m.wrapsIteration && pf.issueBefore > p.nextUse)
            pf.issueBefore = p.nextUse;
        plan.instrs.push_back(pf);
    }

    std::sort(plan.instrs.begin(), plan.instrs.end(),
              [](const MigrationInstr& a, const MigrationInstr& b) {
                  if (a.issueBefore != b.issueBefore)
                      return a.issueBefore < b.issueBefore;
                  return a.plannedTime < b.plannedTime;
              });

    // Bucket index: kernelFirstInstr[k] .. kernelFirstInstr[k+1].
    plan.kernelFirstInstr.assign(num_kernels + 1, 0);
    std::size_t cursor = 0;
    for (std::size_t k = 0; k < num_kernels; ++k) {
        plan.kernelFirstInstr[k] = static_cast<std::uint32_t>(cursor);
        while (cursor < plan.instrs.size() &&
               plan.instrs[cursor].issueBefore ==
                   static_cast<KernelId>(k))
            ++cursor;
    }
    plan.kernelFirstInstr[num_kernels] =
        static_cast<std::uint32_t>(plan.instrs.size());
    return plan;
}

void
printInstrumentedProgram(std::ostream& os,
                         const VitalityAnalysis& vitality,
                         const MigrationPlan& plan, KernelId first,
                         KernelId last)
{
    const KernelTrace& trace = vitality.trace();
    last = std::min<KernelId>(
        last, static_cast<KernelId>(trace.numKernels()));
    for (KernelId k = std::max<KernelId>(first, 0); k < last; ++k) {
        auto [begin, end] = plan.instrsBefore(k);
        for (const MigrationInstr* it = begin; it != end; ++it) {
            const Tensor& t = trace.tensor(it->tensor);
            if (it->kind == InstrKind::PreEvict) {
                os << "  g10_pre_evict(" << t.name << ", " << t.bytes
                   << ", " << memLocName(it->dest) << ");\n";
            } else {
                os << "  g10_prefetch(" << t.name << ", " << t.bytes
                   << ");\n";
            }
        }
        const Kernel& kern = trace.kernel(k);
        os << "  // Kernel " << k << " [" << opKindName(kern.kind)
           << "]\n";
        os << "  " << kern.name << "(";
        bool comma = false;
        for (TensorId t : kern.inputs) {
            os << (comma ? ", " : "") << trace.tensor(t).name;
            comma = true;
        }
        for (TensorId t : kern.outputs) {
            os << (comma ? ", " : "") << "&" << trace.tensor(t).name;
            comma = true;
        }
        os << ");\n";
    }
    os.flush();
}

}  // namespace g10
