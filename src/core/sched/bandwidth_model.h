/**
 * @file
 * Compile-time bandwidth model of the PCIe/SSD fabric.
 *
 * The eviction scheduler needs to (a) predict when a planned migration
 * *completes* given everything else already scheduled on the fabric, and
 * (b) detect when the SSD path is saturated so Algorithm 1 can fall back
 * to host memory (lines 7-17).
 *
 * Flows are modeled fluidly: each channel keeps a utilization timeline
 * (GB/s in flight vs. time), and a new flow of B bytes starting at t0
 * completes when the channel's *available* bandwidth integrated from t0
 * reaches B. A flow crossing two resources (PCIe direction + SSD side)
 * completes at the max of both drains. This captures the queueing that a
 * per-flow "bytes / bandwidth" estimate misses -- the difference between
 * a plan that meets its eviction deadlines and one that silently
 * oversubscribes the link.
 *
 * Four directed channels are modeled:
 *   GPU -> SSD   (PCIe out + SSD write bandwidth)
 *   SSD -> GPU   (PCIe in  + SSD read bandwidth)
 *   GPU -> Host  (PCIe out)
 *   Host -> GPU  (PCIe in)
 */

#ifndef G10_CORE_SCHED_BANDWIDTH_MODEL_H
#define G10_CORE_SCHED_BANDWIDTH_MODEL_H

#include "common/step_function.h"
#include "common/system_config.h"
#include "common/types.h"
#include "core/sched/schedule_types.h"

namespace g10 {

/** Planned timing of one migration flow. */
struct FlowSchedule
{
    TimeNs start = 0;
    TimeNs complete = 0;

    TimeNs duration() const { return complete - start; }
};

/** Durations and utilization tracking for planned migrations. */
class BandwidthModel
{
  public:
    explicit BandwidthModel(const SystemConfig& config);

    /** Uncontended time to evict @p bytes to @p dest. */
    TimeNs evictDuration(Bytes bytes, MemLoc dest) const;

    /** Uncontended time to prefetch @p bytes back from @p src. */
    TimeNs prefetchDuration(Bytes bytes, MemLoc src) const;

    /** Effective GB/s of the (uncontended) eviction path to @p dest. */
    double evictGBps(MemLoc dest) const;

    /** Effective GB/s of the (uncontended) prefetch path from @p src. */
    double prefetchGBps(MemLoc src) const;

    /** Contention-aware completion of an eviction starting at @p t0. */
    FlowSchedule planEvict(TimeNs t0, Bytes bytes, MemLoc dest) const;

    /** Contention-aware completion of a prefetch starting at @p t0. */
    FlowSchedule planPrefetch(TimeNs t0, Bytes bytes, MemLoc src) const;

    /**
     * Latest start so that a prefetch of @p bytes from @p src completes
     * by @p deadline under current reservations (conservative: found by
     * backward refinement; never later than the uncontended bound).
     */
    TimeNs latestPrefetchStart(TimeNs deadline, Bytes bytes,
                               MemLoc src) const;

    /**
     * Is the SSD write path too busy to absorb an eviction of @p bytes
     * starting at @p t0 without significantly overrunning the
     * uncontended duration (Algorithm 1 line 9)?
     */
    bool ssdEvictSaturated(TimeNs t0, Bytes bytes) const;

    /** Same check for the SSD read path of a prefetch. */
    bool ssdPrefetchSaturated(TimeNs t0, Bytes bytes) const;

    /** Record a planned eviction flow on the relevant channels. */
    void reserveEvict(const FlowSchedule& f, Bytes bytes, MemLoc dest);

    /** Record a planned prefetch flow on the relevant channels. */
    void reservePrefetch(const FlowSchedule& f, Bytes bytes, MemLoc src);

    /** Remove a previously reserved prefetch flow (rescheduling). */
    void releasePrefetch(const FlowSchedule& f, Bytes bytes, MemLoc src);

    const SystemConfig& config() const { return config_; }

  private:
    /**
     * Time at which a flow of @p bytes starting at @p t0 finishes
     * draining through a channel with capacity @p cap_gbps and existing
     * utilization @p util, at most at rate @p rate_cap_gbps.
     */
    static TimeNs drainTime(const StepFunction& util, double cap_gbps,
                            double rate_cap_gbps, TimeNs t0, Bytes bytes);

    SystemConfig config_;

    // Utilization (GB/s in flight) per channel over planned time.
    StepFunction ssdWrite_;
    StepFunction ssdRead_;
    StepFunction pcieOut_;  // GPU -> host/SSD direction
    StepFunction pcieIn_;   // host/SSD -> GPU direction

    /** Sweep dead breakpoints every this many released prefetches. */
    static constexpr int kCompactInterval = 16;
    int releasesSinceCompact_ = 0;
};

}  // namespace g10

#endif  // G10_CORE_SCHED_BANDWIDTH_MODEL_H
