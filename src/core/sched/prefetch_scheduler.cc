#include "prefetch_scheduler.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace g10 {

PrefetchStats
schedulePrefetches(EvictionSchedule& schedule, BandwidthModel& bandwidth,
                   const SystemConfig& config,
                   PrefetchSchedulerParams params)
{
    PrefetchStats stats;
    const double limit = static_cast<double>(config.gpuMemBytes) *
                         params.capacityFraction;

    // Traverse in latest-safe-prefetch-time order (§4.4).
    std::vector<std::size_t> order(schedule.migrations.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return schedule.migrations[a].prefetchLatest <
                         schedule.migrations[b].prefetchLatest;
              });

    for (std::size_t idx : order) {
        ScheduledMigration& m = schedule.migrations[idx];
        // Earliest the tensor could return: once its eviction finished.
        TimeNs t_min = m.evictComplete;
        TimeNs t_latest = m.prefetchLatest;
        if (t_latest <= t_min)
            continue;

        TimeNs chosen = schedule.pressure.earliestFit(
            t_min, t_latest, t_latest, static_cast<double>(m.bytes),
            limit);
        if (chosen >= t_latest)
            continue;  // no earlier slot fits; keep the latest-safe time

        // Move the prefetch: the tensor is resident from `chosen` on.
        schedule.pressure.add(chosen, t_latest,
                              static_cast<double>(m.bytes));
        FlowSchedule old{m.prefetchStart, m.prefetchComplete};
        bandwidth.releasePrefetch(old, m.bytes, m.dest);
        FlowSchedule moved = bandwidth.planPrefetch(chosen, m.bytes,
                                                    m.dest);
        bandwidth.reservePrefetch(moved, m.bytes, m.dest);
        stats.totalSlackGainedNs += t_latest - chosen;
        m.prefetchStart = moved.start;
        m.prefetchComplete = moved.complete;
        m.prefetchDuration = moved.duration();
        ++stats.rescheduled;
    }

    schedule.finalPeakBytes =
        static_cast<Bytes>(schedule.pressure.maxValue());
    return stats;
}

}  // namespace g10
