/**
 * @file
 * Sweep-scoped memoization of G10 plan compiles.
 *
 * The auto-knee search re-runs the *same* serving scenario at many
 * arrival rates. The offered class sequence is identical at every
 * rate (ServeSweep draws class picks from their own RNG stream), so
 * probe N+1 recompiles exactly the per-model warm-start chains probe N
 * already compiled — at ~10-100 ms per cold compile, the compiler
 * dominates the whole bisection. SweepPlanCache memoizes compiles
 * across probes (and across grid cells, baseline compiles, and fleet
 * nodes) keyed by everything the compile is a pure function of:
 *
 *   (compile options, model, batch, trace scale, SystemConfig
 *    fingerprint, warm-start schedule fingerprint)
 *
 * compileG10Plan() is deterministic, so a cached plan is bit-identical
 * to the plan a fresh compile would produce — knees, cell metrics and
 * ExecStats cannot change, only wall-clock time. Cell-local warm/cold
 * compile accounting is untouched: cells keep their own per-model seed
 * map and merely route the compile call itself through this cache.
 *
 * Thread safety: getOrCompile() may be called from concurrent pool
 * workers (grid cells, fleet nodes). Lookups and inserts take a mutex;
 * the compile itself runs outside the lock, so two workers racing on
 * one key may both compile — they produce identical plans and the
 * loser's result is simply dropped. Hit/miss totals are therefore
 * deterministic only when probes run sequentially per design (the
 * auto-knee path); results always are.
 */

#ifndef G10_SERVE_PLAN_CACHE_H
#define G10_SERVE_PLAN_CACHE_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "common/system_config.h"
#include "core/g10_compiler.h"

namespace g10 {

/**
 * Identity of one G10-family compile. Two compiles with equal keys
 * consume bit-identical inputs and therefore produce bit-identical
 * plans (the compiler is deterministic and takes nothing else).
 */
struct PlanKey
{
    /** Compile-options class (see planCompileOptionsKey()): G10 and
     *  G10-Host compile identical plans and share entries; G10-GDS
     *  (SSD-only) is a separate class. */
    int options = 0;
    int model = 0;        ///< ModelKind of the trace
    int batch = 0;        ///< batch size the trace was built at
    unsigned scaleDown = 1;  ///< trace/system scale divisor
    std::uint64_t sysFp = 0;   ///< fingerprintSystemConfig()
    std::uint64_t seedFp = 0;  ///< warm-start fingerprint; 0 = cold

    bool operator<(const PlanKey& o) const
    {
        return std::tie(options, model, batch, scaleDown, sysFp,
                        seedFp) < std::tie(o.options, o.model, o.batch,
                                           o.scaleDown, o.sysFp,
                                           o.seedFp);
    }
};

/** FNV-1a over every SystemConfig field the compiler can observe. */
std::uint64_t fingerprintSystemConfig(const SystemConfig& sys);

/**
 * FNV-1a over the parts of a warm-start schedule the replay reads:
 * the (period, tensor, bytes, dest, timing) tuple of every migration
 * plus the capacity it was compiled for. Never 0, so a cold compile
 * (seedFp = 0) can't collide with a warm one.
 */
std::uint64_t fingerprintSchedule(const EvictionSchedule& sched);

/**
 * Cross-probe compile cache, one per sweep (or shared wider: the
 * fleet shares one across nodes; benchmarks may share one across
 * back-to-back sweeps of the same spec family).
 */
class SweepPlanCache
{
  public:
    using CompileFn =
        std::function<std::shared_ptr<const CompiledPlan>()>;

    /**
     * Return the cached plan for @p key, or run @p compile (outside
     * the lock), insert its result, and return it.
     */
    std::shared_ptr<const CompiledPlan>
    getOrCompile(const PlanKey& key, const CompileFn& compile);

    /** Lookups that returned a cached plan. */
    std::uint64_t hits() const;

    /** Lookups that had to compile. */
    std::uint64_t misses() const;

    /** Distinct plans currently held. */
    std::uint64_t entries() const;

  private:
    mutable std::mutex mu_;
    std::map<PlanKey, std::shared_ptr<const CompiledPlan>> plans_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace g10

#endif  // G10_SERVE_PLAN_CACHE_H
