/**
 * @file
 * Request arrival processes for the open-loop serving simulator.
 *
 * Serving load is generated open-loop: arrival times do not depend on
 * how fast the system serves (a user does not wait for other users'
 * jobs before submitting). Three processes are modeled:
 *
 *  - Poisson: memoryless arrivals at a fixed rate, the classic
 *    steady-traffic model.
 *  - Bursty: an on/off modulated Poisson process — arrivals come at
 *    the given rate during ON windows and pause during OFF windows,
 *    modeling diurnal spikes and batch submissions.
 *  - Trace: a replayable arrival-trace file (one request per line,
 *    parsed as strictly as the mix-file format).
 *
 * All generation is seeded and uses raw engine draws converted with
 * fixed arithmetic (never std::*_distribution, whose algorithms are
 * implementation-defined), so a (seed, rate) pair replays the exact
 * same arrival sequence everywhere.
 */

#ifndef G10_SERVE_ARRIVAL_H
#define G10_SERVE_ARRIVAL_H

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/types.h"
#include "models/model_zoo.h"

namespace g10 {

/** Supported arrival processes. */
enum class ArrivalKind
{
    Poisson,  ///< memoryless arrivals at a fixed rate
    Bursty,   ///< Poisson modulated by on/off windows
    Trace,    ///< replayed from an arrival-trace file
};

/** Display/CLI name ("poisson", "bursty", "trace"). */
const char* arrivalKindName(ArrivalKind kind);

/** Parse an arrival kind name; false on unknown input. */
bool arrivalKindFromName(const std::string& name, ArrivalKind* out);

/** Arrival-process description (the serve file's `arrival` keys). */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;

    /** ON-window length for Bursty, seconds. */
    double burstOnSec = 0.05;

    /** OFF-window length for Bursty, seconds. */
    double burstOffSec = 0.05;

    /** Arrival-trace file for Trace. */
    std::string tracePath;
};

/**
 * Uniform double in (0, 1] from one raw engine draw — fixed 53-bit
 * conversion, identical on every platform (unlike
 * std::uniform_real_distribution). Exposed for deterministic weighted
 * picks elsewhere in the serving engine.
 */
double unitInterval(std::mt19937_64& engine);

/**
 * Generate @p count arrival times for a Poisson or Bursty process at
 * @p rate_per_sec (the ON-window rate for Bursty). Deterministic for a
 * (spec, rate, seed) triple; times are non-decreasing. fatal() when
 * called for ArrivalKind::Trace (replay the parsed file instead) or
 * with a non-positive rate.
 */
std::vector<TimeNs> generateArrivals(const ArrivalSpec& spec,
                                     double rate_per_sec, int count,
                                     std::uint64_t seed);

/** One request replayed from an arrival-trace file. */
struct TraceRequest
{
    TimeNs arrivalNs = 0;
    ModelKind model = ModelKind::ResNet152;

    /** Paper-scale batch size; 0 = the model's Fig. 11 batch. */
    int batchSize = 0;

    int iterations = 1;
    int priority = 1;
};

/**
 * Parse an arrival-trace file. Unknown keys, malformed values,
 * decreasing timestamps, and empty traces are fatal (exit 1) with
 * file/line diagnostics — the same strictness contract as the mix
 * parser. Format:
 *
 *   # '#' comments and blank lines are ignored
 *   # one request per line: "req = <arrival_ms> <Model> key=value ..."
 *   req = 0.0 ResNet152 batch=256
 *   req = 1.5 BERT iterations=2 priority=4
 *
 * Arrival times are non-decreasing milliseconds from simulation start.
 */
std::vector<TraceRequest> parseArrivalTrace(const std::string& path);

}  // namespace g10

#endif  // G10_SERVE_ARRIVAL_H
