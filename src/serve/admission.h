/**
 * @file
 * Bounded admission queue for the serving simulator.
 *
 * Requests that arrive while every partition slot is leased wait here;
 * when the queue itself is full the request is rejected (load
 * shedding — the open-loop source does not slow down). Three pluggable
 * ordering policies:
 *
 *  - FIFO: arrival order.
 *  - SJF: shortest job first, keyed by the compiled plan's
 *    ideal-timeline length × iterations (known at admission time
 *    because plans compile per job class).
 *  - Priority: highest JobSpec-style priority first, with a
 *    starvation guard — once the oldest waiter has queued longer than
 *    the guard window it is served next regardless of priority, so a
 *    stream of high-priority arrivals cannot starve the tail.
 *
 * All ordering ties break by arrival sequence, so the queue is fully
 * deterministic.
 */

#ifndef G10_SERVE_ADMISSION_H
#define G10_SERVE_ADMISSION_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace g10 {

/** Admission-ordering policies. */
enum class AdmitPolicy
{
    Fifo,      ///< arrival order
    Sjf,       ///< shortest compiled plan first
    Priority,  ///< highest priority first + starvation guard
};

/** Display/CLI name ("fifo", "sjf", "priority"). */
const char* admitPolicyName(AdmitPolicy policy);

/** Parse an admission policy name; false on unknown input. */
bool admitPolicyFromName(const std::string& name, AdmitPolicy* out);

/** One request waiting for a partition slot. */
struct QueuedJob
{
    std::size_t request = 0;   ///< request index in the cell
    TimeNs arrivalNs = 0;
    TimeNs serviceEstNs = 0;   ///< compiled plan length × iterations
    int priority = 1;

    /** Arrival sequence; assigned by offer() (tie-break key). */
    std::uint64_t seq = 0;
};

/** The bounded wait queue; see file header for the policies. */
class AdmissionQueue
{
  public:
    /**
     * @param policy        ordering discipline
     * @param capacity      max jobs waiting; offers beyond are rejected
     * @param starvation_ns Priority guard window; <= 0 disables it
     */
    AdmissionQueue(AdmitPolicy policy, std::size_t capacity,
                   TimeNs starvation_ns);

    /**
     * Enqueue @p job (its seq is assigned here).
     * @return false when the queue is full — the request is rejected
     */
    bool offer(QueuedJob job);

    /** Remove and return the policy's next job; panics when empty. */
    QueuedJob pop(TimeNs now);

    /**
     * The job pop(@p now) would return, without removing it (the
     * serving engine gates admission on the head job's capacity
     * needs under elastic partitions). Panics when empty.
     */
    const QueuedJob& peek(TimeNs now) const;

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** High-water mark of the queue depth. */
    std::size_t maxDepth() const { return maxDepth_; }

    /** Pops where the starvation guard overrode the priority order. */
    std::uint64_t starvationPromotions() const { return promotions_; }

  private:
    /** The index pop()/peek() select; *promoted reports whether the
     *  starvation guard overrode the priority order. */
    std::size_t selectIndex(TimeNs now, bool* promoted) const;

    AdmitPolicy policy_;
    std::size_t capacity_;
    TimeNs starvationNs_;

    // Small (bounded by capacity); linear selection keeps the policy
    // logic obvious and the order fully deterministic.
    std::vector<QueuedJob> q_;
    std::uint64_t nextSeq_ = 0;
    std::size_t maxDepth_ = 0;
    std::uint64_t promotions_ = 0;
};

}  // namespace g10

#endif  // G10_SERVE_ADMISSION_H
