/**
 * @file
 * Speculative parallel probe scheduler for the capacity-knee search.
 *
 * The auto-knee bisection is an inherently sequential decision chain:
 * probe N's sustained/overloaded verdict picks probe N+1's rate. What
 * *is* parallel about it is that each verdict has only two possible
 * successors — so while the decided probe runs, idle workers can
 * speculatively evaluate both possible next rates (and, budget
 * permitting, their children up to a bounded depth). Every probe
 * result is memoized in a ProbeCache keyed by (spec fingerprint,
 * search lane, rate), so no rate is ever simulated twice and a
 * mispredicted branch is pure prefetch — never re-work on the decided
 * path.
 *
 * Bit-identity contract: the consumer replays the *exact* sequential
 * search through a KneeCursor (a pure automaton of the historical
 * phase-1 doubling + phase-2 bisection loop) and only ever *reads*
 * memoized results, in the same order the sequential loop would have
 * computed them. Each probe is an isolated deterministic simulation,
 * so the knee, every decided cell's metrics, and the serialized
 * result document are byte-identical to the sequential search at any
 * worker count — speculation on or off. Wasted probes are dropped
 * wholesale (cells, counters, and all); they only ever cost
 * wall-clock on otherwise-idle workers.
 */

#ifndef G10_SERVE_PROBE_SCHEDULER_H
#define G10_SERVE_PROBE_SCHEDULER_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/arena.h"
#include "engine/experiment_engine.h"
#include "obs/counters.h"
#include "serve/serve_sim.h"

namespace g10 {

/**
 * The auto-knee search as a pure automaton: phase-1 geometric growth
 * from @p rateLo until the queue sheds (or the @p rateHi ceiling /
 * probe budget stops it), then phase-2 bisection of the bracket down
 * to ~5% of the knee. Step-for-step identical to the historical
 * sequential loop in ServeSweep::runAutoRates — the scheduler's
 * consumers and its speculation frontier both run on copies of this
 * cursor, which is what makes mispredicted branches *predictable*:
 * the two possible successors of any probe are advance(true) and
 * advance(false).
 */
class KneeCursor
{
  public:
    /** @param rateLo   first probe rate (ServeSpec::resolvedRateLo())
     *  @param rateHi   search ceiling; 0 = unbounded
     *  @param budget   max probes (done() immediately when < 1) */
    KneeCursor(double rateLo, double rateHi, int budget)
        : ceiling_(rateHi), budget_(budget), next_(rateLo)
    {
        if (budget_ < 1)
            done_ = true;
    }

    /** Search finished: knee() and used() are final. */
    bool done() const { return done_; }

    /** Rate of the pending probe (meaningless once done()). */
    double next() const { return next_; }

    /** Highest rate known sustained so far (0 = none yet). */
    double knee() const { return lo_; }

    /** Probes consumed so far. */
    int used() const { return used_; }

    /** Feed the pending probe's verdict and pick the next rate. */
    void advance(bool sustained)
    {
        ++used_;
        if (phase1_) {
            if (sustained) {
                lo_ = next_;
                if (ceiling_ > 0.0 && next_ >= ceiling_) {
                    done_ = true;  // sustained at the ceiling
                    return;
                }
                next_ *= 4.0;
                if (ceiling_ > 0.0)
                    next_ = std::min(next_, ceiling_);
            } else {
                hi_ = next_;
                phase1_ = false;
            }
        } else {
            if (sustained)
                lo_ = next_;
            else
                hi_ = next_;
        }
        if (used_ >= budget_) {
            done_ = true;
            return;
        }
        if (!phase1_) {
            if (hi_ <= 0.0 || hi_ - lo_ <= 0.05 * hi_) {
                done_ = true;  // bracket tight enough
                return;
            }
            next_ = 0.5 * (lo_ + hi_);
        }
    }

  private:
    double ceiling_;
    int budget_;
    double next_;
    double lo_ = 0.0;   ///< highest rate known sustained
    double hi_ = 0.0;   ///< lowest rate known overloaded (0 = none)
    int used_ = 0;
    bool phase1_ = true;
    bool done_ = false;
};

/**
 * One memoized probe outcome. For a serve sweep the probe is one
 * (design, rate) cell; for a fleet knee it is one (placement, rate)
 * evaluation spanning every node. Counters are the probe's own
 * registry — the consumer merges them in decided order only, so
 * wasted speculation never pollutes --metrics totals.
 */
struct ProbeResult
{
    std::vector<ServeCellResult> cells;  ///< 1 (serve) or N nodes (fleet)
    bool sustained = false;
    CounterRegistry counters;
    TimeNs firstArrivalNs = 0;  ///< fleet makespan anchor at this rate
};

/** What a probe is a pure function of: the scenario fingerprint, the
 *  search lane (design index / placement index), and the rate's bit
 *  pattern (bisection rates are exact binary fractions — comparing
 *  bits, not values, keeps 0.0 vs -0.0 style surprises out). */
struct ProbeKey
{
    std::uint64_t specFp = 0;
    std::uint32_t lane = 0;
    std::uint64_t rateBits = 0;

    bool operator<(const ProbeKey& o) const
    {
        if (specFp != o.specFp)
            return specFp < o.specFp;
        if (lane != o.lane)
            return lane < o.lane;
        return rateBits < o.rateBits;
    }
};

/** The bit pattern of @p rate (the ProbeKey encoding). */
std::uint64_t rateBitsOf(double rate);

/**
 * Memoized probe results. Slots are created when a probe is issued
 * (result still null while it runs) and filled exactly once; the same
 * key always resolves to the same immutable result object, so a
 * consumer re-reading a rate gets pointer-identical cells. One cache
 * may span several searches (the fleet shares one across all
 * placements of a spec; its SweepPlanCache sibling spans all nodes).
 */
class ProbeCache
{
  public:
    /** Completed result for @p key; null when absent or in flight. */
    std::shared_ptr<const ProbeResult> find(const ProbeKey& key) const;

    /** Completed results memoized so far. */
    std::uint64_t entries() const;

  private:
    friend class ProbeScheduler;

    struct Slot
    {
        std::shared_ptr<const ProbeResult> result;  ///< null in flight
        bool speculative = false;  ///< issued ahead of the decision
        bool consumed = false;     ///< a decided path read it
    };

    // One mutex/cv guards slots and every scheduler counter: the
    // completion wake-up and the waiter's predicate re-check must be
    // ordered, and a version counter bumped on every issue *and*
    // completion closes the enqueue-vs-sleep race (a waiter that saw
    // an empty engine queue re-wakes when new work appears).
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::uint64_t version_ = 0;
    std::map<ProbeKey, Slot> slots_;
};

/** Speculation accounting of one scheduler (reporting-only). */
struct ProbeStats
{
    std::uint64_t decided = 0;      ///< probes the searches consumed
    std::uint64_t issued = 0;       ///< probe executions submitted
    std::uint64_t speculated = 0;   ///< of issued: ahead of the decision
    std::uint64_t speculationUsed = 0;    ///< speculative slots consumed
    std::uint64_t speculationWasted = 0;  ///< mispredicted branches run
    std::uint64_t cacheHits = 0;  ///< acquires that never waited at all
};

/**
 * Thread-safe free list of probe arenas: one Arena per *in-flight*
 * probe (Arena is not thread-safe, so the old one-arena-per-design
 * sequential-probe idiom cannot survive concurrent probes). release()
 * resets the arena — keeping its high-water chunk — so a warm arena
 * still serves probe after probe without scratch mallocs, it just
 * stops caring which probe comes next.
 */
class ArenaPool
{
  public:
    std::unique_ptr<Arena> acquire();
    void release(std::unique_ptr<Arena> arena);

  private:
    std::mutex mu_;
    std::vector<std::unique_ptr<Arena>> free_;
};

/**
 * The probe tree executor. Consumers (one per search lane) walk their
 * KneeCursor and acquire() each decided probe; the scheduler issues
 * it if no one has yet, then — while the consumer waits — expands the
 * cursor's speculation frontier (both possible successors, then their
 * children, breadth-first up to @p maxDepth) onto idle workers.
 * Waiting consumers pitch in via ExperimentEngine::tryRunOne(), so
 * every pool size makes progress and a 1-worker pool degenerates to
 * exactly the sequential search.
 *
 * Speculation is automatically disabled on pools with fewer than two
 * workers: there is no idle capacity to soak, and staying inert keeps
 * single-worker runs' plan-cache totals exactly sequential.
 */
class ProbeScheduler
{
  public:
    /** Runs one probe: @p lane 's scenario at @p rate. Must be pure
     *  (no shared mutable state) — it runs on arbitrary threads. */
    using ProbeFn = std::function<ProbeResult(std::uint32_t lane,
                                              double rate)>;

    ProbeScheduler(ExperimentEngine& engine, ProbeCache& cache,
                   std::uint64_t specFp, ProbeFn fn, bool speculate,
                   int maxDepth = 3);

    /** Drains in-flight probes (pitching in) before returning. */
    ~ProbeScheduler();

    ProbeScheduler(const ProbeScheduler&) = delete;
    ProbeScheduler& operator=(const ProbeScheduler&) = delete;

    /**
     * The decided-path read: the memoized result of @p cursor 's
     * pending probe on @p lane, computing it if no probe has been
     * issued for that rate yet. Blocks until the result is ready,
     * running other queued probes meanwhile.
     */
    std::shared_ptr<const ProbeResult>
    acquire(std::uint32_t lane, const KneeCursor& cursor);

    /** Speculation accounting; call after the searches complete. */
    ProbeStats stats() const;

  private:
    /** Issue a probe for @p key (cache lock held). */
    void issueLocked(std::unique_lock<std::mutex>& lk,
                     const ProbeKey& key, std::uint32_t lane,
                     double rate, bool speculative);

    /** Expand @p cursor 's speculation frontier (cache lock held). */
    void speculateLocked(std::unique_lock<std::mutex>& lk,
                         std::uint32_t lane, const KneeCursor& cursor);

    ProbeKey keyFor(std::uint32_t lane, double rate) const;

    ExperimentEngine& engine_;
    ProbeCache& cache_;
    std::uint64_t specFp_;
    ProbeFn fn_;
    bool speculate_;
    int maxDepth_;
    std::size_t maxInFlight_;

    // All guarded by cache_.mu_.
    std::size_t inFlight_ = 0;
    ProbeStats stats_;
};

/**
 * Fingerprint of everything a serve probe's cell result is a pure
 * function of (platform, scale, seed, slots, partitioning, admission,
 * SLO, request count, arrival process, designs, classes) — the
 * ProbeCache key component that keeps two different scenarios from
 * ever colliding. Pure wall-clock knobs (sweep_cache, speculate) and
 * the search-shape knobs (rates bracket, probe budget) are excluded:
 * they steer *which* rates get probed, never what one probe returns.
 */
std::uint64_t fingerprintServeSpec(const ServeSpec& spec);

/** FNV-1a accumulator the spec fingerprints are built from (fleet
 *  composes node/stream fields onto its nodes' serve fingerprints). */
class SpecHash
{
  public:
    void mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (i * 8)) & 0xff;
            h_ *= 0x100000001b3ULL;
        }
    }

    void mixDouble(double v) { mix(rateBitsOf(v)); }

    void mixString(const std::string& s)
    {
        mix(s.size());
        for (char c : s) {
            h_ ^= static_cast<unsigned char>(c);
            h_ *= 0x100000001b3ULL;
        }
    }

    /** Never 0, so a fingerprint is always distinguishable from an
     *  unset key. */
    std::uint64_t digest() const { return h_ == 0 ? 1 : h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace g10

#endif  // G10_SERVE_PROBE_SCHEDULER_H
