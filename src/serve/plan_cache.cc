#include "plan_cache.h"

#include <cstring>

namespace g10 {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void
mix(std::uint64_t* h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        *h ^= (v >> (8 * i)) & 0xffU;
        *h *= kFnvPrime;
    }
}

void
mixDouble(std::uint64_t* h, double d)
{
    // Hash the bit pattern: fingerprint equality must mean the
    // compiler sees bit-identical inputs, not approximately equal.
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d), "double is 64-bit");
    std::memcpy(&bits, &d, sizeof(bits));
    mix(h, bits);
}

}  // namespace

std::uint64_t
fingerprintSystemConfig(const SystemConfig& sys)
{
    std::uint64_t h = kFnvOffset;
    mix(&h, static_cast<std::uint64_t>(sys.gpuMemBytes));
    mix(&h, static_cast<std::uint64_t>(sys.hostMemBytes));
    mix(&h, static_cast<std::uint64_t>(sys.pageBytes));
    mix(&h, static_cast<std::uint64_t>(sys.chunkBytes));
    mixDouble(&h, sys.pcieGBps);
    mixDouble(&h, sys.ssdReadGBps);
    mixDouble(&h, sys.ssdWriteGBps);
    mix(&h, static_cast<std::uint64_t>(sys.ssdReadLatencyNs));
    mix(&h, static_cast<std::uint64_t>(sys.ssdWriteLatencyNs));
    mix(&h, static_cast<std::uint64_t>(sys.ssdCapacityBytes));
    mix(&h, static_cast<std::uint64_t>(sys.gpuFaultLatencyNs));
    mix(&h, static_cast<std::uint64_t>(sys.hostSwOverheadNs));
    mix(&h, static_cast<std::uint64_t>(sys.nonUvmCopyBytes));
    mix(&h, static_cast<std::uint64_t>(sys.transferSetBytes));
    mix(&h, static_cast<std::uint64_t>(sys.faultBatchBytes));
    mix(&h, static_cast<std::uint64_t>(sys.kernelLaunchOverheadNs));
    return h;
}

std::uint64_t
fingerprintSchedule(const EvictionSchedule& sched)
{
    std::uint64_t h = kFnvOffset;
    mix(&h, static_cast<std::uint64_t>(sched.scheduledForGpuBytes));
    mix(&h, static_cast<std::uint64_t>(sched.migrations.size()));
    for (const ScheduledMigration& m : sched.migrations) {
        mix(&h, static_cast<std::uint64_t>(m.periodIndex));
        mix(&h, static_cast<std::uint64_t>(m.tensor));
        mix(&h, static_cast<std::uint64_t>(m.bytes));
        mix(&h, static_cast<std::uint64_t>(m.dest));
        mix(&h, static_cast<std::uint64_t>(m.evictStart));
        mix(&h, static_cast<std::uint64_t>(m.evictComplete));
        mix(&h, static_cast<std::uint64_t>(m.prefetchStart));
        mix(&h, static_cast<std::uint64_t>(m.prefetchComplete));
        mix(&h, static_cast<std::uint64_t>(m.wrapsIteration));
    }
    return h != 0 ? h : 1;  // 0 is reserved for "cold compile"
}

std::shared_ptr<const CompiledPlan>
SweepPlanCache::getOrCompile(const PlanKey& key,
                             const CompileFn& compile)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = plans_.find(key);
        if (it != plans_.end()) {
            ++hits_;
            return it->second;
        }
    }
    // Compile outside the lock: compiles take ~10-100 ms and must not
    // serialize unrelated keys. A lost race recompiles an identical
    // plan; first insert wins so every caller shares one object.
    std::shared_ptr<const CompiledPlan> plan = compile();
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = plans_.emplace(key, plan);
    ++misses_;
    return inserted ? plan : it->second;
}

std::uint64_t
SweepPlanCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::uint64_t
SweepPlanCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

std::uint64_t
SweepPlanCache::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return plans_.size();
}

}  // namespace g10
