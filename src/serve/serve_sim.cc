#include "serve_sim.h"

#include <algorithm>

#include "common/event_queue.h"
#include "common/logging.h"
#include "common/stats.h"
#include "engine/partition.h"
#include "policies/design_point.h"
#include "policies/g10_policy.h"
#include "policies/registry.h"
#include "sim/runtime/sim_runtime.h"

namespace g10 {

namespace {

/**
 * The SJF key: length of the compiled plan's ideal timeline (one
 * iteration of kernel durations + launch overhead) times the class's
 * iteration count. Known before the job runs, identical for every
 * design (plans share the ideal timeline).
 */
TimeNs
serviceEstimate(const KernelTrace& trace, const SystemConfig& sys,
                int iterations)
{
    TimeNs iter = 0;
    for (std::size_t k = 0; k < trace.numKernels(); ++k)
        iter += trace.kernel(static_cast<KernelId>(k)).durationNs +
                sys.kernelLaunchOverheadNs;
    return iter * iterations;
}

/** Warm-start plan cache: per model, the last compiled schedule
 *  (whatever batch size it was compiled at — the replay re-validates
 *  every pick against the new trace, so staleness is safe). */
using PlanCache = std::map<int, EvictionSchedule>;

/**
 * Instantiate the cell's design for one admitted job. G10-family
 * designs go through the warm-start path: the previous compile of the
 * same model seeds the eviction scheduler (the serving win: churn
 * re-plans in O(migrations) instead of O(periods log periods) when
 * only the batch size changed). @p warm_out reports whether a warm
 * start was used.
 */
DesignInstance
makeServeInstance(const std::string& design, const KernelTrace& trace,
                  const ServeJobClass& cls, const SystemConfig& sys,
                  PlanCache* cache, bool* warm_out)
{
    const PolicyInfo& info = PolicyRegistry::instance().resolve(design);
    const int tag = info.builtinTag;
    const bool g10family =
        tag == static_cast<int>(DesignPoint::G10) ||
        tag == static_cast<int>(DesignPoint::G10Gds) ||
        tag == static_cast<int>(DesignPoint::G10Host);
    *warm_out = false;
    if (!g10family)
        return PolicyRegistry::instance().make(design, trace, sys);

    const int model_key = static_cast<int>(cls.model);
    const EvictionSchedule* warm = nullptr;
    auto it = cache->find(model_key);
    if (it != cache->end()) {
        warm = &it->second;
        *warm_out = true;
    }

    DesignInstance out;
    if (tag == static_cast<int>(DesignPoint::G10)) {
        out.policy = makeG10(trace, sys, warm);
        out.uvmExtension = true;
    } else if (tag == static_cast<int>(DesignPoint::G10Gds)) {
        out.policy = makeG10Gds(trace, sys, warm);
    } else {
        out.policy = makeG10Host(trace, sys, warm);
    }

    const auto* gp = static_cast<const G10Policy*>(out.policy.get());
    (*cache)[model_key] = gp->compiled().schedule;
    return out;
}

/** Percentile of a Distribution as integer nanoseconds. */
TimeNs
pctNs(const Distribution& d, double p)
{
    return static_cast<TimeNs>(d.percentile(p));
}

}  // namespace

// ---------------------------------------------------------------------
// ServeSim: one (design, rate) cell
// ---------------------------------------------------------------------

ServeSim::ServeSim(const ServeSpec& spec, std::string design,
                   double rate,
                   const std::vector<KernelTrace>& traces,
                   const std::vector<ServeJobClass>& classes,
                   std::vector<ServeRequest> requests,
                   const std::vector<ServeClassBaseline>& baselines)
    : spec_(spec), design_(std::move(design)), rate_(rate),
      traces_(traces), classes_(classes),
      requests_(std::move(requests)), baselines_(baselines)
{
    if (traces_.size() != classes_.size())
        panic("ServeSim: %zu traces for %zu classes", traces_.size(),
              classes_.size());
    if (baselines_.size() != classes_.size())
        panic("ServeSim: %zu baselines for %zu classes",
              baselines_.size(), classes_.size());
    if (requests_.empty())
        panic("ServeSim: no requests offered");
}

ServeCellResult
ServeSim::run()
{
    ServeCellResult out;
    out.design = design_;
    out.designName = PolicyRegistry::instance().resolve(design_).name;
    out.rate = rate_;
    out.jobs.resize(requests_.size());
    for (std::size_t i = 0; i < requests_.size(); ++i) {
        out.jobs[i].request = i;
        out.jobs[i].classIndex = requests_[i].classIndex;
        out.jobs[i].arrivalNs = requests_[i].arrivalNs;
    }

    const SystemConfig scaled = spec_.sys.scaledDown(spec_.scaleDown);
    PartitionManager partitions(scaled, spec_.slots);
    SsdDevice ssd(scaled);
    FabricChannels channels;
    GpuComputeTimeline gpu;
    SharedResources shared;
    shared.ssd = &ssd;
    shared.channels = &channels;
    shared.gpu = &gpu;

    AdmissionQueue queue(spec_.admit, spec_.queueCapacity,
                         spec_.starvationNs);

    // Per-class SJF keys (design-independent, so computed once).
    std::vector<TimeNs> serviceEst(classes_.size(), 0);
    for (std::size_t c = 0; c < classes_.size(); ++c)
        serviceEst[c] = serviceEstimate(traces_[c], scaled,
                                        classes_[c].iterations);

    PlanCache planCache;

    struct Active
    {
        std::size_t request = 0;
        DesignInstance design;
        std::unique_ptr<SimRuntime> rt;
        PartitionManager::Lease lease;
    };
    std::vector<Active> active;
    active.reserve(static_cast<std::size_t>(spec_.slots));

    auto admit = [&](std::size_t req, TimeNs when) {
        const ServeRequest& r = requests_[req];
        const ServeJobClass& cls = classes_[r.classIndex];
        Active a;
        a.request = req;
        a.lease = partitions.acquire();
        bool warm = false;
        a.design = makeServeInstance(design_, traces_[r.classIndex],
                                     cls, a.lease.sys, &planCache,
                                     &warm);
        out.jobs[req].warmCompiled = warm;
        if (warm)
            ++out.metrics.warmCompiles;
        else
            ++out.metrics.coldCompiles;

        RunConfig rc;
        rc.sys = a.lease.sys;
        rc.iterations = cls.iterations;
        rc.uvmExtension = a.design.uvmExtension;
        rc.seed = spec_.seed + req;
        rc.startNs = when;
        a.rt = std::make_unique<SimRuntime>(traces_[r.classIndex],
                                            *a.design.policy, rc,
                                            shared);
        a.rt->start();
        out.jobs[req].admitNs = when;
        active.push_back(std::move(a));
    };

    auto drainQueue = [&](TimeNs now) {
        while (partitions.hasFree() && !queue.empty()) {
            QueuedJob qj = queue.pop(now);
            admit(qj.request, std::max(now, qj.arrivalNs));
        }
    };

    // Open-loop arrival injection: the whole offered sequence is
    // known up front, so it goes into the event queue as one bulk
    // batch (EventQueue::scheduleBatch's O(n) heap build).
    EventQueue arrivals;
    std::vector<std::size_t> arrivedNow;
    {
        std::vector<EventQueue::TimedCallback> batch;
        batch.reserve(requests_.size());
        for (std::size_t i = 0; i < requests_.size(); ++i)
            batch.push_back({requests_[i].arrivalNs,
                             [&arrivedNow, i] {
                                 arrivedNow.push_back(i);
                             }});
        arrivals.scheduleBatch(std::move(batch));
    }

    // Main interleaving loop: either the next arrival is due before
    // any active job's clock (process arrivals/admissions), or the
    // active job furthest behind in time replays one kernel — the
    // same deterministic furthest-behind discipline MultiTenantSim
    // uses, extended with mid-run attach/detach.
    while (!arrivals.empty() || !queue.empty() || !active.empty()) {
        std::size_t minIdx = SIZE_MAX;
        TimeNs minClock = 0;
        for (std::size_t i = 0; i < active.size(); ++i) {
            if (minIdx == SIZE_MAX || active[i].rt->now() < minClock) {
                minClock = active[i].rt->now();
                minIdx = i;
            }
        }

        const TimeNs nextArr = arrivals.nextTime();
        if (minIdx == SIZE_MAX || nextArr <= minClock) {
            if (arrivals.empty())
                panic("serve loop stalled: queued jobs but no "
                      "arrivals and no active jobs");
            arrivals.runUntil(nextArr);
            for (std::size_t req : arrivedNow) {
                const ServeRequest& r = requests_[req];
                // A free slot admits immediately — simultaneous
                // arrivals must not be shed off a full queue while
                // partitions sit idle.
                if (partitions.hasFree() && queue.empty()) {
                    admit(req, r.arrivalNs);
                    continue;
                }
                QueuedJob qj;
                qj.request = req;
                qj.arrivalNs = r.arrivalNs;
                qj.serviceEstNs = serviceEst[r.classIndex];
                qj.priority = classes_[r.classIndex].priority;
                if (!queue.offer(qj))
                    out.jobs[req].rejected = true;  // load shed
            }
            arrivedNow.clear();
            drainQueue(nextArr);
            continue;
        }

        Active& a = active[minIdx];
        if (a.rt->stepKernel())
            continue;

        // Departure: finalize, record, release the partition lease
        // and trim the job's SSD log space for the next arrival.
        ExecStats st = a.rt->finalize();
        ServeJobOutcome& o = out.jobs[a.request];
        o.finishNs = a.rt->now();
        o.failed = st.failed;
        a.rt->releaseSsdLog();
        partitions.release(&a.lease);
        const TimeNs freedAt = a.rt->now();
        active.erase(active.begin() +
                     static_cast<std::ptrdiff_t>(minIdx));
        drainQueue(freedAt);
    }

    // ---- SLO-centric metrics. ----
    ServeMetrics& m = out.metrics;
    m.offered = out.jobs.size();
    Distribution queueDelay, latency, slowdown;
    TimeNs firstArrival = requests_.front().arrivalNs;
    TimeNs lastFinish = 0;
    std::uint64_t sloMet = 0;
    for (ServeJobOutcome& o : out.jobs) {
        if (o.rejected) {
            ++m.rejected;
            continue;
        }
        ++m.admitted;
        queueDelay.add(static_cast<double>(o.queueNs()));
        m.queueMaxNs = std::max(m.queueMaxNs, o.queueNs());
        if (o.failed) {
            ++m.failed;
            continue;
        }
        ++m.completed;
        lastFinish = std::max(lastFinish, o.finishNs);
        latency.add(static_cast<double>(o.latencyNs()));

        const ServeClassBaseline& base = baselines_[o.classIndex];
        if (!base.failed && base.unloadedNs > 0) {
            o.slowdown = static_cast<double>(o.latencyNs()) /
                         static_cast<double>(base.unloadedNs);
            slowdown.add(o.slowdown);
            o.sloMet = static_cast<double>(o.latencyNs()) <=
                       spec_.sloFactor *
                           static_cast<double>(base.unloadedNs);
            if (o.sloMet)
                ++sloMet;
        }
    }
    if (queueDelay.count() > 0) {
        m.queueP50Ns = pctNs(queueDelay, 0.50);
        m.queueP95Ns = pctNs(queueDelay, 0.95);
        m.queueP99Ns = pctNs(queueDelay, 0.99);
        m.queueMeanNs = queueDelay.mean();
    }
    if (latency.count() > 0) {
        m.latencyP50Ns = pctNs(latency, 0.50);
        m.latencyP95Ns = pctNs(latency, 0.95);
        m.latencyP99Ns = pctNs(latency, 0.99);
        m.latencyMeanNs = latency.mean();
    }
    if (slowdown.count() > 0) {
        m.slowdownMean = slowdown.mean();
        m.slowdownP95 = slowdown.percentile(0.95);
    }
    m.sloAttainment = m.offered > 0
        ? static_cast<double>(sloMet) / static_cast<double>(m.offered)
        : 0.0;
    if (lastFinish > firstArrival) {
        m.makespanNs = lastFinish - firstArrival;
        m.throughputRps = static_cast<double>(m.completed) /
                          (static_cast<double>(m.makespanNs) / SEC);
        m.gpuUtilization = static_cast<double>(gpu.busyNs) /
                           static_cast<double>(m.makespanNs);
    }
    m.maxQueueDepth = queue.maxDepth();
    m.starvationPromotions = queue.starvationPromotions();
    out.ssd = ssd.stats();
    return out;
}

// ---------------------------------------------------------------------
// ServeSweep: the designs × rates grid
// ---------------------------------------------------------------------

ServeSweep::ServeSweep(const ServeSpec& spec) : spec_(spec)
{
    if (spec_.designs.empty())
        fatal("serve sweep needs at least one design");
    if (spec_.rates.empty())
        fatal("serve sweep needs at least one arrival rate");
    if (spec_.slots < 1)
        fatal("serve sweep needs slots >= 1");
    for (const std::string& d : spec_.designs)
        PolicyRegistry::instance().resolve(d);  // fatal on unknown

    if (spec_.arrival.kind == ArrivalKind::Trace) {
        // Job classes are derived from the trace: one per distinct
        // (model, batch, iterations, priority) request shape.
        traceReqs_ = parseArrivalTrace(spec_.arrival.tracePath);
        for (TraceRequest& tr : traceReqs_) {
            if (tr.batchSize <= 0)
                tr.batchSize = paperBatchSize(tr.model);
            std::size_t ci = classes_.size();
            for (std::size_t c = 0; c < classes_.size(); ++c) {
                if (classes_[c].model == tr.model &&
                    classes_[c].batchSize == tr.batchSize &&
                    classes_[c].iterations == tr.iterations &&
                    classes_[c].priority == tr.priority) {
                    ci = c;
                    break;
                }
            }
            if (ci == classes_.size()) {
                ServeJobClass cls;
                cls.model = tr.model;
                cls.batchSize = tr.batchSize;
                cls.iterations = tr.iterations;
                cls.priority = tr.priority;
                cls.name = std::string(modelName(tr.model)) + "-" +
                           std::to_string(tr.batchSize);
                classes_.push_back(cls);
            }
            traceClass_.push_back(ci);
        }
    } else {
        if (spec_.classes.empty())
            fatal("serve sweep needs at least one job class");
        classes_ = spec_.classes;
        for (ServeJobClass& cls : classes_) {
            if (cls.batchSize <= 0)
                cls.batchSize = paperBatchSize(cls.model);
            if (cls.name.empty())
                cls.name = std::string(modelName(cls.model)) + "-" +
                           std::to_string(cls.batchSize);
        }
    }

    traces_.reserve(classes_.size());
    for (const ServeJobClass& cls : classes_)
        traces_.push_back(buildModelScaled(cls.model, cls.batchSize,
                                           spec_.scaleDown));
}

std::vector<ServeRequest>
ServeSweep::requestsForRate(std::size_t ri) const
{
    const double rate = spec_.rates[ri];
    std::vector<ServeRequest> out;
    if (spec_.arrival.kind == ArrivalKind::Trace) {
        // The rate is a replay-speed multiplier over the trace; class
        // indices were resolved once at construction.
        out.reserve(traceReqs_.size());
        for (std::size_t i = 0; i < traceReqs_.size(); ++i) {
            ServeRequest r;
            r.arrivalNs = static_cast<TimeNs>(
                static_cast<double>(traceReqs_[i].arrivalNs) / rate);
            r.classIndex = traceClass_[i];
            out.push_back(r);
        }
        return out;
    }

    std::vector<TimeNs> times = generateArrivals(
        spec_.arrival, rate, spec_.requests, spec_.seed);
    // Class picks draw from their own engine so the class sequence is
    // identical at every rate (cells differ only in arrival spacing).
    std::mt19937_64 picks(spec_.seed + 1);
    double wsum = 0.0;
    for (const ServeJobClass& cls : classes_)
        wsum += cls.weight;
    out.reserve(times.size());
    for (TimeNs t : times) {
        double u = unitInterval(picks) * wsum;
        double cum = 0.0;
        std::size_t ci = classes_.size() - 1;
        for (std::size_t c = 0; c < classes_.size(); ++c) {
            cum += classes_[c].weight;
            if (u <= cum) {
                ci = c;
                break;
            }
        }
        ServeRequest r;
        r.arrivalNs = t;
        r.classIndex = ci;
        out.push_back(r);
    }
    return out;
}

bool
ServeSweepResult::allSucceeded() const
{
    for (const ServeCellResult& cell : cells)
        if (cell.metrics.failed > 0)
            return false;
    return true;
}

ServeSweepResult
ServeSweep::run(ExperimentEngine& engine)
{
    ServeSweepResult out;
    out.spec = spec_;
    for (const ServeJobClass& cls : classes_)
        out.classNames.push_back(cls.name);

    const SystemConfig scaled = spec_.sys.scaledDown(spec_.scaleDown);
    const SystemConfig slotSys = partitionShare(
        scaled, 1.0 / static_cast<double>(spec_.slots));

    // Unloaded baselines: every (design, class) pair alone on one
    // idle partition slot — the latency reference the SLO and
    // slowdown metrics are defined against. Per class, all designs'
    // plans compile concurrently across the pool, then each replays.
    const std::size_t nd = spec_.designs.size();
    const std::size_t nc = classes_.size();
    out.baselines.assign(nd, std::vector<ServeClassBaseline>(nc));
    for (std::size_t c = 0; c < nc; ++c) {
        std::vector<DesignInstance> designs =
            engine.compileDesignsOnTrace(traces_[c], slotSys,
                                         spec_.designs);
        engine.parallelFor(nd, [&](std::size_t d) {
            RunConfig rc;
            rc.sys = slotSys;
            rc.iterations = classes_[c].iterations;
            rc.uvmExtension = designs[d].uvmExtension;
            rc.seed = spec_.seed;
            SimRuntime rt(traces_[c], *designs[d].policy, rc);
            ExecStats st = rt.run();
            out.baselines[d][c].unloadedNs = rt.now();
            out.baselines[d][c].failed = st.failed;
        });
    }

    // The offered sequences, one per rate (shared by every design:
    // cells of one rate differ only in the design under test).
    const std::size_t nr = spec_.rates.size();
    std::vector<std::vector<ServeRequest>> requestsByRate(nr);
    for (std::size_t r = 0; r < nr; ++r)
        requestsByRate[r] = requestsForRate(r);

    // The grid: every design at every offered rate, design-major.
    out.cells.resize(nd * nr);
    engine.parallelFor(nd * nr, [&](std::size_t i) {
        const std::size_t d = i / nr;
        const std::size_t r = i % nr;
        ServeSim sim(spec_, spec_.designs[d], spec_.rates[r], traces_,
                     classes_, requestsByRate[r], out.baselines[d]);
        out.cells[i] = sim.run();
    });

    // Sustained-throughput capacity per design: the highest offered
    // rate whose cell stayed within the bounded queue (no rejections)
    // and had no failures.
    out.sustainedRate.assign(nd, 0.0);
    for (std::size_t d = 0; d < nd; ++d)
        for (std::size_t r = 0; r < nr; ++r)
            if (out.cells[d * nr + r].sustained())
                out.sustainedRate[d] = std::max(
                    out.sustainedRate[d], spec_.rates[r]);
    return out;
}

}  // namespace g10
