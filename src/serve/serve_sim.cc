#include "serve_sim.h"

#include <algorithm>

#include "common/arena.h"
#include "common/event_queue.h"
#include "common/logging.h"
#include "common/stats.h"
#include "engine/partition.h"
#include "policies/design_point.h"
#include "obs/tracer.h"
#include "policies/g10_policy.h"
#include "policies/registry.h"
#include "serve/plan_cache.h"
#include "serve/probe_scheduler.h"
#include "sim/runtime/sim_runtime.h"

namespace g10 {

TimeNs
planServiceEstimateNs(const KernelTrace& trace,
                      const SystemConfig& sys, int iterations)
{
    TimeNs iter = 0;
    for (std::size_t k = 0; k < trace.numKernels(); ++k)
        iter += trace.kernel(static_cast<KernelId>(k)).durationNs +
                sys.kernelLaunchOverheadNs;
    return iter * iterations;
}

Bytes
maxKernelWorkingSet(const KernelTrace& trace, Bytes page)
{
    Bytes best = 0;
    for (std::size_t k = 0; k < trace.numKernels(); ++k) {
        Bytes sum = 0;
        for (TensorId t :
             trace.kernel(static_cast<KernelId>(k)).allTensors()) {
            const Bytes b = trace.tensor(t).bytes;
            sum += (b + page - 1) / page * page;
        }
        best = std::max(best, sum);
    }
    return best;
}

Bytes
serveClassGpuFloor(const KernelTrace& trace, Bytes page)
{
    const Bytes ws = maxKernelWorkingSet(trace, page);
    return ws + ws / 8;
}

namespace {

/** Warm-start seed chain: per model, the last compiled plan of this
 *  cell (whatever batch size or partition capacity it was compiled at
 *  — the replay re-validates every pick against the new trace and
 *  capacity, so staleness is safe). Shared handles: a seed may live in
 *  the sweep-wide SweepPlanCache and in several cells at once. */
using PlanCache =
    std::map<int, std::shared_ptr<const CompiledPlan>>;

/** G10-family membership (the designs with a compile pipeline). */
bool
g10FamilyTag(const std::string& design, int* tag_out)
{
    const PolicyInfo& info = PolicyRegistry::instance().resolve(design);
    *tag_out = info.builtinTag;
    return *tag_out == static_cast<int>(DesignPoint::G10) ||
           *tag_out == static_cast<int>(DesignPoint::G10Gds) ||
           *tag_out == static_cast<int>(DesignPoint::G10Host);
}

/**
 * Compile one G10-family plan, optionally warm-started by @p seed and
 * memoized in @p sweepCache (null = compile directly). The cache key
 * captures every compile input — options, trace identity (model,
 * batch, scale), system fingerprint, seed fingerprint — so a hit is
 * bit-identical to the compile it replaces.
 */
std::shared_ptr<const CompiledPlan>
compilePlan(int tag, const KernelTrace& trace,
            const ServeJobClass& cls, unsigned scaleDown,
            const SystemConfig& sys,
            const std::shared_ptr<const CompiledPlan>& seed,
            SweepPlanCache* sweepCache)
{
    const EvictionSchedule* warm =
        seed != nullptr ? &seed->schedule : nullptr;
    if (sweepCache == nullptr)
        return compileFamilyPlan(tag, trace, sys, warm);
    PlanKey key;
    key.options = planCompileOptionsKey(tag);
    key.model = static_cast<int>(cls.model);
    key.batch = cls.batchSize;
    key.scaleDown = scaleDown;
    key.sysFp = fingerprintSystemConfig(sys);
    key.seedFp = warm != nullptr ? fingerprintSchedule(*warm) : 0;
    return sweepCache->getOrCompile(key, [&] {
        return compileFamilyPlan(tag, trace, sys, warm);
    });
}

/** What an admission-time compile did (feeds the cell metrics). */
struct CompileOutcome
{
    bool warm = false;             ///< seeded by a cached schedule
    bool capacityCrossed = false;  ///< seed compiled at a different cap
    std::uint64_t replayed = 0;    ///< prior picks recommitted
    std::uint64_t dropped = 0;     ///< prior picks invalidated
};

/**
 * Instantiate the cell's design for one admitted job. G10-family
 * designs go through the warm-start path: the previous compile of the
 * same model seeds the eviction scheduler (the serving win: churn
 * re-plans in O(migrations) instead of O(periods log periods) when
 * only the batch size or the partition capacity changed).
 */
DesignInstance
makeServeInstance(const std::string& design, const KernelTrace& trace,
                  const ServeJobClass& cls, unsigned scaleDown,
                  const SystemConfig& sys, PlanCache* cache,
                  SweepPlanCache* sweepCache, CompileOutcome* oc)
{
    int tag = 0;
    *oc = CompileOutcome{};
    if (!g10FamilyTag(design, &tag))
        return PolicyRegistry::instance().make(design, trace, sys);

    const int model_key = static_cast<int>(cls.model);
    std::shared_ptr<const CompiledPlan> seed;
    auto it = cache->find(model_key);
    if (it != cache->end()) {
        seed = it->second;
        oc->warm = true;
        oc->capacityCrossed =
            seed->schedule.scheduledForGpuBytes != sys.gpuMemBytes;
    }

    std::shared_ptr<const CompiledPlan> plan = compilePlan(
        tag, trace, cls, scaleDown, sys, seed, sweepCache);
    oc->replayed = plan->schedule.warmReplayed;
    oc->dropped = plan->schedule.warmDropped;
    DesignInstance out;
    out.uvmExtension = tag == static_cast<int>(DesignPoint::G10);
    (*cache)[model_key] = plan;
    out.policy = makeFamilyPolicy(tag, std::move(plan));
    return out;
}

/** Percentile of a Distribution as integer nanoseconds. */
TimeNs
pctNs(const Distribution& d, double p)
{
    return static_cast<TimeNs>(d.percentile(p));
}

}  // namespace

// ---------------------------------------------------------------------
// ServeSim: one (design, rate) cell
// ---------------------------------------------------------------------

ServeSim::ServeSim(const ServeSpec& spec, std::string design,
                   double rate,
                   const std::vector<KernelTrace>& traces,
                   const std::vector<ServeJobClass>& classes,
                   const std::vector<Bytes>& minGpu,
                   std::vector<ServeRequest> requests,
                   const std::vector<ServeClassBaseline>& baselines)
    : spec_(spec), design_(std::move(design)), rate_(rate),
      traces_(traces), classes_(classes), minGpu_(minGpu),
      requests_(std::move(requests)), baselines_(baselines)
{
    if (traces_.size() != classes_.size())
        panic("ServeSim: %zu traces for %zu classes", traces_.size(),
              classes_.size());
    if (minGpu_.size() != classes_.size())
        panic("ServeSim: %zu floors for %zu classes", minGpu_.size(),
              classes_.size());
    if (baselines_.size() != classes_.size())
        panic("ServeSim: %zu baselines for %zu classes",
              baselines_.size(), classes_.size());
    if (requests_.empty())
        panic("ServeSim: no requests offered");
}

ServeCellResult
ServeSim::run()
{
    ServeCellResult out;
    out.design = design_;
    out.designName = PolicyRegistry::instance().resolve(design_).name;
    out.rate = rate_;
    out.jobs.resize(requests_.size());
    for (std::size_t i = 0; i < requests_.size(); ++i) {
        out.jobs[i].request = i;
        out.jobs[i].classIndex = requests_[i].classIndex;
        out.jobs[i].arrivalNs = requests_[i].arrivalNs;
    }
    ServeMetrics& m = out.metrics;

    const SystemConfig scaled = spec_.sys.scaledDown(spec_.scaleDown);
    const PartitionPolicy ppol = spec_.partitionPolicy;
    const int maxActive = spec_.resolvedMaxActive();
    const double hysteresis = spec_.resizeHysteresis;
    PartitionManager partitions(scaled, spec_.slots);
    const Bytes totalGpu = partitions.totalGpuBytes();
    const Bytes totalHost = partitions.totalHostBytes();
    const Bytes slotGpu = partitions.slotSystem().gpuMemBytes;
    const Bytes slotHost = partitions.slotSystem().hostMemBytes;

    // Host staging follows the GPU share so a lease is one fraction
    // of the machine, not two independent knobs.
    auto hostFor = [&](Bytes gpu) -> Bytes {
        if (totalGpu == 0)
            return 0;
        return static_cast<Bytes>(
            static_cast<double>(totalHost) *
            (static_cast<double>(gpu) / static_cast<double>(totalGpu)));
    };

    SsdDevice ssd(scaled);
    FabricChannels channels;
    GpuComputeTimeline gpu;
    // Per-job runtime scratch comes from a bump arena: jobs churn, so
    // their vectors' free()s are wasted work — the arena drops them
    // all at once. An injected arena (knee probes draw one per
    // in-flight probe from an ArenaPool, so concurrent probes never
    // share) carries its high-water chunk from probe to probe; a cell
    // running on its own (grid / fleet) uses a local one. Declared
    // before `active` below so every SimRuntime dies before its
    // memory does.
    Arena localArena;
    SharedResources shared;
    shared.ssd = &ssd;
    shared.channels = &channels;
    shared.gpu = &gpu;
    shared.arena = arena_ != nullptr ? arena_ : &localArena;

    AdmissionQueue queue(spec_.admit, spec_.queueCapacity,
                         spec_.starvationNs);

    // Per-class SJF keys (design-independent, so computed once).
    std::vector<TimeNs> serviceEst(classes_.size(), 0);
    for (std::size_t c = 0; c < classes_.size(); ++c)
        serviceEst[c] = planServiceEstimateNs(traces_[c], scaled,
                                              classes_[c].iterations);

    // Per-class capacity floors (computed once per sweep): clamped to
    // the whole machine so a class too big for the node is still
    // admitted alone and fails with the explicit hard OOM — exactly
    // the static policy's semantics — instead of waiting forever.
    std::vector<Bytes> minGpu(minGpu_.size(), 0);
    for (std::size_t c = 0; c < minGpu_.size(); ++c)
        minGpu[c] = std::min(minGpu_[c], totalGpu);

    PlanCache planCache;

    // Observability: one Tracer shared by the serving events and every
    // admitted job's runtime (pid = request index). tp is null when
    // the cell runs unobserved; every emit site below is a guarded
    // read-only observation, so the cell result is bit-identical
    // either way.
    Tracer tracer(sink_, counters_);
    Tracer* const tp =
        (sink_ != nullptr || counters_ != nullptr) ? &tracer : nullptr;

    struct Active
    {
        std::size_t request = 0;
        std::size_t classIndex = 0;
        bool g10family = false;
        int familyTag = 0;
        DesignInstance design;
        std::unique_ptr<SimRuntime> rt;
        PartitionManager::Lease lease;
    };
    std::vector<Active> active;
    active.reserve(static_cast<std::size_t>(maxActive));

    // ---- Elastic capacity machinery ------------------------------

    // After any capacity change, G10-family jobs replan: recompile
    // the migration schedule at the new budget, warm-started from the
    // schedule the job is currently replaying, and swap it in. The
    // scheduler replays the picks the capacity delta left valid and
    // only re-runs its greedy search on the uncovered pressure.
    auto replanAfterResize = [&](Active& a) {
        if (!a.g10family)
            return;
        const auto* gp =
            static_cast<const G10Policy*>(a.design.policy.get());
        std::shared_ptr<const CompiledPlan> plan = compilePlan(
            a.familyTag, traces_[a.classIndex],
            classes_[a.classIndex], spec_.scaleDown, a.lease.sys,
            gp->compiledShared(), planCache_);
        const EvictionSchedule& ns = plan->schedule;
        ++m.replans;
        m.warmReplayedMigrations += ns.warmReplayed;
        m.warmDroppedMigrations += ns.warmDropped;
        if (ns.warmReplayed > 0)
            ++m.resizeWarmHits;
        if (tp)
            tp->warmReplan(static_cast<int>(a.request),
                           ns.warmReplayed, ns.warmDropped,
                           a.rt->now());
        planCache[static_cast<int>(classes_[a.classIndex].model)] =
            plan;
        std::unique_ptr<G10Policy> np =
            makeFamilyPolicy(a.familyTag, std::move(plan));
        a.rt->setPolicy(*np);
        a.design.policy = std::move(np);
    };

    // Post-change bookkeeping shared by the resize and split paths:
    // push the lease's new budget into the runtime (eager eviction
    // down to the new watermark), count the work, warm-replan.
    auto applyBudget = [&](Active& a, bool shrink) {
        SimRuntime::ResizeOutcome ro = a.rt->resizeMemoryBudget(
            a.lease.sys.gpuMemBytes, a.lease.sys.hostMemBytes);
        ++m.resizes;
        if (shrink)
            ++m.resizeShrinks;
        else
            ++m.resizeGrows;
        m.resizeEvictedBytes += ro.evictedBytes;
        replanAfterResize(a);
    };

    // One live job's capacity change: manager accounting, then the
    // shared budget/replan bookkeeping.
    auto resizeActive = [&](Active& a, Bytes gpuBytes) {
        const Bytes cur = a.lease.sys.gpuMemBytes;
        if (gpuBytes == cur)
            return;
        partitions.resize(&a.lease, gpuBytes, hostFor(gpuBytes));
        if (tp)
            tp->partitionEvent("resize", static_cast<int>(a.request),
                               gpuBytes, a.rt->now());
        applyBudget(a, gpuBytes < cur);
    };

    // Floor of one live job's lease (never shrink below this).
    auto floorOf = [&](const Active& a) -> Bytes {
        return minGpu[a.classIndex];
    };

    // The proportional policy's post-admission size of incumbent
    // @p o when the active set grows to @p count jobs: the equal
    // share, raised to the job's floor, but never *grown* at
    // admission time (growth is departure-driven and hysteresis
    // gated).
    auto proportionalTarget = [&](const Active& o,
                                  std::size_t count) -> Bytes {
        const Bytes tgt =
            std::max(totalGpu / static_cast<Bytes>(count),
                     floorOf(o));
        return std::min(o.lease.sys.gpuMemBytes, tgt);
    };

    // The ondemand policy's split victim for a @p need-byte arrival:
    // the largest live lease that can donate half while both halves
    // stay viable (donor above its floor, grant at least half a slot
    // and above the arrival's floor). nullptr = no viable donor.
    auto splitVictim = [&](Bytes need) -> Active* {
        Active* best = nullptr;
        for (Active& o : active) {
            const Bytes cur = o.lease.sys.gpuMemBytes;
            const Bytes carve = static_cast<Bytes>(
                static_cast<double>(cur) * 0.5);
            if (carve < need || carve < slotGpu / 2 ||
                cur - carve < floorOf(o))
                continue;
            if (best == nullptr ||
                cur > best->lease.sys.gpuMemBytes)
                best = &o;
        }
        return best;
    };

    // Admission gate per policy, for a request of class @p cls.
    // Static gates on free slots; the elastic policies gate on the
    // concurrency cap and on whether a floor-respecting grant exists.
    // OnDemand's ordinary admissions take whole slots from the pool —
    // splitting live leases is an *overload* escape valve (see
    // splitAdmitHead below), because at moderate load a short wait
    // for a full slot beats running everyone at half capacity.
    auto canAdmit = [&](std::size_t cls) -> bool {
        if (ppol == PartitionPolicy::Static)
            return partitions.hasFree();
        if (static_cast<int>(active.size()) >= maxActive)
            return false;
        if (ppol == PartitionPolicy::Proportional) {
            // Capacity left after every incumbent shrinks to its
            // post-admission share must cover the arrival's floor.
            const std::size_t count = active.size() + 1;
            Bytes leased = 0;
            for (const Active& o : active)
                leased += proportionalTarget(o, count);
            const Bytes free =
                totalGpu > leased ? totalGpu - leased : 0;
            const Bytes grant = std::min(
                free, std::max(totalGpu / count, minGpu[cls]));
            return grant >= minGpu[cls] && grant > 0;
        }
        return partitions.freeGpuBytes() >= slotGpu &&
               partitions.freeHostBytes() >= slotHost;
    };

    // Lease capacity for a new admission under the cell's policy.
    auto leaseForAdmission = [&](Active& a) {
        switch (ppol) {
          case PartitionPolicy::Static:
            a.lease = partitions.acquire();
            return;
          case PartitionPolicy::Proportional: {
            // Equal share of the whole machine across the active set:
            // shrink every incumbent above its post-admission share
            // (mandatory — hysteresis only defers growth), then grant
            // the arrival its share.
            const std::size_t count = active.size() + 1;
            for (Active& o : active) {
                const Bytes tgt = proportionalTarget(o, count);
                if (o.lease.sys.gpuMemBytes > tgt)
                    resizeActive(o, tgt);
            }
            const Bytes grant = std::min(
                partitions.freeGpuBytes(),
                std::max(totalGpu / static_cast<Bytes>(count),
                         minGpu[a.classIndex]));
            const Bytes grantHost =
                std::min(hostFor(grant), partitions.freeHostBytes());
            a.lease = partitions.acquireBytes(grant, grantHost);
            return;
          }
          case PartitionPolicy::OnDemand: {
            // A full static-slot grant while the pool has one; then
            // split the largest viable live lease in half (canAdmit()
            // guarantees a donor exists).
            if (partitions.freeGpuBytes() >= slotGpu &&
                partitions.freeHostBytes() >= slotHost) {
                a.lease = partitions.acquireBytes(slotGpu, slotHost);
                return;
            }
            Active* big = splitVictim(
                std::max(minGpu[a.classIndex], slotGpu / 2));
            if (big == nullptr)
                panic("ondemand admission with no viable donor");
            a.lease = partitions.split(&big->lease, 0.5);
            ++m.splits;
            if (tp)
                tp->partitionEvent("split",
                                   static_cast<int>(big->request),
                                   big->lease.sys.gpuMemBytes,
                                   big->rt->now());
            applyBudget(*big, true);
            return;
          }
        }
    };

    // After a departure (and after the queue drained into the freed
    // capacity), grow the survivors back. Growth is hysteresis-gated
    // so lease geometry does not thrash under churn.
    auto redistributeAfterDeparture = [&]() {
        if (ppol == PartitionPolicy::Static || active.empty())
            return;
        if (ppol == PartitionPolicy::Proportional) {
            const Bytes tgt =
                totalGpu / static_cast<Bytes>(active.size());
            for (Active& o : active) {
                const Bytes cur = o.lease.sys.gpuMemBytes;
                if (cur >= tgt)
                    continue;
                const Bytes grow =
                    std::min(tgt - cur, partitions.freeGpuBytes());
                if (grow == 0 ||
                    static_cast<double>(grow) <
                        hysteresis * static_cast<double>(cur))
                    continue;
                resizeActive(o, cur + grow);
            }
            return;
        }
        // OnDemand: top the smallest leases back up toward a full
        // slot, smallest first (they gain the most per byte).
        while (true) {
            Active* small = nullptr;
            for (Active& o : active)
                if (o.lease.sys.gpuMemBytes < slotGpu &&
                    (small == nullptr ||
                     o.lease.sys.gpuMemBytes <
                         small->lease.sys.gpuMemBytes))
                    small = &o;
            if (small == nullptr)
                break;
            const Bytes cur = small->lease.sys.gpuMemBytes;
            const Bytes grow =
                std::min(slotGpu - cur, partitions.freeGpuBytes());
            if (grow == 0 ||
                static_cast<double>(grow) <
                    hysteresis * static_cast<double>(cur))
                break;
            resizeActive(*small, cur + grow);
        }
    };

    auto admit = [&](std::size_t req, TimeNs when) {
        const ServeRequest& r = requests_[req];
        const ServeJobClass& cls = classes_[r.classIndex];
        Active a;
        a.request = req;
        a.classIndex = r.classIndex;
        a.g10family = g10FamilyTag(design_, &a.familyTag);
        leaseForAdmission(a);
        CompileOutcome oc;
        a.design = makeServeInstance(design_, traces_[r.classIndex],
                                     cls, spec_.scaleDown,
                                     a.lease.sys, &planCache,
                                     planCache_, &oc);
        out.jobs[req].warmCompiled = oc.warm;
        if (tp && a.g10family)
            tp->planCacheLookup(oc.warm);
        if (oc.warm) {
            ++m.warmCompiles;
            if (oc.capacityCrossed && oc.replayed > 0)
                ++m.resizeWarmHits;
        } else {
            ++m.coldCompiles;
        }
        m.warmReplayedMigrations += oc.replayed;
        m.warmDroppedMigrations += oc.dropped;

        RunConfig rc;
        rc.sys = a.lease.sys;
        rc.iterations = cls.iterations;
        rc.uvmExtension = a.design.uvmExtension;
        rc.seed = spec_.seed + req;
        rc.startNs = when;
        a.rt = std::make_unique<SimRuntime>(traces_[r.classIndex],
                                            *a.design.policy, rc,
                                            shared);
        if (tp) {
            tp->admission(static_cast<int>(req), cls.name, r.arrivalNs,
                          when, a.lease.sys.gpuMemBytes, oc.warm);
            // Attach before start() so admission prefetches are traced.
            a.rt->setTracer(tp, static_cast<int>(req));
        }
        a.rt->start();
        out.jobs[req].admitNs = when;
        active.push_back(std::move(a));
    };

    auto drainQueue = [&](TimeNs now) {
        // Gate on the job the policy would pop next (no bypass: a
        // large head holds the line, as in the slot-mode behavior).
        while (!queue.empty()) {
            const QueuedJob& head = queue.peek(now);
            if (!canAdmit(requests_[head.request].classIndex))
                break;
            QueuedJob qj = queue.pop(now);
            admit(qj.request, std::max(now, qj.arrivalNs));
        }
    };

    // Open-loop arrival injection: the whole offered sequence is
    // known up front, so it goes into the event queue as one bulk
    // batch (EventQueue::scheduleBatch's O(n) heap build).
    EventQueue arrivals;
    std::vector<std::size_t> arrivedNow;
    {
        std::vector<EventQueue::TimedCallback> batch;
        batch.reserve(requests_.size());
        for (std::size_t i = 0; i < requests_.size(); ++i)
            batch.push_back({requests_[i].arrivalNs,
                             [&arrivedNow, i] {
                                 arrivedNow.push_back(i);
                             }});
        arrivals.scheduleBatch(std::move(batch));
    }

    // Main interleaving loop: either the next arrival is due before
    // any active job's clock (process arrivals/admissions), or the
    // active job furthest behind in time replays one kernel — the
    // same deterministic furthest-behind discipline MultiTenantSim
    // uses, extended with mid-run attach/detach.
    while (!arrivals.empty() || !queue.empty() || !active.empty()) {
        std::size_t minIdx = SIZE_MAX;
        TimeNs minClock = 0;
        for (std::size_t i = 0; i < active.size(); ++i) {
            if (minIdx == SIZE_MAX || active[i].rt->now() < minClock) {
                minClock = active[i].rt->now();
                minIdx = i;
            }
        }

        const TimeNs nextArr = arrivals.nextTime();
        if (minIdx == SIZE_MAX || nextArr <= minClock) {
            if (arrivals.empty())
                panic("serve loop stalled: queued jobs but no "
                      "arrivals and no active jobs");
            arrivals.runUntil(nextArr);
            for (std::size_t req : arrivedNow) {
                const ServeRequest& r = requests_[req];
                // Free capacity admits immediately — simultaneous
                // arrivals must not be shed off a full queue while
                // partitions sit idle.
                if (queue.empty() && canAdmit(r.classIndex)) {
                    admit(req, r.arrivalNs);
                    continue;
                }
                QueuedJob qj;
                qj.request = req;
                qj.arrivalNs = r.arrivalNs;
                qj.serviceEstNs = serviceEst[r.classIndex];
                qj.priority = classes_[r.classIndex].priority;
                if (queue.offer(qj))
                    continue;
                // Queue full. OnDemand's overload escape valve: split
                // a live lease for the policy's next waiter instead
                // of shedding the newcomer — trading per-job speed
                // for not rejecting under pressure.
                bool rescued = false;
                if (ppol == PartitionPolicy::OnDemand &&
                    static_cast<int>(active.size()) < maxActive) {
                    if (!queue.empty()) {
                        const QueuedJob& head =
                            queue.peek(r.arrivalNs);
                        const std::size_t hcls =
                            requests_[head.request].classIndex;
                        if (splitVictim(std::max(minGpu[hcls],
                                                 slotGpu / 2)) !=
                            nullptr) {
                            QueuedJob hj = queue.pop(r.arrivalNs);
                            admit(hj.request,
                                  std::max(r.arrivalNs,
                                           hj.arrivalNs));
                            rescued = queue.offer(qj);
                        }
                    } else if (splitVictim(std::max(
                                   minGpu[r.classIndex],
                                   slotGpu / 2)) != nullptr) {
                        // Zero-capacity queue: split for the arrival.
                        admit(req, r.arrivalNs);
                        rescued = true;
                    }
                }
                if (!rescued) {
                    out.jobs[req].rejected = true;  // load shed
                    if (tp)
                        tp->rejection(static_cast<int>(req),
                                      classes_[r.classIndex].name,
                                      r.arrivalNs);
                }
            }
            arrivedNow.clear();
            if (tp)
                tp->queueDepth(queue.size(), nextArr);
            drainQueue(nextArr);
            continue;
        }

        Active& a = active[minIdx];
        if (a.rt->stepKernel())
            continue;

        // Departure: finalize, record, release the partition lease
        // and trim the job's SSD log space for the next arrival.
        ExecStats st = a.rt->finalize();
        ServeJobOutcome& o = out.jobs[a.request];
        o.finishNs = a.rt->now();
        o.failed = st.failed;
        if (tp) {
            // SLO verdict at departure time — the same expression the
            // post-loop metrics evaluate — so a saved trace carries
            // every breach (see Tracer::departure).
            const ServeClassBaseline& base = baselines_[a.classIndex];
            TimeNs sloLimit = 0;
            bool sloMet = false;
            if (!st.failed && !base.failed && base.unloadedNs > 0) {
                const double limit =
                    spec_.sloFactor *
                    static_cast<double>(base.unloadedNs);
                sloLimit = static_cast<TimeNs>(limit);
                sloMet = static_cast<double>(o.latencyNs()) <= limit;
            }
            tp->departure(static_cast<int>(a.request),
                          classes_[a.classIndex].name,
                          requests_[a.request].arrivalNs, a.rt->now(),
                          st.failed, sloLimit, sloMet);
        }
        a.rt->releaseSsdLog();
        partitions.release(&a.lease);
        const TimeNs freedAt = a.rt->now();
        active.erase(active.begin() +
                     static_cast<std::ptrdiff_t>(minIdx));
        drainQueue(freedAt);
        redistributeAfterDeparture();
    }

    // ---- SLO-centric metrics. ----
    m.offered = out.jobs.size();
    Distribution queueDelay, latency, slowdown;
    TimeNs firstArrival = requests_.front().arrivalNs;
    TimeNs lastFinish = 0;
    std::uint64_t sloMet = 0;
    for (ServeJobOutcome& o : out.jobs) {
        if (o.rejected) {
            ++m.rejected;
            continue;
        }
        ++m.admitted;
        queueDelay.add(static_cast<double>(o.queueNs()));
        m.queueMaxNs = std::max(m.queueMaxNs, o.queueNs());
        if (o.failed) {
            ++m.failed;
            continue;
        }
        ++m.completed;
        lastFinish = std::max(lastFinish, o.finishNs);
        latency.add(static_cast<double>(o.latencyNs()));

        const ServeClassBaseline& base = baselines_[o.classIndex];
        if (!base.failed && base.unloadedNs > 0) {
            o.slowdown = static_cast<double>(o.latencyNs()) /
                         static_cast<double>(base.unloadedNs);
            slowdown.add(o.slowdown);
            o.sloMet = static_cast<double>(o.latencyNs()) <=
                       spec_.sloFactor *
                           static_cast<double>(base.unloadedNs);
            if (o.sloMet)
                ++sloMet;
        }
    }
    if (queueDelay.count() > 0) {
        m.queueP50Ns = pctNs(queueDelay, 0.50);
        m.queueP95Ns = pctNs(queueDelay, 0.95);
        m.queueP99Ns = pctNs(queueDelay, 0.99);
        m.queueMeanNs = queueDelay.mean();
    }
    if (latency.count() > 0) {
        m.latencyP50Ns = pctNs(latency, 0.50);
        m.latencyP95Ns = pctNs(latency, 0.95);
        m.latencyP99Ns = pctNs(latency, 0.99);
        m.latencyMeanNs = latency.mean();
    }
    if (slowdown.count() > 0) {
        m.slowdownMean = slowdown.mean();
        m.slowdownP95 = slowdown.percentile(0.95);
    }
    m.sloAttainment = m.offered > 0
        ? static_cast<double>(sloMet) / static_cast<double>(m.offered)
        : 0.0;
    if (lastFinish > firstArrival) {
        m.makespanNs = lastFinish - firstArrival;
        m.throughputRps = static_cast<double>(m.completed) /
                          (static_cast<double>(m.makespanNs) / SEC);
        m.gpuUtilization = static_cast<double>(gpu.busyNs) /
                           static_cast<double>(m.makespanNs);
    }
    m.maxQueueDepth = queue.maxDepth();
    m.starvationPromotions = queue.starvationPromotions();
    out.ssd = ssd.stats();
    return out;
}

// ---------------------------------------------------------------------
// ServeSweep: the designs × rates grid
// ---------------------------------------------------------------------

ServeSweep::ServeSweep(const ServeSpec& spec) : spec_(spec)
{
    if (spec_.designs.empty())
        fatal("serve sweep needs at least one design");
    if (spec_.rates.empty() && !spec_.ratesAuto)
        fatal("serve sweep needs at least one arrival rate (or "
              "rates = auto)");
    if (spec_.slots < 1)
        fatal("serve sweep needs slots >= 1");
    if (spec_.resolvedMaxActive() < spec_.slots)
        fatal("serve sweep needs max_active >= slots");
    for (const std::string& d : spec_.designs)
        PolicyRegistry::instance().resolve(d);  // fatal on unknown

    if (spec_.sweepPlanCache) {
        ownedPlanCache_ = std::make_unique<SweepPlanCache>();
        planCache_ = ownedPlanCache_.get();
    }

    if (spec_.arrival.kind == ArrivalKind::Trace) {
        // Job classes are derived from the trace: one per distinct
        // (model, batch, iterations, priority) request shape.
        traceReqs_ = parseArrivalTrace(spec_.arrival.tracePath);
        for (TraceRequest& tr : traceReqs_) {
            if (tr.batchSize <= 0)
                tr.batchSize = paperBatchSize(tr.model);
            std::size_t ci = classes_.size();
            for (std::size_t c = 0; c < classes_.size(); ++c) {
                if (classes_[c].model == tr.model &&
                    classes_[c].batchSize == tr.batchSize &&
                    classes_[c].iterations == tr.iterations &&
                    classes_[c].priority == tr.priority) {
                    ci = c;
                    break;
                }
            }
            if (ci == classes_.size()) {
                ServeJobClass cls;
                cls.model = tr.model;
                cls.batchSize = tr.batchSize;
                cls.iterations = tr.iterations;
                cls.priority = tr.priority;
                cls.name = std::string(modelName(tr.model)) + "-" +
                           std::to_string(tr.batchSize);
                classes_.push_back(cls);
            }
            traceClass_.push_back(ci);
        }
    } else {
        if (spec_.classes.empty())
            fatal("serve sweep needs at least one job class");
        classes_ = spec_.classes;
        for (ServeJobClass& cls : classes_) {
            if (cls.batchSize <= 0)
                cls.batchSize = paperBatchSize(cls.model);
            if (cls.name.empty())
                cls.name = std::string(modelName(cls.model)) + "-" +
                           std::to_string(cls.batchSize);
        }
    }

    traces_.reserve(classes_.size());
    for (const ServeJobClass& cls : classes_)
        traces_.push_back(buildModelScaled(cls.model, cls.batchSize,
                                           spec_.scaleDown));

    // Per-class elastic capacity floors, once per sweep: the largest
    // kernel working set (+12.5% headroom for in-flight transfers) —
    // a lease below it is guaranteed to hit the hard-OOM path, so
    // the elastic policies never shrink or grant under it.
    const Bytes page = spec_.sys.scaledDown(spec_.scaleDown).pageBytes;
    minGpu_.reserve(traces_.size());
    for (const KernelTrace& t : traces_)
        minGpu_.push_back(serveClassGpuFloor(t, page));
}

ServeSweep::~ServeSweep() = default;

void
ServeSweep::sharePlanCache(SweepPlanCache* cache)
{
    planCache_ = cache;
    ownedPlanCache_.reset();
}

std::vector<ServeRequest>
ServeSweep::requestsAtRate(double rate) const
{
    std::vector<ServeRequest> out;
    if (spec_.arrival.kind == ArrivalKind::Trace) {
        // The rate is a replay-speed multiplier over the trace; class
        // indices were resolved once at construction.
        out.reserve(traceReqs_.size());
        for (std::size_t i = 0; i < traceReqs_.size(); ++i) {
            ServeRequest r;
            r.arrivalNs = static_cast<TimeNs>(
                static_cast<double>(traceReqs_[i].arrivalNs) / rate);
            r.classIndex = traceClass_[i];
            out.push_back(r);
        }
        return out;
    }

    std::vector<TimeNs> times = generateArrivals(
        spec_.arrival, rate, spec_.requests, spec_.seed);
    // Class picks draw from their own engine so the class sequence is
    // identical at every rate (cells differ only in arrival spacing).
    std::mt19937_64 picks(spec_.seed + 1);
    double wsum = 0.0;
    for (const ServeJobClass& cls : classes_)
        wsum += cls.weight;
    out.reserve(times.size());
    for (TimeNs t : times) {
        double u = unitInterval(picks) * wsum;
        double cum = 0.0;
        std::size_t ci = classes_.size() - 1;
        for (std::size_t c = 0; c < classes_.size(); ++c) {
            cum += classes_[c].weight;
            if (u <= cum) {
                ci = c;
                break;
            }
        }
        ServeRequest r;
        r.arrivalNs = t;
        r.classIndex = ci;
        out.push_back(r);
    }
    return out;
}

bool
ServeSweepResult::allSucceeded() const
{
    for (const ServeCellResult& cell : cells)
        if (cell.metrics.failed > 0)
            return false;
    return true;
}

std::vector<std::vector<ServeClassBaseline>>
ServeSweep::computeBaselines(ExperimentEngine& engine) const
{
    // Unloaded baselines: every (design, class) pair alone on one
    // idle *static* partition slot — the latency reference the SLO
    // and slowdown metrics are defined against, shared by every
    // partition policy so elastic results stay comparable to static.
    const SystemConfig scaled = spec_.sys.scaledDown(spec_.scaleDown);
    const SystemConfig slotSys = partitionShare(
        scaled, 1.0 / static_cast<double>(spec_.slots));

    const std::size_t nd = spec_.designs.size();
    const std::size_t nc = classes_.size();
    std::vector<std::vector<ServeClassBaseline>> baselines(
        nd, std::vector<ServeClassBaseline>(nc));
    for (std::size_t c = 0; c < nc; ++c) {
        // G10-family designs compile through the sweep cache: the
        // slot-capacity plans built here share keys with every cell's
        // first (cold, slot-sized) admission compile, so the knee
        // probes start warm. Compile + sim fuse into one parallel
        // task per design; sims are independent either way.
        std::vector<DesignInstance> designs(nd);
        engine.parallelFor(nd, [&](std::size_t d) {
            int tag = 0;
            if (planCache_ != nullptr &&
                g10FamilyTag(spec_.designs[d], &tag)) {
                std::shared_ptr<const CompiledPlan> plan =
                    compilePlan(tag, traces_[c], classes_[c],
                                spec_.scaleDown, slotSys, nullptr,
                                planCache_);
                designs[d].uvmExtension =
                    tag == static_cast<int>(DesignPoint::G10);
                designs[d].policy =
                    makeFamilyPolicy(tag, std::move(plan));
            } else {
                designs[d] = PolicyRegistry::instance().make(
                    spec_.designs[d], traces_[c], slotSys);
            }
            RunConfig rc;
            rc.sys = slotSys;
            rc.iterations = classes_[c].iterations;
            rc.uvmExtension = designs[d].uvmExtension;
            rc.seed = spec_.seed;
            SimRuntime rt(traces_[c], *designs[d].policy, rc);
            ExecStats st = rt.run();
            baselines[d][c].unloadedNs = rt.now();
            baselines[d][c].failed = st.failed;
        });
    }
    return baselines;
}

void
ServeSweep::runAutoRates(ExperimentEngine& engine,
                         const ServeObsRequest& obs,
                         ServeSweepResult* out)
{
    const std::size_t nd = spec_.designs.size();
    std::vector<std::vector<ServeCellResult>> cellsByDesign(nd);
    std::vector<CounterRegistry> regs(nd);
    out->sustainedRate.assign(nd, 0.0);
    out->rateProbes.assign(nd, 0);

    // Each design bisects independently: one consumer per design
    // walks a KneeCursor (the sequential phase-1 doubling + phase-2
    // bisection, verbatim) and acquires each decided probe from the
    // scheduler, which runs it — and, while the consumer waits,
    // speculatively runs the possible next rates — on the pool. The
    // decided path only *reads* memoized results in sequential order,
    // so cells, knees, and counters are byte-identical to the
    // sequential search at any pool size. Each decided probe's
    // registry merges into its design's in probe order, designs merge
    // in design order below; the event sink observes only the first
    // probe of the first design (which is always decided, never
    // speculative: a lane's root is issued before any speculation on
    // that lane). Probes draw arenas from a shared pool — one per
    // in-flight probe — so a warm high-water chunk still serves probe
    // after probe without the old one-arena-per-design sequential
    // assumption.
    const double rootRate = spec_.resolvedRateLo();
    ProbeCache probeCache;
    ArenaPool arenas;

    auto probeFn = [&](std::uint32_t d, double rate) -> ProbeResult {
        ProbeResult pr;
        std::unique_ptr<Arena> arena = arenas.acquire();
        {
            ServeSim sim(spec_, spec_.designs[d], rate, traces_,
                         classes_, minGpu_, requestsAtRate(rate),
                         out->baselines[d]);
            sim.setObservers(
                d == 0 && rate == rootRate ? obs.sink : nullptr,
                obs.collectCounters ? &pr.counters : nullptr);
            sim.setPlanCache(planCache_);
            sim.setArena(arena.get());
            pr.cells.push_back(sim.run());
            pr.sustained = pr.cells.back().sustained();
        }
        arenas.release(std::move(arena));
        return pr;
    };

    ProbeStats stats;
    {
        ProbeScheduler sched(engine, probeCache,
                             fingerprintServeSpec(spec_), probeFn,
                             spec_.speculativeProbes);
        engine.parallelFor(nd, [&](std::size_t d) {
            KneeCursor cur(rootRate, spec_.rateHi, spec_.rateProbes);
            while (!cur.done()) {
                std::shared_ptr<const ProbeResult> res =
                    sched.acquire(static_cast<std::uint32_t>(d), cur);
                cellsByDesign[d].push_back(res->cells.front());
                if (obs.collectCounters)
                    regs[d].merge(res->counters);
                cur.advance(res->sustained);
            }
            out->sustainedRate[d] = cur.knee();
            out->rateProbes[d] = static_cast<std::uint64_t>(cur.used());
        });
        // The searches are done; the dtor drains whatever speculation
        // is still in flight before the captures above go away.
        stats = sched.stats();
    }
    out->probesIssued = stats.issued;
    out->probesSpeculative = stats.speculated;
    out->probeSpecUsed = stats.speculationUsed;
    out->probeSpecWasted = stats.speculationWasted;
    out->probeCacheHits = stats.cacheHits;

    for (std::size_t d = 0; d < nd; ++d)
        for (ServeCellResult& cell : cellsByDesign[d])
            out->cells.push_back(std::move(cell));
    if (obs.collectCounters) {
        for (CounterRegistry& reg : regs)
            out->counters.merge(reg);
        // Scheduler accounting rides the same registry (visible via
        // --metrics, never serialized into the result document).
        out->counters.add("sweep.probe.issued", stats.issued);
        out->counters.add("sweep.probe.decided", stats.decided);
        out->counters.add("sweep.probe.speculated", stats.speculated);
        out->counters.add("sweep.probe.speculation_used",
                          stats.speculationUsed);
        out->counters.add("sweep.probe.speculation_wasted",
                          stats.speculationWasted);
        out->counters.add("sweep.probe.cache_hits", stats.cacheHits);
    }
}

ServeSweepResult
ServeSweep::run(ExperimentEngine& engine)
{
    return run(engine, ServeObsRequest{});
}

ServeSweepResult
ServeSweep::run(ExperimentEngine& engine, const ServeObsRequest& obs)
{
    ServeSweepResult out;
    out.spec = spec_;
    for (const ServeJobClass& cls : classes_)
        out.classNames.push_back(cls.name);

    out.baselines = computeBaselines(engine);

    auto recordCacheTotals = [&] {
        if (planCache_ == nullptr)
            return;
        out.planCacheHits = planCache_->hits();
        out.planCacheMisses = planCache_->misses();
        out.planCacheEntries = planCache_->entries();
    };

    if (spec_.ratesAuto) {
        runAutoRates(engine, obs, &out);
        recordCacheTotals();
        return out;
    }

    // The offered sequences, one per rate (shared by every design:
    // cells of one rate differ only in the design under test).
    const std::size_t nd = spec_.designs.size();
    const std::size_t nr = spec_.rates.size();
    std::vector<std::vector<ServeRequest>> requestsByRate(nr);
    for (std::size_t r = 0; r < nr; ++r)
        requestsByRate[r] = requestsAtRate(spec_.rates[r]);

    // The grid: every design at every offered rate, design-major.
    // Per-cell registries (cells run on pool threads), merged in grid
    // order afterwards so the totals are worker-count independent;
    // the event sink observes only the first cell.
    out.cells.resize(nd * nr);
    std::vector<CounterRegistry> regs(nd * nr);
    engine.parallelFor(nd * nr, [&](std::size_t i) {
        const std::size_t d = i / nr;
        const std::size_t r = i % nr;
        ServeSim sim(spec_, spec_.designs[d], spec_.rates[r], traces_,
                     classes_, minGpu_, requestsByRate[r],
                     out.baselines[d]);
        sim.setObservers(i == 0 ? obs.sink : nullptr,
                         obs.collectCounters ? &regs[i] : nullptr);
        sim.setPlanCache(planCache_);
        out.cells[i] = sim.run();
    });
    if (obs.collectCounters)
        for (CounterRegistry& reg : regs)
            out.counters.merge(reg);

    // Sustained-throughput capacity per design: the highest offered
    // rate whose cell stayed within the bounded queue (no rejections)
    // and had no failures.
    out.sustainedRate.assign(nd, 0.0);
    for (std::size_t d = 0; d < nd; ++d)
        for (std::size_t r = 0; r < nr; ++r)
            if (out.cells[d * nr + r].sustained())
                out.sustainedRate[d] = std::max(
                    out.sustainedRate[d], spec_.rates[r]);
    recordCacheTotals();
    return out;
}

}  // namespace g10
