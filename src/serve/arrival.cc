#include "arrival.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/parse_util.h"

namespace g10 {

const char*
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Bursty: return "bursty";
      case ArrivalKind::Trace: return "trace";
    }
    return "?";
}

bool
arrivalKindFromName(const std::string& name, ArrivalKind* out)
{
    if (name == "poisson")
        *out = ArrivalKind::Poisson;
    else if (name == "bursty")
        *out = ArrivalKind::Bursty;
    else if (name == "trace")
        *out = ArrivalKind::Trace;
    else
        return false;
    return true;
}

double
unitInterval(std::mt19937_64& engine)
{
    // Top 53 bits of one draw, shifted into (0, 1]: the +1 excludes 0
    // so -log(u) is always finite. mt19937_64's output sequence is
    // fully specified by the standard, so this is portable.
    return static_cast<double>((engine() >> 11) + 1) * 0x1p-53;
}

std::vector<TimeNs>
generateArrivals(const ArrivalSpec& spec, double rate_per_sec,
                 int count, std::uint64_t seed)
{
    if (spec.kind == ArrivalKind::Trace)
        fatal("generateArrivals: trace arrivals replay the parsed "
              "file; they are not generated");
    if (rate_per_sec <= 0.0)
        fatal("arrival rate must be > 0, got %g", rate_per_sec);
    if (count < 1)
        fatal("arrival count must be >= 1, got %d", count);
    if (spec.kind == ArrivalKind::Bursty &&
        (spec.burstOnSec <= 0.0 || spec.burstOffSec < 0.0))
        fatal("bursty arrivals need burst_on > 0 and burst_off >= 0");

    std::mt19937_64 engine(seed);
    std::vector<TimeNs> out;
    out.reserve(static_cast<std::size_t>(count));

    // Exponential inter-arrival gaps accumulate on the process's
    // *active* clock; Bursty then maps active time onto the wall
    // clock by inserting the OFF windows.
    double active_sec = 0.0;
    for (int i = 0; i < count; ++i) {
        active_sec += -std::log(unitInterval(engine)) / rate_per_sec;
        double wall_sec = active_sec;
        if (spec.kind == ArrivalKind::Bursty) {
            double cycles = std::floor(active_sec / spec.burstOnSec);
            wall_sec = cycles * (spec.burstOnSec + spec.burstOffSec) +
                       (active_sec - cycles * spec.burstOnSec);
        }
        out.push_back(static_cast<TimeNs>(wall_sec * 1e9));
    }
    return out;
}

namespace {

/** Parse a double attribute; fatal with location on malformed input. */
double
parseDoubleAt(const std::string& v, const std::string& path,
              std::size_t line, const char* what)
{
    double out = 0.0;
    if (!parseDoubleStrict(v, &out))
        fatal("%s:%zu: %s needs a number, got '%s'", path.c_str(), line,
              what, v.c_str());
    return out;
}

/** Parse one "req = <arrival_ms> <Model> k=v ..." payload. */
TraceRequest
parseReqLine(const std::string& payload, const std::string& path,
             std::size_t line)
{
    std::stringstream ss(payload);
    std::string time_tok, model_name;
    if (!(ss >> time_tok >> model_name))
        fatal("%s:%zu: 'req =' needs '<arrival_ms> <Model>'",
              path.c_str(), line);

    TraceRequest req;
    double ms = parseDoubleAt(time_tok, path, line, "arrival time");
    if (ms < 0.0)
        fatal("%s:%zu: arrival time must be >= 0", path.c_str(), line);
    req.arrivalNs =
        static_cast<TimeNs>(ms * static_cast<double>(MSEC));
    req.model = modelKindFromName(model_name);

    std::string tok;
    while (ss >> tok) {
        auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size())
            fatal("%s:%zu: request attribute '%s' is not key=value",
                  path.c_str(), line, tok.c_str());
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        long long n = 0;
        if (!parseIntStrict(val, &n))
            fatal("%s:%zu: '%s' needs an integer, got '%s'",
                  path.c_str(), line, key.c_str(), val.c_str());
        if (key == "batch") {
            if (n < 1)
                fatal("%s:%zu: batch must be >= 1", path.c_str(), line);
            req.batchSize = static_cast<int>(n);
        } else if (key == "iterations") {
            if (n < 1)
                fatal("%s:%zu: iterations must be >= 1", path.c_str(),
                      line);
            req.iterations = static_cast<int>(n);
        } else if (key == "priority") {
            if (n < 1 || n > 1000)
                fatal("%s:%zu: priority must be in [1, 1000]",
                      path.c_str(), line);
            req.priority = static_cast<int>(n);
        } else {
            fatal("%s:%zu: unknown request attribute '%s' (expected "
                  "batch, iterations, priority)",
                  path.c_str(), line, key.c_str());
        }
    }
    return req;
}

}  // namespace

std::vector<TraceRequest>
parseArrivalTrace(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open arrival trace '%s'", path.c_str());

    std::vector<TraceRequest> out;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(f, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);

        std::stringstream ss(line);
        std::string key, eq;
        if (!(ss >> key))
            continue;  // blank / comment-only line
        if (!(ss >> eq) || eq != "=")
            fatal("%s:%zu: expected 'req = ...'", path.c_str(), lineno);
        if (key != "req")
            fatal("%s:%zu: unknown key '%s' (expected req)",
                  path.c_str(), lineno, key.c_str());

        std::string payload;
        std::getline(ss, payload);
        TraceRequest req = parseReqLine(payload, path, lineno);
        if (!out.empty() && req.arrivalNs < out.back().arrivalNs)
            fatal("%s:%zu: arrival times must be non-decreasing",
                  path.c_str(), lineno);
        out.push_back(req);
    }

    if (out.empty())
        fatal("%s: arrival trace defines no requests", path.c_str());
    return out;
}

}  // namespace g10
