#include "admission.h"

#include <algorithm>

#include "common/logging.h"

namespace g10 {

const char*
admitPolicyName(AdmitPolicy policy)
{
    switch (policy) {
      case AdmitPolicy::Fifo: return "fifo";
      case AdmitPolicy::Sjf: return "sjf";
      case AdmitPolicy::Priority: return "priority";
    }
    return "?";
}

bool
admitPolicyFromName(const std::string& name, AdmitPolicy* out)
{
    if (name == "fifo")
        *out = AdmitPolicy::Fifo;
    else if (name == "sjf")
        *out = AdmitPolicy::Sjf;
    else if (name == "priority")
        *out = AdmitPolicy::Priority;
    else
        return false;
    return true;
}

AdmissionQueue::AdmissionQueue(AdmitPolicy policy, std::size_t capacity,
                               TimeNs starvation_ns)
    : policy_(policy), capacity_(capacity), starvationNs_(starvation_ns)
{
}

bool
AdmissionQueue::offer(QueuedJob job)
{
    if (q_.size() >= capacity_)
        return false;
    job.seq = nextSeq_++;
    q_.push_back(job);
    maxDepth_ = std::max(maxDepth_, q_.size());
    return true;
}

std::size_t
AdmissionQueue::selectIndex(TimeNs now, bool* promoted) const
{
    *promoted = false;

    // FIFO choice: the smallest sequence number (also the starvation
    // fallback and every policy's tie-break direction).
    std::size_t fifo = 0;
    for (std::size_t i = 1; i < q_.size(); ++i)
        if (q_[i].seq < q_[fifo].seq)
            fifo = i;

    std::size_t pick = fifo;
    switch (policy_) {
      case AdmitPolicy::Fifo:
        break;
      case AdmitPolicy::Sjf:
        for (std::size_t i = 0; i < q_.size(); ++i) {
            const QueuedJob& a = q_[i];
            const QueuedJob& b = q_[pick];
            if (a.serviceEstNs < b.serviceEstNs ||
                (a.serviceEstNs == b.serviceEstNs && a.seq < b.seq))
                pick = i;
        }
        break;
      case AdmitPolicy::Priority: {
        for (std::size_t i = 0; i < q_.size(); ++i) {
            const QueuedJob& a = q_[i];
            const QueuedJob& b = q_[pick];
            if (a.priority > b.priority ||
                (a.priority == b.priority && a.seq < b.seq))
                pick = i;
        }
        // Starvation guard: when the oldest waiter has exceeded the
        // window, it goes next no matter what priorities say.
        if (starvationNs_ > 0 && pick != fifo &&
            now - q_[fifo].arrivalNs > starvationNs_) {
            pick = fifo;
            *promoted = true;
        }
        break;
      }
    }
    return pick;
}

QueuedJob
AdmissionQueue::pop(TimeNs now)
{
    if (q_.empty())
        panic("AdmissionQueue::pop on an empty queue");
    bool promoted = false;
    std::size_t pick = selectIndex(now, &promoted);
    if (promoted)
        ++promotions_;
    QueuedJob out = q_[pick];
    q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(pick));
    return out;
}

const QueuedJob&
AdmissionQueue::peek(TimeNs now) const
{
    if (q_.empty())
        panic("AdmissionQueue::peek on an empty queue");
    bool promoted = false;
    return q_[selectIndex(now, &promoted)];
}

}  // namespace g10
