#include "serve_spec.h"

#include <fstream>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/parse_util.h"
#include "policies/registry.h"

namespace g10 {

namespace {

/** Parse an integer; fatal with location on malformed input. */
long long
parseInt(const std::string& v, const std::string& path, std::size_t line,
         const std::string& key)
{
    long long out = 0;
    if (!parseIntStrict(v, &out))
        fatal("%s:%zu: '%s' needs an integer, got '%s'", path.c_str(),
              line, key.c_str(), v.c_str());
    return out;
}

/** Parse a double; fatal with location on malformed input. */
double
parseDouble(const std::string& v, const std::string& path,
            std::size_t line, const std::string& key)
{
    double out = 0.0;
    if (!parseDoubleStrict(v, &out))
        fatal("%s:%zu: '%s' needs a number, got '%s'", path.c_str(),
              line, key.c_str(), v.c_str());
    return out;
}

/** Split a comma list ("a,b,c"); empty items are malformed. */
std::vector<std::string>
splitCommaList(const std::string& v, const std::string& path,
               std::size_t line, const std::string& key)
{
    std::vector<std::string> out;
    std::string item;
    std::stringstream ss(v);
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            fatal("%s:%zu: '%s' has an empty list item", path.c_str(),
                  line, key.c_str());
        out.push_back(item);
    }
    if (out.empty() || v.back() == ',')
        fatal("%s:%zu: '%s' needs a comma-separated list", path.c_str(),
              line, key.c_str());
    return out;
}

/** Parse one "class = <Model> k=v ..." payload. */
ServeJobClass
parseClassLine(const std::string& payload, const std::string& path,
               std::size_t line)
{
    std::stringstream ss(payload);
    std::string model_name;
    if (!(ss >> model_name))
        fatal("%s:%zu: 'class =' needs at least a model name",
              path.c_str(), line);

    ServeJobClass cls;
    cls.model = modelKindFromName(model_name);
    std::string tok;
    while (ss >> tok) {
        auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size())
            fatal("%s:%zu: class attribute '%s' is not key=value",
                  path.c_str(), line, tok.c_str());
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        if (key == "batch") {
            cls.batchSize =
                static_cast<int>(parseInt(val, path, line, key));
            if (cls.batchSize < 1)
                fatal("%s:%zu: batch must be >= 1", path.c_str(), line);
        } else if (key == "iterations") {
            cls.iterations =
                static_cast<int>(parseInt(val, path, line, key));
            if (cls.iterations < 1)
                fatal("%s:%zu: iterations must be >= 1", path.c_str(),
                      line);
        } else if (key == "priority") {
            cls.priority =
                static_cast<int>(parseInt(val, path, line, key));
            if (cls.priority < 1 || cls.priority > 1000)
                fatal("%s:%zu: priority must be in [1, 1000]",
                      path.c_str(), line);
        } else if (key == "weight") {
            cls.weight = parseDouble(val, path, line, key);
            if (cls.weight <= 0.0)
                fatal("%s:%zu: weight must be > 0", path.c_str(), line);
        } else if (key == "name") {
            cls.name = val;
        } else {
            fatal("%s:%zu: unknown class attribute '%s' (expected "
                  "batch, iterations, priority, weight, name)",
                  path.c_str(), line, key.c_str());
        }
    }
    if (cls.batchSize <= 0)
        cls.batchSize = paperBatchSize(cls.model);
    if (cls.name.empty())
        cls.name = std::string(modelName(cls.model)) + "-" +
                   std::to_string(cls.batchSize);
    return cls;
}

}  // namespace

const char*
partitionPolicyName(PartitionPolicy policy)
{
    switch (policy) {
      case PartitionPolicy::Static:
        return "static";
      case PartitionPolicy::Proportional:
        return "proportional";
      case PartitionPolicy::OnDemand:
        return "ondemand";
    }
    return "?";
}

bool
partitionPolicyFromName(const std::string& name, PartitionPolicy* out)
{
    if (name == "static")
        *out = PartitionPolicy::Static;
    else if (name == "proportional")
        *out = PartitionPolicy::Proportional;
    else if (name == "ondemand")
        *out = PartitionPolicy::OnDemand;
    else
        return false;
    return true;
}

ServeSpec
parseServeFile(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open serve file '%s'", path.c_str());

    ServeSpec spec;
    spec.rates.clear();
    spec.designs.clear();

    std::set<std::string> seen;  // scalar keys may not repeat
    std::string line;
    std::size_t lineno = 0;
    bool have_trace_path = false;
    while (std::getline(f, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);

        std::stringstream ss(line);
        std::string key, eq;
        if (!(ss >> key))
            continue;  // blank / comment-only line
        if (!(ss >> eq) || eq != "=")
            fatal("%s:%zu: expected 'key = value'", path.c_str(),
                  lineno);

        if (key == "class") {
            std::string payload;
            std::getline(ss, payload);
            spec.classes.push_back(
                parseClassLine(payload, path, lineno));
            continue;
        }

        std::string value, extra;
        if (!(ss >> value))
            fatal("%s:%zu: '%s =' is missing a value", path.c_str(),
                  lineno, key.c_str());
        if (ss >> extra)
            fatal("%s:%zu: trailing garbage '%s' after value",
                  path.c_str(), lineno, extra.c_str());
        if (!seen.insert(key).second)
            fatal("%s:%zu: duplicate key '%s'", path.c_str(), lineno,
                  key.c_str());

        if (key == "scale") {
            long long v = parseInt(value, path, lineno, key);
            if (v < 1)
                fatal("%s:%zu: scale must be >= 1", path.c_str(),
                      lineno);
            spec.scaleDown = static_cast<unsigned>(v);
        } else if (key == "seed") {
            spec.seed = static_cast<std::uint64_t>(
                parseInt(value, path, lineno, key));
        } else if (key == "slots") {
            long long v = parseInt(value, path, lineno, key);
            if (v < 1)
                fatal("%s:%zu: slots must be >= 1", path.c_str(),
                      lineno);
            spec.slots = static_cast<int>(v);
        } else if (key == "queue") {
            long long v = parseInt(value, path, lineno, key);
            if (v < 0)
                fatal("%s:%zu: queue must be >= 0", path.c_str(),
                      lineno);
            spec.queueCapacity = static_cast<std::size_t>(v);
        } else if (key == "admission") {
            if (!admitPolicyFromName(value, &spec.admit))
                fatal("%s:%zu: unknown admission '%s' (fifo | sjf | "
                      "priority)",
                      path.c_str(), lineno, value.c_str());
        } else if (key == "starvation_ms") {
            spec.starvationNs = static_cast<TimeNs>(
                parseDouble(value, path, lineno, key) *
                static_cast<double>(MSEC));
        } else if (key == "slo_factor") {
            spec.sloFactor = parseDouble(value, path, lineno, key);
            if (spec.sloFactor <= 0.0)
                fatal("%s:%zu: slo_factor must be > 0", path.c_str(),
                      lineno);
        } else if (key == "requests") {
            long long v = parseInt(value, path, lineno, key);
            if (v < 1)
                fatal("%s:%zu: requests must be >= 1", path.c_str(),
                      lineno);
            spec.requests = static_cast<int>(v);
        } else if (key == "arrival") {
            if (!arrivalKindFromName(value, &spec.arrival.kind))
                fatal("%s:%zu: unknown arrival '%s' (poisson | bursty "
                      "| trace)",
                      path.c_str(), lineno, value.c_str());
        } else if (key == "burst_on_ms") {
            spec.arrival.burstOnSec =
                parseDouble(value, path, lineno, key) / 1e3;
            if (spec.arrival.burstOnSec <= 0.0)
                fatal("%s:%zu: burst_on_ms must be > 0", path.c_str(),
                      lineno);
        } else if (key == "burst_off_ms") {
            spec.arrival.burstOffSec =
                parseDouble(value, path, lineno, key) / 1e3;
            if (spec.arrival.burstOffSec < 0.0)
                fatal("%s:%zu: burst_off_ms must be >= 0", path.c_str(),
                      lineno);
        } else if (key == "trace") {
            spec.arrival.tracePath = value;
            have_trace_path = true;
        } else if (key == "partition_policy") {
            if (!partitionPolicyFromName(value, &spec.partitionPolicy))
                fatal("%s:%zu: unknown partition_policy '%s' (static "
                      "| proportional | ondemand)",
                      path.c_str(), lineno, value.c_str());
        } else if (key == "resize_hysteresis") {
            spec.resizeHysteresis =
                parseDouble(value, path, lineno, key);
            if (spec.resizeHysteresis < 0.0 ||
                spec.resizeHysteresis >= 1.0)
                fatal("%s:%zu: resize_hysteresis must be in [0, 1)",
                      path.c_str(), lineno);
        } else if (key == "max_active") {
            long long v = parseInt(value, path, lineno, key);
            if (v < 0)
                fatal("%s:%zu: max_active must be >= 0 (0 = derive)",
                      path.c_str(), lineno);
            spec.maxActive = static_cast<int>(v);
        } else if (key == "rates") {
            if (value == "auto") {
                spec.ratesAuto = true;
            } else {
                for (const std::string& item :
                     splitCommaList(value, path, lineno, key)) {
                    double r = parseDouble(item, path, lineno, key);
                    if (r <= 0.0)
                        fatal("%s:%zu: rates must be > 0",
                              path.c_str(), lineno);
                    spec.rates.push_back(r);
                }
            }
        } else if (key == "rate_lo") {
            spec.rateLo = parseDouble(value, path, lineno, key);
            if (spec.rateLo <= 0.0)
                fatal("%s:%zu: rate_lo must be > 0", path.c_str(),
                      lineno);
        } else if (key == "rate_hi") {
            spec.rateHi = parseDouble(value, path, lineno, key);
            if (spec.rateHi <= 0.0)
                fatal("%s:%zu: rate_hi must be > 0", path.c_str(),
                      lineno);
        } else if (key == "rate_probes") {
            long long v = parseInt(value, path, lineno, key);
            if (v < 2)
                fatal("%s:%zu: rate_probes must be >= 2", path.c_str(),
                      lineno);
            spec.rateProbes = static_cast<int>(v);
        } else if (key == "sweep_cache") {
            if (value == "on")
                spec.sweepPlanCache = true;
            else if (value == "off")
                spec.sweepPlanCache = false;
            else
                fatal("%s:%zu: sweep_cache must be 'on' or 'off'",
                      path.c_str(), lineno);
        } else if (key == "speculate") {
            if (value == "on")
                spec.speculativeProbes = true;
            else if (value == "off")
                spec.speculativeProbes = false;
            else
                fatal("%s:%zu: speculate must be 'on' or 'off'",
                      path.c_str(), lineno);
        } else if (key == "designs") {
            for (const std::string& item :
                 splitCommaList(value, path, lineno, key)) {
                if (!PolicyRegistry::instance().contains(item))
                    fatal("%s:%zu: unknown design '%s' (registered: "
                          "%s)",
                          path.c_str(), lineno, item.c_str(),
                          PolicyRegistry::instance()
                              .knownNames()
                              .c_str());
                spec.designs.push_back(item);
            }
        } else if (key == "gpu_mem_gb") {
            double v = parseDouble(value, path, lineno, key);
            if (v <= 0.0)
                fatal("%s:%zu: gpu_mem_gb must be > 0", path.c_str(),
                      lineno);
            spec.sys.gpuMemBytes = static_cast<Bytes>(v * 1e9);
        } else if (key == "host_mem_gb") {
            spec.sys.hostMemBytes = static_cast<Bytes>(
                parseDouble(value, path, lineno, key) * 1e9);
        } else if (key == "ssd_gbps") {
            spec.sys.setSsdBandwidthGBps(
                parseDouble(value, path, lineno, key));
        } else if (key == "pcie_gbps") {
            spec.sys.pcieGBps = parseDouble(value, path, lineno, key);
        } else {
            fatal("%s:%zu: unknown key '%s' (expected class, scale, "
                  "seed, slots, partition_policy, resize_hysteresis, "
                  "max_active, queue, admission, starvation_ms, "
                  "slo_factor, requests, arrival, burst_on_ms, "
                  "burst_off_ms, trace, rates, rate_lo, rate_hi, "
                  "rate_probes, sweep_cache, speculate, designs, "
                  "gpu_mem_gb, host_mem_gb, ssd_gbps, pcie_gbps)",
                  path.c_str(), lineno, key.c_str());
        }
    }

    // Cross-key consistency.
    if (spec.rates.empty() && !spec.ratesAuto)
        fatal("%s: serve file needs 'rates = ...'", path.c_str());
    if (spec.maxActive > 0 && spec.maxActive < spec.slots)
        fatal("%s: max_active (%d) must be >= slots (%d)",
              path.c_str(), spec.maxActive, spec.slots);
    if (spec.rateLo > 0.0 && spec.rateHi > 0.0 &&
        spec.rateHi < spec.rateLo)
        fatal("%s: rate_hi must be >= rate_lo", path.c_str());
    if (spec.designs.empty())
        fatal("%s: serve file needs 'designs = ...'", path.c_str());
    if (spec.arrival.kind == ArrivalKind::Trace) {
        if (!have_trace_path)
            fatal("%s: 'arrival = trace' needs 'trace = <file>'",
                  path.c_str());
        if (!spec.classes.empty())
            fatal("%s: 'class =' lines are only for poisson/bursty "
                  "arrivals (trace files carry their own requests)",
                  path.c_str());
    } else if (spec.classes.empty()) {
        fatal("%s: serve file defines no job classes", path.c_str());
    }
    return spec;
}

ServeSpec
demoServeSpec(unsigned scale)
{
    ServeSpec spec;
    spec.scaleDown = scale;
    spec.slots = 2;
    spec.queueCapacity = 4;
    spec.requests = 12;
    spec.rates = {0.2, 0.6, 1.8};
    spec.designs = {"baseuvm", "deepum", "g10"};

    ServeJobClass big;
    big.model = ModelKind::ResNet152;
    big.batchSize = 512;
    big.weight = 1.0;
    ServeJobClass small;
    small.model = ModelKind::ResNet152;
    small.batchSize = 256;
    small.weight = 2.0;
    ServeJobClass bert;
    bert.model = ModelKind::BertBase;
    bert.weight = 1.0;
    spec.classes = {big, small, bert};
    for (ServeJobClass& c : spec.classes) {
        if (c.batchSize <= 0)
            c.batchSize = paperBatchSize(c.model);
        c.name = std::string(modelName(c.model)) + "-" +
                 std::to_string(c.batchSize);
    }
    return spec;
}

}  // namespace g10
