#include "probe_scheduler.h"

#include <cstring>
#include <deque>
#include <utility>

#include "serve/plan_cache.h"

namespace g10 {

std::uint64_t
rateBitsOf(double rate)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(rate), "double is 64-bit");
    std::memcpy(&bits, &rate, sizeof(bits));
    return bits;
}

// ---- ProbeCache ----------------------------------------------------

std::shared_ptr<const ProbeResult>
ProbeCache::find(const ProbeKey& key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    return it != slots_.end() ? it->second.result : nullptr;
}

std::uint64_t
ProbeCache::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto& kv : slots_)
        if (kv.second.result != nullptr)
            ++n;
    return n;
}

// ---- ArenaPool -----------------------------------------------------

std::unique_ptr<Arena>
ArenaPool::acquire()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!free_.empty()) {
            std::unique_ptr<Arena> a = std::move(free_.back());
            free_.pop_back();
            return a;
        }
    }
    return std::make_unique<Arena>();
}

void
ArenaPool::release(std::unique_ptr<Arena> arena)
{
    arena->reset();  // keep the high-water chunk warm
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(arena));
}

// ---- ProbeScheduler ------------------------------------------------

ProbeScheduler::ProbeScheduler(ExperimentEngine& engine,
                               ProbeCache& cache, std::uint64_t specFp,
                               ProbeFn fn, bool speculate, int maxDepth)
    : engine_(engine),
      cache_(cache),
      specFp_(specFp),
      fn_(std::move(fn)),
      speculate_(speculate && engine.workers() >= 2),
      maxDepth_(maxDepth),
      maxInFlight_(engine.workers() + 1)
{
}

ProbeScheduler::~ProbeScheduler()
{
    // Wasted speculation may still be running; it borrows fn_ and the
    // caller's captures, so drain it before those go away.
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(cache_.mu_);
            if (inFlight_ == 0)
                return;
        }
        if (engine_.tryRunOne())
            continue;
        std::unique_lock<std::mutex> lk(cache_.mu_);
        if (inFlight_ == 0)
            return;
        const std::uint64_t seen = cache_.version_;
        cache_.cv_.wait(lk, [&] {
            return inFlight_ == 0 || cache_.version_ != seen;
        });
    }
}

ProbeKey
ProbeScheduler::keyFor(std::uint32_t lane, double rate) const
{
    ProbeKey key;
    key.specFp = specFp_;
    key.lane = lane;
    key.rateBits = rateBitsOf(rate);
    return key;
}

void
ProbeScheduler::issueLocked(std::unique_lock<std::mutex>& lk,
                            const ProbeKey& key, std::uint32_t lane,
                            double rate, bool speculative)
{
    ProbeCache::Slot& slot = cache_.slots_[key];
    slot.speculative = speculative;
    ++inFlight_;
    ++stats_.issued;
    if (speculative)
        ++stats_.speculated;
    ++cache_.version_;

    // Submit while holding the cache lock (lock order is always
    // cache -> engine queue; the task body runs lock-free and only
    // then re-takes the cache lock, so there is no cycle).
    engine_.submit([this, key, lane, rate] {
        ProbeResult r = fn_(lane, rate);
        std::lock_guard<std::mutex> lock(cache_.mu_);
        cache_.slots_[key].result =
            std::make_shared<const ProbeResult>(std::move(r));
        --inFlight_;
        ++cache_.version_;
        cache_.cv_.notify_all();
    });
    (void)lk;
    cache_.cv_.notify_all();
}

void
ProbeScheduler::speculateLocked(std::unique_lock<std::mutex>& lk,
                                std::uint32_t lane,
                                const KneeCursor& cursor)
{
    if (!speculate_)
        return;

    // Breadth-first over the automaton's future: level 1 is the two
    // possible successors of the pending probe, level 2 their
    // children, … — nearer levels are likelier to be consumed, so
    // they get the in-flight slots first.
    std::deque<KneeCursor> frontier{cursor};
    for (int depth = 0; depth < maxDepth_ && !frontier.empty();
         ++depth) {
        std::deque<KneeCursor> next;
        for (const KneeCursor& c : frontier) {
            for (bool sustained : {true, false}) {
                if (inFlight_ >= maxInFlight_)
                    return;
                KneeCursor child = c;
                child.advance(sustained);
                if (child.done())
                    continue;
                const ProbeKey key = keyFor(lane, child.next());
                if (cache_.slots_.find(key) == cache_.slots_.end())
                    issueLocked(lk, key, lane, child.next(), true);
                next.push_back(child);
            }
        }
        frontier = std::move(next);
    }
}

std::shared_ptr<const ProbeResult>
ProbeScheduler::acquire(std::uint32_t lane, const KneeCursor& cursor)
{
    const ProbeKey key = keyFor(lane, cursor.next());
    {
        std::unique_lock<std::mutex> lk(cache_.mu_);
        ++stats_.decided;
        auto it = cache_.slots_.find(key);
        if (it == cache_.slots_.end()) {
            issueLocked(lk, key, lane, cursor.next(), false);
        } else {
            ProbeCache::Slot& slot = it->second;
            if (slot.speculative && !slot.consumed)
                ++stats_.speculationUsed;
            if (slot.result != nullptr)
                ++stats_.cacheHits;
        }
        cache_.slots_[key].consumed = true;
        speculateLocked(lk, lane, cursor);
    }

    // Wait for the probe, draining other queued probes meanwhile —
    // the "pitch-in" that lets N consumers and their speculation
    // share any pool size without deadlock: a consumer only sleeps
    // when the engine queue is empty, which means its awaited probe
    // is *running* on some thread and will complete and notify.
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(cache_.mu_);
            auto it = cache_.slots_.find(key);
            if (it->second.result != nullptr)
                return it->second.result;
        }
        if (engine_.tryRunOne())
            continue;
        std::unique_lock<std::mutex> lk(cache_.mu_);
        auto it = cache_.slots_.find(key);
        if (it->second.result != nullptr)
            return it->second.result;
        const std::uint64_t seen = cache_.version_;
        cache_.cv_.wait(lk, [&] {
            return it->second.result != nullptr ||
                   cache_.version_ != seen;
        });
        if (it->second.result != nullptr)
            return it->second.result;
        // A new probe was enqueued while we dozed — go pitch in.
    }
}

ProbeStats
ProbeScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(cache_.mu_);
    ProbeStats s = stats_;
    // Every speculative slot is consumed at most once, so the split
    // is exact once the searches are done.
    s.speculationWasted = s.speculated - s.speculationUsed;
    return s;
}

// ---- Spec fingerprint ----------------------------------------------

std::uint64_t
fingerprintServeSpec(const ServeSpec& spec)
{
    SpecHash h;
    h.mix(fingerprintSystemConfig(spec.sys));
    h.mix(spec.scaleDown);
    h.mix(spec.seed);
    h.mix(static_cast<std::uint64_t>(spec.slots));
    h.mix(static_cast<std::uint64_t>(spec.partitionPolicy));
    h.mixDouble(spec.resizeHysteresis);
    h.mix(static_cast<std::uint64_t>(spec.maxActive));
    h.mix(spec.queueCapacity);
    h.mix(static_cast<std::uint64_t>(spec.admit));
    h.mix(static_cast<std::uint64_t>(spec.starvationNs));
    h.mixDouble(spec.sloFactor);
    h.mix(static_cast<std::uint64_t>(spec.requests));
    h.mix(static_cast<std::uint64_t>(spec.arrival.kind));
    h.mixDouble(spec.arrival.burstOnSec);
    h.mixDouble(spec.arrival.burstOffSec);
    h.mixString(spec.arrival.tracePath);
    h.mix(spec.designs.size());
    for (const std::string& d : spec.designs)
        h.mixString(d);
    h.mix(spec.classes.size());
    for (const ServeJobClass& c : spec.classes) {
        h.mixString(c.name);
        h.mix(static_cast<std::uint64_t>(c.model));
        h.mix(static_cast<std::uint64_t>(c.batchSize));
        h.mix(static_cast<std::uint64_t>(c.iterations));
        h.mix(static_cast<std::uint64_t>(c.priority));
        h.mixDouble(c.weight);
    }
    return h.digest();
}

}  // namespace g10
