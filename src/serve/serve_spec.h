/**
 * @file
 * Serving-scenario description: the job classes a node serves, the
 * arrival process that offers them, the admission policy and partition
 * slot count, the SLO definition, and the two sweep axes (designs ×
 * arrival rates) — plus a strict `key = value` serve-file parser for
 * the g10serve CLI, following the mix-file format conventions.
 */

#ifndef G10_SERVE_SERVE_SPEC_H
#define G10_SERVE_SERVE_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/system_config.h"
#include "common/types.h"
#include "models/model_zoo.h"
#include "serve/admission.h"
#include "serve/arrival.h"

namespace g10 {

/**
 * One class of requests the node serves (a model fine-tuning /
 * training job shape users submit repeatedly).
 */
struct ServeJobClass
{
    /** Display name; defaults to "<model>-<batch>". */
    std::string name;

    ModelKind model = ModelKind::ResNet152;

    /** Paper-scale batch size; 0 = the model's Fig. 11 batch. */
    int batchSize = 0;

    /** Training iterations per request. */
    int iterations = 1;

    /** Admission priority (AdmitPolicy::Priority). */
    int priority = 1;

    /** Relative share of the arrival mix (probability weight). */
    double weight = 1.0;
};

/** Everything one serving experiment needs. */
struct ServeSpec
{
    /** Platform before scaling (Table 2 defaults). */
    SystemConfig sys;

    /** Divide batches and capacities by this factor (1 = paper scale). */
    unsigned scaleDown = 16;

    /** Base RNG seed (arrivals, class picks, per-job perturbations). */
    std::uint64_t seed = 42;

    /** Concurrent partition slots (jobs actively sharing the GPU). */
    int slots = 2;

    /** Admission queue bound; arrivals beyond it are rejected. */
    std::size_t queueCapacity = 8;

    AdmitPolicy admit = AdmitPolicy::Fifo;

    /** Priority starvation-guard window; <= 0 disables the guard. */
    TimeNs starvationNs = 500 * MSEC;

    /**
     * A request meets its SLO when its completion latency (finish -
     * arrival) is within sloFactor × its class's unloaded latency (the
     * same job alone on one partition slot).
     */
    double sloFactor = 3.0;

    /** Requests offered per cell (Poisson/Bursty). */
    int requests = 32;

    ArrivalSpec arrival;

    /**
     * Sweep axis: offered arrival rates in requests/second
     * (Poisson/Bursty). For trace arrivals each value is a time-scale
     * multiplier instead: rate 2 replays the trace twice as fast.
     */
    std::vector<double> rates;

    /** Sweep axis: memory-management designs, by registry name. */
    std::vector<std::string> designs;

    /** Job classes (Poisson/Bursty; trace files carry their own). */
    std::vector<ServeJobClass> classes;
};

/**
 * Parse a serve file. Unknown keys, malformed values, and inconsistent
 * scenarios are fatal (exit 1) with file/line diagnostics. Format:
 *
 *   # scenario-level keys
 *   scale       = 32          # 1/N platform scale
 *   seed        = 42
 *   slots       = 2           # concurrent partition slots
 *   queue       = 8           # admission queue bound
 *   admission   = fifo        # fifo | sjf | priority
 *   starvation_ms = 500       # priority starvation guard (0 = off)
 *   slo_factor  = 3           # SLO = factor x unloaded latency
 *   requests    = 32          # offered requests per cell
 *   arrival     = poisson     # poisson | bursty | trace
 *   burst_on_ms / burst_off_ms = <bursty windows>
 *   trace       = <file.arr>  # arrival = trace
 *   rates       = 5,10,20     # requests/s sweep (trace: multipliers)
 *   designs     = baseuvm,deepum,g10
 *   gpu_mem_gb / host_mem_gb / ssd_gbps / pcie_gbps = <platform knobs>
 *
 *   # one line per class: "class = <Model> key=value ..."
 *   class = ResNet152 batch=256 weight=2
 *   class = BERT iterations=2 priority=4
 */
ServeSpec parseServeFile(const std::string& path);

/**
 * The built-in demo scenario (g10serve --demo and the CI smoke run):
 * two ResNet batches + BERT under Poisson traffic, three designs at
 * three rates, at platform scale 1/@p scale.
 */
ServeSpec demoServeSpec(unsigned scale);

}  // namespace g10

#endif  // G10_SERVE_SERVE_SPEC_H
