/**
 * @file
 * Serving-scenario description: the job classes a node serves, the
 * arrival process that offers them, the admission policy and partition
 * slot count, the SLO definition, and the two sweep axes (designs ×
 * arrival rates) — plus a strict `key = value` serve-file parser for
 * the g10serve CLI, following the mix-file format conventions.
 */

#ifndef G10_SERVE_SERVE_SPEC_H
#define G10_SERVE_SERVE_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/system_config.h"
#include "common/types.h"
#include "models/model_zoo.h"
#include "serve/admission.h"
#include "serve/arrival.h"

namespace g10 {

/**
 * One class of requests the node serves (a model fine-tuning /
 * training job shape users submit repeatedly).
 */
struct ServeJobClass
{
    /** Display name; defaults to "<model>-<batch>". */
    std::string name;

    ModelKind model = ModelKind::ResNet152;

    /** Paper-scale batch size; 0 = the model's Fig. 11 batch. */
    int batchSize = 0;

    /** Training iterations per request. */
    int iterations = 1;

    /** Admission priority (AdmitPolicy::Priority). */
    int priority = 1;

    /** Relative share of the arrival mix (probability weight). */
    double weight = 1.0;
};

/**
 * How the serving node divides its memory among concurrent jobs.
 *
 *  - Static: `slots` fixed equal partitions, leased and reclaimed
 *    whole (the original behavior; compiled plans are maximally
 *    reusable because every lease has the same geometry).
 *  - Proportional: up to maxActive concurrent jobs share the whole
 *    machine equally — each admission shrinks the incumbents to
 *    1/(k+1) and each departure grows the survivors back (growth is
 *    hysteresis-gated). A lone job gets the entire machine.
 *  - OnDemand: arrivals take a static-slot-sized grant from the free
 *    pool while one exists, then split the largest live lease in
 *    half (never below half a slot); departures return capacity to
 *    the pool and hysteresis-gated grows top the smallest leases
 *    back up toward a full slot.
 */
enum class PartitionPolicy
{
    Static,
    Proportional,
    OnDemand,
};

/** CLI/file name of a partition policy ("static", "proportional",
 *  "ondemand"). */
const char* partitionPolicyName(PartitionPolicy policy);

/** Parse a partition policy name; false on unknown input. */
bool partitionPolicyFromName(const std::string& name,
                             PartitionPolicy* out);

/** Everything one serving experiment needs. */
struct ServeSpec
{
    /** Platform before scaling (Table 2 defaults). */
    SystemConfig sys;

    /** Divide batches and capacities by this factor (1 = paper scale). */
    unsigned scaleDown = 16;

    /** Base RNG seed (arrivals, class picks, per-job perturbations). */
    std::uint64_t seed = 42;

    /** Concurrent partition slots (jobs actively sharing the GPU).
     *  Elastic policies use this as the equal-split reference size. */
    int slots = 2;

    /** How capacity is divided among concurrent jobs. */
    PartitionPolicy partitionPolicy = PartitionPolicy::Static;

    /**
     * Minimum relative capacity change that triggers a *growth*
     * resize of a live job (elastic policies). Shrinks needed to
     * admit an arrival are always applied; growth below the
     * hysteresis is deferred so departures don't thrash leases.
     */
    double resizeHysteresis = 0.25;

    /**
     * Elastic concurrency cap: most jobs simultaneously holding a
     * lease. 0 = derive (slots for proportional, 2*slots for
     * ondemand; static always uses slots).
     */
    int maxActive = 0;

    /** The cap after derivation (what the engine actually uses). */
    int resolvedMaxActive() const
    {
        if (partitionPolicy == PartitionPolicy::Static)
            return slots;
        if (maxActive > 0)
            return maxActive;
        return partitionPolicy == PartitionPolicy::OnDemand ? 2 * slots
                                                            : slots;
    }

    /** Admission queue bound; arrivals beyond it are rejected. */
    std::size_t queueCapacity = 8;

    AdmitPolicy admit = AdmitPolicy::Fifo;

    /** Priority starvation-guard window; <= 0 disables the guard. */
    TimeNs starvationNs = 500 * MSEC;

    /**
     * A request meets its SLO when its completion latency (finish -
     * arrival) is within sloFactor × its class's unloaded latency (the
     * same job alone on one partition slot).
     */
    double sloFactor = 3.0;

    /** Requests offered per cell (Poisson/Bursty). */
    int requests = 32;

    ArrivalSpec arrival;

    /**
     * Sweep axis: offered arrival rates in requests/second
     * (Poisson/Bursty). For trace arrivals each value is a time-scale
     * multiplier instead: rate 2 replays the trace twice as fast.
     * Empty iff ratesAuto (capacity-knee bisection).
     */
    std::vector<double> rates;

    /**
     * `rates = auto`: instead of sweeping a hand-guessed rate axis,
     * bisect per design for the sustained-throughput knee — grow the
     * probe rate geometrically until the bounded queue overflows,
     * then bisect the bracket. sustainedRate becomes the knee.
     */
    bool ratesAuto = false;

    /** First probe rate of the auto search; 0 = 0.05 req/s. */
    double rateLo = 0.0;

    /** Optional auto-search ceiling; 0 = unbounded (probe-limited). */
    double rateHi = 0.0;

    /** Max probes (cells) per design in auto mode. */
    int rateProbes = 10;

    /**
     * Memoize G10-family plan compiles across the whole sweep — rate
     * probes, grid cells, and the unloaded-baseline compiles share
     * one cache (`sweep_cache = on|off`). Pure wall-clock: results
     * are bit-identical either way (the compiler is deterministic, so
     * a cache hit returns exactly the plan a recompile would build),
     * which is what makes the auto-knee bisection cheap — probe N+1
     * replays probe N's per-model compile chain from the cache.
     */
    bool sweepPlanCache = true;

    /**
     * Speculatively evaluate the auto search's possible next probes
     * on idle pool workers while the decided probe runs
     * (`speculate = on|off`). Pure wall-clock, like sweep_cache: the
     * decided bisection path only *reads* memoized probe results in
     * sequential order, so the knee, every cell, and the serialized
     * document are byte-identical either way (and at any worker
     * count). Inert on pools with fewer than two workers.
     */
    bool speculativeProbes = true;

    /** The auto search's actual first probe rate: rateLo, defaulted,
     *  and clamped under the rateHi ceiling when one is set. */
    double resolvedRateLo() const
    {
        double lo = rateLo > 0.0 ? rateLo : 0.05;
        if (rateHi > 0.0 && lo > rateHi)
            lo = rateHi;
        return lo;
    }

    /** Sweep axis: memory-management designs, by registry name. */
    std::vector<std::string> designs;

    /** Job classes (Poisson/Bursty; trace files carry their own). */
    std::vector<ServeJobClass> classes;
};

/**
 * Parse a serve file. Unknown keys, malformed values, and inconsistent
 * scenarios are fatal (exit 1) with file/line diagnostics. Format:
 *
 *   # scenario-level keys
 *   scale       = 32          # 1/N platform scale
 *   seed        = 42
 *   slots       = 2           # concurrent partition slots
 *   partition_policy = static # static | proportional | ondemand
 *   resize_hysteresis = 0.25  # min relative growth worth a resize
 *   max_active  = 4           # elastic concurrency cap (0 = derive)
 *   queue       = 8           # admission queue bound
 *   admission   = fifo        # fifo | sjf | priority
 *   starvation_ms = 500       # priority starvation guard (0 = off)
 *   slo_factor  = 3           # SLO = factor x unloaded latency
 *   requests    = 32          # offered requests per cell
 *   arrival     = poisson     # poisson | bursty | trace
 *   burst_on_ms / burst_off_ms = <bursty windows>
 *   trace       = <file.arr>  # arrival = trace
 *   rates       = 5,10,20     # requests/s sweep (trace: multipliers)
 *   rates       = auto        # or: bisect for the capacity knee
 *   rate_lo / rate_hi = <auto-search bracket (optional)>
 *   rate_probes = 10          # max probes per design (auto mode)
 *   sweep_cache = on          # on | off: cross-probe plan-compile
 *                             # cache (wall-clock only; results are
 *                             # bit-identical either way)
 *   speculate   = on          # on | off: speculative parallel knee
 *                             # probes (wall-clock only; the decided
 *                             # path is byte-identical either way)
 *   designs     = baseuvm,deepum,g10
 *   gpu_mem_gb / host_mem_gb / ssd_gbps / pcie_gbps = <platform knobs>
 *
 *   # one line per class: "class = <Model> key=value ..."
 *   class = ResNet152 batch=256 weight=2
 *   class = BERT iterations=2 priority=4
 */
ServeSpec parseServeFile(const std::string& path);

/**
 * The built-in demo scenario (g10serve --demo and the CI smoke run):
 * two ResNet batches + BERT under Poisson traffic, three designs at
 * three rates, at platform scale 1/@p scale.
 */
ServeSpec demoServeSpec(unsigned scale);

}  // namespace g10

#endif  // G10_SERVE_SERVE_SPEC_H
