/**
 * @file
 * Open-loop serving simulator: a G10-managed GPU+SSD node absorbing
 * sustained request traffic with dynamic job churn.
 *
 * Where MultiTenantSim runs a fixed mix to completion, ServeSim models
 * a *service*: requests arrive over time from a seeded open-loop
 * process, wait in a bounded admission queue when the node is full,
 * lease a memory partition + compile their migration plan on admission
 * (warm-starting from the previous plan of the same model when the
 * batch size or partition capacity differs), share the GPU / PCIe
 * fabric / SSD with the other active jobs at kernel granularity, and
 * on departure release their partition and trim their SSD log space
 * for the next arrival.
 *
 * Partitions are *elastic* (ServeSpec::partitionPolicy): instead of
 * leasing one of N fixed equal slots, the proportional policy keeps
 * every active job at an equal share of the whole machine (a lone job
 * gets all of it), and the ondemand policy splits live leases in half
 * under arrival pressure and merges capacity back with hysteresis on
 * departure. Capacity changes flow through
 * SimRuntime::resizeMemoryBudget() (evicting down to the new
 * watermark through the migration machinery) and trigger a warm
 * replan of the job's migration schedule at the new capacity.
 *
 * ServeSweep runs the cross product of designs × offered arrival rates
 * — each cell an independent deterministic simulation — and derives
 * SLO-centric metrics: queueing delay and completion-latency
 * percentiles (p50/p95/p99), per-request slowdown vs. the unloaded
 * latency, SLO-attainment fraction, the sustained-throughput capacity
 * (max offered rate with a bounded queue, i.e. zero rejections; with
 * `rates = auto` a per-design bisection finds this knee instead of
 * sweeping a hand-guessed axis), and consolidated SSD write
 * amplification under churn. Results are bit-identical for a given
 * (spec, seed) regardless of worker count.
 */

#ifndef G10_SERVE_SERVE_SIM_H
#define G10_SERVE_SERVE_SIM_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/experiment_engine.h"
#include "graph/trace.h"
#include "obs/counters.h"
#include "serve/serve_spec.h"
#include "sim/ssd/ssd_device.h"

namespace g10 {

class Arena;
class SweepPlanCache;
class TraceSink;

/** One offered request, after arrival generation / trace replay. */
struct ServeRequest
{
    TimeNs arrivalNs = 0;
    std::size_t classIndex = 0;
};

/**
 * Length of one compiled plan's ideal timeline (kernel durations +
 * launch overhead) times @p iterations — the service-time estimate the
 * SJF admission key and the fleet router's backlog accounting use.
 * Known before the job runs and identical for every design.
 */
TimeNs planServiceEstimateNs(const KernelTrace& trace,
                             const SystemConfig& sys, int iterations);

/**
 * The largest single-kernel working set of @p trace (page-rounded).
 * This is exactly what the runtime's OOM guard pins: a lease below it
 * is guaranteed to fail.
 */
Bytes maxKernelWorkingSet(const KernelTrace& trace, Bytes page);

/**
 * Per-class elastic capacity floor: the largest kernel working set
 * plus 12.5% headroom for in-flight transfers. ServeSweep computes
 * these once per sweep; the fleet router reuses them as the compiled
 * working-set footprint for plan-aware placement.
 */
Bytes serveClassGpuFloor(const KernelTrace& trace, Bytes page);

/** Fate of one request inside a cell. */
struct ServeJobOutcome
{
    std::size_t request = 0;    ///< index into the cell's request list
    std::size_t classIndex = 0;
    TimeNs arrivalNs = 0;
    TimeNs admitNs = -1;        ///< -1 when rejected
    TimeNs finishNs = -1;       ///< -1 when rejected
    bool rejected = false;      ///< admission queue was full
    bool failed = false;        ///< ran but failed (e.g. hard OOM)
    bool warmCompiled = false;  ///< plan compile used a warm start

    /** Queueing delay (admission - arrival); 0 when rejected. */
    TimeNs queueNs() const
    {
        return admitNs >= 0 ? admitNs - arrivalNs : 0;
    }

    /** Completion latency (finish - arrival); 0 unless completed. */
    TimeNs latencyNs() const
    {
        return finishNs >= 0 ? finishNs - arrivalNs : 0;
    }

    /** latency / unloaded class latency; 0 unless completed. */
    double slowdown = 0.0;

    /** Completed within sloFactor × the unloaded latency. */
    bool sloMet = false;
};

/** Aggregated SLO-centric metrics of one cell. */
struct ServeMetrics
{
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;  ///< admitted and did not fail
    std::uint64_t failed = 0;

    // Queueing delay over admitted requests.
    TimeNs queueP50Ns = 0, queueP95Ns = 0, queueP99Ns = 0;
    TimeNs queueMaxNs = 0;
    double queueMeanNs = 0.0;

    // Completion latency over completed requests.
    TimeNs latencyP50Ns = 0, latencyP95Ns = 0, latencyP99Ns = 0;
    double latencyMeanNs = 0.0;

    // Slowdown vs. unloaded latency, over completed requests.
    double slowdownMean = 0.0;
    double slowdownP95 = 0.0;

    /** Fraction of *offered* requests that met their SLO. */
    double sloAttainment = 0.0;

    /** Completed requests per second of makespan. */
    double throughputRps = 0.0;

    TimeNs makespanNs = 0;       ///< last finish - first arrival
    double gpuUtilization = 0.0;

    std::size_t maxQueueDepth = 0;
    std::uint64_t starvationPromotions = 0;
    std::uint64_t coldCompiles = 0;
    std::uint64_t warmCompiles = 0;

    // ---- Elastic-partition activity (all zero under Static) --------

    /** Lease capacity changes applied to live jobs. */
    std::uint64_t resizes = 0;
    std::uint64_t resizeShrinks = 0;
    std::uint64_t resizeGrows = 0;

    /** Admissions that split a live lease (OnDemand). */
    std::uint64_t splits = 0;

    /** GPU bytes shrinks drained out of live jobs. */
    Bytes resizeEvictedBytes = 0;

    /** Mid-run plan recompiles triggered by a capacity resize. */
    std::uint64_t replans = 0;

    /**
     * Warm starts that crossed a capacity change: mid-run replans
     * that reused prior picks, plus admission compiles seeded by a
     * schedule compiled at a different GPU capacity.
     */
    std::uint64_t resizeWarmHits = 0;

    /** Prior-schedule picks recommitted / invalidated across all
     *  warm-started compiles of the cell (scheduler replay stats). */
    std::uint64_t warmReplayedMigrations = 0;
    std::uint64_t warmDroppedMigrations = 0;
};

/** One (design, rate) cell of the sweep. */
struct ServeCellResult
{
    std::string design;      ///< registry key, e.g. "g10"
    std::string designName;  ///< display name, e.g. "G10"
    double rate = 0.0;       ///< offered rate (or trace multiplier)

    std::vector<ServeJobOutcome> jobs;
    ServeMetrics metrics;

    /** Wear of the cell's shared SSD (consolidated WAF under churn). */
    SsdStats ssd;

    /**
     * Open-loop stability: every offered request was admitted (the
     * bounded queue never overflowed) and none failed.
     */
    bool sustained() const
    {
        return metrics.rejected == 0 && metrics.failed == 0;
    }
};

/** Unloaded reference latency of one (class, design) pair. */
struct ServeClassBaseline
{
    TimeNs unloadedNs = 0;  ///< end-to-end on one idle partition slot
    bool failed = false;
};

/** Whole-sweep outcome (what g10serve reports). */
struct ServeSweepResult
{
    ServeSpec spec;

    /** Display names of the job classes, by class index. */
    std::vector<std::string> classNames;

    /** Unloaded latencies, design-major: [design][class]. */
    std::vector<std::vector<ServeClassBaseline>> baselines;

    /** Cells, design-major: designs[i] × rates[j] at i*rates+j. */
    std::vector<ServeCellResult> cells;

    /**
     * Per design: the highest tested rate every offered request was
     * served at (sustained() cell), 0 when even the lowest rate
     * overflowed the queue. In auto mode (spec.ratesAuto) this is the
     * bisected capacity knee.
     */
    std::vector<double> sustainedRate;

    /** Per design: probes spent by the auto knee search (empty when
     *  the spec carried an explicit rate axis). */
    std::vector<std::uint64_t> rateProbes;

    /**
     * Cross-probe plan-cache totals (all zero when the sweep-scoped
     * cache is off). Deterministic in auto-knee mode on a 1-worker
     * pool (probes run sequentially per design over disjoint key
     * spaces); grid-mode parallel cells — and speculative knee probes
     * on bigger pools — can race on a key, so these are
     * reporting-only and never golden-pinned. Cell results always are
     * deterministic.
     */
    std::uint64_t planCacheHits = 0;
    std::uint64_t planCacheMisses = 0;
    std::uint64_t planCacheEntries = 0;

    /**
     * Auto-knee probe-scheduler totals (all zero in grid mode):
     * probe executions issued, how many of those were speculative,
     * the speculative split into consumed vs mispredicted, and
     * acquires that found a finished result waiting. Reporting-only
     * (speculation depends on pool timing) and never serialized; the
     * decided path the cells record is byte-identical regardless.
     */
    std::uint64_t probesIssued = 0;
    std::uint64_t probesSpeculative = 0;
    std::uint64_t probeSpecUsed = 0;
    std::uint64_t probeSpecWasted = 0;
    std::uint64_t probeCacheHits = 0;

    /**
     * Sweep-wide observability counters (empty unless the sweep ran
     * with ServeObsRequest::collectCounters): per-cell registries
     * merged in grid order, so the totals are identical for every
     * worker count.
     */
    CounterRegistry counters;

    /** True when no cell had failed (crashed) jobs. Rejections are
     *  load shedding, not failures, and do not clear this. */
    bool allSucceeded() const;
};

/** Simulates one (design, rate) cell; see ServeSweep for the grid. */
class ServeSim
{
  public:
    /**
     * @param spec      scenario (slots, queue, SLO, platform)
     * @param design    registry key of the design under test
     * @param rate      offered rate / trace multiplier of this cell
     * @param traces    per-class traces (index-matched to classes)
     * @param classes   job classes (resolved, including trace-derived)
     * @param minGpu    per-class elastic capacity floors (largest
     *                  kernel working set + headroom; ServeSweep
     *                  computes them once per sweep)
     * @param requests  the offered request sequence for this rate
     * @param baselines per-class unloaded latencies for this design
     */
    ServeSim(const ServeSpec& spec, std::string design, double rate,
             const std::vector<KernelTrace>& traces,
             const std::vector<ServeJobClass>& classes,
             const std::vector<Bytes>& minGpu,
             std::vector<ServeRequest> requests,
             const std::vector<ServeClassBaseline>& baselines);

    ServeCellResult run();

    /**
     * Attach observability before run(): serving events + per-job
     * runtime events go to @p sink, aggregates to @p counters (either
     * may be null). Pure observation — the cell result is
     * bit-identical with or without observers.
     */
    void setObservers(TraceSink* sink, CounterRegistry* counters)
    {
        sink_ = sink;
        counters_ = counters;
    }

    /**
     * Route this cell's G10-family compiles through @p cache (may be
     * null = compile directly). The cache memoizes the pure compile
     * call only; the cell's own per-model warm-start chain and its
     * warm/cold metrics are unchanged, so results stay bit-identical —
     * cached or not (see SweepPlanCache).
     */
    void setPlanCache(SweepPlanCache* cache) { planCache_ = cache; }

    /**
     * Back this cell's per-job runtime scratch with @p arena (may be
     * null = the cell creates its own). The caller must not reset()
     * the arena until run() returns; sequential probes over one arena
     * reset() between cells to reuse the high-water allocation.
     */
    void setArena(Arena* arena) { arena_ = arena; }

  private:
    const ServeSpec& spec_;
    std::string design_;
    double rate_;
    const std::vector<KernelTrace>& traces_;
    const std::vector<ServeJobClass>& classes_;
    const std::vector<Bytes>& minGpu_;
    std::vector<ServeRequest> requests_;
    const std::vector<ServeClassBaseline>& baselines_;
    TraceSink* sink_ = nullptr;
    CounterRegistry* counters_ = nullptr;
    SweepPlanCache* planCache_ = nullptr;
    Arena* arena_ = nullptr;
};

/** Observability hookup for one sweep (all fields optional). */
struct ServeObsRequest
{
    /** Merge every cell's CounterRegistry into the result. */
    bool collectCounters = false;

    /**
     * Event sink for *one* representative cell (the grid's first
     * cell; in auto-rate mode the first probe of the first design) —
     * a sweep-wide event stream would interleave unrelated simulated
     * timelines.
     */
    TraceSink* sink = nullptr;

    bool any() const { return collectCounters || sink != nullptr; }
};

/** Runs the designs × rates grid of a ServeSpec. */
class ServeSweep
{
  public:
    explicit ServeSweep(const ServeSpec& spec);
    ~ServeSweep();  // defined where SweepPlanCache is complete

    /**
     * Run every cell through @p engine's pool. Cells are independent
     * deterministic simulations, so the result is bit-identical
     * regardless of the pool size; cells come back in grid order.
     */
    ServeSweepResult run(ExperimentEngine& engine);

    /** run() with observability (counters merged in grid order). */
    ServeSweepResult run(ExperimentEngine& engine,
                         const ServeObsRequest& obs);

    /**
     * Share an externally owned plan cache instead of this sweep's own
     * (pass null to disable caching outright, overriding the spec
     * toggle). Callers running several sweeps over the same spec
     * family (benchmarks timing static vs elastic, the fleet's nodes)
     * use this so later sweeps start warm.
     */
    void sharePlanCache(SweepPlanCache* cache);

  private:
    ServeSpec spec_;
    std::vector<ServeJobClass> classes_;   ///< resolved classes
    std::vector<KernelTrace> traces_;      ///< per-class, scaled
    std::vector<Bytes> minGpu_;            ///< per-class floors
    std::vector<TraceRequest> traceReqs_;  ///< ArrivalKind::Trace only
    std::vector<std::size_t> traceClass_;  ///< class of each trace req

    /** Sweep-scoped compile cache (spec.sweepPlanCache); null = off. */
    std::unique_ptr<SweepPlanCache> ownedPlanCache_;
    SweepPlanCache* planCache_ = nullptr;

    /** The offered request sequence at @p rate (req/s or trace
     *  multiplier); identical class sequence at every rate. */
    std::vector<ServeRequest> requestsAtRate(double rate) const;

    /** Per-design unloaded baselines (the SLO reference). */
    std::vector<std::vector<ServeClassBaseline>>
    computeBaselines(ExperimentEngine& engine) const;

    /**
     * `rates = auto`: per design, grow the probe rate geometrically
     * until the queue overflows, then bisect the bracket for the
     * sustained-throughput knee. Cells record every probe in probe
     * order; designs run concurrently across the pool.
     */
    void runAutoRates(ExperimentEngine& engine,
                      const ServeObsRequest& obs,
                      ServeSweepResult* out);
};

}  // namespace g10

#endif  // G10_SERVE_SERVE_SIM_H
