/**
 * @file
 * Structured result reporting: one place that turns RunResult /
 * MixResult / experiment grids into human tables, CSV, or
 * machine-readable JSON (the `--format` surface of g10sim/g10multi).
 *
 * JSON documents carry a `schema` tag (`g10.run_result.v1`,
 * `g10.mix_result.v1`, `g10.grid.v1`, `g10.serve_result.v1`,
 * `g10.fleet_result.v1`, `g10.metrics.v1`) so downstream tooling can
 * dispatch without sniffing fields.
 */

#ifndef G10_API_REPORT_H
#define G10_API_REPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "common/json_writer.h"
#include "engine/multi_tenant.h"
#include "fleet/fleet_sim.h"
#include "obs/analysis/critical_path.h"
#include "obs/analysis/diff_attribution.h"
#include "obs/analysis/flame.h"
#include "obs/analysis/forensics.h"
#include "obs/counters.h"
#include "serve/serve_sim.h"

namespace g10 {

/** Output encodings supported by the CLIs. */
enum class ReportFormat
{
    Table,  ///< aligned human-readable tables (default)
    Json,   ///< one machine-readable JSON document
    Csv,    ///< RFC-4180-ish CSV of the same tables
};

/** Display/CLI name of a format ("table", "json", "csv"). */
const char* reportFormatName(ReportFormat format);

/**
 * Parse a `--format` value (case-insensitive); fatal() listing the
 * valid names on unknown input.
 */
ReportFormat reportFormatFromName(const std::string& name);

// ---- JSON serialization ---------------------------------------------

/** Serialize @p stats as a nested object onto an open writer. */
void writeJson(JsonWriter& w, const ExecStats& stats);

/** Serialize @p result (config echo + stats) as a complete document. */
void writeRunResultJson(std::ostream& os, const RunResult& result);

/** Serialize a consolidated multi-tenant result. */
void writeMixResultJson(std::ostream& os, const MixResult& result);

/** Serialize an experiment grid (ExperimentEngine output). */
void writeGridJson(std::ostream& os,
                   const std::vector<RunResult>& results);

/** Serialize a serving sweep (`g10.serve_result.v1`). */
void writeServeResultJson(std::ostream& os,
                          const ServeSweepResult& result);

/** Serialize a fleet run (`g10.fleet_result.v1`). */
void writeFleetResultJson(std::ostream& os, const FleetResult& result);

/**
 * Serialize a CounterRegistry snapshot (`g10.metrics.v1`): every
 * monotonic counter by name, and per-distribution summary stats
 * (count/sum/mean/min/max and p50/p95/p99/p999). The `--metrics`
 * surface of the CLIs.
 */
void writeMetricsJson(std::ostream& os, const CounterRegistry& reg);

/**
 * Serialize one Distribution summary as a nested object onto an open
 * writer. An empty distribution emits `{"count": 0}` only, so the
 * absence of samples is distinguishable from a degenerate all-zero
 * distribution.
 */
void writeDistributionJson(JsonWriter& w, const Distribution& dist);

// ---- Trace-analysis documents (`g10.trace_analysis.v1`) -------------
//
// All four analyzers share one schema tag and carry an `analysis`
// discriminator ("critical_path", "diff", "flame", "forensics") so
// tooling can dispatch on the pair. Times are integer nanoseconds.

/** Serialize a critical-path report (`analysis: "critical_path"`). */
void writeCriticalPathJson(std::ostream& os,
                           const CriticalPathReport& report);

/** Serialize a differential attribution (`analysis: "diff"`). */
void writeDiffAttributionJson(std::ostream& os,
                              const DiffAttribution& diff);

/** Serialize a flame aggregation (`analysis: "flame"`). */
void writeFlameJson(std::ostream& os, const FlameAggregation& flame);

/** Serialize fleet forensics (`analysis: "forensics"`). */
void writeFleetForensicsJson(std::ostream& os,
                             const FleetForensics& forensics);

// ---- Format-dispatched printers -------------------------------------

/**
 * Print one run in @p format. Returns the suggested process exit code
 * (0 ok, 2 when the run failed) so the CLIs stay one-liners.
 */
int printRunResult(std::ostream& os, const RunResult& result,
                   ReportFormat format);

/** Print one consolidated mix in @p format (exit code as above). */
int printMixResult(std::ostream& os, const MixResult& result,
                   ReportFormat format);

/** Print one serving sweep in @p format (exit code as above). */
int printServeResult(std::ostream& os, const ServeSweepResult& result,
                     ReportFormat format);

/** Print one fleet run in @p format (exit code as above). */
int printFleetResult(std::ostream& os, const FleetResult& result,
                     ReportFormat format);

/**
 * Legacy table-only mix report (used by the consolidation bench and
 * multi-tenant examples); printMixResult with ReportFormat::Table.
 */
void printMixReport(std::ostream& os, const MixResult& result);

/**
 * Print the PolicyRegistry contents (name, aliases, description) —
 * the `--list-designs` surface.
 */
void printDesignList(std::ostream& os, ReportFormat format);

}  // namespace g10

#endif  // G10_API_REPORT_H
