/**
 * @file
 * Umbrella header for the G10 library.
 *
 * Pulls in the public API surface: platform configuration, the model
 * zoo, the compile-time pipeline (vitality analysis + migration
 * scheduling), the runtime simulator with all design points, the
 * one-call experiment facade, the multi-tenant / parallel experiment
 * engine, the open-loop serving simulator, and the fleet-scale
 * router over heterogeneous serving nodes.
 */

#ifndef G10_API_G10_H
#define G10_API_G10_H

#include "api/experiment.h"
#include "api/report.h"
#include "common/json_writer.h"
#include "common/stats.h"
#include "common/logging.h"
#include "common/system_config.h"
#include "common/table.h"
#include "common/types.h"
#include "core/g10_compiler.h"
#include "engine/experiment_engine.h"
#include "engine/multi_tenant.h"
#include "engine/workload_mix.h"
#include "fleet/fleet_sim.h"
#include "fleet/fleet_spec.h"
#include "fleet/router.h"
#include "core/sched/plan_builder.h"
#include "core/vitality/vitality.h"
#include "graph/trace.h"
#include "models/model_zoo.h"
#include "policies/baselines.h"
#include "policies/design_point.h"
#include "policies/g10_policy.h"
#include "policies/registry.h"
#include "serve/admission.h"
#include "serve/arrival.h"
#include "serve/serve_sim.h"
#include "serve/serve_spec.h"
#include "sim/runtime/sim_runtime.h"

#endif  // G10_API_G10_H
