#include "experiment.h"

#include "common/logging.h"

namespace g10 {

ExecStats
runExperimentOnTrace(const KernelTrace& trace,
                     const ExperimentConfig& config, Tracer* tracer)
{
    DesignInstance design = PolicyRegistry::instance().make(
        config.design, trace, config.sys);

    RunConfig rc;
    rc.sys = config.sys;
    rc.iterations = config.iterations;
    rc.uvmExtension = config.uvmExtension < 0
                          ? design.uvmExtension
                          : (config.uvmExtension != 0);
    rc.timingErrorPct = config.timingErrorPct;
    rc.seed = config.seed;
    rc.weightWatermark = config.weightWatermark;

    SimRuntime rt(trace, *design.policy, rc);
    if (tracer)
        rt.setTracer(tracer);
    return rt.run();
}

ExecStats
runExperiment(const ExperimentConfig& config)
{
    KernelTrace trace = buildModelScaled(config.model, config.batchSize,
                                         config.scaleDown);
    ExperimentConfig scaled = config;
    scaled.sys = config.sys.scaledDown(config.scaleDown);
    return runExperimentOnTrace(trace, scaled);
}

RunResult
runExperimentResult(const ExperimentConfig& config)
{
    RunResult out;
    out.config = config;
    out.designName =
        PolicyRegistry::instance().resolve(config.design).name;
    out.stats = runExperiment(config);
    return out;
}

RunResult
runExperimentResultOnTrace(const KernelTrace& trace,
                           const ExperimentConfig& config,
                           Tracer* tracer)
{
    RunResult out;
    out.config = config;
    out.designName =
        PolicyRegistry::instance().resolve(config.design).name;
    out.stats = runExperimentOnTrace(trace, config, tracer);
    return out;
}

ExperimentBuilder&
ExperimentBuilder::model(ModelKind m)
{
    cfg_.model = m;
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::model(const std::string& name)
{
    cfg_.model = modelKindFromName(name);
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::batch(int batch_size)
{
    if (batch_size < 1)
        fatal("Experiment: batch must be >= 1, got %d", batch_size);
    cfg_.batchSize = batch_size;
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::scaleDown(unsigned factor)
{
    if (factor < 1)
        fatal("Experiment: scaleDown must be >= 1");
    cfg_.scaleDown = factor;
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::design(const std::string& name)
{
    // Resolve eagerly so typos fail at build time, not at run().
    PolicyRegistry::instance().resolve(name);
    cfg_.design = name;
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::iterations(int n)
{
    if (n < 1)
        fatal("Experiment: iterations must be >= 1, got %d", n);
    cfg_.iterations = n;
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::timingError(double fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        fatal("Experiment: timingError must be in [0, 1], got %g",
              fraction);
    cfg_.timingErrorPct = fraction;
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::seed(std::uint64_t s)
{
    cfg_.seed = s;
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::system(const SystemConfig& sys)
{
    cfg_.sys = sys;
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::gpuMemGB(double gb)
{
    if (gb <= 0.0)
        fatal("Experiment: gpuMemGB must be > 0, got %g", gb);
    cfg_.sys.gpuMemBytes = static_cast<Bytes>(gb * 1e9);
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::hostMemGB(double gb)
{
    if (gb < 0.0)
        fatal("Experiment: hostMemGB must be >= 0, got %g", gb);
    cfg_.sys.hostMemBytes = static_cast<Bytes>(gb * 1e9);
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::ssdGBps(double read_gbps)
{
    if (read_gbps <= 0.0)
        fatal("Experiment: ssdGBps must be > 0, got %g", read_gbps);
    cfg_.sys.setSsdBandwidthGBps(read_gbps);
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::pcieGBps(double gbps)
{
    if (gbps <= 0.0)
        fatal("Experiment: pcieGBps must be > 0, got %g", gbps);
    cfg_.sys.pcieGBps = gbps;
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::weightWatermark(double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        fatal("Experiment: weightWatermark must be in (0, 1], got %g",
              fraction);
    cfg_.weightWatermark = fraction;
    return *this;
}

ExperimentBuilder&
ExperimentBuilder::uvmExtension(bool enabled)
{
    cfg_.uvmExtension = enabled ? 1 : 0;
    return *this;
}

RunResult
ExperimentBuilder::run() const
{
    return runExperimentResult(cfg_);
}

RunResult
ExperimentBuilder::runOnTrace(const KernelTrace& trace) const
{
    return runExperimentResultOnTrace(trace, cfg_);
}

}  // namespace g10
