#include "experiment.h"

#include "common/logging.h"

namespace g10 {

ExecStats
runExperimentOnTrace(const KernelTrace& trace,
                     const ExperimentConfig& config)
{
    DesignInstance design =
        makeDesign(config.design, trace, config.sys);

    RunConfig rc;
    rc.sys = config.sys;
    rc.iterations = config.iterations;
    rc.uvmExtension = design.uvmExtension;
    rc.timingErrorPct = config.timingErrorPct;
    rc.seed = config.seed;

    return simulate(trace, *design.policy, rc);
}

ExecStats
runExperiment(const ExperimentConfig& config)
{
    KernelTrace trace = buildModelScaled(config.model, config.batchSize,
                                         config.scaleDown);
    ExperimentConfig scaled = config;
    scaled.sys = config.sys.scaledDown(config.scaleDown);
    return runExperimentOnTrace(trace, scaled);
}

}  // namespace g10
