/**
 * @file
 * One-call experiment facade and fluent builder used by the examples,
 * tools, and every benchmark: build the model trace, instantiate a
 * design by registry name, simulate, return the statistics. This is
 * the public entry point a downstream user starts from:
 *
 *   g10::RunResult r = g10::Experiment()
 *                          .model("resnet152")
 *                          .batch(256)
 *                          .design("g10")
 *                          .scaleDown(8)
 *                          .run();
 *
 * Designs are looked up in the PolicyRegistry, so custom policies
 * registered by downstream code are reachable by name with no edits to
 * this library (see policies/registry.h).
 */

#ifndef G10_API_EXPERIMENT_H
#define G10_API_EXPERIMENT_H

#include <cstdint>
#include <string>

#include "common/system_config.h"
#include "models/model_zoo.h"
#include "policies/registry.h"
#include "sim/runtime/policy.h"
#include "sim/runtime/sim_runtime.h"

namespace g10 {

/** Full description of one simulated experiment. */
struct ExperimentConfig
{
    ModelKind model = ModelKind::ResNet152;

    /** Paper-scale batch size (before scale-down). */
    int batchSize = 256;

    /**
     * Divide batch and all platform capacities by this factor; ratios
     * (memory-over-capacity, compute-vs-transfer) are preserved while
     * simulation cost shrinks. 1 = paper scale.
     */
    unsigned scaleDown = 8;

    /** Platform before scaling (Table 2 defaults). */
    SystemConfig sys;

    /**
     * Design name resolved through the PolicyRegistry — any built-in
     * ("ideal", "baseuvm", "deepum", "flashneuron", "g10gds",
     * "g10host", "g10") or registered custom policy.
     */
    std::string design = "g10";

    int iterations = 2;
    double timingErrorPct = 0.0;
    std::uint64_t seed = 42;

    /** Fraction of GPU memory weights may fill at placement time. */
    double weightWatermark = 0.85;

    /**
     * Unified-page-table override: -1 = use the design's default
     * (G10 on, everything else off), 0 = force off, 1 = force on.
     */
    int uvmExtension = -1;
};

/**
 * One experiment's outcome plus the configuration that produced it —
 * the unit the report layer serializes to JSON/CSV.
 */
struct RunResult
{
    /** The configuration as passed in (pre-scaling echo). */
    ExperimentConfig config;

    /** Canonical display name of the resolved design, e.g. "G10". */
    std::string designName;

    ExecStats stats;

    bool ok() const { return !stats.failed; }
};

/** Run one experiment end to end. */
ExecStats runExperiment(const ExperimentConfig& config);

/**
 * Run one experiment against an already-built trace (lets callers
 * amortize trace construction across designs). The platform in
 * @p config.sys must already be scaled consistently with the trace.
 *
 * @param tracer optional observability hookup (see obs/tracer.h);
 *        nullptr runs untraced. A traced run returns bit-identical
 *        statistics — the tracer only observes.
 */
ExecStats runExperimentOnTrace(const KernelTrace& trace,
                               const ExperimentConfig& config,
                               Tracer* tracer = nullptr);

/** runExperiment() bundled with its config echo. */
RunResult runExperimentResult(const ExperimentConfig& config);

/** runExperimentOnTrace() bundled with its config echo. */
RunResult runExperimentResultOnTrace(const KernelTrace& trace,
                                     const ExperimentConfig& config,
                                     Tracer* tracer = nullptr);

/**
 * Fluent construction of an ExperimentConfig. Every RunConfig knob is
 * reachable; run() executes immediately and returns the structured
 * result. Obtain one via Experiment().
 */
class ExperimentBuilder
{
  public:
    ExperimentBuilder& model(ModelKind m);

    /** Model by name ("BERT", "ResNet152", ...); fatal on unknown. */
    ExperimentBuilder& model(const std::string& name);

    ExperimentBuilder& batch(int batch_size);
    ExperimentBuilder& scaleDown(unsigned factor);

    /** Design by registry name (built-in or custom). */
    ExperimentBuilder& design(const std::string& name);

    ExperimentBuilder& iterations(int n);
    ExperimentBuilder& timingError(double fraction);
    ExperimentBuilder& seed(std::uint64_t s);

    /** Replace the whole platform description. */
    ExperimentBuilder& system(const SystemConfig& sys);

    // Individual platform knobs (applied to the current system).
    ExperimentBuilder& gpuMemGB(double gb);
    ExperimentBuilder& hostMemGB(double gb);
    ExperimentBuilder& ssdGBps(double read_gbps);
    ExperimentBuilder& pcieGBps(double gbps);

    /** Weight-placement watermark (RunConfig::weightWatermark). */
    ExperimentBuilder& weightWatermark(double fraction);

    /** Force the unified-page-table extension on or off. */
    ExperimentBuilder& uvmExtension(bool enabled);

    /** The accumulated configuration. */
    const ExperimentConfig& config() const { return cfg_; }

    /** Build the trace, run, and return the structured result. */
    RunResult run() const;

    /**
     * Run against a pre-built trace; cfg_.sys must already be scaled
     * consistently with the trace.
     */
    RunResult runOnTrace(const KernelTrace& trace) const;

  private:
    ExperimentConfig cfg_;
};

/** Entry point of the fluent API. */
inline ExperimentBuilder
Experiment()
{
    return ExperimentBuilder();
}

}  // namespace g10

#endif  // G10_API_EXPERIMENT_H
