/**
 * @file
 * One-call experiment facade used by the examples and every benchmark:
 * build the model trace, instantiate a design point, simulate, return
 * the statistics. This is the public entry point a downstream user
 * starts from (see examples/quickstart.cpp).
 */

#ifndef G10_API_EXPERIMENT_H
#define G10_API_EXPERIMENT_H

#include <cstdint>

#include "common/system_config.h"
#include "models/model_zoo.h"
#include "policies/design_point.h"
#include "sim/runtime/policy.h"
#include "sim/runtime/sim_runtime.h"

namespace g10 {

/** Full description of one simulated experiment. */
struct ExperimentConfig
{
    ModelKind model = ModelKind::ResNet152;

    /** Paper-scale batch size (before scale-down). */
    int batchSize = 256;

    /**
     * Divide batch and all platform capacities by this factor; ratios
     * (memory-over-capacity, compute-vs-transfer) are preserved while
     * simulation cost shrinks. 1 = paper scale.
     */
    unsigned scaleDown = 8;

    /** Platform before scaling (Table 2 defaults). */
    SystemConfig sys;

    DesignPoint design = DesignPoint::G10;

    int iterations = 2;
    double timingErrorPct = 0.0;
    std::uint64_t seed = 42;
};

/** Run one experiment end to end. */
ExecStats runExperiment(const ExperimentConfig& config);

/**
 * Run one experiment against an already-built trace (lets callers
 * amortize trace construction across designs). The platform in
 * @p config.sys must already be scaled consistently with the trace.
 */
ExecStats runExperimentOnTrace(const KernelTrace& trace,
                               const ExperimentConfig& config);

}  // namespace g10

#endif  // G10_API_EXPERIMENT_H
