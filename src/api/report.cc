#include "report.h"

#include <cctype>

#include "common/logging.h"
#include "common/table.h"

namespace g10 {

const char*
reportFormatName(ReportFormat format)
{
    switch (format) {
      case ReportFormat::Table: return "table";
      case ReportFormat::Json: return "json";
      case ReportFormat::Csv: return "csv";
    }
    return "?";
}

ReportFormat
reportFormatFromName(const std::string& name)
{
    std::string s = name;
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == "table")
        return ReportFormat::Table;
    if (s == "json")
        return ReportFormat::Json;
    if (s == "csv")
        return ReportFormat::Csv;
    fatal("unknown format '%s' (valid: table, json, csv)",
          name.c_str());
}

namespace {

double
seconds(TimeNs ns)
{
    return static_cast<double>(ns) / 1e9;
}

void
writeTrafficJson(JsonWriter& w, const TrafficStats& t)
{
    w.beginObject();
    w.field("ssd_to_gpu_bytes", static_cast<std::uint64_t>(t.ssdToGpu));
    w.field("gpu_to_ssd_bytes", static_cast<std::uint64_t>(t.gpuToSsd));
    w.field("host_to_gpu_bytes",
            static_cast<std::uint64_t>(t.hostToGpu));
    w.field("gpu_to_host_bytes",
            static_cast<std::uint64_t>(t.gpuToHost));
    w.field("fault_batches", t.faultBatches);
    w.field("migration_ops", t.migrationOps);
    w.endObject();
}

void
writeSsdJson(JsonWriter& w, const SsdStats& s)
{
    w.beginObject();
    w.field("host_read_bytes",
            static_cast<std::uint64_t>(s.hostReadBytes));
    w.field("host_write_bytes",
            static_cast<std::uint64_t>(s.hostWriteBytes));
    w.field("nand_write_bytes",
            static_cast<std::uint64_t>(s.nandWriteBytes));
    w.field("waf", s.waf());
    w.field("gc_runs", s.gcRuns);
    w.field("block_erases", s.blockErases);
    w.field("relocated_pages", s.relocatedPages);
    w.endObject();
}

void
writeSystemJson(JsonWriter& w, const SystemConfig& sys)
{
    w.beginObject();
    w.field("gpu_mem_bytes", static_cast<std::uint64_t>(sys.gpuMemBytes));
    w.field("host_mem_bytes",
            static_cast<std::uint64_t>(sys.hostMemBytes));
    w.field("ssd_capacity_bytes",
            static_cast<std::uint64_t>(sys.ssdCapacityBytes));
    w.field("pcie_gbps", sys.pcieGBps);
    w.field("ssd_read_gbps", sys.ssdReadGBps);
    w.field("ssd_write_gbps", sys.ssdWriteGBps);
    w.endObject();
}

void
writeConfigJson(JsonWriter& w, const ExperimentConfig& cfg)
{
    w.beginObject();
    w.field("model", modelName(cfg.model));
    w.field("batch", static_cast<std::int64_t>(cfg.batchSize));
    w.field("scale_down", static_cast<std::uint64_t>(cfg.scaleDown));
    w.field("design", cfg.design);
    w.field("iterations", static_cast<std::int64_t>(cfg.iterations));
    w.field("timing_error", cfg.timingErrorPct);
    w.field("seed", static_cast<std::uint64_t>(cfg.seed));
    w.field("weight_watermark", cfg.weightWatermark);
    w.key("uvm_extension");
    if (cfg.uvmExtension < 0)
        w.value("auto");
    else
        w.value(cfg.uvmExtension != 0);
    w.key("system");
    writeSystemJson(w, cfg.sys);
    w.endObject();
}

/** The per-run key/value table shared by table and CSV output. */
Table
runResultTable(const RunResult& r)
{
    const ExecStats& st = r.stats;
    Table out("g10sim result");
    out.setHeader({"key", "value"});
    out.addRowOf("model", st.modelName.c_str());
    out.addRowOf("batch", st.batchSize);
    out.addRowOf("design", st.policyName.c_str());
    if (st.failed) {
        out.addRowOf("status", "FAILED");
        out.addRowOf("reason", st.failReason.c_str());
        return out;
    }
    out.addRowOf("status", "ok");
    out.addRowOf("iteration_s", seconds(st.measuredIterationNs));
    out.addRowOf("ideal_s", seconds(st.idealIterationNs));
    out.addRowOf("normalized_perf", st.normalizedPerf());
    out.addRowOf("throughput_sps", st.throughput());
    out.addRowOf("stall_s", seconds(st.totalStallNs));
    out.addRowOf("fault_batches",
                 static_cast<unsigned long long>(st.pageFaultBatches));
    out.addRowOf("gpu_ssd_GB",
                 static_cast<double>(st.traffic.gpuToSsd +
                                     st.traffic.ssdToGpu) / 1e9);
    out.addRowOf("gpu_host_GB",
                 static_cast<double>(st.traffic.gpuToHost +
                                     st.traffic.hostToGpu) / 1e9);
    out.addRowOf("ssd_waf", st.ssd.waf());
    return out;
}

Table
mixJobsTable(const MixResult& result)
{
    Table jobs("per-job results (shared GPU + host DRAM + SSD)");
    jobs.setHeader({"job", "design", "prio", "arrive_ms", "status",
                    "iter_s", "isolated_s", "slowdown", "turnaround",
                    "finish_s"});
    for (const JobResult& j : result.jobs) {
        if (j.shared.failed) {
            jobs.addRowOf(j.name.c_str(),
                          j.shared.policyName.c_str(), j.spec.priority,
                          static_cast<double>(j.spec.arrivalNs) / 1e6,
                          "FAILED", j.shared.failReason.c_str(), "-",
                          "-", "-", "-");
            continue;
        }
        jobs.addRowOf(
            j.name.c_str(), j.shared.policyName.c_str(),
            j.spec.priority,
            static_cast<double>(j.spec.arrivalNs) / 1e6, "ok",
            seconds(j.shared.measuredIterationNs),
            j.isolated.measuredIterationNs > 0
                ? Table::formatCell(
                      seconds(j.isolated.measuredIterationNs))
                : std::string("-"),
            j.slowdown > 0 ? Table::formatCell(j.slowdown)
                           : std::string("-"),
            j.turnaroundSlowdown > 0
                ? Table::formatCell(j.turnaroundSlowdown)
                : std::string("-"),
            seconds(j.finishNs));
    }
    return jobs;
}

Table
mixAggregateTable(const MixResult& result)
{
    Table agg("mix aggregate");
    agg.setHeader({"metric", "value"});
    agg.addRowOf("jobs", static_cast<int>(result.jobs.size()));
    agg.addRowOf("makespan_s", seconds(result.makespanNs));
    agg.addRowOf("gpu_utilization", result.gpuUtilization);
    agg.addRowOf("aggregate_throughput_sps",
                 result.aggregateThroughput);
    agg.addRowOf("fairness_jain", result.fairness);
    agg.addRowOf("ssd_host_write_GB",
                 static_cast<double>(result.ssd.hostWriteBytes) / 1e9);
    agg.addRowOf("ssd_nand_write_GB",
                 static_cast<double>(result.ssd.nandWriteBytes) / 1e9);
    agg.addRowOf("ssd_waf", result.ssd.waf());
    agg.addRowOf("ssd_gc_runs",
                 static_cast<unsigned long long>(result.ssd.gcRuns));
    return agg;
}

void
writeJobJson(JsonWriter& w, const JobResult& j)
{
    w.beginObject();
    w.field("name", j.name);
    w.field("model", modelName(j.spec.model));
    w.field("batch", static_cast<std::int64_t>(j.spec.batchSize));
    w.field("design", j.spec.design);
    w.field("priority", static_cast<std::int64_t>(j.spec.priority));
    w.field("arrival_ms",
            static_cast<double>(j.spec.arrivalNs) / 1e6);
    w.field("status", j.shared.failed ? "failed" : "ok");
    if (j.shared.failed)
        w.field("fail_reason", j.shared.failReason);
    w.field("iteration_time_s", seconds(j.shared.measuredIterationNs));
    w.key("isolated_iteration_s");
    if (j.isolated.measuredIterationNs > 0)
        w.value(seconds(j.isolated.measuredIterationNs));
    else
        w.null();
    w.key("slowdown");
    if (j.slowdown > 0)
        w.value(j.slowdown);
    else
        w.null();
    w.key("turnaround_slowdown");
    if (j.turnaroundSlowdown > 0)
        w.value(j.turnaroundSlowdown);
    else
        w.null();
    w.field("finish_s", seconds(j.finishNs));
    w.key("stats");
    writeJson(w, j.shared);
    w.endObject();
}

}  // namespace

void
writeJson(JsonWriter& w, const ExecStats& stats)
{
    w.beginObject();
    w.field("model", stats.modelName);
    w.field("batch", static_cast<std::int64_t>(stats.batchSize));
    w.field("design", stats.policyName);
    w.field("status", stats.failed ? "failed" : "ok");
    if (stats.failed)
        w.field("fail_reason", stats.failReason);
    w.field("iteration_time_s", seconds(stats.measuredIterationNs));
    w.field("ideal_iteration_s", seconds(stats.idealIterationNs));
    w.field("normalized_perf", stats.normalizedPerf());
    w.field("throughput_sps", stats.throughput());
    w.field("stall_s", seconds(stats.totalStallNs));
    w.field("fault_batches", stats.pageFaultBatches);
    w.field("kernels",
            static_cast<std::uint64_t>(stats.kernels.size()));
    w.key("traffic");
    writeTrafficJson(w, stats.traffic);
    w.key("ssd");
    writeSsdJson(w, stats.ssd);
    w.endObject();
}

void
writeRunResultJson(std::ostream& os, const RunResult& result)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.run_result.v1");
    w.field("design", result.designName);
    w.key("config");
    writeConfigJson(w, result.config);
    w.key("result");
    writeJson(w, result.stats);
    w.endObject();
    os << "\n";
}

void
writeMixResultJson(std::ostream& os, const MixResult& result)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.mix_result.v1");
    w.key("jobs");
    w.beginArray();
    for (const JobResult& j : result.jobs)
        writeJobJson(w, j);
    w.endArray();
    w.key("aggregate");
    w.beginObject();
    w.field("makespan_s", seconds(result.makespanNs));
    w.field("gpu_busy_s", seconds(result.gpuBusyNs));
    w.field("gpu_utilization", result.gpuUtilization);
    w.field("aggregate_throughput_sps", result.aggregateThroughput);
    w.field("fairness_jain", result.fairness);
    w.key("ssd");
    writeSsdJson(w, result.ssd);
    w.endObject();
    w.endObject();
    os << "\n";
}

void
writeGridJson(std::ostream& os, const std::vector<RunResult>& results)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.grid.v1");
    w.field("runs", static_cast<std::uint64_t>(results.size()));
    w.key("results");
    w.beginArray();
    for (const RunResult& r : results) {
        w.beginObject();
        w.field("design", r.designName);
        w.key("config");
        writeConfigJson(w, r.config);
        w.key("result");
        writeJson(w, r.stats);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

int
printRunResult(std::ostream& os, const RunResult& result,
               ReportFormat format)
{
    switch (format) {
      case ReportFormat::Json:
        writeRunResultJson(os, result);
        break;
      case ReportFormat::Csv:
        runResultTable(result).printCsv(os);
        break;
      case ReportFormat::Table:
        runResultTable(result).print(os);
        break;
    }
    return result.ok() ? 0 : 2;
}

int
printMixResult(std::ostream& os, const MixResult& result,
               ReportFormat format)
{
    switch (format) {
      case ReportFormat::Json:
        writeMixResultJson(os, result);
        break;
      case ReportFormat::Csv:
        mixJobsTable(result).printCsv(os);
        os << "\n";
        mixAggregateTable(result).printCsv(os);
        break;
      case ReportFormat::Table:
        mixJobsTable(result).print(os);
        os << "\n";
        mixAggregateTable(result).print(os);
        break;
    }
    return result.allSucceeded() ? 0 : 2;
}

void
printMixReport(std::ostream& os, const MixResult& result)
{
    printMixResult(os, result, ReportFormat::Table);
}

void
printDesignList(std::ostream& os, ReportFormat format)
{
    auto designs = PolicyRegistry::instance().registeredDesigns();

    if (format == ReportFormat::Json) {
        JsonWriter w(os);
        w.beginObject();
        w.field("schema", "g10.designs.v1");
        w.key("designs");
        w.beginArray();
        for (const PolicyInfo* d : designs) {
            w.beginObject();
            w.field("name", d->name);
            w.field("key", d->key);
            w.key("aliases");
            w.beginArray();
            for (const std::string& a : d->aliases)
                w.value(a);
            w.endArray();
            w.field("description", d->description);
            w.field("builtin", d->builtinTag >= 0);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
        return;
    }

    Table t("registered designs");
    t.setHeader({"name", "key", "aliases", "description"});
    for (const PolicyInfo* d : designs) {
        std::string aliases;
        for (const std::string& a : d->aliases) {
            if (!aliases.empty())
                aliases += " ";
            aliases += a;
        }
        if (aliases.empty())
            aliases = "-";
        t.addRowOf(d->name.c_str(), d->key.c_str(), aliases.c_str(),
                   d->description.c_str());
    }
    if (format == ReportFormat::Csv)
        t.printCsv(os);
    else
        t.print(os);
}

}  // namespace g10
