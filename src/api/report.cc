#include "report.h"

#include <cctype>

#include "common/logging.h"
#include "common/table.h"

namespace g10 {

const char*
reportFormatName(ReportFormat format)
{
    switch (format) {
      case ReportFormat::Table: return "table";
      case ReportFormat::Json: return "json";
      case ReportFormat::Csv: return "csv";
    }
    return "?";
}

ReportFormat
reportFormatFromName(const std::string& name)
{
    std::string s = name;
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == "table")
        return ReportFormat::Table;
    if (s == "json")
        return ReportFormat::Json;
    if (s == "csv")
        return ReportFormat::Csv;
    fatal("unknown format '%s' (valid: table, json, csv)",
          name.c_str());
}

namespace {

double
seconds(TimeNs ns)
{
    return static_cast<double>(ns) / 1e9;
}

void
writeTrafficJson(JsonWriter& w, const TrafficStats& t)
{
    w.beginObject();
    w.field("ssd_to_gpu_bytes", static_cast<std::uint64_t>(t.ssdToGpu));
    w.field("gpu_to_ssd_bytes", static_cast<std::uint64_t>(t.gpuToSsd));
    w.field("host_to_gpu_bytes",
            static_cast<std::uint64_t>(t.hostToGpu));
    w.field("gpu_to_host_bytes",
            static_cast<std::uint64_t>(t.gpuToHost));
    w.field("fault_batches", t.faultBatches);
    w.field("migration_ops", t.migrationOps);
    w.endObject();
}

void
writeSsdJson(JsonWriter& w, const SsdStats& s)
{
    w.beginObject();
    w.field("host_read_bytes",
            static_cast<std::uint64_t>(s.hostReadBytes));
    w.field("host_write_bytes",
            static_cast<std::uint64_t>(s.hostWriteBytes));
    w.field("nand_write_bytes",
            static_cast<std::uint64_t>(s.nandWriteBytes));
    w.field("waf", s.waf());
    w.field("gc_runs", s.gcRuns);
    w.field("block_erases", s.blockErases);
    w.field("relocated_pages", s.relocatedPages);
    w.endObject();
}

void
writeSystemJson(JsonWriter& w, const SystemConfig& sys)
{
    w.beginObject();
    w.field("gpu_mem_bytes", static_cast<std::uint64_t>(sys.gpuMemBytes));
    w.field("host_mem_bytes",
            static_cast<std::uint64_t>(sys.hostMemBytes));
    w.field("ssd_capacity_bytes",
            static_cast<std::uint64_t>(sys.ssdCapacityBytes));
    w.field("pcie_gbps", sys.pcieGBps);
    w.field("ssd_read_gbps", sys.ssdReadGBps);
    w.field("ssd_write_gbps", sys.ssdWriteGBps);
    w.endObject();
}

void
writeConfigJson(JsonWriter& w, const ExperimentConfig& cfg)
{
    w.beginObject();
    w.field("model", modelName(cfg.model));
    w.field("batch", static_cast<std::int64_t>(cfg.batchSize));
    w.field("scale_down", static_cast<std::uint64_t>(cfg.scaleDown));
    w.field("design", cfg.design);
    w.field("iterations", static_cast<std::int64_t>(cfg.iterations));
    w.field("timing_error", cfg.timingErrorPct);
    w.field("seed", static_cast<std::uint64_t>(cfg.seed));
    w.field("weight_watermark", cfg.weightWatermark);
    w.key("uvm_extension");
    if (cfg.uvmExtension < 0)
        w.value("auto");
    else
        w.value(cfg.uvmExtension != 0);
    w.key("system");
    writeSystemJson(w, cfg.sys);
    w.endObject();
}

/** The per-run key/value table shared by table and CSV output. */
Table
runResultTable(const RunResult& r)
{
    const ExecStats& st = r.stats;
    Table out("g10sim result");
    out.setHeader({"key", "value"});
    out.addRowOf("model", st.modelName.c_str());
    out.addRowOf("batch", st.batchSize);
    out.addRowOf("design", st.policyName.c_str());
    if (st.failed) {
        out.addRowOf("status", "FAILED");
        out.addRowOf("reason", st.failReason.c_str());
        return out;
    }
    out.addRowOf("status", "ok");
    out.addRowOf("iteration_s", seconds(st.measuredIterationNs));
    out.addRowOf("ideal_s", seconds(st.idealIterationNs));
    out.addRowOf("normalized_perf", st.normalizedPerf());
    out.addRowOf("throughput_sps", st.throughput());
    out.addRowOf("stall_s", seconds(st.totalStallNs));
    out.addRowOf("fault_batches",
                 static_cast<unsigned long long>(st.pageFaultBatches));
    out.addRowOf("gpu_ssd_GB",
                 static_cast<double>(st.traffic.gpuToSsd +
                                     st.traffic.ssdToGpu) / 1e9);
    out.addRowOf("gpu_host_GB",
                 static_cast<double>(st.traffic.gpuToHost +
                                     st.traffic.hostToGpu) / 1e9);
    out.addRowOf("ssd_waf", st.ssd.waf());
    return out;
}

Table
mixJobsTable(const MixResult& result)
{
    Table jobs("per-job results (shared GPU + host DRAM + SSD)");
    jobs.setHeader({"job", "design", "prio", "arrive_ms", "status",
                    "iter_s", "isolated_s", "slowdown", "turnaround",
                    "finish_s"});
    for (const JobResult& j : result.jobs) {
        if (j.shared.failed) {
            jobs.addRowOf(j.name.c_str(),
                          j.shared.policyName.c_str(), j.spec.priority,
                          static_cast<double>(j.spec.arrivalNs) / 1e6,
                          "FAILED", j.shared.failReason.c_str(), "-",
                          "-", "-", "-");
            continue;
        }
        jobs.addRowOf(
            j.name.c_str(), j.shared.policyName.c_str(),
            j.spec.priority,
            static_cast<double>(j.spec.arrivalNs) / 1e6, "ok",
            seconds(j.shared.measuredIterationNs),
            j.isolated.measuredIterationNs > 0
                ? Table::formatCell(
                      seconds(j.isolated.measuredIterationNs))
                : std::string("-"),
            j.slowdown > 0 ? Table::formatCell(j.slowdown)
                           : std::string("-"),
            j.turnaroundSlowdown > 0
                ? Table::formatCell(j.turnaroundSlowdown)
                : std::string("-"),
            seconds(j.finishNs));
    }
    return jobs;
}

Table
mixAggregateTable(const MixResult& result)
{
    Table agg("mix aggregate");
    agg.setHeader({"metric", "value"});
    agg.addRowOf("jobs", static_cast<int>(result.jobs.size()));
    agg.addRowOf("makespan_s", seconds(result.makespanNs));
    agg.addRowOf("gpu_utilization", result.gpuUtilization);
    agg.addRowOf("aggregate_throughput_sps",
                 result.aggregateThroughput);
    agg.addRowOf("fairness_jain", result.fairness);
    agg.addRowOf("ssd_host_write_GB",
                 static_cast<double>(result.ssd.hostWriteBytes) / 1e9);
    agg.addRowOf("ssd_nand_write_GB",
                 static_cast<double>(result.ssd.nandWriteBytes) / 1e9);
    agg.addRowOf("ssd_waf", result.ssd.waf());
    agg.addRowOf("ssd_gc_runs",
                 static_cast<unsigned long long>(result.ssd.gcRuns));
    return agg;
}

double
milliseconds(TimeNs ns)
{
    return static_cast<double>(ns) / 1e6;
}

void
writeServeSpecJson(JsonWriter& w, const ServeSweepResult& r)
{
    const ServeSpec& s = r.spec;
    w.beginObject();
    w.field("scale_down", static_cast<std::uint64_t>(s.scaleDown));
    w.field("seed", static_cast<std::uint64_t>(s.seed));
    w.field("slots", static_cast<std::int64_t>(s.slots));
    w.field("partition_policy",
            partitionPolicyName(s.partitionPolicy));
    if (s.partitionPolicy != PartitionPolicy::Static) {
        w.field("resize_hysteresis", s.resizeHysteresis);
        w.field("max_active",
                static_cast<std::int64_t>(s.resolvedMaxActive()));
    }
    w.field("queue_capacity",
            static_cast<std::uint64_t>(s.queueCapacity));
    w.field("admission", admitPolicyName(s.admit));
    w.field("starvation_ms", milliseconds(s.starvationNs));
    w.field("slo_factor", s.sloFactor);
    w.field("arrival", arrivalKindName(s.arrival.kind));
    if (s.arrival.kind == ArrivalKind::Bursty) {
        w.field("burst_on_ms", s.arrival.burstOnSec * 1e3);
        w.field("burst_off_ms", s.arrival.burstOffSec * 1e3);
    }
    if (s.arrival.kind == ArrivalKind::Trace)
        w.field("trace", s.arrival.tracePath);
    else
        w.field("requests", static_cast<std::int64_t>(s.requests));
    w.field("rate_search", s.ratesAuto ? "auto" : "list");
    if (s.ratesAuto) {
        w.field("rate_lo", s.resolvedRateLo());
        if (s.rateHi > 0.0)
            w.field("rate_hi", s.rateHi);
        w.field("rate_probes",
                static_cast<std::int64_t>(s.rateProbes));
    }
    w.key("rates");
    w.beginArray();
    for (double r2 : s.rates)
        w.value(r2);
    w.endArray();
    w.key("designs");
    w.beginArray();
    for (const std::string& d : s.designs)
        w.value(d);
    w.endArray();
    w.key("classes");
    w.beginArray();
    for (const std::string& c : r.classNames)
        w.value(c);
    w.endArray();
    w.key("system");
    writeSystemJson(w, s.sys);
    w.endObject();
}

void
writeServeCellJson(JsonWriter& w, const ServeCellResult& cell)
{
    const ServeMetrics& m = cell.metrics;
    w.beginObject();
    w.field("design", cell.design);
    w.field("design_name", cell.designName);
    w.field("rate_per_s", cell.rate);
    w.field("sustained", cell.sustained());
    w.field("offered", m.offered);
    w.field("admitted", m.admitted);
    w.field("rejected", m.rejected);
    w.field("completed", m.completed);
    w.field("failed", m.failed);
    w.key("queue_delay_ms");
    w.beginObject();
    w.field("p50", milliseconds(m.queueP50Ns));
    w.field("p95", milliseconds(m.queueP95Ns));
    w.field("p99", milliseconds(m.queueP99Ns));
    w.field("max", milliseconds(m.queueMaxNs));
    w.field("mean", m.queueMeanNs / 1e6);
    w.endObject();
    w.key("latency_ms");
    w.beginObject();
    w.field("p50", milliseconds(m.latencyP50Ns));
    w.field("p95", milliseconds(m.latencyP95Ns));
    w.field("p99", milliseconds(m.latencyP99Ns));
    w.field("mean", m.latencyMeanNs / 1e6);
    w.endObject();
    w.key("slowdown");
    w.beginObject();
    w.field("mean", m.slowdownMean);
    w.field("p95", m.slowdownP95);
    w.endObject();
    w.field("slo_attainment", m.sloAttainment);
    w.field("throughput_rps", m.throughputRps);
    w.field("makespan_s", seconds(m.makespanNs));
    w.field("gpu_utilization", m.gpuUtilization);
    w.field("max_queue_depth",
            static_cast<std::uint64_t>(m.maxQueueDepth));
    w.field("starvation_promotions", m.starvationPromotions);
    w.field("cold_compiles", m.coldCompiles);
    w.field("warm_compiles", m.warmCompiles);
    w.key("elastic");
    w.beginObject();
    w.field("resizes", m.resizes);
    w.field("shrinks", m.resizeShrinks);
    w.field("grows", m.resizeGrows);
    w.field("splits", m.splits);
    w.field("replans", m.replans);
    w.field("resize_warm_hits", m.resizeWarmHits);
    w.field("warm_replayed_migrations", m.warmReplayedMigrations);
    w.field("warm_dropped_migrations", m.warmDroppedMigrations);
    w.field("resize_evicted_gb",
            static_cast<double>(m.resizeEvictedBytes) / 1e9);
    w.endObject();
    w.key("ssd");
    writeSsdJson(w, cell.ssd);
    w.endObject();
}

void
writeJobJson(JsonWriter& w, const JobResult& j)
{
    w.beginObject();
    w.field("name", j.name);
    w.field("model", modelName(j.spec.model));
    w.field("batch", static_cast<std::int64_t>(j.spec.batchSize));
    w.field("design", j.spec.design);
    w.field("priority", static_cast<std::int64_t>(j.spec.priority));
    w.field("arrival_ms",
            static_cast<double>(j.spec.arrivalNs) / 1e6);
    w.field("status", j.shared.failed ? "failed" : "ok");
    if (j.shared.failed)
        w.field("fail_reason", j.shared.failReason);
    w.field("iteration_time_s", seconds(j.shared.measuredIterationNs));
    w.key("isolated_iteration_s");
    if (j.isolated.measuredIterationNs > 0)
        w.value(seconds(j.isolated.measuredIterationNs));
    else
        w.null();
    w.key("slowdown");
    if (j.slowdown > 0)
        w.value(j.slowdown);
    else
        w.null();
    w.key("turnaround_slowdown");
    if (j.turnaroundSlowdown > 0)
        w.value(j.turnaroundSlowdown);
    else
        w.null();
    w.field("finish_s", seconds(j.finishNs));
    w.key("stats");
    writeJson(w, j.shared);
    w.endObject();
}

}  // namespace

void
writeJson(JsonWriter& w, const ExecStats& stats)
{
    w.beginObject();
    w.field("model", stats.modelName);
    w.field("batch", static_cast<std::int64_t>(stats.batchSize));
    w.field("design", stats.policyName);
    w.field("status", stats.failed ? "failed" : "ok");
    if (stats.failed)
        w.field("fail_reason", stats.failReason);
    w.field("iteration_time_s", seconds(stats.measuredIterationNs));
    w.field("ideal_iteration_s", seconds(stats.idealIterationNs));
    w.field("normalized_perf", stats.normalizedPerf());
    w.field("throughput_sps", stats.throughput());
    w.field("stall_s", seconds(stats.totalStallNs));
    w.field("fault_batches", stats.pageFaultBatches);
    w.field("kernels",
            static_cast<std::uint64_t>(stats.kernels.size()));
    w.key("traffic");
    writeTrafficJson(w, stats.traffic);
    w.key("ssd");
    writeSsdJson(w, stats.ssd);
    w.endObject();
}

void
writeRunResultJson(std::ostream& os, const RunResult& result)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.run_result.v1");
    w.field("design", result.designName);
    w.key("config");
    writeConfigJson(w, result.config);
    w.key("result");
    writeJson(w, result.stats);
    w.endObject();
    os << "\n";
}

void
writeMixResultJson(std::ostream& os, const MixResult& result)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.mix_result.v1");
    w.key("jobs");
    w.beginArray();
    for (const JobResult& j : result.jobs)
        writeJobJson(w, j);
    w.endArray();
    w.key("aggregate");
    w.beginObject();
    w.field("makespan_s", seconds(result.makespanNs));
    w.field("gpu_busy_s", seconds(result.gpuBusyNs));
    w.field("gpu_utilization", result.gpuUtilization);
    w.field("aggregate_throughput_sps", result.aggregateThroughput);
    w.field("fairness_jain", result.fairness);
    w.key("ssd");
    writeSsdJson(w, result.ssd);
    w.endObject();
    w.endObject();
    os << "\n";
}

void
writeDistributionJson(JsonWriter& w, const Distribution& dist)
{
    w.beginObject();
    w.field("count", static_cast<std::uint64_t>(dist.count()));
    if (dist.count() > 0) {
        w.field("sum", dist.sum());
        w.field("mean", dist.mean());
        w.field("min", dist.min());
        w.field("max", dist.max());
        w.field("p50", dist.percentile(0.50));
        w.field("p95", dist.percentile(0.95));
        w.field("p99", dist.percentile(0.99));
        w.field("p999", dist.percentile(0.999));
    }
    w.endObject();
}

void
writeMetricsJson(std::ostream& os, const CounterRegistry& reg)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.metrics.v1");
    w.key("counters");
    w.beginObject();
    for (const auto& [name, value] : reg.counters())
        w.field(name, value);
    w.endObject();
    w.key("distributions");
    w.beginObject();
    for (const auto& [name, dist] : reg.distributions()) {
        w.key(name);
        writeDistributionJson(w, dist);
    }
    w.endObject();
    w.endObject();
    os << "\n";
}

namespace {

/** Dense stall-cause table as an object keyed by cause name. */
void
writeCauseNsJson(JsonWriter& w, const TimeNs (&cause)[kNumStallCauses])
{
    w.beginObject();
    for (int c = 0; c < kNumStallCauses; ++c)
        w.field(stallCauseName(static_cast<StallCause>(c)),
                static_cast<std::int64_t>(cause[c]));
    w.endObject();
}

void
writeForensicsSeriesJson(JsonWriter& w,
                         const std::vector<ForensicsPoint>& series)
{
    w.beginArray();
    for (const ForensicsPoint& p : series) {
        w.beginObject();
        w.field("ts_ns", static_cast<std::int64_t>(p.ts));
        w.field("value", p.value);
        w.endObject();
    }
    w.endArray();
}

}  // namespace

void
writeCriticalPathJson(std::ostream& os, const CriticalPathReport& report)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.trace_analysis.v1");
    w.field("analysis", "critical_path");
    w.field("pid", static_cast<std::int64_t>(report.pid));
    w.field("worst_iteration",
            static_cast<std::int64_t>(report.worstIteration()));
    w.key("iterations");
    w.beginArray();
    for (const IterationPath& it : report.iterations) {
        w.beginObject();
        w.field("index", static_cast<std::int64_t>(it.index));
        w.field("begin_ns", static_cast<std::int64_t>(it.beginNs));
        w.field("end_ns", static_cast<std::int64_t>(it.endNs));
        w.field("compute_ns",
                static_cast<std::int64_t>(it.computeNs));
        w.field("stall_ns", static_cast<std::int64_t>(it.stallNs()));
        w.field("kernels", static_cast<std::int64_t>(it.kernels));
        w.key("stall_by_cause_ns");
        writeCauseNsJson(w, it.causeNs);
        w.key("chain");
        w.beginObject();
        w.field("stall_ns",
                static_cast<std::int64_t>(it.chain.totalNs()));
        w.key("stall_by_cause_ns");
        writeCauseNsJson(w, it.chain.causeNs);
        w.key("steps");
        w.beginArray();
        for (const CriticalPathStep& s : it.chain.steps) {
            w.beginObject();
            w.field("k", static_cast<std::int64_t>(s.kernel));
            w.field("kernel", s.name);
            w.field("start_ns",
                    static_cast<std::int64_t>(s.startNs));
            w.field("dur_ns", static_cast<std::int64_t>(s.durNs));
            w.field("stall_ns",
                    static_cast<std::int64_t>(s.stallNs()));
            w.key("stall_by_cause_ns");
            writeCauseNsJson(w, s.causeNs);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
writeDiffAttributionJson(std::ostream& os, const DiffAttribution& diff)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.trace_analysis.v1");
    w.field("analysis", "diff");
    w.field("base", diff.baseLabel);
    w.field("test", diff.testLabel);
    w.field("base_measured_ns",
            static_cast<std::int64_t>(diff.baseMeasuredNs));
    w.field("test_measured_ns",
            static_cast<std::int64_t>(diff.testMeasuredNs));
    w.field("delta_ns", static_cast<std::int64_t>(diff.deltaNs()));
    w.field("ideal_delta_ns",
            static_cast<std::int64_t>(diff.idealDeltaNs));
    w.key("cause_delta_ns");
    writeCauseNsJson(w, diff.causeDeltaNs);
    w.field("noise_delta_ns",
            static_cast<std::int64_t>(diff.noiseDeltaNs));
    w.field("exact", diff.exact());
    w.key("kernels");
    w.beginArray();
    for (const DiffAttributionRow& r : diff.rows) {
        if (r.deltaNs() == 0 && r.idealDeltaNs == 0)
            continue;  // untouched kernels would dominate the doc
        w.beginObject();
        w.field("k", static_cast<std::int64_t>(r.kernel));
        w.field("kernel", r.name);
        w.field("base_ns",
                static_cast<std::int64_t>(r.baseActualNs));
        w.field("test_ns",
                static_cast<std::int64_t>(r.testActualNs));
        w.field("delta_ns", static_cast<std::int64_t>(r.deltaNs()));
        w.field("ideal_delta_ns",
                static_cast<std::int64_t>(r.idealDeltaNs));
        w.key("cause_delta_ns");
        writeCauseNsJson(w, r.causeDeltaNs);
        w.field("noise_delta_ns",
                static_cast<std::int64_t>(r.noiseDeltaNs));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
writeFlameJson(std::ostream& os, const FlameAggregation& flame)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.trace_analysis.v1");
    w.field("analysis", "flame");
    w.field("pid", static_cast<std::int64_t>(flame.pid));
    w.field("total_stall_ns", flame.totalStallNs);
    w.key("stacks");
    w.beginArray();
    for (const FlameStack& s : flame.stacks) {
        w.beginObject();
        w.field("frames", s.frames);
        w.field("stall_ns", s.stallNs);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
writeFleetForensicsJson(std::ostream& os,
                        const FleetForensics& forensics)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.trace_analysis.v1");
    w.field("analysis", "forensics");
    w.field("departures", forensics.departures);
    w.field("failures", forensics.failures);
    w.field("rejections", forensics.rejections);
    w.key("nodes");
    w.beginArray();
    for (const NodeSeries& n : forensics.nodes) {
        w.beginObject();
        w.field("node", static_cast<std::int64_t>(n.node));
        w.field("admitted", n.admitted);
        w.field("departed", n.departed);
        w.field("failed", n.failed);
        w.field("rejected", n.rejected);
        w.field("slo_missed", n.sloMissed);
        w.field("max_queue_depth", n.maxQueueDepth);
        w.field("max_inflight", n.maxOccupancy);
        w.key("queue_depth");
        writeForensicsSeriesJson(w, n.queueDepth);
        w.key("occupancy");
        writeForensicsSeriesJson(w, n.occupancy);
        w.endObject();
    }
    w.endArray();
    w.key("breaches");
    w.beginArray();
    for (const SloBreach& b : forensics.breaches) {
        w.beginObject();
        w.field("pid", static_cast<std::int64_t>(b.pid));
        w.field("node", static_cast<std::int64_t>(b.node));
        w.field("class", b.cls);
        w.field("arrival_ns",
                static_cast<std::int64_t>(b.arrivalNs));
        w.field("depart_ns", static_cast<std::int64_t>(b.departNs));
        w.field("latency_ns",
                static_cast<std::int64_t>(b.latencyNs()));
        w.field("slo_limit_ns",
                static_cast<std::int64_t>(b.sloLimitNs));
        w.field("overshoot_ns",
                static_cast<std::int64_t>(b.overshootNs()));
        w.field("queue_ns", static_cast<std::int64_t>(b.queueNs));
        w.field("stall_ns", static_cast<std::int64_t>(b.stallNs));
        w.field("resize_ns", static_cast<std::int64_t>(b.resizeNs));
        w.field("dominant", b.dominantWait());
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
writeServeResultJson(std::ostream& os, const ServeSweepResult& result)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.serve_result.v1");
    w.key("spec");
    writeServeSpecJson(w, result);
    w.key("baselines");
    w.beginArray();
    for (std::size_t d = 0; d < result.baselines.size(); ++d) {
        w.beginObject();
        w.field("design", result.spec.designs[d]);
        w.key("unloaded_latency_ms");
        w.beginObject();
        for (std::size_t c = 0; c < result.baselines[d].size(); ++c) {
            const ServeClassBaseline& b = result.baselines[d][c];
            w.key(result.classNames[c]);
            if (b.failed)
                w.null();
            else
                w.value(milliseconds(b.unloadedNs));
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.key("cells");
    w.beginArray();
    for (const ServeCellResult& cell : result.cells)
        writeServeCellJson(w, cell);
    w.endArray();
    w.key("capacity");
    w.beginArray();
    for (std::size_t d = 0; d < result.sustainedRate.size(); ++d) {
        w.beginObject();
        w.field("design", result.spec.designs[d]);
        w.field("sustained_rate_per_s", result.sustainedRate[d]);
        if (d < result.rateProbes.size())
            w.field("probes", result.rateProbes[d]);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
writeGridJson(std::ostream& os, const std::vector<RunResult>& results)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.grid.v1");
    w.field("runs", static_cast<std::uint64_t>(results.size()));
    w.key("results");
    w.beginArray();
    for (const RunResult& r : results) {
        w.beginObject();
        w.field("design", r.designName);
        w.key("config");
        writeConfigJson(w, r.config);
        w.key("result");
        writeJson(w, r.stats);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

int
printRunResult(std::ostream& os, const RunResult& result,
               ReportFormat format)
{
    switch (format) {
      case ReportFormat::Json:
        writeRunResultJson(os, result);
        break;
      case ReportFormat::Csv:
        runResultTable(result).printCsv(os);
        break;
      case ReportFormat::Table:
        runResultTable(result).print(os);
        break;
    }
    return result.ok() ? 0 : 2;
}

namespace {

Table
serveCellsTable(const ServeSweepResult& result)
{
    Table t("served load (designs x offered rates)");
    t.setHeader({"design", "rate", "ok", "offered", "rej", "fail",
                 "queue_p95_ms", "lat_p50_ms", "lat_p95_ms",
                 "lat_p99_ms", "slo", "tput_rps", "resz", "rwarm",
                 "waf"});
    for (const ServeCellResult& c : result.cells) {
        const ServeMetrics& m = c.metrics;
        t.addRowOf(c.designName.c_str(), c.rate,
                   c.sustained() ? "yes" : "NO",
                   static_cast<unsigned long long>(m.offered),
                   static_cast<unsigned long long>(m.rejected),
                   static_cast<unsigned long long>(m.failed),
                   milliseconds(m.queueP95Ns),
                   milliseconds(m.latencyP50Ns),
                   milliseconds(m.latencyP95Ns),
                   milliseconds(m.latencyP99Ns), m.sloAttainment,
                   m.throughputRps,
                   static_cast<unsigned long long>(m.resizes),
                   static_cast<unsigned long long>(m.resizeWarmHits),
                   c.ssd.waf());
    }
    return t;
}

Table
serveCapacityTable(const ServeSweepResult& result)
{
    const bool probed = !result.rateProbes.empty();
    Table t(probed
                ? "sustained-throughput capacity (bisected knee)"
                : "sustained-throughput capacity (max rate, bounded "
                  "queue)");
    if (probed)
        t.setHeader({"design", "sustained_rate_per_s", "probes"});
    else
        t.setHeader({"design", "sustained_rate_per_s"});
    for (std::size_t d = 0; d < result.sustainedRate.size(); ++d) {
        if (probed)
            t.addRowOf(result.spec.designs[d].c_str(),
                       result.sustainedRate[d],
                       static_cast<unsigned long long>(
                           result.rateProbes[d]));
        else
            t.addRowOf(result.spec.designs[d].c_str(),
                       result.sustainedRate[d]);
    }
    return t;
}

}  // namespace

int
printServeResult(std::ostream& os, const ServeSweepResult& result,
                 ReportFormat format)
{
    switch (format) {
      case ReportFormat::Json:
        writeServeResultJson(os, result);
        break;
      case ReportFormat::Csv:
        serveCellsTable(result).printCsv(os);
        os << "\n";
        serveCapacityTable(result).printCsv(os);
        break;
      case ReportFormat::Table:
        serveCellsTable(result).print(os);
        os << "\n";
        serveCapacityTable(result).print(os);
        break;
    }
    return result.allSucceeded() ? 0 : 2;
}

int
printMixResult(std::ostream& os, const MixResult& result,
               ReportFormat format)
{
    switch (format) {
      case ReportFormat::Json:
        writeMixResultJson(os, result);
        break;
      case ReportFormat::Csv:
        mixJobsTable(result).printCsv(os);
        os << "\n";
        mixAggregateTable(result).printCsv(os);
        break;
      case ReportFormat::Table:
        mixJobsTable(result).print(os);
        os << "\n";
        mixAggregateTable(result).print(os);
        break;
    }
    return result.allSucceeded() ? 0 : 2;
}

void
printMixReport(std::ostream& os, const MixResult& result)
{
    printMixResult(os, result, ReportFormat::Table);
}

// ---- Fleet reporting ------------------------------------------------

namespace {

void
writeFleetSpecJson(JsonWriter& w, const FleetResult& r)
{
    const FleetSpec& s = r.spec;
    w.beginObject();
    w.field("scale_down", static_cast<std::uint64_t>(s.scaleDown));
    w.field("seed", static_cast<std::uint64_t>(s.seed));
    w.field("slots", static_cast<std::int64_t>(s.slots));
    w.field("queue_capacity",
            static_cast<std::uint64_t>(s.queueCapacity));
    w.field("partition_policy",
            partitionPolicyName(s.partitionPolicy));
    w.field("admission", admitPolicyName(s.admit));
    w.field("starvation_ms", milliseconds(s.starvationNs));
    w.field("slo_factor", s.sloFactor);
    w.field("requests", static_cast<std::int64_t>(s.requests));
    w.field("arrival", arrivalKindName(s.arrival.kind));
    if (s.arrival.kind == ArrivalKind::Bursty) {
        w.field("burst_on_ms", s.arrival.burstOnSec * 1e3);
        w.field("burst_off_ms", s.arrival.burstOffSec * 1e3);
    }
    if (s.ratesAuto) {
        w.field("rate_search", "auto");
        w.field("rate_lo", s.resolvedRateLo());
        if (s.rateHi > 0.0)
            w.field("rate_hi", s.rateHi);
        w.field("rate_probes",
                static_cast<std::int64_t>(s.rateProbes));
    } else {
        w.field("rate_per_s", s.rate);
    }
    w.field("design", s.design);
    w.key("placements");
    w.beginArray();
    for (PlacementKind kind : s.placements)
        w.value(placementKindName(kind));
    w.endArray();
    w.key("classes");
    w.beginArray();
    for (const std::string& c : r.classNames)
        w.value(c);
    w.endArray();
    w.key("system");
    writeSystemJson(w, s.sys);
    w.key("nodes");
    w.beginArray();
    for (std::size_t n = 0; n < s.nodes.size(); ++n) {
        const FleetNodeSpec& node = s.nodes[n];
        w.beginObject();
        w.field("name", node.name);
        w.field("slots", static_cast<std::int64_t>(
                             node.slots > 0 ? node.slots : s.slots));
        w.field("queue_capacity",
                static_cast<std::uint64_t>(
                    node.queue >= 0
                        ? static_cast<std::size_t>(node.queue)
                        : s.queueCapacity));
        w.field("seed", fleetNodeSeed(s.seed, n));
        w.key("families");
        w.beginArray();
        for (ModelKind fam : node.families)
            w.value(modelName(fam));
        w.endArray();
        w.key("system");
        writeSystemJson(w, s.nodeSystem(n));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeFleetMetricsJson(JsonWriter& w, const FleetMetrics& m)
{
    w.beginObject();
    w.field("offered", m.offered);
    w.field("admitted", m.admitted);
    w.field("rejected", m.rejected);
    w.field("completed", m.completed);
    w.field("failed", m.failed);
    w.field("slo_attainment", m.sloAttainment);
    w.field("throughput_rps", m.throughputRps);
    w.field("capacity_per_node_rps", m.capacityPerNodeRps);
    w.field("makespan_s", seconds(m.makespanNs));
    w.key("utilization");
    w.beginObject();
    w.field("min", m.utilMin);
    w.field("max", m.utilMax);
    w.field("mean", m.utilMean);
    w.field("jain", m.utilJain);
    w.endObject();
    w.field("warm_compiles", m.warmCompiles);
    w.field("cold_compiles", m.coldCompiles);
    w.field("consolidated_waf", m.consolidatedWaf);
    w.key("ssd");
    writeSsdJson(w, m.ssd);
    w.endObject();
}

Table
fleetSummaryTable(const FleetResult& result)
{
    // Auto-knee runs lead with the bisected capacity; fixed-rate
    // runs keep the historical columns.
    const bool knee = !result.placements.empty() &&
                      result.placements.front().rateProbes > 0;
    Table t(knee ? "fleet capacity knees (placement policies, "
                   "bisected offered rate)"
                 : "fleet summary (placement policies over one "
                   "stream)");
    if (knee) {
        t.setHeader({"placement", "knee_rate_per_s", "probes",
                     "offered", "rej", "fail", "slo", "tput_rps",
                     "cap_per_node", "jain", "warm", "cold", "waf"});
        for (const FleetPlacementResult& p : result.placements) {
            const FleetMetrics& m = p.fleet;
            t.addRowOf(placementKindName(p.kind), p.kneeRatePerS,
                       static_cast<unsigned long long>(p.rateProbes),
                       static_cast<unsigned long long>(m.offered),
                       static_cast<unsigned long long>(m.rejected),
                       static_cast<unsigned long long>(m.failed),
                       m.sloAttainment, m.throughputRps,
                       m.capacityPerNodeRps, m.utilJain,
                       static_cast<unsigned long long>(m.warmCompiles),
                       static_cast<unsigned long long>(m.coldCompiles),
                       m.consolidatedWaf);
        }
        return t;
    }
    t.setHeader({"placement", "offered", "rej", "fail", "slo",
                 "tput_rps", "cap_per_node", "util_min", "util_max",
                 "jain", "warm", "cold", "waf"});
    for (const FleetPlacementResult& p : result.placements) {
        const FleetMetrics& m = p.fleet;
        t.addRowOf(placementKindName(p.kind),
                   static_cast<unsigned long long>(m.offered),
                   static_cast<unsigned long long>(m.rejected),
                   static_cast<unsigned long long>(m.failed),
                   m.sloAttainment, m.throughputRps,
                   m.capacityPerNodeRps, m.utilMin, m.utilMax,
                   m.utilJain,
                   static_cast<unsigned long long>(m.warmCompiles),
                   static_cast<unsigned long long>(m.coldCompiles),
                   m.consolidatedWaf);
    }
    return t;
}

Table
fleetNodesTable(const FleetResult& result)
{
    Table t("per-node cells (placement x node)");
    t.setHeader({"placement", "node", "offered", "rej", "fail", "slo",
                 "lat_p95_ms", "util", "warm", "cold", "waf"});
    for (const FleetPlacementResult& p : result.placements) {
        for (std::size_t n = 0; n < p.nodeCells.size(); ++n) {
            const ServeCellResult& c = p.nodeCells[n];
            const ServeMetrics& m = c.metrics;
            // The node's share of fleet time, matching the spread.
            const double util =
                p.fleet.makespanNs > 0
                    ? m.gpuUtilization *
                          static_cast<double>(m.makespanNs) /
                          static_cast<double>(p.fleet.makespanNs)
                    : 0.0;
            t.addRowOf(placementKindName(p.kind),
                       result.nodeNames[n].c_str(),
                       static_cast<unsigned long long>(m.offered),
                       static_cast<unsigned long long>(m.rejected),
                       static_cast<unsigned long long>(m.failed),
                       m.sloAttainment,
                       milliseconds(m.latencyP95Ns), util,
                       static_cast<unsigned long long>(m.warmCompiles),
                       static_cast<unsigned long long>(m.coldCompiles),
                       c.ssd.waf());
        }
    }
    return t;
}

}  // namespace

void
writeFleetResultJson(std::ostream& os, const FleetResult& result)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "g10.fleet_result.v1");
    w.key("spec");
    writeFleetSpecJson(w, result);
    w.key("baselines");
    w.beginArray();
    for (std::size_t n = 0; n < result.baselines.size(); ++n) {
        w.beginObject();
        w.field("node", result.nodeNames[n]);
        w.key("unloaded_latency_ms");
        w.beginObject();
        for (std::size_t c = 0; c < result.baselines[n].size(); ++c) {
            const ServeClassBaseline& b = result.baselines[n][c];
            w.key(result.classNames[c]);
            if (b.failed)
                w.null();
            else
                w.value(milliseconds(b.unloadedNs));
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.key("placements");
    w.beginArray();
    for (const FleetPlacementResult& p : result.placements) {
        w.beginObject();
        w.field("placement", placementKindName(p.kind));
        if (p.rateProbes > 0) {
            w.field("knee_rate_per_s", p.kneeRatePerS);
            w.field("probes", p.rateProbes);
        }
        w.key("fleet");
        writeFleetMetricsJson(w, p.fleet);
        w.key("nodes");
        w.beginArray();
        for (std::size_t n = 0; n < p.nodeCells.size(); ++n) {
            w.beginObject();
            w.field("node", result.nodeNames[n]);
            w.field("offered", p.nodeOffered[n]);
            w.key("cell");
            writeServeCellJson(w, p.nodeCells[n]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

int
printFleetResult(std::ostream& os, const FleetResult& result,
                 ReportFormat format)
{
    switch (format) {
      case ReportFormat::Json:
        writeFleetResultJson(os, result);
        break;
      case ReportFormat::Csv:
        fleetSummaryTable(result).printCsv(os);
        os << "\n";
        fleetNodesTable(result).printCsv(os);
        break;
      case ReportFormat::Table:
        fleetSummaryTable(result).print(os);
        os << "\n";
        fleetNodesTable(result).print(os);
        break;
    }
    return result.allSucceeded() ? 0 : 2;
}

void
printDesignList(std::ostream& os, ReportFormat format)
{
    auto designs = PolicyRegistry::instance().registeredDesigns();

    if (format == ReportFormat::Json) {
        JsonWriter w(os);
        w.beginObject();
        w.field("schema", "g10.designs.v1");
        w.key("designs");
        w.beginArray();
        for (const PolicyInfo* d : designs) {
            w.beginObject();
            w.field("name", d->name);
            w.field("key", d->key);
            w.key("aliases");
            w.beginArray();
            for (const std::string& a : d->aliases)
                w.value(a);
            w.endArray();
            w.field("description", d->description);
            w.field("builtin", d->builtinTag >= 0);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
        return;
    }

    Table t("registered designs");
    t.setHeader({"name", "key", "aliases", "description"});
    for (const PolicyInfo* d : designs) {
        std::string aliases;
        for (const std::string& a : d->aliases) {
            if (!aliases.empty())
                aliases += " ";
            aliases += a;
        }
        if (aliases.empty())
            aliases = "-";
        t.addRowOf(d->name.c_str(), d->key.c_str(), aliases.c_str(),
                   d->description.c_str());
    }
    if (format == ReportFormat::Csv)
        t.printCsv(os);
    else
        t.print(os);
}

}  // namespace g10
