/**
 * @file
 * Quickstart: train one model under several GPU-memory designs and
 * compare against the infinite-memory ideal, using the fluent
 * experiment API (`Experiment()...run()`).
 *
 * Usage: quickstart [model] [batch] [scale_down]
 *   model      BERT | ViT | Inceptionv3 | ResNet152 | SENet154
 *   batch      paper-scale batch size (default: the model's Fig. 11 one)
 *   scale_down divide batch + capacities by this (default 8; 1 = paper)
 */

#include <cstdlib>
#include <iostream>

#include "api/g10.h"

int
main(int argc, char** argv)
{
    using namespace g10;

    ModelKind model = ModelKind::ResNet152;
    if (argc > 1)
        model = modelKindFromName(argv[1]);
    int batch = (argc > 2) ? std::atoi(argv[2]) : 0;
    if (batch <= 0)
        batch = paperBatchSize(model);
    unsigned scale = (argc > 3)
        ? static_cast<unsigned>(std::atoi(argv[3])) : 8;

    // Describe the workload once; every design below replays the same
    // trace on the same scaled platform.
    KernelTrace trace = buildModelScaled(model, batch, scale);
    SystemConfig sys = SystemConfig().scaledDown(scale);
    VitalityAnalysis vit(trace, sys.kernelLaunchOverheadNs);

    std::cout << "Model " << trace.modelName() << "  batch "
              << trace.batchSize() << " (scale 1/" << scale << ")\n"
              << "  kernels:           " << trace.numKernels() << "\n"
              << "  tensors:           " << trace.numTensors() << "\n"
              << "  memory demand:     "
              << static_cast<double>(vit.peakMemoryBytes()) / 1e9
              << " GB peak  ("
              << 100.0 * static_cast<double>(vit.peakMemoryBytes()) /
                     static_cast<double>(sys.gpuMemBytes)
              << "% of GPU memory)\n"
              << "  ideal iteration:   "
              << static_cast<double>(trace.totalComputeNs()) / 1e9
              << " s\n\n";

    Table table("DNN training throughput vs. design (higher is better)");
    table.setHeader({"design", "iter_time_s", "samples_per_s",
                     "vs_ideal", "stall_frac", "faults"});

    for (const std::string& d :
         {"ideal", "baseuvm", "flashneuron", "deepum", "g10"}) {
        RunResult r = Experiment()
                          .model(model)
                          .batch(batch)
                          .system(sys)
                          .scaleDown(1)  // trace/sys already scaled
                          .design(d)
                          .runOnTrace(trace);
        const ExecStats& st = r.stats;
        if (st.failed) {
            table.addRowOf(r.designName.c_str(), "FAILED",
                           st.failReason.c_str(), "-", "-", "-");
            continue;
        }
        double iter_s =
            static_cast<double>(st.measuredIterationNs) / 1e9;
        double stall_frac =
            static_cast<double>(st.totalStallNs) /
            static_cast<double>(st.measuredIterationNs);
        table.addRowOf(r.designName.c_str(), iter_s, st.throughput(),
                       st.normalizedPerf(), stall_frac,
                       static_cast<unsigned long long>(
                           st.pageFaultBatches));
    }
    table.print(std::cout);
    return 0;
}
