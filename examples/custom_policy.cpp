/**
 * @file
 * Registering a custom memory-management policy — without editing the
 * G10 library.
 *
 * The policy below ("Host-Pref") is a deliberately simple design: it
 * prefetches the next kernel's tensors one step ahead and always
 * evicts to host DRAM, i.e. a UVM system with a minimal lookahead and
 * no SSD-aware planning. Registering it makes the name "hostpref"
 * usable everywhere a design name is accepted: the fluent builder
 * (used here), ExperimentConfig, mix files, and — when linked into a
 * binary — the g10sim/g10multi CLI machinery.
 *
 * Usage: custom_policy [scale_down]
 */

#include <cstdlib>
#include <iostream>
#include <memory>

#include "api/g10.h"

namespace {

using namespace g10;

/** One-kernel-lookahead prefetcher that stages evictions in host DRAM. */
class HostPrefPolicy : public Policy
{
  public:
    const char* name() const override { return "Host-Pref"; }

    void
    beforeKernel(SimRuntime& rt, KernelId k) override
    {
        // Prefetch the inputs of the next kernel while this one runs.
        std::size_t next = static_cast<std::size_t>(k) + 1;
        if (next >= rt.numKernels())
            return;
        for (TensorId t : rt.trace().kernel(
                 static_cast<KernelId>(next)).inputs)
            rt.issuePrefetch(t);
    }

    MemLoc
    capacityEvictDest(SimRuntime& rt, TensorId) override
    {
        // Host DRAM while it lasts, SSD once staging is full.
        return rt.hostFreeBytes() > 0 ? MemLoc::Host : MemLoc::Ssd;
    }
};

// Self-registration: after this, "hostpref" resolves like any
// built-in design name.
const RegisterPolicy kRegisterHostPref({
    "Host-Pref",
    "hostpref",
    {"host-pref"},
    "Example custom policy: 1-kernel lookahead prefetch, host-first "
    "eviction.",
    [](const KernelTrace&, const SystemConfig&) {
        DesignInstance d;
        d.policy = std::make_unique<HostPrefPolicy>();
        return d;
    }});

}  // namespace

int
main(int argc, char** argv)
{
    using namespace g10;

    unsigned scale = (argc > 1)
        ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
    if (scale < 1)
        scale = 1;

    std::cout << "Custom-policy demo (1/" << scale
              << " platform scale). Registered designs:\n\n";
    printDesignList(std::cout, ReportFormat::Table);
    std::cout << "\n";

    Table table("ResNet-152: custom policy vs. built-ins");
    table.setHeader({"design", "iter_time_s", "vs_ideal"});
    for (const std::string& d : {"baseuvm", "hostpref", "g10"}) {
        RunResult r = Experiment()
                          .model(ModelKind::ResNet152)
                          .batch(256)
                          .scaleDown(scale)
                          .design(d)
                          .run();
        if (!r.ok()) {
            table.addRowOf(r.designName.c_str(), "FAILED",
                           r.stats.failReason.c_str());
            continue;
        }
        table.addRowOf(
            r.designName.c_str(),
            static_cast<double>(r.stats.measuredIterationNs) / 1e9,
            r.stats.normalizedPerf());
    }
    table.print(std::cout);

    // The same run, machine-readable (what `g10sim --format json`
    // emits for a config file using design = hostpref):
    std::cout << "\nJSON result of the custom-policy run:\n";
    RunResult r = Experiment()
                      .model(ModelKind::ResNet152)
                      .batch(256)
                      .scaleDown(scale)
                      .design("hostpref")
                      .run();
    writeRunResultJson(std::cout, r);
    return 0;
}
