/**
 * @file
 * Multi-tenant quickstart: consolidate two training jobs onto one
 * simulated GPU + SSD and inspect what sharing costs each of them.
 *
 * Usage: multi_tenant_demo [scale_down]
 *   scale_down  divide batch + capacities by this (default 16)
 *
 * Equivalent CLI: `g10multi --demo [scale]`, or write a mix file (see
 * examples/demo.mix) and run `g10multi <mix-file>`.
 */

#include <cstdlib>
#include <iostream>

#include "api/g10.h"

int
main(int argc, char** argv)
{
    using namespace g10;

    unsigned scale = 16;
    if (argc > 1) {
        int v = std::atoi(argv[1]);
        if (v >= 1)
            scale = static_cast<unsigned>(v);
    }

    WorkloadMix mix;
    mix.scaleDown = scale;
    mix.sched = MixSched::RoundRobin;

    JobSpec resnet;
    resnet.model = ModelKind::ResNet152;
    resnet.name = "resnet152";

    JobSpec bert;
    bert.model = ModelKind::BertBase;
    bert.name = "bert";

    mix.jobs = {resnet, bert};

    std::cout << "Consolidating " << mix.jobs.size()
              << " jobs onto one GPU+SSD (scale 1/" << scale
              << ", " << mixSchedName(mix.sched) << ")...\n\n";

    MultiTenantSim sim(mix);
    MixResult res = sim.run();
    printMixReport(std::cout, res);

    std::cout << "\nReading the numbers: 'slowdown' compares each "
                 "job's steady-state iteration against running alone "
                 "on the whole machine; 'turnaround' additionally "
                 "counts time spent waiting for GPU share. The SSD "
                 "rows show the consolidated device's write "
                 "amplification -- tenant churn compounds on one "
                 "flash log.\n";
    return res.allSucceeded() ? 0 : 1;
}
