/**
 * @file
 * Scenario: "how large a batch can I train?" -- the question the
 * paper's intro motivates for CNN training. Sweeps ResNet-152 batch
 * sizes across designs and reports throughput plus the largest batch
 * each design can run at >=80% of its small-batch efficiency.
 *
 * Usage: resnet_batch_sweep [scale_down]
 */

#include <cstdlib>
#include <iostream>
#include <map>

#include "api/g10.h"

int
main(int argc, char** argv)
{
    using namespace g10;

    unsigned scale = (argc > 1)
        ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
    if (scale < 1)
        scale = 1;

    const ModelKind model = ModelKind::ResNet152;
    const std::vector<int> batches = {128, 256, 512, 768, 1024, 1280,
                                      1536};
    const std::vector<std::string> designs = {
        "ideal", "baseuvm", "flashneuron", "deepum", "g10"};

    std::cout << "ResNet-152 batch-size scaling study (1/" << scale
              << " platform scale)\n\n";

    Table table("throughput (images/sec, paper-equivalent)");
    std::vector<std::string> header = {"batch"};
    for (const std::string& d : designs)
        header.push_back(designDisplayName(d));
    table.setHeader(header);

    std::map<std::string, double> best_small;
    std::map<std::string, int> biggest_ok;
    for (int b : batches) {
        KernelTrace trace = buildModelScaled(model, b, scale);
        std::vector<std::string> row = {std::to_string(b)};
        for (const std::string& d : designs) {
            ExecStats st = Experiment()
                               .system(SystemConfig().scaledDown(scale))
                               .scaleDown(1)
                               .design(d)
                               .runOnTrace(trace)
                               .stats;
            if (st.failed) {
                row.push_back("fail");
                continue;
            }
            double tput = st.throughput() * static_cast<double>(scale);
            row.push_back(Table::formatCell(tput));
            if (best_small[d] == 0.0)
                best_small[d] = tput;
            if (tput >= 0.8 * best_small[d])
                biggest_ok[d] = b;
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nlargest batch within 80% of peak throughput:\n";
    for (const std::string& d : designs)
        std::cout << "  " << designDisplayName(d) << ": "
                  << (biggest_ok.count(d) ? biggest_ok[d] : 0) << "\n";
    return 0;
}
