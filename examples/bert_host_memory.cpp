/**
 * @file
 * Scenario: sizing the host DRAM of a training box. Transformer
 * fine-tuning (BERT) is migration-bandwidth-hungry; this example shows
 * how much host staging memory G10 actually needs before the SSD alone
 * carries the rest, and compares against DeepUM+ which leans on host
 * memory much harder (paper §7.4, Figs. 16-17).
 *
 * Usage: bert_host_memory [batch] [scale_down]
 */

#include <cstdlib>
#include <iostream>

#include "api/g10.h"

int
main(int argc, char** argv)
{
    using namespace g10;

    int batch = (argc > 1) ? std::atoi(argv[1]) : 256;
    unsigned scale = (argc > 2)
        ? static_cast<unsigned>(std::atoi(argv[2])) : 16;
    if (batch < 1)
        batch = 256;
    if (scale < 1)
        scale = 1;

    KernelTrace trace =
        buildModelScaled(ModelKind::BertBase, batch, scale);
    std::cout << "BERT host-memory sizing study: batch " << batch
              << " (1/" << scale << " scale), footprint "
              << static_cast<double>(trace.totalTensorBytes()) / 1e9
              << " GB\n\n";

    Table table("iteration time (s, paper-equivalent) vs host DRAM");
    table.setHeader({"host_GB", "G10", "G10_traffic_host_frac",
                     "DeepUM+", "FlashNeuron"});
    for (unsigned h : {0u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        SystemConfig sys = SystemConfig().scaledDown(scale);
        sys.hostMemBytes = static_cast<Bytes>(h) * GiB / scale;

        ExperimentConfig cfg;
        cfg.sys = sys;
        cfg.scaleDown = 1;

        cfg.design = "g10";
        ExecStats g10 = runExperimentOnTrace(trace, cfg);
        double host_frac = 0.0;
        Bytes tot = g10.traffic.totalToGpu() + g10.traffic.totalFromGpu();
        if (tot > 0)
            host_frac = static_cast<double>(g10.traffic.hostToGpu +
                                            g10.traffic.gpuToHost) /
                        static_cast<double>(tot);

        cfg.design = "deepum";
        ExecStats deepum = runExperimentOnTrace(trace, cfg);
        cfg.design = "flashneuron";
        ExecStats fn = runExperimentOnTrace(trace, cfg);

        auto secs = [&](const ExecStats& st) {
            return st.failed
                ? std::string("fail")
                : Table::formatCell(
                      static_cast<double>(st.measuredIterationNs) /
                      1e9 * static_cast<double>(scale));
        };
        table.addRowOf(std::to_string(h), secs(g10),
                       Table::formatCell(host_frac), secs(deepum),
                       secs(fn));
    }
    table.print(std::cout);
    std::cout << "\nReading: G10 exploits a small host staging area "
                 "for the bandwidth-hungry tensors and leaves the "
                 "rest on the SSD;\nFlashNeuron ignores host memory "
                 "entirely, DeepUM+ needs much more of it.\n";
    return 0;
}
