/**
 * @file
 * Developer tool: inspect what the G10 compile pipeline did to a model
 * -- the tensor vitality summary, the migration schedule, and an
 * excerpt of the instrumented GPU program in the style of the paper's
 * Fig. 9.
 *
 * Usage: schedule_inspector [model] [batch] [scale_down] [from] [to]
 */

#include <cstdlib>
#include <iostream>

#include "api/g10.h"

int
main(int argc, char** argv)
{
    using namespace g10;

    ModelKind model = (argc > 1) ? modelKindFromName(argv[1])
                                 : ModelKind::Inceptionv3;
    int batch = (argc > 2) ? std::atoi(argv[2]) : 0;
    if (batch <= 0)
        batch = paperBatchSize(model);
    unsigned scale = (argc > 3)
        ? static_cast<unsigned>(std::atoi(argv[3])) : 16;
    KernelId from = (argc > 4)
        ? static_cast<KernelId>(std::atoi(argv[4])) : 0;
    KernelId to = (argc > 5)
        ? static_cast<KernelId>(std::atoi(argv[5])) : from + 12;

    KernelTrace trace = buildModelScaled(model, batch, scale);
    SystemConfig sys = SystemConfig().scaledDown(scale);
    CompiledPlan plan = compileG10Plan(trace, sys);
    const VitalityAnalysis& vit = *plan.vitality;

    std::cout << "=== " << trace.modelName() << " b="
              << trace.batchSize() << " (1/" << scale << " scale) ===\n"
              << "kernels:            " << trace.numKernels() << "\n"
              << "tensors:            " << trace.numTensors() << "\n"
              << "inactive periods:   " << vit.periods().size() << "\n"
              << "peak live memory:   "
              << static_cast<double>(vit.peakMemoryBytes()) / 1e9
              << " GB (capacity "
              << static_cast<double>(sys.gpuMemBytes) / 1e9 << " GB)\n"
              << "planned migrations: "
              << plan.schedule.migrations.size() << "  ("
              << static_cast<double>(plan.schedule.bytesToSsd) / 1e9
              << " GB -> SSD, "
              << static_cast<double>(plan.schedule.bytesToHost) / 1e9
              << " GB -> host)\n"
              << "planned peak:       "
              << static_cast<double>(plan.schedule.finalPeakBytes) / 1e9
              << " GB\n"
              << "eager prefetches:   " << plan.prefetchStats.rescheduled
              << " moved earlier (total slack "
              << static_cast<double>(
                     plan.prefetchStats.totalSlackGainedNs) / 1e9
              << " s)\n\n";

    std::cout << "--- instrumented program (kernels " << from << ".."
              << to << "), cf. paper Fig. 9 ---\n";
    printInstrumentedProgram(std::cout, vit, plan.plan, from, to);

    // The five largest planned migrations.
    auto migs = plan.schedule.migrations;
    std::sort(migs.begin(), migs.end(),
              [](const ScheduledMigration& a,
                 const ScheduledMigration& b) {
                  return a.bytes > b.bytes;
              });
    std::cout << "\n--- largest planned migrations ---\n";
    for (std::size_t i = 0; i < migs.size() && i < 5; ++i) {
        const auto& m = migs[i];
        std::cout << "  " << trace.tensor(m.tensor).name << ": "
                  << static_cast<double>(m.bytes) / 1e6 << " MB -> "
                  << memLocName(m.dest) << ", away "
                  << static_cast<double>(m.prefetchStart -
                                         m.evictStart) / 1e6
                  << " ms\n";
    }
    return 0;
}
