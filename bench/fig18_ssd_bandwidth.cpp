/**
 * @file
 * Figure 18: normalized performance as aggregate SSD bandwidth scales
 * (stacking SSDs), with a PCIe 4.0 x16 (32 GB/s) interconnect.
 *
 * Expected shape: G10 leads at every bandwidth; CNNs reach 90-100% of
 * ideal with 1-4 SSDs; BERT/ViT saturate below ideal because the
 * interconnect, not the SSD, becomes the bottleneck.
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(32);
    banner("Figure 18: normalized perf vs. SSD bandwidth (PCIe 4.0)",
           scale);

    const std::vector<double> ssd_gbps = {6.4, 12.8, 19.2, 25.6, 32.0};

    SystemConfig pcie4;
    pcie4.pcieGBps = 32.0;

    TraceCache cache;
    for (ModelKind m : allModels()) {
        const KernelTrace& trace =
            cache.get(m, paperBatchSize(m), scale);
        Table table(std::string("Fig 18 (") + modelName(m) +
                    "): normalized perf vs. SSD bandwidth");
        table.setHeader({"ssd_GBps", "Base UVM", "FlashNeuron",
                         "DeepUM+", "G10"});
        for (double bw : ssd_gbps) {
            SystemConfig s = pcie4;
            s.setSsdBandwidthGBps(bw);
            std::vector<std::string> row = {Table::formatCell(bw)};
            for (const std::string& d : sweepDesignNames()) {
                ExecStats st = runDesign(trace, d, s, scale);
                row.push_back(st.failed ? "fail"
                                        : Table::formatCell(
                                              st.normalizedPerf()));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
