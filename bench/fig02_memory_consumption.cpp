/**
 * @file
 * Figure 2: memory consumption of all vs. active tensors per kernel
 * (relative to the peak consumption in one training iteration).
 *
 * The paper's observation O1: active tensors are <10% (≈1% on average)
 * of the total requirement, so most memory can be swapped out.
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(16);
    banner("Figure 2: memory consumption of all vs. active tensors",
           scale);

    for (const auto& wl : characterizationWorkloads()) {
        KernelTrace trace = buildModelScaled(wl.model, wl.batch, scale);
        VitalityAnalysis vit(trace, SystemConfig().kernelLaunchOverheadNs);
        auto active = vit.activeBytesPerKernel();
        auto live = vit.liveBytesPerKernel();
        Bytes peak = 0;
        for (Bytes b : live)
            peak = std::max(peak, b);

        Table table(std::string("Fig 2 (") + wl.label +
                    "): % of peak memory, sampled over kernel index");
        table.setHeader({"kernel_idx", "all_tensors_pct",
                         "active_tensors_pct"});
        std::size_t step = std::max<std::size_t>(1, live.size() / 24);
        for (std::size_t k = 0; k < live.size(); k += step) {
            table.addRowOf(
                static_cast<long>(k),
                100.0 * static_cast<double>(live[k]) /
                    static_cast<double>(peak),
                100.0 * static_cast<double>(active[k]) /
                    static_cast<double>(peak));
        }
        table.print(std::cout);

        double avg_active = 0.0;
        double max_active = 0.0;
        for (std::size_t k = 0; k < active.size(); ++k) {
            double frac = static_cast<double>(active[k]) /
                          static_cast<double>(peak);
            avg_active += frac;
            max_active = std::max(max_active, frac);
        }
        avg_active /= static_cast<double>(active.size());
        std::printf("summary: kernels=%zu avg_active=%.2f%% "
                    "max_active=%.2f%% (paper: ~1%% avg, <10%% typ)\n\n",
                    active.size(), 100.0 * avg_active,
                    100.0 * max_active);
    }
    return 0;
}
