/**
 * @file
 * Figure 19: G10's robustness to kernel-timing profiling errors.
 *
 * The plan is always built from the unperturbed profile; the replay
 * perturbs every kernel duration by a uniform +-X%. Expected shape:
 * performance normalized to the error-free run stays within a fraction
 * of a percent even at +-20% (the eager prefetching pass absorbs the
 * drift).
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(16);
    banner("Figure 19: G10 under kernel-timing profiling error", scale);

    const std::vector<double> errors = {0.0, 0.05, 0.10, 0.15, 0.20,
                                        0.25};

    SystemConfig sys;
    TraceCache cache;

    Table table("Fig 19: G10 perf normalized to the error-free run");
    std::vector<std::string> header = {"model"};
    for (double e : errors)
        header.push_back("±" + std::to_string(static_cast<int>(
                                   e * 100 + 0.5)) + "%");
    table.setHeader(header);

    for (ModelKind m : allModels()) {
        const KernelTrace& trace =
            cache.get(m, paperBatchSize(m), scale);
        double base_perf = 0.0;
        std::vector<std::string> row = {modelName(m)};
        for (double e : errors) {
            ExecStats st = runDesign(trace, "g10", sys, scale, e);
            // Normalize against the *noisy* compute floor so the metric
            // isolates scheduling damage, like the paper's figure.
            double perf = st.normalizedPerf();
            if (e == 0.0) {
                base_perf = perf;
                row.push_back("1.000");
            } else {
                row.push_back(
                    Table::formatCell(perf / base_perf));
            }
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::printf("\n(paper: degradation under 0.5%% even at ±20%%)\n");
    return 0;
}
