/**
 * @file
 * Figure 3: distribution (CDF) of tensor inactive-period lengths.
 *
 * Observation O2: many periods are far longer than the SSD latency
 * (20 us), leaving room to swap tensors out and back "for free".
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(16);
    banner("Figure 3: distribution of inactive period lengths", scale);

    for (const auto& wl : characterizationWorkloads()) {
        KernelTrace trace = buildModelScaled(wl.model, wl.batch, scale);
        VitalityAnalysis vit(trace,
                             SystemConfig().kernelLaunchOverheadNs);

        Distribution lengths_us;
        for (const auto& p : vit.periods())
            lengths_us.add(static_cast<double>(p.lengthNs()) / 1000.0);

        Table table(std::string("Fig 3 (") + wl.label +
                    "): inactive period length CDF");
        table.setHeader({"percentile", "length_us"});
        for (double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99})
            table.addRowOf(p, lengths_us.percentile(p));
        table.print(std::cout);

        double over_ssd_lat = lengths_us.fractionAbove(20.0);
        double over_100ms = lengths_us.fractionAbove(1e5);
        std::printf("summary: periods=%zu  >SSD-latency(20us)=%.1f%%  "
                    ">100ms=%.1f%% (paper: 50-60%%+ of periods are "
                    "very long)\n\n",
                    lengths_us.count(), 100.0 * over_ssd_lat,
                    100.0 * over_100ms);
    }
    return 0;
}
