/**
 * @file
 * Ablation study of G10's scheduler design choices (the knobs DESIGN.md
 * calls out):
 *   - eager prefetching (§4.4) on/off,
 *   - host-memory destination (Algorithm 1's fallback) on/off,
 *   - prefetch safety margin,
 *   - DeepUM+ lookahead depth (for context).
 * Run on the two most contrasting workloads: a CNN (ResNet152) and the
 * bandwidth-hungry transformer (BERT).
 */

#include "bench/bench_util.h"
#include "policies/baselines.h"
#include "policies/g10_policy.h"

namespace {

using namespace g10;

double
runVariant(const KernelTrace& trace, const SystemConfig& sys,
           G10CompilerOptions opt, bool eager, bool uvm_ext = true)
{
    CompiledPlan plan;
    plan.vitality = std::make_unique<VitalityAnalysis>(
        trace, sys.kernelLaunchOverheadNs);
    EvictionScheduler evictor(*plan.vitality, sys, opt.eviction);
    plan.schedule = evictor.run();
    if (eager)
        plan.prefetchStats = schedulePrefetches(
            plan.schedule, evictor.bandwidth(), sys, opt.prefetch);
    plan.plan = buildMigrationPlan(*plan.vitality, plan.schedule);

    G10Policy policy("G10-variant", std::move(plan));
    RunConfig rc;
    rc.sys = sys;
    rc.uvmExtension = uvm_ext;
    return simulate(trace, policy, rc).normalizedPerf();
}

}  // namespace

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(16);
    banner("Ablation: G10 scheduler design choices", scale);

    SystemConfig sys;
    TraceCache cache;

    Table table("scheduler ablations (normalized perf)");
    table.setHeader({"model", "G10_full", "no_eager_prefetch",
                     "ssd_only", "no_safety_margin", "deepum_w2",
                     "deepum_w32"});
    for (ModelKind m : {ModelKind::ResNet152, ModelKind::BertBase,
                        ModelKind::SENet154}) {
        const KernelTrace& trace =
            cache.get(m, paperBatchSize(m), scale);
        SystemConfig s = sys.scaledDown(scale);

        G10CompilerOptions base;
        double full = runVariant(trace, s, base, /*eager=*/true);

        double lazy = runVariant(trace, s, base, /*eager=*/false);

        G10CompilerOptions gds = base;
        gds.eviction.allowHost = false;
        double ssd_only = runVariant(trace, s, gds, true);

        G10CompilerOptions tight = base;
        tight.eviction.prefetchSafetyNs = 0;
        double no_margin = runVariant(trace, s, tight, true);

        auto deepum_at = [&](int w) {
            DeepUmPolicy pol(w);
            RunConfig rc;
            rc.sys = s;
            return simulate(trace, pol, rc).normalizedPerf();
        };

        table.addRowOf(modelName(m), full, lazy, ssd_only, no_margin,
                       deepum_at(2), deepum_at(32));
    }
    table.print(std::cout);
    std::printf("\nReading: eager prefetching and the host path are "
                "the load-bearing choices; the safety margin buys "
                "robustness (Fig. 19) at ~zero cost.\n");
    return 0;
}
