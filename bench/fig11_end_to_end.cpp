/**
 * @file
 * Figure 11: end-to-end DNN training throughput of every design,
 * normalized to the infinite-memory ideal, at the paper's batch sizes.
 *
 * Expected shape: Base UVM worst; FlashNeuron/DeepUM+ in between
 * (FlashNeuron failing on the workspace-heavy large-batch models, per
 * the paper's footnote 1); G10-GDS < G10-Host < G10; G10 near-ideal on
 * CNNs and bandwidth-bound on ViT.
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(16);
    banner("Figure 11: normalized training throughput (vs. Ideal)",
           scale);

    SystemConfig sys;
    TraceCache cache;

    Table table("Fig 11: throughput normalized to Ideal");
    std::vector<std::string> header = {"model", "B", "M_pct"};
    for (const std::string& d : allDesignNames())
        header.push_back(designDisplayName(d));
    table.setHeader(header);

    std::map<std::string, std::vector<double>> per_design;
    for (ModelKind m : allModels()) {
        int batch = paperBatchSize(m);
        const KernelTrace& trace = cache.get(m, batch, scale);

        std::vector<std::string> row = {
            modelName(m), std::to_string(trace.batchSize()),
            Table::formatCell(memoryPercent(trace, sys, scale))};
        for (const std::string& d : allDesignNames()) {
            ExecStats st = runDesign(trace, d, sys, scale);
            if (st.failed) {
                row.push_back("fail");
            } else {
                row.push_back(Table::formatCell(st.normalizedPerf()));
                per_design[d].push_back(st.normalizedPerf());
            }
        }
        table.addRow(row);
    }
    table.print(std::cout);

    // Paper headline numbers for comparison.
    auto mean = [](const std::vector<double>& v) {
        double s = 0.0;
        for (double x : v)
            s += x;
        return v.empty() ? 0.0 : s / static_cast<double>(v.size());
    };
    std::printf(
        "\nsummary: mean normalized perf -- G10 %.3f (paper 0.903), "
        "DeepUM+ %.3f, FlashNeuron %.3f, Base UVM %.3f\n",
        mean(per_design["g10"]), mean(per_design["deepum"]),
        mean(per_design["flashneuron"]), mean(per_design["baseuvm"]));
    double g10 = mean(per_design["g10"]);
    double fn = mean(per_design["flashneuron"]);
    double du = mean(per_design["deepum"]);
    if (fn > 0 && du > 0)
        std::printf("summary: G10 speedup vs FlashNeuron %.2fx "
                    "(paper 1.56x avg), vs DeepUM+ %.2fx (paper "
                    "1.31x avg)\n",
                    g10 / fn, g10 / du);
    return 0;
}
