/**
 * @file
 * Figure 4: joint distribution of tensor size vs. inactive-period
 * length, plus the paper's headline: 60-80% of inactive periods are
 * long enough to hide their own swap round trip (O3).
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(16);
    banner("Figure 4: tensor size vs. inactive period length", scale);

    SystemConfig sys;
    for (const auto& wl : characterizationWorkloads()) {
        KernelTrace trace = buildModelScaled(wl.model, wl.batch, scale);
        VitalityAnalysis vit(trace, sys.kernelLaunchOverheadNs);
        BandwidthModel bw(sys.scaledDown(scale));

        // 2D histogram: size decade x inactive-time decade.
        constexpr int kSizeBins = 6;   // 10KB .. 10GB
        constexpr int kTimeBins = 7;   // 10us .. 100s
        std::vector<std::vector<int>> grid(
            kSizeBins, std::vector<int>(kTimeBins, 0));
        std::size_t hideable = 0;
        for (const auto& p : vit.periods()) {
            Bytes size = trace.tensor(p.tensor).bytes;
            double log_size =
                std::log10(static_cast<double>(size)) - 4.0;  // 10KB
            double log_time =
                std::log10(static_cast<double>(p.lengthNs()) / 1000.0) -
                1.0;  // 10us
            int si = std::clamp(static_cast<int>(log_size), 0,
                                kSizeBins - 1);
            int ti = std::clamp(static_cast<int>(log_time), 0,
                                kTimeBins - 1);
            ++grid[static_cast<std::size_t>(si)]
                  [static_cast<std::size_t>(ti)];

            TimeNs round_trip = bw.evictDuration(size, MemLoc::Ssd) +
                                bw.prefetchDuration(size, MemLoc::Ssd);
            if (p.lengthNs() > round_trip)
                ++hideable;
        }

        Table table(std::string("Fig 4 (") + wl.label +
                    "): period counts, size decade x time decade");
        table.setHeader({"size\\time", "10us", "100us", "1ms", "10ms",
                         "100ms", "1s", ">=10s"});
        const char* size_labels[kSizeBins] = {"10KB",  "100KB", "1MB",
                                              "10MB",  "100MB", ">=1GB"};
        for (int s = 0; s < kSizeBins; ++s) {
            std::vector<std::string> row;
            row.push_back(size_labels[s]);
            for (int t = 0; t < kTimeBins; ++t)
                row.push_back(std::to_string(
                    grid[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(t)]));
            table.addRow(row);
        }
        table.print(std::cout);
        std::printf("summary: %.1f%% of %zu periods can hide their own "
                    "SSD swap round trip (paper: 60-80%%)\n\n",
                    100.0 * static_cast<double>(hideable) /
                        static_cast<double>(
                            std::max<std::size_t>(1,
                                                  vit.periods().size())),
                    vit.periods().size());
    }
    return 0;
}
