/**
 * @file
 * Figure 12: execution-time breakdown -- the share of each iteration
 * where tensor migrations overlap compute vs. stall it.
 *
 * Expected shape: G10 has by far the smallest stall share; Base UVM is
 * mostly stall.
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(16);
    banner("Figure 12: compute/stall execution time breakdown", scale);

    SystemConfig sys;
    TraceCache cache;

    Table table("Fig 12: % of iteration time");
    table.setHeader({"model", "design", "compute_and_overlap_pct",
                     "stall_pct"});
    for (ModelKind m : allModels()) {
        const KernelTrace& trace =
            cache.get(m, paperBatchSize(m), scale);
        for (const std::string& d : sweepDesignNames()) {
            ExecStats st = runDesign(trace, d, sys, scale);
            if (st.failed) {
                table.addRowOf(modelName(m), designDisplayName(d).c_str(), "fail",
                               "fail");
                continue;
            }
            double stall =
                100.0 * static_cast<double>(st.totalStallNs) /
                static_cast<double>(st.measuredIterationNs);
            table.addRowOf(modelName(m), designDisplayName(d).c_str(),
                           100.0 - stall, stall);
        }
    }
    table.print(std::cout);
    return 0;
}
