/**
 * @file
 * §7.7: SSD lifetime impact -- per-iteration write traffic by design,
 * write-amplification, and the DWPD lifetime estimate.
 *
 * Expected shape: G10 writes less than DeepUM+ (paper: 1.37x less) and
 * much less than FlashNeuron relative to useful work (paper: 2.20x);
 * the projected device lifetime under continuous training stays in the
 * multi-year range (paper: ~3.7 years).
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(16);
    banner("Table (§7.7): SSD lifetime and write traffic", scale);

    SystemConfig sys;
    TraceCache cache;

    Table table("§7.7: per-iteration SSD wear by design");
    table.setHeader({"model", "design", "ssd_writes_GB", "ssd_reads_GB",
                     "waf", "lifetime_years"});

    std::map<std::string, double> writes_sum;
    for (ModelKind m : allModels()) {
        const KernelTrace& trace =
            cache.get(m, paperBatchSize(m), scale);
        for (const std::string& d : sweepDesignNames()) {
            ExecStats st = runDesign(trace, d, sys, scale);
            if (st.failed) {
                table.addRowOf(modelName(m), designDisplayName(d).c_str(), "fail",
                               "fail", "fail", "fail");
                continue;
            }
            // Scale wear to the paper-sized device for the DWPD math.
            double writes = static_cast<double>(st.traffic.gpuToSsd);
            double reads = static_cast<double>(st.traffic.ssdToGpu);
            double nand = static_cast<double>(st.ssd.nandWriteBytes);
            double elapsed =
                static_cast<double>(st.measuredIterationNs);
            // lifetime = rated budget / observed write rate; identical
            // at any scale because capacity and rate scale together.
            double per_day = nand / (elapsed / 1e9) * 86400.0;
            double budget = 30.0 * 5.0 * 365.0 *
                            static_cast<double>(
                                sys.scaledDown(scale).ssdCapacityBytes);
            double years = per_day > 0.0
                               ? budget / per_day / 365.0
                               : 5.0;
            table.addRowOf(modelName(m), designDisplayName(d).c_str(),
                           writes / 1e9, reads / 1e9, st.ssd.waf(),
                           std::min(years, 99.0));
            writes_sum[designDisplayName(d).c_str()] += writes;
        }
    }
    table.print(std::cout);

    double g10 = writes_sum["G10"];
    if (g10 > 0.0) {
        std::printf(
            "\nsummary: SSD write traffic vs G10 -- DeepUM+ %.2fx "
            "(paper 1.37x), FlashNeuron %.2fx (paper 2.20x), "
            "Base UVM %.2fx\n",
            writes_sum["DeepUM+"] / g10,
            writes_sum["FlashNeuron"] / g10,
            writes_sum["Base UVM"] / g10);
    }
    return 0;
}
