/**
 * @file
 * Shared plumbing for the figure-reproduction benchmarks.
 *
 * Every bench runs the full pipeline at a reduced scale (capacities and
 * batch divided together, ratios preserved; see DESIGN.md §1.5) so the
 * whole evaluation regenerates in minutes. Set G10_SCALE=1 in the
 * environment to run at paper scale, or G10_SCALE=N for 1/N.
 */

#ifndef G10_BENCH_BENCH_UTIL_H
#define G10_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "api/g10.h"

namespace g10::bench {

/** Scale divisor from $G10_SCALE (default @p def). */
inline unsigned
scaleFromEnv(unsigned def)
{
    if (const char* s = std::getenv("G10_SCALE")) {
        int v = std::atoi(s);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    return def;
}

/** Print the standard bench banner. */
inline void
banner(const std::string& what, unsigned scale)
{
    std::cout << "# " << what << "\n# scale: 1/" << scale
              << " of the paper's platform (batch and capacities "
                 "divided together; see DESIGN.md)\n\n";
}

/** Cache of built traces keyed by (model, batch, scale). */
class TraceCache
{
  public:
    const KernelTrace&
    get(ModelKind m, int batch, unsigned scale)
    {
        auto key = std::make_tuple(static_cast<int>(m), batch,
                                   static_cast<int>(scale));
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            it = cache_
                     .emplace(key,
                              buildModelScaled(m, batch, scale))
                     .first;
        }
        return it->second;
    }

  private:
    std::map<std::tuple<int, int, int>, KernelTrace> cache_;
};

/** Run one (trace, design) pair on a scaled platform. */
inline ExecStats
runDesign(const KernelTrace& trace, const std::string& design,
          const SystemConfig& base_sys, unsigned scale,
          double timing_error = 0.0)
{
    ExperimentConfig cfg;
    cfg.sys = base_sys.scaledDown(scale);
    cfg.scaleDown = 1;  // trace is already scaled
    cfg.design = design;
    cfg.timingErrorPct = timing_error;
    return runExperimentOnTrace(trace, cfg);
}

/** Memory demand of a trace as % of (scaled) GPU capacity. */
inline double
memoryPercent(const KernelTrace& trace, const SystemConfig& base_sys,
              unsigned scale)
{
    SystemConfig sys = base_sys.scaledDown(scale);
    return 100.0 * static_cast<double>(trace.totalTensorBytes()) /
           static_cast<double>(sys.gpuMemBytes);
}

/** Fig. 2/3/4 use these four characterization workloads. */
struct CharacterizationWorkload
{
    ModelKind model;
    int batch;
    const char* label;
};

inline std::vector<CharacterizationWorkload>
characterizationWorkloads()
{
    return {
        {ModelKind::BertBase, 128, "BERT-128"},
        {ModelKind::ViT, 512, "ViT-512"},
        {ModelKind::ResNet152, 512, "ResNet152-512"},
        {ModelKind::Inceptionv3, 512, "Inceptionv3-512"},
    };
}

}  // namespace g10::bench

#endif  // G10_BENCH_BENCH_UTIL_H
