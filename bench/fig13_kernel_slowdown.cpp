/**
 * @file
 * Figure 13: distribution of per-kernel execution-time slowdown vs.
 * ideal (lower is better).
 *
 * Expected shape: under Base UVM the majority of kernels are slowed;
 * FlashNeuron/DeepUM+ slow 4-30% of kernels; G10 slows only 1-6%.
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(16);
    banner("Figure 13: per-kernel slowdown distribution", scale);

    SystemConfig sys;
    TraceCache cache;

    Table table("Fig 13: kernel slowdown (actual/ideal)");
    table.setHeader({"model", "design", "p50", "p90", "p99",
                     "pct_kernels_slowed>10%"});
    for (ModelKind m : allModels()) {
        const KernelTrace& trace =
            cache.get(m, paperBatchSize(m), scale);
        for (const std::string& d : sweepDesignNames()) {
            ExecStats st = runDesign(trace, d, sys, scale);
            if (st.failed) {
                table.addRowOf(modelName(m), designDisplayName(d).c_str(), "fail",
                               "fail", "fail", "fail");
                continue;
            }
            Distribution slowdown;
            std::size_t slowed = 0;
            for (const auto& ks : st.kernels) {
                double r = static_cast<double>(ks.actualNs) /
                           static_cast<double>(
                               std::max<TimeNs>(1, ks.idealNs));
                slowdown.add(r);
                if (r > 1.10)
                    ++slowed;
            }
            table.addRowOf(
                modelName(m), designDisplayName(d).c_str(),
                slowdown.percentile(0.50), slowdown.percentile(0.90),
                slowdown.percentile(0.99),
                100.0 * static_cast<double>(slowed) /
                    static_cast<double>(st.kernels.size()));
        }
    }
    table.print(std::cout);
    std::printf("\n(paper: G10 slows only 1-6%% of kernels; baselines "
                "4-30%%; Base UVM more than half)\n");
    return 0;
}
