/**
 * @file
 * Figure 17: G10 vs. DeepUM+ vs. FlashNeuron as host memory varies
 * (ViT-1024 and Inceptionv3-1280).
 *
 * Expected shape: with no host memory G10 still beats DeepUM+ by a
 * wide margin (DeepUM+ needs host staging); FlashNeuron is flat (it
 * never uses host memory); G10 stays fastest everywhere.
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(32);
    banner("Figure 17: designs vs. host memory capacity", scale);

    struct Workload { ModelKind m; int batch; };
    const std::vector<Workload> workloads = {
        {ModelKind::ViT, 1024}, {ModelKind::Inceptionv3, 1280}};
    const std::vector<unsigned> host_gb = {0, 16, 32, 64, 256};

    SystemConfig sys;
    TraceCache cache;
    for (const auto& wl : workloads) {
        const KernelTrace& trace = cache.get(wl.m, wl.batch, scale);
        Table table(std::string("Fig 17 (") + modelName(wl.m) + "-" +
                    std::to_string(wl.batch) +
                    "): iteration seconds (paper-equivalent)");
        table.setHeader(
            {"host_GB", "DeepUM+", "FlashNeuron", "G10"});
        for (unsigned h : host_gb) {
            SystemConfig s = sys;
            s.hostMemBytes = static_cast<Bytes>(h) * GiB;
            std::vector<std::string> row = {std::to_string(h)};
            for (const std::string& d :
                 {std::string("deepum"), std::string("flashneuron"),
                  std::string("g10")}) {
                ExecStats st = runDesign(trace, d, s, scale);
                row.push_back(
                    st.failed
                        ? "fail"
                        : Table::formatCell(
                              static_cast<double>(
                                  st.measuredIterationNs) /
                              1e9 * static_cast<double>(scale)));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
