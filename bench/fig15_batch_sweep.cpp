/**
 * @file
 * Figure 15: training throughput (samples/sec) as batch size grows.
 *
 * Expected shape: all designs match the ideal at small batches; as the
 * footprint outgrows GPU memory the baselines fall away first and G10
 * stays closest to ideal at every batch size.
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(32);
    banner("Figure 15: throughput vs. batch size", scale);

    const std::map<ModelKind, std::vector<int>> batches = {
        {ModelKind::BertBase, {128, 256, 512, 768, 1024}},
        {ModelKind::ViT, {256, 512, 768, 1024, 1280}},
        {ModelKind::Inceptionv3, {512, 768, 1024, 1280, 1536, 1792}},
        {ModelKind::ResNet152, {256, 512, 768, 1024, 1280}},
        {ModelKind::SENet154, {256, 512, 768, 1024}},
    };

    SystemConfig sys;
    TraceCache cache;
    for (ModelKind m : allModels()) {
        Table table(std::string("Fig 15 (") + modelName(m) +
                    "): samples/sec vs. paper-scale batch size");
        table.setHeader({"batch", "Ideal", "Base UVM", "FlashNeuron",
                         "DeepUM+", "G10"});
        for (int b : batches.at(m)) {
            const KernelTrace& trace = cache.get(m, b, scale);
            std::vector<std::string> row = {std::to_string(b)};
            for (const std::string& d :
                 {std::string("ideal"), std::string("baseuvm"),
                  std::string("flashneuron"), std::string("deepum"),
                  std::string("g10")}) {
                ExecStats st = runDesign(trace, d, sys, scale);
                row.push_back(st.failed
                                  ? "fail"
                                  : Table::formatCell(
                                        st.throughput() *
                                        static_cast<double>(scale)));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::printf("(throughputs rescaled x%u so numbers are comparable "
                "to the paper's per-paper-batch axes)\n",
                scaleFromEnv(32));
    return 0;
}
