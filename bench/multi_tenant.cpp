/**
 * @file
 * Consolidation study: what happens when N training jobs share one
 * GPU + host DRAM + SSD instead of each getting a machine?
 *
 * Sweeps the tenant count for a homogeneous ResNet152 mix and runs a
 * heterogeneous ResNet152+BERT mix under both schedulers, reporting
 * aggregate throughput, per-job slowdown, Jain fairness, GPU
 * utilization, and -- the part a per-job simulator cannot see -- the
 * shared SSD's write amplification under consolidated churn (§7.7).
 * All mixes run concurrently through the ExperimentEngine pool.
 */

#include "bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(32);
    banner("multi-tenant consolidation (shared GPU+DRAM+SSD)", scale);

    std::vector<WorkloadMix> mixes;
    std::vector<std::string> labels;

    // Homogeneous consolidation: 1, 2, 4 copies of ResNet152.
    for (int n : {1, 2, 4}) {
        WorkloadMix mix;
        mix.scaleDown = scale;
        for (int i = 0; i < n; ++i) {
            JobSpec job;
            job.model = ModelKind::ResNet152;
            mix.jobs.push_back(job);
        }
        mixes.push_back(mix);
        labels.push_back("resnet152 x" + std::to_string(n));
    }

    // Heterogeneous mix under both schedulers (BERT gets priority 4).
    for (MixSched sched : {MixSched::RoundRobin, MixSched::Priority}) {
        WorkloadMix mix;
        mix.scaleDown = scale;
        mix.sched = sched;
        JobSpec resnet;
        resnet.model = ModelKind::ResNet152;
        JobSpec bert;
        bert.model = ModelKind::BertBase;
        bert.priority = 4;
        mix.jobs = {resnet, bert};
        mixes.push_back(mix);
        labels.push_back(std::string("resnet152+bert ") +
                         mixSchedName(sched));
    }

    ExperimentEngine engine;
    std::vector<MixResult> results = engine.runMixes(mixes);

    Table table("consolidation vs. isolated execution");
    table.setHeader({"mix", "jobs", "ok", "agg_sps", "mean_slowdown",
                     "max_slowdown", "fairness", "gpu_util",
                     "ssd_waf", "ssd_nand_GB"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const MixResult& r = results[i];
        double mean_sd = 0.0, max_sd = 0.0;
        int measured = 0;
        int ok = 0;
        for (const JobResult& j : r.jobs) {
            if (!j.shared.failed)
                ++ok;  // a failed job hit its memory partition's OOM
            if (j.slowdown <= 0)
                continue;
            mean_sd += j.slowdown;
            max_sd = std::max(max_sd, j.slowdown);
            ++measured;
        }
        if (measured > 0)
            mean_sd /= measured;
        table.addRowOf(labels[i].c_str(),
                       static_cast<int>(r.jobs.size()), ok,
                       r.aggregateThroughput, mean_sd, max_sd,
                       r.fairness, r.gpuUtilization, r.ssd.waf(),
                       static_cast<double>(r.ssd.nandWriteBytes) / 1e9);
    }
    table.print(std::cout);

    std::cout << "\n";
    printMixReport(std::cout, results.back());
    return 0;
}
