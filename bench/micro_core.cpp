/**
 * @file
 * google-benchmark microbenchmarks for the hot paths of the compile
 * pipeline and the simulator: StepFunction range math, vitality
 * analysis, Algorithm 1 scheduling, and full simulation replay.
 */

#include <benchmark/benchmark.h>

#include "api/g10.h"
#include "core/g10_compiler.h"

namespace {

using namespace g10;

void
BM_StepFunctionAdd(benchmark::State& state)
{
    const auto ranges = state.range(0);
    for (auto _ : state) {
        StepFunction f;
        for (std::int64_t i = 0; i < ranges; ++i)
            f.add(i * 7, i * 7 + 400, 1.0);
        benchmark::DoNotOptimize(f.maxValue());
    }
    state.SetItemsProcessed(state.iterations() * ranges);
}
BENCHMARK(BM_StepFunctionAdd)->Arg(256)->Arg(4096);

void
BM_StepFunctionIntegralAbove(benchmark::State& state)
{
    StepFunction f;
    for (std::int64_t i = 0; i < 4096; ++i)
        f.add(i * 11, i * 11 + 700, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            f.integralAbove(0, 4096 * 11, 20.0, 5.0));
}
BENCHMARK(BM_StepFunctionIntegralAbove);

void
BM_StepFunctionCursorWalk(benchmark::State& state)
{
    // The bandwidth model's drainTime pattern: walk segments from t0
    // until the flow drains, typically stopping long before the
    // horizon. The cursor makes this allocation-free and early-exiting
    // (materializing segments() here would build all ~4096 of them).
    StepFunction f;
    for (std::int64_t i = 0; i < 4096; ++i)
        f.add(i * 11, i * 11 + 700, 1.0);
    for (auto _ : state) {
        double drained = 0.0;
        for (auto c = f.cursor(0, 4096 * 11); !c.done(); c.next()) {
            drained +=
                c.value() * static_cast<double>(c.end() - c.begin());
            if (drained > 1e6)
                break;
        }
        benchmark::DoNotOptimize(drained);
    }
}
BENCHMARK(BM_StepFunctionCursorWalk);

void
BM_BuildModelTrace(benchmark::State& state)
{
    auto kind = static_cast<ModelKind>(state.range(0));
    for (auto _ : state) {
        KernelTrace t = buildModelScaled(kind, paperBatchSize(kind), 32);
        benchmark::DoNotOptimize(t.numKernels());
    }
}
BENCHMARK(BM_BuildModelTrace)
    ->Arg(static_cast<int>(ModelKind::BertBase))
    ->Arg(static_cast<int>(ModelKind::ResNet152));

void
BM_VitalityAnalysis(benchmark::State& state)
{
    KernelTrace t =
        buildModelScaled(ModelKind::ResNet152, 1280, 32);
    for (auto _ : state) {
        VitalityAnalysis v(t, 5 * USEC);
        benchmark::DoNotOptimize(v.periods().size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(t.numKernels()));
}
BENCHMARK(BM_VitalityAnalysis);

void
BM_CompileG10Plan(benchmark::State& state)
{
    KernelTrace t =
        buildModelScaled(ModelKind::SENet154, 1024, 32);
    SystemConfig sys = SystemConfig().scaledDown(32);
    for (auto _ : state) {
        CompiledPlan plan = compileG10Plan(t, sys);
        benchmark::DoNotOptimize(plan.plan.size());
    }
}
BENCHMARK(BM_CompileG10Plan);

void
BM_SimulateG10(benchmark::State& state)
{
    KernelTrace t =
        buildModelScaled(ModelKind::ResNet152, 1280, 32);
    SystemConfig sys = SystemConfig().scaledDown(32);
    auto policy = makeG10(t, sys);
    RunConfig rc;
    rc.sys = sys;
    rc.uvmExtension = true;
    for (auto _ : state) {
        ExecStats st = simulate(t, *policy, rc);
        benchmark::DoNotOptimize(st.measuredIterationNs);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(t.numKernels()));
}
BENCHMARK(BM_SimulateG10);

void
BM_SimulateBaseUvm(benchmark::State& state)
{
    KernelTrace t =
        buildModelScaled(ModelKind::ResNet152, 1280, 32);
    SystemConfig sys = SystemConfig().scaledDown(32);
    BaseUvmPolicy policy;
    RunConfig rc;
    rc.sys = sys;
    for (auto _ : state) {
        ExecStats st = simulate(t, policy, rc);
        benchmark::DoNotOptimize(st.measuredIterationNs);
    }
}
BENCHMARK(BM_SimulateBaseUvm);

}  // namespace

BENCHMARK_MAIN();
