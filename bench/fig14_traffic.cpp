/**
 * @file
 * Figure 14: tensor migration traffic per iteration, split by path
 * (GPU-SSD vs. GPU-Host) and direction.
 *
 * Expected shape: Base UVM/DeepUM+ move more data than necessary;
 * FlashNeuron moves too little (it never swaps weights) and only via
 * the SSD; G10 balances -- transformers lean on the host path, CNNs
 * put more than half on the SSD.
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(16);
    banner("Figure 14: migration traffic breakdown (GB, scaled "
           "platform)", scale);

    SystemConfig sys;
    TraceCache cache;

    Table table("Fig 14: per-iteration migration traffic");
    table.setHeader({"model", "design", "gpu_ssd_GB", "gpu_host_GB",
                     "reads_GB", "writes_GB", "total_GB"});
    for (ModelKind m : allModels()) {
        const KernelTrace& trace =
            cache.get(m, paperBatchSize(m), scale);
        for (const std::string& d : sweepDesignNames()) {
            ExecStats st = runDesign(trace, d, sys, scale);
            if (st.failed) {
                table.addRowOf(modelName(m), designDisplayName(d).c_str(), "fail",
                               "fail", "fail", "fail", "fail");
                continue;
            }
            double ssd = static_cast<double>(st.traffic.gpuToSsd +
                                             st.traffic.ssdToGpu) /
                         1e9;
            double host = static_cast<double>(st.traffic.gpuToHost +
                                              st.traffic.hostToGpu) /
                          1e9;
            double reads =
                static_cast<double>(st.traffic.totalToGpu()) / 1e9;
            double writes =
                static_cast<double>(st.traffic.totalFromGpu()) / 1e9;
            table.addRowOf(modelName(m), designDisplayName(d).c_str(), ssd, host,
                           reads, writes, ssd + host);
        }
    }
    table.print(std::cout);
    return 0;
}
