/**
 * @file
 * Tracked performance harness: times the two stages every experiment
 * pays for -- plan compilation (compileG10Plan) and full simulation
 * replay -- across the model zoo and the key designs, plus the
 * served-load scenario (the g10serve demo sweep: open-loop traffic,
 * churn, warm-started re-compiles), and emits a schema-tagged JSON
 * document (BENCH_core.json) so the repository carries a perf
 * trajectory from PR to PR.
 *
 * Usage: bench_perf_trajectory [out.json]
 *   G10_SCALE     platform/batch scale divisor for the zoo sweep
 *                 (default 16; the headline entry always runs at
 *                 paper scale)
 *   G10_PERF_REPS timing repetitions, best-of is reported (default 3)
 *   G10_BENCH_TIMESTAMP  recorded verbatim in the document's `meta`
 *                 block (the harness stays deterministic; the caller
 *                 stamps the run)
 *
 * The document carries a `meta` block (timestamp, host, compiler, git
 * describe) so a committed BENCH_core.json records where its numbers
 * came from, and a `tracer_overhead` entry timing the same replay
 * with observability off vs. fully attached — the
 * zero-overhead-when-off pin for the tracing layer.
 *
 * Times are wall-clock milliseconds (best of N reps, so the numbers
 * are stable enough to compare across commits on the same machine).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "api/g10.h"
#include "common/step_function.h"
#include "serve/plan_cache.h"
#include "obs/tracer.h"

namespace {

using namespace g10;

/** Wall-clock milliseconds of the best run of @p reps calls to @p fn. */
template <typename Fn>
double
bestMs(int reps, Fn&& fn)
{
    double best = -1.0;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (best < 0.0 || ms < best)
            best = ms;
    }
    return best;
}

struct StageTimes
{
    std::string model;
    int batch = 0;
    unsigned scale = 1;
    std::size_t kernels = 0;
    std::size_t periods = 0;
    std::size_t migrations = 0;
    double buildMs = 0.0;
    double compileMs = 0.0;
    std::vector<std::pair<std::string, double>> replayMs;
};

StageTimes
timeWorkload(ModelKind m, unsigned scale, int reps,
             const std::vector<std::string>& designs)
{
    StageTimes out;
    out.model = modelName(m);
    out.batch = paperBatchSize(m);
    out.scale = scale;

    out.buildMs = bestMs(reps, [&] {
        KernelTrace t = buildModelScaled(m, out.batch, scale);
        if (t.numKernels() == 0)
            std::abort();
    });

    KernelTrace trace = buildModelScaled(m, out.batch, scale);
    SystemConfig sys = SystemConfig().scaledDown(scale);
    out.kernels = trace.numKernels();

    out.compileMs = bestMs(reps, [&] {
        CompiledPlan plan = compileG10Plan(trace, sys);
        out.periods = plan.vitality->periods().size();
        out.migrations = plan.schedule.migrations.size();
    });

    // Pure replay: the design instance (whose construction runs the
    // plan compile for the G10 family) is rebuilt outside the timed
    // region each rep, so replay_ms never double-counts compile_ms.
    for (const std::string& d : designs) {
        double best = -1.0;
        for (int r = 0; r < reps; ++r) {
            DesignInstance design =
                PolicyRegistry::instance().make(d, trace, sys);
            RunConfig rc;
            rc.sys = sys;
            rc.uvmExtension = design.uvmExtension;
            double ms = bestMs(1, [&] {
                ExecStats st = simulate(trace, *design.policy, rc);
                if (st.measuredIterationNs <= 0 && !st.failed)
                    std::abort();
            });
            if (best < 0.0 || ms < best)
                best = ms;
        }
        out.replayMs.emplace_back(d, best);
    }
    return out;
}

void
writeEntry(JsonWriter& w, const StageTimes& st)
{
    w.beginObject();
    w.field("model", st.model);
    w.field("batch", static_cast<std::int64_t>(st.batch));
    w.field("scale", static_cast<std::int64_t>(st.scale));
    w.field("kernels", static_cast<std::uint64_t>(st.kernels));
    w.field("inactive_periods", static_cast<std::uint64_t>(st.periods));
    w.field("migrations", static_cast<std::uint64_t>(st.migrations));
    w.field("trace_build_ms", st.buildMs);
    w.field("compile_ms", st.compileMs);
    w.key("replay_ms").beginObject();
    for (const auto& [design, ms] : st.replayMs)
        w.field(design, ms);
    w.endObject();
    double total = st.compileMs;
    for (const auto& [design, ms] : st.replayMs)
        if (design == "g10")
            total += ms;
    w.field("compile_plus_g10_replay_ms", total);
    w.endObject();
}

/** The served-load scenario: one demo sweep, timed end to end. Run
 *  once with static slots (the tracked baseline) and once with
 *  ondemand elastic partitions (capacity resizes, splits, warm
 *  replans across capacity changes). */
struct ServeTimes
{
    std::size_t cells = 0;
    std::size_t offered = 0;
    std::uint64_t warmCompiles = 0;
    std::uint64_t coldCompiles = 0;
    std::uint64_t resizes = 0;
    std::uint64_t splits = 0;
    std::uint64_t replans = 0;
    std::uint64_t resizeWarmHits = 0;
    std::uint64_t warmReplayed = 0;
    std::uint64_t warmDropped = 0;
    double runMs = 0.0;
};

ServeTimes
timeServedLoad(unsigned scale, int reps, PartitionPolicy policy)
{
    ServeTimes out;
    ServeSpec spec = demoServeSpec(scale);
    spec.partitionPolicy = policy;
    ServeSweepResult res;
    out.runMs = bestMs(reps, [&] {
        ServeSweep sweep(spec);
        ExperimentEngine engine;
        res = sweep.run(engine);
        if (res.cells.empty())
            std::abort();
    });
    out.cells = res.cells.size();
    for (const ServeCellResult& c : res.cells) {
        out.offered += c.metrics.offered;
        out.warmCompiles += c.metrics.warmCompiles;
        out.coldCompiles += c.metrics.coldCompiles;
        out.resizes += c.metrics.resizes;
        out.splits += c.metrics.splits;
        out.replans += c.metrics.replans;
        out.resizeWarmHits += c.metrics.resizeWarmHits;
        out.warmReplayed += c.metrics.warmReplayedMigrations;
        out.warmDropped += c.metrics.warmDroppedMigrations;
    }
    return out;
}

void
writeServeEntry(JsonWriter& w, const ServeTimes& st)
{
    w.beginObject();
    w.field("cells", static_cast<std::uint64_t>(st.cells));
    w.field("offered_requests", static_cast<std::uint64_t>(st.offered));
    w.field("warm_compiles", st.warmCompiles);
    w.field("cold_compiles", st.coldCompiles);
    w.field("resizes", st.resizes);
    w.field("splits", st.splits);
    w.field("replans", st.replans);
    w.field("resize_warm_hits", st.resizeWarmHits);
    w.field("warm_replayed_migrations", st.warmReplayed);
    w.field("warm_dropped_migrations", st.warmDropped);
    w.field("sweep_ms", st.runMs);
    w.endObject();
}

/**
 * Elastic-vs-static sustained capacity: auto-bisect the throughput
 * knee of the demo mix per design under static slots and under
 * ondemand elastic partitions; the tracked deliverable is the
 * capacity gain (elastic knee / static knee).
 */
struct CapacityTimes
{
    std::vector<std::string> designs;
    std::vector<double> staticKnee;
    std::vector<double> elasticKnee;
    std::vector<std::uint64_t> staticProbes;
    std::vector<std::uint64_t> elasticProbes;
    std::uint64_t resizes = 0;
    std::uint64_t splits = 0;
    std::uint64_t resizeWarmHits = 0;
    double searchMs = 0.0;
};

CapacityTimes
timeElasticCapacity(unsigned scale)
{
    CapacityTimes out;
    ServeSpec spec = demoServeSpec(scale);
    spec.designs = {"baseuvm", "g10"};
    spec.rates.clear();
    spec.ratesAuto = true;
    spec.rateProbes = 14;
    out.designs = spec.designs;

    out.searchMs = bestMs(1, [&] {
        // One plan cache spans both searches: the static and elastic
        // sweeps admit the same classes at the same slot capacities,
        // so the elastic pass starts with the static pass's plans
        // already compiled (results stay bit-identical either way).
        SweepPlanCache cache;
        spec.partitionPolicy = PartitionPolicy::Static;
        ExperimentEngine engine;
        ServeSweep staticSweep(spec);
        staticSweep.sharePlanCache(&cache);
        ServeSweepResult st = staticSweep.run(engine);
        out.staticKnee = st.sustainedRate;
        out.staticProbes = st.rateProbes;

        spec.partitionPolicy = PartitionPolicy::OnDemand;
        ServeSweep elasticSweep(spec);
        elasticSweep.sharePlanCache(&cache);
        ServeSweepResult el = elasticSweep.run(engine);
        out.elasticKnee = el.sustainedRate;
        out.elasticProbes = el.rateProbes;
        for (const ServeCellResult& c : el.cells) {
            out.resizes += c.metrics.resizes;
            out.splits += c.metrics.splits;
            out.resizeWarmHits += c.metrics.resizeWarmHits;
        }
    });
    return out;
}

void
writeCapacityEntry(JsonWriter& w, const CapacityTimes& ct)
{
    w.beginObject();
    w.field("elastic_policy", "ondemand");
    w.key("designs").beginArray();
    for (const std::string& d : ct.designs)
        w.value(d);
    w.endArray();
    w.key("static_knee_rps").beginArray();
    for (double k : ct.staticKnee)
        w.value(k);
    w.endArray();
    w.key("elastic_knee_rps").beginArray();
    for (double k : ct.elasticKnee)
        w.value(k);
    w.endArray();
    w.key("capacity_gain").beginArray();
    for (std::size_t d = 0; d < ct.designs.size(); ++d)
        w.value(ct.staticKnee[d] > 0.0
                    ? ct.elasticKnee[d] / ct.staticKnee[d]
                    : 0.0);
    w.endArray();
    w.key("probes").beginArray();
    for (std::size_t d = 0; d < ct.designs.size(); ++d)
        w.value(ct.staticProbes[d] + ct.elasticProbes[d]);
    w.endArray();
    w.field("elastic_resizes", ct.resizes);
    w.field("elastic_splits", ct.splits);
    w.field("resize_warm_hits", ct.resizeWarmHits);
    w.field("search_ms", ct.searchMs);
    w.endObject();
}

/** The fleet scenario: the g10fleet demo (4 heterogeneous nodes x 3
 *  placement policies over one shared stream), timed end to end —
 *  the routing + per-node simulation + aggregation cost the fleet
 *  layer adds on top of single-node serving. */
struct FleetTimes
{
    std::size_t nodes = 0;
    std::size_t placements = 0;
    std::size_t offered = 0;
    std::uint64_t jsqWarm = 0;
    std::uint64_t affinityWarm = 0;
    double jsqJain = 0.0;
    double affinityJain = 0.0;
    double runMs = 0.0;
};

FleetTimes
timeFleetSweep(unsigned scale, int reps)
{
    FleetTimes out;
    FleetSpec spec = demoFleetSpec(scale);
    FleetResult res;
    out.runMs = bestMs(reps, [&] {
        FleetSim fleet(spec);
        ExperimentEngine engine;
        res = fleet.run(engine);
        if (res.placements.empty())
            std::abort();
    });
    out.nodes = spec.nodes.size();
    out.placements = res.placements.size();
    out.offered = static_cast<std::size_t>(
        res.placements.front().fleet.offered);
    for (const FleetPlacementResult& p : res.placements) {
        if (p.kind == PlacementKind::JoinShortestQueue) {
            out.jsqWarm = p.fleet.warmCompiles;
            out.jsqJain = p.fleet.utilJain;
        } else if (p.kind == PlacementKind::ClassAffinity) {
            out.affinityWarm = p.fleet.warmCompiles;
            out.affinityJain = p.fleet.utilJain;
        }
    }
    return out;
}

void
writeFleetEntry(JsonWriter& w, const FleetTimes& ft)
{
    w.beginObject();
    w.field("nodes", static_cast<std::uint64_t>(ft.nodes));
    w.field("placements", static_cast<std::uint64_t>(ft.placements));
    w.field("offered_requests",
            static_cast<std::uint64_t>(ft.offered));
    w.field("jsq_warm_compiles", ft.jsqWarm);
    w.field("affinity_warm_compiles", ft.affinityWarm);
    w.field("jsq_util_jain", ft.jsqJain);
    w.field("affinity_util_jain", ft.affinityJain);
    w.field("sweep_ms", ft.runMs);
    w.endObject();
}

/**
 * Zero-overhead-when-off pin: the same experiment (compile + replay)
 * with observability off — the `tracer_ == nullptr` branch every emit
 * site reduces to — and with a full observer (event sink + counters)
 * attached. The off number rides the tracked headline trajectory;
 * the on/off ratio documents what `--trace --metrics` costs.
 */
struct TracerOverheadTimes
{
    double offMs = 0.0;
    double onMs = 0.0;
    std::size_t events = 0;
    std::uint64_t counters = 0;
};

TracerOverheadTimes
timeTracerOverhead(unsigned scale, int reps)
{
    TracerOverheadTimes out;
    const int batch = paperBatchSize(ModelKind::ResNet152);
    KernelTrace trace =
        buildModelScaled(ModelKind::ResNet152, batch, scale);

    ExperimentConfig cfg;
    cfg.model = ModelKind::ResNet152;
    cfg.batchSize = batch;
    cfg.sys = SystemConfig().scaledDown(scale);
    cfg.scaleDown = 1;
    cfg.design = "g10";

    out.offMs = bestMs(reps, [&] {
        ExecStats st = runExperimentOnTrace(trace, cfg);
        if (st.failed)
            std::abort();
    });
    out.onMs = bestMs(reps, [&] {
        MemoryTraceSink sink;
        CounterRegistry reg;
        Tracer tracer(&sink, &reg);
        ExecStats st = runExperimentOnTrace(trace, cfg, &tracer);
        if (st.failed)
            std::abort();
        out.events = sink.events().size();
        out.counters =
            static_cast<std::uint64_t>(reg.counters().size());
    });
    return out;
}

void
writeTracerOverheadEntry(JsonWriter& w, const TracerOverheadTimes& to)
{
    w.beginObject();
    w.field("replay_off_ms", to.offMs);
    w.field("replay_traced_ms", to.onMs);
    w.field("events", static_cast<std::uint64_t>(to.events));
    w.field("counters", to.counters);
    w.field("traced_over_off",
            to.offMs > 0.0 ? to.onMs / to.offMs : 0.0);
    w.endObject();
}

/**
 * Calibrated cycles-per-element of StepFunction::maxOver, naive scan
 * vs. the block range-max index.
 *
 * No cycle counters: wall-clock is converted to cycles through a
 * calibration loop whose cost is known by construction — a dependent
 * 64-bit add chain retires one add per cycle on any modern
 * out-of-order core (latency 1, nothing else on the critical path;
 * the empty asm makes the accumulator opaque so the compiler cannot
 * close-form the loop). The workload mirrors the eviction scheduler:
 * a pressure curve built from seeded interval add()s, then window-max
 * queries against it. "Element" = breakpoint a naive linear scan of
 * the window would visit, so naive CPE is the true per-breakpoint
 * scan cost and indexed CPE divides the same work by the block
 * index's time — their ratio is the maxOver speedup.
 */
struct CpeTimes
{
    std::size_t breakpoints = 0;
    std::size_t queries = 0;
    std::size_t elements = 0;   ///< breakpoints naive scans visit
    double cyclesPerNs = 0.0;   ///< calibrated core frequency (GHz)
    double naiveCpe = 0.0;
    double indexedCpe = 0.0;
    bool identical = true;      ///< indexed == naive on every query
};

double
calibrateCyclesPerNs(int reps)
{
    const std::size_t n = std::size_t{1} << 27;  // ~134M cycles
    double ms = bestMs(reps, [&] {
        std::uint64_t a = 0;
        for (std::size_t i = 0; i < n; ++i) {
            a += 1;
            __asm__ volatile("" : "+r"(a));  // 1 dependent add / cycle
        }
        if (a != n)
            std::abort();
    });
    return static_cast<double>(n) / (ms * 1e6);
}

CpeTimes
timeStepFunctionCpe(int reps)
{
    CpeTimes out;
    out.cyclesPerNs = calibrateCyclesPerNs(reps);

    // Eviction-scheduler-shaped curve: overlapping tensor lifetimes
    // (positive adds) and committed evictions (negative adds).
    const TimeNs horizon = 1'000'000'000;
    StepFunction sf;
    std::mt19937_64 rng(7);
    for (int i = 0; i < 4000; ++i) {
        const TimeNs t0 = static_cast<TimeNs>(rng() % horizon);
        const TimeNs len =
            1 + static_cast<TimeNs>(rng() % (horizon / 64));
        const double delta =
            static_cast<double>(rng() % 8192) - 2048.0;
        sf.add(t0, std::min<TimeNs>(horizon, t0 + len), delta);
    }
    out.breakpoints = sf.breakpointCount();

    std::vector<std::pair<TimeNs, TimeNs>> windows;
    for (int q = 0; q < 4000; ++q) {
        TimeNs a = static_cast<TimeNs>(rng() % horizon);
        TimeNs b = static_cast<TimeNs>(rng() % horizon);
        if (a > b)
            std::swap(a, b);
        windows.emplace_back(a, b + 1);
    }
    out.queries = windows.size();

    // Naive reference: the pre-index linear segment walk.
    std::vector<double> naiveMax(windows.size(), 0.0);
    auto naivePass = [&] {
        std::size_t elems = 0;
        for (std::size_t q = 0; q < windows.size(); ++q) {
            double best = 0.0;
            for (auto c = sf.cursor(windows[q].first,
                                    windows[q].second);
                 !c.done(); c.next()) {
                best = std::max(best, c.value());
                ++elems;
            }
            naiveMax[q] = best;
        }
        out.elements = elems;
    };
    double naiveMs = bestMs(reps, naivePass);

    double indexedMs = bestMs(reps, [&] {
        for (std::size_t q = 0; q < windows.size(); ++q) {
            double got = sf.maxOver(windows[q].first,
                                    windows[q].second);
            if (got != naiveMax[q])
                out.identical = false;
        }
    });

    const double cycles = out.cyclesPerNs * 1e6;  // per millisecond
    out.naiveCpe = naiveMs * cycles /
                   static_cast<double>(out.elements);
    out.indexedCpe = indexedMs * cycles /
                     static_cast<double>(out.elements);
    return out;
}

void
writeCpeEntry(JsonWriter& w, const CpeTimes& ct)
{
    w.beginObject();
    w.field("breakpoints",
            static_cast<std::uint64_t>(ct.breakpoints));
    w.field("queries", static_cast<std::uint64_t>(ct.queries));
    w.field("scanned_elements",
            static_cast<std::uint64_t>(ct.elements));
    w.field("calibrated_ghz", ct.cyclesPerNs);
    w.field("naive_cpe", ct.naiveCpe);
    w.field("indexed_cpe", ct.indexedCpe);
    w.field("speedup",
            ct.indexedCpe > 0.0 ? ct.naiveCpe / ct.indexedCpe : 0.0);
    w.field("results_identical", ct.identical);
    w.endObject();
}

/**
 * Sweep acceleration: the same auto-knee bisection with the
 * cross-probe plan cache off vs. on (results must be bit-identical —
 * the cache memoizes a deterministic compiler), plus a paper-scale
 * (scale = 1) auto-knee to pin that full-size capacity searches are
 * interactive.
 */
struct SweepSpeedTimes
{
    std::vector<std::string> designs;
    double coldMs = 0.0;    ///< sweep_cache = off
    double cachedMs = 0.0;  ///< sweep_cache = on
    bool kneesIdentical = false;
    std::vector<double> knee;
    std::uint64_t hits = 0, misses = 0, entries = 0;

    double paperMs = 0.0;  ///< paper-scale auto-knee, cache on
    std::vector<double> paperKnee;
    std::uint64_t paperProbes = 0;
    std::uint64_t paperHits = 0;
};

SweepSpeedTimes
timeSweepSpeed(unsigned scale)
{
    SweepSpeedTimes out;
    ServeSpec spec = demoServeSpec(scale);
    spec.designs = {"baseuvm", "g10"};
    spec.rates.clear();
    spec.ratesAuto = true;
    spec.rateProbes = 12;
    spec.partitionPolicy = PartitionPolicy::OnDemand;
    out.designs = spec.designs;

    ExperimentEngine engine;
    ServeSweepResult cold, cached;
    spec.sweepPlanCache = false;
    out.coldMs = bestMs(1, [&] {
        cold = ServeSweep(spec).run(engine);
    });
    spec.sweepPlanCache = true;
    out.cachedMs = bestMs(1, [&] {
        cached = ServeSweep(spec).run(engine);
    });
    out.knee = cached.sustainedRate;
    out.kneesIdentical = cold.sustainedRate == cached.sustainedRate;
    out.hits = cached.planCacheHits;
    out.misses = cached.planCacheMisses;
    out.entries = cached.planCacheEntries;

    // Paper scale: one G10 node bisecting the BERT knee at full
    // platform size — the interactive-capacity-search pin.
    ServeSpec paper;
    paper.scaleDown = 1;
    paper.slots = 2;
    paper.queueCapacity = 4;
    paper.requests = 8;
    paper.ratesAuto = true;
    paper.rateProbes = 8;
    paper.designs = {"g10"};
    ServeJobClass bert;
    bert.model = ModelKind::BertBase;
    paper.classes = {bert};
    ServeSweepResult pres;
    out.paperMs = bestMs(1, [&] {
        pres = ServeSweep(paper).run(engine);
    });
    out.paperKnee = pres.sustainedRate;
    for (std::uint64_t p : pres.rateProbes)
        out.paperProbes += p;
    out.paperHits = pres.planCacheHits;
    return out;
}

void
writeSweepSpeedEntry(JsonWriter& w, const SweepSpeedTimes& st)
{
    w.beginObject();
    w.key("designs").beginArray();
    for (const std::string& d : st.designs)
        w.value(d);
    w.endArray();
    w.field("cold_search_ms", st.coldMs);
    w.field("cached_search_ms", st.cachedMs);
    w.field("speedup",
            st.cachedMs > 0.0 ? st.coldMs / st.cachedMs : 0.0);
    w.field("knees_identical", st.kneesIdentical);
    w.key("knee_rps").beginArray();
    for (double k : st.knee)
        w.value(k);
    w.endArray();
    w.field("cache_hits", st.hits);
    w.field("cache_misses", st.misses);
    w.field("cache_entries", st.entries);
    w.field("paper_scale_knee_ms", st.paperMs);
    w.key("paper_knee_rps").beginArray();
    for (double k : st.paperKnee)
        w.value(k);
    w.endArray();
    w.field("paper_probes", st.paperProbes);
    w.field("paper_cache_hits", st.paperHits);
    w.endObject();
}

/**
 * Speculative parallel knee search: the elastic-capacity scenario's
 * auto-knee with `speculate = off` vs `on` at a fixed 4-worker pool.
 * Off, the two design lanes are the only parallelism (each lane's
 * bisection is a strictly sequential decision chain); on, idle
 * workers pre-run both possible successors of every in-flight probe,
 * so the decided path mostly reads memoized results. The tracked
 * deliverable is the wall-clock speedup *and* that the two full
 * result documents stay byte-identical (knees, cells, jobs — not
 * just the knee rates). Note: on a 1-core host the speedup
 * degenerates toward 1.0 (speculation only soaks idle cores); the CI
 * gate re-times this entry on a multi-core runner.
 */
struct ParallelKneeTimes
{
    std::vector<std::string> designs;
    unsigned workers = 4;
    double sequentialMs = 0.0;   ///< speculate = off
    double speculativeMs = 0.0;  ///< speculate = on
    bool kneesIdentical = false;
    std::vector<double> knee;
    std::uint64_t probesDecided = 0;
    std::uint64_t probesIssued = 0;
    std::uint64_t specUsed = 0;
    std::uint64_t specWasted = 0;
    std::uint64_t probeCacheHits = 0;
};

ParallelKneeTimes
timeParallelKnee(unsigned scale)
{
    ParallelKneeTimes out;
    ServeSpec spec = demoServeSpec(scale);
    spec.designs = {"baseuvm", "g10"};
    spec.rates.clear();
    spec.ratesAuto = true;
    spec.rateProbes = 12;
    out.designs = spec.designs;

    ExperimentEngine engine(out.workers);
    ServeSweepResult seq, spec_on;
    spec.speculativeProbes = false;
    out.sequentialMs = bestMs(1, [&] {
        seq = ServeSweep(spec).run(engine);
    });
    spec.speculativeProbes = true;
    out.speculativeMs = bestMs(1, [&] {
        spec_on = ServeSweep(spec).run(engine);
    });

    // Byte-identity over the *whole* serialized documents.
    std::ostringstream a, b;
    writeServeResultJson(a, seq);
    writeServeResultJson(b, spec_on);
    out.kneesIdentical = a.str() == b.str();

    out.knee = spec_on.sustainedRate;
    for (std::uint64_t p : spec_on.rateProbes)
        out.probesDecided += p;
    out.probesIssued = spec_on.probesIssued;
    out.specUsed = spec_on.probeSpecUsed;
    out.specWasted = spec_on.probeSpecWasted;
    out.probeCacheHits = spec_on.probeCacheHits;
    return out;
}

void
writeParallelKneeEntry(JsonWriter& w, const ParallelKneeTimes& pt)
{
    w.beginObject();
    w.key("designs").beginArray();
    for (const std::string& d : pt.designs)
        w.value(d);
    w.endArray();
    w.field("workers", static_cast<std::uint64_t>(pt.workers));
    w.field("sequential_ms", pt.sequentialMs);
    w.field("speculative_ms", pt.speculativeMs);
    w.field("speedup", pt.speculativeMs > 0.0
                           ? pt.sequentialMs / pt.speculativeMs
                           : 0.0);
    w.field("knees_identical", pt.kneesIdentical);
    w.key("knee_rps").beginArray();
    for (double k : pt.knee)
        w.value(k);
    w.endArray();
    w.field("probes_decided", pt.probesDecided);
    w.field("probes_issued", pt.probesIssued);
    w.field("speculation_used", pt.specUsed);
    w.field("speculation_wasted", pt.specWasted);
    w.field("probe_cache_hits", pt.probeCacheHits);
    w.endObject();
}

/** `git describe --always --dirty`, empty when unavailable. */
std::string
gitDescribe()
{
    FILE* p = popen("git describe --always --dirty 2>/dev/null", "r");
    if (!p)
        return "";
    char buf[128] = {0};
    std::string out;
    if (std::fgets(buf, sizeof(buf), p))
        out = buf;
    pclose(p);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out;
}

void
writeMeta(JsonWriter& w)
{
    const char* ts = std::getenv("G10_BENCH_TIMESTAMP");
    char host[256] = {0};
    if (gethostname(host, sizeof(host) - 1) != 0)
        host[0] = '\0';
    w.beginObject();
    w.field("timestamp", ts ? ts : "");
    w.field("host", host);
    w.field("compiler", __VERSION__);
    w.field("git", gitDescribe());
    w.endObject();
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_core.json";
    unsigned scale = 16;
    if (const char* s = std::getenv("G10_SCALE")) {
        int v = std::atoi(s);
        if (v >= 1)
            scale = static_cast<unsigned>(v);
    }
    int reps = 3;
    if (const char* r = std::getenv("G10_PERF_REPS")) {
        int v = std::atoi(r);
        if (v >= 1)
            reps = v;
    }

    const std::vector<std::string> designs = {"baseuvm", "deepum", "g10"};

    std::cerr << "perf trajectory: zoo sweep at 1/" << scale
              << " scale, best of " << reps << " reps\n";
    std::vector<StageTimes> entries;
    for (ModelKind m : allModels())
        entries.push_back(timeWorkload(m, scale, reps, designs));

    // Headline number: the largest trace at paper scale under the full
    // G10 design -- the configuration the acceptance trajectory tracks.
    std::cerr << "perf trajectory: headline (ResNet152, paper scale)\n";
    StageTimes headline =
        timeWorkload(ModelKind::ResNet152, 1, reps, {"g10"});

    // Served load: the g10serve demo sweep (3 designs x 3 rates of
    // open-loop traffic with churn and warm-started re-compiles),
    // once under static slots and once under ondemand elastic
    // partitions (resizes, splits, warm replans across capacities).
    std::cerr << "perf trajectory: served load (demo sweep, 1/"
              << scale << " scale)\n";
    ServeTimes served =
        timeServedLoad(scale, reps, PartitionPolicy::Static);
    ServeTimes servedElastic =
        timeServedLoad(scale, reps, PartitionPolicy::OnDemand);

    // The capacity deliverable: elastic vs static sustained-
    // throughput knee on the demo mix (auto-bisected).
    std::cerr << "perf trajectory: elastic capacity knee search (1/"
              << scale << " scale)\n";
    CapacityTimes capacity = timeElasticCapacity(scale);

    // Sweep acceleration: the knee search with the cross-probe plan
    // cache off vs on (bit-identical knees), plus a paper-scale knee.
    std::cerr << "perf trajectory: sweep speed (cache off/on, paper "
                 "scale)\n";
    SweepSpeedTimes sweepSpeed = timeSweepSpeed(scale);

    // Speculative parallel knee: speculate off vs on at 4 workers,
    // full-document byte-identity plus the wall-clock delta.
    std::cerr << "perf trajectory: parallel knee (speculate off/on, "
                 "4 workers)\n";
    ParallelKneeTimes parallelKnee = timeParallelKnee(scale);

    // Cycles-per-element of the StepFunction range-max hot loop.
    std::cerr << "perf trajectory: StepFunction maxOver CPE\n";
    CpeTimes cpe = timeStepFunctionCpe(reps);

    // Fleet sweep: the g10fleet demo (4 heterogeneous nodes x 3
    // placements over one stream) — the router's trajectory entry.
    std::cerr << "perf trajectory: fleet sweep (demo fleet, 1/"
              << scale << " scale)\n";
    FleetTimes fleetSweep = timeFleetSweep(scale, reps);

    // Observability pin: tracing off must stay on the null-pointer
    // fast path; tracing on is allowed to cost, but gets tracked.
    std::cerr << "perf trajectory: tracer on/off overhead (1/" << scale
              << " scale)\n";
    TracerOverheadTimes tracerOverhead =
        timeTracerOverhead(scale, reps);

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 1;
    }
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("schema", "g10.bench_core.v1");
        w.key("meta");
        writeMeta(w);
        w.field("scale", static_cast<std::int64_t>(scale));
        w.field("reps", static_cast<std::int64_t>(reps));
        w.key("headline");
        writeEntry(w, headline);
        w.key("tracer_overhead");
        writeTracerOverheadEntry(w, tracerOverhead);
        w.key("served_load");
        writeServeEntry(w, served);
        w.key("served_load_elastic");
        writeServeEntry(w, servedElastic);
        w.key("elastic_capacity");
        writeCapacityEntry(w, capacity);
        w.key("sweep_speed");
        writeSweepSpeedEntry(w, sweepSpeed);
        w.key("parallel_knee");
        writeParallelKneeEntry(w, parallelKnee);
        w.key("step_function_cpe");
        writeCpeEntry(w, cpe);
        w.key("fleet_sweep");
        writeFleetEntry(w, fleetSweep);
        w.key("workloads").beginArray();
        for (const StageTimes& st : entries)
            writeEntry(w, st);
        w.endArray();
        w.endObject();
    }
    os << "\n";
    os.close();

    std::cerr << "perf trajectory: wrote " << out_path << " ("
              << "headline compile " << headline.compileMs
              << " ms, compile+replay "
              << headline.compileMs + headline.replayMs.front().second
              << " ms)\n";
    return 0;
}
