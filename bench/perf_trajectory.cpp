/**
 * @file
 * Tracked performance harness: times the two stages every experiment
 * pays for -- plan compilation (compileG10Plan) and full simulation
 * replay -- across the model zoo and the key designs, plus the
 * served-load scenario (the g10serve demo sweep: open-loop traffic,
 * churn, warm-started re-compiles), and emits a schema-tagged JSON
 * document (BENCH_core.json) so the repository carries a perf
 * trajectory from PR to PR.
 *
 * Usage: bench_perf_trajectory [out.json]
 *   G10_SCALE     platform/batch scale divisor for the zoo sweep
 *                 (default 16; the headline entry always runs at
 *                 paper scale)
 *   G10_PERF_REPS timing repetitions, best-of is reported (default 3)
 *   G10_BENCH_TIMESTAMP  recorded verbatim in the document's `meta`
 *                 block (the harness stays deterministic; the caller
 *                 stamps the run)
 *
 * The document carries a `meta` block (timestamp, host, compiler, git
 * describe) so a committed BENCH_core.json records where its numbers
 * came from, and a `tracer_overhead` entry timing the same replay
 * with observability off vs. fully attached — the
 * zero-overhead-when-off pin for the tracing layer.
 *
 * Times are wall-clock milliseconds (best of N reps, so the numbers
 * are stable enough to compare across commits on the same machine).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "api/g10.h"
#include "obs/tracer.h"

namespace {

using namespace g10;

/** Wall-clock milliseconds of the best run of @p reps calls to @p fn. */
template <typename Fn>
double
bestMs(int reps, Fn&& fn)
{
    double best = -1.0;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (best < 0.0 || ms < best)
            best = ms;
    }
    return best;
}

struct StageTimes
{
    std::string model;
    int batch = 0;
    unsigned scale = 1;
    std::size_t kernels = 0;
    std::size_t periods = 0;
    std::size_t migrations = 0;
    double buildMs = 0.0;
    double compileMs = 0.0;
    std::vector<std::pair<std::string, double>> replayMs;
};

StageTimes
timeWorkload(ModelKind m, unsigned scale, int reps,
             const std::vector<std::string>& designs)
{
    StageTimes out;
    out.model = modelName(m);
    out.batch = paperBatchSize(m);
    out.scale = scale;

    out.buildMs = bestMs(reps, [&] {
        KernelTrace t = buildModelScaled(m, out.batch, scale);
        if (t.numKernels() == 0)
            std::abort();
    });

    KernelTrace trace = buildModelScaled(m, out.batch, scale);
    SystemConfig sys = SystemConfig().scaledDown(scale);
    out.kernels = trace.numKernels();

    out.compileMs = bestMs(reps, [&] {
        CompiledPlan plan = compileG10Plan(trace, sys);
        out.periods = plan.vitality->periods().size();
        out.migrations = plan.schedule.migrations.size();
    });

    // Pure replay: the design instance (whose construction runs the
    // plan compile for the G10 family) is rebuilt outside the timed
    // region each rep, so replay_ms never double-counts compile_ms.
    for (const std::string& d : designs) {
        double best = -1.0;
        for (int r = 0; r < reps; ++r) {
            DesignInstance design =
                PolicyRegistry::instance().make(d, trace, sys);
            RunConfig rc;
            rc.sys = sys;
            rc.uvmExtension = design.uvmExtension;
            double ms = bestMs(1, [&] {
                ExecStats st = simulate(trace, *design.policy, rc);
                if (st.measuredIterationNs <= 0 && !st.failed)
                    std::abort();
            });
            if (best < 0.0 || ms < best)
                best = ms;
        }
        out.replayMs.emplace_back(d, best);
    }
    return out;
}

void
writeEntry(JsonWriter& w, const StageTimes& st)
{
    w.beginObject();
    w.field("model", st.model);
    w.field("batch", static_cast<std::int64_t>(st.batch));
    w.field("scale", static_cast<std::int64_t>(st.scale));
    w.field("kernels", static_cast<std::uint64_t>(st.kernels));
    w.field("inactive_periods", static_cast<std::uint64_t>(st.periods));
    w.field("migrations", static_cast<std::uint64_t>(st.migrations));
    w.field("trace_build_ms", st.buildMs);
    w.field("compile_ms", st.compileMs);
    w.key("replay_ms").beginObject();
    for (const auto& [design, ms] : st.replayMs)
        w.field(design, ms);
    w.endObject();
    double total = st.compileMs;
    for (const auto& [design, ms] : st.replayMs)
        if (design == "g10")
            total += ms;
    w.field("compile_plus_g10_replay_ms", total);
    w.endObject();
}

/** The served-load scenario: one demo sweep, timed end to end. Run
 *  once with static slots (the tracked baseline) and once with
 *  ondemand elastic partitions (capacity resizes, splits, warm
 *  replans across capacity changes). */
struct ServeTimes
{
    std::size_t cells = 0;
    std::size_t offered = 0;
    std::uint64_t warmCompiles = 0;
    std::uint64_t coldCompiles = 0;
    std::uint64_t resizes = 0;
    std::uint64_t splits = 0;
    std::uint64_t replans = 0;
    std::uint64_t resizeWarmHits = 0;
    std::uint64_t warmReplayed = 0;
    std::uint64_t warmDropped = 0;
    double runMs = 0.0;
};

ServeTimes
timeServedLoad(unsigned scale, int reps, PartitionPolicy policy)
{
    ServeTimes out;
    ServeSpec spec = demoServeSpec(scale);
    spec.partitionPolicy = policy;
    ServeSweepResult res;
    out.runMs = bestMs(reps, [&] {
        ServeSweep sweep(spec);
        ExperimentEngine engine;
        res = sweep.run(engine);
        if (res.cells.empty())
            std::abort();
    });
    out.cells = res.cells.size();
    for (const ServeCellResult& c : res.cells) {
        out.offered += c.metrics.offered;
        out.warmCompiles += c.metrics.warmCompiles;
        out.coldCompiles += c.metrics.coldCompiles;
        out.resizes += c.metrics.resizes;
        out.splits += c.metrics.splits;
        out.replans += c.metrics.replans;
        out.resizeWarmHits += c.metrics.resizeWarmHits;
        out.warmReplayed += c.metrics.warmReplayedMigrations;
        out.warmDropped += c.metrics.warmDroppedMigrations;
    }
    return out;
}

void
writeServeEntry(JsonWriter& w, const ServeTimes& st)
{
    w.beginObject();
    w.field("cells", static_cast<std::uint64_t>(st.cells));
    w.field("offered_requests", static_cast<std::uint64_t>(st.offered));
    w.field("warm_compiles", st.warmCompiles);
    w.field("cold_compiles", st.coldCompiles);
    w.field("resizes", st.resizes);
    w.field("splits", st.splits);
    w.field("replans", st.replans);
    w.field("resize_warm_hits", st.resizeWarmHits);
    w.field("warm_replayed_migrations", st.warmReplayed);
    w.field("warm_dropped_migrations", st.warmDropped);
    w.field("sweep_ms", st.runMs);
    w.endObject();
}

/**
 * Elastic-vs-static sustained capacity: auto-bisect the throughput
 * knee of the demo mix per design under static slots and under
 * ondemand elastic partitions; the tracked deliverable is the
 * capacity gain (elastic knee / static knee).
 */
struct CapacityTimes
{
    std::vector<std::string> designs;
    std::vector<double> staticKnee;
    std::vector<double> elasticKnee;
    std::vector<std::uint64_t> staticProbes;
    std::vector<std::uint64_t> elasticProbes;
    std::uint64_t resizes = 0;
    std::uint64_t splits = 0;
    std::uint64_t resizeWarmHits = 0;
    double searchMs = 0.0;
};

CapacityTimes
timeElasticCapacity(unsigned scale)
{
    CapacityTimes out;
    ServeSpec spec = demoServeSpec(scale);
    spec.designs = {"baseuvm", "g10"};
    spec.rates.clear();
    spec.ratesAuto = true;
    spec.rateProbes = 14;
    out.designs = spec.designs;

    out.searchMs = bestMs(1, [&] {
        spec.partitionPolicy = PartitionPolicy::Static;
        ExperimentEngine engine;
        ServeSweepResult st = ServeSweep(spec).run(engine);
        out.staticKnee = st.sustainedRate;
        out.staticProbes = st.rateProbes;

        spec.partitionPolicy = PartitionPolicy::OnDemand;
        ServeSweepResult el = ServeSweep(spec).run(engine);
        out.elasticKnee = el.sustainedRate;
        out.elasticProbes = el.rateProbes;
        for (const ServeCellResult& c : el.cells) {
            out.resizes += c.metrics.resizes;
            out.splits += c.metrics.splits;
            out.resizeWarmHits += c.metrics.resizeWarmHits;
        }
    });
    return out;
}

void
writeCapacityEntry(JsonWriter& w, const CapacityTimes& ct)
{
    w.beginObject();
    w.field("elastic_policy", "ondemand");
    w.key("designs").beginArray();
    for (const std::string& d : ct.designs)
        w.value(d);
    w.endArray();
    w.key("static_knee_rps").beginArray();
    for (double k : ct.staticKnee)
        w.value(k);
    w.endArray();
    w.key("elastic_knee_rps").beginArray();
    for (double k : ct.elasticKnee)
        w.value(k);
    w.endArray();
    w.key("capacity_gain").beginArray();
    for (std::size_t d = 0; d < ct.designs.size(); ++d)
        w.value(ct.staticKnee[d] > 0.0
                    ? ct.elasticKnee[d] / ct.staticKnee[d]
                    : 0.0);
    w.endArray();
    w.key("probes").beginArray();
    for (std::size_t d = 0; d < ct.designs.size(); ++d)
        w.value(ct.staticProbes[d] + ct.elasticProbes[d]);
    w.endArray();
    w.field("elastic_resizes", ct.resizes);
    w.field("elastic_splits", ct.splits);
    w.field("resize_warm_hits", ct.resizeWarmHits);
    w.field("search_ms", ct.searchMs);
    w.endObject();
}

/** The fleet scenario: the g10fleet demo (4 heterogeneous nodes x 3
 *  placement policies over one shared stream), timed end to end —
 *  the routing + per-node simulation + aggregation cost the fleet
 *  layer adds on top of single-node serving. */
struct FleetTimes
{
    std::size_t nodes = 0;
    std::size_t placements = 0;
    std::size_t offered = 0;
    std::uint64_t jsqWarm = 0;
    std::uint64_t affinityWarm = 0;
    double jsqJain = 0.0;
    double affinityJain = 0.0;
    double runMs = 0.0;
};

FleetTimes
timeFleetSweep(unsigned scale, int reps)
{
    FleetTimes out;
    FleetSpec spec = demoFleetSpec(scale);
    FleetResult res;
    out.runMs = bestMs(reps, [&] {
        FleetSim fleet(spec);
        ExperimentEngine engine;
        res = fleet.run(engine);
        if (res.placements.empty())
            std::abort();
    });
    out.nodes = spec.nodes.size();
    out.placements = res.placements.size();
    out.offered = static_cast<std::size_t>(
        res.placements.front().fleet.offered);
    for (const FleetPlacementResult& p : res.placements) {
        if (p.kind == PlacementKind::JoinShortestQueue) {
            out.jsqWarm = p.fleet.warmCompiles;
            out.jsqJain = p.fleet.utilJain;
        } else if (p.kind == PlacementKind::ClassAffinity) {
            out.affinityWarm = p.fleet.warmCompiles;
            out.affinityJain = p.fleet.utilJain;
        }
    }
    return out;
}

void
writeFleetEntry(JsonWriter& w, const FleetTimes& ft)
{
    w.beginObject();
    w.field("nodes", static_cast<std::uint64_t>(ft.nodes));
    w.field("placements", static_cast<std::uint64_t>(ft.placements));
    w.field("offered_requests",
            static_cast<std::uint64_t>(ft.offered));
    w.field("jsq_warm_compiles", ft.jsqWarm);
    w.field("affinity_warm_compiles", ft.affinityWarm);
    w.field("jsq_util_jain", ft.jsqJain);
    w.field("affinity_util_jain", ft.affinityJain);
    w.field("sweep_ms", ft.runMs);
    w.endObject();
}

/**
 * Zero-overhead-when-off pin: the same experiment (compile + replay)
 * with observability off — the `tracer_ == nullptr` branch every emit
 * site reduces to — and with a full observer (event sink + counters)
 * attached. The off number rides the tracked headline trajectory;
 * the on/off ratio documents what `--trace --metrics` costs.
 */
struct TracerOverheadTimes
{
    double offMs = 0.0;
    double onMs = 0.0;
    std::size_t events = 0;
    std::uint64_t counters = 0;
};

TracerOverheadTimes
timeTracerOverhead(unsigned scale, int reps)
{
    TracerOverheadTimes out;
    const int batch = paperBatchSize(ModelKind::ResNet152);
    KernelTrace trace =
        buildModelScaled(ModelKind::ResNet152, batch, scale);

    ExperimentConfig cfg;
    cfg.model = ModelKind::ResNet152;
    cfg.batchSize = batch;
    cfg.sys = SystemConfig().scaledDown(scale);
    cfg.scaleDown = 1;
    cfg.design = "g10";

    out.offMs = bestMs(reps, [&] {
        ExecStats st = runExperimentOnTrace(trace, cfg);
        if (st.failed)
            std::abort();
    });
    out.onMs = bestMs(reps, [&] {
        MemoryTraceSink sink;
        CounterRegistry reg;
        Tracer tracer(&sink, &reg);
        ExecStats st = runExperimentOnTrace(trace, cfg, &tracer);
        if (st.failed)
            std::abort();
        out.events = sink.events().size();
        out.counters =
            static_cast<std::uint64_t>(reg.counters().size());
    });
    return out;
}

void
writeTracerOverheadEntry(JsonWriter& w, const TracerOverheadTimes& to)
{
    w.beginObject();
    w.field("replay_off_ms", to.offMs);
    w.field("replay_traced_ms", to.onMs);
    w.field("events", static_cast<std::uint64_t>(to.events));
    w.field("counters", to.counters);
    w.field("traced_over_off",
            to.offMs > 0.0 ? to.onMs / to.offMs : 0.0);
    w.endObject();
}

/** `git describe --always --dirty`, empty when unavailable. */
std::string
gitDescribe()
{
    FILE* p = popen("git describe --always --dirty 2>/dev/null", "r");
    if (!p)
        return "";
    char buf[128] = {0};
    std::string out;
    if (std::fgets(buf, sizeof(buf), p))
        out = buf;
    pclose(p);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out;
}

void
writeMeta(JsonWriter& w)
{
    const char* ts = std::getenv("G10_BENCH_TIMESTAMP");
    char host[256] = {0};
    if (gethostname(host, sizeof(host) - 1) != 0)
        host[0] = '\0';
    w.beginObject();
    w.field("timestamp", ts ? ts : "");
    w.field("host", host);
    w.field("compiler", __VERSION__);
    w.field("git", gitDescribe());
    w.endObject();
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_core.json";
    unsigned scale = 16;
    if (const char* s = std::getenv("G10_SCALE")) {
        int v = std::atoi(s);
        if (v >= 1)
            scale = static_cast<unsigned>(v);
    }
    int reps = 3;
    if (const char* r = std::getenv("G10_PERF_REPS")) {
        int v = std::atoi(r);
        if (v >= 1)
            reps = v;
    }

    const std::vector<std::string> designs = {"baseuvm", "deepum", "g10"};

    std::cerr << "perf trajectory: zoo sweep at 1/" << scale
              << " scale, best of " << reps << " reps\n";
    std::vector<StageTimes> entries;
    for (ModelKind m : allModels())
        entries.push_back(timeWorkload(m, scale, reps, designs));

    // Headline number: the largest trace at paper scale under the full
    // G10 design -- the configuration the acceptance trajectory tracks.
    std::cerr << "perf trajectory: headline (ResNet152, paper scale)\n";
    StageTimes headline =
        timeWorkload(ModelKind::ResNet152, 1, reps, {"g10"});

    // Served load: the g10serve demo sweep (3 designs x 3 rates of
    // open-loop traffic with churn and warm-started re-compiles),
    // once under static slots and once under ondemand elastic
    // partitions (resizes, splits, warm replans across capacities).
    std::cerr << "perf trajectory: served load (demo sweep, 1/"
              << scale << " scale)\n";
    ServeTimes served =
        timeServedLoad(scale, reps, PartitionPolicy::Static);
    ServeTimes servedElastic =
        timeServedLoad(scale, reps, PartitionPolicy::OnDemand);

    // The capacity deliverable: elastic vs static sustained-
    // throughput knee on the demo mix (auto-bisected).
    std::cerr << "perf trajectory: elastic capacity knee search (1/"
              << scale << " scale)\n";
    CapacityTimes capacity = timeElasticCapacity(scale);

    // Fleet sweep: the g10fleet demo (4 heterogeneous nodes x 3
    // placements over one stream) — the router's trajectory entry.
    std::cerr << "perf trajectory: fleet sweep (demo fleet, 1/"
              << scale << " scale)\n";
    FleetTimes fleetSweep = timeFleetSweep(scale, reps);

    // Observability pin: tracing off must stay on the null-pointer
    // fast path; tracing on is allowed to cost, but gets tracked.
    std::cerr << "perf trajectory: tracer on/off overhead (1/" << scale
              << " scale)\n";
    TracerOverheadTimes tracerOverhead =
        timeTracerOverhead(scale, reps);

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 1;
    }
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("schema", "g10.bench_core.v1");
        w.key("meta");
        writeMeta(w);
        w.field("scale", static_cast<std::int64_t>(scale));
        w.field("reps", static_cast<std::int64_t>(reps));
        w.key("headline");
        writeEntry(w, headline);
        w.key("tracer_overhead");
        writeTracerOverheadEntry(w, tracerOverhead);
        w.key("served_load");
        writeServeEntry(w, served);
        w.key("served_load_elastic");
        writeServeEntry(w, servedElastic);
        w.key("elastic_capacity");
        writeCapacityEntry(w, capacity);
        w.key("fleet_sweep");
        writeFleetEntry(w, fleetSweep);
        w.key("workloads").beginArray();
        for (const StageTimes& st : entries)
            writeEntry(w, st);
        w.endArray();
        w.endObject();
    }
    os << "\n";
    os.close();

    std::cerr << "perf trajectory: wrote " << out_path << " ("
              << "headline compile " << headline.compileMs
              << " ms, compile+replay "
              << headline.compileMs + headline.replayMs.front().second
              << " ms)\n";
    return 0;
}
