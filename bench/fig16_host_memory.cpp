/**
 * @file
 * Figure 16: G10 execution time as host DRAM capacity varies.
 *
 * Expected shape: a modest host staging area (32 GB at paper scale) is
 * enough for most models at small batch; the needed capacity grows
 * with batch size; execution time falls monotonically (to a floor) as
 * host memory grows.
 */

#include "bench/bench_util.h"

int
main()
{
    using namespace g10;
    using namespace g10::bench;

    unsigned scale = scaleFromEnv(32);
    banner("Figure 16: G10 execution time vs. host memory capacity",
           scale);

    const std::map<ModelKind, std::vector<int>> batches = {
        {ModelKind::BertBase, {256, 384, 512, 640}},
        {ModelKind::ViT, {768, 1024, 1280, 1536}},
        {ModelKind::Inceptionv3, {512, 1024, 1280, 1536}},
        {ModelKind::ResNet152, {768, 1024, 1280, 1536}},
        {ModelKind::SENet154, {256, 512, 768, 1024}},
    };
    const std::vector<unsigned> host_gb = {0, 32, 64, 128, 256};

    SystemConfig sys;
    TraceCache cache;
    for (ModelKind m : allModels()) {
        Table table(std::string("Fig 16 (") + modelName(m) +
                    "): iteration time in seconds (paper-equivalent "
                    "= x scale), rows = batch");
        std::vector<std::string> header = {"batch\\hostGB"};
        for (unsigned h : host_gb)
            header.push_back(std::to_string(h));
        table.setHeader(header);

        for (int b : batches.at(m)) {
            const KernelTrace& trace = cache.get(m, b, scale);
            std::vector<std::string> row = {std::to_string(b)};
            for (unsigned h : host_gb) {
                SystemConfig s = sys;
                s.hostMemBytes = static_cast<Bytes>(h) * GiB;
                ExecStats st =
                    runDesign(trace, "g10", s, scale);
                row.push_back(
                    st.failed
                        ? "fail"
                        : Table::formatCell(
                              static_cast<double>(
                                  st.measuredIterationNs) /
                              1e9 * static_cast<double>(scale)));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
