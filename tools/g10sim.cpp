/**
 * @file
 * g10sim -- config-driven single-experiment runner, the equivalent of
 * the paper artifact's `gpg <config>` workflow.
 *
 * Usage:
 *   g10sim [--format table|json|csv] <config-file>
 *   g10sim --mix <mix-file> [--format table|json|csv]
 *   g10sim --list-designs [--format table|json|csv]
 *   g10sim --dump-trace <model> <batch> <scale> <out.trace>
 *   g10sim --help
 *
 * Observability (see README "Observability"):
 *   --trace <out.json>   Chrome trace-event timeline of the run
 *   --metrics            print a g10.metrics.v1 counter document
 *   --attribution        per-kernel stall attribution table
 *   --log-level <l>      silent|warn|info|debug
 *
 * Config files are `key = value` lines ('#' comments). Unknown keys
 * and malformed values are rejected with a diagnostic and non-zero
 * exit. Keys:
 *   model        BERT|ViT|Inceptionv3|ResNet152|SENet154
 *   trace        path to a saved .trace file (overrides model/batch)
 *   batch        paper-scale batch size       (default: model's Fig.11)
 *   scale        1/N platform scale           (default 16)
 *   design       any registered design name (see --list-designs)
 *   iterations   replay count, last measured  (default 2)
 *   timing_error fraction, e.g. 0.2 = +-20%   (default 0)
 *   seed         RNG seed                     (default 42)
 *   weight_watermark  fraction of GPU memory weights may fill (0.85)
 *   uvm_extension     0|1 force the unified page table off/on
 *                     (default: the design's own setting)
 *   gpu_mem_gb / host_mem_gb / ssd_gbps / pcie_gbps   platform knobs
 *   listing      N  -> print the first N kernels of the instrumented
 *                      program (G10 designs only)
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/g10.h"
#include "common/parse_util.h"
#include "graph/trace_io.h"
#include "obs/analysis/diff_attribution.h"
#include "obs/attribution.h"
#include "tools/cli_util.h"

namespace {

using namespace g10;

const std::set<std::string> kKnownKeys = {
    "model",      "trace",       "batch",        "scale",
    "design",     "iterations",  "timing_error", "seed",
    "gpu_mem_gb", "host_mem_gb", "ssd_gbps",     "pcie_gbps",
    "listing",    "weight_watermark",            "uvm_extension",
};

int
usage(std::ostream& os, int code)
{
    os << "usage: g10sim [--format table|json|csv] <config-file>\n"
          "       g10sim --mix <mix-file> [--format ...]\n"
          "       g10sim --list-designs [--format ...]\n"
          "       g10sim --dump-trace <model> <batch> <scale> <out>\n"
          "       g10sim --help\n"
          "\n"
          "Observability (config runs and --mix):\n"
          "  --trace <out.json>  write a Chrome trace-event timeline\n"
          "                      (load at chrome://tracing / Perfetto)\n"
          "  --metrics           print a g10.metrics.v1 JSON document\n"
          "  --attribution       per-kernel stall attribution table\n"
          "                      (config runs only)\n"
          "  --attribution-diff <design>\n"
          "                      also run <design> as a baseline on\n"
          "                      the same trace and print per-kernel\n"
          "                      per-cause savings (config runs only;\n"
          "                      see also g10trace diff)\n"
          "  --log-level <l>     silent|warn|info|debug (default warn)\n"
          "\n"
          "Config file: '#' comments; 'key = value' lines. Keys:\n"
          "  model        BERT|ViT|Inceptionv3|ResNet152|SENet154\n"
          "  trace        path to a saved .trace file\n"
          "  batch        paper-scale batch size\n"
          "  scale        1/N platform scale (default 16)\n"
          "  design       registered design name (default g10);\n"
          "               run 'g10sim --list-designs' for the list\n"
          "  iterations   replay count, last measured (default 2)\n"
          "  timing_error kernel-time noise fraction (default 0)\n"
          "  seed         RNG seed (default 42)\n"
          "  weight_watermark  weight-placement cap (default 0.85)\n"
          "  uvm_extension     0|1 override the design's default\n"
          "  gpu_mem_gb / host_mem_gb / ssd_gbps / pcie_gbps\n"
          "  listing      N -> print first N instrumented kernels\n"
          "\n"
          "Unknown keys and malformed values are errors.\n"
          "For multi-tenant mix files, see g10multi --help.\n";
    return code;
}

std::map<std::string, std::string>
parseConfig(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open config '%s'", path.c_str());
    std::map<std::string, std::string> kv;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(f, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::stringstream ss(line);
        std::string key, eq, value, extra;
        if (!(ss >> key))
            continue;
        if (!(ss >> eq >> value) || eq != "=")
            fatal("%s:%zu: expected 'key = value'", path.c_str(),
                  lineno);
        if (ss >> extra)
            fatal("%s:%zu: trailing garbage '%s' after value",
                  path.c_str(), lineno, extra.c_str());
        if (kKnownKeys.count(key) == 0)
            fatal("%s:%zu: unknown key '%s' (run 'g10sim --help' for "
                  "the full list)",
                  path.c_str(), lineno, key.c_str());
        if (kv.count(key))
            fatal("%s:%zu: duplicate key '%s'", path.c_str(), lineno,
                  key.c_str());
        kv[key] = value;
    }
    return kv;
}

/** Fetch an integer key with range checking; fatal on bad values. */
long long
intKey(const std::map<std::string, std::string>& kv,
       const std::string& key, long long def, long long lo,
       long long hi)
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    long long v = 0;
    if (!parseIntStrict(it->second, &v))
        fatal("config key '%s' needs an integer, got '%s'",
              key.c_str(), it->second.c_str());
    if (v < lo || v > hi)
        fatal("config key '%s' must be in [%lld, %lld], got %lld",
              key.c_str(), lo, hi, v);
    return v;
}

/** Fetch a double key with range checking; fatal on bad values. */
double
doubleKey(const std::map<std::string, std::string>& kv,
          const std::string& key, double def, double lo, double hi)
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    double v = 0.0;
    if (!parseDoubleStrict(it->second, &v))
        fatal("config key '%s' needs a number, got '%s'", key.c_str(),
              it->second.c_str());
    if (v < lo || v > hi)
        fatal("config key '%s' must be in [%g, %g], got %g",
              key.c_str(), lo, hi, v);
    return v;
}

int
dumpTrace(const std::vector<std::string>& args)
{
    if (args.size() != 4)
        fatal("usage: g10sim --dump-trace <model> <batch> <scale> "
              "<out.trace>");
    ModelKind m = modelKindFromName(args[0]);
    long long batch = 0;
    long long scale = 0;
    if (!parseIntStrict(args[1], &batch) || batch < 1 ||
        batch > (1 << 24))
        fatal("--dump-trace batch must be an integer in [1, %d], got "
              "'%s'",
              1 << 24, args[1].c_str());
    if (!parseIntStrict(args[2], &scale) || scale < 1 ||
        scale > (1 << 20))
        fatal("--dump-trace scale must be an integer in [1, %d], got "
              "'%s'",
              1 << 20, args[2].c_str());
    KernelTrace trace = buildModelScaled(m, static_cast<int>(batch),
                                         static_cast<unsigned>(scale));
    saveTraceFile(args[3], trace);
    std::cout << "wrote " << trace.numKernels() << " kernels / "
              << trace.numTensors() << " tensors to " << args[3]
              << "\n";
    return 0;
}

int
runMix(const std::string& path, const tools::CliArgs& args)
{
    const ReportFormat format = args.format;
    WorkloadMix mix = parseMixFile(path);
    if (format == ReportFormat::Table)
        std::cout << "# g10sim --mix: " << mix.jobs.size()
                  << " jobs on one GPU+SSD, scale 1/" << mix.scaleDown
                  << ", sched " << mixSchedName(mix.sched) << "\n\n";
    MultiTenantSim sim(mix);

    tools::CliObservers obs;
    obs.wantEvents = !args.tracePath.empty();
    obs.wantCounters = args.metrics;
    sim.setTracer(obs.tracerOrNull());

    MixResult res = sim.run();
    int code = printMixResult(std::cout, res, format);
    if (!args.tracePath.empty()) {
        std::map<int, std::string> names;
        for (std::size_t i = 0; i < res.jobs.size(); ++i)
            names[static_cast<int>(i)] = res.jobs[i].name;
        tools::writeTraceFile(args.tracePath, obs.sink, names);
    }
    if (args.metrics)
        writeMetricsJson(std::cout, obs.counters);
    return code;
}

int
runConfig(const std::string& path, const tools::CliArgs& args)
{
    const ReportFormat format = args.format;
    auto kv = parseConfig(path);

    auto scale = static_cast<unsigned>(
        intKey(kv, "scale", 16, 1, 1 << 20));

    KernelTrace trace;
    ModelKind model = ModelKind::ResNet152;
    int batch = 0;
    if (kv.count("trace")) {
        trace = loadTraceFile(kv["trace"]);
        batch = trace.batchSize();
        // Keep the config echo honest: map the trace's model back to
        // the zoo when possible (synthetic traces stay unmapped).
        if (!tryModelKindFromName(trace.modelName(), &model))
            warn("trace model '%s' is not a zoo model; the config echo "
                 "reports %s",
                 trace.modelName().c_str(), modelName(model));
    } else {
        model = modelKindFromName(
            kv.count("model") ? kv["model"] : "ResNet152");
        batch = static_cast<int>(
            intKey(kv, "batch", paperBatchSize(model), 1, 1 << 24));
        trace = buildModelScaled(model, batch, scale);
    }

    SystemConfig sys = SystemConfig().scaledDown(scale);
    if (kv.count("gpu_mem_gb"))
        sys.gpuMemBytes = static_cast<Bytes>(
            doubleKey(kv, "gpu_mem_gb", 0, 1e-3, 1e6) * 1e9);
    // host_mem_gb = 0 is a meaningful platform (Fig. 17's no-host
    // -staging point), so it keeps a zero lower bound.
    if (kv.count("host_mem_gb"))
        sys.hostMemBytes = static_cast<Bytes>(
            doubleKey(kv, "host_mem_gb", 0, 0, 1e6) * 1e9);
    if (kv.count("ssd_gbps"))
        sys.setSsdBandwidthGBps(
            doubleKey(kv, "ssd_gbps", 0, 1e-3, 1e6));
    if (kv.count("pcie_gbps"))
        sys.pcieGBps = doubleKey(kv, "pcie_gbps", 0, 1e-3, 1e6);

    ExperimentConfig cfg;
    cfg.model = model;
    cfg.batchSize = batch;
    cfg.sys = sys;
    cfg.scaleDown = 1;
    cfg.design = kv.count("design") ? kv["design"] : "g10";
    // Resolve now: unknown names fail with the registered list.
    const PolicyInfo& design =
        PolicyRegistry::instance().resolve(cfg.design);
    cfg.iterations =
        static_cast<int>(intKey(kv, "iterations", 2, 1, 1000));
    cfg.timingErrorPct = doubleKey(kv, "timing_error", 0.0, 0.0, 1.0);
    cfg.seed = static_cast<std::uint64_t>(
        intKey(kv, "seed", 42, 0, INT64_MAX));
    cfg.weightWatermark =
        doubleKey(kv, "weight_watermark", 0.85, 0.01, 1.0);
    cfg.uvmExtension =
        static_cast<int>(intKey(kv, "uvm_extension", -1, 0, 1));

    auto listing = static_cast<int>(intKey(kv, "listing", 0, 0, 1 << 20));
    bool g10Design =
        design.builtinTag == static_cast<int>(DesignPoint::G10) ||
        design.builtinTag == static_cast<int>(DesignPoint::G10Host) ||
        design.builtinTag == static_cast<int>(DesignPoint::G10Gds);
    if (listing > 0 && g10Design) {
        CompiledPlan plan = compileG10Plan(trace, sys);
        printInstrumentedProgram(std::cout, *plan.vitality, plan.plan,
                                 0, listing);
        std::cout << "\n";
    }

    // Observability: --attribution and --attribution-diff need the
    // event stream even when no --trace path was given, so they force
    // event collection.
    const std::string diffBase = args.valueOf("--attribution-diff");
    tools::CliObservers obs;
    obs.wantEvents = !args.tracePath.empty() ||
                     args.has("--attribution") || !diffBase.empty();
    obs.wantCounters = args.metrics;

    RunResult result =
        runExperimentResultOnTrace(trace, cfg, obs.tracerOrNull());
    int code = printRunResult(std::cout, result, format);
    if (args.has("--attribution")) {
        StallAttribution attr =
            buildStallAttribution(obs.sink.events(), trace);
        std::cout << "\n";
        printStallAttribution(std::cout, attr);
    }
    if (!diffBase.empty()) {
        // Baseline leg: same trace, same platform, only the design
        // swapped — so every delta is attributable to the design.
        ExperimentConfig baseCfg = cfg;
        baseCfg.design =
            PolicyRegistry::instance().resolve(diffBase).name;
        tools::CliObservers baseObs;
        baseObs.wantEvents = true;
        runExperimentResultOnTrace(trace, baseCfg,
                                   baseObs.tracerOrNull());
        DiffAttribution diff = diffStallAttribution(
            buildStallAttribution(baseObs.sink.events(), trace),
            buildStallAttribution(obs.sink.events(), trace),
            baseCfg.design, cfg.design);
        if (format == ReportFormat::Json) {
            writeDiffAttributionJson(std::cout, diff);
        } else {
            std::cout << "\n";
            printDiffAttribution(std::cout, diff);
        }
    }
    if (!args.tracePath.empty()) {
        std::map<int, std::string> names;
        names[0] = trace.modelName() + "-" +
                   std::to_string(trace.batchSize());
        tools::writeTraceFile(args.tracePath, obs.sink, names);
    }
    if (args.metrics)
        writeMetricsJson(std::cout, obs.counters);
    return code;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace g10;

    tools::CliArgs args = tools::parseCliArgs(
        argc, argv, {"--mix", "--dump-trace", "--attribution"},
        {"--attribution-diff"});
    if (args.help)
        return usage(std::cout, 0);
    if (!args.error.empty()) {
        std::cerr << args.error << "\n";
        return usage(std::cerr, 1);
    }

    if (args.listDesigns) {
        if (!args.flags.empty() || !args.positional.empty())
            return usage(std::cerr, 1);
        printDesignList(std::cout, args.format);
        return 0;
    }
    if (args.has("--dump-trace"))
        return dumpTrace(args.positional);
    if (args.has("--mix")) {
        if (args.positional.size() != 1 ||
            args.has("--attribution") ||
            !args.valueOf("--attribution-diff").empty())
            return usage(std::cerr, 1);
        return runMix(args.positional[0], args);
    }
    if (args.positional.size() != 1)
        return usage(std::cerr, 1);
    return runConfig(args.positional[0], args);
}
