/**
 * @file
 * g10sim -- config-driven single-experiment runner, the equivalent of
 * the paper artifact's `gpg <config>` workflow.
 *
 * Usage:
 *   g10sim <config-file>
 *   g10sim --mix <mix-file>
 *   g10sim --dump-trace <model> <batch> <scale> <out.trace>
 *   g10sim --help
 *
 * Config files are `key = value` lines ('#' comments). Unknown keys
 * and malformed values are rejected with a diagnostic and non-zero
 * exit. Keys:
 *   model        BERT|ViT|Inceptionv3|ResNet152|SENet154
 *   trace        path to a saved .trace file (overrides model/batch)
 *   batch        paper-scale batch size       (default: model's Fig.11)
 *   scale        1/N platform scale           (default 16)
 *   design       ideal|baseuvm|deepum|flashneuron|g10gds|g10host|g10
 *   iterations   replay count, last measured  (default 2)
 *   timing_error fraction, e.g. 0.2 = +-20%   (default 0)
 *   seed         RNG seed                     (default 42)
 *   gpu_mem_gb / host_mem_gb / ssd_gbps / pcie_gbps   platform knobs
 *   listing      N  -> print the first N kernels of the instrumented
 *                      program (G10 designs only)
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "api/g10.h"
#include "common/parse_util.h"
#include "graph/trace_io.h"

namespace {

using namespace g10;

const std::set<std::string> kKnownKeys = {
    "model",      "trace",       "batch",    "scale",
    "design",     "iterations",  "timing_error", "seed",
    "gpu_mem_gb", "host_mem_gb", "ssd_gbps", "pcie_gbps",
    "listing",
};

int
usage(std::ostream& os, int code)
{
    os << "usage: g10sim <config-file>\n"
          "       g10sim --mix <mix-file>\n"
          "       g10sim --dump-trace <model> <batch> <scale> <out>\n"
          "       g10sim --help\n"
          "\n"
          "Config file: '#' comments; 'key = value' lines. Keys:\n"
          "  model        BERT|ViT|Inceptionv3|ResNet152|SENet154\n"
          "  trace        path to a saved .trace file\n"
          "  batch        paper-scale batch size\n"
          "  scale        1/N platform scale (default 16)\n"
          "  design       ideal|baseuvm|deepum|flashneuron|g10gds|\n"
          "               g10host|g10 (default g10)\n"
          "  iterations   replay count, last measured (default 2)\n"
          "  timing_error kernel-time noise fraction (default 0)\n"
          "  seed         RNG seed (default 42)\n"
          "  gpu_mem_gb / host_mem_gb / ssd_gbps / pcie_gbps\n"
          "  listing      N -> print first N instrumented kernels\n"
          "\n"
          "Unknown keys and malformed values are errors.\n"
          "For multi-tenant mix files, see g10multi --help.\n";
    return code;
}

std::map<std::string, std::string>
parseConfig(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open config '%s'", path.c_str());
    std::map<std::string, std::string> kv;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(f, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::stringstream ss(line);
        std::string key, eq, value, extra;
        if (!(ss >> key))
            continue;
        if (!(ss >> eq >> value) || eq != "=")
            fatal("%s:%zu: expected 'key = value'", path.c_str(),
                  lineno);
        if (ss >> extra)
            fatal("%s:%zu: trailing garbage '%s' after value",
                  path.c_str(), lineno, extra.c_str());
        if (kKnownKeys.count(key) == 0)
            fatal("%s:%zu: unknown key '%s' (run 'g10sim --help' for "
                  "the full list)",
                  path.c_str(), lineno, key.c_str());
        if (kv.count(key))
            fatal("%s:%zu: duplicate key '%s'", path.c_str(), lineno,
                  key.c_str());
        kv[key] = value;
    }
    return kv;
}

/** Fetch an integer key with range checking; fatal on bad values. */
long long
intKey(const std::map<std::string, std::string>& kv,
       const std::string& key, long long def, long long lo,
       long long hi)
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    long long v = 0;
    if (!parseIntStrict(it->second, &v))
        fatal("config key '%s' needs an integer, got '%s'",
              key.c_str(), it->second.c_str());
    if (v < lo || v > hi)
        fatal("config key '%s' must be in [%lld, %lld], got %lld",
              key.c_str(), lo, hi, v);
    return v;
}

/** Fetch a double key with range checking; fatal on bad values. */
double
doubleKey(const std::map<std::string, std::string>& kv,
          const std::string& key, double def, double lo, double hi)
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    double v = 0.0;
    if (!parseDoubleStrict(it->second, &v))
        fatal("config key '%s' needs a number, got '%s'", key.c_str(),
              it->second.c_str());
    if (v < lo || v > hi)
        fatal("config key '%s' must be in [%g, %g], got %g",
              key.c_str(), lo, hi, v);
    return v;
}

int
dumpTrace(int argc, char** argv)
{
    if (argc != 6)
        fatal("usage: g10sim --dump-trace <model> <batch> <scale> "
              "<out.trace>");
    ModelKind m = modelKindFromName(argv[2]);
    long long batch = 0;
    long long scale = 0;
    if (!parseIntStrict(argv[3], &batch) || batch < 1 ||
        batch > (1 << 24))
        fatal("--dump-trace batch must be an integer in [1, %d], got "
              "'%s'",
              1 << 24, argv[3]);
    if (!parseIntStrict(argv[4], &scale) || scale < 1 ||
        scale > (1 << 20))
        fatal("--dump-trace scale must be an integer in [1, %d], got "
              "'%s'",
              1 << 20, argv[4]);
    KernelTrace trace = buildModelScaled(m, static_cast<int>(batch),
                                         static_cast<unsigned>(scale));
    saveTraceFile(argv[5], trace);
    std::cout << "wrote " << trace.numKernels() << " kernels / "
              << trace.numTensors() << " tensors to " << argv[5]
              << "\n";
    return 0;
}

int
runMix(const std::string& path)
{
    WorkloadMix mix = parseMixFile(path);
    std::cout << "# g10sim --mix: " << mix.jobs.size()
              << " jobs on one GPU+SSD, scale 1/" << mix.scaleDown
              << ", sched " << mixSchedName(mix.sched) << "\n\n";
    MultiTenantSim sim(mix);
    MixResult res = sim.run();
    printMixReport(std::cout, res);
    return res.allSucceeded() ? 0 : 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace g10;

    if (argc >= 2) {
        std::string arg1 = argv[1];
        if (arg1 == "--help" || arg1 == "-h")
            return usage(std::cout, 0);
        if (arg1 == "--dump-trace")
            return dumpTrace(argc, argv);
        if (arg1 == "--mix") {
            if (argc != 3)
                return usage(std::cerr, 1);
            return runMix(argv[2]);
        }
    }
    if (argc != 2)
        return usage(std::cerr, 1);

    auto kv = parseConfig(argv[1]);

    auto scale = static_cast<unsigned>(
        intKey(kv, "scale", 16, 1, 1 << 20));

    KernelTrace trace;
    if (kv.count("trace")) {
        trace = loadTraceFile(kv["trace"]);
    } else {
        ModelKind m = modelKindFromName(
            kv.count("model") ? kv["model"] : "ResNet152");
        auto batch = static_cast<int>(
            intKey(kv, "batch", paperBatchSize(m), 1, 1 << 24));
        trace = buildModelScaled(m, batch, scale);
    }

    SystemConfig sys = SystemConfig().scaledDown(scale);
    if (kv.count("gpu_mem_gb"))
        sys.gpuMemBytes = static_cast<Bytes>(
            doubleKey(kv, "gpu_mem_gb", 0, 1e-3, 1e6) * 1e9);
    // host_mem_gb = 0 is a meaningful platform (Fig. 17's no-host
    // -staging point), so it keeps a zero lower bound.
    if (kv.count("host_mem_gb"))
        sys.hostMemBytes = static_cast<Bytes>(
            doubleKey(kv, "host_mem_gb", 0, 0, 1e6) * 1e9);
    if (kv.count("ssd_gbps"))
        sys.setSsdBandwidthGBps(
            doubleKey(kv, "ssd_gbps", 0, 1e-3, 1e6));
    if (kv.count("pcie_gbps"))
        sys.pcieGBps = doubleKey(kv, "pcie_gbps", 0, 1e-3, 1e6);

    ExperimentConfig cfg;
    cfg.sys = sys;
    cfg.scaleDown = 1;
    cfg.design = designPointFromName(
        kv.count("design") ? kv["design"] : "g10");
    cfg.iterations =
        static_cast<int>(intKey(kv, "iterations", 2, 1, 1000));
    cfg.timingErrorPct = doubleKey(kv, "timing_error", 0.0, 0.0, 1.0);
    cfg.seed = static_cast<std::uint64_t>(
        intKey(kv, "seed", 42, 0, INT64_MAX));

    auto listing = static_cast<int>(intKey(kv, "listing", 0, 0, 1 << 20));
    if (listing > 0 &&
        (cfg.design == DesignPoint::G10 ||
         cfg.design == DesignPoint::G10Host ||
         cfg.design == DesignPoint::G10Gds)) {
        CompiledPlan plan = compileG10Plan(trace, sys);
        printInstrumentedProgram(std::cout, *plan.vitality, plan.plan,
                                 0, listing);
        std::cout << "\n";
    }

    ExecStats st = runExperimentOnTrace(trace, cfg);

    Table out("g10sim result");
    out.setHeader({"key", "value"});
    out.addRowOf("model", st.modelName.c_str());
    out.addRowOf("batch", st.batchSize);
    out.addRowOf("design", st.policyName.c_str());
    if (st.failed) {
        out.addRowOf("status", "FAILED");
        out.addRowOf("reason", st.failReason.c_str());
        out.print(std::cout);
        return 2;
    }
    out.addRowOf("status", "ok");
    out.addRowOf("iteration_s",
                 static_cast<double>(st.measuredIterationNs) / 1e9);
    out.addRowOf("ideal_s",
                 static_cast<double>(st.idealIterationNs) / 1e9);
    out.addRowOf("normalized_perf", st.normalizedPerf());
    out.addRowOf("throughput_sps", st.throughput());
    out.addRowOf("stall_s",
                 static_cast<double>(st.totalStallNs) / 1e9);
    out.addRowOf("fault_batches",
                 static_cast<unsigned long long>(st.pageFaultBatches));
    out.addRowOf("gpu_ssd_GB",
                 static_cast<double>(st.traffic.gpuToSsd +
                                     st.traffic.ssdToGpu) / 1e9);
    out.addRowOf("gpu_host_GB",
                 static_cast<double>(st.traffic.gpuToHost +
                                     st.traffic.hostToGpu) / 1e9);
    out.addRowOf("ssd_waf", st.ssd.waf());
    out.print(std::cout);
    return 0;
}
