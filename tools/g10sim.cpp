/**
 * @file
 * g10sim -- config-driven single-experiment runner, the equivalent of
 * the paper artifact's `gpg <config>` workflow.
 *
 * Usage:
 *   g10sim <config-file>
 *   g10sim --dump-trace <model> <batch> <scale> <out.trace>
 *
 * Config files are `key = value` lines ('#' comments). Keys:
 *   model        BERT|ViT|Inceptionv3|ResNet152|SENet154
 *   trace        path to a saved .trace file (overrides model/batch)
 *   batch        paper-scale batch size       (default: model's Fig.11)
 *   scale        1/N platform scale           (default 16)
 *   design       ideal|baseuvm|deepum|flashneuron|g10gds|g10host|g10
 *   iterations   replay count, last measured  (default 2)
 *   timing_error fraction, e.g. 0.2 = +-20%   (default 0)
 *   seed         RNG seed                     (default 42)
 *   gpu_mem_gb / host_mem_gb / ssd_gbps / pcie_gbps   platform knobs
 *   listing      N  -> print the first N kernels of the instrumented
 *                      program (G10 designs only)
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "api/g10.h"
#include "graph/trace_io.h"

namespace {

using namespace g10;

std::map<std::string, std::string>
parseConfig(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open config '%s'", path.c_str());
    std::map<std::string, std::string> kv;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(f, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::stringstream ss(line);
        std::string key, eq, value;
        if (!(ss >> key))
            continue;
        if (!(ss >> eq >> value) || eq != "=")
            fatal("%s:%zu: expected 'key = value'", path.c_str(),
                  lineno);
        kv[key] = value;
    }
    return kv;
}

DesignPoint
designFromString(std::string s)
{
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == "ideal") return DesignPoint::Ideal;
    if (s == "baseuvm" || s == "uvm") return DesignPoint::BaseUvm;
    if (s == "deepum" || s == "deepum+") return DesignPoint::DeepUmPlus;
    if (s == "flashneuron") return DesignPoint::FlashNeuron;
    if (s == "g10gds" || s == "g10-gds") return DesignPoint::G10Gds;
    if (s == "g10host" || s == "g10-host") return DesignPoint::G10Host;
    if (s == "g10") return DesignPoint::G10;
    fatal("unknown design '%s'", s.c_str());
}

int
dumpTrace(int argc, char** argv)
{
    if (argc != 6)
        fatal("usage: g10sim --dump-trace <model> <batch> <scale> "
              "<out.trace>");
    ModelKind m = modelKindFromName(argv[2]);
    int batch = std::atoi(argv[3]);
    auto scale = static_cast<unsigned>(std::atoi(argv[4]));
    KernelTrace trace = buildModelScaled(m, batch, scale);
    saveTraceFile(argv[5], trace);
    std::cout << "wrote " << trace.numKernels() << " kernels / "
              << trace.numTensors() << " tensors to " << argv[5]
              << "\n";
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace g10;

    if (argc >= 2 && std::string(argv[1]) == "--dump-trace")
        return dumpTrace(argc, argv);
    if (argc != 2) {
        std::cerr << "usage: g10sim <config-file> | g10sim "
                     "--dump-trace <model> <batch> <scale> <out>\n";
        return 1;
    }

    auto kv = parseConfig(argv[1]);
    auto get = [&](const std::string& k, const std::string& def) {
        auto it = kv.find(k);
        return it == kv.end() ? def : it->second;
    };

    unsigned scale =
        static_cast<unsigned>(std::stoul(get("scale", "16")));

    KernelTrace trace;
    if (kv.count("trace")) {
        trace = loadTraceFile(kv["trace"]);
    } else {
        ModelKind m = modelKindFromName(get("model", "ResNet152"));
        int batch = std::stoi(get(
            "batch", std::to_string(paperBatchSize(m))));
        trace = buildModelScaled(m, batch, scale);
    }

    SystemConfig sys = SystemConfig().scaledDown(scale);
    if (kv.count("gpu_mem_gb"))
        sys.gpuMemBytes = static_cast<Bytes>(
            std::stod(kv["gpu_mem_gb"]) * 1e9);
    if (kv.count("host_mem_gb"))
        sys.hostMemBytes = static_cast<Bytes>(
            std::stod(kv["host_mem_gb"]) * 1e9);
    if (kv.count("ssd_gbps")) {
        sys.ssdReadGBps = std::stod(kv["ssd_gbps"]);
        sys.ssdWriteGBps = sys.ssdReadGBps * (3.0 / 3.2);
    }
    if (kv.count("pcie_gbps"))
        sys.pcieGBps = std::stod(kv["pcie_gbps"]);

    ExperimentConfig cfg;
    cfg.sys = sys;
    cfg.scaleDown = 1;
    cfg.design = designFromString(get("design", "g10"));
    cfg.iterations = std::stoi(get("iterations", "2"));
    cfg.timingErrorPct = std::stod(get("timing_error", "0"));
    cfg.seed = std::stoull(get("seed", "42"));

    int listing = std::stoi(get("listing", "0"));
    if (listing > 0 &&
        (cfg.design == DesignPoint::G10 ||
         cfg.design == DesignPoint::G10Host ||
         cfg.design == DesignPoint::G10Gds)) {
        CompiledPlan plan = compileG10Plan(trace, sys);
        printInstrumentedProgram(std::cout, *plan.vitality, plan.plan,
                                 0, listing);
        std::cout << "\n";
    }

    ExecStats st = runExperimentOnTrace(trace, cfg);

    Table out("g10sim result");
    out.setHeader({"key", "value"});
    out.addRowOf("model", st.modelName.c_str());
    out.addRowOf("batch", st.batchSize);
    out.addRowOf("design", st.policyName.c_str());
    if (st.failed) {
        out.addRowOf("status", "FAILED");
        out.addRowOf("reason", st.failReason.c_str());
        out.print(std::cout);
        return 2;
    }
    out.addRowOf("status", "ok");
    out.addRowOf("iteration_s",
                 static_cast<double>(st.measuredIterationNs) / 1e9);
    out.addRowOf("ideal_s",
                 static_cast<double>(st.idealIterationNs) / 1e9);
    out.addRowOf("normalized_perf", st.normalizedPerf());
    out.addRowOf("throughput_sps", st.throughput());
    out.addRowOf("stall_s",
                 static_cast<double>(st.totalStallNs) / 1e9);
    out.addRowOf("fault_batches",
                 static_cast<unsigned long long>(st.pageFaultBatches));
    out.addRowOf("gpu_ssd_GB",
                 static_cast<double>(st.traffic.gpuToSsd +
                                     st.traffic.ssdToGpu) / 1e9);
    out.addRowOf("gpu_host_GB",
                 static_cast<double>(st.traffic.gpuToHost +
                                     st.traffic.hostToGpu) / 1e9);
    out.addRowOf("ssd_waf", st.ssd.waf());
    out.print(std::cout);
    return 0;
}
