/**
 * @file
 * g10fleet -- fleet-scale serving: a router over N heterogeneous
 * GPU+SSD nodes, comparing placement policies on one arrival stream.
 *
 * Usage:
 *   g10fleet <fleet-file> [--format table|json|csv] [--workers N]
 *   g10fleet --demo [scale]    built-in heterogeneous 4-node fleet
 *   g10fleet --list-designs [--format table|json|csv]
 *   g10fleet --help
 *
 * Every node is a complete serving scenario (its own GPU/DRAM/SSD
 * platform, partition slots, and admission queue); the fleet spec
 * adds one shared seeded request stream and a sweep over placement
 * policies: join-shortest-queue, plan-aware placement by compiled
 * working-set footprint, and class-affinity routing that pins model
 * families to nodes for warm plan-cache hits. Reports fleet SLO
 * attainment, per-node utilization spread (min/max/Jain), capacity
 * per node, and consolidated write amplification. Results are
 * deterministic for a given seed regardless of --workers.
 * `--format json` emits one `g10.fleet_result.v1` document.
 *
 * Observability: --trace <out.json> (a streaming Chrome trace-event
 * timeline of the first placement policy, one process group per node),
 * --metrics (g10.metrics.v1 counters merged across every cell), and
 * --log-level silent|warn|info|debug.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/g10.h"
#include "common/parse_util.h"
#include "obs/file_trace_sink.h"
#include "tools/cli_util.h"

namespace {

using namespace g10;

int
usage(std::ostream& os, int code)
{
    os << "usage: g10fleet <fleet-file> [--format table|json|csv] "
          "[--workers N]\n"
          "                [--placement jsq|planaware|affinity]\n"
          "                [--speculate on|off]\n"
          "       g10fleet --demo [scale] [--placement ...]\n"
          "       g10fleet --list-designs [--format ...]\n"
          "       g10fleet --help\n"
          "\n"
          "--placement restricts the sweep to one placement policy\n"
          "(the fleet file's `placements` list is the default sweep).\n"
          "\n"
          "--speculate on|off overrides the scenario's speculate:\n"
          "speculative parallel knee probes (rate = auto; on by\n"
          "default). Pure wall-clock; byte-identical either way.\n"
          "\n"
          "Observability:\n"
          "  --trace <out.json>  streaming Chrome trace-event timeline\n"
          "                      of the first placement policy, one\n"
          "                      process group per node\n"
          "  --metrics           print a g10.metrics.v1 document with\n"
          "                      counters merged across every cell\n"
          "  --forensics         per-node queue/occupancy series and\n"
          "                      an SLO-breach table attributing each\n"
          "                      miss to queue vs. stall vs. resize\n"
          "                      (first placement policy; see g10trace\n"
          "                      forensics for saved traces)\n"
          "  --log-level <l>     silent|warn|info|debug (default warn)\n"
          "\n"
          "Fleet file: '#' comments; 'key = value' lines.\n"
          "  fleet    : scale, seed, slots, queue,\n"
          "             partition_policy (static|proportional|\n"
          "             ondemand), resize_hysteresis,\n"
          "             admission (fifo|sjf|priority), starvation_ms,\n"
          "             slo_factor, requests,\n"
          "             arrival (poisson|bursty),\n"
          "             burst_on_ms, burst_off_ms,\n"
          "             rate (fleet req/s), design,\n"
          "             placements = jsq,planaware,affinity,\n"
          "             gpu_mem_gb, host_mem_gb, ssd_gbps, pcie_gbps\n"
          "  classes  : class = <Model> [batch=N] [iterations=N]\n"
          "             [priority=N] [weight=X] [name=STR]\n"
          "  nodes    : node = <name> [gpu_gb=X] [host_gb=X]\n"
          "             [ssd_gbps=X] [pcie_gbps=X] [slots=N] [queue=N]\n"
          "             [families=ModelA,ModelB]\n"
          "  models   : BERT ViT Inceptionv3 ResNet152 SENet154\n"
          "\n"
          "Example:\n"
          "  scale = 64\n"
          "  rate = 1.0\n"
          "  design = g10\n"
          "  placements = jsq,affinity\n"
          "  class = ResNet152 batch=512 weight=2\n"
          "  class = BERT\n"
          "  node = big0 gpu_gb=40 slots=2\n"
          "  node = small0 gpu_gb=20 slots=1 families=BERT\n";
    return code;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace g10;

    // --workers and --placement are options with a value; peel them
    // off before the shared parser sees the remaining flags.
    unsigned workers = 0;  // 0 = one per hardware thread
    bool have_placement = false;
    PlacementKind placement = PlacementKind::JoinShortestQueue;
    bool have_speculate = false;
    bool speculate = true;
    std::vector<char*> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--workers") {
            if (i + 1 >= argc)
                fatal("--workers needs a value");
            long long v = 0;
            if (!parseIntStrict(argv[++i], &v) || v < 1)
                fatal("--workers must be a positive integer, got '%s'",
                      argv[i]);
            workers = static_cast<unsigned>(v);
        } else if (std::string(argv[i]) == "--placement") {
            if (i + 1 >= argc)
                fatal("--placement needs a value (jsq | planaware | "
                      "affinity)");
            if (!placementKindFromName(argv[++i], &placement))
                fatal("unknown --placement '%s' (jsq | planaware | "
                      "affinity)",
                      argv[i]);
            have_placement = true;
        } else if (std::string(argv[i]) == "--speculate") {
            if (i + 1 >= argc)
                fatal("--speculate needs a value (on | off)");
            std::string v = argv[++i];
            if (v == "on")
                speculate = true;
            else if (v == "off")
                speculate = false;
            else
                fatal("unknown --speculate '%s' (on | off)",
                      v.c_str());
            have_speculate = true;
        } else {
            rest.push_back(argv[i]);
        }
    }

    tools::CliArgs args = tools::parseCliArgs(
        static_cast<int>(rest.size()), rest.data(),
        {"--demo", "--forensics"});
    if (args.help)
        return usage(std::cout, 0);
    if (!args.error.empty()) {
        std::cerr << args.error << "\n";
        return usage(std::cerr, 1);
    }

    if (args.listDesigns) {
        if (!args.flags.empty() || !args.positional.empty())
            return usage(std::cerr, 1);
        printDesignList(std::cout, args.format);
        return 0;
    }

    FleetSpec spec;
    if (args.has("--demo")) {
        if (args.positional.size() > 1)
            return usage(std::cerr, 1);
        unsigned scale = 64;
        if (args.positional.size() == 1) {
            long long v = 0;
            if (!parseIntStrict(args.positional[0], &v) || v < 1)
                fatal("--demo scale must be a positive integer, got "
                      "'%s'",
                      args.positional[0].c_str());
            scale = static_cast<unsigned>(v);
        }
        spec = demoFleetSpec(scale);
    } else {
        if (args.positional.size() != 1)
            return usage(std::cerr, 1);
        spec = parseFleetFile(args.positional[0]);
    }

    if (have_placement)
        spec.placements = {placement};
    if (have_speculate)
        spec.speculativeProbes = speculate;

    if (args.format == ReportFormat::Table) {
        std::cout << "# g10fleet: " << spec.nodes.size() << " nodes x "
                  << spec.placements.size() << " placements, "
                  << spec.requests << " requests at ";
        if (spec.ratesAuto)
            std::cout << "auto-bisected rate";
        else
            std::cout << spec.rate << " req/s";
        std::cout << " (" << arrivalKindName(spec.arrival.kind)
                  << "), design " << spec.design << ", scale 1/"
                  << spec.scaleDown << "\n\n";
    }

    FleetSim fleet(spec);
    ExperimentEngine engine(workers);

    // --trace streams straight to disk (FileTraceSink): a fleet sweep
    // can emit far more events than one serving cell.
    std::unique_ptr<FileTraceSink> traceSink;
    if (!args.tracePath.empty()) {
        traceSink = std::make_unique<FileTraceSink>(args.tracePath);
        // Request pids are node * stride + node-local index; label
        // each process row "<node>/req<global stream index>".
        RoutedStream routedFirst = fleet.routed(spec.placements[0]);
        for (std::size_t n = 0; n < spec.nodes.size(); ++n) {
            const auto& globals = routedFirst.perNodeGlobal[n];
            for (std::size_t j = 0; j < globals.size(); ++j)
                traceSink->setProcessName(
                    static_cast<int>(n) * kFleetPidStride +
                        static_cast<int>(j),
                    spec.nodes[n].name + "/req" +
                        std::to_string(globals[j]));
        }
    }

    // --forensics needs the event stream in memory; with --trace too,
    // a tee feeds both the file and the analyzer from one pass.
    MemoryTraceSink memSink;
    TeeTraceSink teeSink(traceSink.get(),
                         args.has("--forensics") ? &memSink : nullptr);

    FleetObsRequest obs;
    obs.collectCounters = args.metrics;
    obs.sink = (traceSink || args.has("--forensics")) ? &teeSink
                                                      : nullptr;

    FleetResult res = fleet.run(engine, obs);
    int code = printFleetResult(std::cout, res, args.format);
    if (traceSink) {
        traceSink->finish();
        inform("wrote %llu trace events to %s",
               static_cast<unsigned long long>(
                   traceSink->eventsWritten()),
               traceSink->path().c_str());
    }
    if (args.has("--forensics")) {
        FleetForensics forensics = analyzeFleetForensics(
            memSink.events(), kFleetPidStride);
        if (args.format == ReportFormat::Json) {
            writeFleetForensicsJson(std::cout, forensics);
        } else {
            std::cout << "\n";
            printFleetForensics(std::cout, forensics);
        }
    }
    if (args.metrics) {
        if (traceSink)
            res.counters.add("trace.dropped_events",
                             traceSink->droppedEvents());
        writeMetricsJson(std::cout, res.counters);
    }
    return code;
}
