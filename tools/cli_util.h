/**
 * @file
 * Shared argv handling for the g10 CLIs: the common flags
 * (--help, --format <f>, --list-designs, and the observability
 * surface --trace/--metrics/--log-level), tool-specific boolean
 * flags, and positional collection — so g10sim and g10multi cannot
 * drift apart.
 */

#ifndef G10_TOOLS_CLI_UTIL_H
#define G10_TOOLS_CLI_UTIL_H

#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "api/report.h"
#include "common/logging.h"
#include "obs/chrome_trace.h"
#include "obs/tracer.h"

namespace g10::tools {

/** Parsed command line. */
struct CliArgs
{
    ReportFormat format = ReportFormat::Table;
    bool help = false;
    bool listDesigns = false;

    /** `--trace <path>`: Chrome trace-event output; empty = off. */
    std::string tracePath;

    /** `--metrics`: print a g10.metrics.v1 document after the report. */
    bool metrics = false;

    /** Tool-specific boolean flags seen (e.g. "--mix", "--demo"). */
    std::set<std::string> flags;

    /** Tool-specific value flags seen (e.g. "--attribution-diff"). */
    std::map<std::string, std::string> values;

    std::vector<std::string> positional;

    /** Non-empty when an unknown option was seen (caller prints usage). */
    std::string error;

    bool has(const std::string& flag) const { return flags.count(flag); }

    /** Value of a value flag; @p def when the flag was not given. */
    std::string
    valueOf(const std::string& flag, const std::string& def = "") const
    {
        auto it = values.find(flag);
        return it != values.end() ? it->second : def;
    }
};

/**
 * Parse argv. Flags may appear in any position; `--format`, `--trace`,
 * and `--log-level` consume the next argument (fatal when missing or
 * invalid; `--log-level` takes effect immediately), as does every
 * flag in @p valueFlags. Options outside the common set, @p boolFlags,
 * and @p valueFlags set `error` instead of aborting so the tool can
 * print its own usage text.
 */
inline CliArgs
parseCliArgs(int argc, char** argv,
             const std::set<std::string>& boolFlags = {},
             const std::set<std::string>& valueFlags = {})
{
    CliArgs out;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            out.help = true;
        } else if (arg == "--format") {
            if (i + 1 >= argc)
                fatal("--format needs a value (table|json|csv)");
            out.format = reportFormatFromName(argv[++i]);
        } else if (arg == "--list-designs") {
            out.listDesigns = true;
        } else if (arg == "--trace") {
            if (i + 1 >= argc)
                fatal("--trace needs an output path");
            out.tracePath = argv[++i];
        } else if (arg == "--metrics") {
            out.metrics = true;
        } else if (arg == "--log-level") {
            if (i + 1 >= argc)
                fatal("--log-level needs a value "
                      "(silent|warn|info|debug)");
            LogLevel lvl = LogLevel::Warn;
            if (!logLevelFromName(argv[++i], &lvl))
                fatal("unknown --log-level '%s' "
                      "(silent|warn|info|debug)",
                      argv[i]);
            setLogLevel(lvl);
        } else if (boolFlags.count(arg)) {
            out.flags.insert(arg);
        } else if (valueFlags.count(arg)) {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            out.values[arg] = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            out.error = "unknown option '" + arg + "'";
            return out;
        } else {
            out.positional.push_back(arg);
        }
    }
    return out;
}

/** The observability boilerplate shared by the CLIs: a buffering sink
 *  + registry, handed to producers as one Tracer when any of
 *  --trace/--metrics (or g10sim's --attribution) is active. */
struct CliObservers
{
    MemoryTraceSink sink;
    CounterRegistry counters;
    Tracer tracer{&sink, &counters};

    bool wantEvents = false;    ///< collect the event stream
    bool wantCounters = false;  ///< print metrics afterwards

    /** nullptr when observability is off — producers stay on the
     *  zero-overhead path. */
    Tracer* tracerOrNull()
    {
        return wantEvents || wantCounters ? &tracer : nullptr;
    }
};

/** Write the collected events as Chrome trace-event JSON to @p path
 *  (fatal when the file cannot be opened). */
inline void
writeTraceFile(const std::string& path, const MemoryTraceSink& sink,
               const std::map<int, std::string>& processNames = {})
{
    std::ofstream f(path);
    if (!f)
        fatal("cannot open trace output '%s'", path.c_str());
    writeChromeTrace(f, sink.events(), processNames);
    if (!f)
        fatal("error writing trace output '%s'", path.c_str());
    inform("wrote %zu trace events to %s", sink.events().size(),
           path.c_str());
}

}  // namespace g10::tools

#endif  // G10_TOOLS_CLI_UTIL_H
