/**
 * @file
 * Shared argv handling for the g10 CLIs: the common flags
 * (--help, --format <f>, --list-designs), tool-specific boolean
 * flags, and positional collection — so g10sim and g10multi cannot
 * drift apart.
 */

#ifndef G10_TOOLS_CLI_UTIL_H
#define G10_TOOLS_CLI_UTIL_H

#include <set>
#include <string>
#include <vector>

#include "api/report.h"
#include "common/logging.h"

namespace g10::tools {

/** Parsed command line. */
struct CliArgs
{
    ReportFormat format = ReportFormat::Table;
    bool help = false;
    bool listDesigns = false;

    /** Tool-specific boolean flags seen (e.g. "--mix", "--demo"). */
    std::set<std::string> flags;

    std::vector<std::string> positional;

    /** Non-empty when an unknown option was seen (caller prints usage). */
    std::string error;

    bool has(const std::string& flag) const { return flags.count(flag); }
};

/**
 * Parse argv. Flags may appear in any position; `--format` consumes
 * the next argument (fatal when missing or invalid). Options outside
 * the common set and @p boolFlags set `error` instead of aborting so
 * the tool can print its own usage text.
 */
inline CliArgs
parseCliArgs(int argc, char** argv,
             const std::set<std::string>& boolFlags = {})
{
    CliArgs out;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            out.help = true;
        } else if (arg == "--format") {
            if (i + 1 >= argc)
                fatal("--format needs a value (table|json|csv)");
            out.format = reportFormatFromName(argv[++i]);
        } else if (arg == "--list-designs") {
            out.listDesigns = true;
        } else if (boolFlags.count(arg)) {
            out.flags.insert(arg);
        } else if (!arg.empty() && arg[0] == '-') {
            out.error = "unknown option '" + arg + "'";
            return out;
        } else {
            out.positional.push_back(arg);
        }
    }
    return out;
}

}  // namespace g10::tools

#endif  // G10_TOOLS_CLI_UTIL_H
