/**
 * @file
 * g10serve -- open-loop serving simulator: a G10-managed GPU+SSD node
 * absorbing sustained request traffic with dynamic job churn.
 *
 * Usage:
 *   g10serve <serve-file> [--format table|json|csv] [--workers N]
 *   g10serve --demo [scale]    built-in 3-design x 3-rate scenario
 *   g10serve --list-designs [--format table|json|csv]
 *   g10serve --help
 *
 * Sweeps every design over every offered arrival rate and reports
 * SLO-centric metrics per cell: queueing delay and completion-latency
 * percentiles (p50/p95/p99), SLO attainment, sustained-throughput
 * capacity, and consolidated SSD write amplification under churn.
 * Results are deterministic for a given seed regardless of --workers.
 * `--format json` emits one `g10.serve_result.v1` document.
 *
 * Observability: --trace <out.json> (Chrome trace-event timeline of
 * the sweep's first cell), --metrics (g10.metrics.v1 counters merged
 * across every cell, worker-count independent), and
 * --log-level silent|warn|info|debug.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/g10.h"
#include "common/parse_util.h"
#include "tools/cli_util.h"

namespace {

using namespace g10;

int
usage(std::ostream& os, int code)
{
    os << "usage: g10serve <serve-file> [--format table|json|csv] "
          "[--workers N]\n"
          "                [--partition static|proportional|ondemand]\n"
          "                [--sweep-cache on|off] [--speculate on|off]\n"
          "       g10serve --demo [scale] [--partition ...]\n"
          "       g10serve --list-designs [--format ...]\n"
          "       g10serve --help\n"
          "\n"
          "--partition overrides the scenario's partition_policy\n"
          "(elastic capacity: proportional equal-share of the active\n"
          "jobs, or ondemand split/merge with hysteresis).\n"
          "\n"
          "--sweep-cache on|off overrides the scenario's sweep_cache:\n"
          "the cross-probe plan-compile cache (on by default). Pure\n"
          "wall-clock; results are bit-identical either way.\n"
          "\n"
          "--speculate on|off overrides the scenario's speculate:\n"
          "speculative parallel knee probes on idle pool workers\n"
          "(rates = auto; on by default). Pure wall-clock; the\n"
          "decided search path is byte-identical either way.\n"
          "\n"
          "Observability:\n"
          "  --trace <out.json>  Chrome trace-event timeline of the\n"
          "                      sweep's first (design, rate) cell\n"
          "  --metrics           print a g10.metrics.v1 document with\n"
          "                      counters merged across every cell\n"
          "  --log-level <l>     silent|warn|info|debug (default warn)\n"
          "\n"
          "Serve file: '#' comments; 'key = value' lines.\n"
          "  scenario : scale, seed, slots, queue,\n"
          "             partition_policy (static|proportional|\n"
          "             ondemand), resize_hysteresis, max_active,\n"
          "             admission (fifo|sjf|priority), starvation_ms,\n"
          "             slo_factor, requests,\n"
          "             arrival (poisson|bursty|trace),\n"
          "             burst_on_ms, burst_off_ms, trace (.arr file),\n"
          "             gpu_mem_gb, host_mem_gb, ssd_gbps, pcie_gbps\n"
          "  sweep    : rates = 5,10,20 (req/s; trace: multipliers)\n"
          "             rates = auto (bisect for the capacity knee;\n"
          "             rate_lo, rate_hi, rate_probes tune the search)\n"
          "             designs = baseuvm,deepum,g10\n"
          "  classes  : class = <Model> [batch=N] [iterations=N]\n"
          "             [priority=N] [weight=X] [name=STR]\n"
          "  models   : BERT ViT Inceptionv3 ResNet152 SENet154\n"
          "\n"
          "Arrival trace (.arr): one request per line,\n"
          "  req = <arrival_ms> <Model> [batch=N] [iterations=N]\n"
          "        [priority=N]\n"
          "\n"
          "Example:\n"
          "  scale = 32\n"
          "  slots = 2\n"
          "  admission = sjf\n"
          "  rates = 5,15,45\n"
          "  designs = baseuvm,deepum,g10\n"
          "  class = ResNet152 batch=256 weight=2\n"
          "  class = BERT\n";
    return code;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace g10;

    // --workers, --partition and --sweep-cache are options with a
    // value; peel them off before the shared parser sees the
    // remaining flags.
    unsigned workers = 0;  // 0 = one per hardware thread
    bool have_partition = false;
    PartitionPolicy partition = PartitionPolicy::Static;
    bool have_sweep_cache = false;
    bool sweep_cache = true;
    bool have_speculate = false;
    bool speculate = true;
    std::vector<char*> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--sweep-cache") {
            if (i + 1 >= argc)
                fatal("--sweep-cache needs a value (on | off)");
            std::string v = argv[++i];
            if (v == "on")
                sweep_cache = true;
            else if (v == "off")
                sweep_cache = false;
            else
                fatal("unknown --sweep-cache '%s' (on | off)",
                      v.c_str());
            have_sweep_cache = true;
        } else if (std::string(argv[i]) == "--speculate") {
            if (i + 1 >= argc)
                fatal("--speculate needs a value (on | off)");
            std::string v = argv[++i];
            if (v == "on")
                speculate = true;
            else if (v == "off")
                speculate = false;
            else
                fatal("unknown --speculate '%s' (on | off)",
                      v.c_str());
            have_speculate = true;
        } else if (std::string(argv[i]) == "--workers") {
            if (i + 1 >= argc)
                fatal("--workers needs a value");
            long long v = 0;
            if (!parseIntStrict(argv[++i], &v) || v < 1)
                fatal("--workers must be a positive integer, got '%s'",
                      argv[i]);
            workers = static_cast<unsigned>(v);
        } else if (std::string(argv[i]) == "--partition") {
            if (i + 1 >= argc)
                fatal("--partition needs a value (static | "
                      "proportional | ondemand)");
            if (!partitionPolicyFromName(argv[++i], &partition))
                fatal("unknown --partition '%s' (static | "
                      "proportional | ondemand)",
                      argv[i]);
            have_partition = true;
        } else {
            rest.push_back(argv[i]);
        }
    }

    tools::CliArgs args = tools::parseCliArgs(
        static_cast<int>(rest.size()), rest.data(), {"--demo"});
    if (args.help)
        return usage(std::cout, 0);
    if (!args.error.empty()) {
        std::cerr << args.error << "\n";
        return usage(std::cerr, 1);
    }

    if (args.listDesigns) {
        if (!args.flags.empty() || !args.positional.empty())
            return usage(std::cerr, 1);
        printDesignList(std::cout, args.format);
        return 0;
    }

    ServeSpec spec;
    if (args.has("--demo")) {
        if (args.positional.size() > 1)
            return usage(std::cerr, 1);
        unsigned scale = 32;
        if (args.positional.size() == 1) {
            long long v = 0;
            if (!parseIntStrict(args.positional[0], &v) || v < 1)
                fatal("--demo scale must be a positive integer, got "
                      "'%s'",
                      args.positional[0].c_str());
            scale = static_cast<unsigned>(v);
        }
        spec = demoServeSpec(scale);
    } else {
        if (args.positional.size() != 1)
            return usage(std::cerr, 1);
        spec = parseServeFile(args.positional[0]);
    }

    if (have_partition)
        spec.partitionPolicy = partition;
    if (have_sweep_cache)
        spec.sweepPlanCache = sweep_cache;
    if (have_speculate)
        spec.speculativeProbes = speculate;

    if (args.format == ReportFormat::Table) {
        std::cout << "# g10serve: " << spec.designs.size()
                  << " designs x ";
        if (spec.ratesAuto)
            std::cout << "auto-bisected rates";
        else
            std::cout << spec.rates.size() << " rates";
        std::cout << ", arrival "
                  << arrivalKindName(spec.arrival.kind) << ", "
                  << spec.slots << " slots ("
                  << partitionPolicyName(spec.partitionPolicy)
                  << "), admission " << admitPolicyName(spec.admit)
                  << ", scale 1/" << spec.scaleDown << "\n\n";
    }

    ServeSweep sweep(spec);
    ExperimentEngine engine(workers);

    MemoryTraceSink sink;
    ServeObsRequest obs;
    obs.collectCounters = args.metrics;
    obs.sink = args.tracePath.empty() ? nullptr : &sink;

    ServeSweepResult res = sweep.run(engine, obs);
    int code = printServeResult(std::cout, res, args.format);
    if (!args.tracePath.empty())
        tools::writeTraceFile(args.tracePath, sink);
    if (args.metrics)
        writeMetricsJson(std::cout, res.counters);
    return code;
}
