/**
 * @file
 * g10multi -- multi-tenant workload runner: N DNN training jobs
 * sharing one simulated GPU + host DRAM + SSD.
 *
 * Usage:
 *   g10multi <mix-file>        run a workload mix (see --help format)
 *   g10multi --demo [scale]    ResNet152 + BERT consolidation demo
 *   g10multi --help
 *
 * Prints per-job iteration time, slowdown vs. running alone on the
 * full machine, ANTT-style turnaround slowdown, and the shared SSD's
 * write amplification under consolidation.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "api/g10.h"
#include "common/parse_util.h"

namespace {

using namespace g10;

int
usage(std::ostream& os, int code)
{
    os << "usage: g10multi <mix-file>\n"
          "       g10multi --demo [scale]\n"
          "       g10multi --help\n"
          "\n"
          "Mix file: '#' comments; 'key = value' lines.\n"
          "  mix keys : scale, sched (roundrobin|priority), seed,\n"
          "             isolated (0|1), gpu_mem_gb, host_mem_gb,\n"
          "             ssd_gbps, pcie_gbps\n"
          "  job lines: job = <Model> [batch=N] [design=NAME]\n"
          "             [priority=N] [arrival_ms=X] [iterations=N]\n"
          "             [weight=X] [name=STR]\n"
          "  models   : BERT ViT Inceptionv3 ResNet152 SENet154\n"
          "  designs  : ideal baseuvm deepum flashneuron g10gds\n"
          "             g10host g10\n"
          "\n"
          "Example:\n"
          "  scale = 16\n"
          "  sched = priority\n"
          "  job = ResNet152 batch=512 design=g10 priority=1\n"
          "  job = BERT batch=128 design=g10 priority=4 arrival_ms=2\n";
    return code;
}

WorkloadMix
demoMix(unsigned scale)
{
    WorkloadMix mix;
    mix.scaleDown = scale;
    JobSpec resnet;
    resnet.model = ModelKind::ResNet152;
    resnet.name = "resnet152";
    JobSpec bert;
    bert.model = ModelKind::BertBase;
    bert.name = "bert";
    mix.jobs = {resnet, bert};
    return mix;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace g10;

    if (argc < 2)
        return usage(std::cerr, 1);
    std::string arg1 = argv[1];
    if (arg1 == "--help" || arg1 == "-h")
        return usage(std::cout, 0);

    WorkloadMix mix;
    if (arg1 == "--demo") {
        if (argc > 3)
            return usage(std::cerr, 1);
        unsigned scale = 16;
        if (argc == 3) {
            long long v = 0;
            if (!parseIntStrict(argv[2], &v) || v < 1)
                fatal("--demo scale must be a positive integer, got "
                      "'%s'",
                      argv[2]);
            scale = static_cast<unsigned>(v);
        }
        mix = demoMix(scale);
    } else {
        if (argc != 2)
            return usage(std::cerr, 1);
        mix = parseMixFile(arg1);
    }

    std::cout << "# g10multi: " << mix.jobs.size()
              << " jobs on one GPU+SSD, scale 1/" << mix.scaleDown
              << ", sched " << mixSchedName(mix.sched) << "\n\n";

    MultiTenantSim sim(mix);
    MixResult res = sim.run();
    printMixReport(std::cout, res);
    return res.allSucceeded() ? 0 : 2;
}
