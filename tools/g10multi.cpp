/**
 * @file
 * g10multi -- multi-tenant workload runner: N DNN training jobs
 * sharing one simulated GPU + host DRAM + SSD.
 *
 * Usage:
 *   g10multi <mix-file> [--format table|json|csv]
 *   g10multi --demo [scale]    ResNet152 + BERT consolidation demo
 *   g10multi --list-designs [--format table|json|csv]
 *   g10multi --help
 *
 * Observability: --trace <out.json> (Chrome trace-event timeline, one
 * track group per job), --metrics (g10.metrics.v1 document), and
 * --log-level silent|warn|info|debug.
 *
 * Prints per-job iteration time, slowdown vs. running alone on the
 * full machine, ANTT-style turnaround slowdown, and the shared SSD's
 * write amplification under consolidation. `--format json` emits one
 * machine-readable document instead of tables.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/g10.h"
#include "common/parse_util.h"
#include "tools/cli_util.h"

namespace {

using namespace g10;

int
usage(std::ostream& os, int code)
{
    os << "usage: g10multi <mix-file> [--format table|json|csv]\n"
          "       g10multi --demo [scale]\n"
          "       g10multi --list-designs [--format ...]\n"
          "       g10multi --help\n"
          "\n"
          "Observability:\n"
          "  --trace <out.json>  write a Chrome trace-event timeline\n"
          "  --metrics           print a g10.metrics.v1 JSON document\n"
          "  --log-level <l>     silent|warn|info|debug (default warn)\n"
          "\n"
          "Mix file: '#' comments; 'key = value' lines.\n"
          "  mix keys : scale, sched (roundrobin|priority), seed,\n"
          "             isolated (0|1), gpu_mem_gb, host_mem_gb,\n"
          "             ssd_gbps, pcie_gbps\n"
          "  job lines: job = <Model> [batch=N] [design=NAME]\n"
          "             [priority=N] [arrival_ms=X] [iterations=N]\n"
          "             [weight=X] [name=STR]\n"
          "  models   : BERT ViT Inceptionv3 ResNet152 SENet154\n"
          "  designs  : any registered name; run\n"
          "             'g10multi --list-designs' for the list\n"
          "\n"
          "Example:\n"
          "  scale = 16\n"
          "  sched = priority\n"
          "  job = ResNet152 batch=512 design=g10 priority=1\n"
          "  job = BERT batch=128 design=g10 priority=4 arrival_ms=2\n";
    return code;
}

WorkloadMix
demoMix(unsigned scale)
{
    WorkloadMix mix;
    mix.scaleDown = scale;
    JobSpec resnet;
    resnet.model = ModelKind::ResNet152;
    resnet.name = "resnet152";
    JobSpec bert;
    bert.model = ModelKind::BertBase;
    bert.name = "bert";
    mix.jobs = {resnet, bert};
    return mix;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace g10;

    tools::CliArgs args = tools::parseCliArgs(argc, argv, {"--demo"});
    if (args.help)
        return usage(std::cout, 0);
    if (!args.error.empty()) {
        std::cerr << args.error << "\n";
        return usage(std::cerr, 1);
    }

    if (args.listDesigns) {
        if (!args.flags.empty() || !args.positional.empty())
            return usage(std::cerr, 1);
        printDesignList(std::cout, args.format);
        return 0;
    }

    ReportFormat format = args.format;
    WorkloadMix mix;
    if (args.has("--demo")) {
        if (args.positional.size() > 1)
            return usage(std::cerr, 1);
        unsigned scale = 16;
        if (args.positional.size() == 1) {
            long long v = 0;
            if (!parseIntStrict(args.positional[0], &v) || v < 1)
                fatal("--demo scale must be a positive integer, got "
                      "'%s'",
                      args.positional[0].c_str());
            scale = static_cast<unsigned>(v);
        }
        mix = demoMix(scale);
    } else {
        if (args.positional.size() != 1)
            return usage(std::cerr, 1);
        mix = parseMixFile(args.positional[0]);
    }

    if (format == ReportFormat::Table)
        std::cout << "# g10multi: " << mix.jobs.size()
                  << " jobs on one GPU+SSD, scale 1/" << mix.scaleDown
                  << ", sched " << mixSchedName(mix.sched) << "\n\n";

    MultiTenantSim sim(mix);

    tools::CliObservers obs;
    obs.wantEvents = !args.tracePath.empty();
    obs.wantCounters = args.metrics;
    sim.setTracer(obs.tracerOrNull());

    MixResult res = sim.run();
    int code = printMixResult(std::cout, res, format);
    if (!args.tracePath.empty()) {
        std::map<int, std::string> names;
        for (std::size_t i = 0; i < res.jobs.size(); ++i)
            names[static_cast<int>(i)] = res.jobs[i].name;
        tools::writeTraceFile(args.tracePath, obs.sink, names);
    }
    if (args.metrics)
        writeMetricsJson(std::cout, obs.counters);
    return code;
}
