/**
 * @file
 * g10trace -- offline analysis of saved Chrome trace-event files (the
 * --trace output of g10sim/g10multi/g10serve/g10fleet).
 *
 * Usage:
 *   g10trace critical <trace.json>  [--pid N] [--top N] [--format ...]
 *   g10trace diff <base.json> <test.json> [--pid N] [--top N]
 *   g10trace flame <trace.json>     [--pid N]        (collapsed stacks)
 *   g10trace forensics <trace.json> [--stride N] [--top N]
 *   g10trace --help
 *
 * Every analyzer is a pure function over the re-ingested event stream
 * (obs/analysis/trace_reader.h), so the same code paths run on a live
 * MemoryTraceSink inside the other CLIs and on any saved trace here.
 * `--format json` emits one `g10.trace_analysis.v1` document.
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/parse_util.h"
#include "obs/analysis/critical_path.h"
#include "obs/analysis/diff_attribution.h"
#include "obs/analysis/flame.h"
#include "obs/analysis/forensics.h"
#include "obs/analysis/trace_reader.h"
#include "obs/attribution.h"
#include "tools/cli_util.h"

namespace {

using namespace g10;

int
usage(std::ostream& os, int code)
{
    os << "usage: g10trace critical <trace.json> [--pid N] [--top N]\n"
          "                [--format table|json]\n"
          "       g10trace diff <base.json> <test.json> [--pid N]\n"
          "                [--top N] [--format table|json]\n"
          "       g10trace flame <trace.json> [--pid N]\n"
          "                [--format table|json]\n"
          "       g10trace forensics <trace.json> [--stride N]\n"
          "                [--top N] [--format table|json]\n"
          "       g10trace --help\n"
          "\n"
          "Analyses over saved --trace files:\n"
          "  critical   per-iteration critical path: compute vs. stall\n"
          "             by cause, and the longest chain of\n"
          "             consecutively stalled kernels\n"
          "  diff       align two runs kernel-by-kernel and decompose\n"
          "             the end-to-end delta into per-cause savings\n"
          "             (the reconciliation line is exact by\n"
          "             construction)\n"
          "  flame      stall time rolled up the kernel-name\n"
          "             hierarchy, in collapsed-stack format\n"
          "  forensics  per-node queue/occupancy series and an\n"
          "             SLO-breach table (fleet pid convention;\n"
          "             --stride defaults to the fleet stride)\n"
          "\n"
          "  --pid N     analyze job/request N (default 0)\n"
          "  --top N     rows in ranked tables (default 20)\n"
          "  --stride N  fleet pid stride (default 100000)\n";
    return code;
}

/** Parse one optional integer value flag with a range check. */
long long
intValueOf(const tools::CliArgs& args, const std::string& flag,
           long long def, long long lo)
{
    const std::string text = args.valueOf(flag);
    if (text.empty())
        return def;
    long long v = 0;
    if (!parseIntStrict(text, &v) || v < lo)
        fatal("%s needs an integer >= %lld, got '%s'", flag.c_str(),
              lo, text.c_str());
    return v;
}

TraceDocument
readTraceOrDie(const std::string& path)
{
    TraceDocument doc;
    std::string err;
    if (!readChromeTraceFile(path, &doc, &err))
        fatal("cannot read trace: %s", err.c_str());
    return doc;
}

int
runCritical(const std::string& path, const tools::CliArgs& args)
{
    const TraceDocument doc = readTraceOrDie(path);
    const CriticalPathReport report = extractCriticalPath(
        doc.events, static_cast<int>(intValueOf(args, "--pid", 0, 0)));
    if (args.format == ReportFormat::Json)
        writeCriticalPathJson(std::cout, report);
    else
        printCriticalPath(
            std::cout, report,
            static_cast<std::size_t>(intValueOf(args, "--top", 20, 1)));
    return report.iterations.empty() ? 2 : 0;
}

int
runDiff(const std::string& base_path, const std::string& test_path,
        const tools::CliArgs& args)
{
    const int pid = static_cast<int>(intValueOf(args, "--pid", 0, 0));
    const TraceDocument base = readTraceOrDie(base_path);
    const TraceDocument test = readTraceOrDie(test_path);
    const DiffAttribution diff = diffStallAttribution(
        buildStallAttributionFromEvents(base.events, pid),
        buildStallAttributionFromEvents(test.events, pid), base_path,
        test_path);
    if (args.format == ReportFormat::Json)
        writeDiffAttributionJson(std::cout, diff);
    else
        printDiffAttribution(
            std::cout, diff,
            static_cast<std::size_t>(intValueOf(args, "--top", 20, 1)));
    return diff.exact() ? 0 : 2;
}

int
runFlame(const std::string& path, const tools::CliArgs& args)
{
    const TraceDocument doc = readTraceOrDie(path);
    const FlameAggregation flame = aggregateFlame(
        doc.events, static_cast<int>(intValueOf(args, "--pid", 0, 0)));
    if (args.format == ReportFormat::Json)
        writeFlameJson(std::cout, flame);
    else
        writeCollapsedStacks(std::cout, flame);
    return 0;
}

int
runForensics(const std::string& path, const tools::CliArgs& args)
{
    const TraceDocument doc = readTraceOrDie(path);
    const FleetForensics forensics = analyzeFleetForensics(
        doc.events,
        static_cast<int>(intValueOf(args, "--stride", 100000, 1)));
    if (args.format == ReportFormat::Json)
        writeFleetForensicsJson(std::cout, forensics);
    else
        printFleetForensics(
            std::cout, forensics,
            static_cast<std::size_t>(intValueOf(args, "--top", 20, 1)));
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace g10;

    tools::CliArgs args = tools::parseCliArgs(
        argc, argv, {}, {"--pid", "--top", "--stride"});
    if (args.help)
        return usage(std::cout, 0);
    if (!args.error.empty()) {
        std::cerr << args.error << "\n";
        return usage(std::cerr, 1);
    }
    if (args.positional.empty())
        return usage(std::cerr, 1);

    const std::string& cmd = args.positional[0];
    if (cmd == "critical" && args.positional.size() == 2)
        return runCritical(args.positional[1], args);
    if (cmd == "diff" && args.positional.size() == 3)
        return runDiff(args.positional[1], args.positional[2], args);
    if (cmd == "flame" && args.positional.size() == 2)
        return runFlame(args.positional[1], args);
    if (cmd == "forensics" && args.positional.size() == 2)
        return runForensics(args.positional[1], args);
    std::cerr << "unknown or malformed command\n";
    return usage(std::cerr, 1);
}
