/**
 * @file
 * Shared helpers for the test suite: tiny hand-checkable traces and a
 * random-trace generator for property tests.
 */

#ifndef G10_TESTS_TEST_UTIL_H
#define G10_TESTS_TEST_UTIL_H

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/system_config.h"
#include "graph/trace.h"

namespace g10::test {

/**
 * A linear chain: k kernels, each producing one tensor consumed by the
 * next kernel (classic forward pass). Kernel i runs @p dur_ns, tensors
 * are @p bytes each.
 */
inline KernelTrace
makeChainTrace(int num_kernels, Bytes bytes, TimeNs dur_ns)
{
    KernelTrace t;
    t.setModelName("chain");
    t.setBatchSize(1);
    TensorId prev = kInvalidTensor;
    for (int i = 0; i < num_kernels; ++i) {
        TensorId out = t.addTensor("t" + std::to_string(i), bytes,
                                   TensorKind::Activation);
        Kernel k;
        k.name = "k" + std::to_string(i);
        k.durationNs = dur_ns;
        if (prev != kInvalidTensor)
            k.inputs = {prev};
        k.outputs = {out};
        t.addKernel(std::move(k));
        prev = out;
    }
    return t;
}

/**
 * A forward+backward "hourglass": n forward kernels each produce an
 * activation; n backward kernels consume them in reverse order. Every
 * activation therefore has one inactive period whose length grows with
 * how early it was produced -- the canonical G10 workload shape.
 */
inline KernelTrace
makeFwdBwdTrace(int n, Bytes bytes, TimeNs dur_ns,
                Bytes weight_bytes = 0)
{
    KernelTrace t;
    t.setModelName("fwdbwd");
    t.setBatchSize(1);

    std::vector<TensorId> acts;
    TensorId w = kInvalidTensor;
    if (weight_bytes > 0)
        w = t.addTensor("w", weight_bytes, TensorKind::Weight);

    TensorId prev = kInvalidTensor;
    for (int i = 0; i < n; ++i) {
        TensorId a = t.addTensor("a" + std::to_string(i), bytes,
                                 TensorKind::Activation);
        Kernel k;
        k.name = "fwd" + std::to_string(i);
        k.durationNs = dur_ns;
        if (prev != kInvalidTensor)
            k.inputs = {prev};
        if (w != kInvalidTensor)
            k.inputs.push_back(w);
        k.outputs = {a};
        t.addKernel(std::move(k));
        acts.push_back(a);
        prev = a;
    }
    TensorId grad = t.addTensor("g", bytes, TensorKind::ActivationGrad);
    {
        Kernel k;
        k.name = "loss";
        k.durationNs = dur_ns;
        k.inputs = {acts.back()};
        k.outputs = {grad};
        t.addKernel(std::move(k));
    }
    for (int i = n - 1; i >= 0; --i) {
        TensorId g2 = t.addTensor("g" + std::to_string(i), bytes,
                                  TensorKind::ActivationGrad);
        Kernel k;
        k.name = "bwd" + std::to_string(i);
        k.durationNs = dur_ns;
        k.inputs = {acts[static_cast<std::size_t>(i)], grad};
        if (w != kInvalidTensor)
            k.inputs.push_back(w);
        k.outputs = {g2};
        t.addKernel(std::move(k));
        grad = g2;
    }
    return t;
}

/** Random but structurally valid trace for property tests. */
inline KernelTrace
makeRandomTrace(Rng& rng, int num_kernels, int max_live = 6,
                Bytes min_bytes = 64 * KiB, Bytes max_bytes = 8 * MiB)
{
    KernelTrace t;
    t.setModelName("random");
    t.setBatchSize(1);
    std::vector<TensorId> live;
    for (int i = 0; i < num_kernels; ++i) {
        Kernel k;
        k.name = "k" + std::to_string(i);
        k.durationNs = rng.uniformInt(50 * USEC, 3 * MSEC);
        // Read up to two live tensors.
        for (int r = 0; r < 2 && !live.empty(); ++r) {
            auto idx = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
            k.inputs.push_back(live[idx]);
            // Sometimes retire the tensor from the live set (it may
            // still be referenced later as an input of this kernel).
            if (rng.bernoulli(0.4))
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(idx));
        }
        TensorId out = t.addTensor(
            "t" + std::to_string(i),
            static_cast<Bytes>(rng.uniformInt(
                static_cast<std::int64_t>(min_bytes),
                static_cast<std::int64_t>(max_bytes))),
            TensorKind::Activation);
        k.outputs = {out};
        t.addKernel(std::move(k));
        live.push_back(out);
        while (live.size() > static_cast<std::size_t>(max_live))
            live.erase(live.begin());
    }
    return t;
}

/** A small platform that keeps unit tests fast and hand-checkable. */
inline SystemConfig
tinySystem()
{
    SystemConfig sys;
    sys.gpuMemBytes = 64 * MiB;
    sys.hostMemBytes = 512 * MiB;
    sys.ssdCapacityBytes = 4ULL * GiB;
    return sys;
}

}  // namespace g10::test

#endif  // G10_TESTS_TEST_UTIL_H
