/** @file Shape/flops/workspace math of the layer emitters. */

#include <gtest/gtest.h>

#include "models/layers.h"
#include "common/system_config.h"
#include "models/model_zoo.h"

namespace g10 {
namespace {

struct Net
{
    TraceBuilder b{"net", 4, CostModel()};
    CnnBuilder cnn{b, 4, /*ws_cap=*/64 * MiB};
};

TEST(CnnBuilder, ConvShapeMath)
{
    Net n;
    FMap x = n.cnn.input(3, 224, 224);
    FMap y = n.cnn.conv(x, 64, 7, 2, 3, "c1");
    EXPECT_EQ(y.c, 64);
    EXPECT_EQ(y.h, 112);
    EXPECT_EQ(y.w, 112);
    // Output bytes = batch * C * H * W * 4.
    EXPECT_EQ(n.b.trace().tensor(y.t).bytes,
              static_cast<Bytes>(4) * 64 * 112 * 112 * 4);
}

TEST(CnnBuilder, StridedPoolHalves)
{
    Net n;
    FMap x = n.cnn.input(64, 56, 56);
    FMap y = n.cnn.maxPool(x, 3, 2, 1, "p");
    EXPECT_EQ(y.h, 28);
    EXPECT_EQ(y.w, 28);
    EXPECT_EQ(y.c, 64);
}

TEST(CnnBuilder, ConvWorkspaceIsCapped)
{
    Net n;
    FMap x = n.cnn.input(256, 128, 128);
    n.cnn.conv(x, 256, 3, 1, 1, "big");
    // im2col would be 4*256*9*128*128*4 = 604 MB; cap is 64 MB.
    Bytes biggest_ws = 0;
    for (const auto& t : n.b.trace().tensors())
        if (t.kind == TensorKind::Workspace)
            biggest_ws = std::max(biggest_ws, t.bytes);
    EXPECT_EQ(biggest_ws, 64 * MiB);
}

TEST(CnnBuilder, OneByOneConvHasNoWorkspace)
{
    Net n;
    FMap x = n.cnn.input(64, 56, 56);
    n.cnn.conv(x, 128, 1, 1, 0, "proj");
    for (const auto& t : n.b.trace().tensors())
        EXPECT_NE(t.kind, TensorKind::Workspace);
}

TEST(CnnBuilder, GroupedConvReducesWeightAndFlops)
{
    Net a;
    FMap xa = a.cnn.input(64, 28, 28);
    a.cnn.conv(xa, 64, 3, 1, 1, "dense", /*groups=*/1);
    Net g;
    FMap xg = g.cnn.input(64, 28, 28);
    g.cnn.conv(xg, 64, 3, 1, 1, "grouped", /*groups=*/8);

    auto weight_bytes = [](const Net& n) {
        for (const auto& t : n.b.trace().tensors())
            if (t.kind == TensorKind::Weight)
                return t.bytes;
        return Bytes{0};
    };
    EXPECT_EQ(weight_bytes(a), 8 * weight_bytes(g));
}

TEST(CnnBuilder, ConcatSumsChannels)
{
    Net n;
    FMap x = n.cnn.input(32, 35, 35);
    FMap a = n.cnn.conv(x, 64, 1, 1, 0, "a");
    FMap b = n.cnn.conv(x, 96, 1, 1, 0, "b");
    FMap y = n.cnn.concat({a, b}, "cat");
    EXPECT_EQ(y.c, 160);
    EXPECT_EQ(y.h, 35);
}

TEST(CnnBuilderDeath, MismatchedAddPanics)
{
    Net n;
    FMap x = n.cnn.input(16, 8, 8);
    FMap y = n.cnn.conv(x, 16, 3, 2, 1, "down");
    EXPECT_DEATH(n.cnn.add(x, y, "bad"), "shape mismatch");
}

TEST(CnnBuilderDeath, CollapsedConvPanics)
{
    Net n;
    FMap x = n.cnn.input(8, 4, 4);
    EXPECT_DEATH(n.cnn.conv(x, 8, 7, 1, 0, "toobig"), "collapsed");
}

TEST(SeqBuilder, EncoderKeepsTokenShape)
{
    TraceBuilder b("t", 2, CostModel());
    SeqBuilder s(b, 2, 128, 768, 12);
    TensorId x = s.embeddings(1000, "emb");
    TensorId y = s.encoderLayer(x, "l0");
    EXPECT_EQ(b.trace().tensor(y).bytes, s.seqBytes(768));
    EXPECT_EQ(b.trace().tensor(x).bytes, s.seqBytes(768));
}

TEST(SeqBuilder, DropoutTogglesMaskTensors)
{
    auto count_masks = [](bool use_dropout) {
        TraceBuilder b("t", 2, CostModel());
        SeqBuilder s(b, 2, 64, 256, 4, use_dropout);
        TensorId x = s.embeddings(500, "emb");
        s.encoderLayer(x, "l0");
        std::size_t masks = 0;
        for (const auto& t : b.trace().tensors())
            if (t.name.find("drop_saved") != std::string::npos)
                ++masks;
        return masks;
    };
    EXPECT_EQ(count_masks(false), 0u);
    EXPECT_EQ(count_masks(true), 3u);  // attn, proj, mlp dropouts
}

TEST(SeqBuilder, AttentionScoresScaleQuadraticallyWithSeqLen)
{
    auto score_bytes = [](int seq) {
        TraceBuilder b("t", 1, CostModel());
        SeqBuilder s(b, 1, seq, 256, 4, false);
        TensorId x = s.embeddings(100, "emb");
        s.encoderLayer(x, "l0");
        Bytes best = 0;
        for (const auto& t : b.trace().tensors())
            if (t.name.find("softmax_out") != std::string::npos)
                best = std::max(best, t.bytes);
        return best;
    };
    EXPECT_EQ(score_bytes(128), 4 * score_bytes(64));
}

TEST(CostModel, RooflineSelectsBottleneck)
{
    CostModel cm(10e12, 1000.0);
    // Compute-bound: lots of flops, few bytes.
    TimeNs t1 = cm.kernelTime(OpKind::Gemm, 1e12, 1e6);
    // Memory-bound: few flops, many bytes.
    TimeNs t2 = cm.kernelTime(OpKind::Elementwise, 1e6, 1e12);
    EXPECT_GT(t1, 10 * MSEC);
    EXPECT_GT(t2, 1 * SEC);
    // Tiny kernels floor at ~2us.
    EXPECT_GE(cm.kernelTime(OpKind::Elementwise, 1.0, 1.0), 2 * USEC);
}

TEST(CostModel, GemmBeatsElementwiseEfficiency)
{
    EXPECT_GT(CostModel::flopEfficiency(OpKind::Gemm),
              CostModel::flopEfficiency(OpKind::Softmax));
    EXPECT_GT(CostModel::memEfficiency(OpKind::Elementwise),
              CostModel::memEfficiency(OpKind::Embedding));
}

TEST(SystemConfig, ScaledDownDividesCapacitiesOnly)
{
    SystemConfig s;
    SystemConfig half = s.scaledDown(2);
    EXPECT_EQ(half.gpuMemBytes, s.gpuMemBytes / 2);
    EXPECT_EQ(half.hostMemBytes, s.hostMemBytes / 2);
    EXPECT_EQ(half.ssdCapacityBytes, s.ssdCapacityBytes / 2);
    EXPECT_DOUBLE_EQ(half.pcieGBps, s.pcieGBps);
    EXPECT_EQ(half.gpuFaultLatencyNs, s.gpuFaultLatencyNs);
    // Factor 1 and 0 are identity.
    EXPECT_EQ(s.scaledDown(1).gpuMemBytes, s.gpuMemBytes);
    EXPECT_EQ(s.scaledDown(0).gpuMemBytes, s.gpuMemBytes);
}

TEST(Units, TransferTimeMath)
{
    EXPECT_EQ(transferTimeNs(0, 10.0), 0);
    EXPECT_EQ(transferTimeNs(1000, 0.0), 0);
    // 10 GB at 10 GB/s = 1 s.
    EXPECT_EQ(transferTimeNs(10ULL * 1000 * 1000 * 1000, 10.0),
              1 * SEC);
    // Non-empty transfers take at least 1 ns.
    EXPECT_GE(transferTimeNs(1, 100.0), 1);
}

}  // namespace
}  // namespace g10
