/** @file Parameterized tests over the five-model zoo (Table 1). */

#include <gtest/gtest.h>

#include "core/vitality/vitality.h"
#include "models/model_zoo.h"

namespace g10 {
namespace {

class ModelZooTest : public ::testing::TestWithParam<ModelKind>
{
  protected:
    static constexpr int kBatch = 16;
    KernelTrace trace_ = buildModel(GetParam(), kBatch);
};

TEST_P(ModelZooTest, TraceValidates)
{
    trace_.validate();
    EXPECT_EQ(trace_.batchSize(), kBatch);
    EXPECT_EQ(trace_.modelName(), modelName(GetParam()));
}

TEST_P(ModelZooTest, KernelCountInPaperRegime)
{
    // Table 1 reports 740..2318 kernels; our structural builders land
    // in the same order of magnitude.
    EXPECT_GT(trace_.numKernels(), 300u);
    EXPECT_LT(trace_.numKernels(), 6000u);
}

TEST_P(ModelZooTest, HasForwardBackwardAndOptimizer)
{
    bool has_bwd = false;
    bool has_sgd = false;
    for (const auto& k : trace_.kernels()) {
        if (k.name.find("_bwd") != std::string::npos)
            has_bwd = true;
        if (k.kind == OpKind::Optimizer)
            has_sgd = true;
    }
    EXPECT_TRUE(has_bwd);
    EXPECT_TRUE(has_sgd);
}

TEST_P(ModelZooTest, EveryWeightIsUsedAndUpdated)
{
    auto uses = trace_.buildUseLists();
    for (const auto& t : trace_.tensors()) {
        if (!t.isGlobal())
            continue;
        EXPECT_FALSE(uses[static_cast<std::size_t>(t.id)].empty())
            << t.name;
    }
}

TEST_P(ModelZooTest, CalibrationMatchesPaperPerSampleTime)
{
    TimeNs expect = paperIdealPerSampleNs(GetParam()) * kBatch;
    // scaleDurations floors tiny kernels at 1 us, so allow 2% slack.
    EXPECT_NEAR(static_cast<double>(trace_.totalComputeNs()),
                static_cast<double>(expect),
                static_cast<double>(expect) * 0.02);
}

TEST_P(ModelZooTest, FootprintScalesWithBatch)
{
    KernelTrace big = buildModel(GetParam(), kBatch * 2);
    // Activations dominate: footprint should grow close to 2x.
    double ratio = static_cast<double>(big.totalTensorBytes()) /
                   static_cast<double>(trace_.totalTensorBytes());
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.2);
}

TEST_P(ModelZooTest, TensorSizesAreDiverse)
{
    // Fig. 4: sizes span tiny (sub-64KB gates/params) to huge.
    Bytes smallest = trace_.tensors()[0].bytes;
    Bytes largest = 0;
    for (const auto& t : trace_.tensors()) {
        smallest = std::min(smallest, t.bytes);
        largest = std::max(largest, t.bytes);
    }
    EXPECT_LT(smallest, 64 * KiB);
    EXPECT_GT(largest, 16 * MiB);
}

TEST_P(ModelZooTest, ActiveFractionIsSmall)
{
    // Paper O1: active tensors are a small share of total demand.
    VitalityAnalysis v(trace_, 5 * USEC);
    auto active = v.activeBytesPerKernel();
    Bytes peak_live = v.peakMemoryBytes();
    double worst = 0.0;
    double sum = 0.0;
    for (Bytes a : active) {
        double frac =
            static_cast<double>(a) / static_cast<double>(peak_live);
        worst = std::max(worst, frac);
        sum += frac;
    }
    double avg = sum / static_cast<double>(active.size());
    EXPECT_LT(avg, 0.10);  // paper: ~1% on average, <10%
    EXPECT_LT(worst, 0.75);
}

TEST_P(ModelZooTest, ScaledBuildDividesBatch)
{
    KernelTrace scaled = buildModelScaled(GetParam(), 64, 8);
    EXPECT_EQ(scaled.batchSize(), 8);
    EXPECT_EQ(scaled.numKernels(), trace_.numKernels());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooTest,
    ::testing::ValuesIn(allModels()),
    [](const ::testing::TestParamInfo<ModelKind>& info) {
        return std::string(modelName(info.param));
    });

TEST(ModelFactory, NameRoundTrip)
{
    for (ModelKind m : allModels())
        EXPECT_EQ(modelKindFromName(modelName(m)), m);
    EXPECT_EQ(modelKindFromName("bert"), ModelKind::BertBase);
    EXPECT_EQ(modelKindFromName("RESNET152"), ModelKind::ResNet152);
}

TEST(ModelFactoryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(modelKindFromName("alexnet"),
                ::testing::ExitedWithCode(1), "unknown model");
}

TEST(ModelFactory, PaperBatchSizesMatchTable)
{
    EXPECT_EQ(paperBatchSize(ModelKind::BertBase), 256);
    EXPECT_EQ(paperBatchSize(ModelKind::ViT), 1280);
    EXPECT_EQ(paperBatchSize(ModelKind::Inceptionv3), 1536);
    EXPECT_EQ(paperBatchSize(ModelKind::ResNet152), 1280);
    EXPECT_EQ(paperBatchSize(ModelKind::SENet154), 1024);
}

}  // namespace
}  // namespace g10
