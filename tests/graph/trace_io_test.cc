/** @file Round-trip tests for the plain-text trace format. */

#include <gtest/gtest.h>

#include <sstream>

#include "graph/trace_io.h"
#include "models/model_zoo.h"
#include "tests/test_util.h"

namespace g10 {
namespace {

TEST(TraceIo, RoundTripsSyntheticTrace)
{
    KernelTrace t =
        test::makeFwdBwdTrace(8, 3 * MiB, 2 * MSEC, 5 * MiB);
    std::stringstream buf;
    writeTrace(buf, t);
    KernelTrace back = readTrace(buf);

    EXPECT_EQ(back.modelName(), t.modelName());
    EXPECT_EQ(back.batchSize(), t.batchSize());
    ASSERT_EQ(back.numTensors(), t.numTensors());
    ASSERT_EQ(back.numKernels(), t.numKernels());
    for (std::size_t i = 0; i < t.numTensors(); ++i) {
        const auto& a = t.tensors()[i];
        const auto& b = back.tensors()[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.bytes, b.bytes);
        EXPECT_EQ(a.kind, b.kind);
    }
    for (std::size_t i = 0; i < t.numKernels(); ++i) {
        const auto& a = t.kernels()[i];
        const auto& b = back.kernels()[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.durationNs, b.durationNs);
        EXPECT_EQ(a.inputs, b.inputs);
        EXPECT_EQ(a.outputs, b.outputs);
        EXPECT_EQ(a.workspace, b.workspace);
        EXPECT_EQ(a.kind, b.kind);
    }
}

TEST(TraceIo, RoundTripsRealModel)
{
    KernelTrace t = buildModelScaled(ModelKind::BertBase, 64, 16);
    std::stringstream buf;
    writeTrace(buf, t);
    KernelTrace back = readTrace(buf);
    EXPECT_EQ(back.numKernels(), t.numKernels());
    EXPECT_EQ(back.totalComputeNs(), t.totalComputeNs());
    EXPECT_EQ(back.totalTensorBytes(), t.totalTensorBytes());
}

TEST(TraceIo, CommentsAndBlankLinesIgnored)
{
    std::stringstream buf;
    buf << "# a comment\n\n"
        << "trace tiny 1\n"
        << "tensor 0 A 1024 x\n"
        << "# another\n"
        << "kernel 0 Gemm 1000 in=- out=0 ws=- k0\n";
    KernelTrace t = readTrace(buf);
    EXPECT_EQ(t.numKernels(), 1u);
    EXPECT_EQ(t.tensor(0).bytes, 1024u);
}

TEST(TraceIoDeath, MissingHeaderIsFatal)
{
    std::stringstream buf;
    buf << "tensor 0 A 1024 x\n";
    EXPECT_EXIT(readTrace(buf), ::testing::ExitedWithCode(1), "header");
}

TEST(TraceIoDeath, BadKindIsFatal)
{
    std::stringstream buf;
    buf << "trace t 1\ntensor 0 Q 1024 x\n";
    EXPECT_EXIT(readTrace(buf), ::testing::ExitedWithCode(1),
                "unknown tensor kind");
}

TEST(TraceIoDeath, NonDenseIdsAreFatal)
{
    std::stringstream buf;
    buf << "trace t 1\ntensor 5 A 1024 x\n";
    EXPECT_EXIT(readTrace(buf), ::testing::ExitedWithCode(1), "dense");
}

TEST(TraceIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(loadTraceFile("/nonexistent/path.trace"),
                ::testing::ExitedWithCode(1), "cannot open");
}

}  // namespace
}  // namespace g10
