/** @file Unit tests for KernelTrace and the tape-based TraceBuilder. */

#include <gtest/gtest.h>

#include "graph/trace.h"
#include "models/trace_builder.h"
#include "tests/test_util.h"

namespace g10 {
namespace {

TEST(KernelTrace, ChainStructure)
{
    KernelTrace t = test::makeChainTrace(5, 1 * MiB, 1 * MSEC);
    EXPECT_EQ(t.numKernels(), 5u);
    EXPECT_EQ(t.numTensors(), 5u);
    EXPECT_EQ(t.totalComputeNs(), 5 * MSEC);
    t.validate();
}

TEST(KernelTrace, IdealStartTimesIncludeLaunchOverhead)
{
    KernelTrace t = test::makeChainTrace(3, 1 * MiB, 1 * MSEC);
    auto starts = t.idealStartTimes(10 * USEC);
    ASSERT_EQ(starts.size(), 4u);
    EXPECT_EQ(starts[0], 0);
    EXPECT_EQ(starts[1], 1 * MSEC + 10 * USEC);
    EXPECT_EQ(starts[2], 2 * (1 * MSEC + 10 * USEC));
    EXPECT_EQ(starts[3], 3 * (1 * MSEC + 10 * USEC));
}

TEST(KernelTrace, UseListsAreSortedPerTensor)
{
    KernelTrace t = test::makeFwdBwdTrace(4, 1 * MiB, 1 * MSEC);
    auto uses = t.buildUseLists();
    for (const auto& u : uses) {
        for (std::size_t i = 1; i < u.size(); ++i)
            EXPECT_LT(u[i - 1], u[i]);
    }
}

TEST(KernelTrace, ScaleDurations)
{
    KernelTrace t = test::makeChainTrace(4, 1 * MiB, 1 * MSEC);
    t.scaleDurations(2.5);
    EXPECT_EQ(t.totalComputeNs(), 10 * MSEC);
    t.scaleDurations(1e-12);  // floors at 1 us
    EXPECT_EQ(t.kernel(0).durationNs, 1000);
}

TEST(KernelTrace, PeakKernelWorkingSet)
{
    KernelTrace t = test::makeChainTrace(3, 2 * MiB, 1 * MSEC);
    // Largest kernel touches input + output = 4 MiB.
    EXPECT_EQ(t.peakKernelWorkingSet(), 4 * MiB);
}

TEST(KernelTraceDeath, ValidateCatchesReadBeforeWrite)
{
    KernelTrace t;
    TensorId a = t.addTensor("a", 1 * MiB, TensorKind::Activation);
    Kernel k;
    k.name = "bad";
    k.inputs = {a};  // never written
    k.durationNs = 1;
    TensorId out = t.addTensor("o", 1 * MiB, TensorKind::Activation);
    k.outputs = {out};
    t.addKernel(std::move(k));
    EXPECT_DEATH(t.validate(), "before any");
}

TEST(KernelTraceDeath, BadTensorIdPanics)
{
    KernelTrace t = test::makeChainTrace(2, 1 * MiB, 1 * MSEC);
    EXPECT_DEATH(t.tensor(99), "out of range");
    EXPECT_DEATH(t.kernel(99), "out of range");
}

// ---- TraceBuilder (autograd tape) ----

TEST(TraceBuilder, EmitsBackwardInReverseOrder)
{
    TraceBuilder b("m", 1, CostModel());
    TensorId x = b.input("x", 1 * MiB);
    TensorId w1 = b.weight("w1", 1 * MiB);
    TensorId w2 = b.weight("w2", 1 * MiB);

    OpSpec op1;
    op1.kind = OpKind::Gemm;
    op1.name = "fc1";
    op1.inputs = {x};
    op1.weights = {w1};
    op1.outBytes = 1 * MiB;
    op1.flops = 1e6;
    TensorId h = b.op(op1);

    OpSpec op2 = op1;
    op2.name = "fc2";
    op2.inputs = {h};
    op2.weights = {w2};
    TensorId y = b.op(op2);

    b.loss(y);
    KernelTrace t = b.finish();
    t.validate();

    // Expected kernel order: load, fc1, fc2, loss_fwd, loss_bwd,
    // fc2_bwd, fc1_bwd, sgd_w1, sgd_w2.
    std::vector<std::string> names;
    for (const auto& k : t.kernels())
        names.push_back(k.name);
    ASSERT_EQ(names.size(), 9u);
    EXPECT_EQ(names[1], "fc1");
    EXPECT_EQ(names[2], "fc2");
    EXPECT_EQ(names[5], "fc2_bwd");
    EXPECT_EQ(names[6], "fc1_bwd");
    EXPECT_EQ(names[7], "sgd_w1");
    EXPECT_EQ(names[8], "sgd_w2");
}

TEST(TraceBuilder, GradAccumulationAtJoins)
{
    // x feeds two consumers -> backward must emit a grad_accum kernel.
    TraceBuilder b("m", 1, CostModel());
    TensorId x = b.input("x", 1 * MiB);
    TensorId w = b.weight("w", 1 * MiB);

    OpSpec mk;
    mk.kind = OpKind::Gemm;
    mk.name = "pre";
    mk.inputs = {x};
    mk.weights = {w};
    mk.outBytes = 1 * MiB;
    mk.flops = 1e6;
    TensorId h = b.op(mk);

    OpSpec c1 = mk;
    c1.name = "left";
    c1.inputs = {h};
    c1.weights = {};
    TensorId l = b.op(c1);
    OpSpec c2 = mk;
    c2.name = "right";
    c2.inputs = {h};
    c2.weights = {};
    TensorId r = b.op(c2);

    OpSpec joined;
    joined.kind = OpKind::Elementwise;
    joined.name = "join";
    joined.inputs = {l, r};
    joined.outBytes = 1 * MiB;
    joined.gradPassthrough = true;
    TensorId y = b.op(joined);

    b.loss(y);
    KernelTrace t = b.finish();
    bool found_accum = false;
    for (const auto& k : t.kernels())
        if (k.name.find("grad_accum") != std::string::npos)
            found_accum = true;
    EXPECT_TRUE(found_accum);
}

TEST(TraceBuilder, PassthroughEmitsNoBackwardKernel)
{
    TraceBuilder b("m", 1, CostModel());
    TensorId x = b.input("x", 1 * MiB);
    OpSpec pre;
    pre.kind = OpKind::Gemm;
    pre.name = "pre";
    pre.inputs = {x};
    pre.outBytes = 1 * MiB;
    pre.flops = 1e6;
    TensorId h = b.op(pre);

    OpSpec add;
    add.kind = OpKind::Elementwise;
    add.name = "addition";
    add.inputs = {h, h};
    add.outBytes = 1 * MiB;
    add.gradPassthrough = true;
    TensorId y = b.op(add);
    b.loss(y);
    KernelTrace t = b.finish();
    for (const auto& k : t.kernels())
        EXPECT_EQ(k.name.find("addition_bwd"), std::string::npos);
}

TEST(TraceBuilder, SavedSideOutputLivesUntilBackward)
{
    TraceBuilder b("m", 1, CostModel());
    TensorId x = b.input("x", 1 * MiB);
    OpSpec drop;
    drop.kind = OpKind::Elementwise;
    drop.name = "drop";
    drop.inputs = {x};
    drop.inputSavedForBwd = {false};
    drop.outBytes = 1 * MiB;
    drop.extraSavedBytes = 256 * KiB;  // the mask
    TensorId y = b.op(drop);
    b.loss(y);
    KernelTrace t = b.finish();
    t.validate();

    // Find the mask tensor and check it is read by the backward kernel.
    TensorId mask = kInvalidTensor;
    for (const auto& ten : t.tensors())
        if (ten.name == "drop_saved")
            mask = ten.id;
    ASSERT_NE(mask, kInvalidTensor);
    auto uses = t.buildUseLists();
    EXPECT_EQ(uses[static_cast<std::size_t>(mask)].size(), 2u);
}

TEST(TraceBuilder, WorkspaceLivesOnlyInItsKernel)
{
    TraceBuilder b("m", 1, CostModel());
    TensorId x = b.input("x", 1 * MiB);
    OpSpec conv;
    conv.kind = OpKind::Conv2d;
    conv.name = "conv";
    conv.inputs = {x};
    conv.outBytes = 1 * MiB;
    conv.flops = 1e6;
    conv.workspaceBytes = 8 * MiB;
    TensorId y = b.op(conv);
    b.loss(y);
    KernelTrace t = b.finish();

    TensorId ws = kInvalidTensor;
    for (const auto& ten : t.tensors())
        if (ten.kind == TensorKind::Workspace && ten.name == "conv_ws")
            ws = ten.id;
    ASSERT_NE(ws, kInvalidTensor);
    auto uses = t.buildUseLists();
    EXPECT_EQ(uses[static_cast<std::size_t>(ws)].size(), 1u);
}

TEST(TraceBuilderDeath, FinishWithoutLossPanics)
{
    TraceBuilder b("m", 1, CostModel());
    b.input("x", 1 * MiB);
    EXPECT_DEATH(b.finish(), "loss");
}

}  // namespace
}  // namespace g10
